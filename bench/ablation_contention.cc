// Ablation — channel sharing at the rendezvous: when several UAV pairs
// deliver simultaneously near the same relay, DCF contention (Bianchi
// analysis) taxes every pair beyond the fair 1/n split, so the mission
// planner should stagger deliveries in time or space.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "io/table.h"
#include "mac/ampdu.h"
#include "mac/contention.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("ablation_contention");
  skyferry::bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  mac::MacTiming timing;
  mac::MpduFormat f;
  const double frame_s = mac::ampdu_duration_s(f, phy::mcs(2), phy::ChannelWidth::kCw40MHz,
                                               phy::GuardInterval::kShort400ns, 14);
  const double ack_s = mac::block_ack_duration_s(phy::ChannelWidth::kCw40MHz);

  io::Table t("DCF contention at a shared rendezvous (MCS2 aggregates)");
  t.columns({"pairs", "collision_p", "per-pair share", "per-pair Mb/s @ s(60m)=11",
             "56 MB batch delay_s"});
  std::vector<double> per_pair_mbps, delays;
  for (int n : {1, 2, 3, 4, 6, 8}) {
    const auto r = mac::analyze_contention(n, timing, frame_s, ack_s);
    const double mbps = 11.0 * r.efficiency_vs_single;
    const double delay = 56.2 * 8.0 / mbps;
    t.add_row(io::format_number(n),
              {r.collision_probability, r.efficiency_vs_single, mbps, delay});
    per_pair_mbps.push_back(mbps);
    delays.push_back(delay);
  }
  t.print();

  report.metric("per_pair_mbps_n1", per_pair_mbps[0], check::Tolerance::relative(0.02),
                "single pair keeps the full s(60 m) = 11 Mb/s link");
  report.metric("per_pair_mbps_n2", per_pair_mbps[1], check::Tolerance::relative(0.05),
                "EXPERIMENTS.md: two pairs drop each to ~5.2 Mb/s");
  report.claim("two_pairs_more_than_double_delay", delays[1] > 2.0 * delays[0],
               "contention taxes beyond the fair 1/n split");
  report.claim("per_pair_rate_monotone_in_pairs", [&] {
    for (std::size_t i = 1; i < per_pair_mbps.size(); ++i)
      if (per_pair_mbps[i] >= per_pair_mbps[i - 1]) return false;
    return true;
  }());
  std::printf(
      "reading: two co-located deliveries already more than double each\n"
      "batch's communication delay — the delayed-gratification sweet spot\n"
      "shifts when the channel is shared, so the planner staggers\n"
      "rendezvous (core::MissionPlanner plans one sector at a time).\n");
  return report.emit() ? 0 : 1;
}
