// Ablation — the re-positioning cost the paper's Sec. 5 points at: the
// base model charges Tship = (d0-d)/v as if the airplane could teleport
// onto a straight line, but a fixed-wing ferry leaves a loiter circle on
// some heading and must fly a curvature-bounded (Dubins) path. How much
// does that skew the shipping time and the resulting optimum?
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "geo/dubins.h"
#include "geo/geodesy.h"
#include "io/table.h"
#include "policy/api.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("ablation_dubins_shipping");
  skyferry::bench::Report report(cli);
  skyferry::bench::PolicyTableFlag policy_flag(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  const auto scen = core::Scenario::airplane();
  const double r = scen.platform.min_turn_radius_m;
  const double v = scen.platform.cruise_speed_mps;

  // The ferry loiters at d0 = 300 m; the rendezvous is toward the origin.
  // Compare straight-line vs Dubins shipping for different departure
  // headings (where on the loiter circle the decision lands).
  io::Table t("straight-line vs Dubins shipping (airplane, r=20 m, v=10 m/s)");
  t.columns({"departure heading_deg", "target d_m", "straight_s", "dubins_s", "penalty_s"});
  bool dubins_at_least_straight = true;
  double worst_penalty_s = 0.0;
  for (double heading_deg : {0.0, 90.0, 180.0, 270.0}) {
    for (double d : {250.0, 150.0, 50.0}) {
      const double leg = scen.d0_m - d;
      const geo::Pose2 from{0.0, 0.0, geo::deg2rad(heading_deg)};
      // Arrive tangentially (heading along the track) at the new position.
      const geo::Pose2 to{leg, 0.0, 0.0};
      const double straight = leg / v;
      const double dubins = geo::dubins_tship_s(from, to, r, v);
      t.add_row(io::format_number(heading_deg) + " deg",
                {d, straight, dubins, dubins - straight});
      if (dubins < straight - 1e-9) dubins_at_least_straight = false;
      worst_penalty_s = std::max(worst_penalty_s, dubins - straight);
    }
  }
  t.print();
  report.claim("dubins_never_beats_straight_line", dubins_at_least_straight,
               "curvature-bounded paths cannot undercut the crow-flies leg");
  report.metric("worst_heading_penalty_s", worst_penalty_s, check::Tolerance::relative(0.05),
                "worst departure heading across the sampled grid");
  report.metric("full_turn_detour_s", 2.0 * M_PI * r / v, check::Tolerance::absolute(0.05),
                "EXPERIMENTS.md: ~12.6 s loiter-turn detour");

  // Effect on the optimum: add the worst-case detour (a full turn) to
  // every candidate's Tship and re-optimize.
  std::printf("\nimpact on d_opt (worst-case detour = one full loiter turn, %.1f s):\n",
              2.0 * M_PI * r / v);
  io::Table t2("optimum with re-positioning cost");
  t2.columns({"rho_1/m", "d_opt (base)", "d_opt (with detour)", "U ratio"});
  const auto model = scen.paper_throughput();
  policy::DecisionService service(model);
  policy_flag.install_into(service);
  for (double rho : {1.11e-4, 1e-3, 5e-3}) {
    const uav::FailureModel failure(rho);
    policy::Query q;
    q.d0_m = scen.d0_m;
    q.speed_mps = scen.delivery_params().speed_mps;
    q.mdata_bytes = scen.mdata_bytes;
    q.min_distance_m = scen.delivery_params().min_distance_m;
    q.rho_per_m = rho;
    const auto base = service.decide_one(q);

    // Detour-adjusted utility: constant extra ship time when moving.
    const double detour_s = 2.0 * M_PI * r / v;
    double best_u = 0.0, best_d = scen.d0_m;
    for (double d = 20.0; d <= scen.d0_m; d += 0.5) {
      const double tship = (d < scen.d0_m) ? (scen.d0_m - d) / v + detour_s : 0.0;
      const double ttx = scen.mdata_bytes * 8.0 / model.throughput_bps(d);
      const double util = failure.discount(scen.d0_m, d) / (tship + ttx);
      if (util > best_u) {
        best_u = util;
        best_d = d;
      }
    }
    t2.add_row(io::format_number(rho),
               {base.d_opt_m, best_d, best_u / std::max(base.utility, 1e-12)});
    report.metric("dopt_base_rho" + io::format_number(rho) + "_m", base.d_opt_m,
                  check::Tolerance::absolute(15.0));
    report.metric("dopt_detour_rho" + io::format_number(rho) + "_m", best_d,
                  check::Tolerance::absolute(15.0),
                  "EXPERIMENTS.md: detour pushes the optimum outward");
    report.claim("detour_moves_dopt_outward_rho" + io::format_number(rho),
                 best_d >= base.d_opt_m - 1.0,
                 "a fixed repositioning cost raises the bar for moving closer");
    report.claim("detour_never_raises_utility_rho" + io::format_number(rho),
                 best_u <= base.utility + 1e-12);
  }
  t2.print();
  std::printf(
      "reading: the fixed detour (~12.6 s) is small against the airplane's\n"
      "30-70 s delivery delays, so d_opt barely moves at low rho — but it\n"
      "raises the bar for *any* repositioning, pushing marginal cases to\n"
      "transmit-now. The planner should charge Dubins time, not crow-flies.\n");
  return report.emit() ? 0 : 1;
}
