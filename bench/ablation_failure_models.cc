// Ablation — failure-law sensitivity (the paper's conclusion calls for
// "introducing a specific failure model"): how the optimal transmit
// distance and achievable utility move when the exponential discount is
// replaced by linear or Weibull laws with the same mean distance-to-
// failure.
#include <cstdio>

#include "core/nonstationary.h"
#include "core/optimizer.h"
#include "core/scenario.h"
#include "io/table.h"

int main() {
  using namespace skyferry;
  struct Law {
    const char* name;
    uav::FailureLaw law;
  };
  const Law laws[] = {{"exponential", uav::FailureLaw::kExponential},
                      {"linear", uav::FailureLaw::kLinear},
                      {"weibull(k=2)", uav::FailureLaw::kWeibull}};

  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    const auto model = scen.paper_throughput();
    std::printf("\n%s scenario (Mdata=%.1f MB, d0=%.0f m)\n", scen.name.c_str(),
                scen.mdata_bytes / 1e6, scen.d0_m);
    io::Table t("failure-law ablation");
    t.columns({"rho_1/m", "law", "d_opt_m", "U(d_opt)", "survival@d_opt"});
    for (double rho : {scen.rho_per_m, 1e-3, 5e-3, 1e-2}) {
      for (const auto& l : laws) {
        const uav::FailureModel failure(rho, l.law);
        const core::CommDelayModel delay(model, scen.delivery_params());
        const core::UtilityFunction u(delay, failure);
        const auto r = core::optimize(u);
        t.add_row(io::format_number(rho) + " " + l.name, {r.d_opt_m, r.utility, r.discount});
      }
    }
    t.print();
  }
  std::printf(
      "reading: the laws agree at small rho (discount ~ 1 everywhere); at\n"
      "high rho the heavier-tailed exponential pulls d_opt toward d0 harder\n"
      "than Weibull, while the linear law truncates survival entirely —\n"
      "the paper's qualitative conclusion (a delay-vs-risk sweet spot\n"
      "exists) survives the change of law.\n");

  // Non-stationary profiles — the case the paper explicitly flags as
  // breaking its stationary analysis ("Different results are expected,
  // e.g., for a non-stationary failure rate").
  {
    const auto scen = core::Scenario::quadrocopter();
    const auto model = scen.paper_throughput();
    const core::CommDelayModel delay(model, scen.delivery_params());
    io::Table t("non-stationary rho(x) profiles, quadrocopter scenario");
    t.columns({"profile", "d_opt_m", "U(d_opt)", "survival"});
    struct Row {
      const char* name;
      core::RhoProfile rho;
    };
    const Row rows[] = {
        {"constant (baseline)", core::constant_rho(scen.rho_per_m)},
        {"hazard zone <40 m (rho=0.05)", core::two_zone_rho(scen.rho_per_m, 0.05, 40.0)},
        {"rising toward peer (linear)", core::linear_rho(0.05, -4.8e-4)},
        {"rising away from peer", core::linear_rho(scen.rho_per_m, 2e-5)},
    };
    for (const auto& row : rows) {
      const auto r = core::optimize_nonstationary(delay, row.rho);
      t.add_row(row.name, {r.d_opt_m, r.utility, r.survival});
    }
    t.print();
    std::printf(
        "reading: a hazardous close zone parks the optimum at the hazard\n"
        "boundary instead of the 20 m floor — the stationary optimum is no\n"
        "longer path-independent, exactly as the paper anticipates.\n");
  }
  return 0;
}
