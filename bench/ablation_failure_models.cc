// Ablation — failure-law sensitivity (the paper's conclusion calls for
// "introducing a specific failure model"): how the optimal transmit
// distance and achievable utility move when the exponential discount is
// replaced by linear or Weibull laws with the same mean distance-to-
// failure.
//
// Engine-backed: the (scenario x rho x law) grid is an exp::Sweep with
// one deterministic optimizer solve per point — the seeds are unused,
// the parallelism is free, and the table order is the sweep order.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/nonstationary.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "exp/runner.h"
#include "io/table.h"
#include "policy/api.h"

namespace {

using namespace skyferry;

struct LawRow {
  double d_opt_m{0.0};
  double utility{0.0};
  double discount{0.0};
};

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;
  exp::Cli cli("ablation_failure_models");
  cli.flag("--threads", &threads, "worker threads, 0 = one per hardware thread");
  bench::Report report(cli);
  bench::PolicyTableFlag policy_flag(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();

  struct Law {
    const char* name;
    uav::FailureLaw law;
  };
  const Law laws[] = {{"exponential", uav::FailureLaw::kExponential},
                      {"linear", uav::FailureLaw::kLinear},
                      {"weibull(k=2)", uav::FailureLaw::kWeibull}};
  const core::Scenario scenarios[] = {core::Scenario::airplane(), core::Scenario::quadrocopter()};

  exp::RunStats total;
  total.name = "ablation_failure_models";
  for (std::size_t si = 0; si < 2; ++si) {
    const auto& scen = scenarios[si];
    const auto model = scen.paper_throughput();
    policy::DecisionService service(model);
    policy_flag.install_into(service);
    const std::vector<double> rhos{scen.rho_per_m, 1e-3, 5e-3, 1e-2};
    const auto points = exp::Sweep{}
                            .axis("rho", rhos)
                            .axis("law", {0.0, 1.0, 2.0})
                            .cartesian();
    exp::RunnerConfig rc;
    rc.threads = threads;
    rc.trials = 1;  // the solve is deterministic; the sweep is the work
    // One shared service, decide_one() from every worker thread — the
    // service's decide path is const and race-free by design.
    auto run = exp::Runner(rc).run(points, [&](const exp::Point& p, std::uint64_t) {
      policy::Query q;
      q.d0_m = scen.d0_m;
      q.speed_mps = scen.delivery_params().speed_mps;
      q.mdata_bytes = scen.mdata_bytes;
      q.min_distance_m = scen.delivery_params().min_distance_m;
      q.rho_per_m = p.at("rho");
      q.law = laws[static_cast<int>(p.at("law"))].law;
      const auto r = service.decide_one(q);
      return LawRow{r.d_opt_m, r.utility, r.discount};
    });
    total.merge(run.stats);

    std::printf("\n%s scenario (Mdata=%.1f MB, d0=%.0f m)\n", scen.name.c_str(),
                scen.mdata_bytes / 1e6, scen.d0_m);
    io::Table t("failure-law ablation");
    t.columns({"rho_1/m", "law", "d_opt_m", "U(d_opt)", "survival@d_opt"});
    for (const auto& p : points) {
      const LawRow& r = run.results[p.index][0];
      t.add_row(io::format_number(p.at("rho")) + " " + laws[static_cast<int>(p.at("law"))].name,
                {r.d_opt_m, r.utility, r.discount});
    }
    t.print();

    // Laws agree where the discount is ~1 (baseline rho), and the
    // exponential optimum never sits inside the Weibull one at high rho.
    double agree_spread = 0.0;
    double exp_dopt_hi = 0.0, weibull_dopt_hi = 0.0;
    for (const auto& p : points) {
      const LawRow& r = run.results[p.index][0];
      if (p.at("rho") == rhos.front()) {
        const LawRow& base = run.results[points[0].index][0];
        agree_spread = std::max(agree_spread, std::abs(r.d_opt_m - base.d_opt_m));
      }
      if (p.at("rho") == 1e-2) {
        if (p.at("law") == 0.0) exp_dopt_hi = r.d_opt_m;
        if (p.at("law") == 2.0) weibull_dopt_hi = r.d_opt_m;
      }
    }
    report.claim(scen.name + "_laws_agree_at_baseline_rho", agree_spread <= 10.0,
                 "discount ~ 1 everywhere, so the law barely matters");
    report.claim(scen.name + "_exponential_pulls_hardest_at_high_rho",
                 exp_dopt_hi >= weibull_dopt_hi - 1e-9);
    report.metric(scen.name + "_exp_dopt_rho1e-2_m", exp_dopt_hi,
                  check::Tolerance::absolute(10.0));
  }
  std::printf(
      "reading: the laws agree at small rho (discount ~ 1 everywhere); at\n"
      "high rho the heavier-tailed exponential pulls d_opt toward d0 harder\n"
      "than Weibull, while the linear law truncates survival entirely —\n"
      "the paper's qualitative conclusion (a delay-vs-risk sweet spot\n"
      "exists) survives the change of law.\n");

  // Non-stationary profiles — the case the paper explicitly flags as
  // breaking its stationary analysis ("Different results are expected,
  // e.g., for a non-stationary failure rate").
  {
    const auto scen = core::Scenario::quadrocopter();
    const auto model = scen.paper_throughput();
    const core::CommDelayModel delay(model, scen.delivery_params());
    io::Table t("non-stationary rho(x) profiles, quadrocopter scenario");
    t.columns({"profile", "d_opt_m", "U(d_opt)", "survival"});
    struct Row {
      const char* name;
      core::RhoProfile rho;
    };
    const Row rows[] = {
        {"constant (baseline)", core::constant_rho(scen.rho_per_m)},
        {"hazard zone <40 m (rho=0.05)", core::two_zone_rho(scen.rho_per_m, 0.05, 40.0)},
        {"rising toward peer (linear)", core::linear_rho(0.05, -4.8e-4)},
        {"rising away from peer", core::linear_rho(scen.rho_per_m, 2e-5)},
    };
    const auto points = exp::Sweep{}.axis("profile", {0.0, 1.0, 2.0, 3.0}).cartesian();
    exp::RunnerConfig rc;
    rc.threads = threads;
    rc.trials = 1;
    auto run = exp::Runner(rc).run(points, [&](const exp::Point& p, std::uint64_t) {
      const auto r = core::optimize_nonstationary(delay, rows[static_cast<int>(p.at("profile"))].rho);
      return LawRow{r.d_opt_m, r.utility, r.survival};
    });
    total.merge(run.stats);
    for (const auto& p : points) {
      const LawRow& r = run.results[p.index][0];
      t.add_row(rows[static_cast<int>(p.at("profile"))].name, {r.d_opt_m, r.utility, r.discount});
    }
    t.print();

    const double hazard_dopt = run.results[points[1].index][0].d_opt_m;
    const double linear_dopt = run.results[points[2].index][0].d_opt_m;
    report.metric("nonstationary_hazard_zone_dopt_m", hazard_dopt,
                  check::Tolerance::absolute(5.0),
                  "EXPERIMENTS.md: optimum parks at the ~40 m hazard boundary");
    report.metric("nonstationary_linear_dopt_m", linear_dopt, check::Tolerance::absolute(5.0),
                  "EXPERIMENTS.md: rising-toward-peer profile stops at ~68 m");
    report.claim("hazard_zone_lifts_optimum_off_floor", hazard_dopt > 30.0,
                 "the stationary model would dive to the 20 m floor");
    std::printf(
        "reading: a hazardous close zone parks the optimum at the hazard\n"
        "boundary instead of the 20 m floor — the stationary optimum is no\n"
        "longer path-independent, exactly as the paper anticipates.\n");
  }
  std::printf("%s\n", total.summary_line().c_str());
  if (total.write_json("ablation_failure_models_stats.json"))
    std::printf("stats: ablation_failure_models_stats.json\n");
  return report.emit() ? 0 : 1;
}
