// Ablation — joint (distance, speed) optimization, the paper's
// "exploiting new dimensions of the optimization problem" extension:
// how much utility the ferry gains by also choosing its approach speed,
// accounting for the battery-range cost of flying fast
// (rho(v) = drain(v) / (v * T_battery)).
#include <cstdio>

#include <vector>

#include "bench_util.h"
#include "core/joint_optimizer.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "io/csv.h"
#include "io/table.h"
#include "policy/api.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("ablation_joint_speed");
  skyferry::bench::Report report(cli);
  skyferry::bench::PolicyTableFlag policy_flag(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  io::CsvWriter csv("ablation_joint_speed.csv");
  csv.header({"platform", "mdata_mb", "v_opt", "d_opt", "utility", "cruise_d_opt",
              "cruise_utility", "gain_pct"});

  const std::vector<double> mbs{1.0, 5.0, 15.0, 28.0, 45.0, 56.2};
  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    const auto model = scen.paper_throughput();
    policy::DecisionService service(model);
    policy_flag.install_into(service);
    io::Table t("joint speed+distance optimum, " + scen.name + " (cruise v=" +
                io::format_number(scen.platform.cruise_speed_mps) + " m/s)");
    t.columns({"Mdata_MB", "v_opt_mps", "d_opt_m", "U", "U@cruise", "gain_%"});

    // Per batch size, a (joint, cruise-baseline) query pair: the joint
    // query sweeps the speed envelope with the battery-derived rho(v);
    // the paired fixed-speed query at cruise with rho(cruise) reproduces
    // optimize_joint's cruise_baseline through the same front door.
    const double cruise = scen.platform.cruise_speed_mps;
    std::vector<policy::Query> queries(2 * mbs.size());
    for (std::size_t i = 0; i < mbs.size(); ++i) {
      policy::Query& qj = queries[2 * i];
      qj.d0_m = scen.d0_m;
      qj.mdata_bytes = mbs[i] * 1e6;
      qj.min_distance_m = scen.delivery_params().min_distance_m;
      qj.objective = policy::Objective::kJointSpeed;
      qj.platform = &scen.platform;
      policy::Query& qc = queries[2 * i + 1];
      qc.d0_m = scen.d0_m;
      qc.speed_mps = cruise;
      qc.mdata_bytes = mbs[i] * 1e6;
      qc.min_distance_m = scen.delivery_params().min_distance_m;
      qc.rho_per_m = core::rho_for_speed(scen.platform, cruise);
    }
    std::vector<policy::Decision> answers(queries.size());
    service.decide(queries, answers);

    for (std::size_t i = 0; i < mbs.size(); ++i) {
      const double mb = mbs[i];
      const auto& r = answers[2 * i];
      const auto& cruise_r = answers[2 * i + 1];
      const double gain = cruise_r.utility > 0.0
                              ? (r.utility / cruise_r.utility - 1.0) * 100.0
                              : 0.0;
      t.add_row(io::format_number(mb),
                {r.v_opt_mps, r.d_opt_m, r.utility, cruise_r.utility, gain});
      csv.row(scen.name,
              std::vector<double>{mb, r.v_opt_mps, r.d_opt_m, r.utility,
                                  cruise_r.d_opt_m, cruise_r.utility, gain});
      report.claim("joint_never_worse_" + scen.name + "_m" + io::format_number(mb),
                   r.utility >= cruise_r.utility - 1e-12,
                   "the speed dimension can only add utility");
      if (scen.name == "airplane" && mb == 28.0)
        report.metric("airplane_28mb_gain_pct", gain, check::Tolerance::relative(0.10),
                      "EXPERIMENTS.md: up to ~61% over fixed cruise");
    }
    t.print();
  }
  std::printf(
      "reading: bigger batches justify flying faster than cruise despite the\n"
      "battery-range penalty; tiny batches fly near the platform's most\n"
      "range-efficient speed. The gap vs the paper's fixed-cruise model is\n"
      "the value of the 'speed dimension' its conclusion points at.\n"
      "csv: ablation_joint_speed.csv\n");
  return report.emit() ? 0 : 1;
}
