// Ablation — joint (distance, speed) optimization, the paper's
// "exploiting new dimensions of the optimization problem" extension:
// how much utility the ferry gains by also choosing its approach speed,
// accounting for the battery-range cost of flying fast
// (rho(v) = drain(v) / (v * T_battery)).
#include <cstdio>

#include "bench_util.h"
#include "core/joint_optimizer.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "io/csv.h"
#include "io/table.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("ablation_joint_speed");
  skyferry::bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  io::CsvWriter csv("ablation_joint_speed.csv");
  csv.header({"platform", "mdata_mb", "v_opt", "d_opt", "utility", "cruise_d_opt",
              "cruise_utility", "gain_pct"});

  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    const auto model = scen.paper_throughput();
    io::Table t("joint speed+distance optimum, " + scen.name + " (cruise v=" +
                io::format_number(scen.platform.cruise_speed_mps) + " m/s)");
    t.columns({"Mdata_MB", "v_opt_mps", "d_opt_m", "U", "U@cruise", "gain_%"});
    for (double mb : {1.0, 5.0, 15.0, 28.0, 45.0, 56.2}) {
      core::DeliveryParams p = scen.delivery_params();
      p.mdata_bytes = mb * 1e6;
      const auto r = core::optimize_joint(model, scen.platform, p);
      const double gain =
          r.cruise_baseline.utility > 0.0
              ? (r.utility / r.cruise_baseline.utility - 1.0) * 100.0
              : 0.0;
      t.add_row(io::format_number(mb),
                {r.v_opt_mps, r.d_opt_m, r.utility, r.cruise_baseline.utility, gain});
      csv.row(scen.name,
              std::vector<double>{mb, r.v_opt_mps, r.d_opt_m, r.utility,
                                  r.cruise_baseline.d_opt_m, r.cruise_baseline.utility, gain});
      report.claim("joint_never_worse_" + scen.name + "_m" + io::format_number(mb),
                   r.utility >= r.cruise_baseline.utility - 1e-12,
                   "the speed dimension can only add utility");
      if (scen.name == "airplane" && mb == 28.0)
        report.metric("airplane_28mb_gain_pct", gain, check::Tolerance::relative(0.10),
                      "EXPERIMENTS.md: up to ~61% over fixed cruise");
    }
    t.print();
  }
  std::printf(
      "reading: bigger batches justify flying faster than cruise despite the\n"
      "battery-range penalty; tiny batches fly near the platform's most\n"
      "range-efficient speed. The gap vs the paper's fixed-cruise model is\n"
      "the value of the 'speed dimension' its conclusion points at.\n"
      "csv: ablation_joint_speed.csv\n");
  return report.emit() ? 0 : 1;
}
