// Ablation — link chaos vs mid-mission re-election. Every mission
// elects its burst link at spawn (policy::DecisionService::decide_multilink
// over 802.11n + cellular + LEO) and then the elected link misbehaves:
// seeded sustained blackouts, rate-degradation epochs, flaky session
// setup, and regional outage storms (fault/link_chaos.h), injected
// through fleet::FleetEngine's sweeps. Each grid row runs twice with
// common random numbers — a *static* arm that rides out the chaos on
// the link it elected, and a *re-electing* arm that may re-run the
// joint (link, d) decision mid-mission under the guard ladder
// (fleet::ReElectionConfig: trigger cap, deadline-aware retry budget,
// commit margin, ferry-closer-and-ship fallback).
//
// The machine-checked tentpole claims, per row:
//   - re-electing deadline-weighted utility >= static (same seeds, same
//     injected chaos — the guard ladder makes re-election a free option);
//   - the zero-chaos row is *bit-identical* between the arms with zero
//     re-elections: without chaos evidence no trigger can arm, so the
//     ladder is a pure observer.
//
// Wall-clock free and fully seeded (bit-identical for any --threads),
// so every metric is golden-pinned exactly
// (scripts/golden_regress.sh entry ablation_link_chaos).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/cli.h"
#include "fault/link_chaos.h"
#include "fleet/engine.h"
#include "io/csv.h"
#include "io/table.h"
#include "link/multilink.h"

namespace {

using namespace skyferry;

struct ChaosRow {
  const char* name;
  fault::LinkFaultPlan plan;
};

// The chaos grid: each non-trivial row turns on one axis hard enough to
// starve committed bursts (the elected 802.11n link takes the hit; the
// cellular/LEO alternates stay clean, so a re-election has somewhere to
// go), plus a storm row where every link drowns at once and the ladder
// can only fall back to ferry-closer, and a combined row.
std::vector<ChaosRow> grid() {
  std::vector<ChaosRow> rows;
  rows.push_back({"none", fault::LinkFaultPlan::none()});
  {
    fault::LinkFaultPlan p;
    p.links.resize(1);
    p.links[0].blackout_rate_per_hour = 60.0;
    p.links[0].blackout_mean_s = 30.0;
    rows.push_back({"wifi_blackout", p});
  }
  {
    fault::LinkFaultPlan p;
    p.links.resize(1);
    p.links[0].degrade_rate_per_hour = 40.0;
    p.links[0].degrade_mean_s = 60.0;
    p.links[0].degrade_rate_scale = 0.15;
    rows.push_back({"wifi_degrade", p});
  }
  {
    fault::LinkFaultPlan p;
    p.links.resize(1);
    p.links[0].setup_fail_p = 0.85;
    rows.push_back({"setup_flaky", p});
  }
  {
    fault::LinkFaultPlan p;
    p.storm = {30.0, 45.0, 0.6};
    rows.push_back({"storm", p});
  }
  {
    fault::LinkFaultPlan p;
    p.links.resize(1);
    p.links[0].blackout_rate_per_hour = 40.0;
    p.links[0].blackout_mean_s = 25.0;
    p.links[0].degrade_rate_per_hour = 30.0;
    p.links[0].degrade_mean_s = 45.0;
    p.links[0].degrade_rate_scale = 0.2;
    p.links[0].setup_fail_p = 0.3;
    p.storm = {10.0, 30.0, 0.4};
    rows.push_back({"combined", p});
  }
  return rows;
}

// Mission layout: groups of three UAVs per receiver cell on a 500 m
// grid (distinct contention cells and distinct storm cells), contact
// distances in 802.11n's election range so the wifi-chaos rows bite,
// staggered spawns. Identical across arms — only reelection.enabled
// differs, which is what "common random numbers" means here.
fleet::FleetTotals run_arm(const ChaosRow& row, bool reelect, int n, double duration_s,
                           int threads, std::uint64_t seed) {
  fleet::FleetConfig cfg;
  cfg.threads = threads;
  cfg.links = std::make_shared<const link::LinkSet>(std::vector<link::LinkBackendConfig>{
      link::LinkBackendConfig::wifi_80211n(), link::LinkBackendConfig::cellular(),
      link::LinkBackendConfig::mesh(), link::LinkBackendConfig::leo()});
  cfg.link_chaos = row.plan;
  cfg.reelection.enabled = reelect;
  fleet::FleetEngine eng(cfg, seed);

  constexpr int kPerGroup = 3;
  constexpr double kGridM = 500.0;
  const int groups = (n + kPerGroup - 1) / kPerGroup;
  const int width = 1 + static_cast<int>(std::sqrt(static_cast<double>(groups)));
  for (int i = 0; i < n; ++i) {
    const int g = i / kPerGroup;
    const int slot = i % kPerGroup;
    fleet::MissionSpec spec;
    spec.receiver_pos = {kGridM * (g % width), kGridM * (g / width), 10.0};
    spec.start_pos = spec.receiver_pos + geo::Vec3{150.0 + 30.0 * slot, 0.0, 0.0};
    spec.mdata_bytes = 4.0e8;
    spec.rho_per_m = 1.0e-4;
    spec.deadline_s = 120.0;
    spec.spawn_t_s = 0.5 * (i % 8);
    eng.add_mission(spec);
  }
  eng.run_until(duration_s);
  return eng.totals();
}

}  // namespace

int main(int argc, char** argv) {
  exp::Cli cli("ablation_link_chaos");
  bench::Report report(cli);
  std::uint64_t seed = 20260809;
  int n = 24;
  int threads = 1;
  double duration = 600.0;
  std::string out = "ablation_link_chaos";
  cli.flag("--seed", &seed, "fleet RNG seed (chaos streams fork from the plan seed)")
      .flag("--n", &n, "missions per row and arm")
      .flag("--threads", &threads, "sweep worker threads (results are thread-count invariant)")
      .flag("--duration", &duration, "simulated seconds per arm")
      .flag("--out", &out, "output basename for <out>.csv");
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();

  const auto rows = grid();

  io::CsvWriter csv(out + ".csv");
  csv.header({"row", "arm", "deadline_utility", "delivered_mb", "completed", "failed",
              "reelections", "stalled_by_link", "stalled_out_of_range"});

  io::Table t("link chaos: static election vs mid-mission re-election (" +
              io::format_number(n) + " missions, " + io::format_number(duration) +
              " s simulated)");
  t.columns({"row", "U_static", "U_reelect", "gain_%", "reelections", "done s->r",
             "link-stalls s->r"});

  bool all_ge = true;
  for (const ChaosRow& row : rows) {
    const fleet::FleetTotals st = run_arm(row, false, n, duration, threads, seed);
    const fleet::FleetTotals re = run_arm(row, true, n, duration, threads, seed);
    const double gain_pct = st.deadline_weighted_utility > 0.0
                                ? 100.0 * (re.deadline_weighted_utility /
                                               st.deadline_weighted_utility -
                                           1.0)
                                : 0.0;
    for (const auto* arm : {&st, &re}) {
      csv.row(std::string(row.name) + "/" + (arm == &re ? "reelect" : "static"),
              std::vector<double>{arm->deadline_weighted_utility,
                                  static_cast<double>(arm->bytes_delivered) / 1e6,
                                  static_cast<double>(arm->completed),
                                  static_cast<double>(arm->failed),
                                  static_cast<double>(arm->reelections),
                                  static_cast<double>(arm->stalled_by_link),
                                  static_cast<double>(arm->stalled_out_of_range)});
    }
    t.add_row(row.name, {st.deadline_weighted_utility, re.deadline_weighted_utility, gain_pct,
                         static_cast<double>(re.reelections),
                         static_cast<double>(re.completed) - static_cast<double>(st.completed),
                         static_cast<double>(re.stalled_by_link) -
                             static_cast<double>(st.stalled_by_link)});

    const std::string tag(row.name);
    const bool ge = re.deadline_weighted_utility >= st.deadline_weighted_utility - 1e-12;
    all_ge = all_ge && ge;
    // The tentpole guarantee, machine-checked per grid row: with common
    // random numbers the guard ladder never lets a re-election lose to
    // riding out the chaos on the original election.
    report.claim(tag + "_reelect_utility_ge_static", ge);
    report.metric(tag + "_static_utility", st.deadline_weighted_utility,
                  check::Tolerance::exact(), "seeded fleet, bit-identical for any --threads");
    report.metric(tag + "_reelect_utility", re.deadline_weighted_utility,
                  check::Tolerance::exact(), "seeded fleet, bit-identical for any --threads");
    report.metric(tag + "_reelections", static_cast<double>(re.reelections),
                  check::Tolerance::exact(), "processed triggers (commits and fallbacks)");
    report.metric(tag + "_static_delivered_bytes", static_cast<double>(st.bytes_delivered),
                  check::Tolerance::exact());
    report.metric(tag + "_reelect_delivered_bytes", static_cast<double>(re.bytes_delivered),
                  check::Tolerance::exact());

    if (row.plan.any()) continue;
    // Zero-chaos row: no chaos evidence, no armed trigger — the ladder
    // must be a pure observer. Bit-identical totals, zero re-elections.
    const bool identical = re.deadline_weighted_utility == st.deadline_weighted_utility &&
                           re.bytes_delivered == st.bytes_delivered &&
                           re.completed == st.completed && re.failed == st.failed &&
                           re.mean_completion_s == st.mean_completion_s;
    report.claim("zero_chaos_bit_identical_to_static", identical,
                 "re-election enabled but chaos-free: no trigger can arm");
    report.claim("zero_chaos_zero_reelections", st.reelections == 0 && re.reelections == 0);
  }
  t.print();
  report.claim("all_rows_reelect_ge_static", all_ge);

  std::printf(
      "reading: with no chaos the re-electing fleet is bit-identical to the\n"
      "static one (the trigger needs chaos evidence to arm); under injected\n"
      "blackouts/degradation/setup failures on the elected link it detects\n"
      "mid-mission, re-runs the joint (link, d) decision on the residual\n"
      "batch, and never does worse than riding out the chaos — re-election\n"
      "under the guard ladder is a free option on top of the spawn-time\n"
      "election.\n");
  std::printf("csv: %s.csv\n", out.c_str());
  return report.emit() ? 0 : 1;
}
