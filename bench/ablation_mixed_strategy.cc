// Ablation — mixed strategies (the paper models only hover-and-transmit
// and notes mixed strategies "could further reduce the communication
// delay"): completion times of transmit-now, ship-then-transmit at the
// analytic optimum, move-and-transmit, and mixed (transmit while
// shipping, then hover) across batch sizes.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/planner.h"
#include "exp/cli.h"
#include "io/table.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("ablation_mixed_strategy");
  skyferry::bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  const auto scen = core::Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const core::SpeedDegradation deg{};

  io::Table t("mixed-strategy ablation, quad scenario (d0=100 m, v=4.5 m/s)");
  t.columns({"Mdata_MB", "transmit-now_s", "ship@dopt_s", "move&transmit_s", "mixed@dopt_s",
             "best"});
  for (double mdata_mb : {2.0, 5.0, 10.0, 20.0, 40.0, 56.2}) {
    core::DeliveryParams p = scen.delivery_params();
    p.mdata_bytes = mdata_mb * 1e6;

    const core::DelayedGratificationPlanner planner(model, scen.failure_model());
    const auto dec = planner.decide(p);

    auto run = [&](core::StrategyKind kind, double target) {
      core::StrategySpec spec;
      spec.kind = kind;
      spec.target_distance_m = target;
      return simulate_strategy(spec, model, deg, p, 0.02).completion_time_s;
    };
    const double t_now = run(core::StrategyKind::kTransmitNow, p.d0_m);
    const double t_ship = run(core::StrategyKind::kShipThenTransmit, dec.opt.d_opt_m);
    const double t_move = run(core::StrategyKind::kMoveAndTransmit, p.min_distance_m);
    const double t_mixed = run(core::StrategyKind::kMixed, dec.opt.d_opt_m);

    const char* best = "mixed";
    double bestv = t_mixed;
    if (t_now < bestv) {
      best = "now";
      bestv = t_now;
    }
    if (t_ship < bestv) {
      best = "ship";
      bestv = t_ship;
    }
    if (t_move < bestv) {
      best = "move";
      bestv = t_move;
    }
    t.add_row(io::format_number(mdata_mb) + " [" + best + "]",
              {t_now, t_ship, t_move, t_mixed, bestv});

    // EXPERIMENTS.md claims: mixed weakly dominates pure ship-then-
    // transmit at every batch size; move-and-transmit never wins.
    report.claim("mixed_dominates_ship_m" + io::format_number(mdata_mb),
                 t_mixed <= t_ship + 1e-6);
    report.claim("move_never_best_m" + io::format_number(mdata_mb),
                 std::min({t_now, t_ship, t_mixed}) <= t_move + 1e-9);
    if (mdata_mb == 56.2) {
      report.metric("mixed_baseline_56mb_s", t_mixed, check::Tolerance::relative(0.03),
                    "31.1 s vs 34.1 s pure ship (EXPERIMENTS.md)");
      report.metric("ship_baseline_56mb_s", t_ship, check::Tolerance::relative(0.03));
    }
  }
  t.print();
  std::printf(
      "reading: mixed (transmit while shipping, then hover at d_opt) weakly\n"
      "dominates pure ship-then-transmit; move-and-transmit stays dominated —\n"
      "consistent with the paper's choice to model hover-and-transmit and\n"
      "flag mixed strategies as the promising extension.\n");
  return report.emit() ? 0 : 1;
}
