// Ablation — model mismatch vs the mission resilience layer. The
// planner decides d* from the paper's nominal s(d) fit and crash law;
// this bench injects a *different* executed world (±50% rho, ±30%
// throughput, a mid-flight regime shift) and runs every row twice with
// common random numbers: a static arm that commits to the nominal d*,
// and a resilient arm that may detect the mismatch in flight and
// re-decide (ctrl::OnlineChannelEstimator -> core::ReDecisionPolicy ->
// ctrl::DegradedModeController).
//
// The machine-checked tentpole claims, per row:
//   - resilient mean delivered utility >= static (same seeds, same
//     injected world — re-deciding never hurts);
//   - the zero-mismatch row is *bit-identical* between the arms: with
//     nothing to detect, the resilience stack is a pure observer.
//
// Mission geometry: quadrocopter at d0=400 m with a 10 MB batch, so the
// now-or-later optimum is interior (d* ~ 71 m). With the paper's
// 56.2 MB batch the transfer term pins d* to the 20 m floor and a
// re-decision has no room to act in either direction. The rho rows run
// at a stressed rho = 2e-3 /m where the failure term actually shapes
// the optimum (at the paper's 2.46e-4 /m the discount is ~1 and a ±50%
// error is decision-irrelevant).
//
// Determinism contract: the table and CSV are byte-identical for any
// --threads at the same --seed (per-trial seeds are forked from trial
// indices, reduction is in trial order). --replay-row/--replay-trial
// re-run one mission of one row for debugging.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/cli.h"
#include "fault/monte_carlo.h"
#include "io/csv.h"
#include "io/table.h"

namespace {

using namespace skyferry;

struct MismatchRow {
  const char* name;
  double rho_per_m;  // scenario (planner-visible) rho
  fault::MismatchFaults mm;
};

core::Scenario row_scenario(const MismatchRow& row) {
  auto s = core::Scenario::quadrocopter();
  s.d0_m = 400.0;
  s.mdata_bytes = 10.0e6;
  s.rho_per_m = row.rho_per_m;
  return s;
}

fault::TrialSpec row_spec(const MismatchRow& row, bool resilient) {
  const auto scen = row_scenario(row);
  fault::TrialSpec spec;
  spec.scenario = scen;
  spec.faults = fault::FaultPlan::crashes_only(scen.rho_per_m);
  spec.faults.mismatch = row.mm;
  spec.resilience.enabled = resilient;
  return spec;
}

constexpr double kPaperRho = 2.46e-4;   // the paper's quadrocopter fit
constexpr double kStressRho = 2.0e-3;   // failure term shapes the optimum

std::vector<MismatchRow> grid() {
  std::vector<MismatchRow> rows;
  rows.push_back({"none", kPaperRho, {}});
  {
    fault::MismatchFaults mm;
    mm.rho_scale = 1.5;
    rows.push_back({"rho_x1.5", kStressRho, mm});
  }
  {
    fault::MismatchFaults mm;
    mm.rho_scale = 0.5;
    rows.push_back({"rho_x0.5", kStressRho, mm});
  }
  {
    fault::MismatchFaults mm;
    mm.throughput_scale = 0.7;
    rows.push_back({"tput_x0.7", kPaperRho, mm});
  }
  {
    fault::MismatchFaults mm;
    mm.throughput_scale = 1.3;
    rows.push_back({"tput_x1.3", kPaperRho, mm});
  }
  {
    fault::MismatchFaults mm;
    mm.shift_at_fraction = 0.75;
    mm.shifted_throughput_scale = 0.6;
    rows.push_back({"shift@0.75_x0.6", kPaperRho, mm});
  }
  return rows;
}

const MismatchRow& find_row(const std::vector<MismatchRow>& rows, const std::string& name) {
  for (const auto& r : rows)
    if (name == r.name) return r;
  throw fault::ConfigError("unknown row '" + name + "' (try tput_x0.7)");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int trials = 500;
  int threads = 0;
  std::string out = "ablation_model_mismatch";
  std::string replay_row = "tput_x0.7";
  std::uint64_t replay_trial = 0;
  exp::Cli cli("ablation_model_mismatch");
  cli.flag("--seed", &seed, "master seed (forked per trial)")
      .flag("--trials", &trials, "trials per row and arm")
      .flag("--threads", &threads, "worker threads, 0 = one per hardware thread")
      .flag("--out", &out, "output basename for <out>.csv and <out>_stats.json")
      .flag("--replay-row", &replay_row, "grid row whose spec --replay-trial uses")
      .flag("--replay-trial", &replay_trial, "run one resilient trial with this seed and exit");
  bench::Report report(cli);
  cli.parse_or_exit(argc, argv);

  const auto rows = grid();

  if (replay_trial != 0) {
    const auto r = fault::run_mission_trial(row_spec(find_row(rows, replay_row), true),
                                            replay_trial);
    std::printf("replay %s seed=%llu (resilient arm)\n", replay_row.c_str(),
                static_cast<unsigned long long>(replay_trial));
    std::printf("  d_opt=%.2f m  d_final=%.2f m  redecisions=%d  ship_closer=%d  mode=%d\n",
                r.d_opt_m, r.d_final_m, r.redecisions, r.ship_closer_moves, r.final_mode);
    std::printf("  detected=%d probes=%llu rejects=%llu  delivered=%.0f/%.0f  t=%.2f s  U=%.6f\n",
                r.mismatch_detected, static_cast<unsigned long long>(r.probes),
                static_cast<unsigned long long>(r.probe_rejects), r.delivered_bytes,
                r.total_bytes, r.completion_time_s, r.delivered_utility);
    return 0;
  }

  cli.print_replay_header();
  std::printf("# trials per row and arm: %d\n", trials);

  io::CsvWriter csv(out + ".csv");
  csv.header({"row", "arm", "utility", "p_full", "mean_frac", "detect_frac",
              "mean_redecisions", "mean_ship_moves", "p50_s", "p99_s"});
  exp::RunStats total;
  total.name = "ablation_model_mismatch";
  total.seed = seed;

  const auto run_arm = [&](const MismatchRow& row, bool resilient) {
    const auto s = fault::run_monte_carlo(fault::MonteCarloConfig{}
                                              .with_spec(row_spec(row, resilient))
                                              .with_trials(trials)
                                              .with_seed(seed)
                                              .with_threads(threads));
    total.merge(s.run_stats);
    csv.row(std::string(row.name) + "/" + (resilient ? "resilient" : "static"),
            std::vector<double>{s.mean_delivered_utility,
                                s.empirical_delivery_probability, s.mean_delivered_fraction,
                                s.mismatch_detected_fraction, s.mean_redecisions,
                                s.mean_ship_closer_moves, s.completion_p50_s,
                                s.completion_p99_s});
    return s;
  };

  io::Table t("model-mismatch chaos: static d* vs mid-flight re-decision");
  t.columns({"row", "U_static", "U_resilient", "gain_%", "detect", "redecide", "P(full) s->r"});
  bool all_ge = true;
  for (const auto& row : rows) {
    const auto stat = run_arm(row, false);
    const auto res = run_arm(row, true);
    const double gain_pct =
        stat.mean_delivered_utility > 0.0
            ? 100.0 * (res.mean_delivered_utility / stat.mean_delivered_utility - 1.0)
            : 0.0;
    t.add_row(row.name,
              {stat.mean_delivered_utility, res.mean_delivered_utility, gain_pct,
               res.mismatch_detected_fraction, res.mean_redecisions,
               res.empirical_delivery_probability - stat.empirical_delivery_probability});
    const std::string tag(row.name);
    const bool ge = res.mean_delivered_utility >= stat.mean_delivered_utility - 1e-12;
    all_ge = all_ge && ge;
    // The tentpole guarantee, machine-checked per grid row: with common
    // random numbers the resilient arm never does worse than the static
    // plan it degrades to when nothing trips.
    report.claim(tag + "_resilient_utility_ge_static", ge);
    report.metric(tag + "_static_utility", stat.mean_delivered_utility,
                  check::Tolerance::relative(1e-9));
    report.metric(tag + "_resilient_utility", res.mean_delivered_utility,
                  check::Tolerance::relative(1e-9));
    report.metric(tag + "_detect_fraction", res.mismatch_detected_fraction,
                  check::Tolerance::absolute(1e-9));
    report.metric(tag + "_mean_redecisions", res.mean_redecisions,
                  check::Tolerance::absolute(1e-9));

    if (row.mm.any()) continue;
    // Zero-mismatch row: the resilience stack must be a pure observer —
    // bit-identical summaries, zero re-decisions, zero detections.
    const bool identical =
        res.empirical_delivery_probability == stat.empirical_delivery_probability &&
        res.empirical_approach_survival == stat.empirical_approach_survival &&
        res.mean_delivered_fraction == stat.mean_delivered_fraction &&
        res.mean_delivered_utility == stat.mean_delivered_utility &&
        res.completion_p50_s == stat.completion_p50_s &&
        res.completion_p99_s == stat.completion_p99_s;
    report.claim("zero_mismatch_bit_identical_to_static", identical,
                 "probes run but never perturb the mission");
    report.claim("zero_mismatch_never_trips",
                 res.mismatch_detected_fraction == 0.0 && res.mean_redecisions == 0.0);
  }
  t.print();
  report.claim("all_rows_resilient_ge_static", all_ge);

  std::printf(
      "reading: when the executed world matches the model the resilient\n"
      "arm is bit-identical to the static plan (the detector never trips);\n"
      "under injected mismatch it detects in flight, re-decides d*, and\n"
      "delivers at least the static arm's utility on every grid row —\n"
      "online re-decision is a free option on top of the paper's static\n"
      "now-or-later answer.\n");
  std::printf("%s\n", total.summary_line().c_str());
  const std::string stats_path = out + "_stats.json";
  if (total.write_json(stats_path)) std::printf("csv: %s.csv  stats: %s\n", out.c_str(), stats_path.c_str());
  return report.emit() ? 0 : 1;
}
