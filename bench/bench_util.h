// Shared helpers for the figure/table regenerators: seeded multi-run
// link measurements and boxplot collection, mirroring how the paper's
// field measurements were aggregated. Flag parsing and replay headers
// live in exp::Cli — every bench main() registers typed flags there.
//
// bench::Report / bench::emit_json give every bench a machine-readable
// `--json <path>` output mode: the scalar claims, orderings, and sample
// sets the bench reproduces, in check::GoldenFile format, with the
// replay header (exact seed/threads/flags) embedded. Committed goldens
// under golden/ are regenerated/checked by scripts/golden_regress.sh.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "check/golden.h"
#include "exp/cli.h"
#include "mac/link.h"
#include "policy/service.h"
#include "policy/table.h"
#include "stats/quantile.h"

namespace skyferry::benchutil {

/// Throughput samples from `seeds` independent saturated runs of
/// `secs` seconds each at fixed geometry, under the vendor-style ARF
/// auto rate (what the paper's radios actually ran).
inline std::vector<double> autorate_samples(const phy::ChannelConfig& ch, double distance_m,
                                            double speed_mps, std::uint64_t seed, int seeds = 3,
                                            double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::ArfRate rc;
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Same under Minstrel-HT (the "modern rate control" ablation).
inline std::vector<double> minstrel_samples(const phy::ChannelConfig& ch, double distance_m,
                                            double speed_mps, std::uint64_t seed, int seeds = 3,
                                            double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::MinstrelConfig mcfg;
    mac::MinstrelHt rc(mcfg, sim::derive_seed(seed + 131ULL * k, "rc"));
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Same with a fixed MCS.
inline std::vector<double> fixed_mcs_samples(const phy::ChannelConfig& ch, int mcs,
                                             double distance_m, double speed_mps,
                                             std::uint64_t seed, int seeds = 3,
                                             double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::FixedMcs rc(mcs);
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Render one boxplot row: d, n, whisker-, q1, median, q3, whisker+, outliers.
inline std::vector<double> boxplot_row(const stats::BoxplotSummary& b) {
  return {static_cast<double>(b.n), b.whisker_low, b.q1,
          b.median,                 b.q3,          b.whisker_high,
          static_cast<double>(b.outliers.size())};
}

}  // namespace skyferry::benchutil

namespace skyferry::bench {

/// Build a GoldenFile from a finished run: the Cli's replay header plus
/// whatever the Report collected.
[[nodiscard]] inline check::GoldenFile make_golden(const exp::Cli& cli,
                                                   check::GoldenFile golden) {
  golden.set_replay(cli.replay_command(), cli.flag_values());
  return golden;
}

/// Serialize `golden` (with `cli`'s replay header embedded) to `path`.
inline bool emit_json(const exp::Cli& cli, check::GoldenFile golden, const std::string& path) {
  const check::GoldenFile g = make_golden(cli, std::move(golden));
  if (!g.save(path)) {
    std::fprintf(stderr, "%s: cannot write %s\n", cli.bench().c_str(), path.c_str());
    return false;
  }
  std::printf("json: %s (%zu metrics, %zu orderings, %zu sample sets)\n", path.c_str(),
              g.metrics().size(), g.orderings().size(), g.samples().size());
  return true;
}

/// Per-bench collector for the machine-checkable claims. Construction
/// registers the shared `--json <path>` flag on the Cli; metric() /
/// ordering() / samples() record claims as the bench computes them, and
/// emit() writes the GoldenFile when --json was passed (no-op
/// otherwise). Claims that are *shape* indicators (who wins, what is
/// monotone) are recorded as 0/1 metrics with exact tolerance.
class Report {
 public:
  explicit Report(exp::Cli& cli) : cli_(&cli), golden_(cli.bench()) {
    cli.flag("--json", &json_path_,
             "write machine-readable metrics + replay header (golden format) to this path");
  }

  void metric(std::string name, double value, check::Tolerance tol = {},
              std::string note = {}) {
    golden_.add_metric(std::move(name), value, tol, std::move(note));
  }
  /// A boolean shape claim ("transmit-now is the slowest hover"), pinned
  /// exactly.
  void claim(std::string name, bool holds, std::string note = {}) {
    golden_.add_metric(std::move(name), holds ? 1.0 : 0.0, check::Tolerance::exact(),
                       std::move(note));
  }
  void ordering(std::string name, std::vector<std::string> ranked, std::string note = {}) {
    golden_.add_ordering(std::move(name), std::move(ranked), std::move(note));
  }
  void samples(std::string name, std::vector<double> values, double ks_alpha = 1e-3,
               std::string note = {}) {
    golden_.add_samples(std::move(name), std::move(values), ks_alpha, std::move(note));
  }

  [[nodiscard]] bool requested() const noexcept { return !json_path_.empty(); }
  [[nodiscard]] const check::GoldenFile& golden() const noexcept { return golden_; }

  /// Write the JSON if --json was passed. Returns false only on I/O
  /// failure; call at the end of main().
  bool emit() const { return !requested() || emit_json(*cli_, golden_, json_path_); }

 private:
  exp::Cli* cli_;
  std::string json_path_;
  check::GoldenFile golden_;
};

/// Shared `--policy-table <path>` flag for the deciding benches: every
/// "now or later?" solve flows through one policy::DecisionService, and
/// passing a compiled table swaps the exact backend for the O(1) lookup
/// without touching the bench's own code. Default (no flag) keeps the
/// exact solver, so the committed goldens are what they always were.
class PolicyTableFlag {
 public:
  explicit PolicyTableFlag(exp::Cli& cli) {
    cli.flag("--policy-table", &path_,
             "compiled policy table (.json) to serve eligible decisions from; "
             "empty = exact optimizer");
  }

  /// Load + install the table into `service` when the flag was passed.
  /// Throws on a corrupt/mismatched file — a silent exact fallback would
  /// misreport what the bench measured.
  void install_into(policy::DecisionService& service) const {
    if (path_.empty()) return;
    service.install_table(policy::PolicyTable::load(path_));
    std::printf("policy-table: %s installed (exact fallback outside its domain)\n",
                path_.c_str());
  }

  [[nodiscard]] bool requested() const noexcept { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace skyferry::bench
