// Shared helpers for the figure/table regenerators: seeded multi-run
// link measurements and boxplot collection, mirroring how the paper's
// field measurements were aggregated. Flag parsing and replay headers
// live in exp::Cli — every bench main() registers typed flags there.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/link.h"
#include "stats/quantile.h"

namespace skyferry::benchutil {

/// Throughput samples from `seeds` independent saturated runs of
/// `secs` seconds each at fixed geometry, under the vendor-style ARF
/// auto rate (what the paper's radios actually ran).
inline std::vector<double> autorate_samples(const phy::ChannelConfig& ch, double distance_m,
                                            double speed_mps, std::uint64_t seed, int seeds = 3,
                                            double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::ArfRate rc;
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Same under Minstrel-HT (the "modern rate control" ablation).
inline std::vector<double> minstrel_samples(const phy::ChannelConfig& ch, double distance_m,
                                            double speed_mps, std::uint64_t seed, int seeds = 3,
                                            double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::MinstrelConfig mcfg;
    mac::MinstrelHt rc(mcfg, sim::derive_seed(seed + 131ULL * k, "rc"));
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Same with a fixed MCS.
inline std::vector<double> fixed_mcs_samples(const phy::ChannelConfig& ch, int mcs,
                                             double distance_m, double speed_mps,
                                             std::uint64_t seed, int seeds = 3,
                                             double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::FixedMcs rc(mcs);
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Render one boxplot row: d, n, whisker-, q1, median, q3, whisker+, outliers.
inline std::vector<double> boxplot_row(const stats::BoxplotSummary& b) {
  return {static_cast<double>(b.n), b.whisker_low, b.q1,
          b.median,                 b.q3,          b.whisker_high,
          static_cast<double>(b.outliers.size())};
}

}  // namespace skyferry::benchutil
