// Shared helpers for the figure/table regenerators: seeded multi-run
// link measurements and boxplot collection, mirroring how the paper's
// field measurements were aggregated.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mac/link.h"
#include "stats/quantile.h"

namespace skyferry::benchutil {

/// Parse `--seed N` (or `--seed=N`) from argv; fall back to `def`.
/// Every stochastic bench routes its master seed through this so any
/// run can be replayed exactly.
inline std::uint64_t parse_seed(int argc, char** argv, std::uint64_t def) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      return std::strtoull(argv[i + 1], nullptr, 10);
    if (std::strncmp(argv[i], "--seed=", 7) == 0) return std::strtoull(argv[i] + 7, nullptr, 10);
  }
  return def;
}

/// Parse `--flag N` / `--flag=N` integer options (e.g. --trials).
inline long parse_long(int argc, char** argv, const char* flag, long def) {
  const std::size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
      return std::strtol(argv[i + 1], nullptr, 10);
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=')
      return std::strtol(argv[i] + len + 1, nullptr, 10);
  }
  return def;
}

/// Print the reproducibility header: the seed every draw derives from.
inline void print_seed_header(const char* bench, std::uint64_t seed) {
  std::printf("# %s  seed=%llu  (replay: %s --seed %llu)\n", bench,
              static_cast<unsigned long long>(seed), bench,
              static_cast<unsigned long long>(seed));
}

/// Throughput samples from `seeds` independent saturated runs of
/// `secs` seconds each at fixed geometry, under the vendor-style ARF
/// auto rate (what the paper's radios actually ran).
inline std::vector<double> autorate_samples(const phy::ChannelConfig& ch, double distance_m,
                                            double speed_mps, std::uint64_t seed, int seeds = 3,
                                            double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::ArfRate rc;
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Same under Minstrel-HT (the "modern rate control" ablation).
inline std::vector<double> minstrel_samples(const phy::ChannelConfig& ch, double distance_m,
                                            double speed_mps, std::uint64_t seed, int seeds = 3,
                                            double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::MinstrelConfig mcfg;
    mac::MinstrelHt rc(mcfg, sim::derive_seed(seed + 131ULL * k, "rc"));
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Same with a fixed MCS.
inline std::vector<double> fixed_mcs_samples(const phy::ChannelConfig& ch, int mcs,
                                             double distance_m, double speed_mps,
                                             std::uint64_t seed, int seeds = 3,
                                             double secs = 60.0) {
  std::vector<double> all;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::FixedMcs rc(mcs);
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(distance_m, speed_mps));
    for (const auto& s : res.samples) all.push_back(s.mbps);
  }
  return all;
}

/// Render one boxplot row: d, n, whisker-, q1, median, q3, whisker+, outliers.
inline std::vector<double> boxplot_row(const stats::BoxplotSummary& b) {
  return {static_cast<double>(b.n), b.whisker_low, b.q1,
          b.median,                 b.q3,          b.whisker_high,
          static_cast<double>(b.outliers.size())};
}

}  // namespace skyferry::benchutil
