// Calibration helper: maps median channel SNR to simulated auto-rate
// goodput, inverts that map against the paper's published throughput
// fits, and prints the suggested AerialSnrModel constants (a, b) for
// each platform (DESIGN.md §4). Re-run after touching the PHY/MAC
// models and update phy/pathloss.h with the suggested values.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/cli.h"
#include "io/csv.h"
#include "io/table.h"
#include "mac/link.h"
#include "stats/quantile.h"
#include "stats/regression.h"

namespace {

using namespace skyferry;

double median_autorate_mbps(phy::ChannelConfig ch, std::uint64_t seed, double secs = 60.0) {
  mac::LinkConfig cfg;
  cfg.channel = ch;
  // The vendor ARF controller is the instrument: the paper's auto-rate
  // measurements ran the Ralink firmware rate control, not minstrel.
  mac::ArfRate rc;
  mac::LinkSimulator sim(cfg, rc, seed);
  const auto res = sim.run_saturated(secs, mac::static_geometry(60.0));
  std::vector<double> mbps;
  for (const auto& s : res.samples) mbps.push_back(s.mbps);
  return stats::median(mbps);
}

/// Median goodput at a fixed flat SNR, averaged over seeds.
double goodput_at_snr(const phy::ChannelConfig& base, double snr_db, std::uint64_t seed) {
  phy::ChannelConfig ch = base;
  ch.snr_model = phy::AerialSnrModel(snr_db, 0.0);
  double sum = 0.0;
  const int kSeeds = 3;
  for (int s = 0; s < kSeeds; ++s) {
    sum += median_autorate_mbps(ch, seed + 10007ULL * (s + 1) +
                                        static_cast<std::uint64_t>(snr_db * 10));
  }
  return sum / kSeeds;
}

/// Invert a monotone-smoothed (snr -> goodput) table: smallest snr whose
/// goodput reaches `target_mbps`.
double snr_for_goodput(const std::vector<double>& snrs, const std::vector<double>& goodput,
                       double target) {
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    if (goodput[i] >= target) {
      if (i == 0) return snrs[0];
      const double w = (target - goodput[i - 1]) / (goodput[i] - goodput[i - 1] + 1e-12);
      return snrs[i - 1] + w * (snrs[i] - snrs[i - 1]);
    }
  }
  return snrs.back();
}

struct PlatformCal {
  const char* name;
  phy::ChannelConfig cfg;
  double fit_a;  // paper fit: s(d) = a*log2(d)+b  [Mb/s]
  double fit_b;
  std::vector<double> distances;
};

void calibrate(const PlatformCal& p, std::uint64_t seed, bench::Report& report) {
  std::printf("\n=== %s ===\n", p.name);
  std::vector<double> snrs, gps;
  for (double snr = -4.0; snr <= 26.0; snr += 1.0) {
    snrs.push_back(snr);
    gps.push_back(goodput_at_snr(p.cfg, snr, seed));
  }
  // Isotonic smoothing (pool adjacent violators, simple backward pass).
  for (std::size_t i = gps.size(); i-- > 1;) {
    if (gps[i - 1] > gps[i]) gps[i - 1] = gps[i];
  }
  io::Table t("snr -> goodput (smoothed)");
  t.columns({"snr_db", "Mb/s"});
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    t.add_row(io::format_number(snrs[i]), {gps[i]});
  }
  t.print();

  std::vector<double> xs, ys;
  std::printf("required snr per distance:\n");
  for (double d : p.distances) {
    const double target = std::max(p.fit_a * std::log2(d) + p.fit_b, 0.3);
    const double snr = snr_for_goodput(snrs, gps, target);
    std::printf("  d=%5.0f m  target=%6.2f Mb/s  snr=%6.2f dB\n", d, target, snr);
    xs.push_back(d);
    ys.push_back(snr);
  }
  const auto fit = stats::log2_fit(xs, ys);
  std::printf("suggested AerialSnrModel: a=%.2f  b=%.2f  (R^2=%.3f)\n", fit.b, -fit.a,
              fit.r_squared);
  // The suggested constants ARE the calibration: a 10% drift in either
  // means the PHY/MAC stack no longer reproduces the paper's fits.
  report.metric(std::string(p.name) + "_snr_model_a", fit.b, check::Tolerance::relative(0.08),
                "suggested AerialSnrModel intercept (dB at d=1 m)");
  report.metric(std::string(p.name) + "_snr_model_b", -fit.a, check::Tolerance::relative(0.08),
                "suggested AerialSnrModel slope (dB per octave of distance)");
  report.claim(std::string(p.name) + "_inverse_fit_r2_above_0.9", fit.r_squared > 0.9);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0;
  exp::Cli cli("calibrate_channel");
  cli.flag("--seed", &seed, "master seed");
  bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  calibrate({"quadrocopter", phy::ChannelConfig::quadrocopter(), -10.5, 73.0,
             {20, 30, 40, 50, 60, 70, 80, 90, 100}},
            seed, report);
  calibrate({"airplane", phy::ChannelConfig::airplane(), -5.56, 49.0,
             {20, 40, 60, 80, 100, 140, 180, 220, 260, 300}},
            seed, report);

  std::printf("\n=== preset distance sweep vs paper fits (current constants) ===\n");
  io::Table t2("distance sweep");
  t2.columns({"d_m", "quad sim", "quad paper", "air sim", "air paper"});
  for (double d = 20.0; d <= 300.0; d += 20.0) {
    const double quad_paper = std::max(-10.5 * std::log2(d) + 73.0, 0.0);
    const double air_paper = std::max(-5.56 * std::log2(d) + 49.0, 0.0);
    auto preset_median = [&](const phy::ChannelConfig& ch, std::uint64_t seed) {
      double sum = 0.0;
      for (int s = 0; s < 3; ++s) {
        mac::LinkConfig cfg;
        cfg.channel = ch;
        mac::ArfRate rc;
        mac::LinkSimulator sim(cfg, rc, seed + 977ULL * s);
        const auto res = sim.run_saturated(60.0, mac::static_geometry(d));
        std::vector<double> mbps;
        for (const auto& smp : res.samples) mbps.push_back(smp.mbps);
        sum += stats::median(mbps);
      }
      return sum / 3.0;
    };
    const double quad_sim =
        d <= 130.0 ? preset_median(phy::ChannelConfig::quadrocopter(),
                                   seed + 3000 + static_cast<std::uint64_t>(d))
                   : 0.0;
    const double air_sim =
        preset_median(phy::ChannelConfig::airplane(), seed + 4000 + static_cast<std::uint64_t>(d));
    t2.add_row(io::format_number(d), {quad_sim, quad_paper, air_sim, air_paper});
    if (d == 60.0) {
      report.metric("quad_sim_d60_mbps", quad_sim, check::Tolerance::sigmas(3.0, 0.4),
                    "preset constants vs paper fit at the quad anchor distance");
      report.metric("air_sim_d60_mbps", air_sim, check::Tolerance::sigmas(3.0, 0.4));
      report.claim("quad_d60_within_15pct_of_paper",
                   std::abs(quad_sim - quad_paper) <= 0.15 * quad_paper);
      report.claim("air_d60_within_15pct_of_paper",
                   std::abs(air_sim - air_paper) <= 0.15 * air_paper);
    }
  }
  t2.print();
  return report.emit() ? 0 : 1;
}
