// Figure 1 — "Experimental measurements of transmitted data": cumulative
// data delivered over time for the strategies d=20/40/60/80 m and
// 'moving', one UAV starting 80 m from a hovering peer with 20 MB.
//
// Two reproductions are printed: (a) the median-model strategy engine
// (the paper's Sec. 2 abstraction) and (b) the full PHY+MAC simulator.
// The headline shape: d=60 beats d=80 beyond the ~10-15 MB crossover,
// and 'moving' loses to every hover-and-transmit strategy.
#include <algorithm>
#include <cstdio>

#include "core/strategy.h"
#include "exp/cli.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/table.h"
#include "mac/link.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("fig1_strategy_curves");
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  const auto model = core::PaperLogThroughput::quadrocopter();
  const core::SpeedDegradation deg{};
  const core::DeliveryParams params{80.0, 4.5, 20e6, 20.0};

  // ---- (a) median-model curves -------------------------------------------
  const auto outcomes = core::compare_strategies({20.0, 40.0, 60.0, 80.0}, model, deg, params);

  io::AsciiChart chart("Figure 1: transmitted data vs time (median model, 20 MB, d0=80 m)", 70,
                       18);
  chart.x_label("time (s)").y_label("MB");
  io::CsvWriter csv("fig1_strategy_curves.csv");
  csv.header({"strategy", "t_s", "delivered_mb"});
  for (const auto& out : outcomes) {
    io::Series s;
    s.name = out.spec.label();
    for (std::size_t i = 0; i < out.curve.size(); i += std::max<std::size_t>(out.curve.size() / 60, 1)) {
      s.xs.push_back(out.curve[i].t_s);
      s.ys.push_back(out.curve[i].delivered_mb);
    }
    // Always include the completion point.
    s.xs.push_back(out.completion_time_s);
    s.ys.push_back(out.curve.back().delivered_mb);
    chart.add(s);
    for (const auto& pt : out.curve) csv.row(out.spec.label(), std::vector<double>{pt.t_s, pt.delivered_mb});
  }
  chart.print();

  io::Table t("completion times (median model)");
  t.columns({"strategy", "ship_s", "tx_s", "total_s"});
  for (const auto& out : outcomes) {
    t.add_row(out.spec.label(), {out.ship_time_s, out.transmit_time_s, out.completion_time_s});
  }
  t.print();

  const double mstar = core::crossover_mdata_bytes(model, 80.0, 60.0, 4.5) / 1e6;
  std::printf("crossover d=80 vs d=60: Mdata* = %.1f MB (paper: ~15 MB measured)\n\n", mstar);

  // ---- (b) full-stack curves ----------------------------------------------
  std::printf("full PHY+MAC stack (mean over 5 channel realizations):\n");
  io::Table ft("completion times (full stack)");
  ft.columns({"strategy", "ship_s", "tx_s (mean)", "total_s (mean)"});
  for (double d : {20.0, 40.0, 60.0, 80.0}) {
    const double tship = (80.0 - d) / 4.5;
    double tx_sum = 0.0;
    for (int k = 0; k < 5; ++k) {
      mac::LinkConfig cfg;
      cfg.channel = phy::ChannelConfig::quadrocopter();
      mac::MinstrelConfig mcfg;
      mac::MinstrelHt rc(mcfg, 11 + k);
      mac::LinkSimulator sim(cfg, rc, 900 + 31ULL * k + static_cast<std::uint64_t>(d));
      tx_sum += sim.run_transfer(20'000'000, 900.0, mac::static_geometry(d)).duration_s;
    }
    const double tx = tx_sum / 5.0;
    ft.add_row("d=" + std::to_string(static_cast<int>(d)), {tship, tx, tship + tx});
  }
  ft.print();
  std::printf("csv: fig1_strategy_curves.csv\n");
  return 0;
}
