// Figure 1 — "Experimental measurements of transmitted data": cumulative
// data delivered over time for the strategies d=20/40/60/80 m and
// 'moving', one UAV starting 80 m from a hovering peer with 20 MB.
//
// Two reproductions are printed: (a) the median-model strategy engine
// (the paper's Sec. 2 abstraction) and (b) the full PHY+MAC simulator.
// The headline shape: d=60 beats d=80 beyond the ~10-15 MB crossover,
// and 'moving' loses to every hover-and-transmit strategy.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/strategy.h"
#include "exp/cli.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/table.h"
#include "mac/link.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("fig1_strategy_curves");
  skyferry::bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  const auto model = core::PaperLogThroughput::quadrocopter();
  const core::SpeedDegradation deg{};
  const core::DeliveryParams params{80.0, 4.5, 20e6, 20.0};

  // ---- (a) median-model curves -------------------------------------------
  const auto outcomes = core::compare_strategies({20.0, 40.0, 60.0, 80.0}, model, deg, params);

  io::AsciiChart chart("Figure 1: transmitted data vs time (median model, 20 MB, d0=80 m)", 70,
                       18);
  chart.x_label("time (s)").y_label("MB");
  io::CsvWriter csv("fig1_strategy_curves.csv");
  csv.header({"strategy", "t_s", "delivered_mb"});
  for (const auto& out : outcomes) {
    io::Series s;
    s.name = out.spec.label();
    for (std::size_t i = 0; i < out.curve.size(); i += std::max<std::size_t>(out.curve.size() / 60, 1)) {
      s.xs.push_back(out.curve[i].t_s);
      s.ys.push_back(out.curve[i].delivered_mb);
    }
    // Always include the completion point.
    s.xs.push_back(out.completion_time_s);
    s.ys.push_back(out.curve.back().delivered_mb);
    chart.add(s);
    for (const auto& pt : out.curve) csv.row(out.spec.label(), std::vector<double>{pt.t_s, pt.delivered_mb});
  }
  chart.print();

  io::Table t("completion times (median model)");
  t.columns({"strategy", "ship_s", "tx_s", "total_s"});
  for (const auto& out : outcomes) {
    t.add_row(out.spec.label(), {out.ship_time_s, out.transmit_time_s, out.completion_time_s});
  }
  t.print();

  const double mstar = core::crossover_mdata_bytes(model, 80.0, 60.0, 4.5) / 1e6;
  std::printf("crossover d=80 vs d=60: Mdata* = %.1f MB (paper: ~15 MB measured)\n\n", mstar);

  // Machine-checked Fig.-1 shape claims (EXPERIMENTS.md): the median
  // model is deterministic, so totals carry a tight 2% drift margin —
  // loose enough for FP churn, tight enough that a 10% calibration-slope
  // perturbation fails the golden check.
  {
    double moving_total = 0.0;
    double now_total = 0.0;
    double slowest_hover = 0.0;
    double argmin_d = 0.0;
    double best_total = 1e300;
    std::vector<std::pair<std::string, double>> hover_scores;
    for (const auto& out : outcomes) {
      report.metric("total_" + out.spec.label() + "_s", out.completion_time_s,
                    check::Tolerance::relative(0.02));
      if (out.spec.kind == core::StrategyKind::kMoveAndTransmit) {
        moving_total = out.completion_time_s;
        continue;
      }
      if (out.spec.kind == core::StrategyKind::kTransmitNow) now_total = out.completion_time_s;
      slowest_hover = std::max(slowest_hover, out.completion_time_s);
      hover_scores.emplace_back(out.spec.label(), out.completion_time_s);
      if (out.spec.kind == core::StrategyKind::kShipThenTransmit &&
          out.completion_time_s < best_total) {
        best_total = out.completion_time_s;
        argmin_d = out.spec.target_distance_m;
      }
    }
    std::stable_sort(hover_scores.begin(), hover_scores.end(),
                     [](const auto& a, const auto& b) { return a.second < b.second; });
    std::vector<std::string> ranked;
    for (const auto& [label, total] : hover_scores) ranked.push_back(label);
    report.ordering("hover_totals_ascending", ranked,
                    "paper Fig.1: an intermediate distance wins, transmit-now last");
    report.metric("argmin_hover_d_m", argmin_d, check::Tolerance::absolute(20.0),
                  "paper: best strategy in the d=40..60 near-tie");
    report.claim("transmit_now_slowest_hover", now_total >= slowest_hover - 1e-9,
                 "paper Fig.1: transmitting at d0=80 m loses for 20 MB");
    report.claim("moving_dominated", [&] {
      for (const auto& out : outcomes)
        if (out.spec.kind == core::StrategyKind::kShipThenTransmit &&
            moving_total < out.completion_time_s)
          return false;
      return true;
    }(), "paper Fig.1: move-and-transmit loses to every ship-then-transmit strategy");
    report.metric("crossover_d80_vs_d60_mb", mstar, check::Tolerance::relative(0.05),
                  "paper measures ~15 MB; median-model fit gives ~9 MB");
  }

  // ---- (b) full-stack curves ----------------------------------------------
  std::printf("full PHY+MAC stack (mean over 5 channel realizations):\n");
  io::Table ft("completion times (full stack)");
  ft.columns({"strategy", "ship_s", "tx_s (mean)", "total_s (mean)"});
  for (double d : {20.0, 40.0, 60.0, 80.0}) {
    const double tship = (80.0 - d) / 4.5;
    double tx_sum = 0.0;
    for (int k = 0; k < 5; ++k) {
      mac::LinkConfig cfg;
      cfg.channel = phy::ChannelConfig::quadrocopter();
      mac::MinstrelConfig mcfg;
      mac::MinstrelHt rc(mcfg, 11 + k);
      mac::LinkSimulator sim(cfg, rc, 900 + 31ULL * k + static_cast<std::uint64_t>(d));
      tx_sum += sim.run_transfer(20'000'000, 900.0, mac::static_geometry(d)).duration_s;
    }
    const double tx = tx_sum / 5.0;
    ft.add_row("d=" + std::to_string(static_cast<int>(d)), {tship, tx, tship + tx});
    // Seeded full-stack runs are bit-deterministic; 5% absorbs model
    // retuning without letting the Fig.-1 ordering drift.
    report.metric("fullstack_total_d" + std::to_string(static_cast<int>(d)) + "_s", tship + tx,
                  check::Tolerance::relative(0.05));
  }
  ft.print();
  std::printf("csv: fig1_strategy_curves.csv\n");
  return report.emit() ? 0 : 1;
}
