// Figure 2 — the delivery tradeoff under failure: transmit immediately
// at d0, ship to an intermediate d, or push all the way to the minimum
// distance. A Monte-Carlo over the exponential failure process reports
// how much of Mdata each strategy delivers on average and how often the
// batch is lost mid-approach — the "70% / 40% / 0%" story of the figure.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "core/strategy.h"
#include "io/table.h"
#include "sim/rng.h"
#include "uav/failure.h"

namespace {

using namespace skyferry;

struct MonteCarloResult {
  double mean_delivered_fraction{0.0};
  double p_full_delivery{0.0};
  double p_failed_before_tx{0.0};
  double mean_delay_when_complete{0.0};
};

/// Simulate `trials` deliveries with failures injected along the
/// approach (and during the hover transmission; hovering risk scaled by
/// the distance-equivalent of the time spent).
MonteCarloResult run(const core::Scenario& scen, double target_d, double rho, int trials,
                     std::uint64_t seed) {
  const auto model = scen.paper_throughput();
  const core::SpeedDegradation deg{};
  core::DeliveryParams params = scen.delivery_params();

  core::StrategySpec spec;
  spec.kind = (target_d >= params.d0_m) ? core::StrategyKind::kTransmitNow
                                        : core::StrategyKind::kShipThenTransmit;
  spec.target_distance_m = target_d;
  const auto out = simulate_strategy(spec, model, deg, params);

  const uav::FailureModel failure(rho);
  sim::Rng rng(seed);
  MonteCarloResult mc;
  double complete_delay_sum = 0.0;
  int completes = 0;
  for (int i = 0; i < trials; ++i) {
    // Failure strikes after a random distance of flight.
    const double fail_dist = failure.sample_failure_distance(rng);
    const double ship_dist = params.d0_m - target_d;
    if (fail_dist < ship_dist) {
      // Went down before transmitting anything.
      ++mc.p_failed_before_tx;
      continue;
    }
    // During the hover transmission the UAV is static: the paper's model
    // attaches risk to distance traveled, so hovering is failure-free.
    mc.mean_delivered_fraction += 1.0;
    ++completes;
    complete_delay_sum += out.completion_time_s;
  }
  mc.p_full_delivery = static_cast<double>(completes) / trials;
  mc.p_failed_before_tx /= trials;
  mc.mean_delivered_fraction /= trials;
  mc.mean_delay_when_complete = completes ? complete_delay_sum / completes : 0.0;
  return mc;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = benchutil::parse_seed(argc, argv, 42);
  benchutil::print_seed_header("fig2_failure_tradeoff", seed);
  const core::Scenario scen = core::Scenario::quadrocopter();
  std::printf("Figure 2 tradeoff, quadrocopter scenario (Mdata=%.1f MB, d0=%.0f m)\n",
              scen.mdata_bytes / 1e6, scen.d0_m);

  for (double rho : {scen.rho_per_m, 2e-3, 8e-3}) {
    io::Table t("rho = " + io::format_number(rho) + " [1/m]");
    t.columns({"strategy", "P(deliver all)", "P(lost before tx)", "delay if ok [s]",
               "expected value = P*1/delay"});
    for (double d : {scen.d0_m, 60.0, scen.min_distance_m}) {
      const auto mc = run(scen, d, rho, 20000, seed);
      const double ev = mc.mean_delay_when_complete > 0.0
                            ? mc.p_full_delivery / mc.mean_delay_when_complete
                            : 0.0;
      t.add_row("d=" + io::format_number(d),
                {mc.p_full_delivery, mc.p_failed_before_tx, mc.mean_delay_when_complete, ev});
    }
    t.print();
  }
  std::printf(
      "reading: at the baseline rho every strategy almost always survives, so\n"
      "the shortest-delay plan wins; as rho grows the deep approach starts\n"
      "losing whole batches and the sweet spot moves back toward d0 (Fig 8).\n");
  return 0;
}
