// Figure 2 — the delivery tradeoff under failure: transmit immediately
// at d0, ship to an intermediate d, or push all the way to the minimum
// distance. A Monte-Carlo over the exponential failure process reports
// how much of Mdata each strategy delivers on average and how often the
// batch is lost mid-approach — the "70% / 40% / 0%" story of the figure.
//
// The (rho, d) grid is an exp::Sweep and the 20000 trials per point fan
// out across the experiment engine; results are independent of --threads.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "core/strategy.h"
#include "exp/cli.h"
#include "exp/supervisor.h"
#include "io/table.h"
#include "sim/rng.h"
#include "uav/failure.h"

namespace {

using namespace skyferry;

struct MonteCarloResult {
  double mean_delivered_fraction{0.0};
  double p_full_delivery{0.0};
  double p_failed_before_tx{0.0};
  double mean_delay_when_complete{0.0};
};

/// Reduce one sweep point's trials: each trial is a sampled
/// distance-to-failure compared against the shipping distance (during
/// the hover transmission the UAV is static; the paper's model attaches
/// risk to distance traveled, so hovering is failure-free). Trials are
/// int, not bool: vector<bool> packs bits and parallel slot writes
/// would race.
MonteCarloResult reduce(const std::vector<int>& delivered, double completion_time_s,
                        const exp::CampaignReport& report, std::size_t point_idx) {
  MonteCarloResult mc;
  int completes = 0;
  std::size_t usable = 0;
  for (std::size_t t = 0; t < delivered.size(); ++t) {
    // Quarantined slots hold defaults, not outcomes — leave them out.
    if (report.quarantined > 0 && report.is_quarantined(point_idx, static_cast<int>(t)))
      continue;
    ++usable;
    if (delivered[t] != 0) {
      ++completes;
    } else {
      ++mc.p_failed_before_tx;
    }
  }
  const double n = static_cast<double>(usable > 0 ? usable : 1);
  mc.p_full_delivery = completes / n;
  mc.p_failed_before_tx /= n;
  mc.mean_delivered_fraction = mc.p_full_delivery;
  mc.mean_delay_when_complete = completes ? completion_time_s : 0.0;
  return mc;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  int trials = 20000;
  int threads = 0;
  std::string checkpoint;
  bool resume = false;
  int max_retries = 1;
  double trial_timeout_ms = 0.0;
  bool fail_fast = false;
  exp::Cli cli("fig2_failure_tradeoff");
  cli.flag("--seed", &seed, "master seed (forked per trial)")
      .flag("--trials", &trials, "trials per (rho, d) point")
      .flag("--threads", &threads, "worker threads, 0 = one per hardware thread")
      .flag("--checkpoint", &checkpoint, "journal completed chunks to this file")
      .flag("--resume", &resume, "skip chunks already journaled in --checkpoint")
      .flag("--max-retries", &max_retries, "same-seed retries before quarantining a trial")
      .flag("--trial-timeout-ms", &trial_timeout_ms, "soft per-trial deadline, 0 = off")
      .flag("--fail-fast", &fail_fast, "abort on the first trial exception");
  bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();

  const core::Scenario scen = core::Scenario::quadrocopter();
  std::printf("Figure 2 tradeoff, quadrocopter scenario (Mdata=%.1f MB, d0=%.0f m)\n",
              scen.mdata_bytes / 1e6, scen.d0_m);

  const std::vector<double> rhos{scen.rho_per_m, 2e-3, 8e-3};
  const std::vector<double> targets{scen.d0_m, 60.0, scen.min_distance_m};
  const auto points = exp::Sweep{}.axis("rho", rhos).axis("d", targets).cartesian();

  // Per-point deterministic precomputation: the strategy outcome (delay
  // etc.) is not stochastic, only the failure draw is.
  const auto model = scen.paper_throughput();
  const core::SpeedDegradation deg{};
  const core::DeliveryParams params = scen.delivery_params();
  std::vector<double> completion_s(points.size(), 0.0);
  for (const auto& p : points) {
    const double target_d = p.at("d");
    core::StrategySpec spec;
    spec.kind = (target_d >= params.d0_m) ? core::StrategyKind::kTransmitNow
                                          : core::StrategyKind::kShipThenTransmit;
    spec.target_distance_m = target_d;
    completion_s[p.index] = simulate_strategy(spec, model, deg, params).completion_time_s;
  }

  exp::RunnerConfig rc;
  rc.threads = threads;
  rc.trials = trials;
  rc.seed = seed;
  exp::SupervisorOptions so;
  so.name = "fig2_failure_tradeoff";
  so.max_retries = max_retries;
  so.trial_timeout_ms = trial_timeout_ms;
  so.fail_fast = fail_fast;
  so.checkpoint_path = checkpoint;
  so.resume = resume;
  const auto run =
      exp::SupervisedRunner(rc, so).run(points, [&](const exp::Point& p, std::uint64_t s) {
        const uav::FailureModel failure(p.at("rho"));
        sim::Rng rng(s);
        // Failure strikes after a random distance of flight; delivered iff
        // the UAV out-flies it over the shipping leg.
        return failure.sample_failure_distance(rng) >= params.d0_m - p.at("d") ? 1 : 0;
      });
  if (run.interrupted) {
    std::printf(
        "# interrupted (SIGINT/SIGTERM) — completed chunks are journaled; rerun\n"
        "# the same command with --resume to finish.\n");
    return 130;
  }
  if (run.report.quarantined > 0)
    std::printf("%s\n", run.report.summary_line().c_str());

  for (std::size_t r = 0; r < rhos.size(); ++r) {
    io::Table t("rho = " + io::format_number(rhos[r]) + " [1/m]");
    t.columns({"strategy", "P(deliver all)", "P(lost before tx)", "delay if ok [s]",
               "expected value = P*1/delay"});
    const bool headline = rhos[r] == 8e-3;  // the row EXPERIMENTS.md quotes
    std::vector<std::pair<std::string, double>> evs;
    for (std::size_t k = 0; k < targets.size(); ++k) {
      const std::size_t idx = r * targets.size() + k;
      const auto mc = reduce(run.results[idx], completion_s[idx], run.report, idx);
      const double ev = mc.mean_delay_when_complete > 0.0
                            ? mc.p_full_delivery / mc.mean_delay_when_complete
                            : 0.0;
      const std::string label = "d=" + io::format_number(targets[k]);
      t.add_row(label,
                {mc.p_full_delivery, mc.p_failed_before_tx, mc.mean_delay_when_complete, ev});
      if (headline) {
        // Binomial noise band for P(deliver): 3 sigma at the recorded
        // trial count, so reduced-trial replays still pass.
        const double p = mc.p_full_delivery;
        const double sd =
            std::sqrt(std::max(p * (1.0 - p), 1e-6) / static_cast<double>(trials));
        report.metric("p_deliver_" + label, p, check::Tolerance::sigmas(3.0, sd),
                      "paper Fig.2 story: deeper approach risks the batch");
        report.metric("delay_ok_" + label, mc.mean_delay_when_complete,
                      check::Tolerance::relative(0.05), "deterministic completion time");
        report.metric("ev_" + label, ev, check::Tolerance::relative(0.10));
        evs.emplace_back(label, ev);
      }
    }
    if (headline) {
      std::stable_sort(evs.begin(), evs.end(),
                       [](const auto& a, const auto& b) { return a.second > b.second; });
      std::vector<std::string> ranked;
      for (const auto& [label, value] : evs) ranked.push_back(label);
      report.ordering("ev_descending_rho8e-3", ranked,
                      "paper: best expected value sits between the extremes");
    }
    t.print();
  }
  std::printf("%s\n", run.stats.summary_line().c_str());
  exp::RunStats stats = run.stats;
  stats.name = "fig2_failure_tradeoff";
  if (stats.write_json("fig2_failure_tradeoff_stats.json"))
    std::printf("stats: fig2_failure_tradeoff_stats.json\n");
  std::printf(
      "reading: at the baseline rho every strategy almost always survives, so\n"
      "the shortest-delay plan wins; as rho grows the deep approach starts\n"
      "losing whole batches and the sweet spot moves back toward d0 (Fig 8).\n");
  return report.emit() ? 0 : 1;
}
