// Figure 5 — boxplots of UDP throughput vs distance between two flying
// airplanes (auto PHY rate, 20-320 m). Regenerated with the PHY+MAC
// simulator under the airplane channel preset; the console prints the
// boxplot table plus the log2 fit of the medians, which should land near
// the paper's s_air(d) = -5.56*log2(d) + 49 (R^2 = 0.90).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "exp/cli.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/gnuplot.h"
#include "io/table.h"
#include "stats/regression.h"

int main(int argc, char** argv) {
  using namespace skyferry;
  std::uint64_t seed = 5000;
  exp::Cli cli("fig5_airplane_throughput");
  cli.flag("--seed", &seed, "master seed");
  bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  const auto ch = phy::ChannelConfig::airplane();

  io::Table t("Figure 5: throughput vs distance, two airplanes (auto rate)");
  t.columns({"d_m", "n", "whisk-", "q1", "median", "q3", "whisk+", "outliers"});
  io::CsvWriter csv("fig5_airplane_throughput.csv");
  csv.header({"d_m", "n", "whisker_low", "q1", "median", "q3", "whisker_high", "outliers"});

  std::vector<double> ds, medians;
  io::Series med_series{"sim median", {}, {}};
  io::Series paper_series{"paper fit", {}, {}};
  for (double d = 20.0; d <= 320.0; d += 20.0) {
    // Airplanes circle their waypoints: residual relative speed ~3 m/s.
    const auto samples =
        benchutil::autorate_samples(ch, d, 3.0, seed + static_cast<std::uint64_t>(d), 4, 60.0);
    const auto b = stats::boxplot(samples);
    if (d == 60.0)
      report.samples("mbps_d60", samples, 1e-3,
                     "half-second throughput samples for distribution regression");
    auto row = benchutil::boxplot_row(b);
    t.add_row(io::format_number(d), row);
    row.insert(row.begin(), d);
    csv.row(row);
    ds.push_back(d);
    medians.push_back(b.median);
    med_series.xs.push_back(d);
    med_series.ys.push_back(b.median);
    paper_series.xs.push_back(d);
    paper_series.ys.push_back(std::max(-5.56 * std::log2(d) + 49.0, 0.0));
  }
  t.print();

  io::AsciiChart chart("median throughput vs distance", 70, 14);
  chart.x_label("d (m)").y_label("Mb/s");
  chart.add(med_series).add(paper_series);
  chart.print();

  const auto fit = stats::log2_fit(ds, medians);
  std::printf("log2 fit of medians: s(d) = %.2f*log2(d) + %.2f  (R^2 = %.2f)\n", fit.a, fit.b,
              fit.r_squared);
  std::printf("paper:               s(d) = -5.56*log2(d) + 49.00 (R^2 = 0.90)\n");

  // Machine-checked Fig.-5 shape claims (EXPERIMENTS.md): the fit of the
  // medians, the near/far medians, and monotone decay of the curve.
  report.metric("fit_slope", fit.a, check::Tolerance::absolute(0.5),
                "paper: -5.56; calibrated sim: ~-4.8");
  report.metric("fit_intercept", fit.b, check::Tolerance::absolute(3.0), "paper: 49");
  report.claim("fit_r_squared_above_0.9", fit.r_squared > 0.9);
  report.metric("median_d20_mbps", medians.front(), check::Tolerance::relative(0.15),
                "near-field median, calibration anchor");
  report.metric("median_d300_mbps", medians[medians.size() - 2],
                check::Tolerance::sigmas(3.0, 0.2), "far-field tail");
  report.claim("medians_decay_with_distance", [&] {
    // Allow 1.5 Mb/s of boxplot jitter against the trend.
    for (std::size_t i = 1; i < medians.size(); ++i)
      if (medians[i] > medians[i - 1] + 1.5) return false;
    return true;
  }(), "throughput falls with distance across 20..320 m");

  io::GnuplotScript gp("Fig 5: airplane throughput vs distance", "d (m)", "throughput (Mb/s)");
  gp.terminal("pngcairo size 900,540", "fig5_airplane_throughput.png");
  gp.add({"fig5_airplane_throughput.csv", 1, 5, "median", "linespoints lw 2", 0, ""});
  gp.add({"fig5_airplane_throughput.csv", 1, 4, "q1", "lines dt 2", 0, ""});
  gp.add({"fig5_airplane_throughput.csv", 1, 6, "q3", "lines dt 2", 0, ""});
  gp.write("fig5_airplane_throughput.gp");
  std::printf("csv: fig5_airplane_throughput.csv  plot: gnuplot fig5_airplane_throughput.gp\n");
  return report.emit() ? 0 : 1;
}
