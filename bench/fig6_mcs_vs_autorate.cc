// Figure 6 — best fixed MCS vs auto PHY rate between the two airplanes
// (20-260 m): the paper finds the best fixed MCS beats auto-rate by
// >= 100% at every distance, with MCS3 best close in, MCS1 at mid
// range and the two-stream MCS8 competitive only far out.
//
// Engine-backed: the (distance x rate-control) grid is an exp::Sweep and
// each trial is one 60 s saturated link simulation under a forked seed,
// so the grid parallelizes across --threads without changing a number.
//
// Also runs the rate-control reaction-time ablation DESIGN.md calls out:
// how the auto-rate gap depends on the Minstrel update interval relative
// to the channel coherence time.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/cli.h"
#include "exp/supervisor.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/table.h"

namespace {

using namespace skyferry;

// Rate-control configurations swept alongside distance. 0 = vendor ARF
// autorate, 1 = Minstrel-HT, 2.. = fixed MCS {0,1,2,3,8}.
constexpr int kConfigs = 7;
constexpr int kFixedMcs[5] = {0, 1, 2, 3, 8};

/// One 60 s saturated run at (d, config); returns the median of its
/// per-second throughput samples [Mb/s].
double link_trial(const phy::ChannelConfig& ch, double d, double rel_speed, int config,
                  std::uint64_t seed) {
  mac::LinkConfig cfg;
  cfg.channel = ch;
  std::vector<double> mbps;
  const auto geometry = mac::static_geometry(d, rel_speed);
  if (config == 0) {
    mac::ArfRate rc;
    mac::LinkSimulator sim(cfg, rc, seed);
    for (const auto& s : sim.run_saturated(60.0, geometry).samples) mbps.push_back(s.mbps);
  } else if (config == 1) {
    mac::MinstrelConfig mcfg;
    mac::MinstrelHt rc(mcfg, sim::derive_seed(seed, "rc"));
    mac::LinkSimulator sim(cfg, rc, seed);
    for (const auto& s : sim.run_saturated(60.0, geometry).samples) mbps.push_back(s.mbps);
  } else {
    mac::FixedMcs rc(kFixedMcs[config - 2]);
    mac::LinkSimulator sim(cfg, rc, seed);
    for (const auto& s : sim.run_saturated(60.0, geometry).samples) mbps.push_back(s.mbps);
  }
  return stats::median(mbps);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 6000;
  int trials = 4;
  int threads = 0;
  std::string out = "fig6_mcs_vs_autorate";
  std::string checkpoint;
  bool resume = false;
  int max_retries = 1;
  double trial_timeout_ms = 0.0;
  bool fail_fast = false;
  exp::Cli cli("fig6_mcs_vs_autorate");
  cli.flag("--seed", &seed, "master seed (forked per trial)")
      .flag("--trials", &trials, "independent 60 s runs per (d, rate-control) point")
      .flag("--threads", &threads, "worker threads, 0 = one per hardware thread")
      .flag("--out", &out, "output basename for <out>.csv and <out>_stats.json")
      .flag("--checkpoint", &checkpoint, "journal chunks to <file> (main) + <file>.ablation")
      .flag("--resume", &resume, "skip chunks already journaled in the checkpoint files")
      .flag("--max-retries", &max_retries, "same-seed retries before quarantining a trial")
      .flag("--trial-timeout-ms", &trial_timeout_ms, "soft per-trial deadline, 0 = off")
      .flag("--fail-fast", &fail_fast, "abort on the first trial exception");
  bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  const auto ch = phy::ChannelConfig::airplane();
  const double kRelSpeed = 3.0;  // residual motion while "circling"

  std::vector<double> distances;
  for (double d = 20.0; d <= 260.0; d += 20.0) distances.push_back(d);
  std::vector<double> configs;
  for (int c = 0; c < kConfigs; ++c) configs.push_back(c);
  const auto points = exp::Sweep{}.axis("d", distances).axis("config", configs).cartesian();

  exp::RunnerConfig rc;
  rc.threads = threads;
  rc.trials = trials;
  rc.seed = seed;
  rc.chunk = 1;  // each trial is a whole 60 s link sim — balance, don't batch
  exp::SupervisorOptions so;
  so.name = "fig6_mcs_vs_autorate";
  so.max_retries = max_retries;
  so.trial_timeout_ms = trial_timeout_ms;
  so.fail_fast = fail_fast;
  so.checkpoint_path = checkpoint;
  so.resume = resume;
  auto run = exp::SupervisedRunner(rc, so).run(points, [&](const exp::Point& p, std::uint64_t s) {
    return link_trial(ch, p.at("d"), kRelSpeed, static_cast<int>(p.at("config")), s);
  });
  if (run.interrupted) {
    std::printf(
        "# interrupted (SIGINT/SIGTERM) — completed chunks are journaled; rerun\n"
        "# the same command with --resume to finish.\n");
    return 130;
  }
  if (run.report.quarantined > 0)
    std::printf("%s\n", run.report.summary_line().c_str());

  io::Table t("Figure 6: best fixed MCS vs auto rate (median Mb/s)");
  t.columns({"d_m", "auto(ARF)", "mcs0", "mcs1", "mcs2", "mcs3", "mcs8", "best", "best/auto",
             "minstrel"});
  io::CsvWriter csv(out + ".csv");
  csv.header({"d_m", "autorate_arf", "mcs0", "mcs1", "mcs2", "mcs3", "mcs8", "best_fixed",
              "ratio", "minstrel"});

  io::Series s_auto{"autorate (vendor ARF)", {}, {}};
  io::Series s_best{"best fixed MCS", {}, {}};
  for (std::size_t di = 0; di < distances.size(); ++di) {
    // Median across the per-trial medians of this (d, config) cell.
    const auto cell = [&](int config) {
      return stats::median(run.results[di * kConfigs + static_cast<std::size_t>(config)]);
    };
    const double d = distances[di];
    const double auto_med = cell(0);
    const double minstrel_med = cell(1);
    double fixed_med[5];
    double best = 0.0;
    for (int i = 0; i < 5; ++i) {
      fixed_med[i] = cell(2 + i);
      best = std::max(best, fixed_med[i]);
    }
    const double ratio = auto_med > 0.1 ? best / auto_med : 0.0;
    t.add_row(io::format_number(d), {auto_med, fixed_med[0], fixed_med[1], fixed_med[2],
                                     fixed_med[3], fixed_med[4], best, ratio, minstrel_med});
    csv.row({d, auto_med, fixed_med[0], fixed_med[1], fixed_med[2], fixed_med[3], fixed_med[4],
             best, ratio, minstrel_med});
    s_auto.xs.push_back(d);
    s_auto.ys.push_back(auto_med);
    s_best.xs.push_back(d);
    s_best.ys.push_back(best);

    // Machine-checked Fig.-6 claims at the near distances EXPERIMENTS.md
    // quotes: the best fixed MCS clearly beats vendor auto-rate, and
    // MCS3 is the near-field winner.
    if (d == 20.0 || d == 40.0 || d == 60.0) {
      const std::string tag = "d" + io::format_number(d);
      report.metric("best_over_auto_" + tag, ratio, check::Tolerance::sigmas(3.0, 0.15),
                    "paper: '100% or more higher'; decays with distance here");
      report.claim("best_beats_auto_" + tag, ratio > 1.5,
                   "best fixed MCS at least 1.5x vendor ARF close in");
    }
    if (d == 20.0) {
      report.claim("mcs3_best_at_20m", fixed_med[3] >= best - 1e-9,
                   "paper: MCS3 wins the near field");
      report.claim("minstrel_closes_gap_at_20m", minstrel_med > auto_med,
                   "modern rate control beats vendor ARF (ablation)");
    }
  }
  t.print();

  io::AsciiChart chart("Figure 6: autorate vs best fixed MCS", 70, 14);
  chart.x_label("d (m)").y_label("Mb/s");
  chart.add(s_best).add(s_auto);
  chart.print();

  // Ablation: Minstrel update interval vs the gap at a mid distance —
  // same engine, interval axis instead of rate-control configs.
  std::printf("\nablation: auto-rate staleness (d=100 m, rel. speed %.0f m/s)\n", kRelSpeed);
  const auto ab_points =
      exp::Sweep{}.axis("interval", {0.02, 0.05, 0.1, 0.3, 1.0}).cartesian();
  exp::RunnerConfig abrc = rc;
  abrc.seed = sim::derive_seed(seed, "fig6/ablation");
  exp::SupervisorOptions ab_so = so;
  ab_so.name = "fig6_ablation";
  if (!checkpoint.empty()) ab_so.checkpoint_path = checkpoint + ".ablation";
  const auto ab_run =
      exp::SupervisedRunner(abrc, ab_so).run(ab_points, [&](const exp::Point& p, std::uint64_t s) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::MinstrelConfig mcfg;
    mcfg.update_interval_s = p.at("interval");
    mac::MinstrelHt rctrl(mcfg, sim::derive_seed(s, "rc"));
    mac::LinkSimulator sim(cfg, rctrl, s);
    std::vector<double> mbps;
    for (const auto& smp : sim.run_saturated(60.0, mac::static_geometry(100.0, kRelSpeed)).samples)
      mbps.push_back(smp.mbps);
    return stats::median(mbps);
  });
  if (ab_run.interrupted) {
    std::printf(
        "# interrupted (SIGINT/SIGTERM) during the ablation — rerun the same\n"
        "# command with --resume to finish.\n");
    return 130;
  }
  io::Table ab("minstrel update interval vs achieved median");
  ab.columns({"update_interval_s", "median Mb/s"});
  for (const auto& p : ab_points) {
    double sum = 0.0;
    for (double v : ab_run.results[p.index]) sum += v;
    ab.add_row(io::format_number(p.at("interval")),
               {sum / static_cast<double>(ab_run.results[p.index].size())});
  }
  ab.print();

  run.stats.merge(ab_run.stats);
  run.stats.name = "fig6_mcs_vs_autorate";
  std::printf("%s\n", run.stats.summary_line().c_str());
  if (run.stats.write_json(out + "_stats.json"))
    std::printf("csv: %s.csv  stats: %s_stats.json\n", out.c_str(), out.c_str());
  return report.emit() ? 0 : 1;
}
