// Figure 6 — best fixed MCS vs auto PHY rate between the two airplanes
// (20-260 m): the paper finds the best fixed MCS beats auto-rate by
// >= 100% at every distance, with MCS3 best close in, MCS1 at mid
// range and the two-stream MCS8 competitive only far out.
//
// Also runs the rate-control reaction-time ablation DESIGN.md calls out:
// how the auto-rate gap depends on the Minstrel update interval relative
// to the channel coherence time.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/table.h"

int main(int argc, char** argv) {
  using namespace skyferry;
  const std::uint64_t master_seed = benchutil::parse_seed(argc, argv, 6000);
  benchutil::print_seed_header("fig6_mcs_vs_autorate", master_seed);
  const auto ch = phy::ChannelConfig::airplane();
  const double kRelSpeed = 3.0;  // residual motion while "circling"

  io::Table t("Figure 6: best fixed MCS vs auto rate (median Mb/s)");
  t.columns({"d_m", "auto(ARF)", "mcs0", "mcs1", "mcs2", "mcs3", "mcs8", "best", "best/auto",
             "minstrel"});
  io::CsvWriter csv("fig6_mcs_vs_autorate.csv");
  csv.header({"d_m", "autorate_arf", "mcs0", "mcs1", "mcs2", "mcs3", "mcs8", "best_fixed",
              "ratio", "minstrel"});

  io::Series s_auto{"autorate (vendor ARF)", {}, {}};
  io::Series s_best{"best fixed MCS", {}, {}};
  for (double d = 20.0; d <= 260.0; d += 20.0) {
    const std::uint64_t seed = master_seed + static_cast<std::uint64_t>(d);
    const double auto_med =
        stats::median(benchutil::autorate_samples(ch, d, kRelSpeed, seed, 4, 60.0));
    const double minstrel_med =
        stats::median(benchutil::minstrel_samples(ch, d, kRelSpeed, seed + 3, 4, 60.0));
    double fixed_med[5];
    const int mcs_set[5] = {0, 1, 2, 3, 8};
    double best = 0.0;
    for (int i = 0; i < 5; ++i) {
      fixed_med[i] = stats::median(
          benchutil::fixed_mcs_samples(ch, mcs_set[i], d, kRelSpeed, seed + 7ULL * i, 4, 60.0));
      best = std::max(best, fixed_med[i]);
    }
    const double ratio = auto_med > 0.1 ? best / auto_med : 0.0;
    t.add_row(io::format_number(d), {auto_med, fixed_med[0], fixed_med[1], fixed_med[2],
                                     fixed_med[3], fixed_med[4], best, ratio, minstrel_med});
    csv.row({d, auto_med, fixed_med[0], fixed_med[1], fixed_med[2], fixed_med[3], fixed_med[4],
             best, ratio, minstrel_med});
    s_auto.xs.push_back(d);
    s_auto.ys.push_back(auto_med);
    s_best.xs.push_back(d);
    s_best.ys.push_back(best);
  }
  t.print();

  io::AsciiChart chart("Figure 6: autorate vs best fixed MCS", 70, 14);
  chart.x_label("d (m)").y_label("Mb/s");
  chart.add(s_best).add(s_auto);
  chart.print();

  // Ablation: Minstrel update interval vs the gap at a mid distance.
  std::printf("\nablation: auto-rate staleness (d=100 m, rel. speed %.0f m/s)\n", kRelSpeed);
  io::Table ab("minstrel update interval vs achieved median");
  ab.columns({"update_interval_s", "median Mb/s"});
  for (double interval : {0.02, 0.05, 0.1, 0.3, 1.0}) {
    double sum = 0.0;
    for (int k = 0; k < 4; ++k) {
      mac::LinkConfig cfg;
      cfg.channel = ch;
      mac::MinstrelConfig mcfg;
      mcfg.update_interval_s = interval;
      mac::MinstrelHt rc(mcfg, master_seed + 71 + 13ULL * k);
      mac::LinkSimulator sim(cfg, rc, master_seed + 1100 + 977ULL * k);
      const auto res = sim.run_saturated(60.0, mac::static_geometry(100.0, kRelSpeed));
      std::vector<double> mbps;
      for (const auto& s : res.samples) mbps.push_back(s.mbps);
      sum += stats::median(mbps);
    }
    ab.add_row(io::format_number(interval), {sum / 4.0});
  }
  ab.print();
  std::printf("csv: fig6_mcs_vs_autorate.csv\n");
  return 0;
}
