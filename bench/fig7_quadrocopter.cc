// Figure 7 — quadrocopter tests, three panels:
//   left:   throughput vs distance while both hover (20-80 m)
//   center: throughput vs distance while one approaches at ~8 m/s
//   right:  throughput vs cruise speed at d ~ 60 m
// All with auto PHY rate, like the paper.
#include <cstdio>

#include "bench_util.h"
#include "exp/cli.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/table.h"

int main(int argc, char** argv) {
  using namespace skyferry;
  std::uint64_t seed = 7000;
  exp::Cli cli("fig7_quadrocopter");
  cli.flag("--seed", &seed, "master seed");
  bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  const auto ch = phy::ChannelConfig::quadrocopter();
  io::CsvWriter csv("fig7_quadrocopter.csv");
  csv.header({"panel", "x", "whisker_low", "q1", "median", "q3", "whisker_high"});

  // Left: hovering.
  io::Table tl("Figure 7 (left): hovering, throughput vs distance");
  tl.columns({"d_m", "n", "whisk-", "q1", "median", "q3", "whisk+", "outliers"});
  io::Series hover_med{"hover median", {}, {}};
  for (double d = 20.0; d <= 80.0; d += 20.0) {
    const auto samples =
        benchutil::autorate_samples(ch, d, 0.0, seed + static_cast<std::uint64_t>(d), 4, 60.0);
    const auto b = stats::boxplot(samples);
    tl.add_row(io::format_number(d), benchutil::boxplot_row(b));
    csv.row("hover", std::vector<double>{d, b.whisker_low, b.q1, b.median, b.q3, b.whisker_high});
    hover_med.xs.push_back(d);
    hover_med.ys.push_back(b.median);
    // Hover medians are the paper's calibration anchors (Fig.7 left).
    report.metric("hover_median_d" + io::format_number(d) + "_mbps", b.median,
                  check::Tolerance::relative(0.10), "calibrated to the paper's quad fit");
    if (d == 60.0)
      report.samples("hover_mbps_d60", samples, 1e-3,
                     "hover throughput distribution for KS regression");
  }
  tl.print();

  // Center: moving at ~8 m/s.
  io::Table tc("Figure 7 (center): moving at ~8 m/s, throughput vs distance");
  tc.columns({"d_m", "n", "whisk-", "q1", "median", "q3", "whisk+", "outliers"});
  io::Series move_med{"moving median", {}, {}};
  for (double d = 20.0; d <= 80.0; d += 20.0) {
    const auto b = stats::boxplot(
        benchutil::autorate_samples(ch, d, 8.0, seed + 500 + static_cast<std::uint64_t>(d), 4, 60.0));
    tc.add_row(io::format_number(d), benchutil::boxplot_row(b));
    csv.row("moving", std::vector<double>{d, b.whisker_low, b.q1, b.median, b.q3, b.whisker_high});
    move_med.xs.push_back(d);
    move_med.ys.push_back(b.median);
    report.metric("moving_median_d" + io::format_number(d) + "_mbps", b.median,
                  check::Tolerance::sigmas(3.0, 0.4), "paper: clear drop vs hovering");
  }
  tc.print();

  // The paper's center-panel claim: moving loses to hovering at every
  // separation.
  report.claim("moving_below_hover_everywhere", [&] {
    for (std::size_t i = 0; i < hover_med.ys.size(); ++i)
      if (move_med.ys[i] >= hover_med.ys[i]) return false;
    return true;
  }());

  io::AsciiChart chart_lc("hover vs moving medians", 60, 12);
  chart_lc.x_label("d (m)").y_label("Mb/s");
  chart_lc.add(hover_med).add(move_med);
  chart_lc.print();

  // Right: speed sweep at d = 60 m.
  io::Table tr("Figure 7 (right): throughput vs cruise speed at d=60 m");
  tr.columns({"v_mps", "n", "whisk-", "q1", "median", "q3", "whisk+", "outliers"});
  io::Series speed_med{"median", {}, {}};
  for (double v : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0}) {
    const auto b = stats::boxplot(benchutil::autorate_samples(
        ch, 60.0, v, seed + 900 + static_cast<std::uint64_t>(v * 10), 4, 60.0));
    tr.add_row(io::format_number(v), benchutil::boxplot_row(b));
    csv.row("speed", std::vector<double>{v, b.whisker_low, b.q1, b.median, b.q3, b.whisker_high});
    speed_med.xs.push_back(v);
    speed_med.ys.push_back(b.median);
  }
  tr.print();

  report.metric("speed_median_v0_mbps", speed_med.ys.front(), check::Tolerance::relative(0.10),
                "speed sweep anchor at v=0 (matches hover d=60)");
  report.metric("speed_median_v15_mbps", speed_med.ys.back(), check::Tolerance::absolute(0.3),
                "paper: link collapses at high speed");
  report.claim("throughput_collapses_with_speed", [&] {
    // Monotone decay with 1 Mb/s jitter allowance (Fig.7 right).
    for (std::size_t i = 1; i < speed_med.ys.size(); ++i)
      if (speed_med.ys[i] > speed_med.ys[i - 1] + 1.0) return false;
    return speed_med.ys.back() < 0.25 * speed_med.ys.front();
  }());

  io::AsciiChart chart_r("throughput vs speed at d=60 m", 60, 12);
  chart_r.x_label("v (m/s)").y_label("Mb/s");
  chart_r.add(speed_med);
  chart_r.print();
  std::printf("csv: fig7_quadrocopter.csv\n");
  return report.emit() ? 0 : 1;
}
