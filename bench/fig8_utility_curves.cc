// Figure 8 — U(d) versus d for various failure rates rho, for both
// baseline scenarios, with the maxima marked; the optimal distance grows
// with rho. Also prints the d0-sensitivity table backing the paper's
// "d_opt does not change with smaller d0 until d0 reaches d_opt".
#include <cstdio>

#include "bench_util.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/gnuplot.h"
#include "io/table.h"
#include "policy/api.h"

namespace {

using namespace skyferry;

void run_scenario(const core::Scenario& scen, const std::vector<double>& rhos,
                  io::CsvWriter& csv, bench::Report& report,
                  const bench::PolicyTableFlag& policy_flag) {
  const auto model = scen.paper_throughput();
  policy::DecisionService service(model);
  policy_flag.install_into(service);
  io::AsciiChart chart("Figure 8: U(d), " + scen.name + " scenario", 70, 16);
  chart.x_label("d (m)").y_label("U(d)");
  io::Table t("maxima (" + scen.name + ")");
  t.columns({"rho_1/m", "d_opt_m", "U(d_opt)", "Cdelay(d_opt)_s", "discount"});

  std::vector<double> dopts;
  for (double rho : rhos) {
    const uav::FailureModel failure(rho);
    const core::CommDelayModel delay(model, scen.delivery_params());
    const core::UtilityFunction u(delay, failure);
    io::Series s{"rho=" + io::format_number(rho), {}, {}};
    for (const auto& pt : u.curve(120)) {
      s.xs.push_back(pt.d_m);
      s.ys.push_back(pt.utility);
      csv.row(scen.name + "/rho=" + io::format_number(rho),
              std::vector<double>{pt.d_m, pt.utility, pt.discount, pt.cdelay_s});
    }
    chart.add(s);
    policy::Query q;
    q.d0_m = scen.d0_m;
    q.speed_mps = scen.delivery_params().speed_mps;
    q.mdata_bytes = scen.mdata_bytes;
    q.min_distance_m = scen.delivery_params().min_distance_m;
    q.rho_per_m = rho;
    const auto r = service.decide_one(q);
    t.add_row(io::format_number(rho), {r.d_opt_m, r.utility, r.cdelay_s, r.discount});
    dopts.push_back(r.d_opt_m);
    report.metric(scen.name + "_dopt_rho" + io::format_number(rho) + "_m", r.d_opt_m,
                  check::Tolerance::absolute(15.0), "paper Fig.8: optimum moves out with rho");
  }
  // The paper's headline Fig.-8 reading: d_opt never moves back inward
  // as risk grows.
  report.claim(scen.name + "_dopt_monotone_in_rho", [&] {
    for (std::size_t i = 1; i < dopts.size(); ++i)
      if (dopts[i] < dopts[i - 1] - 1e-9) return false;
    return true;
  }());
  chart.print();
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("fig8_utility_curves");
  skyferry::bench::Report report(cli);
  skyferry::bench::PolicyTableFlag policy_flag(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  io::CsvWriter csv("fig8_utility_curves.csv");
  csv.header({"series", "d_m", "utility", "discount", "cdelay_s"});

  const auto air = core::Scenario::airplane();
  const auto quad = core::Scenario::quadrocopter();
  run_scenario(air, {air.rho_per_m, 1e-3, 2e-3, 5e-3, 1e-2}, csv, report, policy_flag);
  run_scenario(quad, {quad.rho_per_m, 1e-3, 2e-3, 5e-3, 1e-2}, csv, report, policy_flag);

  // d0 sensitivity (paper Sec. 4, text after Fig. 8). One batch of
  // queries differing only in d0, answered in one decide() call.
  std::printf("\nd0 sensitivity, airplane scenario at rho=2e-3:\n");
  io::Table t("d_opt vs d0");
  t.columns({"d0_m", "d_opt_m", "transmit_now?"});
  const auto model = air.paper_throughput();
  policy::DecisionService service(model);
  policy_flag.install_into(service);
  const std::vector<double> d0s{300.0, 260.0, 220.0, 180.0, 140.0, 100.0, 60.0};
  std::vector<policy::Query> queries(d0s.size());
  for (std::size_t i = 0; i < d0s.size(); ++i) {
    queries[i].d0_m = d0s[i];
    queries[i].speed_mps = air.delivery_params().speed_mps;
    queries[i].mdata_bytes = air.mdata_bytes;
    queries[i].min_distance_m = air.delivery_params().min_distance_m;
    queries[i].rho_per_m = 2e-3;
  }
  std::vector<policy::Decision> answers(queries.size());
  service.decide(queries, answers);
  bool flipped_to_now = false;
  for (std::size_t i = 0; i < d0s.size(); ++i) {
    const double d0 = d0s[i];
    const auto& r = answers[i];
    t.add_row(io::format_number(d0),
              {r.d_opt_m, r.boundary == core::Boundary::kTransmitNow ? 1.0 : 0.0});
    if (d0 == 300.0 || d0 == 260.0 || d0 == 220.0)
      report.metric("d0sens_dopt_at_d0_" + io::format_number(d0), r.d_opt_m,
                    check::Tolerance::absolute(15.0),
                    "paper: d_opt barely moves while d0 > d_opt");
    if (r.boundary == core::Boundary::kTransmitNow) flipped_to_now = true;
  }
  report.claim("d0sens_flips_to_transmit_now", flipped_to_now,
               "once d0 <= d_opt the optimizer transmits immediately");
  t.print();

  for (const char* scen_name : {"airplane", "quadrocopter"}) {
    io::GnuplotScript gp(std::string("Fig 8: U(d), ") + scen_name + " scenario", "d (m)",
                         "U(d)");
    gp.terminal("pngcairo size 900,540",
                std::string("fig8_utility_") + scen_name + ".png");
    for (const char* rho : {"0.000111", "0.000246", "0.001", "0.002", "0.005", "0.01"}) {
      io::GnuplotSeries s;
      s.csv_path = "fig8_utility_curves.csv";
      s.x_column = 2;
      s.y_column = 3;
      s.title = std::string("rho=") + rho;
      s.style = "lines lw 2";
      s.filter_column = 1;
      s.filter_value = std::string(scen_name) + "/rho=" + rho;
      gp.add(s);
    }
    gp.write(std::string("fig8_utility_") + scen_name + ".gp");
  }
  std::printf("csv: fig8_utility_curves.csv  plots: gnuplot fig8_utility_{airplane,quadrocopter}.gp\n");
  return report.emit() ? 0 : 1;
}
