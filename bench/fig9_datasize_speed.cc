// Figure 9 — delayed gratification across data sizes and speeds
// (airplane scenario): for each Mdata in {5,7,10,15,25,45} MB and speed
// v in {3,5,10,15,20} m/s, the optimum (d_opt, U(d_opt)). The paper's
// reading: faster UAVs move closer; bigger batches move closer but cap
// at a lower achievable utility.
#include <cstdio>

#include "bench_util.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/table.h"
#include "policy/api.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("fig9_datasize_speed");
  skyferry::bench::Report report(cli);
  skyferry::bench::PolicyTableFlag policy_flag(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  policy::DecisionService service(model);
  policy_flag.install_into(service);

  io::CsvWriter csv("fig9_datasize_speed.csv");
  csv.header({"mdata_mb", "v_mps", "d_opt_m", "utility", "cdelay_s"});

  io::AsciiChart chart("Figure 9: U(d_opt) vs d_opt; one curve per Mdata, points = speeds", 70,
                       16);
  chart.x_label("d_opt (m)").y_label("U(d_opt)");

  io::Table t("optima");
  t.columns({"Mdata_MB", "v=3", "v=5", "v=10", "v=15", "v=20", "(d_opt per speed)"});

  const std::vector<double> speeds{3.0, 5.0, 10.0, 15.0, 20.0};
  const std::vector<double> mdatas{5.0, 7.0, 10.0, 15.0, 25.0, 45.0};

  // The whole Mdata x speed grid is one flat batch through the decision
  // service — the shape the compiled-table path serves at O(1) per cell.
  std::vector<policy::Query> queries;
  queries.reserve(mdatas.size() * speeds.size());
  for (double mdata_mb : mdatas) {
    for (double v : speeds) {
      policy::Query q;
      q.d0_m = scen.d0_m;
      q.speed_mps = v;
      q.mdata_bytes = mdata_mb * 1e6;
      q.min_distance_m = scen.delivery_params().min_distance_m;
      q.rho_per_m = scen.rho_per_m;
      queries.push_back(q);
    }
  }
  std::vector<policy::Decision> answers(queries.size());
  service.decide(queries, answers);

  // grid[mi][vi] = d_opt, for the row/column monotonicity claims.
  std::vector<std::vector<double>> grid;
  std::vector<double> u_at_v10;
  for (std::size_t mi = 0; mi < mdatas.size(); ++mi) {
    const double mdata_mb = mdatas[mi];
    io::Series s{"M=" + io::format_number(mdata_mb) + "MB", {}, {}};
    std::vector<double> dopts;
    for (std::size_t vi = 0; vi < speeds.size(); ++vi) {
      const double v = speeds[vi];
      const auto& r = answers[mi * speeds.size() + vi];
      s.xs.push_back(r.d_opt_m);
      s.ys.push_back(r.utility);
      dopts.push_back(r.d_opt_m);
      csv.row({mdata_mb, v, r.d_opt_m, r.utility, r.cdelay_s});
      if (v == 10.0) u_at_v10.push_back(r.utility);
    }
    chart.add(s);
    t.add_row("M=" + io::format_number(mdata_mb), dopts);
    grid.push_back(dopts);
  }
  chart.print();
  t.print();

  // Machine-checked Fig.-9 claims: all three of the paper's readings.
  // Corner optima pin the grid's scale; the monotonicity claims pin its
  // shape.
  report.metric("dopt_m5_v3_m", grid.front().front(), check::Tolerance::absolute(15.0));
  report.metric("dopt_m45_v20_m", grid.back().back(), check::Tolerance::absolute(15.0));
  report.claim("dopt_decreases_with_speed", [&] {
    for (const auto& row : grid)
      for (std::size_t i = 1; i < row.size(); ++i)
        if (row[i] > row[i - 1] + 1e-9) return false;
    return true;
  }(), "every row: faster UAVs move closer");
  report.claim("dopt_decreases_with_mdata", [&] {
    for (std::size_t vi = 0; vi < speeds.size(); ++vi)
      for (std::size_t mi = 1; mi < grid.size(); ++mi)
        if (grid[mi][vi] > grid[mi - 1][vi] + 1e-9) return false;
    return true;
  }(), "every column: bigger batches move closer");
  report.claim("utility_falls_with_mdata_at_v10", [&] {
    for (std::size_t i = 1; i < u_at_v10.size(); ++i)
      if (u_at_v10[i] > u_at_v10[i - 1] + 1e-12) return false;
    return true;
  }(), "U(d_opt) falls 0.091 -> 0.031 from 5 to 45 MB at v=10");
  std::printf(
      "reading: rows show d_opt shrinking with speed; columns show larger\n"
      "batches pushing d_opt down while U(d_opt) (the chart's y) falls.\n"
      "csv: fig9_datasize_speed.csv\n");
  return report.emit() ? 0 : 1;
}
