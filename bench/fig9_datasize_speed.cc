// Figure 9 — delayed gratification across data sizes and speeds
// (airplane scenario): for each Mdata in {5,7,10,15,25,45} MB and speed
// v in {3,5,10,15,20} m/s, the optimum (d_opt, U(d_opt)). The paper's
// reading: faster UAVs move closer; bigger batches move closer but cap
// at a lower achievable utility.
#include <cstdio>

#include "core/optimizer.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "io/ascii_chart.h"
#include "io/csv.h"
#include "io/table.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("fig9_datasize_speed");
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);

  io::CsvWriter csv("fig9_datasize_speed.csv");
  csv.header({"mdata_mb", "v_mps", "d_opt_m", "utility", "cdelay_s"});

  io::AsciiChart chart("Figure 9: U(d_opt) vs d_opt; one curve per Mdata, points = speeds", 70,
                       16);
  chart.x_label("d_opt (m)").y_label("U(d_opt)");

  io::Table t("optima");
  t.columns({"Mdata_MB", "v=3", "v=5", "v=10", "v=15", "v=20", "(d_opt per speed)"});

  const std::vector<double> speeds{3.0, 5.0, 10.0, 15.0, 20.0};
  for (double mdata_mb : {5.0, 7.0, 10.0, 15.0, 25.0, 45.0}) {
    io::Series s{"M=" + io::format_number(mdata_mb) + "MB", {}, {}};
    std::vector<double> dopts;
    for (double v : speeds) {
      core::DeliveryParams p = scen.delivery_params();
      p.mdata_bytes = mdata_mb * 1e6;
      p.speed_mps = v;
      const core::CommDelayModel delay(model, p);
      const core::UtilityFunction u(delay, failure);
      const auto r = core::optimize(u);
      s.xs.push_back(r.d_opt_m);
      s.ys.push_back(r.utility);
      dopts.push_back(r.d_opt_m);
      csv.row({mdata_mb, v, r.d_opt_m, r.utility, r.cdelay_s});
    }
    chart.add(s);
    t.add_row("M=" + io::format_number(mdata_mb), dopts);
  }
  chart.print();
  t.print();
  std::printf(
      "reading: rows show d_opt shrinking with speed; columns show larger\n"
      "batches pushing d_opt down while U(d_opt) (the chart's y) falls.\n"
      "csv: fig9_datasize_speed.csv\n");
  return 0;
}
