// Multi-link extension figure: "now, later — or on which link?"
//
// Sweeps the contact distance d0 for a UAV carrying the paper's batch
// with all four link backends enabled (802.11n burst, cellular, mesh,
// LEO) and compares the joint (link, d) decision against each link
// alone. Shows where the burst election flips (802.11n close in, the
// rate-floored cellular far out), how much of the batch the background
// links trickle away during the ferry leg, and pins the dominance
// contract — the joint decision never loses to the best single link.
//
// Wall-clock free and fully seeded, so every metric is golden-pinned
// exactly (scripts/golden_regress.sh entry fig_multilink).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/cli.h"
#include "io/table.h"
#include "link/multilink.h"
#include "mac/link.h"
#include "uav/failure.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("fig_multilink");
  skyferry::bench::Report report(cli);
  std::uint64_t seed = 20260809;
  double speed = 10.0;
  double mdata = 5.0e7;
  double rho = 1.0e-3;
  cli.flag("--seed", &seed, "session RNG seed (decisions themselves are deterministic)")
      .flag("--speed", &speed, "approach speed v [m/s]")
      .flag("--mdata", &mdata, "batch size Mdata [bytes]")
      .flag("--rho", &rho, "per-meter failure rate");
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;

  const link::LinkSet set({link::LinkBackendConfig::wifi_80211n(),
                           link::LinkBackendConfig::cellular(), link::LinkBackendConfig::mesh(),
                           link::LinkBackendConfig::leo()});
  const std::vector<const link::LinkBackend*> views = set.views();
  const uav::FailureModel failure(rho);

  io::Table t("joint (link, d) decision vs best single link (v = " + io::format_number(speed) +
              " m/s, Mdata = " + io::format_number(mdata / 1e6) + " MB, rho = " +
              io::format_number(rho) + "/m)");
  t.columns({"d0 [m]", "burst link", "d* [m]", "trickle [MB]", "U_joint", "U_best_single",
             "gain [%]"});

  bool dominance = true;
  for (const double d0 : {150.0, 400.0, 800.0, 1500.0, 3000.0, 6000.0}) {
    const link::MultiLinkParams p{d0, speed, mdata, 20.0};
    const link::MultiLinkResult r = link::optimize_multilink(views, p, failure);
    double best_single = 0.0;
    for (const core::OptimizeResult& s : r.single) best_single = std::max(best_single, s.utility);
    dominance = dominance && r.decision.utility >= best_single;
    const double gain =
        best_single > 0.0 ? 100.0 * (r.decision.utility / best_single - 1.0) : 0.0;
    const std::string burst_name =
        r.burst_link >= 0 ? set.backend(static_cast<std::size_t>(r.burst_link)).name() : "-";
    t.add_row(io::format_number(d0),
              {static_cast<double>(r.burst_link), r.decision.d_opt_m, r.trickle_bytes / 1e6,
               r.decision.utility, best_single, gain});
    std::printf("  d0 %6.0f m: burst on %-12s d* %7.1f m, trickle %6.2f MB, gain %+.2f%%\n", d0,
                burst_name.c_str(), r.decision.d_opt_m, r.trickle_bytes / 1e6, gain);

    const std::string tag = "d0_" + io::format_number(d0);
    report.metric("joint_utility_" + tag, r.decision.utility, check::Tolerance::exact(),
                  "deterministic joint optimizer");
    report.metric("burst_link_" + tag, static_cast<double>(r.burst_link),
                  check::Tolerance::exact(), "elected burst link index (wifi/cell/mesh/leo)");
    report.metric("trickle_bytes_" + tag, r.trickle_bytes, check::Tolerance::exact(),
                  "background bytes shipped during the ferry leg");
  }
  t.print();
  report.claim("joint_dominates_best_single_link", dominance,
               "EXPERIMENTS.md: trickling in the background never hurts the decision");

  // One seeded transfer session per backend at a mid-range contact —
  // the simulation layer behind the decision curves, pinned exactly.
  std::printf("\nseeded 1 MB transfer sessions at 300 m (seed %llu):\n",
              static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < set.size(); ++i) {
    const link::LinkBackend& bk = set.backend(i);
    const mac::LinkRunResult res =
        bk.make_session(seed)->run_transfer(1'000'000, 600.0, mac::static_geometry(300.0));
    std::printf("  %-12s %8.1f kbit delivered in %7.2f s (%s)\n", bk.name().c_str(),
                static_cast<double>(res.payload_bits_delivered) / 1e3, res.duration_s,
                res.completed ? "complete" : "timeout");
    report.metric("session_bits_" + bk.name(), static_cast<double>(res.payload_bits_delivered),
                  check::Tolerance::exact(), "seeded session transfer, 300 m contact");
  }

  std::printf(
      "\nreading: close in, the background links are fast enough to pre-ship\n"
      "the whole batch during even a short ferry leg, so the 802.11n election\n"
      "carries an empty burst and the joint utility jumps ~50%% over the best\n"
      "single link; far out, the election flips to the rate-floored cellular\n"
      "(and eventually LEO) transmitting now — d* = d0 leaves no ferry window,\n"
      "no trickle, and the joint decision degenerates to the best single link\n"
      "exactly, which is the dominance contract's equality branch.\n");
  return report.emit() ? 0 : 1;
}
