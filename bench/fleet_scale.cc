// Fleet-scale sweep — how far past the paper's two-UAV experiments the
// batched engine carries the "now or later?" policy. Spawns n missions
// (n in {10, 100, 1000, 5000} by default) across a grid of receiver
// cells, each mission ferrying to its policy-chosen transmit distance
// and delivering through shared-channel contention, and reports the
// wall-clock cost per simulated UAV-step and the real-time factor.
//
// The headline contract (DESIGN.md §12): 1000 UAVs simulate faster than
// real time on one core. `--check` turns that into an exit code so the
// CI tier can pin it (ctest entry fleet_scale_realtime).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "exp/cli.h"
#include "fleet/engine.h"
#include "io/table.h"
#include "policy/table.h"

namespace {

struct ScaleRow {
  int n{0};
  double wall_s{0.0};
  double per_uav_step_ns{0.0};
  double realtime_factor{0.0};
  skyferry::fleet::FleetTotals totals{};
};

// Mission layout: groups of six UAVs share one receiver cell (enough to
// exceed max_tx_per_cell and exercise the scheduler), receivers sit on
// a 500 m grid so distinct groups land in distinct contention cells,
// and spawns stagger so arrivals trickle in instead of one burst.
ScaleRow run_scale(int n, double duration_s, skyferry::fleet::SchedulerPolicy policy,
                   int threads, std::uint64_t seed, const std::string& table_path) {
  using namespace skyferry;
  fleet::FleetConfig cfg;
  cfg.policy = policy;
  cfg.threads = threads;
  fleet::FleetEngine eng(cfg, seed);
  if (!table_path.empty()) eng.install_policy_table(policy::PolicyTable::load(table_path));

  constexpr int kPerGroup = 6;
  constexpr double kGridM = 500.0;
  const int groups = (n + kPerGroup - 1) / kPerGroup;
  const int width = 1 + static_cast<int>(std::sqrt(static_cast<double>(groups)));
  for (int i = 0; i < n; ++i) {
    const int g = i / kPerGroup;
    const int slot = i % kPerGroup;
    fleet::MissionSpec spec;
    spec.receiver_pos = {kGridM * (g % width), kGridM * (g / width), 10.0};
    spec.start_pos = spec.receiver_pos + geo::Vec3{150.0 + 25.0 * slot, 0.0, 0.0};
    spec.mdata_bytes = 8.0e6;
    spec.rho_per_m = 1.0e-4;
    spec.deadline_s = 90.0;
    spec.spawn_t_s = 0.2 * (i % 50);
    eng.add_mission(spec);
  }

  const auto wall0 = std::chrono::steady_clock::now();
  eng.run_until(duration_s);
  const auto wall1 = std::chrono::steady_clock::now();

  ScaleRow row;
  row.n = n;
  row.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  const double steps = duration_s / cfg.dt_s;
  row.per_uav_step_ns = row.wall_s * 1e9 / (steps * n);
  row.realtime_factor = duration_s / row.wall_s;
  row.totals = eng.totals();
  return row;
}

// Deadline-weighted utility of a contended single-channel cell under a
// given transmit scheduler: six missions whose arrival order runs
// *against* their urgency (earlier spawn => later deadline), one
// transmitter admitted per sweep. Seeded and wall-clock free, so the
// urgent-beats-FIFO ordering is golden-pinnable.
double contended_deadline_utility(skyferry::fleet::SchedulerPolicy policy,
                                  std::uint64_t seed) {
  using namespace skyferry;
  fleet::FleetConfig cfg;
  cfg.policy = policy;
  cfg.cell_size_m = 1.0e6;
  cfg.max_tx_per_cell = 1;
  fleet::FleetEngine eng(cfg, seed);
  for (int i = 0; i < 6; ++i) {
    fleet::MissionSpec spec;
    // Spawn on the transmit point so admission order alone decides
    // fates: arrival (spawn) order runs against urgency — the earliest
    // arrivals have the latest deadlines, so FIFO starves the urgent.
    spec.receiver_pos = {0.0, static_cast<double>(i), 10.0};
    spec.start_pos = {30.0, static_cast<double>(i), 10.0};
    spec.fixed_target_distance_m = 30.0;
    spec.mdata_bytes = 8.0e6;
    spec.rho_per_m = 0.0;
    spec.spawn_t_s = 0.05 * i;
    spec.deadline_s = 20.0 - 3.0 * i;
    eng.add_mission(spec);
  }
  eng.run_until(40.0);
  return eng.totals().deadline_weighted_utility;
}

}  // namespace

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("fleet_scale");
  skyferry::bench::Report report(cli);
  std::uint64_t seed = 20260809;
  int n = 0;  // 0 = sweep {10, 100, 1000, 5000}
  int threads = 1;
  double duration = 120.0;
  std::string policy_name = "fifo";
  std::string table_path;
  bool check = false;
  cli.flag("--seed", &seed, "fleet RNG seed")
      .flag("--n", &n, "fleet size; 0 sweeps {10, 100, 1000, 5000}")
      .flag("--threads", &threads, "sweep worker threads (results are thread-count invariant)")
      .flag("--duration", &duration, "simulated seconds per fleet size")
      .flag("--policy", &policy_name, "transmit scheduler: fifo | urgent | buffer")
      .flag("--policy-table", &table_path,
            "compiled policy table (.json) for the batched decide path; empty = exact")
      .flag("--check", &check,
            "exit nonzero unless every measured n <= 1000 simulates faster than real time");
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;

  fleet::SchedulerPolicy policy{};
  if (!fleet::parse_policy(policy_name, policy)) {
    std::fprintf(stderr, "fleet_scale: unknown --policy '%s'\n", policy_name.c_str());
    return 2;
  }

  std::vector<int> sizes = n > 0 ? std::vector<int>{n} : std::vector<int>{10, 100, 1000, 5000};
  io::Table t("fleet scale sweep (" + std::string(fleet::to_string(policy)) + ", " +
              io::format_number(threads) + " thread(s), " + io::format_number(duration) +
              " s simulated)");
  t.columns({"n", "wall_s", "ns/UAV-step", "x real time", "done", "failed", "deadline util"});

  bool realtime_ok = true;
  for (const int size : sizes) {
    const ScaleRow r = run_scale(size, duration, policy, threads, seed, table_path);
    t.add_row(io::format_number(r.n),
              {r.wall_s, r.per_uav_step_ns, r.realtime_factor,
               static_cast<double>(r.totals.completed), static_cast<double>(r.totals.failed),
               r.totals.deadline_weighted_utility});
    if (size <= 1000 && r.realtime_factor <= 1.0) realtime_ok = false;
    if (size == 1000) {
      report.metric("completed_n1000", static_cast<double>(r.totals.completed),
                    check::Tolerance::exact(), "seeded: completions are deterministic");
    }
  }
  t.print();

  // Scheduler ordering under contention (wall-clock free, golden-pinned;
  // the faster-than-real-time contract stays with --check / ctest since
  // it is machine-dependent).
  const double u_fifo =
      contended_deadline_utility(fleet::SchedulerPolicy::kFifo, seed);
  const double u_urgent =
      contended_deadline_utility(fleet::SchedulerPolicy::kUrgentFirst, seed);
  std::printf("contended cell deadline utility: fifo %.4f vs urgent-first %.4f\n", u_fifo,
              u_urgent);
  report.metric("deadline_utility_fifo", u_fifo, check::Tolerance::exact(),
                "seeded contended-cell fixture");
  report.metric("deadline_utility_urgent", u_urgent, check::Tolerance::exact(),
                "seeded contended-cell fixture");
  report.claim("urgent_first_beats_fifo_on_deadline_utility", u_urgent > u_fifo,
               "EXPERIMENTS.md: earliest-deadline admission wins when arrivals run "
               "against urgency");
  std::printf(
      "reading: per-UAV-step cost stays flat as the fleet grows — the\n"
      "SoA sweeps amortize, and idle winners cost a clock compare, so\n"
      "scale buys throughput instead of event-queue churn.\n");

  if (check && !realtime_ok) {
    std::fprintf(stderr, "fleet_scale: --check failed — slower than real time\n");
    return 1;
  }
  return report.emit() ? 0 : 1;
}
