// Golden-file comparator: re-evaluates a candidate bench run (--json
// output) against the committed golden using the golden's tolerances.
// Exit 0 when every pinned claim holds, 1 on any failure, 2 on usage or
// I/O errors. One line per check; failures are repeated at the end.
//
//   golden_check --golden golden/fig1.json --candidate /tmp/fig1.json
//   golden_check --golden golden/fig1.json --candidate c.json --quiet
#include <cstdio>
#include <string>

#include "check/golden.h"
#include "exp/cli.h"

int main(int argc, char** argv) {
  using namespace skyferry;
  std::string golden_path;
  std::string candidate_path;
  int quiet = 0;
  exp::Cli cli("golden_check");
  cli.flag("--golden", &golden_path, "committed golden file")
      .flag("--candidate", &candidate_path, "candidate --json output to validate")
      .flag("--quiet", &quiet, "1 = print failures only");
  cli.parse_or_exit(argc, argv);
  if (golden_path.empty() || candidate_path.empty()) {
    std::fprintf(stderr, "golden_check: --golden and --candidate are required\n%s",
                 cli.usage().c_str());
    return 2;
  }

  std::string error;
  check::GoldenFile golden;
  if (!check::GoldenFile::load(golden_path, &golden, &error)) {
    std::fprintf(stderr, "golden_check: %s\n", error.c_str());
    return 2;
  }
  check::GoldenFile candidate;
  if (!check::GoldenFile::load(candidate_path, &candidate, &error)) {
    std::fprintf(stderr, "golden_check: %s\n", error.c_str());
    return 2;
  }

  const auto results = check::compare_golden(golden, candidate);
  int failures = 0;
  for (const auto& r : results) {
    if (!r.ok) ++failures;
    if (quiet == 0 || !r.ok)
      std::printf("  [%s] %s: %s\n", r.ok ? "ok" : "FAIL", r.name.c_str(), r.message.c_str());
  }
  std::printf("%s: %zu checks, %d failed (%s)\n", golden.bench().c_str(), results.size(),
              failures, golden_path.c_str());
  if (failures > 0 && !golden.replay_command().empty())
    std::printf("  golden was recorded by: %s\n", golden.replay_command().c_str());
  return failures == 0 ? 0 : 1;
}
