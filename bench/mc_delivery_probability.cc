// Monte-Carlo delivery guarantees — the executable counterpart of the
// paper's analytic δ(d). Runs N seeded fault-injected mission trials per
// scenario and failure law on the parallel experiment engine and prints:
// empirical vs analytic approach survival (the exponential rows must
// agree — the paper's model as a regression test), full-delivery
// probability, the delivered-MB distribution, completion-time quantiles,
// and the recovery-path counters (rendezvous retries, ARQ
// retransmissions). The linear and Weibull rows quantify how far the
// ablation laws drift from the exponential assumption the planner
// reasons with.
//
// Determinism contract: the CSV rows are byte-identical for any
// --threads value at the same --seed (per-trial seeds are forked from
// indices, reduction is in trial order) — including a campaign that was
// SIGKILLed mid-run and resumed with --checkpoint/--resume. Only the
// timing sidecar (<out>_stats.json) varies with the thread count.
//
// Crash-safety: --checkpoint journals each row's completed chunks to
// <prefix>.<row>.ckpt.json (atomic tmp+rename snapshots); --resume skips
// the journaled chunks. A trial that throws is retried up to
// --max-retries and then quarantined (reported, never aborts the
// campaign); a trial that overruns --trial-timeout-ms is flagged by the
// soft-deadline watchdog. Every quarantined trial's report carries a
// working `--replay-row R --replay-trial SEED` command.
//
// Usage: mc_delivery_probability [--trials N] [--seed S] [--threads T] [--out basename]
//          [--checkpoint prefix] [--resume] [--max-retries N] [--trial-timeout-ms MS]
//          [--fail-fast] [--replay-row row --replay-trial SEED]
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "exp/cli.h"
#include "fault/monte_carlo.h"
#include "io/csv.h"
#include "io/table.h"

namespace {

// Row name -> the spec that produced it, for --replay-trial.
skyferry::fault::TrialSpec spec_for_row(const std::string& row) {
  using namespace skyferry;
  struct Law {
    const char* name;
    uav::FailureLaw law;
  };
  const Law laws[] = {{"exponential", uav::FailureLaw::kExponential},
                      {"linear", uav::FailureLaw::kLinear},
                      {"weibull(k=2)", uav::FailureLaw::kWeibull}};
  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    for (const auto& l : laws) {
      if (row == scen.name + "/" + l.name)
        return fault::TrialSpec{}.with_scenario(scen).with_faults(
            fault::FaultPlan::crashes_only(scen.rho_per_m, l.law));
    }
  }
  if (row == core::Scenario::quadrocopter().name + "/harsh")
    return fault::TrialSpec{}
        .with_scenario(core::Scenario::quadrocopter())
        .with_faults(fault::FaultPlan::harsh());
  throw fault::ConfigError("unknown row '" + row + "' (try airplane/exponential)");
}

// Checkpoint file names must not contain the row's '/' separator.
std::string row_file_tag(std::string row) {
  for (char& c : row)
    if (c == '/' || c == '(' || c == ')' || c == '=') c = '_';
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skyferry;
  std::uint64_t seed = 1;
  int trials = 2000;
  int threads = 0;
  std::string out = "mc_delivery_probability";
  std::string checkpoint;
  bool resume = false;
  int max_retries = 1;
  double trial_timeout_ms = 0.0;
  bool fail_fast = false;
  std::string replay_row = "airplane/exponential";
  std::uint64_t replay_trial = 0;
  exp::Cli cli("mc_delivery_probability");
  cli.flag("--seed", &seed, "master seed (forked per trial)")
      .flag("--trials", &trials, "trials per row")
      .flag("--threads", &threads, "worker threads, 0 = one per hardware thread")
      .flag("--out", &out, "output basename for <out>.csv and <out>_stats.json")
      .flag("--checkpoint", &checkpoint, "journal chunks to <prefix>.<row>.ckpt.json")
      .flag("--resume", &resume, "skip chunks already journaled in the checkpoint files")
      .flag("--max-retries", &max_retries, "same-seed retries before quarantining a trial")
      .flag("--trial-timeout-ms", &trial_timeout_ms, "soft per-trial deadline, 0 = off")
      .flag("--fail-fast", &fail_fast, "abort on the first trial exception (old behavior)")
      .flag("--replay-row", &replay_row, "row whose spec --replay-trial uses")
      .flag("--replay-trial", &replay_trial, "run one trial with this forked seed and exit");
  bench::Report report(cli);
  cli.parse_or_exit(argc, argv);

  if (replay_trial != 0) {
    // Single-trial replay: the exact mission one failure record points at.
    const auto r = fault::run_mission_trial(spec_for_row(replay_row), replay_trial);
    std::printf("replay %s seed=%llu\n", replay_row.c_str(),
                static_cast<unsigned long long>(replay_trial));
    std::printf("  survived_approach=%d crashed=%d negotiation_failed=%d delivered_all=%d\n",
                r.survived_approach, r.crashed, r.negotiation_failed, r.delivered_all);
    std::printf("  delivered=%.0f/%.0f bytes  completion=%.3f s  attempts=%d\n",
                r.delivered_bytes, r.total_bytes, r.completion_time_s, r.rendezvous_attempts);
    return 0;
  }

  cli.print_replay_header();
  std::printf("# trials per row: %d\n", trials);

  io::CsvWriter csv(out + ".csv");
  csv.header({"scenario", "law", "surv_emp", "surv_analytic", "p_full", "mean_frac", "med_mb",
              "p50_s", "p90_s", "p99_s", "mean_attempts", "mean_ctrl_retries", "mean_arq_retx"});
  exp::RunStats total;
  total.name = "mc_delivery_probability";
  total.seed = seed;

  bool interrupted = false;
  const auto run_row = [&](const core::Scenario& scen, const fault::FaultPlan& plan,
                           const std::string& row) {
    exp::SupervisorOptions so;
    so.name = row;
    so.max_retries = max_retries;
    so.trial_timeout_ms = trial_timeout_ms;
    so.fail_fast = fail_fast;
    so.resume = resume;
    if (!checkpoint.empty())
      so.checkpoint_path = checkpoint + "." + row_file_tag(row) + ".ckpt.json";
    so.replay_prefix = "mc_delivery_probability --replay-row " + row + " --replay-trial";
    const auto s = fault::run_monte_carlo(
        fault::MonteCarloConfig{}
            .with_spec(fault::TrialSpec{}.with_scenario(scen).with_faults(plan))
            .with_trials(trials)
            .with_seed(seed)
            .with_threads(threads)
            .with_supervision(std::move(so)));
    total.merge(s.run_stats);
    if (s.interrupted) interrupted = true;
    if (s.quarantined > 0 || !s.report.failures.empty())
      std::printf("%s\n", s.report.summary_line().c_str());
    for (const auto& f : s.report.failures)
      if (f.quarantined)
        std::printf("#   quarantined %s trial %d (%s: %s) — replay: %s\n", row.c_str(), f.trial,
                    f.type.c_str(), f.what.c_str(), f.replay_cmd.c_str());
    return s;
  };

  struct Law {
    const char* name;
    uav::FailureLaw law;
  };
  const Law laws[] = {{"exponential", uav::FailureLaw::kExponential},
                      {"linear", uav::FailureLaw::kLinear},
                      {"weibull(k=2)", uav::FailureLaw::kWeibull}};

  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    if (interrupted) break;
    std::printf("\n%s scenario (Mdata=%.1f MB, d0=%.0f m, rho=%.3g /m)\n", scen.name.c_str(),
                scen.mdata_bytes / 1e6, scen.d0_m, scen.rho_per_m);
    io::Table t("crash-only Monte-Carlo vs analytic delta(d)");
    t.columns({"law", "surv_emp", "surv_analytic", "P(full)", "mean_frac", "med_MB", "p90_s"});
    for (const auto& l : laws) {
      const auto s =
          run_row(scen, fault::FaultPlan::crashes_only(scen.rho_per_m, l.law),
                  scen.name + "/" + l.name);
      if (s.interrupted) break;
      t.add_row(l.name, {s.empirical_approach_survival, s.analytic_approach_survival,
                         s.empirical_delivery_probability, s.mean_delivered_fraction,
                         s.delivered_mb.median, s.completion_p90_s});
      if (l.law == uav::FailureLaw::kExponential) {
        // The paper's closed form as a regression test: empirical
        // approach survival must track delta(d) within 3 binomial sigmas
        // over the trials that completed, widened by the quarantined
        // fraction (a quarantined trial could have gone either way).
        const double p = s.analytic_approach_survival;
        const int n = std::max(s.completed_trials, 1);
        const double sd = std::sqrt(std::max(p * (1.0 - p) / n, 1e-12));
        const double widen = static_cast<double>(s.quarantined) / trials;
        report.metric(scen.name + "_exp_surv_emp", s.empirical_approach_survival,
                      check::Tolerance::sigmas(3.0, sd + widen / 3.0),
                      "must track analytic delta(d_opt) = " + io::format_number(p));
        report.claim(scen.name + "_emp_matches_analytic_3sigma",
                     std::abs(s.empirical_approach_survival - p) <= 3.0 * sd + widen + 1e-12);
      }
      csv.row(scen.name + "/" + l.name,
              std::vector<double>{s.empirical_approach_survival, s.analytic_approach_survival,
                                  s.empirical_delivery_probability, s.mean_delivered_fraction,
                                  s.delivered_mb.median, s.completion_p50_s, s.completion_p90_s,
                                  s.completion_p99_s, s.mean_rendezvous_attempts,
                                  s.mean_control_retries, s.mean_arq_retransmissions});
    }
    t.print();
  }

  // Everything-at-once: crashes + link-outage bursts + control loss + GPS
  // dropout, quadrocopter scenario. The recovery layer earns its keep
  // here: partial deliveries instead of zeros, resumed transfers instead
  // of restarts.
  if (!interrupted) {
    const auto scen = core::Scenario::quadrocopter();
    const auto s = run_row(scen, fault::FaultPlan::harsh(), scen.name + "/harsh");
    csv.row(scen.name + "/harsh",
            std::vector<double>{s.empirical_approach_survival, s.analytic_approach_survival,
                                s.empirical_delivery_probability, s.mean_delivered_fraction,
                                s.delivered_mb.median, s.completion_p50_s, s.completion_p90_s,
                                s.completion_p99_s, s.mean_rendezvous_attempts,
                                s.mean_control_retries, s.mean_arq_retransmissions});
    std::printf("\nharsh plan, quadrocopter (outages 1/30 s x 2 s, 10%% ctrl loss, GPS dropouts)\n");
    io::Table t("degraded-mode delivery");
    t.columns({"metric", "value"});
    t.add_row("P(full delivery)", {s.empirical_delivery_probability});
    t.add_row("P(survive approach)", {s.empirical_approach_survival});
    t.add_row("mean delivered fraction", {s.mean_delivered_fraction});
    t.add_row("delivered MB median", {s.delivered_mb.median});
    t.add_row("delivered MB q1", {s.delivered_mb.q1});
    t.add_row("completion p50 s", {s.completion_p50_s});
    t.add_row("completion p99 s", {s.completion_p99_s});
    t.add_row("mean rendezvous attempts", {s.mean_rendezvous_attempts});
    t.add_row("mean control retries", {s.mean_control_retries});
    t.add_row("mean ARQ retransmissions", {s.mean_arq_retransmissions});
    t.add_row("crashes", {static_cast<double>(s.crashes)});
    t.add_row("negotiation failures", {static_cast<double>(s.negotiation_failures)});
    t.print();

    report.metric("harsh_mean_delivered_fraction", s.mean_delivered_fraction,
                  check::Tolerance::sigmas(3.0, 0.02));
    report.claim("harsh_partial_beats_all_or_nothing",
                 s.mean_delivered_fraction > s.empirical_delivery_probability,
                 "resumable ARQ turns crashes into partial deliveries");
  }

  if (interrupted) {
    std::printf(
        "# interrupted (SIGINT/SIGTERM) — completed chunks are journaled in the\n"
        "# checkpoint files; rerun the same command with --resume to finish.\n");
    return 130;
  }

  std::printf("%s\n", total.summary_line().c_str());
  const std::string stats_path = out + "_stats.json";
  if (!total.write_json(stats_path)) {
    std::fprintf(stderr, "cannot write %s\n", stats_path.c_str());
    return 1;
  }
  std::printf("csv: %s.csv  stats: %s\n", out.c_str(), stats_path.c_str());
  std::printf(
      "reading: the exponential rows validate the paper's closed form —\n"
      "empirical approach survival tracks delta(d)=exp(-rho*(d0-d_opt));\n"
      "linear/weibull rows show the same planner decision under a\n"
      "different truth. Under the harsh plan the mean delivered fraction\n"
      "stays well above P(full): resumable ARQ turns crashes into partial\n"
      "deliveries instead of losses. The CSV is byte-identical for any\n"
      "--threads; <out>_stats.json carries the wall-clock/speedup side.\n");
  return report.emit() ? 0 : 1;
}
