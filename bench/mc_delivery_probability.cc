// Monte-Carlo delivery guarantees — the executable counterpart of the
// paper's analytic δ(d). Runs N seeded fault-injected mission trials per
// scenario and failure law and prints: empirical vs analytic approach
// survival (the exponential rows must agree — the paper's model as a
// regression test), full-delivery probability, the delivered-MB
// distribution, completion-time quantiles, and the recovery-path
// counters (rendezvous retries, ARQ retransmissions). The linear and
// Weibull rows quantify how far the ablation laws drift from the
// exponential assumption the planner reasons with.
//
// Usage: mc_delivery_probability [--trials N] [--seed S]
#include <cstdio>

#include "bench_util.h"
#include "fault/monte_carlo.h"
#include "io/table.h"

int main(int argc, char** argv) {
  using namespace skyferry;
  const std::uint64_t seed = benchutil::parse_seed(argc, argv, 1);
  const int trials = static_cast<int>(benchutil::parse_long(argc, argv, "--trials", 2000));
  benchutil::print_seed_header("mc_delivery_probability", seed);
  std::printf("# trials per row: %d\n", trials);

  struct Law {
    const char* name;
    uav::FailureLaw law;
  };
  const Law laws[] = {{"exponential", uav::FailureLaw::kExponential},
                      {"linear", uav::FailureLaw::kLinear},
                      {"weibull(k=2)", uav::FailureLaw::kWeibull}};

  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    std::printf("\n%s scenario (Mdata=%.1f MB, d0=%.0f m, rho=%.3g /m)\n", scen.name.c_str(),
                scen.mdata_bytes / 1e6, scen.d0_m, scen.rho_per_m);
    io::Table t("crash-only Monte-Carlo vs analytic delta(d)");
    t.columns({"law", "surv_emp", "surv_analytic", "P(full)", "mean_frac", "med_MB", "p90_s"});
    for (const auto& l : laws) {
      fault::MonteCarloConfig cfg;
      cfg.spec.scenario = scen;
      cfg.spec.faults = fault::FaultPlan::crashes_only(scen.rho_per_m, l.law);
      cfg.trials = trials;
      cfg.seed = seed;
      const auto s = fault::run_monte_carlo(cfg);
      t.add_row(l.name, {s.empirical_approach_survival, s.analytic_approach_survival,
                         s.empirical_delivery_probability, s.mean_delivered_fraction,
                         s.delivered_mb.median, s.completion_p90_s});
    }
    t.print();
  }

  // Everything-at-once: crashes + link-outage bursts + control loss + GPS
  // dropout, quadrocopter scenario. The recovery layer earns its keep
  // here: partial deliveries instead of zeros, resumed transfers instead
  // of restarts.
  {
    fault::MonteCarloConfig cfg;
    cfg.spec.scenario = core::Scenario::quadrocopter();
    cfg.spec.faults = fault::FaultPlan::harsh();
    cfg.trials = trials;
    cfg.seed = seed;
    const auto s = fault::run_monte_carlo(cfg);
    std::printf("\nharsh plan, quadrocopter (outages 1/30 s x 2 s, 10%% ctrl loss, GPS dropouts)\n");
    io::Table t("degraded-mode delivery");
    t.columns({"metric", "value"});
    t.add_row("P(full delivery)", {s.empirical_delivery_probability});
    t.add_row("P(survive approach)", {s.empirical_approach_survival});
    t.add_row("mean delivered fraction", {s.mean_delivered_fraction});
    t.add_row("delivered MB median", {s.delivered_mb.median});
    t.add_row("delivered MB q1", {s.delivered_mb.q1});
    t.add_row("completion p50 s", {s.completion_p50_s});
    t.add_row("completion p99 s", {s.completion_p99_s});
    t.add_row("mean rendezvous attempts", {s.mean_rendezvous_attempts});
    t.add_row("mean control retries", {s.mean_control_retries});
    t.add_row("mean ARQ retransmissions", {s.mean_arq_retransmissions});
    t.add_row("crashes", {static_cast<double>(s.crashes)});
    t.add_row("negotiation failures", {static_cast<double>(s.negotiation_failures)});
    t.print();
  }
  std::printf(
      "reading: the exponential rows validate the paper's closed form —\n"
      "empirical approach survival tracks delta(d)=exp(-rho*(d0-d_opt));\n"
      "linear/weibull rows show the same planner decision under a\n"
      "different truth. Under the harsh plan the mean delivered fraction\n"
      "stays well above P(full): resumable ARQ turns crashes into partial\n"
      "deliveries instead of losses.\n");
  return 0;
}
