// Monte-Carlo delivery guarantees — the executable counterpart of the
// paper's analytic δ(d). Runs N seeded fault-injected mission trials per
// scenario and failure law on the parallel experiment engine and prints:
// empirical vs analytic approach survival (the exponential rows must
// agree — the paper's model as a regression test), full-delivery
// probability, the delivered-MB distribution, completion-time quantiles,
// and the recovery-path counters (rendezvous retries, ARQ
// retransmissions). The linear and Weibull rows quantify how far the
// ablation laws drift from the exponential assumption the planner
// reasons with.
//
// Determinism contract: the CSV rows are byte-identical for any
// --threads value at the same --seed (per-trial seeds are forked from
// indices, reduction is in trial order). Only the timing sidecar
// (<out>_stats.json) varies with the thread count.
//
// Usage: mc_delivery_probability [--trials N] [--seed S] [--threads T] [--out basename]
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "exp/cli.h"
#include "fault/monte_carlo.h"
#include "io/csv.h"
#include "io/table.h"

int main(int argc, char** argv) {
  using namespace skyferry;
  std::uint64_t seed = 1;
  int trials = 2000;
  int threads = 0;
  std::string out = "mc_delivery_probability";
  exp::Cli cli("mc_delivery_probability");
  cli.flag("--seed", &seed, "master seed (forked per trial)")
      .flag("--trials", &trials, "trials per row")
      .flag("--threads", &threads, "worker threads, 0 = one per hardware thread")
      .flag("--out", &out, "output basename for <out>.csv and <out>_stats.json");
  bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  std::printf("# trials per row: %d\n", trials);

  io::CsvWriter csv(out + ".csv");
  csv.header({"scenario", "law", "surv_emp", "surv_analytic", "p_full", "mean_frac", "med_mb",
              "p50_s", "p90_s", "p99_s", "mean_attempts", "mean_ctrl_retries", "mean_arq_retx"});
  exp::RunStats total;
  total.name = "mc_delivery_probability";
  total.seed = seed;

  const auto run_row = [&](const core::Scenario& scen, const fault::FaultPlan& plan) {
    const auto s = fault::run_monte_carlo(fault::MonteCarloConfig{}
                                              .with_spec(fault::TrialSpec{}
                                                             .with_scenario(scen)
                                                             .with_faults(plan))
                                              .with_trials(trials)
                                              .with_seed(seed)
                                              .with_threads(threads));
    total.merge(s.run_stats);
    return s;
  };

  struct Law {
    const char* name;
    uav::FailureLaw law;
  };
  const Law laws[] = {{"exponential", uav::FailureLaw::kExponential},
                      {"linear", uav::FailureLaw::kLinear},
                      {"weibull(k=2)", uav::FailureLaw::kWeibull}};

  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    std::printf("\n%s scenario (Mdata=%.1f MB, d0=%.0f m, rho=%.3g /m)\n", scen.name.c_str(),
                scen.mdata_bytes / 1e6, scen.d0_m, scen.rho_per_m);
    io::Table t("crash-only Monte-Carlo vs analytic delta(d)");
    t.columns({"law", "surv_emp", "surv_analytic", "P(full)", "mean_frac", "med_MB", "p90_s"});
    for (const auto& l : laws) {
      const auto s = run_row(scen, fault::FaultPlan::crashes_only(scen.rho_per_m, l.law));
      t.add_row(l.name, {s.empirical_approach_survival, s.analytic_approach_survival,
                         s.empirical_delivery_probability, s.mean_delivered_fraction,
                         s.delivered_mb.median, s.completion_p90_s});
      if (l.law == uav::FailureLaw::kExponential) {
        // The paper's closed form as a regression test: empirical
        // approach survival must track delta(d) within 3 binomial sigmas.
        const double p = s.analytic_approach_survival;
        const double sd = std::sqrt(std::max(p * (1.0 - p) / trials, 1e-12));
        report.metric(scen.name + "_exp_surv_emp", s.empirical_approach_survival,
                      check::Tolerance::sigmas(3.0, sd),
                      "must track analytic delta(d_opt) = " + io::format_number(p));
        report.claim(scen.name + "_emp_matches_analytic_3sigma",
                     std::abs(s.empirical_approach_survival - p) <= 3.0 * sd + 1e-12);
      }
      csv.row(scen.name + "/" + l.name,
              std::vector<double>{s.empirical_approach_survival, s.analytic_approach_survival,
                                  s.empirical_delivery_probability, s.mean_delivered_fraction,
                                  s.delivered_mb.median, s.completion_p50_s, s.completion_p90_s,
                                  s.completion_p99_s, s.mean_rendezvous_attempts,
                                  s.mean_control_retries, s.mean_arq_retransmissions});
    }
    t.print();
  }

  // Everything-at-once: crashes + link-outage bursts + control loss + GPS
  // dropout, quadrocopter scenario. The recovery layer earns its keep
  // here: partial deliveries instead of zeros, resumed transfers instead
  // of restarts.
  {
    const auto scen = core::Scenario::quadrocopter();
    const auto s = run_row(scen, fault::FaultPlan::harsh());
    csv.row(scen.name + "/harsh",
            std::vector<double>{s.empirical_approach_survival, s.analytic_approach_survival,
                                s.empirical_delivery_probability, s.mean_delivered_fraction,
                                s.delivered_mb.median, s.completion_p50_s, s.completion_p90_s,
                                s.completion_p99_s, s.mean_rendezvous_attempts,
                                s.mean_control_retries, s.mean_arq_retransmissions});
    std::printf("\nharsh plan, quadrocopter (outages 1/30 s x 2 s, 10%% ctrl loss, GPS dropouts)\n");
    io::Table t("degraded-mode delivery");
    t.columns({"metric", "value"});
    t.add_row("P(full delivery)", {s.empirical_delivery_probability});
    t.add_row("P(survive approach)", {s.empirical_approach_survival});
    t.add_row("mean delivered fraction", {s.mean_delivered_fraction});
    t.add_row("delivered MB median", {s.delivered_mb.median});
    t.add_row("delivered MB q1", {s.delivered_mb.q1});
    t.add_row("completion p50 s", {s.completion_p50_s});
    t.add_row("completion p99 s", {s.completion_p99_s});
    t.add_row("mean rendezvous attempts", {s.mean_rendezvous_attempts});
    t.add_row("mean control retries", {s.mean_control_retries});
    t.add_row("mean ARQ retransmissions", {s.mean_arq_retransmissions});
    t.add_row("crashes", {static_cast<double>(s.crashes)});
    t.add_row("negotiation failures", {static_cast<double>(s.negotiation_failures)});
    t.print();

    report.metric("harsh_mean_delivered_fraction", s.mean_delivered_fraction,
                  check::Tolerance::sigmas(3.0, 0.02));
    report.claim("harsh_partial_beats_all_or_nothing",
                 s.mean_delivered_fraction > s.empirical_delivery_probability,
                 "resumable ARQ turns crashes into partial deliveries");
  }

  std::printf("%s\n", total.summary_line().c_str());
  const std::string stats_path = out + "_stats.json";
  if (!total.write_json(stats_path)) {
    std::fprintf(stderr, "cannot write %s\n", stats_path.c_str());
    return 1;
  }
  std::printf("csv: %s.csv  stats: %s\n", out.c_str(), stats_path.c_str());
  std::printf(
      "reading: the exponential rows validate the paper's closed form —\n"
      "empirical approach survival tracks delta(d)=exp(-rho*(d0-d_opt));\n"
      "linear/weibull rows show the same planner decision under a\n"
      "different truth. Under the harsh plan the mean delivered fraction\n"
      "stays well above P(full): resumable ARQ turns crashes into partial\n"
      "deliveries instead of losses. The CSV is byte-identical for any\n"
      "--threads; <out>_stats.json carries the wall-clock/speedup side.\n");
  return report.emit() ? 0 : 1;
}
