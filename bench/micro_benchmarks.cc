// Google-benchmark micro-benchmarks for the hot paths: the utility
// optimizer (runs on every rendezvous decision), the PER math (runs per
// simulated A-MPDU), its PerTable fast path, binomial aggregate
// sampling, the event queue, geodesy, full link-sim seconds at both
// fidelities, and one Monte-Carlo mission trial.
//
// The benchmarks named in BENCH_link_sim.json are the regression gate:
// scripts/bench_regress.sh runs this binary with --benchmark_format=json
// and fails on >25% regression of any baselined counter.
#include <benchmark/benchmark.h>

#include <vector>

#include "airnet/network.h"
#include "core/optimizer.h"
#include "core/redecide.h"
#include "core/scenario.h"
#include "core/strategy.h"
#include "fault/mission_sim.h"
#include "fleet/engine.h"
#include "geo/geodesy.h"
#include "link/multilink.h"
#include "mac/link.h"
#include "phy/per_table.h"
#include "policy/compiler.h"
#include "policy/service.h"
#include "sim/simulator.h"

namespace {

using namespace skyferry;

void BM_OptimizeUtility(benchmark::State& state) {
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  const core::CommDelayModel delay(model, scen.delivery_params());
  const core::UtilityFunction u(delay, failure);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize(u));
  }
}
BENCHMARK(BM_OptimizeUtility);

void BM_OptimizeBruteForce(benchmark::State& state) {
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  const core::CommDelayModel delay(model, scen.delivery_params());
  const core::UtilityFunction u(delay, failure);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize_brute_force(u, 20000));
  }
}
BENCHMARK(BM_OptimizeBruteForce);

// One full mid-flight re-decision: trigger ladder + re-estimated model +
// re-optimization at the reduced in-flight grid. This runs inside a
// probe tick of a live mission, so bench_regress.sh pins it under an
// absolute 10 us ceiling on top of the relative regression gate.
void BM_ReDecision(benchmark::State& state) {
  const auto scen = core::Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  ctrl::ChannelEstimate est;
  est.a = model.a() * 0.6;
  est.b = model.b() * 0.6;
  est.gain = 0.6;
  est.r_squared = 0.98;
  est.samples = 32;
  est.confidence = 0.7;
  core::ReDecisionInput in;
  in.current_d_m = 90.0;
  in.target_d_m = 58.0;
  in.min_distance_m = scen.min_distance_m;
  in.speed_mps = scen.speed_mps;
  in.mdata_bytes = scen.mdata_bytes;
  in.divergence = 30.0;
  in.channel = est;
  in.nominal_rho = scen.rho_per_m;
  for (auto _ : state) {
    core::ReDecisionPolicy policy({}, model);
    benchmark::DoNotOptimize(policy.consider(in));
  }
}
BENCHMARK(BM_ReDecision);

// The compiled-policy hot path: a 1024-query batch through
// DecisionService::decide with every query served by the table backend
// (O(1) 4-D interpolation + one exact utility evaluation at d*). The
// service contract is >= 1e6 decisions/s on one core — amortized <= 1 us
// per decision — which bench_regress.sh pins as an absolute ceiling on
// top of the relative regression gate. The table is compiled once at
// setup (a few hundred exact solves on the thread pool); the measured
// loop performs zero steady-state allocations.
void BM_PolicyDecideBatch(benchmark::State& state) {
  policy::CompilerConfig cfg;
  cfg.d0 = {60.0, 300.0, 7};
  cfg.speed = {2.0, 20.0, 5};
  cfg.mdata = {5e6, 6e7, 5, true};
  cfg.rho = {1e-4, 5e-3, 7, true};
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  policy::DecisionService service(model);
  service.install_table(policy::Compiler(cfg).compile());

  constexpr std::size_t kBatch = 1024;
  std::vector<policy::Query> queries(kBatch);
  std::vector<policy::Decision> answers(kBatch);
  sim::Rng rng(7);
  for (auto& q : queries) {
    q.d0_m = rng.uniform(60.0, 300.0);
    q.speed_mps = rng.uniform(2.0, 20.0);
    q.mdata_bytes = rng.uniform(5e6, 6e7);
    q.rho_per_m = rng.uniform(1e-4, 5e-3);
  }
  for (auto _ : state) {
    service.decide(std::span<const policy::Query>(queries),
                   std::span<policy::Decision>(answers));
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
  if (service.counters().exact != 0) state.SkipWithError("query escaped the table path");
}
BENCHMARK(BM_PolicyDecideBatch);

// One full joint (link, d) decision over all four backends: 5 searches
// (4 single + 1 joint at the elected link) plus the dominance-net
// evaluation — the spawn-time cost of a multi-link fleet mission.
void BM_MultiLinkDecide(benchmark::State& state) {
  const link::LinkSet set({link::LinkBackendConfig::wifi_80211n(),
                           link::LinkBackendConfig::cellular(), link::LinkBackendConfig::mesh(),
                           link::LinkBackendConfig::leo()});
  const std::vector<const link::LinkBackend*> views = set.views();
  const uav::FailureModel failure(1e-3);
  const link::MultiLinkParams p{1500.0, 10.0, 5e7, 20.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(link::optimize_multilink(views, p, failure));
  }
}
BENCHMARK(BM_MultiLinkDecide);

void BM_PacketErrorRate(benchmark::State& state) {
  const phy::ErrorModel em({}, 0.9);
  double snr = 0.0;
  for (auto _ : state) {
    snr = (snr < 30.0) ? snr + 0.1 : 0.0;
    benchmark::DoNotOptimize(
        em.packet_error_rate(phy::mcs(static_cast<int>(snr) % 16), snr, 12288));
  }
}
BENCHMARK(BM_PacketErrorRate);

void BM_PerTableLookup(benchmark::State& state) {
  const phy::ErrorModel em({}, 0.9);
  const phy::PerTable tab(em, phy::mcs(3), 12288);
  double snr = 0.0, acc = 0.0;
  for (auto _ : state) {
    snr = (snr < 30.0) ? snr + 0.1 : 0.0;
    acc += tab.per(snr);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_PerTableLookup);

void BM_PerTableMarginal(benchmark::State& state) {
  const phy::ErrorModel em({}, 0.9);
  const phy::PerTable tab(em, phy::mcs(3), 12288);
  double snr = 0.0, acc = 0.0;
  for (auto _ : state) {
    snr = (snr < 30.0) ? snr + 0.1 : 0.0;
    acc += tab.marginal_per(snr, 2.0);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_PerTableMarginal);

void BM_RngBinomial(benchmark::State& state) {
  sim::Rng rng(42);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng.binomial(64, 0.3);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngBinomial);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 10007), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_EventQueue);

void BM_Haversine(benchmark::State& state) {
  const geo::GeoPoint a{47.3769, 8.5417, 400.0};
  geo::GeoPoint b = a;
  double delta = 0.0;
  for (auto _ : state) {
    delta += 1e-6;
    b.lat_deg = a.lat_deg + delta;
    benchmark::DoNotOptimize(geo::haversine_m(a, b));
  }
}
BENCHMARK(BM_Haversine);

// One saturated simulated link-second (simulator construction included —
// that is how Monte-Carlo consumers pay for it; the PER tables are
// shared across iterations the same way a Monte-Carlo sweep shares them
// across trials). The 60 m operating point sits mid-waterfall for the
// quadrocopter link at MCS 1, where the analytic PER chain actually
// runs. The regression harness tracks the kPerMpdu/kAggregate ratio:
// kAggregate must stay >= 10x faster (see BENCH_link_sim.json).
void link_sim_second(benchmark::State& state, mac::LinkFidelity fidelity, double jitter_db) {
  mac::LinkConfig cfg;
  cfg.channel = phy::ChannelConfig::quadrocopter();
  cfg.fidelity = fidelity;
  cfg.per_mpdu_snr_jitter_db = jitter_db;
  cfg.shared_tables = mac::make_shared_per_tables(cfg);
  for (auto _ : state) {
    mac::FixedMcs rc(1);
    mac::LinkSimulator sim(cfg, rc, 42);
    benchmark::DoNotOptimize(sim.run_saturated(1.0, mac::static_geometry(60.0)));
  }
}

void BM_LinkSimSecondPerMpdu(benchmark::State& state) {
  link_sim_second(state, mac::LinkFidelity::kPerMpdu, 2.0);
}
BENCHMARK(BM_LinkSimSecondPerMpdu);

void BM_LinkSimSecondAggregate(benchmark::State& state) {
  link_sim_second(state, mac::LinkFidelity::kAggregate, 2.0);
}
BENCHMARK(BM_LinkSimSecondAggregate);

void BM_LinkSimSecondAggregateNoJitter(benchmark::State& state) {
  link_sim_second(state, mac::LinkFidelity::kAggregate, 0.0);
}
BENCHMARK(BM_LinkSimSecondAggregateNoJitter);

void BM_MonteCarloTrial(benchmark::State& state) {
  fault::TrialSpec spec;
  spec.scenario = core::Scenario::quadrocopter();
  spec.faults = fault::FaultPlan::harsh();
  spec.target_packets = 64;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::run_mission_trial(spec, ++seed));
  }
}
BENCHMARK(BM_MonteCarloTrial);

void BM_MonteCarloTrialLinkSim(benchmark::State& state) {
  fault::TrialSpec spec;
  spec.scenario = core::Scenario::quadrocopter();
  spec.faults = fault::FaultPlan::harsh();
  spec.target_packets = 64;
  spec.use_link_simulator = true;  // kAggregate fidelity by default
  spec.with_shared_link_tables();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::run_mission_trial(spec, ++seed));
  }
}
BENCHMARK(BM_MonteCarloTrialLinkSim);

void BM_StrategyTransferCurve(benchmark::State& state) {
  const auto model = core::PaperLogThroughput::quadrocopter();
  const core::SpeedDegradation deg{};
  const core::DeliveryParams params{80.0, 4.5, 20e6, 20.0};
  core::StrategySpec spec;
  spec.kind = core::StrategyKind::kShipThenTransmit;
  spec.target_distance_m = 60.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simulate_strategy(spec, model, deg, params));
  }
}
BENCHMARK(BM_StrategyTransferCurve);

// --- Fleet-scale stepping (DESIGN.md §12) --------------------------------
//
// Same world, two engines: 1000 UAVs in one shared collision domain,
// saturated transfers that never drain, advanced one 50 ms step per
// iteration. BM_AirnetStep1k is the event-driven baseline (per-node
// uav::Uav autopilot ticks, heap-scheduled std::function exchanges,
// per-MPDU erfc chains); BM_FleetStep1k is the batched SoA sweep.
// bench_regress.sh pins BM_FleetStep1k under an absolute ceiling (the
// real-time-at-n=1000 claim needs < 50 ms/step on one core) and requires
// the BM_AirnetStep1k / BM_FleetStep1k ratio to stay >= 20x.

void BM_FleetStep1k(benchmark::State& state) {
  fleet::FleetConfig cfg;
  cfg.threads = 1;             // the speedup claim is single-core
  cfg.cell_size_m = 1e8;       // one global collision domain, like airnet
  cfg.max_tx_per_cell = 1000;  // everyone admitted; Bianchi stretches airtime
  fleet::FleetEngine eng(cfg, 42);
  for (int i = 0; i < 1000; ++i) {
    fleet::MissionSpec spec;
    spec.start_pos = {40.0, 4.0 * i, 10.0};
    spec.receiver_pos = {0.0, 4.0 * i, 10.0};
    spec.fixed_target_distance_m = 40.0;  // transmit from the spawn point
    spec.mdata_bytes = 1.0e15;            // never drains: steady-state stepping
    spec.rho_per_m = 0.0;
    eng.add_mission(spec);
  }
  eng.run_until(1.0);  // past the spawn + first-exchange transient
  for (auto _ : state) {
    eng.step();
    benchmark::DoNotOptimize(eng.now());
  }
}
BENCHMARK(BM_FleetStep1k);

void BM_AirnetStep1k(benchmark::State& state) {
  const airnet::NetworkConfig cfg;
  airnet::AerialNetwork net(cfg, 42);
  for (int i = 0; i < 500; ++i) {
    uav::UavConfig tx, rx;
    tx.id = "tx" + std::to_string(i);
    rx.id = "rx" + std::to_string(i);
    tx.start_pos = {40.0, 4.0 * i, 10.0};
    rx.start_pos = {0.0, 4.0 * i, 10.0};
    const airnet::NodeId a = net.add_node(tx);
    const airnet::NodeId b = net.add_node(rx);
    net.node(a).goto_and_hold(tx.start_pos);
    net.node(b).goto_and_hold(rx.start_pos);
    net.start_transfer(a, b, net::DataBatch{1000000, 1.0e6});  // 1 TB: never drains
  }
  net.run_until(1.0);
  double t = 1.0;
  for (auto _ : state) {
    t += cfg.kinematics_dt_s;
    net.run_until(t);
    benchmark::DoNotOptimize(net.now());
  }
}
BENCHMARK(BM_AirnetStep1k);

}  // namespace

BENCHMARK_MAIN();
