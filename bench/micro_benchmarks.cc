// Google-benchmark micro-benchmarks for the hot paths: the utility
// optimizer (runs on every rendezvous decision), the PER math (runs per
// simulated A-MPDU), the event queue, geodesy, and a full link-sim
// second.
#include <benchmark/benchmark.h>

#include "core/optimizer.h"
#include "core/scenario.h"
#include "core/strategy.h"
#include "geo/geodesy.h"
#include "mac/link.h"
#include "sim/simulator.h"

namespace {

using namespace skyferry;

void BM_OptimizeUtility(benchmark::State& state) {
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  const core::CommDelayModel delay(model, scen.delivery_params());
  const core::UtilityFunction u(delay, failure);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize(u));
  }
}
BENCHMARK(BM_OptimizeUtility);

void BM_OptimizeBruteForce(benchmark::State& state) {
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  const core::CommDelayModel delay(model, scen.delivery_params());
  const core::UtilityFunction u(delay, failure);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize_brute_force(u, 20000));
  }
}
BENCHMARK(BM_OptimizeBruteForce);

void BM_PacketErrorRate(benchmark::State& state) {
  const phy::ErrorModel em({}, 0.9);
  double snr = 0.0;
  for (auto _ : state) {
    snr = (snr < 30.0) ? snr + 0.1 : 0.0;
    benchmark::DoNotOptimize(
        em.packet_error_rate(phy::mcs(static_cast<int>(snr) % 16), snr, 12288));
  }
}
BENCHMARK(BM_PacketErrorRate);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 10007), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_EventQueue);

void BM_Haversine(benchmark::State& state) {
  const geo::GeoPoint a{47.3769, 8.5417, 400.0};
  geo::GeoPoint b = a;
  double delta = 0.0;
  for (auto _ : state) {
    delta += 1e-6;
    b.lat_deg = a.lat_deg + delta;
    benchmark::DoNotOptimize(geo::haversine_m(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_LinkSimOneSecond(benchmark::State& state) {
  for (auto _ : state) {
    mac::LinkConfig cfg;
    cfg.channel = phy::ChannelConfig::quadrocopter();
    mac::FixedMcs rc(1);
    mac::LinkSimulator sim(cfg, rc, 42);
    benchmark::DoNotOptimize(sim.run_saturated(1.0, mac::static_geometry(40.0)));
  }
}
BENCHMARK(BM_LinkSimOneSecond);

void BM_StrategyTransferCurve(benchmark::State& state) {
  const auto model = core::PaperLogThroughput::quadrocopter();
  const core::SpeedDegradation deg{};
  const core::DeliveryParams params{80.0, 4.5, 20e6, 20.0};
  core::StrategySpec spec;
  spec.kind = core::StrategyKind::kShipThenTransmit;
  spec.target_distance_m = 60.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simulate_strategy(spec, model, deg, params));
  }
}
BENCHMARK(BM_StrategyTransferCurve);

}  // namespace

BENCHMARK_MAIN();
