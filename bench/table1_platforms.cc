// Table 1 — "Main features of our flying platforms": regenerated from
// the uav::PlatformSpec presets the whole simulator runs on.
#include <cstdio>

#include "io/table.h"
#include "exp/cli.h"
#include "uav/failure.h"
#include "uav/platform.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("table1_platforms");
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  const auto air = uav::PlatformSpec::swinglet();
  const auto quad = uav::PlatformSpec::arducopter();

  io::Table t("Table 1: Main features of our flying platforms");
  t.columns({"Feature", "Airplane", "Quadrocopter"});
  t.add_row({"Hovering", air.can_hover ? "Yes" : "No", quad.can_hover ? "Yes" : "No"});
  t.add_row({"Size", "Wingspan: 80 cm", "Frame: 64 cm by 64 cm"});
  t.add_row({"Weight", "500 g", "1.7 kg"});
  t.add_row({"Battery autonomy", "30 minutes", "20 minutes"});
  t.add_row({"Cruise speed", "10 m/s", "4.5 m/s in auto mode"});
  t.add_row({"Maximum safe altitude", "300 m", "100 m"});
  t.print();

  io::Table d("Derived quantities used by the model");
  d.columns({"Quantity", "Airplane", "Quadrocopter"});
  d.add_row({"Battery range [m]", io::format_number(air.range_m()),
             io::format_number(quad.range_m())});
  d.add_row({"1/range [1/m]", io::format_number(1.0 / air.range_m()),
             io::format_number(1.0 / quad.range_m())});
  d.add_row({"Paper baseline rho [1/m]",
             io::format_number(uav::FailureModel::paper_airplane().rho()),
             io::format_number(uav::FailureModel::paper_quadrocopter().rho())});
  d.add_row({"Min loiter radius [m]", io::format_number(air.min_turn_radius_m),
             io::format_number(quad.min_turn_radius_m)});
  d.print();
  std::printf(
      "note: the paper quotes rho as the inverse battery range but its values\n"
      "differ from Table 1's 1/range by ~2x; we ship both (DESIGN.md §1).\n");
  return 0;
}
