// Table 1 — "Main features of our flying platforms": regenerated from
// the uav::PlatformSpec presets the whole simulator runs on.
#include <cstdio>

#include "bench_util.h"
#include "io/table.h"
#include "exp/cli.h"
#include "uav/failure.h"
#include "uav/platform.h"

int main(int argc, char** argv) {
  skyferry::exp::Cli cli("table1_platforms");
  skyferry::bench::Report report(cli);
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();
  using namespace skyferry;
  const auto air = uav::PlatformSpec::swinglet();
  const auto quad = uav::PlatformSpec::arducopter();

  io::Table t("Table 1: Main features of our flying platforms");
  t.columns({"Feature", "Airplane", "Quadrocopter"});
  t.add_row({"Hovering", air.can_hover ? "Yes" : "No", quad.can_hover ? "Yes" : "No"});
  t.add_row({"Size", "Wingspan: 80 cm", "Frame: 64 cm by 64 cm"});
  t.add_row({"Weight", "500 g", "1.7 kg"});
  t.add_row({"Battery autonomy", "30 minutes", "20 minutes"});
  t.add_row({"Cruise speed", "10 m/s", "4.5 m/s in auto mode"});
  t.add_row({"Maximum safe altitude", "300 m", "100 m"});
  t.print();

  io::Table d("Derived quantities used by the model");
  d.columns({"Quantity", "Airplane", "Quadrocopter"});
  d.add_row({"Battery range [m]", io::format_number(air.range_m()),
             io::format_number(quad.range_m())});
  d.add_row({"1/range [1/m]", io::format_number(1.0 / air.range_m()),
             io::format_number(1.0 / quad.range_m())});
  d.add_row({"Paper baseline rho [1/m]",
             io::format_number(uav::FailureModel::paper_airplane().rho()),
             io::format_number(uav::FailureModel::paper_quadrocopter().rho())});
  d.add_row({"Min loiter radius [m]", io::format_number(air.min_turn_radius_m),
             io::format_number(quad.min_turn_radius_m)});
  d.print();
  std::printf(
      "note: the paper quotes rho as the inverse battery range but its values\n"
      "differ from Table 1's 1/range by ~2x; we ship both (DESIGN.md §1).\n");

  // Machine-checked claims: Table 1 is pure platform constants, so every
  // value is pinned exactly.
  report.claim("airplane_cannot_hover", !air.can_hover);
  report.claim("quad_can_hover", quad.can_hover);
  report.metric("airplane_range_m", air.range_m(), check::Tolerance::exact(),
                "18 km battery range (30 min at 10 m/s)");
  report.metric("quad_range_m", quad.range_m(), check::Tolerance::exact(),
                "5.4 km battery range (20 min at 4.5 m/s)");
  report.metric("airplane_cruise_mps", air.cruise_speed_mps, check::Tolerance::exact());
  report.metric("quad_cruise_mps", quad.cruise_speed_mps, check::Tolerance::exact());
  report.metric("airplane_ceiling_m", air.max_safe_altitude_m, check::Tolerance::exact());
  report.metric("quad_ceiling_m", quad.max_safe_altitude_m, check::Tolerance::exact());
  report.metric("paper_rho_airplane", uav::FailureModel::paper_airplane().rho(),
                check::Tolerance::exact(), "paper-quoted 1.11e-4, not 1/range");
  report.metric("paper_rho_quad", uav::FailureModel::paper_quadrocopter().rho(),
                check::Tolerance::exact(), "paper-quoted 2.46e-4, not 1/range");
  return report.emit() ? 0 : 1;
}
