file(REMOVE_RECURSE
  "CMakeFiles/ablation_dubins_shipping.dir/ablation_dubins_shipping.cc.o"
  "CMakeFiles/ablation_dubins_shipping.dir/ablation_dubins_shipping.cc.o.d"
  "ablation_dubins_shipping"
  "ablation_dubins_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dubins_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
