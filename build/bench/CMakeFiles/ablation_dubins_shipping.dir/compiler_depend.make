# Empty compiler generated dependencies file for ablation_dubins_shipping.
# This may be replaced when dependencies are built.
