file(REMOVE_RECURSE
  "CMakeFiles/ablation_failure_models.dir/ablation_failure_models.cc.o"
  "CMakeFiles/ablation_failure_models.dir/ablation_failure_models.cc.o.d"
  "ablation_failure_models"
  "ablation_failure_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failure_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
