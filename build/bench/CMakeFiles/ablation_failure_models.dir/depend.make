# Empty dependencies file for ablation_failure_models.
# This may be replaced when dependencies are built.
