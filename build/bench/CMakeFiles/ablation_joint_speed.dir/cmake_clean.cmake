file(REMOVE_RECURSE
  "CMakeFiles/ablation_joint_speed.dir/ablation_joint_speed.cc.o"
  "CMakeFiles/ablation_joint_speed.dir/ablation_joint_speed.cc.o.d"
  "ablation_joint_speed"
  "ablation_joint_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_joint_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
