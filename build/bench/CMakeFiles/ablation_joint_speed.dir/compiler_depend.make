# Empty compiler generated dependencies file for ablation_joint_speed.
# This may be replaced when dependencies are built.
