file(REMOVE_RECURSE
  "CMakeFiles/ablation_mixed_strategy.dir/ablation_mixed_strategy.cc.o"
  "CMakeFiles/ablation_mixed_strategy.dir/ablation_mixed_strategy.cc.o.d"
  "ablation_mixed_strategy"
  "ablation_mixed_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mixed_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
