# Empty dependencies file for fig1_strategy_curves.
# This may be replaced when dependencies are built.
