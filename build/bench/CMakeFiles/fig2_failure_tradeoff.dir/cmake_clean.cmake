file(REMOVE_RECURSE
  "CMakeFiles/fig2_failure_tradeoff.dir/fig2_failure_tradeoff.cc.o"
  "CMakeFiles/fig2_failure_tradeoff.dir/fig2_failure_tradeoff.cc.o.d"
  "fig2_failure_tradeoff"
  "fig2_failure_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_failure_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
