# Empty compiler generated dependencies file for fig2_failure_tradeoff.
# This may be replaced when dependencies are built.
