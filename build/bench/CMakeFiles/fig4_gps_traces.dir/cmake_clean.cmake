file(REMOVE_RECURSE
  "CMakeFiles/fig4_gps_traces.dir/fig4_gps_traces.cc.o"
  "CMakeFiles/fig4_gps_traces.dir/fig4_gps_traces.cc.o.d"
  "fig4_gps_traces"
  "fig4_gps_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_gps_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
