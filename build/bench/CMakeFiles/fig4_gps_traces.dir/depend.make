# Empty dependencies file for fig4_gps_traces.
# This may be replaced when dependencies are built.
