file(REMOVE_RECURSE
  "CMakeFiles/fig5_airplane_throughput.dir/fig5_airplane_throughput.cc.o"
  "CMakeFiles/fig5_airplane_throughput.dir/fig5_airplane_throughput.cc.o.d"
  "fig5_airplane_throughput"
  "fig5_airplane_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_airplane_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
