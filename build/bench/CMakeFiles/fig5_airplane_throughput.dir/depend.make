# Empty dependencies file for fig5_airplane_throughput.
# This may be replaced when dependencies are built.
