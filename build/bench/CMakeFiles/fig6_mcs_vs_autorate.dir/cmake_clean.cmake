file(REMOVE_RECURSE
  "CMakeFiles/fig6_mcs_vs_autorate.dir/fig6_mcs_vs_autorate.cc.o"
  "CMakeFiles/fig6_mcs_vs_autorate.dir/fig6_mcs_vs_autorate.cc.o.d"
  "fig6_mcs_vs_autorate"
  "fig6_mcs_vs_autorate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mcs_vs_autorate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
