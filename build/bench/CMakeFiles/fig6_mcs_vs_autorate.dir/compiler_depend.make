# Empty compiler generated dependencies file for fig6_mcs_vs_autorate.
# This may be replaced when dependencies are built.
