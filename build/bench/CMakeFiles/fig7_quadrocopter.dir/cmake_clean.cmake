file(REMOVE_RECURSE
  "CMakeFiles/fig7_quadrocopter.dir/fig7_quadrocopter.cc.o"
  "CMakeFiles/fig7_quadrocopter.dir/fig7_quadrocopter.cc.o.d"
  "fig7_quadrocopter"
  "fig7_quadrocopter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_quadrocopter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
