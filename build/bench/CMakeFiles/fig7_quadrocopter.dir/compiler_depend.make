# Empty compiler generated dependencies file for fig7_quadrocopter.
# This may be replaced when dependencies are built.
