file(REMOVE_RECURSE
  "CMakeFiles/fig8_utility_curves.dir/fig8_utility_curves.cc.o"
  "CMakeFiles/fig8_utility_curves.dir/fig8_utility_curves.cc.o.d"
  "fig8_utility_curves"
  "fig8_utility_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_utility_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
