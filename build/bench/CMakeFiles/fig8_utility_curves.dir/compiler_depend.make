# Empty compiler generated dependencies file for fig8_utility_curves.
# This may be replaced when dependencies are built.
