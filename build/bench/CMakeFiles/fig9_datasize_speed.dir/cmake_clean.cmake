file(REMOVE_RECURSE
  "CMakeFiles/fig9_datasize_speed.dir/fig9_datasize_speed.cc.o"
  "CMakeFiles/fig9_datasize_speed.dir/fig9_datasize_speed.cc.o.d"
  "fig9_datasize_speed"
  "fig9_datasize_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_datasize_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
