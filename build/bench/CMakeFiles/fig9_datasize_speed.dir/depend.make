# Empty dependencies file for fig9_datasize_speed.
# This may be replaced when dependencies are built.
