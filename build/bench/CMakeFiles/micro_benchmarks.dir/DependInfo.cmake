
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_benchmarks.cc" "bench/CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cc.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_benchmarks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/skyferry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/skyferry_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/skyferry_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skyferry_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/skyferry_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/skyferry_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skyferry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/skyferry_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/skyferry_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/skyferry_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
