file(REMOVE_RECURSE
  "CMakeFiles/ferry_relay.dir/ferry_relay.cpp.o"
  "CMakeFiles/ferry_relay.dir/ferry_relay.cpp.o.d"
  "ferry_relay"
  "ferry_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ferry_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
