# Empty dependencies file for ferry_relay.
# This may be replaced when dependencies are built.
