file(REMOVE_RECURSE
  "CMakeFiles/swarm_mission.dir/swarm_mission.cpp.o"
  "CMakeFiles/swarm_mission.dir/swarm_mission.cpp.o.d"
  "swarm_mission"
  "swarm_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
