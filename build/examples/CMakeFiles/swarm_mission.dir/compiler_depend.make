# Empty compiler generated dependencies file for swarm_mission.
# This may be replaced when dependencies are built.
