file(REMOVE_RECURSE
  "CMakeFiles/skyferry_airnet.dir/network.cc.o"
  "CMakeFiles/skyferry_airnet.dir/network.cc.o.d"
  "libskyferry_airnet.a"
  "libskyferry_airnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_airnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
