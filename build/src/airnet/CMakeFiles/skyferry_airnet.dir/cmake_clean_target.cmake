file(REMOVE_RECURSE
  "libskyferry_airnet.a"
)
