# Empty dependencies file for skyferry_airnet.
# This may be replaced when dependencies are built.
