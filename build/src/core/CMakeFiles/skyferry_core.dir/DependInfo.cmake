
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/delay.cc" "src/core/CMakeFiles/skyferry_core.dir/delay.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/delay.cc.o.d"
  "/root/repo/src/core/joint_optimizer.cc" "src/core/CMakeFiles/skyferry_core.dir/joint_optimizer.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/joint_optimizer.cc.o.d"
  "/root/repo/src/core/mission.cc" "src/core/CMakeFiles/skyferry_core.dir/mission.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/mission.cc.o.d"
  "/root/repo/src/core/nonstationary.cc" "src/core/CMakeFiles/skyferry_core.dir/nonstationary.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/nonstationary.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/skyferry_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/skyferry_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/planner.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/skyferry_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/sensitivity.cc" "src/core/CMakeFiles/skyferry_core.dir/sensitivity.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/sensitivity.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/core/CMakeFiles/skyferry_core.dir/strategy.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/strategy.cc.o.d"
  "/root/repo/src/core/throughput_io.cc" "src/core/CMakeFiles/skyferry_core.dir/throughput_io.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/throughput_io.cc.o.d"
  "/root/repo/src/core/throughput_model.cc" "src/core/CMakeFiles/skyferry_core.dir/throughput_model.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/throughput_model.cc.o.d"
  "/root/repo/src/core/utility.cc" "src/core/CMakeFiles/skyferry_core.dir/utility.cc.o" "gcc" "src/core/CMakeFiles/skyferry_core.dir/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uav/CMakeFiles/skyferry_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/skyferry_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/skyferry_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/skyferry_io.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/skyferry_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skyferry_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skyferry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
