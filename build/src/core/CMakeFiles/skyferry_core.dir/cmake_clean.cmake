file(REMOVE_RECURSE
  "CMakeFiles/skyferry_core.dir/delay.cc.o"
  "CMakeFiles/skyferry_core.dir/delay.cc.o.d"
  "CMakeFiles/skyferry_core.dir/joint_optimizer.cc.o"
  "CMakeFiles/skyferry_core.dir/joint_optimizer.cc.o.d"
  "CMakeFiles/skyferry_core.dir/mission.cc.o"
  "CMakeFiles/skyferry_core.dir/mission.cc.o.d"
  "CMakeFiles/skyferry_core.dir/nonstationary.cc.o"
  "CMakeFiles/skyferry_core.dir/nonstationary.cc.o.d"
  "CMakeFiles/skyferry_core.dir/optimizer.cc.o"
  "CMakeFiles/skyferry_core.dir/optimizer.cc.o.d"
  "CMakeFiles/skyferry_core.dir/planner.cc.o"
  "CMakeFiles/skyferry_core.dir/planner.cc.o.d"
  "CMakeFiles/skyferry_core.dir/scenario.cc.o"
  "CMakeFiles/skyferry_core.dir/scenario.cc.o.d"
  "CMakeFiles/skyferry_core.dir/sensitivity.cc.o"
  "CMakeFiles/skyferry_core.dir/sensitivity.cc.o.d"
  "CMakeFiles/skyferry_core.dir/strategy.cc.o"
  "CMakeFiles/skyferry_core.dir/strategy.cc.o.d"
  "CMakeFiles/skyferry_core.dir/throughput_io.cc.o"
  "CMakeFiles/skyferry_core.dir/throughput_io.cc.o.d"
  "CMakeFiles/skyferry_core.dir/throughput_model.cc.o"
  "CMakeFiles/skyferry_core.dir/throughput_model.cc.o.d"
  "CMakeFiles/skyferry_core.dir/utility.cc.o"
  "CMakeFiles/skyferry_core.dir/utility.cc.o.d"
  "libskyferry_core.a"
  "libskyferry_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
