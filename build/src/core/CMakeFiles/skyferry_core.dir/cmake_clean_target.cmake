file(REMOVE_RECURSE
  "libskyferry_core.a"
)
