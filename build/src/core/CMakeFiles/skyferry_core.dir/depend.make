# Empty dependencies file for skyferry_core.
# This may be replaced when dependencies are built.
