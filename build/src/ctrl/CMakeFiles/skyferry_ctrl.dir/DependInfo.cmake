
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/control_channel.cc" "src/ctrl/CMakeFiles/skyferry_ctrl.dir/control_channel.cc.o" "gcc" "src/ctrl/CMakeFiles/skyferry_ctrl.dir/control_channel.cc.o.d"
  "/root/repo/src/ctrl/estimator.cc" "src/ctrl/CMakeFiles/skyferry_ctrl.dir/estimator.cc.o" "gcc" "src/ctrl/CMakeFiles/skyferry_ctrl.dir/estimator.cc.o.d"
  "/root/repo/src/ctrl/imaging.cc" "src/ctrl/CMakeFiles/skyferry_ctrl.dir/imaging.cc.o" "gcc" "src/ctrl/CMakeFiles/skyferry_ctrl.dir/imaging.cc.o.d"
  "/root/repo/src/ctrl/sector.cc" "src/ctrl/CMakeFiles/skyferry_ctrl.dir/sector.cc.o" "gcc" "src/ctrl/CMakeFiles/skyferry_ctrl.dir/sector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyferry_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skyferry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skyferry_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
