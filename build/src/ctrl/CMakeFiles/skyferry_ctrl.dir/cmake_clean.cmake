file(REMOVE_RECURSE
  "CMakeFiles/skyferry_ctrl.dir/control_channel.cc.o"
  "CMakeFiles/skyferry_ctrl.dir/control_channel.cc.o.d"
  "CMakeFiles/skyferry_ctrl.dir/estimator.cc.o"
  "CMakeFiles/skyferry_ctrl.dir/estimator.cc.o.d"
  "CMakeFiles/skyferry_ctrl.dir/imaging.cc.o"
  "CMakeFiles/skyferry_ctrl.dir/imaging.cc.o.d"
  "CMakeFiles/skyferry_ctrl.dir/sector.cc.o"
  "CMakeFiles/skyferry_ctrl.dir/sector.cc.o.d"
  "libskyferry_ctrl.a"
  "libskyferry_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
