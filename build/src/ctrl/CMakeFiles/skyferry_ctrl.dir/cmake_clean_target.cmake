file(REMOVE_RECURSE
  "libskyferry_ctrl.a"
)
