# Empty dependencies file for skyferry_ctrl.
# This may be replaced when dependencies are built.
