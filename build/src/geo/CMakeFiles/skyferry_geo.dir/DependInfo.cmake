
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/dubins.cc" "src/geo/CMakeFiles/skyferry_geo.dir/dubins.cc.o" "gcc" "src/geo/CMakeFiles/skyferry_geo.dir/dubins.cc.o.d"
  "/root/repo/src/geo/geodesy.cc" "src/geo/CMakeFiles/skyferry_geo.dir/geodesy.cc.o" "gcc" "src/geo/CMakeFiles/skyferry_geo.dir/geodesy.cc.o.d"
  "/root/repo/src/geo/gps.cc" "src/geo/CMakeFiles/skyferry_geo.dir/gps.cc.o" "gcc" "src/geo/CMakeFiles/skyferry_geo.dir/gps.cc.o.d"
  "/root/repo/src/geo/trajectory.cc" "src/geo/CMakeFiles/skyferry_geo.dir/trajectory.cc.o" "gcc" "src/geo/CMakeFiles/skyferry_geo.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
