file(REMOVE_RECURSE
  "CMakeFiles/skyferry_geo.dir/dubins.cc.o"
  "CMakeFiles/skyferry_geo.dir/dubins.cc.o.d"
  "CMakeFiles/skyferry_geo.dir/geodesy.cc.o"
  "CMakeFiles/skyferry_geo.dir/geodesy.cc.o.d"
  "CMakeFiles/skyferry_geo.dir/gps.cc.o"
  "CMakeFiles/skyferry_geo.dir/gps.cc.o.d"
  "CMakeFiles/skyferry_geo.dir/trajectory.cc.o"
  "CMakeFiles/skyferry_geo.dir/trajectory.cc.o.d"
  "libskyferry_geo.a"
  "libskyferry_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
