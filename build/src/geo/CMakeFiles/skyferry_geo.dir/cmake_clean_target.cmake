file(REMOVE_RECURSE
  "libskyferry_geo.a"
)
