# Empty dependencies file for skyferry_geo.
# This may be replaced when dependencies are built.
