
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/ascii_chart.cc" "src/io/CMakeFiles/skyferry_io.dir/ascii_chart.cc.o" "gcc" "src/io/CMakeFiles/skyferry_io.dir/ascii_chart.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/skyferry_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/skyferry_io.dir/csv.cc.o.d"
  "/root/repo/src/io/csv_reader.cc" "src/io/CMakeFiles/skyferry_io.dir/csv_reader.cc.o" "gcc" "src/io/CMakeFiles/skyferry_io.dir/csv_reader.cc.o.d"
  "/root/repo/src/io/gnuplot.cc" "src/io/CMakeFiles/skyferry_io.dir/gnuplot.cc.o" "gcc" "src/io/CMakeFiles/skyferry_io.dir/gnuplot.cc.o.d"
  "/root/repo/src/io/table.cc" "src/io/CMakeFiles/skyferry_io.dir/table.cc.o" "gcc" "src/io/CMakeFiles/skyferry_io.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
