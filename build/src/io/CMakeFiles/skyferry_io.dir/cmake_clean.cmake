file(REMOVE_RECURSE
  "CMakeFiles/skyferry_io.dir/ascii_chart.cc.o"
  "CMakeFiles/skyferry_io.dir/ascii_chart.cc.o.d"
  "CMakeFiles/skyferry_io.dir/csv.cc.o"
  "CMakeFiles/skyferry_io.dir/csv.cc.o.d"
  "CMakeFiles/skyferry_io.dir/csv_reader.cc.o"
  "CMakeFiles/skyferry_io.dir/csv_reader.cc.o.d"
  "CMakeFiles/skyferry_io.dir/gnuplot.cc.o"
  "CMakeFiles/skyferry_io.dir/gnuplot.cc.o.d"
  "CMakeFiles/skyferry_io.dir/table.cc.o"
  "CMakeFiles/skyferry_io.dir/table.cc.o.d"
  "libskyferry_io.a"
  "libskyferry_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
