file(REMOVE_RECURSE
  "libskyferry_io.a"
)
