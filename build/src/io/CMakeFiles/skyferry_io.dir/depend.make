# Empty dependencies file for skyferry_io.
# This may be replaced when dependencies are built.
