
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/ampdu.cc" "src/mac/CMakeFiles/skyferry_mac.dir/ampdu.cc.o" "gcc" "src/mac/CMakeFiles/skyferry_mac.dir/ampdu.cc.o.d"
  "/root/repo/src/mac/contention.cc" "src/mac/CMakeFiles/skyferry_mac.dir/contention.cc.o" "gcc" "src/mac/CMakeFiles/skyferry_mac.dir/contention.cc.o.d"
  "/root/repo/src/mac/link.cc" "src/mac/CMakeFiles/skyferry_mac.dir/link.cc.o" "gcc" "src/mac/CMakeFiles/skyferry_mac.dir/link.cc.o.d"
  "/root/repo/src/mac/rate_control.cc" "src/mac/CMakeFiles/skyferry_mac.dir/rate_control.cc.o" "gcc" "src/mac/CMakeFiles/skyferry_mac.dir/rate_control.cc.o.d"
  "/root/repo/src/mac/timing.cc" "src/mac/CMakeFiles/skyferry_mac.dir/timing.cc.o" "gcc" "src/mac/CMakeFiles/skyferry_mac.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/skyferry_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skyferry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
