file(REMOVE_RECURSE
  "CMakeFiles/skyferry_mac.dir/ampdu.cc.o"
  "CMakeFiles/skyferry_mac.dir/ampdu.cc.o.d"
  "CMakeFiles/skyferry_mac.dir/contention.cc.o"
  "CMakeFiles/skyferry_mac.dir/contention.cc.o.d"
  "CMakeFiles/skyferry_mac.dir/link.cc.o"
  "CMakeFiles/skyferry_mac.dir/link.cc.o.d"
  "CMakeFiles/skyferry_mac.dir/rate_control.cc.o"
  "CMakeFiles/skyferry_mac.dir/rate_control.cc.o.d"
  "CMakeFiles/skyferry_mac.dir/timing.cc.o"
  "CMakeFiles/skyferry_mac.dir/timing.cc.o.d"
  "libskyferry_mac.a"
  "libskyferry_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
