file(REMOVE_RECURSE
  "libskyferry_mac.a"
)
