# Empty compiler generated dependencies file for skyferry_mac.
# This may be replaced when dependencies are built.
