
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arq.cc" "src/net/CMakeFiles/skyferry_net.dir/arq.cc.o" "gcc" "src/net/CMakeFiles/skyferry_net.dir/arq.cc.o.d"
  "/root/repo/src/net/flow.cc" "src/net/CMakeFiles/skyferry_net.dir/flow.cc.o" "gcc" "src/net/CMakeFiles/skyferry_net.dir/flow.cc.o.d"
  "/root/repo/src/net/meter.cc" "src/net/CMakeFiles/skyferry_net.dir/meter.cc.o" "gcc" "src/net/CMakeFiles/skyferry_net.dir/meter.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/skyferry_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/skyferry_net.dir/packet.cc.o.d"
  "/root/repo/src/net/queue.cc" "src/net/CMakeFiles/skyferry_net.dir/queue.cc.o" "gcc" "src/net/CMakeFiles/skyferry_net.dir/queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/skyferry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
