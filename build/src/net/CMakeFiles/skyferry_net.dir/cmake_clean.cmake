file(REMOVE_RECURSE
  "CMakeFiles/skyferry_net.dir/arq.cc.o"
  "CMakeFiles/skyferry_net.dir/arq.cc.o.d"
  "CMakeFiles/skyferry_net.dir/flow.cc.o"
  "CMakeFiles/skyferry_net.dir/flow.cc.o.d"
  "CMakeFiles/skyferry_net.dir/meter.cc.o"
  "CMakeFiles/skyferry_net.dir/meter.cc.o.d"
  "CMakeFiles/skyferry_net.dir/packet.cc.o"
  "CMakeFiles/skyferry_net.dir/packet.cc.o.d"
  "CMakeFiles/skyferry_net.dir/queue.cc.o"
  "CMakeFiles/skyferry_net.dir/queue.cc.o.d"
  "libskyferry_net.a"
  "libskyferry_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
