file(REMOVE_RECURSE
  "libskyferry_net.a"
)
