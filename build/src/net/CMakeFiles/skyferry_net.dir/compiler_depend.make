# Empty compiler generated dependencies file for skyferry_net.
# This may be replaced when dependencies are built.
