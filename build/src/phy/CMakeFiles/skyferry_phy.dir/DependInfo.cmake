
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/antenna.cc" "src/phy/CMakeFiles/skyferry_phy.dir/antenna.cc.o" "gcc" "src/phy/CMakeFiles/skyferry_phy.dir/antenna.cc.o.d"
  "/root/repo/src/phy/channel.cc" "src/phy/CMakeFiles/skyferry_phy.dir/channel.cc.o" "gcc" "src/phy/CMakeFiles/skyferry_phy.dir/channel.cc.o.d"
  "/root/repo/src/phy/fading.cc" "src/phy/CMakeFiles/skyferry_phy.dir/fading.cc.o" "gcc" "src/phy/CMakeFiles/skyferry_phy.dir/fading.cc.o.d"
  "/root/repo/src/phy/mcs.cc" "src/phy/CMakeFiles/skyferry_phy.dir/mcs.cc.o" "gcc" "src/phy/CMakeFiles/skyferry_phy.dir/mcs.cc.o.d"
  "/root/repo/src/phy/pathloss.cc" "src/phy/CMakeFiles/skyferry_phy.dir/pathloss.cc.o" "gcc" "src/phy/CMakeFiles/skyferry_phy.dir/pathloss.cc.o.d"
  "/root/repo/src/phy/per.cc" "src/phy/CMakeFiles/skyferry_phy.dir/per.cc.o" "gcc" "src/phy/CMakeFiles/skyferry_phy.dir/per.cc.o.d"
  "/root/repo/src/phy/tworay.cc" "src/phy/CMakeFiles/skyferry_phy.dir/tworay.cc.o" "gcc" "src/phy/CMakeFiles/skyferry_phy.dir/tworay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/skyferry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
