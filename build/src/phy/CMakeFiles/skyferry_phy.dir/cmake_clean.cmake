file(REMOVE_RECURSE
  "CMakeFiles/skyferry_phy.dir/antenna.cc.o"
  "CMakeFiles/skyferry_phy.dir/antenna.cc.o.d"
  "CMakeFiles/skyferry_phy.dir/channel.cc.o"
  "CMakeFiles/skyferry_phy.dir/channel.cc.o.d"
  "CMakeFiles/skyferry_phy.dir/fading.cc.o"
  "CMakeFiles/skyferry_phy.dir/fading.cc.o.d"
  "CMakeFiles/skyferry_phy.dir/mcs.cc.o"
  "CMakeFiles/skyferry_phy.dir/mcs.cc.o.d"
  "CMakeFiles/skyferry_phy.dir/pathloss.cc.o"
  "CMakeFiles/skyferry_phy.dir/pathloss.cc.o.d"
  "CMakeFiles/skyferry_phy.dir/per.cc.o"
  "CMakeFiles/skyferry_phy.dir/per.cc.o.d"
  "CMakeFiles/skyferry_phy.dir/tworay.cc.o"
  "CMakeFiles/skyferry_phy.dir/tworay.cc.o.d"
  "libskyferry_phy.a"
  "libskyferry_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
