file(REMOVE_RECURSE
  "libskyferry_phy.a"
)
