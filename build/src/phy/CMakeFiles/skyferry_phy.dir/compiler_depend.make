# Empty compiler generated dependencies file for skyferry_phy.
# This may be replaced when dependencies are built.
