file(REMOVE_RECURSE
  "CMakeFiles/skyferry_sim.dir/rng.cc.o"
  "CMakeFiles/skyferry_sim.dir/rng.cc.o.d"
  "CMakeFiles/skyferry_sim.dir/simulator.cc.o"
  "CMakeFiles/skyferry_sim.dir/simulator.cc.o.d"
  "libskyferry_sim.a"
  "libskyferry_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
