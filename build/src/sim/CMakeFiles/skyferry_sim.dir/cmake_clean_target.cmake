file(REMOVE_RECURSE
  "libskyferry_sim.a"
)
