# Empty compiler generated dependencies file for skyferry_sim.
# This may be replaced when dependencies are built.
