file(REMOVE_RECURSE
  "CMakeFiles/skyferry_stats.dir/descriptive.cc.o"
  "CMakeFiles/skyferry_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/skyferry_stats.dir/ecdf.cc.o"
  "CMakeFiles/skyferry_stats.dir/ecdf.cc.o.d"
  "CMakeFiles/skyferry_stats.dir/histogram.cc.o"
  "CMakeFiles/skyferry_stats.dir/histogram.cc.o.d"
  "CMakeFiles/skyferry_stats.dir/quantile.cc.o"
  "CMakeFiles/skyferry_stats.dir/quantile.cc.o.d"
  "CMakeFiles/skyferry_stats.dir/regression.cc.o"
  "CMakeFiles/skyferry_stats.dir/regression.cc.o.d"
  "libskyferry_stats.a"
  "libskyferry_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
