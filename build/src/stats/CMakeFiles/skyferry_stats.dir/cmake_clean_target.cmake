file(REMOVE_RECURSE
  "libskyferry_stats.a"
)
