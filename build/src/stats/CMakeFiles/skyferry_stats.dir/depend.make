# Empty dependencies file for skyferry_stats.
# This may be replaced when dependencies are built.
