
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uav/autopilot.cc" "src/uav/CMakeFiles/skyferry_uav.dir/autopilot.cc.o" "gcc" "src/uav/CMakeFiles/skyferry_uav.dir/autopilot.cc.o.d"
  "/root/repo/src/uav/battery.cc" "src/uav/CMakeFiles/skyferry_uav.dir/battery.cc.o" "gcc" "src/uav/CMakeFiles/skyferry_uav.dir/battery.cc.o.d"
  "/root/repo/src/uav/failure.cc" "src/uav/CMakeFiles/skyferry_uav.dir/failure.cc.o" "gcc" "src/uav/CMakeFiles/skyferry_uav.dir/failure.cc.o.d"
  "/root/repo/src/uav/kinematics.cc" "src/uav/CMakeFiles/skyferry_uav.dir/kinematics.cc.o" "gcc" "src/uav/CMakeFiles/skyferry_uav.dir/kinematics.cc.o.d"
  "/root/repo/src/uav/platform.cc" "src/uav/CMakeFiles/skyferry_uav.dir/platform.cc.o" "gcc" "src/uav/CMakeFiles/skyferry_uav.dir/platform.cc.o.d"
  "/root/repo/src/uav/uav.cc" "src/uav/CMakeFiles/skyferry_uav.dir/uav.cc.o" "gcc" "src/uav/CMakeFiles/skyferry_uav.dir/uav.cc.o.d"
  "/root/repo/src/uav/wind.cc" "src/uav/CMakeFiles/skyferry_uav.dir/wind.cc.o" "gcc" "src/uav/CMakeFiles/skyferry_uav.dir/wind.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyferry_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skyferry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
