file(REMOVE_RECURSE
  "CMakeFiles/skyferry_uav.dir/autopilot.cc.o"
  "CMakeFiles/skyferry_uav.dir/autopilot.cc.o.d"
  "CMakeFiles/skyferry_uav.dir/battery.cc.o"
  "CMakeFiles/skyferry_uav.dir/battery.cc.o.d"
  "CMakeFiles/skyferry_uav.dir/failure.cc.o"
  "CMakeFiles/skyferry_uav.dir/failure.cc.o.d"
  "CMakeFiles/skyferry_uav.dir/kinematics.cc.o"
  "CMakeFiles/skyferry_uav.dir/kinematics.cc.o.d"
  "CMakeFiles/skyferry_uav.dir/platform.cc.o"
  "CMakeFiles/skyferry_uav.dir/platform.cc.o.d"
  "CMakeFiles/skyferry_uav.dir/uav.cc.o"
  "CMakeFiles/skyferry_uav.dir/uav.cc.o.d"
  "CMakeFiles/skyferry_uav.dir/wind.cc.o"
  "CMakeFiles/skyferry_uav.dir/wind.cc.o.d"
  "libskyferry_uav.a"
  "libskyferry_uav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyferry_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
