file(REMOVE_RECURSE
  "libskyferry_uav.a"
)
