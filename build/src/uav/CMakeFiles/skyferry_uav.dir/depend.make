# Empty dependencies file for skyferry_uav.
# This may be replaced when dependencies are built.
