file(REMOVE_RECURSE
  "CMakeFiles/airnet_tests.dir/airnet/network_test.cc.o"
  "CMakeFiles/airnet_tests.dir/airnet/network_test.cc.o.d"
  "airnet_tests"
  "airnet_tests.pdb"
  "airnet_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airnet_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
