# Empty compiler generated dependencies file for airnet_tests.
# This may be replaced when dependencies are built.
