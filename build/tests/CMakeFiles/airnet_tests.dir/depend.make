# Empty dependencies file for airnet_tests.
# This may be replaced when dependencies are built.
