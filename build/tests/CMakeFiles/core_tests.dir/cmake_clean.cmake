file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/delay_test.cc.o"
  "CMakeFiles/core_tests.dir/core/delay_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/joint_optimizer_test.cc.o"
  "CMakeFiles/core_tests.dir/core/joint_optimizer_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/mission_test.cc.o"
  "CMakeFiles/core_tests.dir/core/mission_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/nonstationary_test.cc.o"
  "CMakeFiles/core_tests.dir/core/nonstationary_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/optimizer_test.cc.o"
  "CMakeFiles/core_tests.dir/core/optimizer_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/planner_test.cc.o"
  "CMakeFiles/core_tests.dir/core/planner_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/scenario_test.cc.o"
  "CMakeFiles/core_tests.dir/core/scenario_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/sensitivity_test.cc.o"
  "CMakeFiles/core_tests.dir/core/sensitivity_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/strategy_test.cc.o"
  "CMakeFiles/core_tests.dir/core/strategy_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/throughput_io_test.cc.o"
  "CMakeFiles/core_tests.dir/core/throughput_io_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/throughput_model_test.cc.o"
  "CMakeFiles/core_tests.dir/core/throughput_model_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/utility_test.cc.o"
  "CMakeFiles/core_tests.dir/core/utility_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
