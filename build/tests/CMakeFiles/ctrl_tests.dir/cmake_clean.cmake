file(REMOVE_RECURSE
  "CMakeFiles/ctrl_tests.dir/ctrl/control_channel_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/ctrl/control_channel_test.cc.o.d"
  "CMakeFiles/ctrl_tests.dir/ctrl/estimator_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/ctrl/estimator_test.cc.o.d"
  "CMakeFiles/ctrl_tests.dir/ctrl/imaging_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/ctrl/imaging_test.cc.o.d"
  "CMakeFiles/ctrl_tests.dir/ctrl/sector_test.cc.o"
  "CMakeFiles/ctrl_tests.dir/ctrl/sector_test.cc.o.d"
  "ctrl_tests"
  "ctrl_tests.pdb"
  "ctrl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
