file(REMOVE_RECURSE
  "CMakeFiles/geo_tests.dir/geo/dubins_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/dubins_test.cc.o.d"
  "CMakeFiles/geo_tests.dir/geo/geodesy_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/geodesy_test.cc.o.d"
  "CMakeFiles/geo_tests.dir/geo/gps_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/gps_test.cc.o.d"
  "CMakeFiles/geo_tests.dir/geo/trajectory_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/trajectory_test.cc.o.d"
  "CMakeFiles/geo_tests.dir/geo/vec3_test.cc.o"
  "CMakeFiles/geo_tests.dir/geo/vec3_test.cc.o.d"
  "geo_tests"
  "geo_tests.pdb"
  "geo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
