file(REMOVE_RECURSE
  "CMakeFiles/mac_tests.dir/mac/ampdu_test.cc.o"
  "CMakeFiles/mac_tests.dir/mac/ampdu_test.cc.o.d"
  "CMakeFiles/mac_tests.dir/mac/contention_test.cc.o"
  "CMakeFiles/mac_tests.dir/mac/contention_test.cc.o.d"
  "CMakeFiles/mac_tests.dir/mac/link_test.cc.o"
  "CMakeFiles/mac_tests.dir/mac/link_test.cc.o.d"
  "CMakeFiles/mac_tests.dir/mac/rate_control_test.cc.o"
  "CMakeFiles/mac_tests.dir/mac/rate_control_test.cc.o.d"
  "CMakeFiles/mac_tests.dir/mac/timing_test.cc.o"
  "CMakeFiles/mac_tests.dir/mac/timing_test.cc.o.d"
  "mac_tests"
  "mac_tests.pdb"
  "mac_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
