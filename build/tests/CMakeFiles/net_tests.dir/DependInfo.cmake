
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/arq_test.cc" "tests/CMakeFiles/net_tests.dir/net/arq_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/arq_test.cc.o.d"
  "/root/repo/tests/net/flow_test.cc" "tests/CMakeFiles/net_tests.dir/net/flow_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/flow_test.cc.o.d"
  "/root/repo/tests/net/meter_test.cc" "tests/CMakeFiles/net_tests.dir/net/meter_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/meter_test.cc.o.d"
  "/root/repo/tests/net/queue_test.cc" "tests/CMakeFiles/net_tests.dir/net/queue_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/queue_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/skyferry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/airnet/CMakeFiles/skyferry_airnet.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/skyferry_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/skyferry_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skyferry_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/skyferry_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/skyferry_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skyferry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/skyferry_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/skyferry_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/skyferry_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
