file(REMOVE_RECURSE
  "CMakeFiles/phy_tests.dir/phy/antenna_test.cc.o"
  "CMakeFiles/phy_tests.dir/phy/antenna_test.cc.o.d"
  "CMakeFiles/phy_tests.dir/phy/channel_test.cc.o"
  "CMakeFiles/phy_tests.dir/phy/channel_test.cc.o.d"
  "CMakeFiles/phy_tests.dir/phy/fading_test.cc.o"
  "CMakeFiles/phy_tests.dir/phy/fading_test.cc.o.d"
  "CMakeFiles/phy_tests.dir/phy/mcs_test.cc.o"
  "CMakeFiles/phy_tests.dir/phy/mcs_test.cc.o.d"
  "CMakeFiles/phy_tests.dir/phy/pathloss_test.cc.o"
  "CMakeFiles/phy_tests.dir/phy/pathloss_test.cc.o.d"
  "CMakeFiles/phy_tests.dir/phy/per_test.cc.o"
  "CMakeFiles/phy_tests.dir/phy/per_test.cc.o.d"
  "CMakeFiles/phy_tests.dir/phy/tworay_test.cc.o"
  "CMakeFiles/phy_tests.dir/phy/tworay_test.cc.o.d"
  "phy_tests"
  "phy_tests.pdb"
  "phy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
