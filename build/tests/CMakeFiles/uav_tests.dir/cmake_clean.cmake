file(REMOVE_RECURSE
  "CMakeFiles/uav_tests.dir/uav/autopilot_test.cc.o"
  "CMakeFiles/uav_tests.dir/uav/autopilot_test.cc.o.d"
  "CMakeFiles/uav_tests.dir/uav/battery_test.cc.o"
  "CMakeFiles/uav_tests.dir/uav/battery_test.cc.o.d"
  "CMakeFiles/uav_tests.dir/uav/failure_test.cc.o"
  "CMakeFiles/uav_tests.dir/uav/failure_test.cc.o.d"
  "CMakeFiles/uav_tests.dir/uav/kinematics_test.cc.o"
  "CMakeFiles/uav_tests.dir/uav/kinematics_test.cc.o.d"
  "CMakeFiles/uav_tests.dir/uav/platform_test.cc.o"
  "CMakeFiles/uav_tests.dir/uav/platform_test.cc.o.d"
  "CMakeFiles/uav_tests.dir/uav/uav_test.cc.o"
  "CMakeFiles/uav_tests.dir/uav/uav_test.cc.o.d"
  "CMakeFiles/uav_tests.dir/uav/wind_test.cc.o"
  "CMakeFiles/uav_tests.dir/uav/wind_test.cc.o.d"
  "uav_tests"
  "uav_tests.pdb"
  "uav_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uav_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
