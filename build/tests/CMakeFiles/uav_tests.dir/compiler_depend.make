# Empty compiler generated dependencies file for uav_tests.
# This may be replaced when dependencies are built.
