// Ferry relay chain: airplane-to-airplane delivery over a long leg.
//
// An airplane surveying a remote sector (500 x 500 m at 70 m altitude)
// must get 28 MB of imagery back to the ground station 2 km away —
// beyond 802.11n range, so a second airplane ferries: collect from the
// scout mid-air at the delayed-gratification optimum, cruise back, and
// deliver to the ground station, again at the optimum distance.
// Demonstrates the "any mission UAV can become a ferry" view of Sec. 6.
#include <cstdio>

#include "core/planner.h"
#include "ctrl/imaging.h"
#include "io/table.h"
#include "mac/link.h"
#include "uav/failure.h"

namespace {

using namespace skyferry;

struct Hop {
  const char* name;
  double d0_m;
  double mdata_bytes;
};

struct HopResult {
  double d_opt_m;
  double ship_s;
  double tx_s;
  double total_s;
  double naive_s;
  bool completed;
};

HopResult run_hop(const Hop& hop, const core::PaperLogThroughput& model,
                  const uav::FailureModel& failure, double speed_mps, std::uint64_t seed) {
  const core::DelayedGratificationPlanner planner(model, failure);
  core::DeliveryParams params{hop.d0_m, speed_mps, hop.mdata_bytes, 20.0};
  const core::Decision dec = planner.decide(params);

  // Full-stack transfer at the planned distance (airplanes synchronize
  // trajectories so relative speed ~ 0 during the exchange, Sec. 4).
  mac::LinkConfig cfg;
  cfg.channel = phy::ChannelConfig::airplane();
  mac::ArfRate rc;
  mac::LinkSimulator link(cfg, rc, seed);
  const auto res =
      link.run_transfer(static_cast<std::uint64_t>(hop.mdata_bytes), 1800.0,
                        mac::static_geometry(dec.strategy.target_distance_m, 2.0));

  const core::CommDelayModel delay(model, params);
  HopResult r;
  r.d_opt_m = dec.strategy.target_distance_m;
  r.ship_s = delay.tship_s(dec.strategy.target_distance_m);
  r.tx_s = res.duration_s;
  r.total_s = r.ship_s + r.tx_s;
  r.naive_s = delay.cdelay_s(hop.d0_m);
  r.completed = res.completed;
  return r;
}

}  // namespace

int main() {
  const ctrl::CameraModel camera;
  const auto plan = ctrl::plan_sector_imaging(camera, 500.0 * 500.0, 70.0);
  std::printf("remote sector imagery: %u images, %.1f MB\n", plan.batch.num_images,
              plan.batch.total_mb());

  const auto model = core::PaperLogThroughput::airplane();
  const auto failure = uav::FailureModel::paper_airplane();
  const double cruise = uav::PlatformSpec::swinglet().cruise_speed_mps;

  // Hop 1: scout -> ferry, link comes up at 300 m (the paper's d0).
  // Hop 2: ferry -> ground station, approach from 400 m.
  const Hop hops[] = {{"scout->ferry", 300.0, plan.batch.total_bytes()},
                      {"ferry->ground", 400.0, plan.batch.total_bytes()}};

  io::Table t("ferry chain (airplane scenario, full-stack transfers)");
  t.columns({"hop", "d_opt_m", "ship_s", "tx_s", "total_s", "transmit-now_s"});
  double total = 0.0;
  bool all_ok = true;
  std::uint64_t seed = 77;
  for (const Hop& hop : hops) {
    const HopResult r = run_hop(hop, model, failure, cruise, seed++);
    t.add_row(hop.name, {r.d_opt_m, r.ship_s, r.tx_s, r.total_s, r.naive_s});
    total += r.total_s;
    all_ok = all_ok && r.completed;
  }
  // The 2 km cruise between the hops at airplane speed.
  const double cruise_leg_s = 2000.0 / cruise;
  t.add_row("cruise leg (2 km)", {0.0, cruise_leg_s, 0.0, cruise_leg_s, cruise_leg_s});
  t.print();
  std::printf("end-to-end delivery: %.0f s (%s)\n", total + cruise_leg_s,
              all_ok ? "all hops complete" : "INCOMPLETE HOP");
  std::printf(
      "note: hop 2's d0=400 m exceeds the airplane link range (~450 m edge);\n"
      "the planner still ships to a strong position rather than trickling\n"
      "from the fringe.\n");
  return all_ok ? 0 : 1;
}
