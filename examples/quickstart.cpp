// Quickstart: the five-minute tour of the SkyFerry public API.
//
// A quadrocopter has photographed its sector (56 MB of images) and a
// relay UAV just came in range 100 m away. Should it transmit *now*, or
// fly closer first and transmit *later*? We build the throughput model,
// the failure discount, and ask the planner.
#include <cstdio>

#include "core/planner.h"

int main() {
  using namespace skyferry;

  // 1. A scenario preset bundles the paper's baseline constants
  //    (platform, camera, sector, Mdata, speed, failure rate, d0).
  const core::Scenario scen = core::Scenario::quadrocopter();

  // 2. s(d): the distance->throughput model. Here the paper's published
  //    fit; swap in core::TableThroughput to use your own measurements.
  const core::PaperLogThroughput model = scen.paper_throughput();

  // 3. delta(d): the failure discount, exp(-rho * distance_to_fly).
  const uav::FailureModel failure = scen.failure_model();

  // 4. Decide.
  const core::DelayedGratificationPlanner planner(model, failure);
  const core::Decision d = planner.decide(scen);

  std::printf("scenario           : %s\n", scen.name.c_str());
  std::printf("batch              : %.1f MB at d0 = %.0f m\n", scen.mdata_bytes / 1e6,
              scen.d0_m);
  std::printf("decision           : %s\n", core::to_string(d.strategy.kind).c_str());
  std::printf("transmit distance  : %.1f m\n", d.strategy.target_distance_m);
  std::printf("expected delay     : %.1f s (transmit-now would take %.1f s)\n",
              d.expected_delay_s, d.transmit_now_delay_s);
  std::printf("delay saving       : %.0f %%\n", d.delay_saving_fraction * 100.0);
  std::printf("delivery probability: %.4f\n", d.delivery_probability);

  // 5. Inspect the utility curve behind the decision.
  const core::CommDelayModel delay(model, scen.delivery_params());
  const core::UtilityFunction u(delay, failure);
  std::printf("\nU(d) samples:\n");
  for (double dist = 20.0; dist <= 100.0; dist += 20.0) {
    const core::UtilityPoint p = u.evaluate(dist);
    std::printf("  d=%5.1f m  Tship=%6.1f s  Ttx=%6.1f s  U=%.5f\n", dist, p.tship_s, p.ttx_s,
                p.utility);
  }
  return 0;
}
