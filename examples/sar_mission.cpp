// Search-and-rescue mission, end to end — the scenario the paper's
// introduction motivates.
//
// A 200 x 100 m area is split into two sectors. Quadrocopter "scout"
// sweeps its sector photographing the ground while "relay" hovers at the
// area edge, connected to the rescuers. When the sweep finishes, the
// delayed-gratification planner picks the rendezvous distance; the scout
// ferries its images there and transmits over the simulated 802.11n
// link, with telemetry and commands on the XBee-like control channel.
#include <cstdio>
#include <deque>

#include "core/planner.h"
#include "ctrl/control_channel.h"
#include "ctrl/sector.h"
#include "io/table.h"
#include "mac/link.h"
#include "net/flow.h"
#include "uav/uav.h"

int main() {
  using namespace skyferry;
  constexpr double kDt = 0.05;

  // --- mission setup ---------------------------------------------------
  const auto sectors = ctrl::make_sector_grid(200.0, 100.0, 2, 1, 10.0);
  const ctrl::CameraModel camera;
  const auto plan = ctrl::plan_sector_imaging(camera, sectors[0].area_m2(), 10.0);
  std::printf("sector 0: %.0f m^2, %u images, %.1f MB to ferry\n", sectors[0].area_m2(),
              plan.batch.num_images, plan.batch.total_mb());

  uav::UavConfig scout_cfg;
  scout_cfg.id = "scout";
  scout_cfg.platform = uav::PlatformSpec::arducopter();
  scout_cfg.start_pos = sectors[0].origin;
  uav::Uav scout(scout_cfg, 1);

  uav::UavConfig relay_cfg;
  relay_cfg.id = "relay";
  relay_cfg.platform = uav::PlatformSpec::arducopter();
  relay_cfg.start_pos = {200.0, 50.0, 10.0};
  uav::Uav relay(relay_cfg, 2);
  relay.goto_and_hold(relay_cfg.start_pos);

  // --- phase 1: survey sweep -------------------------------------------
  const auto path =
      ctrl::lawnmower_path(sectors[0], ctrl::coverage_track_spacing_m(camera, 10.0));
  std::deque<uav::Waypoint> sweep;
  for (const auto& p : path) sweep.push_back({p, 0.0, 4.0, 0.0});
  scout.autopilot().set_plan(sweep);

  sim::Simulator clock;
  ctrl::ControlChannel control(clock);
  std::uint64_t telemetry_sent = 0;

  double t = 0.0;
  while (scout.autopilot().waypoints_left() > 0 ||
         scout.autopilot().phase() == uav::AutopilotPhase::kEnroute) {
    scout.tick(t, kDt);
    relay.tick(t, kDt);
    // 1 Hz telemetry on the control channel.
    if (static_cast<long>(t) != static_cast<long>(t + kDt)) {
      ctrl::Telemetry tm;
      tm.uav_id = "scout";
      tm.t_s = t;
      tm.speed_mps = scout.speed();
      tm.battery_soc = scout.battery().soc();
      const double dist = geo::distance(scout.position(), relay.position());
      if (control.send(tm, dist, [](const ctrl::ControlMessage&, double) {})) ++telemetry_sent;
    }
    t += kDt;
    if (t > 1800.0) break;  // battery guard
  }
  clock.run();
  const double sweep_done_t = t;
  std::printf("sweep complete at t=%.0f s (path %.0f m, battery %.0f%%), telemetry msgs: %llu\n",
              sweep_done_t, scout.distance_flown_m(), scout.battery().soc() * 100.0,
              static_cast<unsigned long long>(telemetry_sent));

  // --- phase 2: now or later? ------------------------------------------
  const double d0 = geo::distance(scout.position(), relay.position());
  const core::PaperLogThroughput model = core::PaperLogThroughput::quadrocopter();
  const uav::FailureModel failure = uav::FailureModel::paper_quadrocopter();
  const core::DelayedGratificationPlanner planner(model, failure);
  core::DeliveryParams params{d0, scout_cfg.platform.cruise_speed_mps, plan.batch.total_bytes(),
                              20.0};
  const core::Decision dec = planner.decide(params);
  std::printf("link came up at d0=%.0f m -> %s at d=%.0f m (saves %.0f%% delay)\n", d0,
              core::to_string(dec.strategy.kind).c_str(), dec.strategy.target_distance_m,
              dec.delay_saving_fraction * 100.0);

  // --- phase 3: ferry and transmit ---------------------------------------
  const geo::Vec3 dir = (scout.position() - relay.position()).normalized();
  const geo::Vec3 rendezvous = relay.position() + dir * dec.strategy.target_distance_m;
  scout.goto_and_hold(rendezvous);
  const double ferry_start = t;
  while (geo::distance(scout.position(), relay.position()) >
             dec.strategy.target_distance_m + 4.0 &&
         t - ferry_start < 120.0) {
    scout.tick(t, kDt);
    relay.tick(t, kDt);
    t += kDt;
  }
  const double ship_time = t - ferry_start;

  mac::LinkConfig link_cfg;
  link_cfg.channel = phy::ChannelConfig::quadrocopter();
  mac::ArfRate rc;
  mac::LinkSimulator link(link_cfg, rc, 42);
  auto geom = [&](double) {
    return mac::Geometry{geo::distance(scout.position(), relay.position()),
                         scout.speed() + relay.speed()};
  };
  const auto res = link.run_transfer(
      static_cast<std::uint64_t>(plan.batch.total_bytes()), 900.0, geom);

  io::Table out("mission summary");
  out.columns({"phase", "duration_s"});
  out.add_row("survey sweep", {sweep_done_t});
  out.add_row("ferry to rendezvous", {ship_time});
  out.add_row("transmit batch", {res.duration_s});
  out.add_row("ferry+transmit total", {ship_time + res.duration_s});
  const core::CommDelayModel delay(model, params);
  out.add_row("(transmit-now would be)", {delay.cdelay_s(d0)});
  out.print();
  std::printf("delivered %.1f MB (%s), MPDU loss %.1f%%\n",
              res.payload_bits_delivered / 8e6, res.completed ? "complete" : "INCOMPLETE",
              res.loss_rate() * 100.0);
  return res.completed ? 0 : 1;
}
