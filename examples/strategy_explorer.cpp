// Strategy explorer: a parameter playground on the command line.
//
//   strategy_explorer [mdata_mb] [speed_mps] [rho] [d0_m] [airplane|quad]
//
// Prints the utility curve, the optimum, the crossover table against
// transmit-now, and the simulated transfer curves for the main
// strategies — everything the operator needs to see *why* the planner
// chose now or later.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/planner.h"
#include "io/ascii_chart.h"
#include "io/table.h"

int main(int argc, char** argv) {
  using namespace skyferry;

  const bool airplane = argc > 5 && std::strcmp(argv[5], "airplane") == 0;
  core::Scenario scen = airplane ? core::Scenario::airplane() : core::Scenario::quadrocopter();
  core::DeliveryParams params = scen.delivery_params();
  double rho = scen.rho_per_m;
  if (argc > 1) params.mdata_bytes = std::atof(argv[1]) * 1e6;
  if (argc > 2) params.speed_mps = std::atof(argv[2]);
  if (argc > 3) rho = std::atof(argv[3]);
  if (argc > 4) params.d0_m = std::atof(argv[4]);

  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(rho);
  const core::CommDelayModel delay(model, params);
  const core::UtilityFunction u(delay, failure);

  std::printf("platform=%s  Mdata=%.1f MB  v=%.1f m/s  rho=%g /m  d0=%.0f m\n",
              scen.name.c_str(), params.mdata_bytes / 1e6, params.speed_mps, rho, params.d0_m);

  // Utility curve.
  io::AsciiChart chart("U(d)", 70, 14);
  chart.x_label("d (m)").y_label("U");
  io::Series s{"U(d)", {}, {}};
  for (const auto& pt : u.curve(100)) {
    s.xs.push_back(pt.d_m);
    s.ys.push_back(pt.utility);
  }
  chart.add(s);
  chart.print();

  const core::DelayedGratificationPlanner planner(model, failure);
  const core::Decision dec = planner.decide(params);
  std::printf("\noptimum: d_opt=%.1f m  U=%.5f  Cdelay=%.1f s  P(deliver)=%.4f\n",
              dec.opt.d_opt_m, dec.opt.utility, dec.opt.cdelay_s, dec.delivery_probability);
  std::printf("decision: %s (vs transmit-now %.1f s -> saves %.0f%%)\n",
              core::to_string(dec.strategy.kind).c_str(), dec.transmit_now_delay_s,
              dec.delay_saving_fraction * 100.0);

  // Crossover data sizes: how big must the batch be for each candidate
  // transmit distance to beat transmitting now?
  io::Table cross("crossover batch sizes vs transmit-now");
  cross.columns({"d_m", "Mdata*_MB", "beats transmit-now for this batch?"});
  for (double d = params.min_distance_m; d < params.d0_m - 1.0; d += (params.d0_m - 20.0) / 8.0) {
    const double mstar = core::crossover_mdata_bytes(model, params.d0_m, d, params.speed_mps);
    cross.add_row(io::format_number(d),
                  {mstar / 1e6, params.mdata_bytes > mstar ? 1.0 : 0.0});
  }
  cross.print();

  // Transfer curves for the main strategies.
  const core::SpeedDegradation deg{};
  io::AsciiChart tchart("transfer curves", 70, 14);
  tchart.x_label("time (s)").y_label("MB");
  for (auto kind : {core::StrategyKind::kTransmitNow, core::StrategyKind::kShipThenTransmit,
                    core::StrategyKind::kMoveAndTransmit, core::StrategyKind::kMixed}) {
    core::StrategySpec spec;
    spec.kind = kind;
    spec.target_distance_m = dec.opt.d_opt_m;
    const auto out = simulate_strategy(spec, model, deg, params, 0.05, 7200.0);
    io::Series ts{spec.label(), {}, {}};
    const std::size_t stride = std::max<std::size_t>(out.curve.size() / 50, 1);
    for (std::size_t i = 0; i < out.curve.size(); i += stride) {
      ts.xs.push_back(out.curve[i].t_s);
      ts.ys.push_back(out.curve[i].delivered_mb);
    }
    tchart.add(ts);
  }
  tchart.print();
  return 0;
}
