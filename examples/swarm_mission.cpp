// Swarm mission on the live network co-simulation.
//
// Four quadrocopter scouts each sweep a sector of a 200x200 m area; one
// relay hovers at the center. As each scout finishes, the
// delayed-gratification planner picks its rendezvous distance and the
// scout ferries its batch in; the AerialNetwork simulates every flight
// and every 802.11n exchange against live positions, including DCF
// contention when deliveries overlap.
#include <cstdio>
#include <string>
#include <vector>

#include "airnet/network.h"
#include "core/mission.h"
#include "io/table.h"

int main() {
  using namespace skyferry;

  // Plan the mission analytically first (sector split + rendezvous).
  core::MissionConfig mcfg;
  mcfg.area_width_m = 200.0;
  mcfg.area_height_m = 200.0;
  mcfg.uav_count = 4;
  mcfg.rendezvous_d0_m = 100.0;
  const auto model = core::PaperLogThroughput::quadrocopter();
  const core::MissionPlanner planner(model, mcfg);
  const core::MissionPlan plan = planner.plan();
  std::printf("mission plan: %zu sectors, %.0f MB total, makespan %.0f s, %s\n",
              plan.sectors.size(), plan.total_data_mb, plan.makespan_s,
              plan.feasible ? "battery-feasible" : "INFEASIBLE");

  // Fly it on the network.
  airnet::NetworkConfig ncfg;
  airnet::AerialNetwork net(ncfg, 2026);

  const geo::Vec3 relay_pos{100.0, 100.0, 10.0};
  uav::UavConfig relay_cfg;
  relay_cfg.id = "relay";
  relay_cfg.platform = uav::PlatformSpec::arducopter();
  relay_cfg.start_pos = relay_pos;
  const airnet::NodeId relay = net.add_node(relay_cfg);
  net.node(relay).goto_and_hold(relay_pos);

  const auto sectors = ctrl::make_sector_grid(200.0, 200.0, 2, 2, 10.0);
  std::vector<airnet::NodeId> scouts;
  for (const auto& s : sectors) {
    uav::UavConfig cfg;
    cfg.id = "scout" + std::to_string(s.index);
    cfg.platform = uav::PlatformSpec::arducopter();
    cfg.start_pos = s.center();
    const airnet::NodeId id = net.add_node(cfg);
    // Ferry leg: fly toward the relay, stop at the planned distance.
    const auto& dec = plan.sectors[static_cast<std::size_t>(s.index)].rounds[0].decision;
    const geo::Vec3 dir = (s.center() - relay_pos).normalized();
    net.node(id).goto_and_hold(relay_pos + dir * dec.strategy.target_distance_m);
    scouts.push_back(id);
  }

  // Stagger the transfers slightly (the contention ablation's lesson),
  // then let the network run.
  std::vector<airnet::TransferId> transfers;
  const net::DataBatch batch{26, 0.39e6};  // ~10 MB per scout for a quick demo
  for (std::size_t i = 0; i < scouts.size(); ++i) {
    const auto scout = scouts[i];
    net.simulator().schedule(25.0 + 5.0 * static_cast<double>(i), [&, scout] {
      transfers.push_back(net.start_transfer(scout, relay, batch));
    });
  }
  net.run_until(600.0);

  io::Table t("swarm delivery results");
  t.columns({"scout", "planned d_m", "achieved d_m", "done t_s", "loss_%", "complete"});
  bool all_ok = true;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const auto& st = net.transfer(transfers[i]);
    const auto& dec = plan.sectors[i].rounds[0].decision;
    t.add_row("scout" + std::to_string(i),
              {dec.strategy.target_distance_m, net.distance(st.from, relay),
               st.completed ? st.completed_t_s : -1.0, st.loss_rate() * 100.0,
               st.completed ? 1.0 : 0.0});
    all_ok = all_ok && st.completed;
  }
  t.print();
  std::printf("%s\n", all_ok ? "all batches delivered" : "INCOMPLETE DELIVERIES");
  return all_ok ? 0 : 1;
}
