#!/usr/bin/env bash
# Benchmark-regression harness for the link-simulation hot path.
#
# Runs bench/micro_benchmarks with --benchmark_format=json, normalizes
# the output into a stable {name -> median real_time ns} map, and either
# records it as the committed baseline or fails on >TOLERANCE% regression
# of any baselined counter. The baseline also pins the headline claims:
# SPEEDUPS requires counter ratios (kAggregate vs kPerMpdu link-second,
# batched fleet step vs event-driven airnet step), and CEILING_NS pins
# absolute budgets for latency-contract counters (a relative gate would
# let a slow-but-stable baseline hide a blown contract — BM_ReDecision
# must fit in a probe tick, so it gets a hard 10 us ceiling).
#
# Usage:
#   scripts/bench_regress.sh --update     # (re)record BENCH_link_sim.json
#   scripts/bench_regress.sh --check      # compare against the baseline
#   scripts/bench_regress.sh              # run + print, no gate
#
# Options:
#   --build-dir DIR    build tree containing bench/micro_benchmarks [build]
#   --baseline FILE    baseline path [BENCH_link_sim.json]
#   --tolerance PCT    allowed slowdown per counter in --check [25]
#   --min-time SEC     --benchmark_min_time per benchmark [0.05]
#   --repetitions N    --benchmark_repetitions (median is kept) [3]
set -euo pipefail

cd "$(dirname "$0")/.."

mode=run
build_dir=build
baseline=BENCH_link_sim.json
tolerance=25
min_time=0.05
repetitions=3

while [[ $# -gt 0 ]]; do
  case "$1" in
    --update) mode=update ;;
    --check) mode=check ;;
    --build-dir) build_dir=$2; shift ;;
    --baseline) baseline=$2; shift ;;
    --tolerance) tolerance=$2; shift ;;
    --min-time) min_time=$2; shift ;;
    --repetitions) repetitions=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

bin="$build_dir/bench/micro_benchmarks"
if [[ ! -x "$bin" ]]; then
  echo "error: $bin not built — run: cmake -B $build_dir -S . && cmake --build $build_dir --target micro_benchmarks" >&2
  exit 2
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

"$bin" --benchmark_format=json \
       --benchmark_min_time="$min_time" \
       --benchmark_repetitions="$repetitions" \
       --benchmark_report_aggregates_only=true > "$raw"

MODE="$mode" BASELINE="$baseline" TOLERANCE="$tolerance" python3 - "$raw" <<'PY'
import json, os, sys

# Required numerator/denominator speedups, checked whenever both
# counters are present:
#   - kPerMpdu / kAggregate saturated link-second >= 10x (PR 3)
#   - event-driven airnet step / batched fleet step at n=1000 >= 20x
#     (DESIGN.md §12 — the fleet engine's reason to exist)
SPEEDUPS = [
    ("aggregate link-second", "BM_LinkSimSecondPerMpdu", "BM_LinkSimSecondAggregate", 10.0),
    ("fleet vs event-driven step @1k", "BM_AirnetStep1k", "BM_FleetStep1k", 20.0),
]
# Absolute real-time ceilings [ns], enforced in --update and --check:
# these are latency contracts, not regression baselines.
# BM_PolicyDecideBatch decides 1024 queries per iteration; its ceiling is
# the >= 1e6 decisions/s service contract (<= 1 us/decision amortized).
# BM_FleetStep1k advances 1000 saturated UAVs by one 50 ms sweep; the
# 25 us ceiling keeps ~2000x headroom on the faster-than-real-time
# contract while sitting ~4x above the measured median.
CEILING_NS = {
    "BM_ReDecision": 10_000.0,
    "BM_PolicyDecideBatch": 1_024_000.0,
    "BM_FleetStep1k": 25_000.0,
    # A joint (link, d) decision over four backends runs five exact
    # optimizer searches plus the dominance net (~0.4 ms); it must stay
    # well under a spawn tick so fleets decide exactly, no table needed.
    "BM_MultiLinkDecide": 1_500_000.0,
    # BM_EventQueue churns a binary heap through the allocator; its
    # median swings ~1.5x between otherwise-identical machines (cache
    # and allocator layout, not code), so it is exempt from the
    # relative gate below and pinned by a ~4x-median ceiling instead.
    "BM_EventQueue": 250_000.0,
}
# Counters whose medians are machine-speed-sensitive: recorded in the
# baseline for reference, gated only by their CEILING_NS contract.
RELATIVE_EXEMPT = {"BM_EventQueue"}

mode = os.environ["MODE"]
baseline_path = os.environ["BASELINE"]
tolerance = float(os.environ["TOLERANCE"])

with open(sys.argv[1]) as f:
    raw = json.load(f)

# Normalize: median real_time per benchmark, in nanoseconds.
unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
current = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
        continue
    name = b["run_name"] if "run_name" in b else b["name"]
    current[name] = b["real_time"] * unit_ns.get(b.get("time_unit", "ns"), 1.0)

if not current:
    print("error: no benchmark results parsed", file=sys.stderr)
    sys.exit(2)

def speedups(times):
    out = []
    for label, num, den, floor in SPEEDUPS:
        if num in times and den in times and times[den] > 0:
            out.append((label, times[num] / times[den], floor))
    return out

print(f"{'benchmark':44s} {'real_time':>14s}")
for name in sorted(current):
    print(f"{name:44s} {current[name]:>11.0f} ns")
sps = speedups(current)
for label, sp, floor in sps:
    print(f"{f'speedup ({label})':44s} {sp:>10.1f} x  (floor {floor:.0f}x)")

def ceiling_failures(times, ceilings):
    out = []
    for name, cap in sorted(ceilings.items()):
        if name not in times:
            out.append(f"{name}: ceiling counter missing from current run")
        elif times[name] > cap:
            out.append(f"{name}: {times[name]:.0f} ns over absolute ceiling {cap:.0f} ns")
    return out

def speedup_failures(times, pairs):
    out = []
    for label, num, den, floor in pairs:
        if num not in times or den not in times:
            out.append(f"speedup ({label}): counter {num} or {den} missing")
        elif times[den] <= 0 or times[num] / times[den] < float(floor):
            got = times[num] / times[den] if times[den] > 0 else float("inf")
            out.append(f"speedup ({label}): {got:.1f}x < required {float(floor):.1f}x")
    return out

if mode == "update":
    # Refuse to bake a blown latency or speedup contract into the baseline.
    over = ceiling_failures(current, CEILING_NS) + speedup_failures(current, SPEEDUPS)
    if over:
        print("bench_regress: refusing to record baseline over a contract")
        for f_ in over:
            print(f"  - {f_}")
        sys.exit(1)
    doc = {
        "_comment": "scripts/bench_regress.sh baseline: median real_time [ns] of "
                    "bench/micro_benchmarks. Regenerate with scripts/bench_regress.sh --update. "
                    "ceiling_ns entries are absolute latency contracts and speedups entries "
                    "[label, numerator, denominator, floor] required ratios, both checked on "
                    "every run.",
        "tolerance_pct": tolerance,
        "speedups": [list(s) for s in SPEEDUPS],
        "ceiling_ns": CEILING_NS,
        "benchmarks": {k: round(v, 1) for k, v in sorted(current.items())},
    }
    with open(baseline_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"baseline written: {baseline_path} ({len(current)} counters)")
elif mode == "check":
    with open(baseline_path) as f:
        base = json.load(f)
    base_times = base["benchmarks"]
    tol = 1.0 + float(base.get("tolerance_pct", tolerance)) / 100.0
    failures = []
    print(f"\n{'counter':44s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for name, b_ns in sorted(base_times.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = current[name] / b_ns if b_ns > 0 else float("inf")
        exempt = name in RELATIVE_EXEMPT
        flag = "  ceiling-gated" if exempt else ("  FAIL" if ratio > tol else "")
        print(f"{name:44s} {b_ns:>9.0f} ns {current[name]:>9.0f} ns {ratio:>6.2f}x{flag}")
        if ratio > tol and not exempt:
            failures.append(f"{name}: {ratio:.2f}x baseline (tolerance {tol:.2f}x)")
    failures += speedup_failures(current, base.get("speedups", SPEEDUPS))
    failures += ceiling_failures(current, base.get("ceiling_ns", CEILING_NS))
    if failures:
        print("\nbench_regress: FAILED")
        for f_ in failures:
            print(f"  - {f_}")
        sys.exit(1)
    print(f"\nbench_regress: OK ({len(base_times)} counters within {tol:.2f}x)")
PY
