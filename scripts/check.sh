#!/usr/bin/env bash
# Full verification: normal build + tests, then an ASan+UBSan build + tests.
#
# Usage: scripts/check.sh [--no-sanitize]
#
# Build trees:
#   build/           normal (RelWithDebInfo by default via CMakeLists)
#   build-sanitize/  -DSKYFERRY_SANITIZE=ON (address,undefined)
set -euo pipefail

cd "$(dirname "$0")/.."

run_sanitize=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  run_sanitize=0
fi

jobs=$(nproc 2>/dev/null || echo 4)

echo "== normal build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$run_sanitize" == "1" ]]; then
  echo "== sanitized build (ASan+UBSan) =="
  cmake -B build-sanitize -S . -DSKYFERRY_SANITIZE=ON >/dev/null
  cmake --build build-sanitize -j "$jobs"
  ctest --test-dir build-sanitize --output-on-failure -j "$jobs"
fi

echo "== all checks passed =="
