#!/usr/bin/env bash
# Full verification: normal build + tests, then an ASan+UBSan build +
# tests, then a TSan build running the concurrency-sensitive suites
# (experiment engine, Monte-Carlo, RNG forking) to catch data races in
# the parallel trial fan-out.
#
# Usage: scripts/check.sh [--no-sanitize] [--no-tsan]
#
# Build trees:
#   build/           normal (RelWithDebInfo by default via CMakeLists)
#   build-sanitize/  -DSKYFERRY_SANITIZE=ON (address,undefined)
#   build-tsan/      -DSKYFERRY_SANITIZE=thread
set -euo pipefail

cd "$(dirname "$0")/.."

run_sanitize=1
run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --no-sanitize) run_sanitize=0 ;;
    --no-tsan) run_tsan=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)

echo "== normal build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$run_sanitize" == "1" ]]; then
  echo "== sanitized build (ASan+UBSan) =="
  cmake -B build-sanitize -S . -DSKYFERRY_SANITIZE=ON >/dev/null
  cmake --build build-sanitize -j "$jobs"
  ctest --test-dir build-sanitize --output-on-failure -j "$jobs"
fi

if [[ "$run_tsan" == "1" ]]; then
  echo "== thread-sanitized build (TSan, engine + Monte-Carlo tests) =="
  cmake -B build-tsan -S . -DSKYFERRY_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target exp_tests fault_tests sim_tests
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'ThreadPool|Sweep|Runner|Cli|MonteCarlo|MissionTrial|Fork|Rng'
fi

echo "== all checks passed =="
