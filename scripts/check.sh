#!/usr/bin/env bash
# Full verification: normal build + the fast test tier, then an
# ASan+UBSan build + tests, then a TSan build running the
# concurrency-sensitive suites (experiment engine, Monte-Carlo, RNG
# forking) to catch data races in the parallel trial fan-out.
#
# Usage: scripts/check.sh [--all] [--golden] [--bench] [--no-sanitize] [--no-tsan]
#
# Test tiers (ctest labels): fast (default, < ~30 s), slow
# (integration/e2e), golden (paper-fidelity regression).
#
#   default    normal + sanitized builds, `ctest -L fast`
#   --golden   additionally run the golden gate: ctest -L golden plus
#              scripts/golden_regress.sh --check against golden/
#   --bench    additionally run the benchmark-regression gate
#              (scripts/bench_regress.sh --check) when the committed
#              BENCH_link_sim.json baseline exists — benchmarks are
#              wall-clock sensitive, so they never gate by default
#   --all      everything: full ctest (fast+slow+golden), golden gate,
#              bench gate
#
# Build trees:
#   build/           normal (RelWithDebInfo by default via CMakeLists)
#   build-sanitize/  -DSKYFERRY_SANITIZE=ON (address,undefined)
#   build-tsan/      -DSKYFERRY_SANITIZE=thread
set -euo pipefail

cd "$(dirname "$0")/.."

run_sanitize=1
run_tsan=1
run_bench=0
run_golden=0
run_all=0
for arg in "$@"; do
  case "$arg" in
    --no-sanitize) run_sanitize=0 ;;
    --no-tsan) run_tsan=0 ;;
    --bench) run_bench=1 ;;
    --golden) run_golden=1 ;;
    --all) run_all=1; run_bench=1; run_golden=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)

# Default tier: the fast label. --all drops the filter (fast+slow+golden).
ctest_filter=(-L fast)
if [[ "$run_all" == "1" ]]; then
  ctest_filter=()
fi

echo "== normal build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs" "${ctest_filter[@]}"

if [[ "$run_golden" == "1" ]]; then
  echo "== golden paper-fidelity gate =="
  if [[ "$run_all" != "1" ]]; then
    # --all already ran the golden-labeled ctest tier above.
    ctest --test-dir build --output-on-failure -j "$jobs" -L golden
  fi
  scripts/golden_regress.sh --check
fi

if [[ "$run_bench" == "1" ]]; then
  if [[ -f BENCH_link_sim.json ]]; then
    echo "== benchmark regression check =="
    scripts/bench_regress.sh --check
  else
    echo "== benchmark regression check skipped (no BENCH_link_sim.json) =="
  fi
fi

if [[ "$run_sanitize" == "1" ]]; then
  echo "== sanitized build (ASan+UBSan) =="
  cmake -B build-sanitize -S . -DSKYFERRY_SANITIZE=ON >/dev/null
  cmake --build build-sanitize -j "$jobs"
  ctest --test-dir build-sanitize --output-on-failure -j "$jobs" "${ctest_filter[@]}"
fi

if [[ "$run_tsan" == "1" ]]; then
  echo "== thread-sanitized build (TSan, engine + Monte-Carlo + fleet tests) =="
  cmake -B build-tsan -S . -DSKYFERRY_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target exp_tests fault_tests sim_tests ctrl_tests core_tests net_tests policy_tests fleet_tests link_tests
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'ThreadPool|Sweep|Runner|Cli|MonteCarlo|MissionTrial|Fork|Rng|Checkpoint|Codec|Resilience|ReDecision|Mismatch|RetryBudget|Compiler|DecisionService|Fleet|MultiLink|BackendEquivalence|Chaos|OutageExtreme'
fi

echo "== all checks passed =="
