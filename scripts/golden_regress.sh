#!/usr/bin/env bash
# Golden paper-fidelity regression driver.
#
# Every figure/table bench emits its machine-checkable claims (metrics
# with tolerances, orderings, sample sets, replay header) as JSON via
# `--json <path>`. This script re-runs the benches and either refreshes
# the committed goldens under golden/ (--update) or compares fresh
# candidates against them with build/bench/golden_check (--check).
#
# Usage:
#   scripts/golden_regress.sh --update [bench...]   regenerate golden/<bench>.json
#   scripts/golden_regress.sh --check  [bench...]   re-run + compare, exit 1 on drift
#
# With no bench names, --check discovers from golden/*.json and --update
# uses the canonical list below. Benches run in a scratch directory so
# their CSV/gnuplot side outputs never land in the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
GOLDEN_DIR=golden

# Canonical list: every bench with a bench::Report (micro_benchmarks is
# wall-clock-sensitive and stays under scripts/bench_regress.sh instead).
ALL_BENCHES=(
  table1_platforms
  fig1_strategy_curves
  fig2_failure_tradeoff
  fig4_gps_traces
  fig5_airplane_throughput
  fig6_mcs_vs_autorate
  fig7_quadrocopter
  fig8_utility_curves
  fig9_datasize_speed
  ablation_mixed_strategy
  ablation_joint_speed
  ablation_contention
  ablation_dubins_shipping
  ablation_failure_models
  ablation_model_mismatch
  ablation_link_chaos
  calibrate_channel
  mc_delivery_probability
  fleet_scale
  fig_multilink
)

mode=""
benches=()
for arg in "$@"; do
  case "$arg" in
    --update) mode=update ;;
    --check) mode=check ;;
    -h|--help) sed -n '2,16p' "$0"; exit 0 ;;
    --*) echo "unknown argument: $arg" >&2; exit 2 ;;
    *) benches+=("$arg") ;;
  esac
done
if [[ -z "$mode" ]]; then
  echo "usage: scripts/golden_regress.sh --update|--check [bench...]" >&2
  exit 2
fi

if [[ ${#benches[@]} -eq 0 ]]; then
  if [[ "$mode" == "check" ]]; then
    shopt -s nullglob
    for g in "$GOLDEN_DIR"/*.json; do
      benches+=("$(basename "$g" .json)")
    done
    shopt -u nullglob
    if [[ ${#benches[@]} -eq 0 ]]; then
      echo "no goldens under $GOLDEN_DIR/; run scripts/golden_regress.sh --update first" >&2
      exit 2
    fi
  else
    benches=("${ALL_BENCHES[@]}")
  fi
fi

for b in "${benches[@]}"; do
  if [[ ! -x "$BUILD/bench/$b" ]]; then
    echo "missing $BUILD/bench/$b — build first: cmake --build $BUILD --target $b" >&2
    exit 2
  fi
done
if [[ "$mode" == "check" && ! -x "$BUILD/bench/golden_check" ]]; then
  echo "missing $BUILD/bench/golden_check — build first" >&2
  exit 2
fi

repo=$PWD
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

mkdir -p "$GOLDEN_DIR"
failed=()
for b in "${benches[@]}"; do
  if [[ "$mode" == "update" ]]; then
    out="$repo/$GOLDEN_DIR/$b.json"
  else
    out="$scratch/$b.json"
  fi
  if ! (cd "$scratch" && "$repo/$BUILD/bench/$b" --json "$out" >"$scratch/$b.log" 2>&1); then
    echo "[run-failed] $b (log follows)"
    tail -20 "$scratch/$b.log"
    failed+=("$b")
    continue
  fi
  if [[ "$mode" == "update" ]]; then
    echo "[updated] $GOLDEN_DIR/$b.json"
  else
    if "$repo/$BUILD/bench/golden_check" --quiet 1 \
        --golden "$repo/$GOLDEN_DIR/$b.json" --candidate "$out"; then
      echo "[ok] $b"
    else
      failed+=("$b")
    fi
  fi
done

if [[ ${#failed[@]} -gt 0 ]]; then
  echo "golden regression FAILED for: ${failed[*]}" >&2
  exit 1
fi
if [[ "$mode" == "update" ]]; then
  echo "goldens refreshed (${#benches[@]} benches); review the diff and commit golden/"
else
  echo "golden regression passed (${#benches[@]} benches)"
fi
