#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-safe campaign machinery
# (DESIGN.md §9): start a checkpointed Monte-Carlo campaign, SIGKILL it
# mid-run, resume from the journal with a DIFFERENT thread count, and
# assert the merged result grid is bit-identical to an uninterrupted
# reference run. SIGKILL (not SIGINT) is deliberate — it proves the
# atomic tmp+fsync+rename snapshots survive a hard kill, not just the
# cooperative flush path.
#
# Usage: scripts/kill_resume_smoke.sh [path/to/mc_delivery_probability]
# Exit 0 on success; non-zero with a diagnostic otherwise.
set -euo pipefail

bin="${1:-build/bench/mc_delivery_probability}"
if [[ ! -x "$bin" ]]; then
  echo "kill_resume_smoke: $bin not found or not executable" >&2
  echo "build it first: cmake --build build --target mc_delivery_probability" >&2
  exit 2
fi

work="$(mktemp -d "${TMPDIR:-/tmp}/skyferry_smoke.XXXXXX")"
trap 'rm -rf "$work"' EXIT

trials=400
seed=20260806

# Reference: uninterrupted run, 8 threads.
"$bin" --seed "$seed" --trials "$trials" --threads 8 \
  --out "$work/ref" >"$work/ref.log"

# Victim: checkpointed run at 2 threads, SIGKILLed mid-campaign. The
# kill must land while chunks are still outstanding, so give it a short
# head start and then pull the plug. If the machine is fast enough that
# the run finishes before the kill, the test still passes (resume of a
# complete journal is a no-op merge) but exercises less; keep the delay
# small relative to the ~2 s runtime.
"$bin" --seed "$seed" --trials "$trials" --threads 2 \
  --checkpoint "$work/ck" --out "$work/victim" >"$work/victim.log" &
victim=$!
sleep 0.4
kill -KILL "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true

snapshots=$(ls "$work"/ck.*.ckpt.json 2>/dev/null | wc -l)
echo "kill_resume_smoke: SIGKILLed pid $victim with $snapshots checkpoint snapshot(s) on disk"

# Resume at 8 threads: chunk geometry is thread-independent, so the
# merged grid must not depend on worker count or kill timing.
"$bin" --seed "$seed" --trials "$trials" --threads 8 \
  --checkpoint "$work/ck" --resume --out "$work/resumed" >"$work/resumed.log"

if ! cmp -s "$work/ref.csv" "$work/resumed.csv"; then
  echo "kill_resume_smoke: FAIL — resumed CSV differs from uninterrupted reference" >&2
  diff "$work/ref.csv" "$work/resumed.csv" >&2 || true
  exit 1
fi

if ! grep -q "resumed" "$work/resumed.log"; then
  # Not fatal: the victim may have died before journaling any chunk, in
  # which case the resume legitimately starts from scratch.
  echo "kill_resume_smoke: note — no chunks were resumed (victim died too early?)"
fi

echo "kill_resume_smoke: PASS — resumed grid bit-identical to uninterrupted run"
