#include "airnet/network.h"

#include <algorithm>
#include <cassert>

#include "mac/rate_control.h"

namespace skyferry::airnet {

struct AerialNetwork::Transfer {
  TransferStats stats;
  mac::ArfRate rate_control;
  phy::LinkChannel channel;
  TransferCallback on_complete;

  Transfer(phy::ChannelConfig ch_cfg, std::uint64_t seed)
      : channel(ch_cfg, seed) {}
};

AerialNetwork::AerialNetwork(NetworkConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      seed_(seed),
      error_model_(cfg.error, cfg.channel.spatial_correlation),
      rng_(sim::derive_seed(seed, "airnet")) {}

AerialNetwork::~AerialNetwork() = default;

NodeId AerialNetwork::add_node(const uav::UavConfig& cfg) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<uav::Uav>(
      cfg, sim::derive_seed(seed_, "node/" + cfg.id)));
  if (!ticking_) {
    ticking_ = true;
    sim_.schedule(cfg_.kinematics_dt_s, [this] { tick_kinematics(); });
  }
  return id;
}

uav::Uav& AerialNetwork::node(NodeId id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(id)];
}

const uav::Uav& AerialNetwork::node(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(id)];
}

double AerialNetwork::distance(NodeId a, NodeId b) const {
  return geo::distance(node(a).position(), node(b).position());
}

void AerialNetwork::tick_kinematics() {
  const double t = sim_.now();
  for (auto& n : nodes_) n->tick(t, cfg_.kinematics_dt_s);
  sim_.schedule(cfg_.kinematics_dt_s, [this] { tick_kinematics(); });
}

int AerialNetwork::active_transfers() const noexcept {
  int n = 0;
  for (const auto& tr : transfers_) n += tr->stats.completed ? 0 : 1;
  return n;
}

TransferId AerialNetwork::start_transfer(NodeId from, NodeId to, const net::DataBatch& batch,
                                         TransferCallback on_complete) {
  const auto id = static_cast<TransferId>(transfers_.size());
  auto tr = std::make_unique<Transfer>(
      cfg_.channel, sim::derive_seed(seed_, "transfer/" + std::to_string(id)));
  tr->stats.from = from;
  tr->stats.to = to;
  tr->stats.payload_bytes_total = static_cast<std::uint64_t>(batch.total_bytes());
  tr->stats.started_t_s = sim_.now();
  tr->on_complete = std::move(on_complete);
  transfers_.push_back(std::move(tr));
  sim_.schedule(0.0, [this, id] { exchange(id); });
  return id;
}

const TransferStats& AerialNetwork::transfer(TransferId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < transfers_.size());
  return transfers_[static_cast<std::size_t>(id)]->stats;
}

void AerialNetwork::exchange(TransferId id) {
  Transfer& tr = *transfers_[static_cast<std::size_t>(id)];
  if (tr.stats.completed) return;

  const double t = sim_.now();
  const uav::Uav& a = node(tr.stats.from);
  const uav::Uav& b = node(tr.stats.to);
  const double d = geo::distance(a.position(), b.position());
  const double rel_speed = (a.state().vel - b.state().vel).norm();

  const int mcs_index = tr.rate_control.select_mcs(t);
  const phy::McsInfo& m = phy::mcs(mcs_index);

  const std::uint64_t remaining =
      tr.stats.payload_bytes_total - tr.stats.payload_bytes_delivered;
  const int payload_per_mpdu = cfg_.mpdu.payload_bits() / 8;
  const int backlog = static_cast<int>(std::min<std::uint64_t>(
      (remaining + payload_per_mpdu - 1) / payload_per_mpdu,
      static_cast<std::uint64_t>(cfg_.ampdu.max_subframes)));
  const int n = mac::subframes_for(cfg_.ampdu, cfg_.mpdu, m, cfg_.channel.width, cfg_.channel.gi,
                                   std::max(backlog, 1));

  const double snr_db = tr.channel.snr_db(t, d, rel_speed);
  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    const double mpdu_snr = snr_db + cfg_.per_mpdu_snr_jitter_db * rng_.gaussian();
    const double per = error_model_.packet_error_rate(m, mpdu_snr, cfg_.mpdu.mpdu_bits());
    if (!rng_.bernoulli(per)) ++delivered;
  }
  const double ba_per = error_model_.packet_error_rate(phy::mcs(0), snr_db, 32 * 8);
  if (rng_.bernoulli(ba_per)) delivered = 0;

  tr.stats.mpdus_attempted += static_cast<std::uint64_t>(n);
  tr.stats.mpdus_delivered += static_cast<std::uint64_t>(delivered);
  tr.stats.payload_bytes_delivered = std::min<std::uint64_t>(
      tr.stats.payload_bytes_total,
      tr.stats.payload_bytes_delivered +
          static_cast<std::uint64_t>(delivered) * static_cast<std::uint64_t>(payload_per_mpdu));
  tr.rate_control.report(t, mac::TxFeedback{mcs_index, n, delivered});

  if (tr.stats.payload_bytes_delivered >= tr.stats.payload_bytes_total) {
    tr.stats.completed = true;
    tr.stats.completed_t_s = t;
    if (tr.on_complete) tr.on_complete(tr.stats);
    return;
  }

  // Airtime of this exchange, stretched by DCF contention when several
  // transfers share the channel.
  double dur = mac::exchange_duration_s(cfg_.timing, cfg_.mpdu, m, cfg_.channel.width,
                                        cfg_.channel.gi, n, delivered == 0 ? 1 : 0);
  const int contenders = active_transfers();
  if (contenders > 1) {
    const double frame_s =
        mac::ampdu_duration_s(cfg_.mpdu, m, cfg_.channel.width, cfg_.channel.gi, n);
    const auto c = mac::analyze_contention(contenders, cfg_.timing, frame_s,
                                           mac::block_ack_duration_s(cfg_.channel.width));
    // Each transfer's effective service rate shrinks to the per-station
    // share; stretch the next exchange by its inverse (eff = 1 when alone).
    if (c.efficiency_vs_single > 1e-6) dur /= c.efficiency_vs_single;
  }
  // Total outage (nothing through, rock-bottom rate): back off and retry.
  if (delivered == 0 && mcs_index == 0) dur = std::max(dur, cfg_.stall_retry_s);

  sim_.schedule(dur, [this, id] { exchange(id); });
}

void AerialNetwork::run_until(double t_s) { sim_.run_until(t_s); }

}  // namespace skyferry::airnet
