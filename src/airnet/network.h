// Event-driven multi-UAV network co-simulation.
//
// LinkSimulator answers "what does one link deliver under a fixed
// geometry script"; AerialNetwork answers the system question: several
// UAVs flying their autopilot plans, pairwise 802.11n channels evaluated
// against the *live* positions, per-transfer rate control, and DCF
// contention when transfers overlap in the air. This is the substrate a
// downstream mission system would adopt; the examples and integration
// tests drive it end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mac/contention.h"
#include "mac/link.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "uav/uav.h"

namespace skyferry::airnet {

using NodeId = int;

struct NetworkConfig {
  double kinematics_dt_s{0.05};
  mac::MacTiming timing{};
  mac::AmpduPolicy ampdu{};
  mac::MpduFormat mpdu{};
  phy::ChannelConfig channel{phy::ChannelConfig::quadrocopter()};
  phy::ErrorModelConfig error{};
  double per_mpdu_snr_jitter_db{2.0};
  /// Transfers stall (and retry later) when the link falls below this
  /// delivery rate for an exchange — prevents spinning at zero rate.
  double stall_retry_s{0.5};
};

/// Live statistics of one batch transfer.
struct TransferStats {
  NodeId from{0};
  NodeId to{0};
  std::uint64_t payload_bytes_total{0};
  std::uint64_t payload_bytes_delivered{0};
  std::uint64_t mpdus_attempted{0};
  std::uint64_t mpdus_delivered{0};
  double started_t_s{0.0};
  double completed_t_s{0.0};
  bool completed{false};

  [[nodiscard]] double progress() const noexcept {
    return payload_bytes_total
               ? static_cast<double>(payload_bytes_delivered) / payload_bytes_total
               : 0.0;
  }
  [[nodiscard]] double loss_rate() const noexcept {
    return mpdus_attempted
               ? 1.0 - static_cast<double>(mpdus_delivered) / static_cast<double>(mpdus_attempted)
               : 0.0;
  }
};

using TransferId = int;
using TransferCallback = std::function<void(const TransferStats&)>;

class AerialNetwork {
 public:
  AerialNetwork(NetworkConfig cfg, std::uint64_t seed);
  ~AerialNetwork();

  AerialNetwork(const AerialNetwork&) = delete;
  AerialNetwork& operator=(const AerialNetwork&) = delete;

  /// Add a vehicle; its kinematics advance with the network clock.
  NodeId add_node(const uav::UavConfig& cfg);

  [[nodiscard]] uav::Uav& node(NodeId id);
  [[nodiscard]] const uav::Uav& node(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Distance between two nodes right now [m].
  [[nodiscard]] double distance(NodeId a, NodeId b) const;

  /// Start a reliable batch transfer from `from` to `to`; `on_complete`
  /// fires (once) when the last byte lands. Uses the vendor ARF rate
  /// control per transfer.
  TransferId start_transfer(NodeId from, NodeId to, const net::DataBatch& batch,
                            TransferCallback on_complete = nullptr);

  [[nodiscard]] const TransferStats& transfer(TransferId id) const;
  [[nodiscard]] int active_transfers() const noexcept;

  /// Advance the whole world (kinematics + MAC) to absolute time t.
  void run_until(double t_s);

  [[nodiscard]] double now() const noexcept { return sim_.now(); }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

 private:
  struct Transfer;

  void tick_kinematics();
  void exchange(TransferId id);

  NetworkConfig cfg_;
  std::uint64_t seed_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<uav::Uav>> nodes_;
  std::vector<std::unique_ptr<Transfer>> transfers_;
  phy::ErrorModel error_model_;
  sim::Rng rng_;
  bool ticking_{false};
};

}  // namespace skyferry::airnet
