#include "check/expect.h"

#include <algorithm>
#include <cmath>

#include "io/format.h"
#include "stats/ecdf.h"
#include "stats/quantile.h"

namespace skyferry::check {

namespace {

std::string num(double v) { return io::format_number(v); }

CheckResult pass(std::string name, std::string message) {
  return {true, std::move(name), std::move(message)};
}

CheckResult fail(std::string name, std::string message) {
  return {false, std::move(name), std::move(message)};
}

}  // namespace

double Tolerance::margin(double expected) const noexcept {
  return std::max({abs, rel * std::abs(expected), sigma * sd});
}

CheckResult Expect::check(double actual) const {
  if (!std::isfinite(actual)) {
    return fail(name_, "actual is not finite (expected " + num(expected_) + ")");
  }
  const double margin = tol_.margin(expected_);
  const double delta = std::abs(actual - expected_);
  const bool ok = tol_.is_exact() ? actual == expected_ : delta <= margin;
  std::string msg = "actual " + num(actual) + " vs expected " + num(expected_);
  if (tol_.is_exact()) {
    msg += " (exact)";
  } else {
    msg += " (|delta| " + num(delta) + " vs margin " + num(margin) + ")";
  }
  return ok ? pass(name_, std::move(msg)) : fail(name_, std::move(msg));
}

CheckResult OrderingExpect::check(std::vector<std::pair<std::string, double>> scored,
                                  bool ascending) const {
  std::stable_sort(scored.begin(), scored.end(), [&](const auto& a, const auto& b) {
    return ascending ? a.second < b.second : a.second > b.second;
  });
  std::vector<std::string> ranked;
  ranked.reserve(scored.size());
  for (auto& [label, value] : scored) ranked.push_back(std::move(label));
  return check_ranked(ranked);
}

CheckResult OrderingExpect::check_ranked(const std::vector<std::string>& actual) const {
  auto join = [](const std::vector<std::string>& v) {
    std::string s;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) s += " < ";
      s += v[i];
    }
    return s;
  };
  if (actual == expected_) return pass(name_, "order holds: " + join(actual));
  return fail(name_, "order flipped: expected [" + join(expected_) + "], got [" + join(actual) +
                         "]");
}

CurveExpect::CurveExpect(std::string name, std::vector<double> xs, std::vector<double> ys)
    : name_(std::move(name)), xs_(std::move(xs)), ys_(std::move(ys)) {}

CheckResult CurveExpect::monotone(Direction dir, double slack) const {
  if (ys_.size() < 2) return fail(name_, "monotonicity needs >= 2 points");
  const double sign = dir == Direction::kIncreasing ? 1.0 : -1.0;
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    const double step = sign * (ys_[i] - ys_[i - 1]);
    if (step < -slack) {
      const double x_prev = i - 1 < xs_.size() ? xs_[i - 1] : static_cast<double>(i - 1);
      const double x_here = i < xs_.size() ? xs_[i] : static_cast<double>(i);
      return fail(name_, std::string("not monotone ") +
                             (dir == Direction::kIncreasing ? "increasing" : "decreasing") +
                             ": y(" + num(x_prev) + ")=" + num(ys_[i - 1]) + " -> y(" +
                             num(x_here) + ")=" + num(ys_[i]) + " (slack " + num(slack) + ")");
    }
  }
  return pass(name_, std::string("monotone ") +
                         (dir == Direction::kIncreasing ? "increasing" : "decreasing") +
                         " over " + std::to_string(ys_.size()) + " points");
}

CheckResult CurveExpect::arg_extremum_in(double x_lo, double x_hi, bool minimum) const {
  if (xs_.empty() || xs_.size() != ys_.size())
    return fail(name_, "curve needs matching non-empty xs/ys");
  std::size_t arg = 0;
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    if (minimum ? ys_[i] < ys_[arg] : ys_[i] > ys_[arg]) arg = i;
  }
  const double x = xs_[arg];
  const char* what = minimum ? "argmin" : "argmax";
  std::string msg = std::string(what) + " at x=" + num(x) + " (y=" + num(ys_[arg]) +
                    "), window [" + num(x_lo) + ", " + num(x_hi) + "]";
  return (x >= x_lo && x <= x_hi) ? pass(name_, std::move(msg)) : fail(name_, std::move(msg));
}

CheckResult CurveExpect::argmin_in(double x_lo, double x_hi) const {
  return arg_extremum_in(x_lo, x_hi, true);
}

CheckResult CurveExpect::argmax_in(double x_lo, double x_hi) const {
  return arg_extremum_in(x_lo, x_hi, false);
}

CheckResult CurveExpect::crossover_in(const CurveExpect& other, double x_lo, double x_hi) const {
  if (xs_.size() != other.xs_.size() || xs_.size() != ys_.size() ||
      other.xs_.size() != other.ys_.size() || xs_.size() < 2)
    return fail(name_, "crossover needs two curves on one x grid (>= 2 points)");
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] != other.xs_[i]) return fail(name_, "crossover: x grids differ");
  }
  double found_x = std::nan("");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    const double d0 = ys_[i - 1] - other.ys_[i - 1];
    const double d1 = ys_[i] - other.ys_[i];
    if (d0 == 0.0) {
      found_x = xs_[i - 1];
    } else if (d0 * d1 < 0.0) {
      const double w = d0 / (d0 - d1);  // linear interpolation of the sign change
      found_x = xs_[i - 1] + w * (xs_[i] - xs_[i - 1]);
    } else {
      continue;
    }
    if (found_x >= x_lo && found_x <= x_hi)
      return pass(name_, "crossover at x=" + num(found_x) + ", window [" + num(x_lo) + ", " +
                             num(x_hi) + "]");
  }
  if (std::isnan(found_x))
    return fail(name_, "curves never cross (window [" + num(x_lo) + ", " + num(x_hi) + "])");
  return fail(name_, "crossover at x=" + num(found_x) + " outside window [" + num(x_lo) + ", " +
                         num(x_hi) + "]");
}

DistributionExpect::DistributionExpect(std::string name, std::vector<double> reference)
    : name_(std::move(name)), reference_(std::move(reference)) {
  std::erase_if(reference_, [](double v) { return !std::isfinite(v); });
  std::sort(reference_.begin(), reference_.end());
}

CheckResult DistributionExpect::ks(std::span<const double> sample, double alpha) const {
  if (reference_.empty() || sample.empty())
    return {false, name_, "KS test needs non-empty reference and sample"};
  const stats::Ecdf ref(reference_);
  const stats::Ecdf got(sample);
  const double d = ref.ks_distance(got);
  const double crit = ks_critical(alpha, reference_.size(), got.size());
  std::string msg = "KS distance " + num(d) + " vs critical " + num(crit) + " (alpha " +
                    num(alpha) + ", n_ref " + std::to_string(reference_.size()) + ", n " +
                    std::to_string(got.size()) + ")";
  return {d <= crit, name_, std::move(msg)};
}

CheckResult DistributionExpect::chi_square(std::span<const double> sample, int bins,
                                           double alpha) const {
  if (bins < 2) return {false, name_, "chi-square needs >= 2 bins"};
  if (reference_.size() < static_cast<std::size_t>(bins) || sample.empty())
    return {false, name_, "chi-square needs reference >= bins samples and a non-empty sample"};
  // Equiprobable bin edges from the reference quantiles.
  std::vector<double> edges;
  for (int b = 1; b < bins; ++b) {
    edges.push_back(stats::quantile_sorted(reference_, static_cast<double>(b) / bins));
  }
  std::vector<double> observed(static_cast<std::size_t>(bins), 0.0);
  std::size_t n = 0;
  for (const double v : sample) {
    if (!std::isfinite(v)) continue;
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    observed[static_cast<std::size_t>(it - edges.begin())] += 1.0;
    ++n;
  }
  if (n == 0) return {false, name_, "chi-square: sample has no finite values"};
  const double expected = static_cast<double>(n) / bins;
  double stat = 0.0;
  for (const double o : observed) stat += (o - expected) * (o - expected) / expected;
  const int dof = bins - 1;
  const double crit = chi_square_critical(alpha, dof);
  std::string msg = "chi-square " + num(stat) + " vs critical " + num(crit) + " (dof " +
                    std::to_string(dof) + ", alpha " + num(alpha) + ", n " + std::to_string(n) +
                    ")";
  return {stat <= crit, name_, std::move(msg)};
}

double normal_quantile(double p) noexcept {
  if (!(p > 0.0 && p < 1.0)) return std::nan("");
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double chi_square_critical(double alpha, int dof) noexcept {
  if (dof <= 0 || !(alpha > 0.0 && alpha < 1.0)) return std::nan("");
  // Wilson-Hilferty: chi2_q ~ dof * (1 - 2/(9 dof) + z_q sqrt(2/(9 dof)))^3.
  const double z = normal_quantile(1.0 - alpha);
  const double k = 2.0 / (9.0 * dof);
  const double t = 1.0 - k + z * std::sqrt(k);
  return dof * t * t * t;
}

double ks_critical(double alpha, std::size_t n, std::size_t m) noexcept {
  if (n == 0 || m == 0 || !(alpha > 0.0 && alpha < 1.0)) return std::nan("");
  const double c = std::sqrt(-0.5 * std::log(alpha / 2.0));
  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  return c * std::sqrt((nn + mm) / (nn * mm));
}

}  // namespace skyferry::check
