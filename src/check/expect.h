// Noise-aware comparators for validating stochastic experiment output
// against pinned expectations — the statistical-testing layer behind the
// golden paper-fidelity suite (ns-3 style: stochastic results are
// checked against tolerances and distributions, never exact floats).
//
//   Expect             scalar with absolute/relative/sigma tolerance
//   OrderingExpect     a pinned ranking of named alternatives
//   CurveExpect        monotonicity, argmin/argmax windows, crossovers
//   DistributionExpect KS / chi-square against committed samples
//
// Every check returns a CheckResult instead of asserting, so the same
// comparators serve gtest assertions (EXPECT_TRUE(r.ok) << r.message),
// the golden_check binary, and scripts/golden_regress.sh.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace skyferry::check {

/// Outcome of one comparison: pass/fail plus a human-readable account
/// of what was compared (both sides, the margin, the verdict).
struct CheckResult {
  bool ok{false};
  std::string name;
  std::string message;
};

/// Combined tolerance: a comparison passes when |actual - expected| is
/// within max(abs, rel*|expected|, sigma*sd). All-zero means exact.
struct Tolerance {
  double abs{0.0};    ///< absolute margin
  double rel{0.0};    ///< relative margin (fraction of |expected|)
  double sigma{0.0};  ///< multiples of `sd`
  double sd{0.0};     ///< the noise scale `sigma` multiplies

  [[nodiscard]] static Tolerance exact() noexcept { return {}; }
  [[nodiscard]] static Tolerance absolute(double a) noexcept { return {a, 0.0, 0.0, 0.0}; }
  [[nodiscard]] static Tolerance relative(double r) noexcept { return {0.0, r, 0.0, 0.0}; }
  [[nodiscard]] static Tolerance sigmas(double k, double sd) noexcept {
    return {0.0, 0.0, k, sd};
  }

  /// The margin granted around `expected`.
  [[nodiscard]] double margin(double expected) const noexcept;
  [[nodiscard]] bool is_exact() const noexcept {
    return abs == 0.0 && rel == 0.0 && (sigma == 0.0 || sd == 0.0);
  }
};

/// Scalar expectation.
class Expect {
 public:
  Expect(std::string name, double expected, Tolerance tol = {})
      : name_(std::move(name)), expected_(expected), tol_(tol) {}

  [[nodiscard]] CheckResult check(double actual) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double expected() const noexcept { return expected_; }
  [[nodiscard]] const Tolerance& tolerance() const noexcept { return tol_; }

 private:
  std::string name_;
  double expected_{0.0};
  Tolerance tol_;
};

/// A pinned ranking: the named alternatives must sort into exactly this
/// order. Scores are ranked ascending by default (first = smallest, the
/// winner for costs/delays); pass ascending=false for higher-is-better.
class OrderingExpect {
 public:
  OrderingExpect(std::string name, std::vector<std::string> expected_order)
      : name_(std::move(name)), expected_(std::move(expected_order)) {}

  /// Rank `scored` by value and compare against the expected order.
  [[nodiscard]] CheckResult check(std::vector<std::pair<std::string, double>> scored,
                                  bool ascending = true) const;

  /// Compare an already-ranked list of names.
  [[nodiscard]] CheckResult check_ranked(const std::vector<std::string>& actual) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::string>& expected_order() const noexcept {
    return expected_;
  }

 private:
  std::string name_;
  std::vector<std::string> expected_;
};

/// Shape checks over a sampled curve y(x). The slack parameters absorb
/// simulation noise: a "monotone" stochastic curve may jitter by less
/// than `slack` against the trend without failing.
class CurveExpect {
 public:
  CurveExpect(std::string name, std::vector<double> xs, std::vector<double> ys);

  enum class Direction { kIncreasing, kDecreasing };

  /// y moves in `dir` along x, allowing counter-trend jitter < slack.
  [[nodiscard]] CheckResult monotone(Direction dir, double slack = 0.0) const;

  /// argmin/argmax of y lies within [x_lo, x_hi] (inclusive).
  [[nodiscard]] CheckResult argmin_in(double x_lo, double x_hi) const;
  [[nodiscard]] CheckResult argmax_in(double x_lo, double x_hi) const;

  /// The two curves cross (sign change of this->y - other.y, linearly
  /// interpolated) at some x within [x_lo, x_hi]. Both curves must share
  /// this curve's x grid.
  [[nodiscard]] CheckResult crossover_in(const CurveExpect& other, double x_lo,
                                         double x_hi) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<double>& xs() const noexcept { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const noexcept { return ys_; }

 private:
  [[nodiscard]] CheckResult arg_extremum_in(double x_lo, double x_hi, bool minimum) const;

  std::string name_;
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Distribution equality against committed reference samples.
class DistributionExpect {
 public:
  DistributionExpect(std::string name, std::vector<double> reference);

  /// Two-sample Kolmogorov-Smirnov test at significance `alpha`
  /// (asymptotic critical value): fails when the KS distance exceeds
  /// c(alpha) * sqrt((n+m)/(n*m)).
  [[nodiscard]] CheckResult ks(std::span<const double> sample, double alpha = 1e-3) const;

  /// Chi-square GOF: bins the reference into `bins` equiprobable cells
  /// (by reference quantiles) and tests the sample's counts at `alpha`.
  [[nodiscard]] CheckResult chi_square(std::span<const double> sample, int bins = 8,
                                       double alpha = 1e-3) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<double>& reference() const noexcept { return reference_; }

 private:
  std::string name_;
  std::vector<double> reference_;  // sorted
};

// ---- statistical helpers (exposed for tests and reuse) ----------------------

/// Standard-normal quantile (Acklam's rational approximation, |err| < 1.2e-9).
[[nodiscard]] double normal_quantile(double p) noexcept;

/// Upper-tail chi-square critical value at significance `alpha` with
/// `dof` degrees of freedom (Wilson-Hilferty approximation).
[[nodiscard]] double chi_square_critical(double alpha, int dof) noexcept;

/// Two-sample KS critical distance at significance `alpha` for sample
/// sizes n and m (asymptotic: c(alpha)*sqrt((n+m)/(n*m))).
[[nodiscard]] double ks_critical(double alpha, std::size_t n, std::size_t m) noexcept;

}  // namespace skyferry::check
