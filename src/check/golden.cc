#include "check/golden.h"

#include <fstream>
#include <sstream>

#include "io/json.h"

namespace skyferry::check {

void GoldenFile::add_metric(std::string name, double value, Tolerance tol, std::string note) {
  metrics_.push_back({std::move(name), value, tol, std::move(note)});
}

void GoldenFile::add_ordering(std::string name, std::vector<std::string> ranked,
                              std::string note) {
  orderings_.push_back({std::move(name), std::move(ranked), std::move(note)});
}

void GoldenFile::add_samples(std::string name, std::vector<double> values, double ks_alpha,
                             std::string note) {
  samples_.push_back({std::move(name), std::move(values), ks_alpha, std::move(note)});
}

const GoldenMetric* GoldenFile::find_metric(std::string_view name) const noexcept {
  for (const auto& m : metrics_)
    if (m.name == name) return &m;
  return nullptr;
}

const GoldenOrdering* GoldenFile::find_ordering(std::string_view name) const noexcept {
  for (const auto& o : orderings_)
    if (o.name == name) return &o;
  return nullptr;
}

const GoldenSamples* GoldenFile::find_samples(std::string_view name) const noexcept {
  for (const auto& s : samples_)
    if (s.name == name) return &s;
  return nullptr;
}

io::Json GoldenFile::to_json() const {
  io::Json j = io::Json::object();
  j.set("schema", schema_);
  j.set("bench", bench_);

  io::Json replay = io::Json::object();
  replay.set("command", replay_command_);
  io::Json flags = io::Json::object();
  for (const auto& [k, v] : replay_flags_) flags.set(k, v);
  replay.set("flags", std::move(flags));
  j.set("replay", std::move(replay));

  io::Json metrics = io::Json::object();
  for (const auto& m : metrics_) {
    io::Json mj = io::Json::object();
    mj.set("value", m.value);
    if (m.tol.abs != 0.0) mj.set("abs", m.tol.abs);
    if (m.tol.rel != 0.0) mj.set("rel", m.tol.rel);
    if (m.tol.sigma != 0.0) {
      mj.set("sigma", m.tol.sigma);
      mj.set("sd", m.tol.sd);
    }
    if (!m.note.empty()) mj.set("note", m.note);
    metrics.set(m.name, std::move(mj));
  }
  j.set("metrics", std::move(metrics));

  io::Json orderings = io::Json::object();
  for (const auto& o : orderings_) {
    io::Json oj = io::Json::object();
    io::Json ranked = io::Json::array();
    for (const auto& r : o.ranked) ranked.push_back(r);
    oj.set("ranked", std::move(ranked));
    if (!o.note.empty()) oj.set("note", o.note);
    orderings.set(o.name, std::move(oj));
  }
  j.set("orderings", std::move(orderings));

  io::Json samples = io::Json::object();
  for (const auto& s : samples_) {
    io::Json sj = io::Json::object();
    io::Json values = io::Json::array();
    for (const double v : s.values) values.push_back(v);
    sj.set("values", std::move(values));
    sj.set("ks_alpha", s.ks_alpha);
    if (!s.note.empty()) sj.set("note", s.note);
    samples.set(s.name, std::move(sj));
  }
  j.set("samples", std::move(samples));
  return j;
}

bool GoldenFile::from_json(const io::Json& j, GoldenFile* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (!j.is_object()) return fail("golden: top level must be an object");
  const io::Json* schema = j.find("schema");
  if (!schema || !schema->is_number()) return fail("golden: missing numeric 'schema'");
  const int version = static_cast<int>(schema->as_number());
  if (version > kSchemaVersion)
    return fail("golden: schema " + std::to_string(version) + " is newer than supported " +
                std::to_string(kSchemaVersion));
  GoldenFile g;
  g.schema_ = version;
  if (const io::Json* bench = j.find("bench"); bench && bench->is_string())
    g.bench_ = bench->as_string();
  if (const io::Json* replay = j.find("replay"); replay && replay->is_object()) {
    if (const io::Json* cmd = replay->find("command"); cmd && cmd->is_string())
      g.replay_command_ = cmd->as_string();
    if (const io::Json* flags = replay->find("flags"); flags && flags->is_object()) {
      for (const auto& [k, v] : flags->members())
        g.replay_flags_.emplace_back(k, v.as_string());
    }
  }
  if (const io::Json* metrics = j.find("metrics"); metrics && metrics->is_object()) {
    for (const auto& [name, mj] : metrics->members()) {
      if (!mj.is_object()) return fail("golden: metric '" + name + "' must be an object");
      const io::Json* value = mj.find("value");
      if (!value || !value->is_number())
        return fail("golden: metric '" + name + "' missing numeric 'value'");
      GoldenMetric m;
      m.name = name;
      m.value = value->as_number();
      if (const io::Json* t = mj.find("abs")) m.tol.abs = t->as_number();
      if (const io::Json* t = mj.find("rel")) m.tol.rel = t->as_number();
      if (const io::Json* t = mj.find("sigma")) m.tol.sigma = t->as_number();
      if (const io::Json* t = mj.find("sd")) m.tol.sd = t->as_number();
      if (const io::Json* n = mj.find("note"); n && n->is_string()) m.note = n->as_string();
      g.metrics_.push_back(std::move(m));
    }
  }
  if (const io::Json* orderings = j.find("orderings"); orderings && orderings->is_object()) {
    for (const auto& [name, oj] : orderings->members()) {
      const io::Json* ranked = oj.is_object() ? oj.find("ranked") : nullptr;
      if (!ranked || !ranked->is_array())
        return fail("golden: ordering '" + name + "' missing 'ranked' array");
      GoldenOrdering o;
      o.name = name;
      for (const auto& r : ranked->items()) o.ranked.push_back(r.as_string());
      if (const io::Json* n = oj.find("note"); n && n->is_string()) o.note = n->as_string();
      g.orderings_.push_back(std::move(o));
    }
  }
  if (const io::Json* samples = j.find("samples"); samples && samples->is_object()) {
    for (const auto& [name, sj] : samples->members()) {
      const io::Json* values = sj.is_object() ? sj.find("values") : nullptr;
      if (!values || !values->is_array())
        return fail("golden: samples '" + name + "' missing 'values' array");
      GoldenSamples s;
      s.name = name;
      for (const auto& v : values->items()) s.values.push_back(v.as_number());
      if (const io::Json* a = sj.find("ks_alpha"); a && a->is_number())
        s.ks_alpha = a->as_number();
      if (const io::Json* n = sj.find("note"); n && n->is_string()) s.note = n->as_string();
      g.samples_.push_back(std::move(s));
    }
  }
  *out = std::move(g);
  return true;
}

bool GoldenFile::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json().dump(2);
  return static_cast<bool>(out);
}

bool GoldenFile::load(const std::string& path, GoldenFile* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  const auto j = io::Json::parse(buf.str(), &parse_error);
  if (!j) {
    if (error) *error = path + ": " + parse_error;
    return false;
  }
  if (!from_json(*j, out, error)) {
    if (error) *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::vector<CheckResult> compare_golden(const GoldenFile& golden, const GoldenFile& candidate) {
  std::vector<CheckResult> results;
  if (golden.schema() != candidate.schema()) {
    results.push_back({false, "schema",
                       "schema mismatch: golden " + std::to_string(golden.schema()) +
                           " vs candidate " + std::to_string(candidate.schema())});
  }
  if (!golden.bench().empty() && golden.bench() != candidate.bench()) {
    results.push_back({false, "bench",
                       "bench mismatch: golden '" + golden.bench() + "' vs candidate '" +
                           candidate.bench() + "'"});
  }

  for (const auto& m : golden.metrics()) {
    const GoldenMetric* c = candidate.find_metric(m.name);
    if (!c) {
      results.push_back({false, m.name, "metric missing from candidate run"});
      continue;
    }
    CheckResult r = Expect(m.name, m.value, m.tol).check(c->value);
    if (!m.note.empty()) r.message += " [" + m.note + "]";
    results.push_back(std::move(r));
  }
  for (const auto& o : golden.orderings()) {
    const GoldenOrdering* c = candidate.find_ordering(o.name);
    if (!c) {
      results.push_back({false, o.name, "ordering missing from candidate run"});
      continue;
    }
    CheckResult r = OrderingExpect(o.name, o.ranked).check_ranked(c->ranked);
    if (!o.note.empty()) r.message += " [" + o.note + "]";
    results.push_back(std::move(r));
  }
  for (const auto& s : golden.samples()) {
    const GoldenSamples* c = candidate.find_samples(s.name);
    if (!c) {
      results.push_back({false, s.name, "samples missing from candidate run"});
      continue;
    }
    results.push_back(DistributionExpect(s.name, s.values).ks(c->values, s.ks_alpha));
  }

  // Entries the candidate has but the golden does not: the golden is
  // stale — a new claim was added without re-pinning.
  for (const auto& m : candidate.metrics()) {
    if (!golden.find_metric(m.name))
      results.push_back(
          {false, m.name, "metric absent from golden (rerun golden_regress.sh --update)"});
  }
  for (const auto& o : candidate.orderings()) {
    if (!golden.find_ordering(o.name))
      results.push_back(
          {false, o.name, "ordering absent from golden (rerun golden_regress.sh --update)"});
  }
  for (const auto& s : candidate.samples()) {
    if (!golden.find_samples(s.name))
      results.push_back(
          {false, s.name, "samples absent from golden (rerun golden_regress.sh --update)"});
  }
  return results;
}

}  // namespace skyferry::check
