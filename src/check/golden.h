// GoldenFile: the committed, machine-checkable record of what a bench
// reproduces — scalar metrics with their noise tolerances, pinned
// orderings, and reference sample sets — plus the replay header (exact
// seed/threads/flags) that produced it. `compare_golden` re-evaluates a
// candidate run against the committed file using the *golden's*
// tolerances, so every paper-shape claim in EXPERIMENTS.md is an
// enforced invariant instead of prose.
//
// Schema (versioned, JSON):
//   {
//     "schema": 1,
//     "bench": "fig1_strategy_curves",
//     "replay": {"command": "fig1_strategy_curves --seed 42", "flags": {...}},
//     "metrics":   {"name": {"value": 18.2, "rel": 0.1, "note": "..."}},
//     "orderings": {"name": {"ranked": ["d=40", "d=60"], "note": "..."}},
//     "samples":   {"name": {"values": [...], "ks_alpha": 0.001}}
//   }
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/expect.h"

namespace skyferry::io {
class Json;
}  // namespace skyferry::io

namespace skyferry::check {

struct GoldenMetric {
  std::string name;
  double value{0.0};
  Tolerance tol;
  std::string note;
};

struct GoldenOrdering {
  std::string name;
  std::vector<std::string> ranked;
  std::string note;
};

struct GoldenSamples {
  std::string name;
  std::vector<double> values;
  double ks_alpha{1e-3};  ///< significance for the KS comparison
  std::string note;
};

class GoldenFile {
 public:
  static constexpr int kSchemaVersion = 1;

  GoldenFile() = default;
  explicit GoldenFile(std::string bench) : bench_(std::move(bench)) {}

  // ---- building -------------------------------------------------------------
  void set_replay(std::string command,
                  std::vector<std::pair<std::string, std::string>> flags) {
    replay_command_ = std::move(command);
    replay_flags_ = std::move(flags);
  }
  void add_metric(std::string name, double value, Tolerance tol = {}, std::string note = {});
  void add_ordering(std::string name, std::vector<std::string> ranked, std::string note = {});
  void add_samples(std::string name, std::vector<double> values, double ks_alpha = 1e-3,
                   std::string note = {});

  // ---- access ---------------------------------------------------------------
  [[nodiscard]] int schema() const noexcept { return schema_; }
  [[nodiscard]] const std::string& bench() const noexcept { return bench_; }
  [[nodiscard]] const std::string& replay_command() const noexcept { return replay_command_; }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& replay_flags()
      const noexcept {
    return replay_flags_;
  }
  [[nodiscard]] const std::vector<GoldenMetric>& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const std::vector<GoldenOrdering>& orderings() const noexcept {
    return orderings_;
  }
  [[nodiscard]] const std::vector<GoldenSamples>& samples() const noexcept { return samples_; }

  [[nodiscard]] const GoldenMetric* find_metric(std::string_view name) const noexcept;
  [[nodiscard]] const GoldenOrdering* find_ordering(std::string_view name) const noexcept;
  [[nodiscard]] const GoldenSamples* find_samples(std::string_view name) const noexcept;

  // ---- (de)serialization ----------------------------------------------------
  [[nodiscard]] io::Json to_json() const;
  /// Parse; on failure returns false and sets `error`. A schema version
  /// newer than kSchemaVersion is an error (older readers must not
  /// silently misread newer files).
  [[nodiscard]] static bool from_json(const io::Json& j, GoldenFile* out, std::string* error);

  /// File I/O convenience (pretty-printed, trailing newline).
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static bool load(const std::string& path, GoldenFile* out, std::string* error);

 private:
  int schema_{kSchemaVersion};
  std::string bench_;
  std::string replay_command_;
  std::vector<std::pair<std::string, std::string>> replay_flags_;
  std::vector<GoldenMetric> metrics_;
  std::vector<GoldenOrdering> orderings_;
  std::vector<GoldenSamples> samples_;
};

/// Compare a candidate run against the committed golden, metric by
/// metric, using the golden's tolerances. Produces one CheckResult per
/// golden entry, plus failures for entries missing on either side (a
/// candidate metric absent from the golden means the golden is stale —
/// rerun scripts/golden_regress.sh --update).
[[nodiscard]] std::vector<CheckResult> compare_golden(const GoldenFile& golden,
                                                      const GoldenFile& candidate);

}  // namespace skyferry::check
