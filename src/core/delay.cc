#include "core/delay.h"

#include <algorithm>

namespace skyferry::core {

double CommDelayModel::tship_s(double d_m) const noexcept {
  if (d_m >= p_.d0_m) return 0.0;
  return (p_.d0_m - d_m) / p_.speed_mps;
}

double CommDelayModel::ttx_s(double d_m) const noexcept {
  const double d = std::max(d_m, p_.min_distance_m);
  const double s = model_.throughput_bps(d);
  if (s <= 0.0) return kInfiniteDelay;
  return p_.mdata_bytes * 8.0 / s;
}

}  // namespace skyferry::core
