// Communication-delay model (paper Sec. 2.2):
//   Cdelay(d) = Tship(d) + Ttx(d)
//   Tship(d)  = (d0 - d) / v          time to fly to the transmit position
//   Ttx(d)    = Mdata / s(d)          time to push the batch through s(d)
#pragma once

#include <limits>

#include "core/throughput_model.h"

namespace skyferry::core {

/// Parameters of one delivery decision.
struct DeliveryParams {
  double d0_m{0.0};        ///< distance at which the link came in range
  double speed_mps{1.0};   ///< UAV cruise speed v > 0
  double mdata_bytes{0.0}; ///< batch size Mdata > 0
  double min_distance_m{20.0};  ///< anti-collision floor for d
};

class CommDelayModel {
 public:
  /// The throughput model must outlive this object.
  CommDelayModel(const ThroughputModel& model, DeliveryParams params) noexcept
      : model_(model), p_(params) {}

  /// Shipping time [s] to distance d (0 when d >= d0).
  [[nodiscard]] double tship_s(double d_m) const noexcept;

  /// Transmission time [s] at distance d; +inf when s(d) == 0.
  [[nodiscard]] double ttx_s(double d_m) const noexcept;

  /// Total communication delay [s].
  [[nodiscard]] double cdelay_s(double d_m) const noexcept { return tship_s(d_m) + ttx_s(d_m); }

  [[nodiscard]] const DeliveryParams& params() const noexcept { return p_; }
  [[nodiscard]] const ThroughputModel& model() const noexcept { return model_; }

  static constexpr double kInfiniteDelay = std::numeric_limits<double>::infinity();

 private:
  const ThroughputModel& model_;
  DeliveryParams p_;
};

}  // namespace skyferry::core
