#include "core/joint_optimizer.h"

#include <algorithm>

#include "uav/battery.h"
#include "uav/failure.h"

namespace skyferry::core {

double rho_for_speed(const uav::PlatformSpec& platform, double speed_mps) noexcept {
  const uav::Battery battery(platform);
  const double v = std::max(speed_mps, 1e-3);
  const double range_m = v * platform.battery_autonomy_s / battery.drain_factor(v);
  return range_m > 0.0 ? 1.0 / range_m : 0.0;
}

JointOptimizeResult optimize_joint(const ThroughputModel& model,
                                   const uav::PlatformSpec& platform,
                                   const DeliveryParams& params, JointOptimizeOptions opts) {
  JointOptimizeResult best;
  best.utility = -1.0;

  const double v_lo = std::max({opts.min_speed_mps, platform.min_speed_mps, 1e-3});
  const double v_hi = std::max(platform.max_speed_mps, v_lo + 1e-3);
  const int n = std::max(opts.speed_grid_points, 2);

  for (int i = 0; i < n; ++i) {
    const double v = v_lo + (v_hi - v_lo) * i / (n - 1);
    DeliveryParams p = params;
    p.speed_mps = v;
    const uav::FailureModel failure(rho_for_speed(platform, v));
    const CommDelayModel delay(model, p);
    const UtilityFunction u(delay, failure);
    const OptimizeResult r = optimize(u, opts.distance_opts);
    best.evaluations += r.evaluations;
    if (r.utility > best.utility) {
      best.utility = r.utility;
      best.d_opt_m = r.d_opt_m;
      best.v_opt_mps = v;
      best.cdelay_s = r.cdelay_s;
      best.rho_at_v = failure.rho();
      best.discount = r.discount;
      best.boundary = r.boundary;
    }
  }

  // Cruise-speed baseline for comparison.
  DeliveryParams cruise = params;
  cruise.speed_mps = platform.cruise_speed_mps;
  const uav::FailureModel cruise_failure(rho_for_speed(platform, platform.cruise_speed_mps));
  const CommDelayModel cruise_delay(model, cruise);
  const UtilityFunction cruise_u(cruise_delay, cruise_failure);
  best.cruise_baseline = optimize(cruise_u, opts.distance_opts);
  return best;
}

}  // namespace skyferry::core
