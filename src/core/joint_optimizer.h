// Joint distance + speed optimization — the paper's "exploiting new
// dimensions of the optimization problem" extension (Sec. 7).
//
// The base model treats the approach speed v as a given. But v is a
// control input too, and it cuts both ways: flying faster shortens
// Tship, yet burns battery faster, which *raises* the per-meter failure
// rate rho(v) = 1/range(v) = drain_factor(v) / (v * T_battery). The
// joint optimizer maximizes U(d, v) = exp(-rho(v)(d0-d)) / Cdelay(d, v)
// over both the transmit distance and the approach speed.
#pragma once

#include "core/optimizer.h"
#include "uav/platform.h"

namespace skyferry::core {

struct JointOptimizeOptions {
  int speed_grid_points{64};
  OptimizeOptions distance_opts{};
  /// Lower speed bound [m/s]; platform stall speed is also honored.
  double min_speed_mps{0.5};
};

struct JointOptimizeResult {
  double d_opt_m{0.0};
  double v_opt_mps{0.0};
  double utility{0.0};
  double cdelay_s{0.0};
  double rho_at_v{0.0};
  /// Survival probability and interval classification of the winning
  /// (d, v) — the inner optimizer's decomposition at v_opt, carried so
  /// the decision service can serve joint answers with the same fields
  /// as fixed-speed ones.
  double discount{0.0};
  Boundary boundary{Boundary::kInterior};
  /// Utility evaluations summed over the whole speed grid.
  int evaluations{0};
  /// The fixed-speed result at the platform's cruise speed, for
  /// comparison (what the base model would have chosen).
  OptimizeResult cruise_baseline{};
};

/// Battery-derived failure rate at a commanded speed [1/m].
[[nodiscard]] double rho_for_speed(const uav::PlatformSpec& platform, double speed_mps) noexcept;

/// Maximize U(d, v) for a delivery on `platform`. `params.speed_mps` is
/// ignored (it is the optimization variable); all other fields are used.
[[nodiscard]] JointOptimizeResult optimize_joint(const ThroughputModel& model,
                                                 const uav::PlatformSpec& platform,
                                                 const DeliveryParams& params,
                                                 JointOptimizeOptions opts = {});

}  // namespace skyferry::core
