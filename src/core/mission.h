// Whole-mission planning: sectors, sweeps, and repeated rendezvous.
//
// The paper notes that "collection and subsequent communication can
// happen multiple times before the mission ends" (Sec. 2.2) and leaves
// holistic mission/communication planning as future work (Sec. 5).
// MissionPlanner does the tractable version: decompose the area into
// per-UAV sectors, estimate each sweep, run the delayed-gratification
// decision for every delivery round, and account battery feasibility.
#pragma once

#include <string>
#include <vector>

#include "core/planner.h"
#include "ctrl/sector.h"
#include "uav/platform.h"

namespace skyferry::core {

struct MissionConfig {
  double area_width_m{200.0};
  double area_height_m{200.0};
  int uav_count{2};                 ///< scouts, one sector each
  double survey_altitude_m{10.0};
  ctrl::CameraModel camera{};
  uav::PlatformSpec platform{uav::PlatformSpec::arducopter()};
  double rho_per_m{2.46e-4};
  /// Distance to the collector/relay when each batch is ready.
  double rendezvous_d0_m{100.0};
  double min_distance_m{20.0};
  /// Deliver after every sweep of this many sub-batches (1 = deliver the
  /// whole sector's data at once; k splits the sector into k rounds).
  int delivery_rounds_per_sector{1};
};

/// One delivery round of one sector.
struct RendezvousPlan {
  int sector_index{0};
  int round{0};
  double batch_bytes{0.0};
  double sweep_time_s{0.0};     ///< collection time for this round
  Decision decision{};          ///< where/how to transmit
  double round_trip_time_s{0.0};  ///< ferry out + transmit + return to sector
};

struct SectorMissionPlan {
  int sector_index{0};
  std::vector<RendezvousPlan> rounds;
  double total_time_s{0.0};
  double battery_time_budget_s{0.0};
  bool battery_feasible{false};
  /// Probability that every round's approach survives (independent
  /// exponential legs multiply).
  double mission_delivery_probability{1.0};
  /// Orphaned area [m^2] this sector absorbed from a crashed scout
  /// (recovery re-plan only; 0 in the nominal plan).
  double absorbed_orphan_area_m2{0.0};
};

struct MissionPlan {
  std::vector<SectorMissionPlan> sectors;
  double makespan_s{0.0};  ///< slowest sector's total time
  double total_data_mb{0.0};
  bool feasible{false};
};

class MissionPlanner {
 public:
  /// The throughput model must outlive the planner.
  MissionPlanner(const ThroughputModel& model, MissionConfig cfg) noexcept
      : model_(model), cfg_(cfg) {}

  [[nodiscard]] MissionPlan plan() const;

  /// Recovery re-plan after a scout crash: the crashed scout had swept
  /// `completed_fraction` of its sector; the unswept remainder is absorbed
  /// by the least-loaded survivor (its sector grows by the orphaned area
  /// and its now-or-later decisions are re-run). With no survivors the
  /// returned plan is infeasible and empty.
  [[nodiscard]] MissionPlan replan_after_crash(int crashed_sector_index,
                                               double completed_fraction) const;

  [[nodiscard]] const MissionConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] std::vector<ctrl::Sector> make_grid() const;
  [[nodiscard]] SectorMissionPlan plan_sector(const ctrl::Sector& sector, int index) const;

  const ThroughputModel& model_;
  MissionConfig cfg_;
};

}  // namespace skyferry::core
