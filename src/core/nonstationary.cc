#include "core/nonstationary.h"

#include <algorithm>
#include <cmath>

namespace skyferry::core {

RhoProfile constant_rho(double rho) {
  return [rho](double) { return rho; };
}

RhoProfile two_zone_rho(double far_rho, double near_rho, double boundary_m) {
  return [=](double x) { return x < boundary_m ? near_rho : far_rho; };
}

RhoProfile linear_rho(double a, double b) {
  return [=](double x) { return std::max(a + b * x, 0.0); };
}

double path_survival(const RhoProfile& rho, double d0_m, double d_m, double step_m) {
  if (d_m >= d0_m) return 1.0;
  double integral = 0.0;
  const double lo = d_m;
  const double hi = d0_m;
  const int n = std::max(1, static_cast<int>(std::ceil((hi - lo) / step_m)));
  const double h = (hi - lo) / n;
  for (int i = 0; i < n; ++i) {
    integral += rho(lo + (i + 0.5) * h) * h;  // midpoint rule
  }
  return std::exp(-integral);
}

double nonstationary_utility(const CommDelayModel& delay, const RhoProfile& rho, double d_m) {
  const double c = delay.cdelay_s(d_m);
  if (!(c > 0.0) || !std::isfinite(c)) return 0.0;
  return path_survival(rho, delay.params().d0_m, d_m) / c;
}

NonstationaryResult optimize_nonstationary(const CommDelayModel& delay, const RhoProfile& rho,
                                           int grid_points) {
  NonstationaryResult best;
  const double lo = delay.params().min_distance_m;
  const double hi = delay.params().d0_m;
  const int n = std::max(grid_points, 2);
  for (int i = 0; i < n; ++i) {
    const double d = lo + (hi - lo) * i / (n - 1);
    const double u = nonstationary_utility(delay, rho, d);
    if (u > best.utility) {
      best.utility = u;
      best.d_opt_m = d;
    }
  }
  best.survival = path_survival(rho, hi, best.d_opt_m);
  best.cdelay_s = delay.cdelay_s(best.d_opt_m);
  return best;
}

}  // namespace skyferry::core
