// Non-stationary failure rates — the paper's Sec. 4 caveat: "Different
// results are expected, e.g., for a non-stationary failure rate", and
// its conclusion asks for "a specific failure model".
//
// Here rho varies along the approach path: rho(x) as a function of the
// distance-to-peer x, so the survival of the leg from d0 down to d is
// delta(d) = exp(-∫_d^{d0} rho(x) dx). A rising rho near the peer
// (obstacle-rich landing zone, downwash turbulence near a hovering
// receiver) breaks the stationarity that made the base optimum
// path-independent — exactly the regime the paper flags.
#pragma once

#include <functional>
#include <vector>

#include "core/delay.h"

namespace skyferry::core {

/// rho(x): failure rate [1/m] at distance-to-peer x [m].
using RhoProfile = std::function<double(double x_m)>;

/// Constant profile (reduces to the paper's stationary model).
[[nodiscard]] RhoProfile constant_rho(double rho);

/// Two-zone profile: `far_rho` beyond `boundary_m`, `near_rho` inside —
/// the "hazardous close approach" model.
[[nodiscard]] RhoProfile two_zone_rho(double far_rho, double near_rho, double boundary_m);

/// Linear-in-x profile clamped at >= 0: rho(x) = a + b*x.
[[nodiscard]] RhoProfile linear_rho(double a, double b);

/// Non-stationary discount: delta(d) = exp(-∫_d^{d0} rho(x) dx),
/// integrated with the midpoint rule at `step_m` resolution.
[[nodiscard]] double path_survival(const RhoProfile& rho, double d0_m, double d_m,
                                   double step_m = 0.5);

/// Utility and optimum under a non-stationary failure profile.
struct NonstationaryResult {
  double d_opt_m{0.0};
  double utility{0.0};
  double survival{0.0};
  double cdelay_s{0.0};
};

[[nodiscard]] double nonstationary_utility(const CommDelayModel& delay, const RhoProfile& rho,
                                           double d_m);

[[nodiscard]] NonstationaryResult optimize_nonstationary(const CommDelayModel& delay,
                                                         const RhoProfile& rho,
                                                         int grid_points = 600);

}  // namespace skyferry::core
