#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

namespace skyferry::core {
namespace {

OptimizeResult finish(const UtilityFunction& u, double d, int evals) {
  OptimizeResult r;
  const UtilityPoint p = u.evaluate(d);
  r.d_opt_m = d;
  r.utility = p.utility;
  r.cdelay_s = p.cdelay_s;
  r.discount = p.discount;
  const double lo = u.delay().params().min_distance_m;
  const double hi = u.delay().params().d0_m;
  const double eps = 1e-6 * std::max(hi - lo, 1.0);
  // In the degenerate hi <= lo interval both ends coincide; classify as
  // transmit-now, matching the precedence the planner always applied.
  if (d >= hi - eps) {
    r.boundary = Boundary::kTransmitNow;
  } else if (d <= lo + eps) {
    r.boundary = Boundary::kAtFloor;
  } else {
    r.boundary = Boundary::kInterior;
  }
  r.evaluations = evals;
  return r;
}

// Shared search: the golden_grid_search schedule from the header. `f`
// is the scalar objective being maximized (the plain paper utility for
// optimize(), an exposure-weighted variant for optimize_objective());
// the decomposition fields of the result always come from `u` via
// finish().
template <class F>
OptimizeResult search(const UtilityFunction& u, F&& f, OptimizeOptions opt, double* best_val) {
  const double lo = u.delay().params().min_distance_m;
  const double hi = u.delay().params().d0_m;
  const ScalarSearchResult s = golden_grid_search(lo, hi, f, opt);
  if (best_val) *best_val = s.val;
  return finish(u, s.d, s.evals);
}

}  // namespace

const char* to_string(Boundary b) noexcept {
  switch (b) {
    case Boundary::kInterior:
      return "interior";
    case Boundary::kTransmitNow:
      return "transmit-now";
    case Boundary::kAtFloor:
      return "at-floor";
  }
  return "?";
}

OptimizeResult optimize(const UtilityFunction& u, OptimizeOptions opt) {
  return search(u, [&u](double d) { return u(d); }, opt, nullptr);
}

OptimizeResult optimize_objective(const UtilityFunction& base,
                                  const std::function<double(double)>& objective,
                                  OptimizeOptions opt) {
  double best = 0.0;
  OptimizeResult r = search(base, [&objective](double d) { return objective(d); }, opt, &best);
  r.utility = best;  // report the objective actually maximized, not base U
  return r;
}

OptimizeResult optimize_brute_force(const UtilityFunction& u, int points) {
  const double lo = u.delay().params().min_distance_m;
  const double hi = u.delay().params().d0_m;
  double best_d = lo;
  double best_u = -1.0;
  const int n = std::max(points, 2);
  for (int i = 0; i < n; ++i) {
    const double d = lo + (hi - lo) * i / (n - 1);
    const double val = u(d);
    if (val > best_u) {
      best_u = val;
      best_d = d;
    }
  }
  return finish(u, best_d, n);
}

}  // namespace skyferry::core
