#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

namespace skyferry::core {
namespace {

constexpr double kGolden = 0.6180339887498949;  // 1/phi

OptimizeResult finish(const UtilityFunction& u, double d, int evals) {
  OptimizeResult r;
  const UtilityPoint p = u.evaluate(d);
  r.d_opt_m = d;
  r.utility = p.utility;
  r.cdelay_s = p.cdelay_s;
  r.discount = p.discount;
  const double lo = u.delay().params().min_distance_m;
  const double hi = u.delay().params().d0_m;
  const double eps = 1e-6 * std::max(hi - lo, 1.0);
  // In the degenerate hi <= lo interval both ends coincide; classify as
  // transmit-now, matching the precedence the planner always applied.
  if (d >= hi - eps) {
    r.boundary = Boundary::kTransmitNow;
  } else if (d <= lo + eps) {
    r.boundary = Boundary::kAtFloor;
  } else {
    r.boundary = Boundary::kInterior;
  }
  r.evaluations = evals;
  return r;
}

// Shared search: coarse grid scan, then golden-section refinement in the
// best bracket. `f` is the scalar objective being maximized (the plain
// paper utility for optimize(), an exposure-weighted variant for
// optimize_objective()); the decomposition fields of the result always
// come from `u` via finish().
template <class F>
OptimizeResult search(const UtilityFunction& u, F&& f, OptimizeOptions opt, double* best_val) {
  const double lo = u.delay().params().min_distance_m;
  const double hi = u.delay().params().d0_m;
  int evals = 0;

  if (hi <= lo) {
    if (best_val) *best_val = f(hi);
    return finish(u, hi, 1);
  }

  // Stage 1: coarse grid scan.
  const int n = std::max(opt.grid_points, 8);
  double best_d = lo;
  double best_u = -1.0;
  int best_i = 0;
  for (int i = 0; i < n; ++i) {
    const double d = lo + (hi - lo) * i / (n - 1);
    const double val = f(d);
    ++evals;
    if (val > best_u) {
      best_u = val;
      best_d = d;
      best_i = i;
    }
  }

  // Stage 2: golden-section refinement within the neighbors of the best
  // grid point (U is unimodal there even if globally it is not).
  double a = lo + (hi - lo) * std::max(best_i - 1, 0) / (n - 1);
  double b = lo + (hi - lo) * std::min(best_i + 1, n - 1) / (n - 1);
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  evals += 2;
  for (int i = 0; i < opt.max_refine_iters && (b - a) > opt.tolerance_m; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = f(x1);
    }
    ++evals;
  }
  const double mid = 0.5 * (a + b);
  // Keep whichever of {grid best, refined mid} is actually better.
  const double refined = f(mid);
  ++evals;
  const bool take_mid = refined >= best_u;
  if (best_val) *best_val = take_mid ? refined : best_u;
  return finish(u, take_mid ? mid : best_d, evals);
}

}  // namespace

const char* to_string(Boundary b) noexcept {
  switch (b) {
    case Boundary::kInterior:
      return "interior";
    case Boundary::kTransmitNow:
      return "transmit-now";
    case Boundary::kAtFloor:
      return "at-floor";
  }
  return "?";
}

OptimizeResult optimize(const UtilityFunction& u, OptimizeOptions opt) {
  return search(u, [&u](double d) { return u(d); }, opt, nullptr);
}

OptimizeResult optimize_objective(const UtilityFunction& base,
                                  const std::function<double(double)>& objective,
                                  OptimizeOptions opt) {
  double best = 0.0;
  OptimizeResult r = search(base, [&objective](double d) { return objective(d); }, opt, &best);
  r.utility = best;  // report the objective actually maximized, not base U
  return r;
}

OptimizeResult optimize_brute_force(const UtilityFunction& u, int points) {
  const double lo = u.delay().params().min_distance_m;
  const double hi = u.delay().params().d0_m;
  double best_d = lo;
  double best_u = -1.0;
  const int n = std::max(points, 2);
  for (int i = 0; i < n; ++i) {
    const double d = lo + (hi - lo) * i / (n - 1);
    const double val = u(d);
    if (val > best_u) {
      best_u = val;
      best_d = d;
    }
  }
  return finish(u, best_d, n);
}

}  // namespace skyferry::core
