// Solver for the paper's Eq. (2): d_opt = argmax U(d), s.t.
// d_min <= d <= d0. U is concave for small rho but not in general, so we
// grid-scan first and refine the best bracket with golden-section search.
#pragma once

#include "core/utility.h"

namespace skyferry::core {

struct OptimizeOptions {
  int grid_points{256};
  double tolerance_m{0.01};
  int max_refine_iters{80};
};

struct OptimizeResult {
  double d_opt_m{0.0};
  double utility{0.0};
  double cdelay_s{0.0};
  double discount{0.0};
  /// True when the optimum is strictly inside (d_min, d0): the UAV should
  /// move before transmitting but not all the way to the floor.
  bool interior{false};
  /// True when d_opt == d0 (transmit immediately).
  bool transmit_now{false};
  /// True when d_opt == d_min (move to the anti-collision floor).
  bool at_floor{false};
  int evaluations{0};
};

/// Maximize a utility function over [d_min, d0].
[[nodiscard]] OptimizeResult optimize(const UtilityFunction& u, OptimizeOptions opt = {});

/// Brute-force argmax on a fine grid (reference implementation used by
/// the property tests to validate `optimize`).
[[nodiscard]] OptimizeResult optimize_brute_force(const UtilityFunction& u, int points = 20000);

}  // namespace skyferry::core
