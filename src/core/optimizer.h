// Solver for the paper's Eq. (2): d_opt = argmax U(d), s.t.
// d_min <= d <= d0. U is concave for small rho but not in general, so we
// grid-scan first and refine the best bracket with golden-section search.
#pragma once

#include <functional>

#include "core/utility.h"

namespace skyferry::core {

struct OptimizeOptions {
  int grid_points{256};
  double tolerance_m{0.01};
  int max_refine_iters{80};
};

/// Where the optimum landed relative to the feasible interval [d_min, d0].
/// Exactly one of the three holds — which the former trio of mutually
/// exclusive bools (`interior`/`transmit_now`/`at_floor`) could not
/// express in the type.
enum class Boundary {
  /// Strictly inside (d_min, d0): move before transmitting, but not all
  /// the way to the floor.
  kInterior,
  /// d_opt == d0: transmit immediately.
  kTransmitNow,
  /// d_opt == d_min: ship to the anti-collision floor first.
  kAtFloor,
};

[[nodiscard]] const char* to_string(Boundary b) noexcept;

struct OptimizeResult {
  double d_opt_m{0.0};
  double utility{0.0};
  double cdelay_s{0.0};
  double discount{0.0};
  Boundary boundary{Boundary::kInterior};
  int evaluations{0};
};

/// Maximize a utility function over [d_min, d0].
[[nodiscard]] OptimizeResult optimize(const UtilityFunction& u, OptimizeOptions opt = {});

/// Maximize an arbitrary objective over the same [d_min, d0] interval as
/// `base`, with the same grid-scan + golden-section schedule as
/// optimize(). The result's `utility` is the objective value at the
/// optimum; `cdelay_s`/`discount` still describe `base` there. Used by
/// the mid-flight re-decision policy, whose objective folds the
/// transfer-loiter failure exposure into the paper's approach-only U(d).
[[nodiscard]] OptimizeResult optimize_objective(const UtilityFunction& base,
                                                const std::function<double(double)>& objective,
                                                OptimizeOptions opt = {});

/// Brute-force argmax on a fine grid (reference implementation used by
/// the property tests to validate `optimize`).
[[nodiscard]] OptimizeResult optimize_brute_force(const UtilityFunction& u, int points = 20000);

}  // namespace skyferry::core
