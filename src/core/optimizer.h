// Solver for the paper's Eq. (2): d_opt = argmax U(d), s.t.
// d_min <= d <= d0. U is concave for small rho but not in general, so we
// grid-scan first and refine the best bracket with golden-section search.
#pragma once

#include <algorithm>
#include <functional>

#include "core/utility.h"

namespace skyferry::core {

struct OptimizeOptions {
  int grid_points{256};
  double tolerance_m{0.01};
  int max_refine_iters{80};
};

/// Scalar outcome of the shared search schedule below.
struct ScalarSearchResult {
  double d{0.0};    ///< argmax
  double val{0.0};  ///< objective value at d
  int evals{0};     ///< objective evaluations spent
};

namespace detail {
inline constexpr double kGoldenRatioInv = 0.6180339887498949;  // 1/phi
}

/// The exact search schedule behind optimize(): coarse grid scan over
/// [lo, hi], golden-section refinement inside the best grid bracket,
/// keep the better of {grid best, refined mid}. Header-level template so
/// every maximizer that promises bit-identical decisions against
/// optimize() — core::optimize itself, core::optimize_objective,
/// link::optimize_multilink — instantiates this single definition and
/// evaluates the identical FP expressions at the identical points.
/// Degenerate hi <= lo intervals collapse to one evaluation at hi.
template <class F>
ScalarSearchResult golden_grid_search(double lo, double hi, F&& f, const OptimizeOptions& opt) {
  ScalarSearchResult out;
  if (hi <= lo) {
    out.d = hi;
    out.val = f(hi);
    out.evals = 1;
    return out;
  }

  // Stage 1: coarse grid scan.
  const int n = std::max(opt.grid_points, 8);
  double best_d = lo;
  double best_u = -1.0;
  int best_i = 0;
  int evals = 0;
  for (int i = 0; i < n; ++i) {
    const double d = lo + (hi - lo) * i / (n - 1);
    const double val = f(d);
    ++evals;
    if (val > best_u) {
      best_u = val;
      best_d = d;
      best_i = i;
    }
  }

  // Stage 2: golden-section refinement within the neighbors of the best
  // grid point (the objective is unimodal there even if globally it is
  // not).
  double a = lo + (hi - lo) * std::max(best_i - 1, 0) / (n - 1);
  double b = lo + (hi - lo) * std::min(best_i + 1, n - 1) / (n - 1);
  double x1 = b - detail::kGoldenRatioInv * (b - a);
  double x2 = a + detail::kGoldenRatioInv * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  evals += 2;
  for (int i = 0; i < opt.max_refine_iters && (b - a) > opt.tolerance_m; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + detail::kGoldenRatioInv * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - detail::kGoldenRatioInv * (b - a);
      f1 = f(x1);
    }
    ++evals;
  }
  const double mid = 0.5 * (a + b);
  // Keep whichever of {grid best, refined mid} is actually better.
  const double refined = f(mid);
  ++evals;
  const bool take_mid = refined >= best_u;
  out.d = take_mid ? mid : best_d;
  out.val = take_mid ? refined : best_u;
  out.evals = evals;
  return out;
}

/// Where the optimum landed relative to the feasible interval [d_min, d0].
/// Exactly one of the three holds — which the former trio of mutually
/// exclusive bools (`interior`/`transmit_now`/`at_floor`) could not
/// express in the type.
enum class Boundary {
  /// Strictly inside (d_min, d0): move before transmitting, but not all
  /// the way to the floor.
  kInterior,
  /// d_opt == d0: transmit immediately.
  kTransmitNow,
  /// d_opt == d_min: ship to the anti-collision floor first.
  kAtFloor,
};

[[nodiscard]] const char* to_string(Boundary b) noexcept;

struct OptimizeResult {
  double d_opt_m{0.0};
  double utility{0.0};
  double cdelay_s{0.0};
  double discount{0.0};
  Boundary boundary{Boundary::kInterior};
  int evaluations{0};
};

/// Maximize a utility function over [d_min, d0].
[[nodiscard]] OptimizeResult optimize(const UtilityFunction& u, OptimizeOptions opt = {});

/// Maximize an arbitrary objective over the same [d_min, d0] interval as
/// `base`, with the same grid-scan + golden-section schedule as
/// optimize(). The result's `utility` is the objective value at the
/// optimum; `cdelay_s`/`discount` still describe `base` there. Used by
/// the mid-flight re-decision policy, whose objective folds the
/// transfer-loiter failure exposure into the paper's approach-only U(d).
[[nodiscard]] OptimizeResult optimize_objective(const UtilityFunction& base,
                                                const std::function<double(double)>& objective,
                                                OptimizeOptions opt = {});

/// Brute-force argmax on a fine grid (reference implementation used by
/// the property tests to validate `optimize`).
[[nodiscard]] OptimizeResult optimize_brute_force(const UtilityFunction& u, int points = 20000);

}  // namespace skyferry::core
