#include "core/planner.h"

#include <algorithm>

namespace skyferry::core {

Decision DelayedGratificationPlanner::decide(const DeliveryParams& params) const {
  Decision dec;
  const CommDelayModel delay(model_, params);
  const UtilityFunction u(delay, failure_);
  dec.opt = optimize(u, opt_);

  dec.strategy.kind = dec.opt.boundary == Boundary::kTransmitNow
                          ? StrategyKind::kTransmitNow
                          : StrategyKind::kShipThenTransmit;
  dec.strategy.target_distance_m = dec.opt.d_opt_m;

  dec.delivery_probability = dec.opt.discount;
  dec.expected_delay_s = dec.opt.cdelay_s;
  dec.transmit_now_delay_s = delay.cdelay_s(params.d0_m);
  if (dec.transmit_now_delay_s > 0.0 &&
      dec.transmit_now_delay_s != CommDelayModel::kInfiniteDelay) {
    dec.delay_saving_fraction =
        std::max(0.0, 1.0 - dec.expected_delay_s / dec.transmit_now_delay_s);
  } else if (dec.expected_delay_s != CommDelayModel::kInfiniteDelay) {
    // Transmit-now is impossible (out of range) but the plan delivers.
    dec.delay_saving_fraction = 1.0;
  }
  return dec;
}

}  // namespace skyferry::core
