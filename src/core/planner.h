// The decision facade a mission controller calls: given where the peer
// is, how much data is carried and the platform's failure rate, decide
// *now or later* — return the optimal transmit distance, the strategy to
// fly, and the expected cost/benefit breakdown.
#pragma once

#include "core/optimizer.h"
#include "core/scenario.h"
#include "core/strategy.h"

namespace skyferry::policy {
class DecisionService;
}

namespace skyferry::core {

struct Decision {
  OptimizeResult opt;
  StrategySpec strategy;
  /// Expected delivery probability if the plan is followed (= discount).
  double delivery_probability{0.0};
  /// Expected total delay [s] (ship + transmit at d_opt).
  double expected_delay_s{0.0};
  /// Delay of naive transmit-now for comparison [s].
  double transmit_now_delay_s{0.0};
  /// Relative delay saving of the chosen plan vs transmit-now (>= 0).
  double delay_saving_fraction{0.0};
};

class DelayedGratificationPlanner {
 public:
  /// The throughput model must outlive the planner.
  DelayedGratificationPlanner(const ThroughputModel& model, uav::FailureModel failure,
                              OptimizeOptions opt = {}) noexcept
      : model_(model), failure_(failure), opt_(opt) {}

  /// Route decisions through an externally owned DecisionService — e.g.
  /// one with a compiled policy table installed, shared by a fleet of
  /// planners. The service (which answers with its *own* default model,
  /// normally the same physics as this planner's) must outlive the
  /// planner; nullptr restores the internal exact path. Without a route
  /// the planner still flows through the decision API — it stands up a
  /// stack-local exact service per decide(), bit-identical to calling
  /// optimize() directly.
  DelayedGratificationPlanner& route_through(const policy::DecisionService* service) noexcept {
    service_ = service;
    return *this;
  }

  /// Decide for a delivery: where to transmit and how.
  [[nodiscard]] Decision decide(const DeliveryParams& params) const;

  /// Convenience: decide for a whole scenario preset.
  [[nodiscard]] Decision decide(const Scenario& s) const { return decide(s.delivery_params()); }

 private:
  const ThroughputModel& model_;
  uav::FailureModel failure_;
  OptimizeOptions opt_;
  const policy::DecisionService* service_{nullptr};
};

}  // namespace skyferry::core
