#include "core/redecide.h"

#include <algorithm>
#include <cmath>

#include "core/delay.h"
#include "core/utility.h"
#include "uav/failure.h"

namespace skyferry::core {
namespace {

// Expected realized mission utility of transmitting at d, under the
// (re-)estimated models. The mission metric scores delivered fraction
// over total elapsed time, with partial credit for bytes already across
// when a crash ends the transfer — so the in-flight objective must be
// its expectation, not the paper's approach-only U(d): the approach-only
// form prices the flight *to* d but neither the failure distance the
// loiter keeps burning while transmitting nor the partial credit a
// mid-transfer crash still collects.
//
// With hazard ρ per meter at speed v (λ = ρ·v per second), approach
// A = tship(d), transfer T = ttx(d), and t0 seconds already flown
// (sunk, but in the metric's denominator):
//
//   E[U] = e^{−λA} · [ e^{−λT}/(t0+A+T)
//            + ∫₀ᵀ λ e^{−λτ} · (τ/T)/(t0+A+τ) dτ ]
//
// The crash-mid-transfer integral has no closed form; with λT ≪ 1 and
// T ≪ t0+A at mission scales the integrand is almost linear in τ, so a
// 4-point Gauss–Legendre rule is accurate to ~1e-9 relative — and this
// sits in the optimizer's inner loop under BM_ReDecision's 10 µs ceiling.
double expected_mission_utility(const CommDelayModel& delay, double rho, double speed_mps,
                                double elapsed_s, double d_m) {
  const double A = delay.tship_s(d_m);
  const double T = delay.ttx_s(d_m);
  if (!(A >= 0.0) || A == CommDelayModel::kInfiniteDelay) return 0.0;
  if (!(T >= 0.0) || T == CommDelayModel::kInfiniteDelay) return 0.0;
  const double base = elapsed_s + A;
  if (!(base + T > 0.0)) return 0.0;
  const double lam = std::max(rho, 0.0) * speed_mps;
  const double full = std::exp(-lam * T) / (base + T);
  double partial = 0.0;
  if (lam > 0.0 && T > 0.0) {
    static constexpr double kNode[2] = {0.3399810435848563, 0.8611363115940526};
    static constexpr double kWeight[2] = {0.6521451548625461, 0.3478548451374538};
    const double half = 0.5 * T;
    double sum = 0.0;
    for (int i = 0; i < 2; ++i) {
      const double tau_lo = half * (1.0 - kNode[i]);
      const double tau_hi = half * (1.0 + kNode[i]);
      sum += kWeight[i] * (std::exp(-lam * tau_lo) * (tau_lo / T) / (base + tau_lo) +
                           std::exp(-lam * tau_hi) * (tau_hi / T) / (base + tau_hi));
    }
    partial = lam * half * sum;
  }
  return std::exp(-lam * A) * (full + partial);
}

}  // namespace

PaperLogThroughput reestimated_model(const PaperLogThroughput& nominal,
                                     const ctrl::ChannelEstimate& est, double min_confidence) {
  // Fitted shape, if it is trustworthy and physically sane: throughput
  // must decrease with distance (a < 0) and be positive somewhere
  // (b > 0); a noisy narrow-window fit can violate either.
  if (est.confidence >= min_confidence && est.a < 0.0 && est.b > 0.0) {
    return {est.a, est.b, "re-estimated-fit"};
  }
  // Fallback: the nominal shape scaled by the robust gain. For the
  // log2 form, gain·scale·(a·log2 d + b) == scale·(g·a·log2 d + g·b).
  const double g = (std::isfinite(est.gain) && est.gain > 0.0) ? est.gain : 1.0;
  return {nominal.a() * g, nominal.b() * g, "re-estimated-gain"};
}

OptimizeResult ReDecisionPolicy::redecide_now(const ReDecisionInput& in) const {
  const PaperLogThroughput model =
      in.channel ? reestimated_model(nominal_, *in.channel, cfg_.min_confidence)
                 : PaperLogThroughput{nominal_.a(), nominal_.b(), "nominal"};
  const double rho = in.rho_hat.value_or(in.nominal_rho);
  const uav::FailureModel failure(std::max(rho, 0.0));
  const DeliveryParams params{in.current_d_m, in.speed_mps, in.mdata_bytes, in.min_distance_m};
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  if (!cfg_.mission_objective) return optimize(u, cfg_.optimize);
  const double rho_eff = std::max(rho, 0.0);
  return optimize_objective(
      u,
      [&](double d) {
        return expected_mission_utility(delay, rho_eff, in.speed_mps, in.elapsed_s, d);
      },
      cfg_.optimize);
}

ReDecision ReDecisionPolicy::consider(const ReDecisionInput& in) {
  ReDecision out;
  out.target_d_m = in.target_d_m;

  if (redecisions_ >= cfg_.max_redecisions) {
    out.reason = "max-redecisions";
    return out;
  }
  // Commit-point guard: the remaining approach is sunk, never thrash it.
  if (in.current_d_m - in.target_d_m <= cfg_.commit_margin_m) {
    out.reason = "committed";
    return out;
  }
  // Progress cooldown between re-decisions (hysteresis partner to the
  // estimator re-arm the caller performs after a taken re-decision).
  if (last_redecide_d_m_ >= 0.0 && last_redecide_d_m_ - in.current_d_m < cfg_.cooldown_m) {
    out.reason = "cooldown";
    return out;
  }
  // Trigger: either observable has diverged. Without a trigger the
  // optimizer is never re-run — the zero-mismatch bit-identity invariant.
  const bool channel_tripped = in.divergence >= cfg_.divergence_threshold;
  const bool rho_tripped = in.rho_rel_error >= cfg_.rho_rel_threshold;
  if (!channel_tripped && !rho_tripped) {
    out.reason = "no-trigger";
    return out;
  }
  // A tripped channel without a usable estimate is the degradation
  // ladder's business (conservative mode), not a re-decision.
  if (channel_tripped && (!in.channel || in.channel->confidence < cfg_.min_confidence)) {
    out.reason = "low-confidence";
    return out;
  }
  if (rho_tripped && !channel_tripped && !in.rho_hat) {
    out.reason = "no-rho-estimate";
    return out;
  }

  // A rho-only trip re-decides under the *nominal* channel model: the
  // channel detector stayed quiet, so the fit window is pure probe
  // noise — feeding it to the optimizer would let that noise fabricate
  // phantom improvement and steer the diversion.
  ReDecisionInput eff = in;
  if (!channel_tripped) eff.channel.reset();

  const OptimizeResult opt = redecide_now(eff);
  out.predicted_utility = opt.utility;

  // Minimum-improvement gate: compare against holding the current plan
  // under the *re-estimated* models (same yardstick both sides).
  const PaperLogThroughput model =
      eff.channel ? reestimated_model(nominal_, *eff.channel, cfg_.min_confidence)
                  : PaperLogThroughput{nominal_.a(), nominal_.b(), "nominal"};
  const uav::FailureModel failure(std::max(in.rho_hat.value_or(in.nominal_rho), 0.0));
  const DeliveryParams params{in.current_d_m, in.speed_mps, in.mdata_bytes, in.min_distance_m};
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const double hold_d =
      std::clamp(in.target_d_m, in.min_distance_m, in.current_d_m);
  const double hold_utility =
      cfg_.mission_objective
          // Same yardstick as the candidate side, or the gate would
          // compare apples (E[realized U]) to oranges (approach-only U).
          ? expected_mission_utility(delay, failure.rho(), in.speed_mps, in.elapsed_s, hold_d)
          : u(hold_d);
  out.predicted_gain_rel =
      hold_utility > 0.0 ? opt.utility / hold_utility - 1.0
                         : (opt.utility > 0.0 ? 1.0 : 0.0);
  if (out.predicted_gain_rel < cfg_.min_improvement_rel) {
    out.reason = "below-improvement-gate";
    return out;
  }

  out.redecided = true;
  out.target_d_m = opt.d_opt_m;
  out.reason = channel_tripped ? "channel-divergence" : "rho-divergence";
  ++redecisions_;
  last_redecide_d_m_ = in.current_d_m;
  return out;
}

}  // namespace skyferry::core
