// Mid-flight re-decision: re-run the now-or-later optimizer on the
// re-estimated (s(d), ρ) when the in-flight divergence detector says the
// nominal models no longer describe the world.
//
// Design constraints (the golden suite enforces all three):
//  * Zero mismatch ⇒ bit-identical to the static d* policy: the
//    optimizer is only ever re-run after the divergence score crosses
//    its threshold, so a mission that never trips flies exactly the
//    static plan.
//  * No thrash: hysteresis (the estimator is re-armed after a
//    re-decision and must re-accumulate evidence), a progress cooldown
//    between re-decisions, a commit-point guard near the transmit
//    position, and a minimum-improvement gate on the predicted utility.
//  * Cheap: one re-decision is one optimize() call on a reduced grid —
//    the BM_ReDecision micro-benchmark pins it at ≤ 10 µs, so the policy
//    can sit on the decision-service hot path (ROADMAP #1).
#pragma once

#include <optional>

#include "core/optimizer.h"
#include "core/planner.h"
#include "core/throughput_model.h"
#include "ctrl/resilience.h"

namespace skyferry::policy {
class DecisionService;
}

namespace skyferry::core {

struct ReDecisionConfig {
  /// Channel divergence score (estimator CUSUM) that arms a re-decision.
  double divergence_threshold{8.0};
  /// ρ relative error |ρ̂/ρ − 1| that arms a re-decision.
  double rho_rel_threshold{0.25};
  /// Estimator confidence required to trust a re-estimate at all.
  double min_confidence{0.25};
  /// Commit-point guard: within this distance of the current target the
  /// plan is committed and never re-decided (the approach is sunk).
  double commit_margin_m{10.0};
  /// Progress cooldown: at least this much approach progress between
  /// two re-decisions.
  double cooldown_m{5.0};
  /// Minimum predicted relative utility improvement to accept a new
  /// target — below it the old plan stands (anti-thrash). The default is
  /// calibrated to the mission objective, whose expected-realized-utility
  /// surface is flat near the optimum (elapsed mission time dilutes the
  /// transfer-time differences a diversion can still win): even a 3x rho
  /// error moves E[U] by well under 1%, and the predicted gain tracks
  /// the realized Monte-Carlo gain closely, so a small-but-real
  /// improvement is trustworthy. Thrash is held off by the cooldown,
  /// the estimator re-arm, and the re-decision cap, not by this margin.
  double min_improvement_rel{0.002};
  int max_redecisions{8};
  /// Re-decide on the expected *realized* mission utility — delivered
  /// fraction over total elapsed time, with partial credit for bytes
  /// across when a crash ends the transfer — instead of the paper's
  /// approach-only U(d). The static form prices the flight *to* d but
  /// neither the failure distance the loiter keeps burning while it
  /// transmits nor the mid-transfer partial credit; mid-flight, under a
  /// re-estimated (often deadlier) ρ, that bias steers diversions to
  /// far/slow transmit positions that score worse on the mission metric
  /// they are judged by. Off ⇒ the re-decision optimizes the planner's
  /// exact static objective (used by the bit-identity tests).
  bool mission_objective{true};
  /// Reduced-grid optimizer options for the re-decision hot path. The
  /// mission-objective surface is flat near its optimum, so a 96-point
  /// scan refined to 0.1 m loses nothing measurable and keeps one full
  /// consider() under the BM_ReDecision 10 µs ceiling.
  OptimizeOptions optimize{96, 0.1, 40};
};

/// Everything the policy needs to know at one trigger opportunity.
struct ReDecisionInput {
  double current_d_m{0.0};     ///< distance to the peer right now
  double target_d_m{0.0};      ///< the plan currently being flown
  double min_distance_m{20.0}; ///< anti-collision floor
  double speed_mps{1.0};
  double mdata_bytes{0.0};     ///< remaining batch
  /// Mission time already flown [s]. Sunk, but the realized utility is
  /// delivered fraction over *total* elapsed time, so it sits in the
  /// mission-objective denominator and shapes the optimum.
  double elapsed_s{0.0};
  double divergence{0.0};      ///< ctrl::OnlineChannelEstimator::divergence()
  double rho_rel_error{0.0};   ///< ctrl::HazardRateEstimator::relative_error_vs
  /// Channel re-estimate (tagged no-estimate ⇒ no re-decision).
  std::optional<ctrl::ChannelEstimate> channel;
  /// Smoothed ρ estimate; nullopt keeps the nominal ρ.
  std::optional<double> rho_hat;
  double nominal_rho{0.0};
};

struct ReDecision {
  bool redecided{false};
  double target_d_m{0.0};     ///< new plan (== input target when !redecided)
  double predicted_utility{0.0};
  double predicted_gain_rel{0.0};
  const char* reason{"hold"}; ///< why the plan did/didn't change (for logs)
};

/// Build the re-estimated throughput model from a channel estimate, with
/// a sanity ladder: the fitted (a, b) is used only when the fit is
/// trustworthy *and* physically sane (throughput decreasing in
/// distance); otherwise the nominal shape scaled by the robust gain.
/// A pure-gain mismatch makes both branches converge to the same model.
[[nodiscard]] PaperLogThroughput reestimated_model(const PaperLogThroughput& nominal,
                                                   const ctrl::ChannelEstimate& est,
                                                   double min_confidence);

class ReDecisionPolicy {
 public:
  /// `nominal` must outlive the policy (it seeds the re-estimated model).
  ReDecisionPolicy(ReDecisionConfig cfg, const PaperLogThroughput& nominal) noexcept
      : cfg_(cfg), nominal_(nominal) {}

  /// Trigger gate + re-optimization. Mutates the policy's hysteresis
  /// state only when a re-decision is actually taken; the caller must
  /// re-arm its estimator after a taken re-decision (the old window was
  /// explained by the old model).
  [[nodiscard]] ReDecision consider(const ReDecisionInput& in);

  /// The unconditional re-optimization (no trigger gate, no mutation) —
  /// the hot path BM_ReDecision measures, flowing through the decision
  /// service's exact backend (the re-estimated model forces it: the
  /// policy table only knows nominal physics). Returns the optimizer
  /// result on the re-estimated models over [min_distance, current_d].
  [[nodiscard]] OptimizeResult redecide_now(const ReDecisionInput& in) const;

  /// Route re-decisions through an externally owned DecisionService
  /// (shared counters/telemetry); nullptr restores the stack-local
  /// service. Either way the answers are bit-identical to the direct
  /// optimizer calls this class used to make.
  ReDecisionPolicy& route_through(const policy::DecisionService* service) noexcept {
    service_ = service;
    return *this;
  }

  [[nodiscard]] int redecisions() const noexcept { return redecisions_; }
  [[nodiscard]] const ReDecisionConfig& config() const noexcept { return cfg_; }

 private:
  ReDecisionConfig cfg_;
  const PaperLogThroughput& nominal_;
  const policy::DecisionService* service_{nullptr};
  int redecisions_{0};
  double last_redecide_d_m_{-1.0};  ///< < 0: never re-decided
};

}  // namespace skyferry::core
