#include "core/scenario.h"

namespace skyferry::core {

PaperLogThroughput Scenario::paper_throughput() const {
  return platform.kind == uav::PlatformKind::kAirplane ? PaperLogThroughput::airplane()
                                                       : PaperLogThroughput::quadrocopter();
}

Scenario Scenario::airplane() {
  Scenario s;
  s.name = "airplane";
  s.platform = uav::PlatformSpec::swinglet();
  s.camera = ctrl::CameraModel{};
  s.sector_width_m = 500.0;
  s.sector_height_m = 500.0;
  s.survey_altitude_m = 70.0;
  s.mdata_bytes = 28e6;
  s.speed_mps = 10.0;
  s.rho_per_m = 1.11e-4;
  s.d0_m = 300.0;
  return s;
}

Scenario Scenario::quadrocopter() {
  Scenario s;
  s.name = "quadrocopter";
  s.platform = uav::PlatformSpec::arducopter();
  s.camera = ctrl::CameraModel{};
  s.sector_width_m = 100.0;
  s.sector_height_m = 100.0;
  s.survey_altitude_m = 10.0;
  s.mdata_bytes = 56.2e6;
  s.speed_mps = 4.5;
  s.rho_per_m = 2.46e-4;
  s.d0_m = 100.0;
  return s;
}

}  // namespace skyferry::core
