// The paper's two baseline evaluation scenarios (Sec. 4) bundled with
// every derived constant, so benches, tests and examples share one truth.
#pragma once

#include <memory>
#include <string>

#include "core/throughput_model.h"
#include "core/delay.h"
#include "ctrl/imaging.h"
#include "uav/failure.h"
#include "uav/platform.h"

namespace skyferry::core {

struct Scenario {
  std::string name;
  uav::PlatformSpec platform;
  ctrl::CameraModel camera;
  double sector_width_m{0.0};
  double sector_height_m{0.0};
  double survey_altitude_m{0.0};
  double mdata_bytes{0.0};
  double speed_mps{0.0};
  double rho_per_m{0.0};
  double d0_m{0.0};
  double min_distance_m{20.0};

  [[nodiscard]] DeliveryParams delivery_params() const noexcept {
    return {d0_m, speed_mps, mdata_bytes, min_distance_m};
  }
  [[nodiscard]] uav::FailureModel failure_model() const noexcept {
    return uav::FailureModel(rho_per_m);
  }
  /// The paper's throughput fit matching the platform.
  [[nodiscard]] PaperLogThroughput paper_throughput() const;

  /// Airplane scenario: Mdata=28 MB, v=10 m/s, rho=1.11e-4/m,
  /// sector 500x500 m, d0=300 m, altitude 70 m.
  static Scenario airplane();
  /// Quadrocopter scenario: Mdata=56.2 MB, v=4.5 m/s, rho=2.46e-4/m,
  /// sector 100x100 m, d0=100 m, altitude 10 m.
  static Scenario quadrocopter();
};

}  // namespace skyferry::core
