#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "uav/failure.h"

namespace skyferry::core {
namespace {

struct Optimum {
  double d{0.0};
  double u{0.0};
};

Optimum solve(const ThroughputModel& model, const DeliveryParams& params, double rho) {
  const uav::FailureModel failure(rho);
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const OptimizeResult r = optimize(u);
  return {r.d_opt_m, r.utility};
}

/// Relative central difference of f at x: (f(x(1+h)) - f(x(1-h))) / (2h f(x)).
template <typename F>
void relative_diff(F f, double base_d, double base_u, double rel_step, double* out_d,
                   double* out_u) {
  const Optimum hi = f(1.0 + rel_step);
  const Optimum lo = f(1.0 - rel_step);
  *out_d = (base_d != 0.0) ? (hi.d - lo.d) / (2.0 * rel_step * base_d) : 0.0;
  *out_u = (base_u != 0.0) ? (hi.u - lo.u) / (2.0 * rel_step * base_u) : 0.0;
}

}  // namespace

Sensitivity analyze_sensitivity(const ThroughputModel& model, const DeliveryParams& params,
                                double rho, double rel_step) {
  Sensitivity s;
  const Optimum base = solve(model, params, rho);
  if (base.u <= 0.0) return s;

  relative_diff(
      [&](double k) {
        DeliveryParams p = params;
        p.mdata_bytes *= k;
        return solve(model, p, rho);
      },
      base.d, base.u, rel_step, &s.d_opt_wrt_mdata, &s.utility_wrt_mdata);

  relative_diff(
      [&](double k) {
        DeliveryParams p = params;
        p.speed_mps *= k;
        return solve(model, p, rho);
      },
      base.d, base.u, rel_step, &s.d_opt_wrt_speed, &s.utility_wrt_speed);

  relative_diff([&](double k) { return solve(model, params, rho * k); }, base.d, base.u,
                rel_step, &s.d_opt_wrt_rho, &s.utility_wrt_rho);

  relative_diff(
      [&](double k) {
        DeliveryParams p = params;
        p.d0_m *= k;
        return solve(model, p, rho);
      },
      base.d, base.u, rel_step, &s.d_opt_wrt_d0, &s.utility_wrt_d0);

  return s;
}

std::vector<ParetoPoint> pareto_frontier(const ThroughputModel& model,
                                         const DeliveryParams& params, double rho, int points) {
  const uav::FailureModel failure(rho);
  const CommDelayModel delay(model, params);
  std::vector<ParetoPoint> pts;
  const int n = std::max(points, 2);
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double d =
        params.min_distance_m + (params.d0_m - params.min_distance_m) * i / (n - 1);
    ParetoPoint p;
    p.d_m = d;
    p.cdelay_s = delay.cdelay_s(d);
    p.delivery_probability = failure.discount(params.d0_m, d);
    pts.push_back(p);
  }
  // Dominance: point j dominates i when delay_j <= delay_i and
  // prob_j >= prob_i with at least one strict.
  for (auto& pi : pts) {
    for (const auto& pj : pts) {
      const bool no_worse =
          pj.cdelay_s <= pi.cdelay_s && pj.delivery_probability >= pi.delivery_probability;
      const bool strictly_better =
          pj.cdelay_s < pi.cdelay_s || pj.delivery_probability > pi.delivery_probability;
      if (no_worse && strictly_better) {
        pi.dominated = true;
        break;
      }
    }
  }
  return pts;
}

}  // namespace skyferry::core
