// Decision diagnostics: parameter sensitivities and the delay-vs-risk
// Pareto frontier behind a delayed-gratification decision. Operators ask
// two questions the point optimum cannot answer: "how fragile is this
// d_opt to my parameter estimates?" and "what delivery probability am I
// trading for each second of delay?".
#pragma once

#include <vector>

#include "core/optimizer.h"

namespace skyferry::core {

/// Relative sensitivities of d_opt and U(d_opt) to each model parameter:
/// s_x = (dY / Y) / (dx / x), evaluated by central finite differences
/// with a `rel_step` perturbation.
struct Sensitivity {
  double d_opt_wrt_mdata{0.0};
  double d_opt_wrt_speed{0.0};
  double d_opt_wrt_rho{0.0};
  double d_opt_wrt_d0{0.0};
  double utility_wrt_mdata{0.0};
  double utility_wrt_speed{0.0};
  double utility_wrt_rho{0.0};
  double utility_wrt_d0{0.0};
};

[[nodiscard]] Sensitivity analyze_sensitivity(const ThroughputModel& model,
                                              const DeliveryParams& params, double rho,
                                              double rel_step = 0.05);

/// One point of the Pareto frontier: commit to transmitting at distance
/// d and you get this delay and this delivery probability.
struct ParetoPoint {
  double d_m{0.0};
  double cdelay_s{0.0};
  double delivery_probability{0.0};
  bool dominated{false};  ///< some other d is better in both coordinates
};

/// The delay/probability frontier over d in [d_min, d0]. Points are
/// returned in increasing d with the `dominated` flag resolved; the
/// non-dominated subset is the actual Pareto set the operator chooses
/// from (the utility optimum is one point on it).
[[nodiscard]] std::vector<ParetoPoint> pareto_frontier(const ThroughputModel& model,
                                                       const DeliveryParams& params, double rho,
                                                       int points = 100);

}  // namespace skyferry::core
