#include "core/strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace skyferry::core {

std::string to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::kTransmitNow: return "transmit-now";
    case StrategyKind::kShipThenTransmit: return "ship-then-transmit";
    case StrategyKind::kMoveAndTransmit: return "move-and-transmit";
    case StrategyKind::kMixed: return "mixed";
  }
  return "?";
}

std::string StrategySpec::label() const {
  switch (kind) {
    case StrategyKind::kTransmitNow:
      return "transmit-now";
    case StrategyKind::kShipThenTransmit:
      return "d=" + std::to_string(static_cast<int>(std::lround(target_distance_m)));
    case StrategyKind::kMoveAndTransmit:
      return "moving";
    case StrategyKind::kMixed:
      return "mixed@" + std::to_string(static_cast<int>(std::lround(target_distance_m)));
  }
  return "?";
}

StrategyOutcome simulate_strategy(const StrategySpec& spec, const ThroughputModel& hover_model,
                                  const SpeedDegradation& degradation,
                                  const DeliveryParams& params, double dt_s, double max_time_s) {
  StrategyOutcome out;
  out.spec = spec;

  const double floor_d = params.min_distance_m;
  double target = params.d0_m;
  bool tx_while_moving = false;
  switch (spec.kind) {
    case StrategyKind::kTransmitNow:
      target = params.d0_m;
      break;
    case StrategyKind::kShipThenTransmit:
      target = std::clamp(spec.target_distance_m, floor_d, params.d0_m);
      break;
    case StrategyKind::kMoveAndTransmit:
      target = floor_d;
      tx_while_moving = true;
      break;
    case StrategyKind::kMixed:
      target = std::clamp(spec.target_distance_m, floor_d, params.d0_m);
      tx_while_moving = true;
      break;
  }

  double d = params.d0_m;
  double t = 0.0;
  double remaining_bits = params.mdata_bytes * 8.0;
  const double total_mb = params.mdata_bytes / 1e6;

  out.curve.push_back({0.0, 0.0});

  while (remaining_bits > 0.0 && t < max_time_s) {
    const bool moving = d > target + 1e-9;
    // 'Move and transmit' keeps the platform under way for the whole
    // transfer (the paper's moving experiment transits the rendezvous;
    // stopping would be the ship-then-transmit strategy instead), so its
    // speed penalty persists after reaching the minimum distance.
    const bool under_way = moving || spec.kind == StrategyKind::kMoveAndTransmit;
    const double v = under_way ? params.speed_mps : 0.0;

    double rate = 0.0;
    if (!moving || tx_while_moving) {
      rate = hover_model.throughput_bps(std::max(d, floor_d)) * degradation.factor(v);
    }

    // Step: bounded by dt, arrival at target, and transfer completion.
    double step = dt_s;
    if (moving) {
      step = std::min(step, (d - target) / params.speed_mps);
      out.ship_time_s += (rate > 0.0) ? 0.0 : step;
    }
    if (rate > 0.0) {
      step = std::min(step, remaining_bits / rate);
      out.transmit_time_s += step;
      remaining_bits -= rate * step;
    } else if (!moving) {
      // Parked with zero throughput: the transfer can never finish.
      out.completed = false;
      out.completion_time_s = t;
      out.final_distance_m = d;
      return out;
    }

    if (moving) d = std::max(target, d - params.speed_mps * step);
    t += step;

    const double delivered = total_mb - remaining_bits / 8e6;
    out.curve.push_back({t, delivered});
  }

  out.completed = remaining_bits <= 0.0;
  out.completion_time_s = t;
  out.final_distance_m = d;
  return out;
}

std::vector<StrategyOutcome> compare_strategies(const std::vector<double>& distances,
                                                const ThroughputModel& hover_model,
                                                const SpeedDegradation& degradation,
                                                const DeliveryParams& params, double dt_s) {
  std::vector<StrategyOutcome> outcomes;
  outcomes.reserve(distances.size() + 1);
  for (double d : distances) {
    StrategySpec spec;
    spec.kind = (d >= params.d0_m) ? StrategyKind::kTransmitNow : StrategyKind::kShipThenTransmit;
    spec.target_distance_m = d;
    outcomes.push_back(simulate_strategy(spec, hover_model, degradation, params, dt_s));
  }
  StrategySpec moving;
  moving.kind = StrategyKind::kMoveAndTransmit;
  outcomes.push_back(simulate_strategy(moving, hover_model, degradation, params, dt_s));
  return outcomes;
}

double crossover_mdata_bytes(const ThroughputModel& model, double d0_m, double d_m,
                             double speed_mps) noexcept {
  const double s0 = model.throughput_bps(d0_m);
  const double sd = model.throughput_bps(d_m);
  if (sd <= s0 || sd <= 0.0) return std::numeric_limits<double>::infinity();
  if (s0 <= 0.0) return 0.0;  // cannot transmit at d0 at all: any data favors moving
  const double tship = (d0_m - d_m) / speed_mps;
  // Tship + M/sd = M/s0  =>  M = Tship / (1/s0 - 1/sd)   [bits]
  const double bits = tship / (1.0 / s0 - 1.0 / sd);
  return bits / 8.0;
}

}  // namespace skyferry::core
