// Delivery strategies and their transfer dynamics (paper Sec. 2.2 and
// Fig. 1): 'transmit now' (hover-and-transmit at d0), 'ship then
// transmit' (fly silently to d, then hover-and-transmit), 'move and
// transmit' (transmit while approaching, throughput degraded by speed),
// and the mixed form (transmit while shipping to d, then hover).
#pragma once

#include <string>
#include <vector>

#include "core/throughput_model.h"
#include "core/delay.h"

namespace skyferry::core {

enum class StrategyKind {
  kTransmitNow,      ///< hover and transmit at d0
  kShipThenTransmit, ///< fly to target_distance silently, then transmit
  kMoveAndTransmit,  ///< transmit continuously while closing in
  kMixed,            ///< transmit while shipping to target_distance, then hover
};

[[nodiscard]] std::string to_string(StrategyKind k);

struct StrategySpec {
  StrategyKind kind{StrategyKind::kTransmitNow};
  /// Transmit position for kShipThenTransmit/kMixed [m]; ignored otherwise.
  double target_distance_m{0.0};

  [[nodiscard]] std::string label() const;
};

/// One point of the cumulative-transfer curve (the axes of Fig. 1).
struct TransferPoint {
  double t_s{0.0};
  double delivered_mb{0.0};
};

struct StrategyOutcome {
  StrategySpec spec;
  bool completed{false};
  double completion_time_s{0.0};  ///< time when the last byte landed
  double ship_time_s{0.0};        ///< silent flying time before transmitting
  double transmit_time_s{0.0};    ///< time spent transmitting
  double final_distance_m{0.0};   ///< where the transfer finished
  std::vector<TransferPoint> curve;
};

/// Deterministic (median-model) simulation of a strategy's transfer.
///
/// `hover_model` gives s(d) at rest; `degradation` applies while moving.
/// Integration step `dt_s` bounds the curve resolution. The transfer
/// aborts (completed=false) at `max_time_s`.
[[nodiscard]] StrategyOutcome simulate_strategy(const StrategySpec& spec,
                                                const ThroughputModel& hover_model,
                                                const SpeedDegradation& degradation,
                                                const DeliveryParams& params, double dt_s = 0.05,
                                                double max_time_s = 3600.0);

/// Convenience: run the Figure-1 comparison — ship-then-transmit at each
/// distance in `distances`, plus transmit-now at d0 (covered when d0 is in
/// the list) and move-and-transmit.
[[nodiscard]] std::vector<StrategyOutcome> compare_strategies(
    const std::vector<double>& distances, const ThroughputModel& hover_model,
    const SpeedDegradation& degradation, const DeliveryParams& params, double dt_s = 0.05);

/// Data size at which ship-then-transmit(d) starts beating
/// transmit-now(d0): Mdata* = Tship(d) / (1/s(d0) - 1/s(d)) (bytes).
/// Returns +inf when d does not improve throughput over d0.
[[nodiscard]] double crossover_mdata_bytes(const ThroughputModel& model, double d0_m, double d_m,
                                           double speed_mps) noexcept;

}  // namespace skyferry::core
