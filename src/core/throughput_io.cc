#include "core/throughput_io.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "io/csv_reader.h"

namespace skyferry::core {

std::optional<TableThroughput> load_throughput_csv(const std::string& path,
                                                   const std::string& d_column,
                                                   const std::string& mbps_column,
                                                   std::string model_name) {
  const auto doc = io::read_csv_file(path);
  if (!doc) return std::nullopt;
  const auto dc = doc->column(d_column);
  const auto mc = doc->column(mbps_column);
  if (!dc || !mc) return std::nullopt;

  const auto ds = doc->numeric_column(*dc);
  const auto ms = doc->numeric_column(*mc);

  // Average duplicate distances (multiple samples per bin).
  std::map<double, std::pair<double, int>> by_d;
  for (std::size_t i = 0; i < ds.size() && i < ms.size(); ++i) {
    if (std::isnan(ds[i]) || std::isnan(ms[i])) continue;
    auto& [sum, n] = by_d[ds[i]];
    sum += ms[i];
    ++n;
  }
  if (by_d.size() < 2) return std::nullopt;

  std::vector<std::pair<double, double>> points;
  points.reserve(by_d.size());
  for (const auto& [d, acc] : by_d) {
    points.emplace_back(d, acc.first / acc.second * 1e6);  // Mb/s -> bit/s
  }
  return TableThroughput(std::move(points), std::move(model_name));
}

}  // namespace skyferry::core
