// Loading measured throughput tables. Users with their own field data
// (a CSV of distance, Mb/s rows — e.g. the output of
// bench/fig5_airplane_throughput) plug it straight into the planner via
// TableThroughput.
#pragma once

#include <optional>
#include <string>

#include "core/throughput_model.h"

namespace skyferry::core {

/// Build a TableThroughput from a CSV file with a header. `d_column` and
/// `mbps_column` name the distance [m] and throughput [Mb/s] columns
/// (defaults match the bench CSVs). Rows are sorted by distance and
/// duplicate distances averaged. Returns nullopt when the file is
/// unreadable, the columns are missing, or fewer than two valid rows
/// remain.
[[nodiscard]] std::optional<TableThroughput> load_throughput_csv(
    const std::string& path, const std::string& d_column = "d_m",
    const std::string& mbps_column = "median", std::string model_name = "measured");

}  // namespace skyferry::core
