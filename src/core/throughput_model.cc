#include "core/throughput_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace skyferry::core {

double ThroughputModel::max_range_m() const noexcept {
  // Bisect the largest d with s(d) > 0 in [1 m, 100 km].
  double lo = 1.0;
  double hi = 100e3;
  if (throughput_bps(hi) > 0.0) return hi;
  if (throughput_bps(lo) <= 0.0) return 0.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (throughput_bps(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double PaperLogThroughput::throughput_bps(double distance_m) const noexcept {
  const double d = std::max(distance_m, min_d_);
  return std::max(scale_ * (a_ * std::log2(d) + b_), 0.0);
}

double PaperLogThroughput::max_range_m() const noexcept {
  if (a_ >= 0.0) return 100e3;
  // a*log2(d) + b = 0  =>  d = 2^(-b/a) = 2^(b/|a|).
  return std::exp2(-b_ / a_);
}

TableThroughput::TableThroughput(std::vector<std::pair<double, double>> points, std::string name)
    : points_(std::move(points)), name_(std::move(name)) {
  assert(!points_.empty());
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].first > points_[i - 1].first);
  }
}

double TableThroughput::throughput_bps(double distance_m) const noexcept {
  if (distance_m <= points_.front().first) return std::max(points_.front().second, 0.0);
  if (distance_m >= points_.back().first) return std::max(points_.back().second, 0.0);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), distance_m,
      [](const std::pair<double, double>& p, double d) { return p.first < d; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double w = (distance_m - lo.first) / (hi.first - lo.first);
  return std::max(lo.second + w * (hi.second - lo.second), 0.0);
}

double TableThroughput::max_range_m() const noexcept {
  // Last distance with positive throughput, interpolating the final
  // zero crossing if present.
  for (std::size_t i = points_.size(); i-- > 1;) {
    if (points_[i].second > 0.0) return points_[i].first;
    if (points_[i - 1].second > 0.0) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double w = lo.second / (lo.second - hi.second);
      return lo.first + w * (hi.first - lo.first);
    }
  }
  return points_.front().second > 0.0 ? points_.front().first : 0.0;
}

double SpeedDegradation::factor(double speed_mps) const noexcept {
  const double r = speed_mps / v_half_mps;
  return 1.0 / (1.0 + r * r);
}

}  // namespace skyferry::core
