// Distance-dependent throughput models s(d) — the basic determinant of
// the delayed-gratification decision (paper Sec. 3/4).
//
// PaperLogThroughput carries the paper's published fits:
//   airplane:      s(d) = 1e6 * (-5.56 * log2(d) + 49)   [R^2 = 0.90]
//   quadrocopter:  s(d) = 1e6 * (-10.5 * log2(d) + 73)   [R^2 = 0.96]
// TableThroughput interpolates empirical medians (e.g. produced by the
// PHY+MAC simulator), and SpeedAwareThroughput adds the mobility penalty
// measured in Fig. 7.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace skyferry::core {

/// Interface: median application-layer throughput [bit/s] at distance d.
class ThroughputModel {
 public:
  virtual ~ThroughputModel() = default;

  /// Throughput [bit/s] at distance d [m]; never negative.
  [[nodiscard]] virtual double throughput_bps(double distance_m) const noexcept = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Largest distance with positive throughput (link range), found by
  /// bisection by default.
  [[nodiscard]] virtual double max_range_m() const noexcept;
};

/// s(d) = scale * (a * log2(d) + b), clamped at >= 0, with distance
/// clamped below at `min_distance_m` (the paper's 20 m anti-collision
/// floor: moving closer than that is not allowed, so the model saturates).
class PaperLogThroughput final : public ThroughputModel {
 public:
  PaperLogThroughput(double a, double b, std::string name, double scale = 1e6,
                     double min_distance_m = 20.0) noexcept
      : a_(a), b_(b), scale_(scale), min_d_(min_distance_m), name_(std::move(name)) {}

  /// The paper's airplane fit.
  static PaperLogThroughput airplane() { return {-5.56, 49.0, "paper-airplane"}; }
  /// The paper's quadrocopter fit.
  static PaperLogThroughput quadrocopter() { return {-10.5, 73.0, "paper-quadrocopter"}; }

  [[nodiscard]] double throughput_bps(double distance_m) const noexcept override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double max_range_m() const noexcept override;

  [[nodiscard]] double a() const noexcept { return a_; }
  [[nodiscard]] double b() const noexcept { return b_; }

 private:
  double a_;
  double b_;
  double scale_;
  double min_d_;
  std::string name_;
};

/// Piecewise-linear interpolation over measured (distance, throughput)
/// medians; clamps outside the table. Points must be strictly increasing
/// in distance.
class TableThroughput final : public ThroughputModel {
 public:
  TableThroughput(std::vector<std::pair<double, double>> points, std::string name);

  [[nodiscard]] double throughput_bps(double distance_m) const noexcept override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double max_range_m() const noexcept override;

  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const noexcept {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
  std::string name_;
};

/// Multiplicative mobility degradation g(v) = 1 / (1 + (v/v_half)^2):
/// hovering keeps the full rate; at v_half the rate halves. Calibrated to
/// the quadrocopter speed sweep of Fig. 7 (right): ~1/3 at 5 m/s, ~0.1
/// at 10 m/s, near-dead at 15 m/s.
struct SpeedDegradation {
  double v_half_mps{3.5};

  [[nodiscard]] double factor(double speed_mps) const noexcept;
};

/// Combines a hover model with the mobility penalty: s(d, v).
class SpeedAwareThroughput {
 public:
  SpeedAwareThroughput(const ThroughputModel& base, SpeedDegradation degradation = {}) noexcept
      : base_(base), deg_(degradation) {}

  [[nodiscard]] double throughput_bps(double distance_m, double speed_mps) const noexcept {
    return base_.throughput_bps(distance_m) * deg_.factor(speed_mps);
  }
  [[nodiscard]] const ThroughputModel& base() const noexcept { return base_; }
  [[nodiscard]] const SpeedDegradation& degradation() const noexcept { return deg_; }

 private:
  const ThroughputModel& base_;
  SpeedDegradation deg_;
};

}  // namespace skyferry::core
