#include "core/utility.h"

#include <cassert>

namespace skyferry::core {

double UtilityFunction::operator()(double d_m) const noexcept {
  const double c = delay_.cdelay_s(d_m);
  if (!(c > 0.0) || c == CommDelayModel::kInfiniteDelay) return 0.0;
  return failure_.discount(delay_.params().d0_m, d_m) / c;
}

UtilityPoint UtilityFunction::evaluate(double d_m) const noexcept {
  UtilityPoint p;
  p.d_m = d_m;
  p.tship_s = delay_.tship_s(d_m);
  p.ttx_s = delay_.ttx_s(d_m);
  p.cdelay_s = p.tship_s + p.ttx_s;
  p.discount = failure_.discount(delay_.params().d0_m, d_m);
  p.utility = (p.cdelay_s > 0.0 && p.cdelay_s != CommDelayModel::kInfiniteDelay)
                  ? p.discount / p.cdelay_s
                  : 0.0;
  return p;
}

std::vector<UtilityPoint> UtilityFunction::curve(int n) const {
  assert(n >= 2);
  std::vector<UtilityPoint> pts;
  pts.reserve(static_cast<std::size_t>(n));
  const double lo = delay_.params().min_distance_m;
  const double hi = delay_.params().d0_m;
  for (int i = 0; i < n; ++i) {
    const double d = lo + (hi - lo) * i / (n - 1);
    pts.push_back(evaluate(d));
  }
  return pts;
}

}  // namespace skyferry::core
