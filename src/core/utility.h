// Delayed-gratification utility (paper Eq. 1):
//   U(d) = δ(d) · u(d) = exp(-ρ(d0-d)) / Cdelay(d)
// δ is the failure-discount (probability of surviving the approach),
// u = 1/Cdelay the instantaneous benefit of transmitting at d.
#pragma once

#include <vector>

#include "core/delay.h"
#include "uav/failure.h"

namespace skyferry::core {

/// One evaluated point of the utility curve.
struct UtilityPoint {
  double d_m{0.0};
  double utility{0.0};
  double discount{0.0};
  double cdelay_s{0.0};
  double tship_s{0.0};
  double ttx_s{0.0};
};

class UtilityFunction {
 public:
  /// Both referenced models must outlive this object.
  UtilityFunction(const CommDelayModel& delay, const uav::FailureModel& failure) noexcept
      : delay_(delay), failure_(failure) {}

  /// U(d); 0 where Cdelay is infinite.
  [[nodiscard]] double operator()(double d_m) const noexcept;

  /// Full decomposition at d.
  [[nodiscard]] UtilityPoint evaluate(double d_m) const noexcept;

  /// Sample the curve on [d_min, d0] with `n` points (n >= 2).
  [[nodiscard]] std::vector<UtilityPoint> curve(int n = 200) const;

  [[nodiscard]] const CommDelayModel& delay() const noexcept { return delay_; }
  [[nodiscard]] const uav::FailureModel& failure() const noexcept { return failure_; }

 private:
  const CommDelayModel& delay_;
  const uav::FailureModel& failure_;
};

}  // namespace skyferry::core
