#include "ctrl/control_channel.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace skyferry::ctrl {

std::size_t wire_bytes(const ControlMessage& m) noexcept {
  return std::visit([](const auto& v) { return v.wire_bytes(); }, m);
}

ControlChannel::ControlChannel(sim::Simulator& sim, ControlChannelConfig cfg)
    : sim_(sim), cfg_(cfg), loss_rng_(cfg.loss_seed) {}

bool ControlChannel::send(const ControlMessage& msg, double distance_m, DeliveryFn on_delivery) {
  if (distance_m > cfg_.range_m) {
    ++dropped_;
    return false;
  }
  const double bits =
      static_cast<double>(wire_bytes(msg) + cfg_.per_message_overhead_bytes) * 8.0;
  const double tx_time = bits / cfg_.bandwidth_bps;
  const double start = std::max(sim_.now(), busy_until_);
  const double done = start + tx_time;
  busy_until_ = done;
  ++sent_;
  if (loss_rng_.bernoulli(cfg_.loss_probability)) {
    // The airtime is spent but the frame never arrives.
    ++dropped_loss_;
    return true;
  }
  sim_.schedule_at(done, [msg, done, fn = std::move(on_delivery)] { fn(msg, done); });
  return true;
}

void ControlChannel::send_reliable(const ControlMessage& msg, DistanceFn distance,
                                   DeliveryFn on_delivery, FailureFn on_failure,
                                   ReliableSendOptions opt) {
  struct Attempt {
    ControlChannel* ch;
    ControlMessage msg;
    DistanceFn distance;
    DeliveryFn on_delivery;
    FailureFn on_failure;
    ReliableSendOptions opt;
    int attempt{0};
    bool delivered{false};
  };
  // Each scheduled retry holds its own copy of the shared state; no
  // self-referential closure, so the state frees once the last timer fires.
  struct TryOnce {
    std::shared_ptr<Attempt> st;
    void operator()() const {
      if (st->delivered) return;
      if (st->attempt >= st->opt.max_attempts) {
        ++st->ch->reliable_failures_;
        if (st->on_failure) st->on_failure(st->attempt);
        return;
      }
      const int n = st->attempt++;
      if (n > 0) ++st->ch->reliable_retries_;
      auto s = st;
      st->ch->send(st->msg, st->distance(), [s](const ControlMessage& m, double t) {
        if (s->delivered) return;  // a late duplicate from an earlier attempt
        s->delivered = true;
        s->on_delivery(m, t);
      });
      const double timeout =
          std::min(st->opt.initial_timeout_s * std::pow(st->opt.backoff_multiplier, n),
                   st->opt.max_timeout_s);
      st->ch->sim_.schedule(timeout, TryOnce{st});
    }
  };
  TryOnce{std::make_shared<Attempt>(Attempt{this, msg, std::move(distance), std::move(on_delivery),
                                            std::move(on_failure), opt})}();
}

}  // namespace skyferry::ctrl
