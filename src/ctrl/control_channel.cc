#include "ctrl/control_channel.h"

#include <algorithm>

namespace skyferry::ctrl {

std::size_t wire_bytes(const ControlMessage& m) noexcept {
  return std::visit([](const auto& v) { return v.wire_bytes(); }, m);
}

ControlChannel::ControlChannel(sim::Simulator& sim, ControlChannelConfig cfg)
    : sim_(sim), cfg_(cfg) {}

bool ControlChannel::send(const ControlMessage& msg, double distance_m, DeliveryFn on_delivery) {
  if (distance_m > cfg_.range_m) {
    ++dropped_;
    return false;
  }
  const double bits =
      static_cast<double>(wire_bytes(msg) + cfg_.per_message_overhead_bytes) * 8.0;
  const double tx_time = bits / cfg_.bandwidth_bps;
  const double start = std::max(sim_.now(), busy_until_);
  const double done = start + tx_time;
  busy_until_ = done;
  ++sent_;
  sim_.schedule_at(done, [msg, done, fn = std::move(on_delivery)] { fn(msg, done); });
  return true;
}

}  // namespace skyferry::ctrl
