// XBeePro-like control channel (paper Sec. 3): 802.15.4 at 2.4 GHz,
// up to 250 kb/s, ~1.5 km range, reserved for telemetry and waypoint
// commands. Modeled as a serialization queue with range gating.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "ctrl/messages.h"
#include "sim/simulator.h"

namespace skyferry::ctrl {

struct ControlChannelConfig {
  double bandwidth_bps{250e3};
  double range_m{1500.0};
  double per_message_overhead_bytes{16};  ///< framing + MAC overhead
};

/// Point-to-point control link between a UAV and the ground station (or
/// two UAVs). Messages serialize FIFO at the channel bandwidth; messages
/// sent while the endpoints are out of range are dropped.
class ControlChannel {
 public:
  using DeliveryFn = std::function<void(const ControlMessage&, double t_s)>;

  ControlChannel(sim::Simulator& sim, ControlChannelConfig cfg = {});

  /// Send a message given the current distance between the endpoints.
  /// Returns false (counted as dropped) when out of range.
  bool send(const ControlMessage& msg, double distance_m, DeliveryFn on_delivery);

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped_out_of_range() const noexcept { return dropped_; }
  [[nodiscard]] double busy_until_s() const noexcept { return busy_until_; }
  [[nodiscard]] const ControlChannelConfig& config() const noexcept { return cfg_; }

 private:
  sim::Simulator& sim_;
  ControlChannelConfig cfg_;
  double busy_until_{0.0};
  std::uint64_t sent_{0};
  std::uint64_t dropped_{0};
};

}  // namespace skyferry::ctrl
