// XBeePro-like control channel (paper Sec. 3): 802.15.4 at 2.4 GHz,
// up to 250 kb/s, ~1.5 km range, reserved for telemetry and waypoint
// commands. Modeled as a serialization queue with range gating and an
// optional i.i.d. per-message loss process (interference/fades the range
// gate alone cannot express).
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "ctrl/messages.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace skyferry::ctrl {

struct ControlChannelConfig {
  double bandwidth_bps{250e3};
  double range_m{1500.0};
  double per_message_overhead_bytes{16};  ///< framing + MAC overhead
  /// Probability an in-range message is silently lost in the air
  /// (sender pays the airtime but the delivery callback never fires).
  double loss_probability{0.0};
  /// Seed of the deterministic loss stream.
  std::uint64_t loss_seed{0x5eedc7a1ULL};
};

/// Retry policy of `send_reliable`: stop-and-wait with exponential
/// backoff on the ack timeout.
struct ReliableSendOptions {
  int max_attempts{5};
  double initial_timeout_s{0.25};
  double backoff_multiplier{2.0};
  double max_timeout_s{5.0};
};

/// Point-to-point control link between a UAV and the ground station (or
/// two UAVs). Messages serialize FIFO at the channel bandwidth; messages
/// sent while the endpoints are out of range are dropped.
class ControlChannel {
 public:
  using DeliveryFn = std::function<void(const ControlMessage&, double t_s)>;
  /// Current endpoint separation; re-evaluated on every retry attempt.
  using DistanceFn = std::function<double()>;
  using FailureFn = std::function<void(int attempts)>;

  ControlChannel(sim::Simulator& sim, ControlChannelConfig cfg = {});

  /// Send a message given the current distance between the endpoints.
  /// Returns false (counted as dropped) when out of range. An in-range
  /// message may still be lost with `cfg.loss_probability`; the sender
  /// cannot tell (returns true) — use `send_reliable` when it matters.
  bool send(const ControlMessage& msg, double distance_m, DeliveryFn on_delivery);

  /// Fire-and-confirm wrapper: retries `send` with exponentially backed-off
  /// timeouts until the message is delivered or `opt.max_attempts` attempts
  /// have been spent, then calls `on_failure` (if set). `distance` is
  /// polled at each attempt, so a moving endpoint can come into range
  /// mid-retry. Delivery fires `on_delivery` exactly once.
  void send_reliable(const ControlMessage& msg, DistanceFn distance, DeliveryFn on_delivery,
                     FailureFn on_failure = {}, ReliableSendOptions opt = {});

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped_out_of_range() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t dropped_loss() const noexcept { return dropped_loss_; }
  [[nodiscard]] std::uint64_t reliable_retries() const noexcept { return reliable_retries_; }
  [[nodiscard]] std::uint64_t reliable_failures() const noexcept { return reliable_failures_; }
  [[nodiscard]] double busy_until_s() const noexcept { return busy_until_; }
  [[nodiscard]] const ControlChannelConfig& config() const noexcept { return cfg_; }

 private:
  sim::Simulator& sim_;
  ControlChannelConfig cfg_;
  sim::Rng loss_rng_;
  double busy_until_{0.0};
  std::uint64_t sent_{0};
  std::uint64_t dropped_{0};
  std::uint64_t dropped_loss_{0};
  std::uint64_t reliable_retries_{0};
  std::uint64_t reliable_failures_{0};
};

}  // namespace skyferry::ctrl
