#include "ctrl/estimator.h"

#include <algorithm>
#include <cmath>

namespace skyferry::ctrl {

bool DistanceEstimator::update(const Telemetry& telemetry) {
  // A corrupted fix (NaN/Inf coordinates or timestamp) must not poison
  // the filter: reject and count, like sim::Simulator's NaN-time guard.
  if (!std::isfinite(telemetry.t_s) || !std::isfinite(telemetry.position.lat_deg) ||
      !std::isfinite(telemetry.position.lon_deg) || !std::isfinite(telemetry.position.alt_m)) {
    ++rejected_;
    return false;
  }
  const geo::Vec3 z = frame_.to_enu(telemetry.position);
  auto it = peers_.find(telemetry.uav_id);
  if (it == peers_.end()) {
    PeerEstimate e;
    e.position = z;
    e.velocity = {};
    e.updated_t_s = telemetry.t_s;
    e.samples = 1;
    peers_.emplace(telemetry.uav_id, e);
    return true;
  }
  PeerEstimate& e = it->second;
  const double dt = std::max(telemetry.t_s - e.updated_t_s, 1e-3);
  // Alpha-beta filter: predict, then blend in the innovation.
  const geo::Vec3 predicted = e.position + e.velocity * dt;
  const geo::Vec3 innovation = z - predicted;
  e.position = predicted + innovation * cfg_.alpha;
  e.velocity += innovation * (cfg_.beta / dt);
  e.updated_t_s = telemetry.t_s;
  ++e.samples;
  return true;
}

std::optional<PeerEstimate> DistanceEstimator::estimate(const std::string& uav_id,
                                                        double now_s) const {
  const auto it = peers_.find(uav_id);
  if (it == peers_.end()) return std::nullopt;
  const PeerEstimate& e = it->second;
  const double age = now_s - e.updated_t_s;
  if (age > cfg_.staleness_limit_s || age < 0.0) return std::nullopt;
  PeerEstimate out = e;
  out.position = e.position + e.velocity * age;  // dead-reckon forward
  out.updated_t_s = now_s;
  return out;
}

std::optional<double> DistanceEstimator::distance(const std::string& a, const std::string& b,
                                                  double now_s) const {
  const auto ea = estimate(a, now_s);
  const auto eb = estimate(b, now_s);
  if (!ea || !eb) return std::nullopt;
  return geo::distance(ea->position, eb->position);
}

std::optional<double> DistanceEstimator::closing_speed(const std::string& a,
                                                       const std::string& b,
                                                       double now_s) const {
  const auto ea = estimate(a, now_s);
  const auto eb = estimate(b, now_s);
  if (!ea || !eb) return std::nullopt;
  // One fix has no velocity: the filter's zero-initialized one would be
  // a garbage closing speed, so report "no estimate" instead.
  if (ea->samples < 2 || eb->samples < 2) return std::nullopt;
  const geo::Vec3 dp = eb->position - ea->position;
  const double dist = dp.norm();
  if (dist < 1e-6) return 0.0;
  const geo::Vec3 dv = eb->velocity - ea->velocity;
  return dot(dv, dp / dist);
}

}  // namespace skyferry::ctrl
