// Peer-state estimation from telemetry. The central planner never sees
// true positions — it sees 1 Hz XBee telemetry carrying GPS fixes with
// meter-scale error and serialization latency. DistanceEstimator runs an
// alpha-beta filter per peer and answers the two questions the
// delayed-gratification decision needs: the current distance d0 and its
// rate of change (closing speed).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "ctrl/messages.h"
#include "geo/geodesy.h"
#include "geo/vec3.h"

namespace skyferry::ctrl {

struct EstimatorConfig {
  double alpha{0.5};  ///< position correction gain
  double beta{0.2};   ///< velocity correction gain
  /// Discard estimates older than this (telemetry loss / out of range).
  double staleness_limit_s{5.0};
};

/// Filtered kinematic state of one peer in the local ENU frame.
struct PeerEstimate {
  geo::Vec3 position;
  geo::Vec3 velocity;
  double updated_t_s{0.0};
  /// Accepted fixes folded into this estimate. One fix pins the
  /// position but carries no velocity information.
  std::uint32_t samples{0};
};

class DistanceEstimator {
 public:
  DistanceEstimator(EstimatorConfig cfg, geo::LocalFrame frame) noexcept
      : cfg_(cfg), frame_(frame) {}

  /// Ingest one telemetry message (timestamped at transmission).
  /// Non-finite positions/timestamps are rejected and counted (a
  /// corrupted GPS fix must not poison the filter state) — returns
  /// false for a rejected message.
  bool update(const Telemetry& telemetry);

  /// Latest (extrapolated to `now_s`) estimate for a peer; nullopt when
  /// unknown or stale.
  [[nodiscard]] std::optional<PeerEstimate> estimate(const std::string& uav_id,
                                                     double now_s) const;

  /// Estimated distance between two peers at `now_s` [m]; nullopt when
  /// either is unknown/stale.
  [[nodiscard]] std::optional<double> distance(const std::string& a, const std::string& b,
                                               double now_s) const;

  /// Estimated closing speed between two peers [m/s] (< 0 = approaching).
  /// Tagged "no estimate" (nullopt) until *both* peers have at least two
  /// accepted fixes — a one-sample window has no velocity, and reporting
  /// the filter's zero-initialized one would be a garbage estimate.
  [[nodiscard]] std::optional<double> closing_speed(const std::string& a, const std::string& b,
                                                    double now_s) const;

  [[nodiscard]] std::size_t tracked_peers() const noexcept { return peers_.size(); }
  /// Telemetry messages rejected for non-finite position/timestamp.
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  EstimatorConfig cfg_;
  geo::LocalFrame frame_;
  std::unordered_map<std::string, PeerEstimate> peers_;
  std::uint64_t rejected_{0};
};

}  // namespace skyferry::ctrl
