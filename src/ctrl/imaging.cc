#include "ctrl/imaging.h"

#include <cmath>

#include "geo/geodesy.h"

namespace skyferry::ctrl {

double CameraModel::aspect() const noexcept {
  return static_cast<double>(res_width_px) / static_cast<double>(res_height_px);
}

double CameraModel::fov_m(double altitude_m) const noexcept {
  return 2.0 * altitude_m * std::tan(geo::deg2rad(lens_angle_deg) / 2.0);
}

double CameraModel::image_area_m2(double altitude_m) const noexcept {
  const double fov = fov_m(altitude_m);
  const double k = aspect();
  // A = (k*FOV/sqrt(k^2+1)) * (FOV/sqrt(k^2+1)) = FOV^2 * k / (k^2+1).
  return fov * fov * k / (k * k + 1.0);
}

SectorImagingPlan plan_sector_imaging(const CameraModel& cam, double sector_area_m2,
                                      double altitude_m) noexcept {
  SectorImagingPlan plan;
  plan.sector_area_m2 = sector_area_m2;
  plan.altitude_m = altitude_m;
  const double a_img = cam.image_area_m2(altitude_m);
  plan.images_required = (a_img > 0.0) ? sector_area_m2 / a_img : 0.0;
  plan.batch.num_images = static_cast<std::uint32_t>(std::ceil(plan.images_required));
  plan.batch.image_bytes = cam.image_bytes;
  return plan;
}

}  // namespace skyferry::ctrl
