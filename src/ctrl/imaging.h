// Camera / imaging model — the paper's M_data derivation (Sec. 2.2 and
// footnotes 3-4): a picture is a k-aspect rectangle whose diagonal is the
// ground field of view FOV(h) = 2*h*tan(lens/2); the covered area is
// A_image = FOV^2 * k / (k^2+1); a sector of A_sector needs
// A_sector/A_image pictures of M_image bytes each.
#pragma once

#include "net/packet.h"

namespace skyferry::ctrl {

struct CameraModel {
  int res_width_px{1280};
  int res_height_px{720};
  double lens_angle_deg{65.0};
  /// JPG100 at 24 bit/px for 1280x720 (paper footnote 3).
  double image_bytes{0.39e6};

  /// Aspect ratio k = width/height.
  [[nodiscard]] double aspect() const noexcept;

  /// Diagonal ground field of view [m] at altitude h.
  [[nodiscard]] double fov_m(double altitude_m) const noexcept;

  /// Ground area covered by one picture [m^2] at altitude h.
  [[nodiscard]] double image_area_m2(double altitude_m) const noexcept;
};

/// Imaging plan for a rectangular sector.
struct SectorImagingPlan {
  double sector_area_m2{0.0};
  double altitude_m{0.0};
  double images_required{0.0};  ///< A_sector / A_image (fractional)
  net::DataBatch batch;         ///< ceil(images) pictures of image_bytes
};

/// Compute the pictures and data volume needed to cover `sector_area_m2`
/// from `altitude_m` — the paper's M_data = A_sector/A_image * M_image.
[[nodiscard]] SectorImagingPlan plan_sector_imaging(const CameraModel& cam, double sector_area_m2,
                                                    double altitude_m) noexcept;

}  // namespace skyferry::ctrl
