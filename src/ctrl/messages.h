// Control-plane messages exchanged between UAVs and the ground-station
// planner over the low-rate long-range channel (paper Sec. 3): telemetry
// up, waypoint commands down.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "geo/geodesy.h"
#include "geo/vec3.h"

namespace skyferry::ctrl {

/// Light-weight UAV status report (GPS coordinates, speed, battery...).
struct Telemetry {
  std::string uav_id;
  double t_s{0.0};
  geo::GeoPoint position;
  double speed_mps{0.0};
  double battery_soc{1.0};
  std::uint32_t images_collected{0};

  /// Serialized size [bytes]: id + fixed binary fields (conservative).
  [[nodiscard]] std::size_t wire_bytes() const noexcept { return uav_id.size() + 44; }
};

/// New waypoint from the central planner.
struct WaypointCommand {
  std::string uav_id;
  geo::GeoPoint target;
  double speed_mps{0.0};
  double hold_s{0.0};

  [[nodiscard]] std::size_t wire_bytes() const noexcept { return uav_id.size() + 36; }
};

/// Instruction to start transmitting the collected batch at the planned
/// rendezvous distance.
struct TransmitCommand {
  std::string uav_id;
  std::string peer_id;
  double transmit_distance_m{0.0};

  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return uav_id.size() + peer_id.size() + 12;
  }
};

using ControlMessage = std::variant<Telemetry, WaypointCommand, TransmitCommand>;

[[nodiscard]] std::size_t wire_bytes(const ControlMessage& m) noexcept;

}  // namespace skyferry::ctrl
