#include "ctrl/resilience.h"

#include <cmath>

#include "stats/regression.h"

namespace skyferry::ctrl {

OnlineChannelEstimator::OnlineChannelEstimator(ChannelEstimatorConfig cfg, double nominal_a,
                                               double nominal_b, double scale) noexcept
    : cfg_(cfg), nominal_a_(nominal_a), nominal_b_(nominal_b), scale_(scale) {
  if (cfg_.window == 0) cfg_.window = 1;
  if (cfg_.min_samples < 2) cfg_.min_samples = 2;
  if (cfg_.noise_rel <= 0.0) cfg_.noise_rel = 0.12;
  buf_.reserve(cfg_.window);
}

double OnlineChannelEstimator::nominal_bps(double distance_m) const noexcept {
  if (distance_m <= 0.0) return 0.0;
  return std::max(0.0, scale_ * (nominal_a_ * std::log2(distance_m) + nominal_b_));
}

bool OnlineChannelEstimator::add_sample(double distance_m, double throughput_bps) noexcept {
  if (!std::isfinite(distance_m) || distance_m <= 0.0 || !std::isfinite(throughput_bps) ||
      throughput_bps < 0.0) {
    ++rejected_;
    return false;
  }
  ++accepted_;
  const double pred = nominal_bps(distance_m);
  // A sample where the nominal model and the world agree the link is
  // dead (both zero, e.g. beyond max range) carries no information about
  // the model's *shape*: keep it out of the fit window so the windowed
  // re-fit reflects the live region only. It still counts as accepted
  // and passes through the (no-op, z = 0) divergence update below.
  if (pred > 0.0 || throughput_bps > 0.0) {
    if (buf_.size() < cfg_.window) {
      buf_.push_back({distance_m, throughput_bps});
    } else {
      buf_[next_] = {distance_m, throughput_bps};
      next_ = (next_ + 1) % cfg_.window;
    }
  }

  // Divergence update: z-score of the log-ratio against the nominal
  // prediction. A dead observation against a live prediction (or vice
  // versa) is maximal surprise; clamp instead of letting log(0) poison
  // the CUSUM state.
  double log_ratio;
  if (pred <= 0.0 && throughput_bps <= 0.0) {
    log_ratio = 0.0;  // both models agree the link is dead here
  } else if (pred <= 0.0 || throughput_bps <= 0.0) {
    log_ratio = (throughput_bps > pred) ? 2.0 : -2.0;
  } else {
    log_ratio = std::clamp(std::log(throughput_bps / pred), -2.0, 2.0);
  }
  const double z = log_ratio / cfg_.noise_rel;
  ewma_ = (1.0 - cfg_.ewma_alpha) * ewma_ + cfg_.ewma_alpha * z;
  cusum_pos_ = std::max(0.0, cusum_pos_ + z - cfg_.cusum_k);
  cusum_neg_ = std::max(0.0, cusum_neg_ - z - cfg_.cusum_k);
  return true;
}

std::optional<ChannelEstimate> OnlineChannelEstimator::estimate() const {
  if (buf_.size() < cfg_.min_samples) return std::nullopt;  // tagged no-estimate

  std::vector<double> xs, ys;
  xs.reserve(buf_.size());
  ys.reserve(buf_.size());
  double log_gain_sum = 0.0;
  std::size_t gain_n = 0;
  for (const auto& s : buf_) {
    xs.push_back(s.distance_m);
    ys.push_back(s.throughput_bps / scale_);
    const double pred = nominal_bps(s.distance_m);
    if (pred > 0.0 && s.throughput_bps > 0.0) {
      log_gain_sum += std::log(s.throughput_bps / pred);
      ++gain_n;
    }
  }
  const auto fit = stats::log2_fit(xs, ys);

  ChannelEstimate e;
  e.a = fit.a;
  e.b = fit.b;
  e.gain = gain_n > 0 ? std::exp(log_gain_sum / static_cast<double>(gain_n)) : 1.0;
  e.r_squared = std::clamp(fit.r_squared, 0.0, 1.0);
  e.samples = buf_.size();

  // Residual sigma of log(obs / fit) — the fit's own confidence band.
  double ss = 0.0;
  std::size_t res_n = 0;
  for (const auto& s : buf_) {
    const double f = scale_ * fit(s.distance_m);
    if (f > 0.0 && s.throughput_bps > 0.0) {
      const double r = std::log(s.throughput_bps / f);
      ss += r * r;
      ++res_n;
    }
  }
  e.stderr_rel = res_n > 1 ? std::sqrt(ss / static_cast<double>(res_n - 1)) : 0.0;
  const double n = static_cast<double>(buf_.size());
  e.confidence = e.r_squared * (n / (n + 8.0));
  return e;
}

void OnlineChannelEstimator::rearm() noexcept {
  buf_.clear();
  next_ = 0;
  ewma_ = 0.0;
  cusum_pos_ = 0.0;
  cusum_neg_ = 0.0;
}

bool HazardRateEstimator::add_sample(double rho_per_m) noexcept {
  if (!std::isfinite(rho_per_m) || rho_per_m < 0.0) {
    ++rejected_;
    return false;
  }
  ewma_ = (accepted_ == 0) ? rho_per_m : (1.0 - cfg_.alpha) * ewma_ + cfg_.alpha * rho_per_m;
  ++accepted_;
  return true;
}

std::optional<double> HazardRateEstimator::rho() const noexcept {
  if (accepted_ < cfg_.min_samples) return std::nullopt;  // tagged no-estimate
  return ewma_;
}

double HazardRateEstimator::relative_error_vs(double nominal_rho) const noexcept {
  const auto r = rho();
  if (!r) return 0.0;
  if (nominal_rho <= 0.0) return *r > 0.0 ? 1.0 : 0.0;
  return std::abs(*r / nominal_rho - 1.0);
}

const char* to_string(ResilienceMode m) noexcept {
  switch (m) {
    case ResilienceMode::kNominal: return "nominal";
    case ResilienceMode::kReEstimated: return "re-estimated";
    case ResilienceMode::kConservative: return "conservative";
  }
  return "?";
}

ResilienceMode DegradedModeController::update(const HealthSignals& h) noexcept {
  ResilienceMode want = ResilienceMode::kNominal;

  const bool model_mismatch = h.divergence >= cfg_.divergence_threshold ||
                              h.rho_rel_error >= cfg_.rho_rel_threshold;
  if (model_mismatch) {
    // A mismatch we can re-estimate is a re-decision; one we cannot
    // trust the estimator on is a reason to stop gambling and transmit.
    want = h.estimator_confidence >= cfg_.min_confidence ? ResilienceMode::kReEstimated
                                                         : ResilienceMode::kConservative;
  }
  if (h.control_retry_fraction >= cfg_.control_retry_threshold ||
      h.battery_fraction <= cfg_.battery_floor_fraction) {
    want = ResilienceMode::kConservative;
  }

  // Forward-only ladder: degrade, never recover mid-mission.
  if (static_cast<int>(want) > static_cast<int>(mode_)) {
    mode_ = want;
    ++transitions_;
  }
  return mode_;
}

}  // namespace skyferry::ctrl
