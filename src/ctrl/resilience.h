// Mission resilience primitives: online detection that the world has
// drifted away from the nominal models the now-or-later decision was
// computed from, and the health-driven degradation ladder that decides
// what to do about it.
//
// The paper's decision is solved once from the fitted median throughput
// s(d) and the assumed failure rate ρ — exactly the two quantities that
// drift in flight (wind, multipath, battery aging). This header provides
// the in-flight observers:
//
//  * OnlineChannelEstimator — folds throughput probes into a windowed
//    log2-fit (the paper's own model shape) with a confidence score, and
//    maintains an EWMA + two-sided CUSUM divergence statistic of the
//    observations against the nominal fit. Non-finite or non-positive
//    samples are rejected and counted, mirroring sim::Simulator's
//    NaN-time guard; a window below min_samples returns a tagged
//    "no estimate" (nullopt) instead of a garbage fit.
//  * HazardRateEstimator — EWMA over noisy failure-rate observations
//    (the paper derives ρ from the battery-limited range, so battery
//    drain telemetry observes ρ directly), same rejection discipline.
//  * DegradedModeController — the monotone fallback ladder
//    nominal → re-estimated → conservative-transmit-now, stepped by
//    health signals (estimator confidence, divergence, control-channel
//    retry fraction, battery floor). Forward-only by construction, so
//    the mission mode can never thrash.
//
// The re-decision itself (re-running the optimizer on the re-estimated
// (s(d), ρ)) lives in core/redecide.h — core already depends on ctrl,
// not the other way around.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace skyferry::ctrl {

struct ChannelEstimatorConfig {
  /// Ring-buffer capacity of the sample window.
  std::size_t window{64};
  /// Below this many accepted samples estimate() is a tagged nullopt.
  std::size_t min_samples{8};
  /// EWMA gain of the smoothed residual z-score.
  double ewma_alpha{0.2};
  /// CUSUM slack per sample, in units of the assumed noise sigma.
  double cusum_k{0.5};
  /// CUSUM decision threshold: divergence() >= cusum_h flags mismatch.
  double cusum_h{8.0};
  /// Assumed relative (log-domain) noise sigma of one throughput probe;
  /// the residual z-score is log(obs/nominal) / noise_rel.
  double noise_rel{0.12};
};

/// One accepted (distance, throughput) probe.
struct ChannelSample {
  double distance_m{0.0};
  double throughput_bps{0.0};
};

/// Windowed re-fit of the paper's throughput shape s(d) = scale·(a·log2 d + b).
struct ChannelEstimate {
  double a{0.0};          ///< fitted slope against log2(d) (scale units)
  double b{0.0};          ///< fitted intercept (scale units)
  double gain{1.0};       ///< robust multiplicative error vs nominal, exp(mean log ratio)
  double r_squared{0.0};  ///< fit quality over the window
  double stderr_rel{0.0}; ///< residual sigma of log(obs/fit) — the fit's CI width
  std::size_t samples{0};
  /// [0, 1]: r² shrunk by the sample count — the ladder's "can I trust
  /// the re-estimate" signal.
  double confidence{0.0};
};

class OnlineChannelEstimator {
 public:
  /// `nominal_a`/`nominal_b`/`scale` describe the planner's model
  /// s(d) = scale·(a·log2 d + b) — the hypothesis the divergence
  /// statistic tests against.
  OnlineChannelEstimator(ChannelEstimatorConfig cfg, double nominal_a, double nominal_b,
                         double scale = 1e6) noexcept;

  /// Fold one probe in. Returns false (and counts the rejection) for
  /// NaN/Inf or non-positive distance, or NaN/Inf/negative throughput.
  bool add_sample(double distance_m, double throughput_bps) noexcept;

  /// Windowed log2-fit; tagged "no estimate" (nullopt) below
  /// cfg.min_samples accepted samples — never a garbage fit.
  [[nodiscard]] std::optional<ChannelEstimate> estimate() const;

  /// Current divergence score: max of the two one-sided CUSUM sums of
  /// the per-sample z-scores. 0 when the window agrees with nominal.
  [[nodiscard]] double divergence() const noexcept { return std::max(cusum_pos_, cusum_neg_); }
  /// Smoothed residual z-score (signed: negative = worse than nominal).
  [[nodiscard]] double ewma() const noexcept { return ewma_; }
  /// Divergence crossed the configured CUSUM threshold.
  [[nodiscard]] bool mismatch() const noexcept { return divergence() >= cfg_.cusum_h; }

  /// Re-arm the detector after a re-decision absorbed the drift: clears
  /// the CUSUM/EWMA state *and* the sample window (the old window was
  /// explained by the old model).
  void rearm() noexcept;

  [[nodiscard]] std::size_t samples() const noexcept { return buf_.size(); }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] const ChannelEstimatorConfig& config() const noexcept { return cfg_; }

  /// Nominal prediction the divergence is measured against [bit/s].
  [[nodiscard]] double nominal_bps(double distance_m) const noexcept;

 private:
  ChannelEstimatorConfig cfg_;
  double nominal_a_;
  double nominal_b_;
  double scale_;
  std::vector<ChannelSample> buf_;  ///< ring buffer, capacity cfg_.window
  std::size_t next_{0};
  double ewma_{0.0};
  double cusum_pos_{0.0};
  double cusum_neg_{0.0};
  std::uint64_t accepted_{0};
  std::uint64_t rejected_{0};
};

struct HazardEstimatorConfig {
  double alpha{0.15};  ///< EWMA gain
  /// Below this many accepted observations rho() is a tagged nullopt.
  /// Sized so the EWMA's early-sample variance is well inside the
  /// default 25% relative-error trip threshold (no false rho alarms).
  std::size_t min_samples{8};
};

/// Online failure-rate tracker. The paper's ρ is the inverse of the
/// battery-limited range, so periodic battery-drain telemetry yields
/// direct (noisy) ρ observations; this smooths them with the same
/// reject-and-count discipline as the channel estimator.
class HazardRateEstimator {
 public:
  explicit HazardRateEstimator(HazardEstimatorConfig cfg = {}) noexcept : cfg_(cfg) {}

  /// Returns false (counted) for NaN/Inf or negative observations.
  bool add_sample(double rho_per_m) noexcept;

  /// Smoothed ρ; tagged nullopt below cfg.min_samples.
  [[nodiscard]] std::optional<double> rho() const noexcept;

  /// |rho_hat/nominal - 1|, or 0 while there is no estimate.
  [[nodiscard]] double relative_error_vs(double nominal_rho) const noexcept;

  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  HazardEstimatorConfig cfg_;
  double ewma_{0.0};
  std::uint64_t accepted_{0};
  std::uint64_t rejected_{0};
};

/// The degradation ladder, most capable first. Transitions are
/// forward-only (a mission never un-degrades), which is what makes the
/// mode sequence thrash-free by construction.
enum class ResilienceMode : std::uint8_t {
  kNominal = 0,      ///< fly the static plan
  kReEstimated = 1,  ///< re-run the decision on re-estimated (s(d), rho)
  kConservative = 2, ///< model untrustworthy or mission at risk: transmit now
};

[[nodiscard]] const char* to_string(ResilienceMode m) noexcept;

struct DegradationConfig {
  /// Channel divergence at which the ladder leaves kNominal (should
  /// match the re-decision trigger).
  double divergence_threshold{8.0};
  /// ρ relative error at which the ladder leaves kNominal.
  double rho_rel_threshold{0.25};
  /// Estimator confidence below which a detected mismatch cannot be
  /// re-estimated — degrade straight to conservative.
  double min_confidence{0.25};
  /// Control-channel retry fraction (retries per reliable send) above
  /// which the rendezvous negotiation is considered failing.
  double control_retry_threshold{3.0};
  /// Battery state-of-charge floor.
  double battery_floor_fraction{0.15};
};

/// Health snapshot the controller steps on. Defaults are "all healthy".
struct HealthSignals {
  double divergence{0.0};
  double rho_rel_error{0.0};
  double estimator_confidence{1.0};
  double control_retry_fraction{0.0};
  double battery_fraction{1.0};
};

class DegradedModeController {
 public:
  explicit DegradedModeController(DegradationConfig cfg = {}) noexcept : cfg_(cfg) {}

  /// Fold one health snapshot in; returns the (possibly stepped) mode.
  /// Monotone: the returned mode is never less degraded than before.
  ResilienceMode update(const HealthSignals& h) noexcept;

  [[nodiscard]] ResilienceMode mode() const noexcept { return mode_; }
  [[nodiscard]] int transitions() const noexcept { return transitions_; }
  [[nodiscard]] const DegradationConfig& config() const noexcept { return cfg_; }

 private:
  DegradationConfig cfg_;
  ResilienceMode mode_{ResilienceMode::kNominal};
  int transitions_{0};
};

}  // namespace skyferry::ctrl
