#include "ctrl/sector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace skyferry::ctrl {

bool Sector::contains(const geo::Vec3& p) const noexcept {
  return p.x >= origin.x && p.x <= origin.x + width_m && p.y >= origin.y &&
         p.y <= origin.y + height_m;
}

std::vector<Sector> make_sector_grid(double width_m, double height_m, int nx, int ny,
                                     double altitude_m) {
  assert(nx >= 1 && ny >= 1);
  std::vector<Sector> sectors;
  sectors.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
  const double w = width_m / nx;
  const double h = height_m / ny;
  int idx = 0;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      Sector s;
      s.origin = {i * w, j * h, altitude_m};
      s.width_m = w;
      s.height_m = h;
      s.index = idx++;
      sectors.push_back(s);
    }
  }
  return sectors;
}

std::vector<geo::Vec3> lawnmower_path(const Sector& s, double track_spacing_m) {
  std::vector<geo::Vec3> path;
  const double spacing = std::clamp(track_spacing_m, 0.5, std::max(s.width_m, 0.5));
  const int tracks = std::max(1, static_cast<int>(std::ceil(s.width_m / spacing)) + 1);
  for (int i = 0; i < tracks; ++i) {
    const double x = s.origin.x + std::min(i * spacing, s.width_m);
    const double y_lo = s.origin.y;
    const double y_hi = s.origin.y + s.height_m;
    if (i % 2 == 0) {
      path.push_back({x, y_lo, s.origin.z});
      path.push_back({x, y_hi, s.origin.z});
    } else {
      path.push_back({x, y_hi, s.origin.z});
      path.push_back({x, y_lo, s.origin.z});
    }
  }
  return path;
}

double path_length_m(const std::vector<geo::Vec3>& path) noexcept {
  double len = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) len += geo::distance(path[i - 1], path[i]);
  return len;
}

double coverage_track_spacing_m(const CameraModel& cam, double altitude_m) noexcept {
  // Footprint short side: FOV / sqrt(k^2+1).
  const double k = cam.aspect();
  return cam.fov_m(altitude_m) / std::sqrt(k * k + 1.0);
}

SweepEstimate estimate_sweep(const Sector& s, const CameraModel& cam, double speed_mps) {
  SweepEstimate e;
  const double alt = s.origin.z;
  const auto path = lawnmower_path(s, coverage_track_spacing_m(cam, alt));
  e.path_m = path_length_m(path);
  e.duration_s = (speed_mps > 0.0) ? e.path_m / speed_mps : 0.0;
  const SectorImagingPlan plan = plan_sector_imaging(cam, s.area_m2(), alt);
  e.images = plan.batch.num_images;
  return e;
}

}  // namespace skyferry::ctrl
