// Mission-area decomposition and coverage paths. The paper divides the
// area of interest into sectors, one UAV exclusively responsible per
// sector (Sec. 2.2). SectorGrid splits a rectangle into per-UAV sectors;
// lawnmower_path produces the boustrophedon sweep whose track spacing
// matches the camera footprint so the sweep photographs the whole sector.
#pragma once

#include <vector>

#include "ctrl/imaging.h"
#include "geo/vec3.h"

namespace skyferry::ctrl {

/// Axis-aligned rectangular sector in the local ENU frame.
struct Sector {
  geo::Vec3 origin;  ///< south-west corner (z = survey altitude)
  double width_m{0.0};   ///< east extent
  double height_m{0.0};  ///< north extent
  int index{0};

  [[nodiscard]] double area_m2() const noexcept { return width_m * height_m; }
  [[nodiscard]] geo::Vec3 center() const noexcept {
    return {origin.x + width_m / 2.0, origin.y + height_m / 2.0, origin.z};
  }
  [[nodiscard]] bool contains(const geo::Vec3& p) const noexcept;
};

/// Split a W x H rectangle into nx * ny equal sectors at `altitude_m`.
[[nodiscard]] std::vector<Sector> make_sector_grid(double width_m, double height_m, int nx, int ny,
                                                   double altitude_m);

/// Boustrophedon ("lawnmower") sweep over a sector with the given track
/// spacing; returns the turning points. Spacing is clamped to the sector
/// width. The path starts at the sector origin corner.
[[nodiscard]] std::vector<geo::Vec3> lawnmower_path(const Sector& s, double track_spacing_m);

/// Total length [m] of a polyline path.
[[nodiscard]] double path_length_m(const std::vector<geo::Vec3>& path) noexcept;

/// Track spacing that guarantees full photographic coverage: the short
/// side of the camera footprint at the survey altitude.
[[nodiscard]] double coverage_track_spacing_m(const CameraModel& cam, double altitude_m) noexcept;

/// Time [s] to sweep a sector at `speed_mps` with full coverage, plus the
/// number of images captured at the camera's along-track footprint.
struct SweepEstimate {
  double duration_s{0.0};
  double path_m{0.0};
  std::uint32_t images{0};
};
[[nodiscard]] SweepEstimate estimate_sweep(const Sector& s, const CameraModel& cam,
                                           double speed_mps);

}  // namespace skyferry::ctrl
