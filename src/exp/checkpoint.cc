#include "exp/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

#include "exp/codec.h"

namespace skyferry::exp {
namespace {

constexpr int kFormatVersion = 1;

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

const io::Json& need(const io::Json& j, const char* key) {
  const io::Json* v = j.find(key);
  if (v == nullptr)
    throw CheckpointError(std::string("checkpoint: missing key '") + key + "'");
  return *v;
}

int need_int(const io::Json& j, const char* key) {
  const io::Json& v = need(j, key);
  if (!v.is_number()) throw CheckpointError(std::string("checkpoint: '") + key + "' must be a number");
  const double d = v.as_number();
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d)
    throw CheckpointError(std::string("checkpoint: '") + key + "' must be an integer");
  return i;
}

}  // namespace

std::string grid_signature(const std::vector<Point>& points) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& p : points) {
    h = fnv1a(h, p.label());
    h = fnv1a(h, "|");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

void CheckpointFile::add_chunk(ChunkRecord rec) {
  if (rec.point >= points)
    throw CheckpointError("checkpoint: chunk point " + std::to_string(rec.point) +
                          " out of range (grid has " + std::to_string(points) + " points)");
  if (rec.start < 0 || rec.end <= rec.start || rec.end > trials)
    throw CheckpointError("checkpoint: chunk trials [" + std::to_string(rec.start) + ", " +
                          std::to_string(rec.end) + ") out of range (trials per point " +
                          std::to_string(trials) + ")");
  if (rec.results.size() != static_cast<std::size_t>(rec.end - rec.start))
    throw CheckpointError("checkpoint: chunk holds " + std::to_string(rec.results.size()) +
                          " results for " + std::to_string(rec.end - rec.start) + " trials");
  if (has_chunk(rec.point, rec.start))
    throw CheckpointError("checkpoint: duplicate chunk (point " + std::to_string(rec.point) +
                          ", start " + std::to_string(rec.start) + ")");
  chunks_.push_back(std::move(rec));
}

bool CheckpointFile::has_chunk(std::size_t point, int start) const noexcept {
  for (const auto& c : chunks_)
    if (c.point == point && c.start == start) return true;
  return false;
}

std::size_t CheckpointFile::completed_trials() const noexcept {
  std::size_t n = 0;
  for (const auto& c : chunks_) n += static_cast<std::size_t>(c.end - c.start);
  return n;
}

io::Json CheckpointFile::to_json() const {
  io::Json j = io::Json::object();
  j.set("skyferry_checkpoint", kFormatVersion);
  j.set("name", name);
  j.set("seed", std::to_string(seed));
  j.set("trials", trials);
  j.set("points", static_cast<double>(points));
  j.set("chunk", chunk);
  j.set("grid", grid);
  io::Json arr = io::Json::array();
  for (const auto& c : chunks_) {
    io::Json cj = io::Json::object();
    cj.set("point", static_cast<double>(c.point));
    cj.set("start", c.start);
    cj.set("end", c.end);
    cj.set("results", c.results);
    io::Json fj = io::Json::array();
    for (const auto& f : c.failures) fj.push_back(failure_to_json(f));
    cj.set("failures", fj);
    arr.push_back(std::move(cj));
  }
  j.set("chunks", std::move(arr));
  return j;
}

CheckpointFile CheckpointFile::from_json(const io::Json& j) {
  if (!j.is_object()) throw CheckpointError("checkpoint: expected a JSON object");
  const io::Json& version = need(j, "skyferry_checkpoint");
  if (!version.is_number() || static_cast<int>(version.as_number()) != kFormatVersion)
    throw CheckpointError("checkpoint: unsupported format version");
  CheckpointFile f;
  f.name = need(j, "name").as_string();
  try {
    f.seed = Codec<std::uint64_t>::decode(need(j, "seed"));
  } catch (const CodecError& e) {
    throw CheckpointError(std::string("checkpoint: bad seed: ") + e.what());
  }
  f.trials = need_int(j, "trials");
  const int pts = need_int(j, "points");
  if (pts < 0) throw CheckpointError("checkpoint: negative point count");
  f.points = static_cast<std::size_t>(pts);
  f.chunk = need_int(j, "chunk");
  f.grid = need(j, "grid").as_string();
  if (f.trials <= 0 || f.chunk <= 0)
    throw CheckpointError("checkpoint: non-positive trials/chunk in header");
  const io::Json& chunks = need(j, "chunks");
  if (!chunks.is_array()) throw CheckpointError("checkpoint: 'chunks' must be an array");
  for (const io::Json& cj : chunks.items()) {
    if (!cj.is_object()) throw CheckpointError("checkpoint: chunk record must be an object");
    ChunkRecord rec;
    const int point = need_int(cj, "point");
    if (point < 0) throw CheckpointError("checkpoint: negative chunk point");
    rec.point = static_cast<std::size_t>(point);
    rec.start = need_int(cj, "start");
    rec.end = need_int(cj, "end");
    rec.results = need(cj, "results");
    if (!rec.results.is_array())
      throw CheckpointError("checkpoint: chunk 'results' must be an array");
    const io::Json& failures = need(cj, "failures");
    if (!failures.is_array())
      throw CheckpointError("checkpoint: chunk 'failures' must be an array");
    for (const io::Json& fj : failures.items()) {
      try {
        rec.failures.push_back(failure_from_json(fj));
      } catch (const std::exception& e) {
        throw CheckpointError(std::string("checkpoint: bad failure record: ") + e.what());
      }
    }
    f.add_chunk(std::move(rec));  // range/duplicate validation
  }
  return f;
}

void CheckpointFile::save_atomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) throw CheckpointError("checkpoint: cannot open " + tmp + " for writing");
  const std::string text = to_json().dump(2);
  const bool wrote = std::fwrite(text.data(), 1, text.size(), fp) == text.size() &&
                     std::fflush(fp) == 0;
#ifndef _WIN32
  // fsync before rename: the rename must never land ahead of the data.
  const bool synced = wrote && ::fsync(::fileno(fp)) == 0;
#else
  const bool synced = wrote;
#endif
  std::fclose(fp);
  if (!synced) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot rename " + tmp + " -> " + path);
  }
}

CheckpointFile CheckpointFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("checkpoint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto j = io::Json::parse(buf.str(), &error);
  if (!j)
    throw CheckpointError("checkpoint: " + path + " is truncated or not valid JSON (" + error +
                          ") — delete it to start the campaign over");
  try {
    return from_json(*j);
  } catch (const CheckpointError& e) {
    throw CheckpointError(std::string(e.what()) + " [" + path + "]");
  } catch (const CodecError& e) {
    throw CheckpointError("checkpoint: " + std::string(e.what()) + " [" + path + "]");
  }
}

void CheckpointFile::require_match(std::uint64_t want_seed, int want_trials,
                                   std::size_t want_points, const std::string& want_grid) const {
  const auto mismatch = [&](const char* field, const std::string& have,
                            const std::string& want) {
    throw CheckpointError("checkpoint: " + std::string(field) + " mismatch (file has " + have +
                          ", campaign wants " + want +
                          ") — wrong checkpoint file, or the campaign changed; delete it to "
                          "start over");
  };
  if (seed != want_seed) mismatch("seed", std::to_string(seed), std::to_string(want_seed));
  if (trials != want_trials)
    mismatch("trials", std::to_string(trials), std::to_string(want_trials));
  if (points != want_points)
    mismatch("points", std::to_string(points), std::to_string(want_points));
  if (grid != want_grid) mismatch("grid signature", grid, want_grid);
}

}  // namespace skyferry::exp
