// Campaign persistence: chunk-granularity journaling of trial results
// with atomic tmp+rename snapshots. The on-disk file is one strict JSON
// document — a header binding it to the campaign (seed, trials, grid
// signature, chunk geometry) plus one record per completed chunk with
// its encoded results and failure records. Because every save goes
// through write-tmp → fsync → rename, a SIGKILL at any instant leaves
// either the previous snapshot or the new one, never a torn file; a
// file that *is* torn (truncated copy, manual edit) fails load() with a
// clear CheckpointError instead of half-resuming.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/run_stats.h"
#include "exp/sweep.h"
#include "io/json.h"

namespace skyferry::exp {

/// Any checkpoint problem: unreadable/truncated file, malformed JSON,
/// header mismatch against the campaign about to resume, duplicate or
/// out-of-range chunk records.
struct CheckpointError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One completed chunk: trials [start, end) of one sweep point, with the
/// encoded result per trial and the failure records that occurred there.
struct ChunkRecord {
  std::size_t point{0};
  int start{0};
  int end{0};
  io::Json results;                    ///< array of size end - start
  std::vector<TrialFailure> failures;  ///< failures inside this chunk
};

/// FNV-1a over the sweep's point labels — binds a checkpoint to the grid
/// that produced it, so resuming against a different sweep is an error,
/// not a silent mis-merge.
[[nodiscard]] std::string grid_signature(const std::vector<Point>& points);

class CheckpointFile {
 public:
  // Header — the campaign identity a resume must match.
  std::string name;        ///< campaign/bench name (informational)
  std::uint64_t seed{0};
  int trials{0};           ///< trials per point
  std::size_t points{0};
  int chunk{0};            ///< chunk geometry the journal is keyed by
  std::string grid;        ///< grid_signature() of the sweep

  /// Append a completed chunk. Throws CheckpointError on a duplicate or
  /// an out-of-range record.
  void add_chunk(ChunkRecord rec);

  [[nodiscard]] const std::vector<ChunkRecord>& chunks() const noexcept { return chunks_; }
  [[nodiscard]] bool has_chunk(std::size_t point, int start) const noexcept;
  [[nodiscard]] std::size_t completed_trials() const noexcept;

  [[nodiscard]] io::Json to_json() const;
  /// Strict decode; throws CheckpointError on anything malformed.
  [[nodiscard]] static CheckpointFile from_json(const io::Json& j);

  /// Atomic snapshot: write `path`.tmp, fsync, rename over `path`.
  /// Throws CheckpointError on any I/O failure.
  void save_atomic(const std::string& path) const;
  /// Load + strictly validate. Throws CheckpointError with the reason
  /// (missing file, truncated/invalid JSON, malformed records).
  [[nodiscard]] static CheckpointFile load(const std::string& path);

  /// Reject a checkpoint that does not belong to the campaign about to
  /// run (different seed, trial count, grid, or chunk geometry).
  void require_match(std::uint64_t want_seed, int want_trials, std::size_t want_points,
                     const std::string& want_grid) const;

 private:
  std::vector<ChunkRecord> chunks_;
};

}  // namespace skyferry::exp
