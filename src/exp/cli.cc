#include "exp/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "io/format.h"

namespace skyferry::exp {
namespace {

bool full_number(const char* s, const char* end) { return end != s && *end == '\0'; }

}  // namespace

Cli::Cli(std::string bench) : bench_(std::move(bench)) {}

Cli& Cli::add(std::string name, Type type, void* target, std::string help) {
  if (name.rfind("--", 0) != 0) throw CliError("flag '" + name + "' must start with --");
  for (const auto& f : flags_)
    if (f.name == name) throw CliError("duplicate flag '" + name + "'");
  flags_.push_back({std::move(name), type, target, std::move(help)});
  return *this;
}

Cli& Cli::flag(std::string name, int* target, std::string help) {
  return add(std::move(name), Type::kInt, target, std::move(help));
}
Cli& Cli::flag(std::string name, std::uint64_t* target, std::string help) {
  return add(std::move(name), Type::kUint64, target, std::move(help));
}
Cli& Cli::flag(std::string name, double* target, std::string help) {
  return add(std::move(name), Type::kDouble, target, std::move(help));
}
Cli& Cli::flag(std::string name, std::string* target, std::string help) {
  return add(std::move(name), Type::kString, target, std::move(help));
}
Cli& Cli::flag(std::string name, bool* target, std::string help) {
  return add(std::move(name), Type::kBool, target, std::move(help));
}

void Cli::assign(const Flag& f, std::string_view value) const {
  const std::string v(value);
  char* end = nullptr;
  errno = 0;
  switch (f.type) {
    case Type::kInt: {
      const long x = std::strtol(v.c_str(), &end, 10);
      if (!full_number(v.c_str(), end) || errno == ERANGE)
        throw CliError(bench_ + ": flag " + f.name + " expects an integer, got '" + v + "'");
      *static_cast<int*>(f.target) = static_cast<int>(x);
      return;
    }
    case Type::kUint64: {
      if (!v.empty() && v[0] == '-')
        throw CliError(bench_ + ": flag " + f.name + " expects a non-negative integer, got '" +
                       v + "'");
      const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
      if (!full_number(v.c_str(), end) || errno == ERANGE)
        throw CliError(bench_ + ": flag " + f.name + " expects an integer, got '" + v + "'");
      *static_cast<std::uint64_t*>(f.target) = static_cast<std::uint64_t>(x);
      return;
    }
    case Type::kDouble: {
      const double x = std::strtod(v.c_str(), &end);
      if (!full_number(v.c_str(), end))
        throw CliError(bench_ + ": flag " + f.name + " expects a number, got '" + v + "'");
      *static_cast<double*>(f.target) = x;
      return;
    }
    case Type::kString:
      *static_cast<std::string*>(f.target) = v;
      return;
    case Type::kBool: {
      if (v == "true" || v == "1") {
        *static_cast<bool*>(f.target) = true;
      } else if (v == "false" || v == "0") {
        *static_cast<bool*>(f.target) = false;
      } else {
        throw CliError(bench_ + ": flag " + f.name + " expects true/false/1/0, got '" + v + "'");
      }
      return;
    }
  }
}

void Cli::parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    const std::size_t eq = arg.find('=');
    const std::string_view name = eq == std::string_view::npos ? arg : arg.substr(0, eq);
    const Flag* match = nullptr;
    for (const auto& f : flags_)
      if (f.name == name) {
        match = &f;
        break;
      }
    if (match == nullptr)
      throw CliError(bench_ + ": unknown flag '" + std::string(name) + "' (see --help)");
    if (eq != std::string_view::npos) {
      assign(*match, arg.substr(eq + 1));
    } else if (match->type == Type::kBool) {
      // Bare `--flag` form: switch on, next token stays an argument.
      *static_cast<bool*>(match->target) = true;
    } else {
      if (i + 1 >= argc)
        throw CliError(bench_ + ": flag " + match->name + " needs a value");
      assign(*match, argv[++i]);
    }
  }
}

void Cli::parse_or_exit(int argc, char** argv) const {
  try {
    parse(argc, argv);
  } catch (const CliError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), usage().c_str());
    std::exit(2);
  }
}

std::string Cli::value_string(const Flag& f) const {
  switch (f.type) {
    case Type::kInt:
      return std::to_string(*static_cast<const int*>(f.target));
    case Type::kUint64:
      return std::to_string(*static_cast<const std::uint64_t*>(f.target));
    case Type::kDouble:
      return io::format_number(*static_cast<const double*>(f.target));
    case Type::kString:
      return *static_cast<const std::string*>(f.target);
    case Type::kBool:
      return *static_cast<const bool*>(f.target) ? "true" : "false";
  }
  return {};
}

std::string Cli::replay_command() const {
  std::string replay = bench_;
  for (const auto& f : flags_) {
    const std::string v = value_string(f);
    if (f.type == Type::kBool) {
      replay += " " + f.name + "=" + v;  // `=` form: bare --flag takes no value
    } else {
      replay += " " + f.name + " " + (v.empty() ? "''" : v);
    }
  }
  return replay;
}

std::vector<std::pair<std::string, std::string>> Cli::flag_values() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(flags_.size());
  for (const auto& f : flags_) out.emplace_back(f.name.substr(2), value_string(f));
  return out;
}

void Cli::print_replay_header() const {
  std::string line = "# " + bench_;
  for (const auto& [name, v] : flag_values()) line += "  " + name + "=" + v;
  std::printf("%s  (replay: %s)\n", line.c_str(), replay_command().c_str());
}

std::string Cli::usage() const {
  std::string u = "usage: " + bench_;
  for (const auto& f : flags_)
    u += f.type == Type::kBool ? " [" + f.name + "[=true|false]]" : " [" + f.name + " <v>]";
  u += "\n";
  for (const auto& f : flags_) {
    u += "  " + f.name + "  " + f.help + " (default " + value_string(f) + ")\n";
  }
  return u;
}

}  // namespace skyferry::exp
