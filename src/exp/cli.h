// Typed command-line flags for the bench binaries, replacing the ad-hoc
// strcmp loops that each main() used to carry. Flags are registered
// against typed storage (--seed/--trials/--threads/--out and any
// bench-specific extras), unknown flags and malformed values are hard
// errors instead of silently ignored, and the replay header is printed
// from the *parsed* values so the header always reproduces the run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace skyferry::exp {

/// Thrown on an unknown flag, a missing value, or a value that does not
/// parse as the flag's type.
struct CliError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

class Cli {
 public:
  /// `bench` names the binary in the usage string and replay header.
  explicit Cli(std::string bench);

  // Register a flag (fluent). `name` includes the dashes: "--seed".
  // The target keeps its current value when the flag is absent, so the
  // initializer at the call site is the documented default.
  Cli& flag(std::string name, int* target, std::string help);
  Cli& flag(std::string name, std::uint64_t* target, std::string help);
  Cli& flag(std::string name, double* target, std::string help);
  Cli& flag(std::string name, std::string* target, std::string help);
  /// Boolean switch: bare `--name` sets true (no value consumed);
  /// `--name=true/false/1/0` sets it explicitly. The replay command
  /// always prints the `--name=value` form so it round-trips.
  Cli& flag(std::string name, bool* target, std::string help);

  /// Parse `--name value` / `--name=value` argv forms (bool flags also
  /// accept the bare `--name` form). Throws CliError; `--help` prints
  /// usage to stdout and exits 0.
  void parse(int argc, char** argv) const;

  /// parse(), but report the error plus usage on stderr and exit(2)
  /// instead of throwing — what bench main()s call.
  void parse_or_exit(int argc, char** argv) const;

  /// "# bench seed=1 trials=2000 (replay: bench --seed 1 --trials 2000)"
  /// printed to stdout — every registered flag, current values.
  void print_replay_header() const;

  /// The exact argv that reproduces the run: "bench --seed 1 --trials
  /// 2000" — what the replay header prints and what --json outputs embed
  /// so a golden file records the seed/threads/config that produced it.
  [[nodiscard]] std::string replay_command() const;

  /// Every registered flag's current value as (name-without-dashes,
  /// value) pairs in registration order.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> flag_values() const;

  [[nodiscard]] std::string usage() const;
  [[nodiscard]] const std::string& bench() const noexcept { return bench_; }

 private:
  enum class Type { kInt, kUint64, kDouble, kString, kBool };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
  };

  Cli& add(std::string name, Type type, void* target, std::string help);
  void assign(const Flag& f, std::string_view value) const;
  [[nodiscard]] std::string value_string(const Flag& f) const;

  std::string bench_;
  std::vector<Flag> flags_;
};

}  // namespace skyferry::exp
