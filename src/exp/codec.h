// Trial-result (de)serialization for campaign checkpoints. A
// Codec<T> specialization turns one trial result into an io::Json value
// and back, bit-identically: doubles ride io::json_number's shortest
// exact form (NaN/Inf as tagged strings, since JSON has no literal for
// them), 64-bit integers as decimal strings (a double mantissa cannot
// carry them). decode() is strict — anything malformed throws
// CodecError instead of half-decoding — which is what lets a resumed
// campaign trust the journal or reject it outright.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/json.h"

namespace skyferry::exp {

/// Thrown on any malformed value during decode (wrong type, lossy
/// integer, unknown tag, truncated record).
struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Primary template is deliberately undefined: checkpointing a result
/// type T requires an explicit Codec<T> specialization with
///   static io::Json encode(const T&);
///   static T decode(const io::Json&);   // throws CodecError
template <class T>
struct Codec;

template <>
struct Codec<double> {
  static io::Json encode(double v) {
    if (std::isnan(v)) return io::Json("nan");
    if (std::isinf(v)) return io::Json(v > 0 ? "inf" : "-inf");
    return io::Json(v);
  }
  static double decode(const io::Json& j) {
    if (j.is_number()) return j.as_number();
    if (j.is_string()) {
      const std::string& s = j.as_string();
      if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
      if (s == "inf") return std::numeric_limits<double>::infinity();
      if (s == "-inf") return -std::numeric_limits<double>::infinity();
      throw CodecError("Codec<double>: unknown tag '" + s + "'");
    }
    throw CodecError("Codec<double>: expected number or nan/inf tag");
  }
};

template <>
struct Codec<int> {
  static io::Json encode(int v) { return io::Json(v); }
  static int decode(const io::Json& j) {
    if (!j.is_number()) throw CodecError("Codec<int>: expected a number");
    const double v = j.as_number();
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v)
      throw CodecError("Codec<int>: " + io::json_number(v) + " is not an int");
    return i;
  }
};

template <>
struct Codec<std::uint64_t> {
  static io::Json encode(std::uint64_t v) { return io::Json(std::to_string(v)); }
  static std::uint64_t decode(const io::Json& j) {
    if (j.is_number()) {
      // Accept small integers written as numbers (exact below 2^53).
      const double v = j.as_number();
      const auto u = static_cast<std::uint64_t>(v);
      if (v < 0.0 || static_cast<double>(u) != v)
        throw CodecError("Codec<uint64>: " + io::json_number(v) + " is not an exact uint64");
      return u;
    }
    if (!j.is_string()) throw CodecError("Codec<uint64>: expected a string or number");
    const std::string& s = j.as_string();
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || s[0] == '-' || end == s.c_str() || *end != '\0' || errno == ERANGE)
      throw CodecError("Codec<uint64>: '" + s + "' is not a 64-bit integer");
    return static_cast<std::uint64_t>(v);
  }
};

template <>
struct Codec<bool> {
  static io::Json encode(bool v) { return io::Json(v); }
  static bool decode(const io::Json& j) {
    if (!j.is_bool()) throw CodecError("Codec<bool>: expected true/false");
    return j.as_bool();
  }
};

/// Encode a contiguous span of results as a JSON array.
template <class T>
[[nodiscard]] io::Json encode_range(const T* first, std::size_t count) {
  io::Json arr = io::Json::array();
  for (std::size_t i = 0; i < count; ++i) arr.push_back(Codec<T>::encode(first[i]));
  return arr;
}

/// Decode a JSON array of exactly `count` results into `out[0..count)`.
/// Throws CodecError on a size mismatch or any malformed element.
template <class T>
void decode_range(const io::Json& arr, T* out, std::size_t count) {
  if (!arr.is_array()) throw CodecError("Codec: expected a result array");
  if (arr.items().size() != count)
    throw CodecError("Codec: result array has " + std::to_string(arr.items().size()) +
                     " elements, expected " + std::to_string(count));
  for (std::size_t i = 0; i < count; ++i) out[i] = Codec<T>::decode(arr.items()[i]);
}

// ---- field helpers for struct codecs ---------------------------------------
// A struct codec sets named members and reads them back strictly:
//   j.set("x", Codec<double>::encode(r.x));
//   r.x = field<double>(j, "x");

/// Strict member read: missing key or malformed value throws CodecError.
template <class T>
[[nodiscard]] T field(const io::Json& j, const char* key) {
  const io::Json* v = j.find(key);
  if (v == nullptr) throw CodecError(std::string("Codec: missing field '") + key + "'");
  return Codec<T>::decode(*v);
}

}  // namespace skyferry::exp
