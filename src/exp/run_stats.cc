#include "exp/run_stats.h"

#include <cstdio>
#include <fstream>

namespace skyferry::exp {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

void RunStats::merge(const RunStats& other) {
  if (name.empty()) name = other.name;
  if (other.threads > threads) threads = other.threads;
  points += other.points;
  trials_per_point = other.trials_per_point;
  if (seed == 0) seed = other.seed;
  chunk = other.chunk;
  wall_s += other.wall_s;
  total_trial_s += other.total_trial_s;
  per_point.insert(per_point.end(), other.per_point.begin(), other.per_point.end());

  // Derived rates from the merged totals.
  std::size_t total_trials = 0;
  for (const auto& p : per_point) total_trials += static_cast<std::size_t>(p.trials);
  trials_per_s = wall_s > 0.0 ? static_cast<double>(total_trials) / wall_s : 0.0;
  occupancy = (wall_s > 0.0 && threads > 0) ? total_trial_s / (wall_s * threads) : 0.0;
  speedup_vs_serial = wall_s > 0.0 ? total_trial_s / wall_s : 0.0;
}

std::string RunStats::summary_line() const {
  char buf[256];
  long long total = 0;
  for (const auto& p : per_point) total += p.trials;
  if (total == 0) total = static_cast<long long>(points) * trials_per_point;
  std::snprintf(buf, sizeof(buf),
                "# stats: %d threads, %lld trials over %zu points in %.3f s "
                "(%.0f trials/s, occupancy %.2f, speedup vs serial %.2fx)",
                threads, total, points, wall_s, trials_per_s, occupancy, speedup_vs_serial);
  return buf;
}

std::string RunStats::to_json() const {
  std::string j = "{\n";
  j += "  \"name\": \"";
  escape_into(j, name);
  j += "\",\n";
  j += "  \"threads\": " + std::to_string(threads) + ",\n";
  j += "  \"points\": " + std::to_string(points) + ",\n";
  j += "  \"trials_per_point\": " + std::to_string(trials_per_point) + ",\n";
  j += "  \"seed\": " + std::to_string(seed) + ",\n";
  j += "  \"chunk\": " + std::to_string(chunk) + ",\n";
  j += "  \"wall_s\": " + num(wall_s) + ",\n";
  j += "  \"total_trial_s\": " + num(total_trial_s) + ",\n";
  j += "  \"trials_per_s\": " + num(trials_per_s) + ",\n";
  j += "  \"occupancy\": " + num(occupancy) + ",\n";
  j += "  \"speedup_vs_serial\": " + num(speedup_vs_serial) + ",\n";
  j += "  \"per_point\": [";
  for (std::size_t i = 0; i < per_point.size(); ++i) {
    const auto& p = per_point[i];
    j += i ? ",\n    " : "\n    ";
    j += "{\"point\": " + std::to_string(p.point_index) + ", \"label\": \"";
    escape_into(j, p.label);
    j += "\", \"trials\": " + std::to_string(p.trials);
    j += ", \"p50_ms\": " + num(p.p50_ms);
    j += ", \"p99_ms\": " + num(p.p99_ms) + "}";
  }
  j += per_point.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

bool RunStats::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace skyferry::exp
