#include "exp/run_stats.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <typeinfo>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace skyferry::exp {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

io::Json failure_to_json(const TrialFailure& f) {
  io::Json j = io::Json::object();
  j.set("kind", f.kind_name());
  j.set("point", static_cast<double>(f.point));
  j.set("trial", f.trial);
  // 64-bit seeds do not survive a double round-trip; store as a string.
  j.set("seed", std::to_string(f.seed));
  j.set("attempts", f.attempts);
  j.set("quarantined", f.quarantined);
  j.set("type", f.type);
  j.set("what", f.what);
  j.set("point_label", f.point_label);
  j.set("replay", f.replay_cmd);
  return j;
}

TrialFailure failure_from_json(const io::Json& j) {
  if (!j.is_object()) throw std::runtime_error("TrialFailure: expected a JSON object");
  const auto need = [&](const char* key) -> const io::Json& {
    const io::Json* v = j.find(key);
    if (v == nullptr) throw std::runtime_error(std::string("TrialFailure: missing key '") + key + "'");
    return *v;
  };
  TrialFailure f;
  const std::string kind = need("kind").as_string();
  if (kind == "crashed") {
    f.kind = TrialFailure::Kind::kCrashed;
  } else if (kind == "timed-out") {
    f.kind = TrialFailure::Kind::kTimedOut;
  } else {
    throw std::runtime_error("TrialFailure: unknown kind '" + kind + "'");
  }
  const io::Json& point = need("point");
  const io::Json& trial = need("trial");
  if (!point.is_number() || !trial.is_number())
    throw std::runtime_error("TrialFailure: point/trial must be numbers");
  f.point = static_cast<std::size_t>(point.as_number());
  f.trial = static_cast<int>(trial.as_number());
  const std::string seed = need("seed").as_string();
  errno = 0;
  char* end = nullptr;
  f.seed = std::strtoull(seed.c_str(), &end, 10);
  if (seed.empty() || end == seed.c_str() || *end != '\0' || errno == ERANGE)
    throw std::runtime_error("TrialFailure: seed '" + seed + "' is not a 64-bit integer");
  f.attempts = static_cast<int>(need("attempts").as_number(1.0));
  f.quarantined = need("quarantined").as_bool();
  f.type = need("type").as_string();
  f.what = need("what").as_string();
  f.point_label = need("point_label").as_string();
  f.replay_cmd = need("replay").as_string();
  return f;
}

void describe_current_exception(std::string& type, std::string& what) {
  try {
    throw;
  } catch (const std::exception& e) {
#if defined(__GNUG__)
    int status = 0;
    char* demangled = abi::__cxa_demangle(typeid(e).name(), nullptr, nullptr, &status);
    type = (status == 0 && demangled != nullptr) ? demangled : typeid(e).name();
    std::free(demangled);
#else
    type = typeid(e).name();
#endif
    what = e.what();
  } catch (...) {
    type = "unknown";
    what = "non-std exception";
  }
}

void RunStats::merge(const RunStats& other) {
  if (name.empty()) name = other.name;
  if (other.threads > threads) threads = other.threads;
  points += other.points;
  trials_per_point = other.trials_per_point;
  if (seed == 0) seed = other.seed;
  chunk = other.chunk;
  wall_s += other.wall_s;
  total_trial_s += other.total_trial_s;
  failed_trials += other.failed_trials;
  crashed += other.crashed;
  timed_out += other.timed_out;
  quarantined += other.quarantined;
  retried += other.retried;
  failures.insert(failures.end(), other.failures.begin(), other.failures.end());
  per_point.insert(per_point.end(), other.per_point.begin(), other.per_point.end());

  // Derived rates from the merged totals.
  std::size_t total_trials = 0;
  for (const auto& p : per_point) total_trials += static_cast<std::size_t>(p.trials);
  trials_per_s = wall_s > 0.0 ? static_cast<double>(total_trials) / wall_s : 0.0;
  occupancy = (wall_s > 0.0 && threads > 0) ? total_trial_s / (wall_s * threads) : 0.0;
  speedup_vs_serial = wall_s > 0.0 ? total_trial_s / wall_s : 0.0;
}

std::string RunStats::summary_line() const {
  char buf[256];
  long long total = 0;
  for (const auto& p : per_point) total += p.trials;
  if (total == 0) total = static_cast<long long>(points) * trials_per_point;
  std::snprintf(buf, sizeof(buf),
                "# stats: %d threads, %lld trials over %zu points in %.3f s "
                "(%.0f trials/s, occupancy %.2f, speedup vs serial %.2fx)",
                threads, total, points, wall_s, trials_per_s, occupancy, speedup_vs_serial);
  std::string line = buf;
  if (failed_trials > 0) {
    std::snprintf(buf, sizeof(buf), "; %d failed (crashed %d, timed-out %d, quarantined %d, %d retries)",
                  failed_trials, crashed, timed_out, quarantined, retried);
    line += buf;
  }
  return line;
}

std::string RunStats::to_json() const {
  std::string j = "{\n";
  j += "  \"name\": \"";
  escape_into(j, name);
  j += "\",\n";
  j += "  \"threads\": " + std::to_string(threads) + ",\n";
  j += "  \"points\": " + std::to_string(points) + ",\n";
  j += "  \"trials_per_point\": " + std::to_string(trials_per_point) + ",\n";
  j += "  \"seed\": " + std::to_string(seed) + ",\n";
  j += "  \"chunk\": " + std::to_string(chunk) + ",\n";
  j += "  \"wall_s\": " + num(wall_s) + ",\n";
  j += "  \"total_trial_s\": " + num(total_trial_s) + ",\n";
  j += "  \"trials_per_s\": " + num(trials_per_s) + ",\n";
  j += "  \"occupancy\": " + num(occupancy) + ",\n";
  j += "  \"speedup_vs_serial\": " + num(speedup_vs_serial) + ",\n";
  j += "  \"failed_trials\": " + std::to_string(failed_trials) + ",\n";
  j += "  \"crashed\": " + std::to_string(crashed) + ",\n";
  j += "  \"timed_out\": " + std::to_string(timed_out) + ",\n";
  j += "  \"quarantined\": " + std::to_string(quarantined) + ",\n";
  j += "  \"retried\": " + std::to_string(retried) + ",\n";
  if (!failures.empty()) {
    io::Json arr = io::Json::array();
    for (const auto& f : failures) arr.push_back(failure_to_json(f));
    j += "  \"failures\": " + arr.dump() + ",\n";
  }
  j += "  \"per_point\": [";
  for (std::size_t i = 0; i < per_point.size(); ++i) {
    const auto& p = per_point[i];
    j += i ? ",\n    " : "\n    ";
    j += "{\"point\": " + std::to_string(p.point_index) + ", \"label\": \"";
    escape_into(j, p.label);
    j += "\", \"trials\": " + std::to_string(p.trials);
    j += ", \"p50_ms\": " + num(p.p50_ms);
    j += ", \"p99_ms\": " + num(p.p99_ms) + "}";
  }
  j += per_point.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

bool RunStats::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace skyferry::exp
