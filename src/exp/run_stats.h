// Lightweight observability for engine runs: wall time, throughput,
// pool occupancy and per-point trial-latency quantiles. Printed in the
// replay header and emitted as machine-readable stats.json next to the
// CSV so speedups can be measured from artifacts instead of eyeballs.
//
// Everything here is *timing* — the simulation results themselves stay
// bit-identical across thread counts; only this sidecar varies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "io/json.h"

namespace skyferry::exp {

/// One failed trial in a campaign: where it ran (point/trial/seed), what
/// went wrong, how often it was attempted, and the exact command that
/// replays it. The campaign-level taxonomy (crashed / timed-out /
/// quarantined) is counted in RunStats and the full records ride in the
/// stats.json sidecar so a post-mortem never starts from a log grep.
struct TrialFailure {
  /// What ended the trial: a thrown exception or the deadline watchdog.
  enum class Kind { kCrashed, kTimedOut };

  Kind kind{Kind::kCrashed};
  std::size_t point{0};
  int trial{0};
  std::uint64_t seed{0};      ///< the forked per-trial seed (replays the trial)
  int attempts{1};            ///< total attempts, retries included
  bool quarantined{false};    ///< no usable result — the slot holds a default value
  std::string type;           ///< exception type name ("std::runtime_error", ...)
  std::string what;           ///< exception message / watchdog note
  std::string point_label;    ///< Point::label() for human-readable reports
  std::string replay_cmd;     ///< working shell command reproducing the trial

  [[nodiscard]] const char* kind_name() const noexcept {
    return kind == Kind::kCrashed ? "crashed" : "timed-out";
  }
};

/// JSON (de)serialization of a failure record — used by both the
/// stats.json sidecar and the campaign checkpoint journal.
[[nodiscard]] io::Json failure_to_json(const TrialFailure& f);
/// Strict decode; throws std::runtime_error on a malformed record.
[[nodiscard]] TrialFailure failure_from_json(const io::Json& j);

/// Describe the in-flight exception (call inside a catch block):
/// demangled dynamic type name into `type`, message into `what`.
void describe_current_exception(std::string& type, std::string& what);

/// Trial-latency quantiles for one sweep point [ms].
struct PointStats {
  std::size_t point_index{0};
  std::string label;  ///< Point::label(), empty for axis-less runs
  int trials{0};
  double p50_ms{0.0};
  double p99_ms{0.0};
};

struct RunStats {
  std::string name;          ///< bench/run name for the header and json
  int threads{1};            ///< resolved worker count
  std::size_t points{0};
  int trials_per_point{0};
  std::uint64_t seed{0};
  int chunk{1};              ///< trials per enqueued task

  double wall_s{0.0};            ///< end-to-end run() wall time
  double total_trial_s{0.0};     ///< sum of individual trial latencies
  double trials_per_s{0.0};      ///< total trials / wall_s
  /// total_trial_s / (wall_s * threads): 1.0 = workers never idle.
  double occupancy{0.0};
  /// total_trial_s / wall_s — the measured parallel speedup vs running
  /// the same trials back to back on one thread.
  double speedup_vs_serial{0.0};

  // Failure taxonomy (supervised campaigns; all zero on a clean run).
  int failed_trials{0};   ///< trials that crashed or timed out at least once
  int crashed{0};         ///< trials whose attempts threw
  int timed_out{0};       ///< trials flagged by the deadline watchdog
  int quarantined{0};     ///< trials with no usable result after retries
  int retried{0};         ///< extra same-seed attempts made
  std::vector<TrialFailure> failures;  ///< sorted by (point, trial)

  std::vector<PointStats> per_point;

  /// Merge another run's counters into this one (benches that make
  /// several engine runs aggregate them into a single stats.json).
  void merge(const RunStats& other);

  /// One-line summary for the replay header:
  /// "# stats: 8 threads, 2000 trials in 1.23 s (1626 trials/s, occupancy 0.97)"
  [[nodiscard]] std::string summary_line() const;

  /// Machine-readable JSON (object with a per_point array).
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; returns false if the file can't be opened.
  bool write_json(const std::string& path) const;
};

}  // namespace skyferry::exp
