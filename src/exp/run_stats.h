// Lightweight observability for engine runs: wall time, throughput,
// pool occupancy and per-point trial-latency quantiles. Printed in the
// replay header and emitted as machine-readable stats.json next to the
// CSV so speedups can be measured from artifacts instead of eyeballs.
//
// Everything here is *timing* — the simulation results themselves stay
// bit-identical across thread counts; only this sidecar varies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace skyferry::exp {

/// Trial-latency quantiles for one sweep point [ms].
struct PointStats {
  std::size_t point_index{0};
  std::string label;  ///< Point::label(), empty for axis-less runs
  int trials{0};
  double p50_ms{0.0};
  double p99_ms{0.0};
};

struct RunStats {
  std::string name;          ///< bench/run name for the header and json
  int threads{1};            ///< resolved worker count
  std::size_t points{0};
  int trials_per_point{0};
  std::uint64_t seed{0};
  int chunk{1};              ///< trials per enqueued task

  double wall_s{0.0};            ///< end-to-end run() wall time
  double total_trial_s{0.0};     ///< sum of individual trial latencies
  double trials_per_s{0.0};      ///< total trials / wall_s
  /// total_trial_s / (wall_s * threads): 1.0 = workers never idle.
  double occupancy{0.0};
  /// total_trial_s / wall_s — the measured parallel speedup vs running
  /// the same trials back to back on one thread.
  double speedup_vs_serial{0.0};

  std::vector<PointStats> per_point;

  /// Merge another run's counters into this one (benches that make
  /// several engine runs aggregate them into a single stats.json).
  void merge(const RunStats& other);

  /// One-line summary for the replay header:
  /// "# stats: 8 threads, 2000 trials in 1.23 s (1626 trials/s, occupancy 0.97)"
  [[nodiscard]] std::string summary_line() const;

  /// Machine-readable JSON (object with a per_point array).
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; returns false if the file can't be opened.
  bool write_json(const std::string& path) const;
};

}  // namespace skyferry::exp
