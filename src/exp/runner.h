// The engine's execution core: fan N deterministic trials per sweep
// point across a ThreadPool. Per-trial seeds come from
// sim::fork(seed, point_index, trial_index) and every result lands in a
// pre-assigned [point][trial] slot, so the output is bit-identical for
// any thread count and any scheduling order — the parallelism is pure
// wall-clock. Trials are enqueued in contiguous chunks (no work
// stealing) to amortize queue traffic on cheap trials.
//
// Failure policy: a trial that throws no longer aborts the campaign.
// Every exception is captured into a TrialFailure record (point, trial,
// forked seed, type, message), the slot keeps its default value, and
// the counts surface in RunStats. Set RunnerConfig::fail_fast to get
// the old abort-on-first-exception behavior back; for retries,
// quarantine, deadlines, and checkpoint/resume, use SupervisedRunner
// (exp/supervisor.h).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <future>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "exp/run_stats.h"
#include "exp/sweep.h"
#include "exp/thread_pool.h"
#include "sim/rng.h"
#include "stats/quantile.h"

namespace skyferry::exp {

struct RunnerConfig {
  int threads{0};  ///< <= 0: one worker per hardware thread
  int trials{1};   ///< seeded trials per sweep point
  std::uint64_t seed{1};
  /// Trials per enqueued task; <= 0 picks ~4 chunks per worker per point
  /// (small enough to balance, big enough to amortize queueing).
  int chunk{0};
  /// Record per-point latency quantiles (tiny cost; on by default).
  bool collect_point_stats{true};
  /// Old behavior: rethrow the first trial exception after all in-flight
  /// work drains, instead of recording failures and carrying on.
  bool fail_fast{false};
};

/// Results of one engine run: results[point_index][trial_index] plus the
/// timing sidecar. The result grid is deterministic; stats are not.
template <class T>
struct RunResult {
  std::vector<std::vector<T>> results;
  RunStats stats;

  /// Flat view helper: all trials of one point.
  [[nodiscard]] const std::vector<T>& point(std::size_t i) const { return results.at(i); }
};

/// Timing sidecar shared by Runner and SupervisedRunner: wall time,
/// throughput, occupancy, per-point latency quantiles.
inline RunStats make_run_stats(const RunnerConfig& cfg, const std::vector<Point>& points,
                               const std::vector<std::vector<double>>& latency_ms, int workers,
                               int chunk, double wall_s) {
  RunStats st;
  st.threads = workers;
  st.points = points.size();
  st.trials_per_point = cfg.trials;
  st.seed = cfg.seed;
  st.chunk = chunk;
  st.wall_s = wall_s;
  double total_ms = 0.0;
  for (const auto& row : latency_ms)
    for (double ms : row) total_ms += ms;
  st.total_trial_s = total_ms / 1e3;
  const double total_trials = static_cast<double>(points.size()) * cfg.trials;
  st.trials_per_s = wall_s > 0.0 ? total_trials / wall_s : 0.0;
  st.occupancy = (wall_s > 0.0 && workers > 0) ? st.total_trial_s / (wall_s * workers) : 0.0;
  st.speedup_vs_serial = wall_s > 0.0 ? st.total_trial_s / wall_s : 0.0;
  if (cfg.collect_point_stats) {
    st.per_point.reserve(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      auto sorted = latency_ms[p];
      std::sort(sorted.begin(), sorted.end());
      PointStats ps;
      ps.point_index = points[p].index;
      ps.label = points[p].label();
      ps.trials = cfg.trials;
      if (!sorted.empty()) {
        ps.p50_ms = stats::quantile_sorted(sorted, 0.50);
        ps.p99_ms = stats::quantile_sorted(sorted, 0.99);
      }
      st.per_point.push_back(std::move(ps));
    }
  }
  return st;
}

class Runner {
 public:
  explicit Runner(RunnerConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const RunnerConfig& config() const noexcept { return cfg_; }

  /// Run `fn(point, trial_seed)` for every (point, trial) pair. A trial
  /// that throws is recorded in RunResult::stats (counts + TrialFailure
  /// records) and its slot keeps the default value; with
  /// cfg.fail_fast the first exception is rethrown here after all
  /// in-flight work finishes.
  template <class TrialFn>
  auto run(const std::vector<Point>& points, TrialFn&& fn)
      -> RunResult<std::invoke_result_t<TrialFn&, const Point&, std::uint64_t>> {
    using T = std::invoke_result_t<TrialFn&, const Point&, std::uint64_t>;
    static_assert(!std::is_void_v<T>, "trial function must return a value");
    static_assert(!std::is_same_v<T, bool>,
                  "return int, not bool: vector<bool> packs bits and concurrent slot writes race");

    const int trials = cfg_.trials > 0 ? cfg_.trials : 0;
    RunResult<T> out;
    out.results.assign(points.size(), {});
    for (auto& row : out.results) row.resize(static_cast<std::size_t>(trials));

    ThreadPool pool(cfg_.threads);
    const int workers = pool.size();
    const int chunk = cfg_.chunk > 0
                          ? cfg_.chunk
                          : std::max(1, trials / std::max(1, workers * 4));

    // One latency slot per trial, written lock-free by pre-assignment.
    std::vector<std::vector<double>> latency_ms(points.size());
    for (auto& row : latency_ms) row.resize(static_cast<std::size_t>(trials), 0.0);

    std::mutex failures_mu;
    std::vector<TrialFailure> failures;
    std::exception_ptr first_error;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<void>> futures;
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (int start = 0; start < trials; start += chunk) {
        const int end = std::min(start + chunk, trials);
        futures.push_back(pool.submit([&, p, start, end]() {
          const Point& pt = points[p];
          for (int t = start; t < end; ++t) {
            const std::uint64_t seed =
                sim::fork(cfg_.seed, pt.index, static_cast<std::uint64_t>(t));
            const auto s0 = std::chrono::steady_clock::now();
            try {
              out.results[p][static_cast<std::size_t>(t)] = fn(pt, seed);
            } catch (...) {
              TrialFailure f;
              f.kind = TrialFailure::Kind::kCrashed;
              f.point = pt.index;
              f.trial = t;
              f.seed = seed;
              f.quarantined = true;
              f.point_label = pt.label();
              describe_current_exception(f.type, f.what);
              const std::lock_guard<std::mutex> lock(failures_mu);
              if (!first_error) first_error = std::current_exception();
              failures.push_back(std::move(f));
            }
            const auto s1 = std::chrono::steady_clock::now();
            latency_ms[p][static_cast<std::size_t>(t)] =
                std::chrono::duration<double, std::milli>(s1 - s0).count();
          }
        }));
      }
    }

    // Drain everything before returning so no task touches freed state.
    for (auto& f : futures) f.get();
    const auto t1 = std::chrono::steady_clock::now();
    if (cfg_.fail_fast && first_error) std::rethrow_exception(first_error);

    out.stats = make_run_stats(cfg_, points, latency_ms, workers, chunk,
                               std::chrono::duration<double>(t1 - t0).count());
    std::sort(failures.begin(), failures.end(), [](const TrialFailure& a, const TrialFailure& b) {
      return a.point != b.point ? a.point < b.point : a.trial < b.trial;
    });
    out.stats.failed_trials = static_cast<int>(failures.size());
    out.stats.crashed = static_cast<int>(failures.size());
    out.stats.quarantined = static_cast<int>(failures.size());
    out.stats.failures = std::move(failures);
    return out;
  }

  /// Sweep-less convenience: N trials of a single implicit point.
  template <class TrialFn>
  auto run_trials(TrialFn&& fn)
      -> RunResult<std::invoke_result_t<TrialFn&, const Point&, std::uint64_t>> {
    return run(Sweep{}.cartesian(), std::forward<TrialFn>(fn));
  }

 private:
  RunnerConfig cfg_;
};

}  // namespace skyferry::exp
