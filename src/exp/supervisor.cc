#include "exp/supervisor.h"

#include <csignal>
#include <cstdio>
#include <sys/stat.h>

namespace skyferry::exp {
namespace {

// One process-wide flag: async-signal-safe, polled by every supervised
// campaign between chunk completions.
std::atomic<int> g_interrupt_signal{0};

#ifndef _WIN32
void on_interrupt(int signal) noexcept {
  g_interrupt_signal.store(signal, std::memory_order_relaxed);
}

// Nesting bookkeeping for ScopedInterruptHandlers (main thread only).
int g_handler_depth = 0;
struct sigaction g_prev_int;
struct sigaction g_prev_term;
#endif

}  // namespace

bool interrupt_requested() noexcept {
  return g_interrupt_signal.load(std::memory_order_relaxed) != 0;
}

int interrupt_signal() noexcept {
  return g_interrupt_signal.load(std::memory_order_relaxed);
}

void request_interrupt(int signal) noexcept {
  g_interrupt_signal.store(signal, std::memory_order_relaxed);
}

void clear_interrupt() noexcept { g_interrupt_signal.store(0, std::memory_order_relaxed); }

ScopedInterruptHandlers::ScopedInterruptHandlers() {
#ifndef _WIN32
  if (g_handler_depth++ == 0) {
    struct sigaction sa = {};
    sa.sa_handler = on_interrupt;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: let blocking calls wake up
    sigaction(SIGINT, &sa, &g_prev_int);
    sigaction(SIGTERM, &sa, &g_prev_term);
  }
#endif
}

ScopedInterruptHandlers::~ScopedInterruptHandlers() {
#ifndef _WIN32
  if (--g_handler_depth == 0) {
    sigaction(SIGINT, &g_prev_int, nullptr);
    sigaction(SIGTERM, &g_prev_term, nullptr);
  }
#endif
}

void CampaignReport::fold_into(RunStats& st) const {
  st.failed_trials += static_cast<int>(failures.size());
  st.crashed += crashed;
  st.timed_out += timed_out;
  st.quarantined += quarantined;
  st.retried += retried;
  st.failures.insert(st.failures.end(), failures.begin(), failures.end());
}

std::string CampaignReport::summary_line() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# campaign: %zu failed of %d (crashed %d, timed-out %d, quarantined %d), "
                "%d retries",
                failures.size(), scheduled, crashed, timed_out, quarantined, retried);
  std::string line = buf;
  if (resumed_chunks > 0) line += "; resumed " + std::to_string(resumed_chunks) + " chunks";
  if (interrupted) line += "; INTERRUPTED (checkpoint flushed, rerun with --resume)";
  return line;
}

bool CampaignReport::is_quarantined(std::size_t point, int trial) const noexcept {
  for (const auto& f : failures)
    if (f.quarantined && f.point == point && f.trial == trial) return true;
  return false;
}

bool SupervisedRunner::checkpoint_exists(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0;
}

void SupervisedRunner::finalize_report(CampaignReport& report, bool interrupted) {
  auto& fs = report.failures;
  std::sort(fs.begin(), fs.end(), [](const TrialFailure& a, const TrialFailure& b) {
    return a.point != b.point ? a.point < b.point : a.trial < b.trial;
  });
  report.crashed = 0;
  report.timed_out = 0;
  report.quarantined = 0;
  report.retried = 0;
  for (const auto& f : fs) {
    if (f.kind == TrialFailure::Kind::kCrashed) ++report.crashed;
    if (f.kind == TrialFailure::Kind::kTimedOut) ++report.timed_out;
    if (f.quarantined) ++report.quarantined;
    report.retried += f.attempts - 1;
  }
  report.completed = report.scheduled - report.quarantined;
  report.interrupted = interrupted;
}

}  // namespace skyferry::exp
