// Crash-safe campaign execution on top of the experiment engine: the
// SupervisedRunner fans seeded trials out exactly like exp::Runner (same
// sim::fork seeding, same pre-assigned slots, bit-identical grid for any
// thread count) and adds the supervision a long campaign needs:
//
//  * per-trial exception capture into TrialFailure records instead of
//    campaign abort, with bounded same-seed retries and quarantine after
//    SupervisorOptions::max_retries;
//  * a soft-deadline watchdog (trial_timeout_ms) that flags hung trials
//    and fires their CancelToken — a cooperative trial observes the
//    token (or calls poll_cancel) and throws TrialCancelled, getting
//    quarantined as timed-out, so one poisoned seed degrades the
//    campaign instead of deadlocking it;
//  * chunk-granularity checkpointing through exp::Codec<T> with atomic
//    tmp+rename snapshots, SIGINT/SIGTERM flush-and-exit-resumable, and
//    --resume semantics that skip completed chunks: a killed-and-resumed
//    campaign merges to a bit-identical result grid.
//
// Requires an exp::Codec<T> specialization for the trial result type
// (int/double/uint64 are built in; fault::TrialResult lives in
// fault/trial_codec.h).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "exp/checkpoint.h"
#include "exp/codec.h"
#include "exp/runner.h"

namespace skyferry::exp {

/// Cooperative cancellation handle passed to trials that accept a third
/// parameter: fn(point, seed, const CancelToken&). stop_requested()
/// flips when the deadline watchdog flags the trial.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(const std::atomic<bool>* flag) noexcept : flag_(flag) {}
  [[nodiscard]] bool stop_requested() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* flag_{nullptr};
};

/// Thrown by a cooperative trial when its CancelToken fires; the
/// supervisor quarantines the trial as timed-out (no retry — a hung
/// seed would hang again).
struct TrialCancelled : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Convenience for cooperative trials: throw TrialCancelled when the
/// watchdog has flagged this trial.
inline void poll_cancel(const CancelToken& token) {
  if (token.stop_requested())
    throw TrialCancelled("trial cancelled by the deadline watchdog");
}

// ---- campaign-wide interrupt flag ------------------------------------------
// SIGINT/SIGTERM set one async-signal-safe flag; the supervisor polls it
// between chunk completions, flushes the checkpoint, and returns with
// CampaignResult::interrupted so the caller can exit resumable.

/// True once SIGINT/SIGTERM was received (or request_interrupt called).
[[nodiscard]] bool interrupt_requested() noexcept;
/// Signal number that interrupted the campaign (0 if none).
[[nodiscard]] int interrupt_signal() noexcept;
/// Test hook: trip the same flag the signal handler sets.
void request_interrupt(int signal = 2) noexcept;
/// Reset the flag (tests; a resumed in-process campaign).
void clear_interrupt() noexcept;

/// RAII SIGINT/SIGTERM capture: installs handlers that set the interrupt
/// flag, restores the previous handlers on destruction. Nesting-safe.
class ScopedInterruptHandlers {
 public:
  ScopedInterruptHandlers();
  ~ScopedInterruptHandlers();
  ScopedInterruptHandlers(const ScopedInterruptHandlers&) = delete;
  ScopedInterruptHandlers& operator=(const ScopedInterruptHandlers&) = delete;
};

struct SupervisorOptions {
  std::string name{"campaign"};  ///< stats/checkpoint header name
  /// Extra same-seed attempts after a crashed trial before quarantine.
  int max_retries{1};
  /// Soft per-trial deadline; <= 0 disables the watchdog. Cooperative
  /// trials (token-aware) get cancelled and quarantined; others are
  /// flagged in the report but keep their (late) result.
  double trial_timeout_ms{0.0};
  /// Old Runner behavior: first trial exception aborts the campaign
  /// (after in-flight work drains) and rethrows. No retries.
  bool fail_fast{false};
  /// Journal completed chunks here (empty = no persistence). Written
  /// atomically (tmp+rename), so a SIGKILL never leaves a torn file.
  std::string checkpoint_path{};
  /// Load checkpoint_path (when it exists) and skip completed chunks.
  bool resume{false};
  /// Snapshot every N completed chunks; <= 0 picks ~64 snapshots per
  /// campaign. The final state is always flushed.
  int flush_every{0};
  /// Install SIGINT/SIGTERM flush-and-exit-resumable handlers for the
  /// duration of the run (only when checkpointing).
  bool handle_signals{true};
  /// Per-failure replay command prefix; the forked trial seed is
  /// appended ("bench --replay-trial" -> "bench --replay-trial 123").
  /// Empty = no replay command in the report.
  std::string replay_prefix{};
};

/// Failure taxonomy of one campaign, folded into the stats.json sidecar.
struct CampaignReport {
  int scheduled{0};       ///< points x trials
  int completed{0};       ///< scheduled - quarantined
  int crashed{0};         ///< trials whose attempts threw
  int timed_out{0};       ///< trials flagged by the watchdog
  int quarantined{0};     ///< trials with no usable result
  int retried{0};         ///< extra same-seed attempts
  std::size_t resumed_chunks{0};  ///< chunks skipped via --resume
  bool interrupted{false};        ///< flushed + stopped on SIGINT/SIGTERM
  std::vector<TrialFailure> failures;  ///< sorted by (point, trial)

  /// Copy the counts + records into the RunStats sidecar.
  void fold_into(RunStats& st) const;
  /// "# campaign: 3 failed of 2000 (crashed 2, timed-out 1, quarantined 3), 2 retries"
  [[nodiscard]] std::string summary_line() const;
  /// True if (point, trial) ended quarantined (slot holds a default).
  [[nodiscard]] bool is_quarantined(std::size_t point, int trial) const noexcept;
};

/// One supervised campaign's output: the deterministic grid, the timing
/// sidecar (failure counts folded in), and the failure taxonomy.
template <class T>
struct CampaignResult {
  std::vector<std::vector<T>> results;
  RunStats stats;
  CampaignReport report;
  /// Interrupted by SIGINT/SIGTERM: the grid is partial, the checkpoint
  /// holds every completed chunk, and rerunning with resume finishes it.
  bool interrupted{false};

  [[nodiscard]] const std::vector<T>& point(std::size_t i) const { return results.at(i); }
};

namespace detail {

/// Trial-function traits: a trial may take (point, seed) or
/// (point, seed, const CancelToken&); the token form wins when both work.
template <class TrialFn>
struct TrialTraits {
  static constexpr bool takes_token =
      std::is_invocable_v<TrialFn&, const Point&, std::uint64_t, const CancelToken&>;
  using result_type = typename std::conditional_t<
      takes_token,
      std::invoke_result<TrialFn&, const Point&, std::uint64_t, const CancelToken&>,
      std::invoke_result<TrialFn&, const Point&, std::uint64_t>>::type;
};

/// Watchdog registry entry for one in-flight trial attempt.
struct InFlight {
  std::size_t point{0};
  int trial{0};
  std::chrono::steady_clock::time_point start;
  std::atomic<bool> cancel{false};
  bool flagged{false};  // guarded by the registry mutex
};

}  // namespace detail

class SupervisedRunner {
 public:
  explicit SupervisedRunner(RunnerConfig base, SupervisorOptions opts = {})
      : base_(std::move(base)), opts_(std::move(opts)) {}

  [[nodiscard]] const RunnerConfig& config() const noexcept { return base_; }
  [[nodiscard]] const SupervisorOptions& options() const noexcept { return opts_; }

  /// Run `fn(point, trial_seed[, token])` for every (point, trial) pair
  /// under supervision. Throws CheckpointError on an unusable checkpoint
  /// and rethrows the first trial exception only under fail_fast.
  template <class TrialFn>
  auto run(const std::vector<Point>& points, TrialFn&& fn)
      -> CampaignResult<typename detail::TrialTraits<TrialFn>::result_type> {
    using Traits = detail::TrialTraits<TrialFn>;
    using T = typename Traits::result_type;
    static_assert(!std::is_void_v<T>, "trial function must return a value");
    static_assert(!std::is_same_v<T, bool>,
                  "return int, not bool: vector<bool> packs bits and concurrent slot writes race");

    const int trials = base_.trials > 0 ? base_.trials : 0;
    const bool checkpointing = !opts_.checkpoint_path.empty();

    CampaignResult<T> out;
    out.results.assign(points.size(), {});
    for (auto& row : out.results) row.resize(static_cast<std::size_t>(trials));
    out.report.scheduled = static_cast<int>(points.size()) * trials;

    ThreadPool pool(base_.threads);
    const int workers = pool.size();
    // Checkpoint chunk geometry must not depend on the worker count, or
    // a checkpoint taken at --threads 8 could not resume at --threads 1.
    int chunk = base_.chunk > 0 ? base_.chunk
                : checkpointing ? std::max(1, trials / 64)
                                : std::max(1, trials / std::max(1, workers * 4));

    const std::string grid = grid_signature(points);
    CheckpointFile journal;
    journal.name = opts_.name;
    journal.seed = base_.seed;
    journal.trials = trials;
    journal.points = points.size();
    journal.grid = grid;

    // Resume: adopt the checkpoint's chunk geometry, replay completed
    // chunks into the grid, and skip them below.
    if (checkpointing && opts_.resume && checkpoint_exists(opts_.checkpoint_path)) {
      CheckpointFile prev = CheckpointFile::load(opts_.checkpoint_path);
      prev.require_match(base_.seed, trials, points.size(), grid);
      if (base_.chunk > 0 && prev.chunk != chunk)
        throw CheckpointError("checkpoint: chunk geometry mismatch (file has " +
                              std::to_string(prev.chunk) + ", --chunk asked for " +
                              std::to_string(chunk) + ")");
      chunk = prev.chunk;
      journal.chunk = chunk;
      for (const ChunkRecord& rec : prev.chunks()) {
        if (rec.start % chunk != 0 || rec.end != std::min(rec.start + chunk, trials))
          throw CheckpointError("checkpoint: chunk [" + std::to_string(rec.start) + ", " +
                                std::to_string(rec.end) + ") does not match geometry " +
                                std::to_string(chunk));
        decode_range<T>(rec.results, out.results[rec.point].data() + rec.start,
                        static_cast<std::size_t>(rec.end - rec.start));
        for (const TrialFailure& f : rec.failures) out.report.failures.push_back(f);
        journal.add_chunk(rec);
        ++out.report.resumed_chunks;
      }
    } else {
      journal.chunk = chunk;
    }

    // One latency slot per trial, written lock-free by pre-assignment.
    std::vector<std::vector<double>> latency_ms(points.size());
    for (auto& row : latency_ms) row.resize(static_cast<std::size_t>(trials), 0.0);

    struct Completion {
      bool checkpointable{false};
      ChunkRecord rec;
    };
    std::mutex mu;                       // guards completions + failures + first_error
    std::condition_variable cv;
    std::deque<Completion> completions;
    std::vector<TrialFailure> failures;
    std::exception_ptr first_error;      // first trial exception (fail_fast)
    std::exception_ptr internal_error;   // supervisor bug (encode failure, ...)
    std::atomic<bool> abort{false};      // fail_fast trip wire

    // Watchdog registry: in-flight attempts with their cancel flags.
    std::mutex registry_mu;
    std::list<detail::InFlight> registry;
    const bool watchdog_on = opts_.trial_timeout_ms > 0.0;
    std::jthread watchdog;
    if (watchdog_on) {
      const auto timeout =
          std::chrono::duration<double, std::milli>(opts_.trial_timeout_ms);
      const auto poll = std::chrono::milliseconds(
          std::clamp(static_cast<long>(opts_.trial_timeout_ms / 4.0), 1L, 100L));
      watchdog = std::jthread([&, timeout, poll](const std::stop_token& stop) {
        while (!stop.stop_requested()) {
          std::this_thread::sleep_for(poll);
          const auto now = std::chrono::steady_clock::now();
          const std::lock_guard<std::mutex> lock(registry_mu);
          for (auto& entry : registry) {
            if (!entry.flagged && now - entry.start > timeout) {
              entry.flagged = true;
              entry.cancel.store(true, std::memory_order_relaxed);
            }
          }
        }
      });
    }

    // Signal capture for flush-and-exit-resumable (checkpointing only).
    std::optional<ScopedInterruptHandlers> signals;
    if (checkpointing && opts_.handle_signals) signals.emplace();

    const int retries_allowed = opts_.fail_fast ? 0 : std::max(0, opts_.max_retries);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<void>> futures;
    std::size_t submitted = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (int start = 0; start < trials; start += chunk) {
        const int end = std::min(start + chunk, trials);
        if (journal.has_chunk(p, start)) continue;  // resumed
        ++submitted;
        futures.push_back(pool.submit([&, p, start, end]() {
          Completion done;
          try {
            const Point& pt = points[p];
            std::vector<TrialFailure> chunk_failures;
            const bool skipped = abort.load(std::memory_order_relaxed) ||
                                 interrupt_requested();
            if (!skipped) {
              for (int t = start; t < end; ++t) {
                run_one_trial<Traits>(fn, pt, t, retries_allowed, watchdog_on, registry_mu,
                                      registry, out.results[p][static_cast<std::size_t>(t)],
                                      latency_ms[p][static_cast<std::size_t>(t)],
                                      chunk_failures);
              }
              if (checkpointing) {
                done.checkpointable = true;
                done.rec.point = p;
                done.rec.start = start;
                done.rec.end = end;
                done.rec.results = encode_range<T>(out.results[p].data() + start,
                                                   static_cast<std::size_t>(end - start));
                done.rec.failures = chunk_failures;
              }
            }
            const std::lock_guard<std::mutex> lock(mu);
            for (auto& f : chunk_failures) {
              if (f.kind == TrialFailure::Kind::kCrashed && !first_error)
                first_error = std::make_exception_ptr(
                    std::runtime_error(f.type + ": " + f.what));
              failures.push_back(std::move(f));
            }
            if (opts_.fail_fast && first_error) abort.store(true, std::memory_order_relaxed);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(mu);
            if (!internal_error) internal_error = std::current_exception();
            done.checkpointable = false;
          }
          {
            const std::lock_guard<std::mutex> lock(mu);
            completions.push_back(std::move(done));
          }
          cv.notify_one();
        }));
      }
    }

    // Main loop: fold completed chunks into the journal, snapshot
    // periodically, and watch for the interrupt flag.
    const int flush_every = opts_.flush_every > 0
                                ? opts_.flush_every
                                : std::max(1, static_cast<int>(submitted) / 64);
    std::size_t done_count = 0;
    int since_flush = 0;
    bool interrupted = false;
    while (done_count < submitted) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::milliseconds(50),
                  [&] { return !completions.empty(); });
      std::deque<Completion> batch;
      batch.swap(completions);
      lock.unlock();
      if (!interrupted && interrupt_requested()) interrupted = true;
      for (auto& c : batch) {
        ++done_count;
        if (c.checkpointable) {
          journal.add_chunk(std::move(c.rec));
          ++since_flush;
        }
      }
      if (checkpointing && (since_flush >= flush_every || (interrupted && since_flush > 0))) {
        journal.save_atomic(opts_.checkpoint_path);
        since_flush = 0;
      }
    }
    if (checkpointing && since_flush > 0) journal.save_atomic(opts_.checkpoint_path);
    for (auto& f : futures) f.get();
    if (!interrupted && interrupt_requested()) {
      // The signal landed after the last chunk: everything is already
      // journaled; still report the interruption to the caller.
      interrupted = true;
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (watchdog.joinable()) {
      watchdog.request_stop();
      watchdog.join();
    }
    if (internal_error) std::rethrow_exception(internal_error);
    if (opts_.fail_fast && first_error) std::rethrow_exception(first_error);

    out.stats = make_run_stats(base_, points, latency_ms, workers, chunk,
                               std::chrono::duration<double>(t1 - t0).count());
    out.stats.name = opts_.name;
    for (auto& f : failures) out.report.failures.push_back(std::move(f));
    finalize_report(out.report, interrupted);
    out.report.fold_into(out.stats);
    out.interrupted = interrupted;
    return out;
  }

  /// Sweep-less convenience: N supervised trials of one implicit point.
  template <class TrialFn>
  auto run_trials(TrialFn&& fn)
      -> CampaignResult<typename detail::TrialTraits<TrialFn>::result_type> {
    return run(Sweep{}.cartesian(), std::forward<TrialFn>(fn));
  }

 private:
  [[nodiscard]] static bool checkpoint_exists(const std::string& path);
  /// Sort failures, fill the taxonomy counts, stamp the interrupt flag.
  static void finalize_report(CampaignReport& report, bool interrupted);

  /// One trial with retries, watchdog registration, and failure capture.
  /// Writes the result slot (left default on quarantine) and the latency
  /// slot; appends failure records to `chunk_failures`.
  template <class Traits, class TrialFn, class T>
  void run_one_trial(TrialFn& fn, const Point& pt, int t, int retries_allowed,
                     bool watchdog_on, std::mutex& registry_mu,
                     std::list<detail::InFlight>& registry, T& slot, double& latency_slot,
                     std::vector<TrialFailure>& chunk_failures) {
    const std::uint64_t seed = sim::fork(base_.seed, pt.index, static_cast<std::uint64_t>(t));
    TrialFailure record;
    record.point = pt.index;
    record.trial = t;
    record.seed = seed;
    record.point_label = pt.label();
    if (!opts_.replay_prefix.empty())
      record.replay_cmd = opts_.replay_prefix + " " + std::to_string(seed);
    bool crashed_once = false;
    for (int attempt = 1; attempt <= retries_allowed + 1; ++attempt) {
      record.attempts = attempt;
      std::list<detail::InFlight>::iterator entry;
      if (watchdog_on) {
        const std::lock_guard<std::mutex> lock(registry_mu);
        entry = registry.emplace(registry.end());
        entry->point = pt.index;
        entry->trial = t;
        entry->start = std::chrono::steady_clock::now();
      }
      const CancelToken token = watchdog_on ? CancelToken(&entry->cancel) : CancelToken();
      enum class Outcome { kOk, kCancelled, kThrew } outcome = Outcome::kOk;
      const auto s0 = std::chrono::steady_clock::now();
      try {
        if constexpr (Traits::takes_token) {
          slot = fn(pt, seed, token);
        } else {
          slot = fn(pt, seed);
        }
      } catch (const TrialCancelled& e) {
        outcome = Outcome::kCancelled;
        record.type = "skyferry::exp::TrialCancelled";
        record.what = e.what();
      } catch (...) {
        outcome = Outcome::kThrew;
        describe_current_exception(record.type, record.what);
      }
      const auto s1 = std::chrono::steady_clock::now();
      latency_slot = std::chrono::duration<double, std::milli>(s1 - s0).count();
      bool flagged = false;
      if (watchdog_on) {
        const std::lock_guard<std::mutex> lock(registry_mu);
        flagged = entry->flagged;
        registry.erase(entry);
      }

      if (outcome == Outcome::kOk) {
        if (flagged) {
          // Overran the deadline but still produced a result: keep it,
          // flag it — wall-clock must never change the grid.
          record.kind = TrialFailure::Kind::kTimedOut;
          record.quarantined = false;
          record.type = "deadline";
          record.what = "exceeded trial deadline but completed; result kept";
          chunk_failures.push_back(record);
        } else if (crashed_once) {
          // Recovered via retry: record the crash, keep the result.
          record.kind = TrialFailure::Kind::kCrashed;
          record.quarantined = false;
          chunk_failures.push_back(record);
        }
        return;
      }
      if (outcome == Outcome::kCancelled) {
        // A hung seed would hang again — quarantine without retry.
        slot = T{};
        record.kind = TrialFailure::Kind::kTimedOut;
        record.quarantined = true;
        chunk_failures.push_back(record);
        return;
      }
      crashed_once = true;
      if (attempt > retries_allowed) {
        slot = T{};
        record.kind = TrialFailure::Kind::kCrashed;
        record.quarantined = true;
        chunk_failures.push_back(record);
        return;
      }
      // Retry with the same forked seed (the slot is overwritten on
      // success, so a partial write from the failed attempt is fine).
      slot = T{};
    }
  }

  RunnerConfig base_;
  SupervisorOptions opts_;
};

}  // namespace skyferry::exp
