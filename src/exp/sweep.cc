#include "exp/sweep.h"

#include "io/format.h"

namespace skyferry::exp {

double Point::at(std::string_view axis) const {
  for (const auto& [name, value] : coords)
    if (name == axis) return value;
  throw SweepError("sweep point has no axis named '" + std::string(axis) + "'");
}

bool Point::has(std::string_view axis) const noexcept {
  for (const auto& [name, value] : coords) {
    (void)value;
    if (name == axis) return true;
  }
  return false;
}

std::string Point::label() const {
  std::string out;
  for (const auto& [name, value] : coords) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += io::format_number(value);
  }
  return out;
}

Sweep& Sweep::axis(std::string name, std::vector<double> values) {
  if (values.empty()) throw SweepError("sweep axis '" + name + "' has no values");
  for (const auto& a : axes_)
    if (a.name == name) throw SweepError("duplicate sweep axis '" + name + "'");
  axes_.push_back({std::move(name), std::move(values)});
  return *this;
}

std::vector<Point> Sweep::cartesian() const {
  std::size_t total = 1;
  for (const auto& a : axes_) total *= a.values.size();

  std::vector<Point> points;
  points.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    Point p;
    p.index = i;
    p.coords.reserve(axes_.size());
    // First axis slowest: divide by the sizes of all later axes.
    std::size_t rest = total;
    std::size_t idx = i;
    for (const auto& a : axes_) {
      rest /= a.values.size();
      const std::size_t k = idx / rest;
      idx %= rest;
      p.coords.emplace_back(a.name, a.values[k]);
    }
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<Point> Sweep::zipped() const {
  if (axes_.empty()) return cartesian();
  const std::size_t n = axes_.front().values.size();
  for (const auto& a : axes_)
    if (a.values.size() != n)
      throw SweepError("zipped sweep needs equal-length axes ('" + axes_.front().name + "' has " +
                       std::to_string(n) + ", '" + a.name + "' has " +
                       std::to_string(a.values.size()) + ")");
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point p;
    p.index = i;
    p.coords.reserve(axes_.size());
    for (const auto& a : axes_) p.coords.emplace_back(a.name, a.values[i]);
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace skyferry::exp
