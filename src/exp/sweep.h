// Named parameter axes expanded into a flat grid of sweep points. A
// Sweep is the declarative half of an experiment: it says *where* to
// evaluate; the Runner says how many seeded trials to fan out per point
// and on how many threads. Points carry a stable index so per-trial
// seeds (sim::fork(seed, point, trial)) and result slots are independent
// of execution order.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace skyferry::exp {

/// Thrown for malformed sweeps and points (duplicate/missing axis,
/// zipped axes of different lengths, empty axis).
struct SweepError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// One grid point: its stable index in the expansion plus one value per
/// axis, in axis-declaration order.
struct Point {
  std::size_t index{0};
  std::vector<std::pair<std::string, double>> coords;

  /// Value of the named axis; throws SweepError if the axis is unknown.
  [[nodiscard]] double at(std::string_view axis) const;
  /// True if the point carries the named axis.
  [[nodiscard]] bool has(std::string_view axis) const noexcept;
  /// "rho=0.001 d=60" — for table rows and replay logs.
  [[nodiscard]] std::string label() const;
};

class Sweep {
 public:
  /// Append a named axis (fluent). Throws SweepError on an empty value
  /// list or a duplicate name.
  Sweep& axis(std::string name, std::vector<double> values);

  [[nodiscard]] std::size_t axes() const noexcept { return axes_.size(); }

  /// Cartesian product of all axes, first axis slowest. An empty sweep
  /// expands to a single axis-less point (index 0), so "no sweep, just N
  /// trials" is not a special case for the Runner.
  [[nodiscard]] std::vector<Point> cartesian() const;

  /// Element-wise zip of all axes: point i takes value i of every axis.
  /// Throws SweepError unless all axes have equal lengths.
  [[nodiscard]] std::vector<Point> zipped() const;

 private:
  struct AxisDef {
    std::string name;
    std::vector<double> values;
  };
  std::vector<AxisDef> axes_;
};

}  // namespace skyferry::exp
