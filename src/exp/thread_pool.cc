#include "exp/thread_pool.h"

#include <algorithm>

namespace skyferry::exp {

int resolve_threads(int requested) noexcept {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(hw, 1u));
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this](const std::stop_token& stop) { worker_loop(stop); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  // jthread destructors request_stop + join; wake everyone so they see
  // stopping_ after the queue drains.
  for (auto& w : workers_) w.request_stop();
  cv_.notify_all();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || stopping_ || stop.stop_requested(); });
      if (queue_.empty()) {
        // Only exit once the queue is drained: every submitted future
        // must be satisfied even if the pool is being torn down.
        if (stopping_ || stop.stop_requested()) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task routes any exception into the future.
    task();
  }
}

}  // namespace skyferry::exp
