// Fixed-size worker pool for the experiment engine. Deliberately
// work-stealing-free: one shared FIFO queue, workers pull whole tasks.
// Determinism comes from the *callers* (the Runner enqueues chunks whose
// results land in pre-assigned slots), so the pool itself only needs to
// run every task exactly once and propagate exceptions — which it does
// through std::future, never by terminating a worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace skyferry::exp {

/// Resolve a thread-count request: n >= 1 is taken literally, n <= 0
/// means "one per hardware thread" (at least 1).
[[nodiscard]] int resolve_threads(int requested) noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers (<= 0: hardware concurrency). Workers are
  /// std::jthread, so destruction stops and joins them automatically
  /// after the queue drains.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Run `f()` on a worker. The returned future carries the result or
  /// whatever exception `f` threw.
  template <class F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop(const std::stop_token& stop);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_{false};
  std::vector<std::jthread> workers_;
};

}  // namespace skyferry::exp
