// Declarative fault-injection plan. The analytic side of the repo only
// *assumes* failures (δ(d) = exp(-ρ·Δd)); this plan describes which
// failures a simulation actually *executes*: UAV crashes drawn from the
// platform failure law, link-outage bursts that zero s(d), i.i.d.
// control-message loss, and GPS dropout windows. All stochastic draws
// derive from one seed so a trial replays bit-identically.
#pragma once

#include <cstdint>

#include "uav/failure.h"

namespace skyferry::fault {

/// Crash process: one distance-to-failure per UAV drawn from the same
/// FailureModel the planner reasons with — the assumption under test.
struct CrashFaults {
  bool enabled{false};
  double rho_per_m{0.0};
  uav::FailureLaw law{uav::FailureLaw::kExponential};
  double weibull_shape{2.0};

  [[nodiscard]] uav::FailureModel model() const noexcept {
    return uav::FailureModel(rho_per_m, law, weibull_shape);
  }
};

/// Alternating up/down renewal process: outages arrive Poisson at
/// `rate_per_s` (while up) and last Exp(`mean_duration_s`). During an
/// outage the data link delivers nothing — s(d) is effectively zero.
struct LinkOutageFaults {
  double rate_per_s{0.0};
  double mean_duration_s{0.0};

  [[nodiscard]] bool enabled() const noexcept {
    return rate_per_s > 0.0 && mean_duration_s > 0.0;
  }
};

/// Per-message Bernoulli loss on the low-rate control channel.
struct ControlLossFaults {
  double loss_probability{0.0};
};

/// GPS dropout windows (same renewal shape as link outages). A UAV
/// without a fix holds position instead of progressing.
struct GpsDropoutFaults {
  double rate_per_s{0.0};
  double mean_duration_s{0.0};

  [[nodiscard]] bool enabled() const noexcept {
    return rate_per_s > 0.0 && mean_duration_s > 0.0;
  }
};

/// Parameter-mismatch chaos axis: the *world* deviates from the models
/// the planner decided with. Unlike the event faults below, nothing here
/// is ever visible to the planner — the nominal s(d)/ρ stay what the
/// scenario says; the mismatch scales what the simulation *executes*
/// (the actual transfer rate and the actual crash draw). This is the
/// knob the resilience layer is measured against: ±50% ρ error, ±30%
/// throughput-model error, and a mid-approach regime shift.
struct MismatchFaults {
  /// Actual crash rate = plan ρ × rho_scale.
  double rho_scale{1.0};
  /// Actual transfer rate = model s(d) × throughput_scale (before the
  /// regime shift).
  double throughput_scale{1.0};
  /// Regime shift: once the scout has flown this fraction of
  /// (d0 − d_min), the throughput scale switches to
  /// shifted_throughput_scale. 1.0 (the default) means "never".
  double shift_at_fraction{1.0};
  double shifted_throughput_scale{1.0};

  [[nodiscard]] bool any() const noexcept {
    return rho_scale != 1.0 || throughput_scale != 1.0 ||
           (shift_at_fraction < 1.0 && shifted_throughput_scale != 1.0);
  }
};

struct FaultPlan {
  CrashFaults crash;
  LinkOutageFaults link_outage;
  ControlLossFaults control_loss;
  GpsDropoutFaults gps_dropout;
  MismatchFaults mismatch;
  std::uint64_t seed{1};

  /// Nothing injected — a trial under this plan is the deterministic
  /// median story the analytic model tells.
  static FaultPlan none() noexcept { return {}; }

  /// Crashes only, at the given paper rate — the δ(d) validation plan.
  static FaultPlan crashes_only(double rho_per_m,
                                uav::FailureLaw law = uav::FailureLaw::kExponential) noexcept {
    FaultPlan p;
    p.crash.enabled = true;
    p.crash.rho_per_m = rho_per_m;
    p.crash.law = law;
    return p;
  }

  /// Everything at once: crashes at the quadrocopter rate, 30 s mean
  /// inter-outage with 2 s fades, 10% control loss, sparse GPS dropouts.
  static FaultPlan harsh() noexcept {
    FaultPlan p;
    p.crash.enabled = true;
    p.crash.rho_per_m = 2.46e-4;
    p.link_outage = {1.0 / 30.0, 2.0};
    p.control_loss = {0.10};
    p.gps_dropout = {1.0 / 120.0, 3.0};
    return p;
  }
};

}  // namespace skyferry::fault
