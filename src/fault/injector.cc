#include "fault/injector.h"

#include <limits>
#include <string>

namespace skyferry::fault {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kUavCrash: return "uav-crash";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kControlLoss: return "control-loss";
    case FaultKind::kGpsDown: return "gps-down";
    case FaultKind::kGpsUp: return "gps-up";
  }
  return "?";
}

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan)
    : sim_(sim),
      plan_(plan),
      crash_rng_(sim::derive_seed(plan.seed, "fault/crash")),
      link_rng_(sim::derive_seed(plan.seed, "fault/link")),
      ctrl_rng_(sim::derive_seed(plan.seed, "fault/ctrl")),
      gps_rng_(sim::derive_seed(plan.seed, "fault/gps")) {}

void FaultInjector::start(double t_end_s) {
  if (plan_.link_outage.enabled()) schedule_link_flip(t_end_s);
  if (plan_.gps_dropout.enabled()) schedule_gps_flip(t_end_s);
}

void FaultInjector::schedule_link_flip(double t_end_s) {
  // While up, the next outage arrives Exp(rate); while down, the fade
  // ends after Exp(1/mean_duration).
  const double delay = link_up_ ? link_rng_.exponential(plan_.link_outage.rate_per_s)
                                : link_rng_.exponential(1.0 / plan_.link_outage.mean_duration_s);
  if (sim_.now() + delay > t_end_s) return;
  sim_.schedule(delay, [this, t_end_s] {
    link_up_ = !link_up_;
    log_.push_back({link_up_ ? FaultKind::kLinkUp : FaultKind::kLinkDown, sim_.now(), -1});
    for (const auto& fn : link_observers_) fn(link_up_, sim_.now());
    schedule_link_flip(t_end_s);
  });
}

void FaultInjector::schedule_gps_flip(double t_end_s) {
  const double delay = gps_up_ ? gps_rng_.exponential(plan_.gps_dropout.rate_per_s)
                               : gps_rng_.exponential(1.0 / plan_.gps_dropout.mean_duration_s);
  if (sim_.now() + delay > t_end_s) return;
  sim_.schedule(delay, [this, t_end_s] {
    gps_up_ = !gps_up_;
    log_.push_back({gps_up_ ? FaultKind::kGpsUp : FaultKind::kGpsDown, sim_.now(), -1});
    for (const auto& fn : gps_observers_) fn(gps_up_, sim_.now());
    schedule_gps_flip(t_end_s);
  });
}

double FaultInjector::sample_crash_distance(int uav_index) {
  if (!plan_.crash.enabled) return std::numeric_limits<double>::infinity();
  // An independent stream per UAV: adding a scout never shifts the draws
  // of the others.
  sim::Rng per_uav(sim::derive_seed(plan_.seed, "fault/crash/" + std::to_string(uav_index)));
  return plan_.crash.model().sample_failure_distance(per_uav);
}

void FaultInjector::record_crash(int uav_index) {
  log_.push_back({FaultKind::kUavCrash, sim_.now(), uav_index});
}

bool FaultInjector::drop_control_message() {
  if (ctrl_rng_.bernoulli(plan_.control_loss.loss_probability)) {
    log_.push_back({FaultKind::kControlLoss, sim_.now(), -1});
    return true;
  }
  return false;
}

}  // namespace skyferry::fault
