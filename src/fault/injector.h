// Event-driven fault injector on top of sim::Simulator. Owns the fault
// randomness (one derived Rng stream per fault class, so enabling one
// class never perturbs another's draws), maintains the current link/GPS
// up-down state, and logs every injected event for post-trial forensics.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace skyferry::fault {

enum class FaultKind : std::uint8_t {
  kUavCrash,
  kLinkDown,
  kLinkUp,
  kControlLoss,
  kGpsDown,
  kGpsUp,
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

struct FaultEvent {
  FaultKind kind;
  double t_s{0.0};
  int uav{-1};  ///< crash events only; -1 for link/control/GPS faults
};

class FaultInjector {
 public:
  using StateChangeFn = std::function<void(bool up, double t_s)>;

  FaultInjector(sim::Simulator& sim, FaultPlan plan);

  /// Arm the link-outage and GPS-dropout renewal processes until
  /// `t_end_s`. Call once per trial, before sim.run().
  void start(double t_end_s);

  /// Distance-to-failure for UAV `uav_index`, drawn once per trial from
  /// an independent stream (+inf when crashes are disabled). Record the
  /// corresponding crash via `record_crash` when the simulation decides
  /// the distance was actually exceeded.
  [[nodiscard]] double sample_crash_distance(int uav_index);
  void record_crash(int uav_index);

  /// One Bernoulli draw per control message.
  [[nodiscard]] bool drop_control_message();

  [[nodiscard]] bool link_up() const noexcept { return link_up_; }
  [[nodiscard]] bool gps_up() const noexcept { return gps_up_; }

  /// Observers fire on every link/GPS state flip (after the state updates).
  void on_link_change(StateChangeFn fn) { link_observers_.push_back(std::move(fn)); }
  void on_gps_change(StateChangeFn fn) { gps_observers_.push_back(std::move(fn)); }

  [[nodiscard]] const std::vector<FaultEvent>& log() const noexcept { return log_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void schedule_link_flip(double t_end_s);
  void schedule_gps_flip(double t_end_s);

  sim::Simulator& sim_;
  FaultPlan plan_;
  sim::Rng crash_rng_;
  sim::Rng link_rng_;
  sim::Rng ctrl_rng_;
  sim::Rng gps_rng_;
  bool link_up_{true};
  bool gps_up_{true};
  std::vector<StateChangeFn> link_observers_;
  std::vector<StateChangeFn> gps_observers_;
  std::vector<FaultEvent> log_;
};

}  // namespace skyferry::fault
