// Seeded link-chaos layer: the fault axis for "the link you elected is
// not the link you get". The multi-connectivity measurement papers
// (PAPERS.md) show each backend family failing in its own way — bearer
// drops and RRC stalls on cellular, route flaps on mesh, weather and
// handover outages on LEO, interference bursts on 802.11n. This header
// models those as four per-backend seeded fault streams layered ON TOP
// of a backend's own stationary link::OutageProcess:
//
//   - *sustained blackouts*: Poisson-arriving down-epochs with
//     exponential holding times — long enough to starve a committed
//     burst, the trigger for mid-mission re-election;
//   - *rate-degradation epochs*: windows in which the effective data
//     rate is scaled by a factor in (0, 1] — the "bearer is up but
//     crawling" regime a blackout detector misses and a CUSUM catches;
//   - *session-setup failures*: Bernoulli attach/bearer failures drawn
//     once per setup attempt;
//   - *regional outage storms* (LinkStormConfig): fleet-wide windows
//     that knock out a seeded subset of spatial cells for every link at
//     once — correlated chaos no per-UAV stream can model.
//
// Everything is header-only on purpose: src/link consumes these types
// (link::GenericSession overlays a chaos stream on its outage walk) and
// skyferry_link cannot link skyferry_fault without a dependency cycle
// (fault → policy → link). The precedent is link/outage.h, which
// already includes fault/fault_plan.h header-only.
//
// Determinism contract (the whole point of *seeded* chaos): every
// stream is an alternating renewal process advanced by monotone queries
// from its own sim::Rng, so a (config, seed) pair fully determines the
// realization — independent of thread count, query granularity within a
// sweep step, and of every other stream. A disabled axis never draws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace skyferry::fault {

/// One backend's chaos statistics. All axes default to off; a
/// default-constructed config is exactly "no chaos" and draws nothing.
struct LinkChaosConfig {
  /// Sustained blackouts: Poisson arrivals at this rate, each holding
  /// Exp(blackout_mean_s). 0 disables the axis.
  double blackout_rate_per_hour{0.0};
  double blackout_mean_s{0.0};
  /// Rate-degradation epochs: Poisson arrivals, Exp holding times,
  /// during which the effective rate is multiplied by
  /// degrade_rate_scale ∈ (0, 1]. rate 0 disables the axis.
  double degrade_rate_per_hour{0.0};
  double degrade_mean_s{0.0};
  double degrade_rate_scale{1.0};
  /// Per-attempt probability that a session setup (attach/bearer
  /// establishment) fails and must be retried. 0 disables the axis.
  double setup_fail_p{0.0};

  [[nodiscard]] bool any() const noexcept {
    return (blackout_rate_per_hour > 0.0 && blackout_mean_s > 0.0) ||
           (degrade_rate_per_hour > 0.0 && degrade_mean_s > 0.0 && degrade_rate_scale < 1.0) ||
           setup_fail_p > 0.0;
  }

  /// Throws std::invalid_argument on NaN/Inf, negative rates or means,
  /// a degrade scale outside (0, 1], or a setup probability outside
  /// [0, 1].
  void validate() const {
    auto req = [](bool ok, const char* what) {
      if (!ok) throw std::invalid_argument(std::string("LinkChaosConfig: ") + what);
    };
    auto fin_nonneg = [](double v) { return v == v && v >= 0.0 && v <= 1e18; };
    req(fin_nonneg(blackout_rate_per_hour), "blackout_rate_per_hour must be finite and >= 0");
    req(fin_nonneg(blackout_mean_s), "blackout_mean_s must be finite and >= 0");
    req(fin_nonneg(degrade_rate_per_hour), "degrade_rate_per_hour must be finite and >= 0");
    req(fin_nonneg(degrade_mean_s), "degrade_mean_s must be finite and >= 0");
    req(degrade_rate_scale == degrade_rate_scale && degrade_rate_scale > 0.0 &&
            degrade_rate_scale <= 1.0,
        "degrade_rate_scale must be in (0, 1]");
    req(setup_fail_p == setup_fail_p && setup_fail_p >= 0.0 && setup_fail_p <= 1.0,
        "setup_fail_p must be in [0, 1]");
  }
};

/// Regional outage storms: fleet-wide windows (Poisson arrivals, Exp
/// holding) during which a seeded `cell_hit_fraction` of spatial cells
/// lose EVERY link at once. Which cells a storm hits is a pure hash of
/// (storm salt, cell) — thread-safe, replayable, and correlated across
/// all UAVs sharing a cell.
struct LinkStormConfig {
  double rate_per_hour{0.0};
  double mean_s{0.0};
  double cell_hit_fraction{0.0};

  [[nodiscard]] bool any() const noexcept {
    return rate_per_hour > 0.0 && mean_s > 0.0 && cell_hit_fraction > 0.0;
  }

  void validate() const {
    auto req = [](bool ok, const char* what) {
      if (!ok) throw std::invalid_argument(std::string("LinkStormConfig: ") + what);
    };
    auto fin_nonneg = [](double v) { return v == v && v >= 0.0 && v <= 1e18; };
    req(fin_nonneg(rate_per_hour), "rate_per_hour must be finite and >= 0");
    req(fin_nonneg(mean_s), "mean_s must be finite and >= 0");
    req(cell_hit_fraction == cell_hit_fraction && cell_hit_fraction >= 0.0 &&
            cell_hit_fraction <= 1.0,
        "cell_hit_fraction must be in [0, 1]");
  }
};

/// The full chaos axis of a run: per-link configs (index-aligned with
/// the link::LinkSet; single-link consumers read link(0)), one storm
/// process shared by the fleet, and the master chaos seed. A
/// default-constructed plan is "no chaos" and costs nothing.
struct LinkFaultPlan {
  std::vector<LinkChaosConfig> links;
  LinkStormConfig storm{};
  std::uint64_t seed{0x5eedc4a05ULL};

  [[nodiscard]] bool any() const noexcept {
    if (storm.any()) return true;
    for (const LinkChaosConfig& c : links)
      if (c.any()) return true;
    return false;
  }

  /// Per-link config with a disabled-config fallback for indices past
  /// the configured list (a plan may cover fewer links than the set).
  [[nodiscard]] const LinkChaosConfig& link(std::size_t j) const noexcept {
    static const LinkChaosConfig kOff{};
    return j < links.size() ? links[j] : kOff;
  }

  void validate() const {
    for (const LinkChaosConfig& c : links) c.validate();
    storm.validate();
  }

  [[nodiscard]] static LinkFaultPlan none() { return {}; }

  /// A deliberately hostile plan over `n_links` backends: frequent long
  /// blackouts, deep degradation epochs, flaky session setup, and
  /// regional storms. The stress preset for chaos campaigns.
  [[nodiscard]] static LinkFaultPlan harsh(std::size_t n_links) {
    LinkFaultPlan p;
    p.links.resize(n_links);
    for (LinkChaosConfig& c : p.links) {
      c.blackout_rate_per_hour = 30.0;
      c.blackout_mean_s = 20.0;
      c.degrade_rate_per_hour = 20.0;
      c.degrade_mean_s = 60.0;
      c.degrade_rate_scale = 0.25;
      c.setup_fail_p = 0.2;
    }
    p.storm = {6.0, 60.0, 0.5};
    return p;
  }
};

namespace detail {

/// Alternating off/on renewal walker: quiet gaps ~ Exp(rate), active
/// epochs ~ Exp(1/mean). Starts quiet (chaos *arrives*; the stationary
/// baseline belongs to link::OutageProcess). Queries must be monotone
/// in t — the walker advances segment by segment and never rewinds.
class EpochWalker {
 public:
  EpochWalker(double rate_per_hour, double mean_len_s, std::uint64_t seed) noexcept
      : gap_lambda_(rate_per_hour / 3600.0),
        len_lambda_(mean_len_s > 0.0 ? 1.0 / mean_len_s : 0.0),
        rng_(seed) {
    if (enabled()) seg_end_ = rng_.exponential(gap_lambda_);
  }

  [[nodiscard]] bool enabled() const noexcept { return gap_lambda_ > 0.0 && len_lambda_ > 0.0; }

  /// Is an epoch active at t? (monotone t)
  [[nodiscard]] bool active(double t) {
    if (!enabled()) return false;
    advance(t);
    return active_;
  }
  /// End of the segment containing t (monotone t).
  [[nodiscard]] double segment_end_s(double t) {
    if (!enabled()) return std::numeric_limits<double>::infinity();
    advance(t);
    return seg_end_;
  }

 private:
  void advance(double t) {
    while (t >= seg_end_) {
      active_ = !active_;
      seg_end_ += rng_.exponential(active_ ? len_lambda_ : gap_lambda_);
    }
  }

  double gap_lambda_;
  double len_lambda_;
  sim::Rng rng_;
  double seg_end_{std::numeric_limits<double>::infinity()};
  bool active_{false};
};

/// SplitMix64 finisher — the pure cell-hit hash used by StormSchedule.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// One (mission, link) chaos realization: a blackout walker, a
/// degradation walker, and a setup-failure RNG, all forked from one
/// seed. Queries on the walkers must be monotone in t; the three
/// streams are independent, so a disabled axis never perturbs another.
class LinkChaosStream {
 public:
  LinkChaosStream(const LinkChaosConfig& cfg, std::uint64_t seed)
      : cfg_(cfg),
        blackout_(cfg.blackout_rate_per_hour, cfg.blackout_mean_s,
                  sim::derive_seed(seed, "chaos/blackout")),
        degrade_(cfg.degrade_rate_per_hour, cfg.degrade_mean_s,
                 sim::derive_seed(seed, "chaos/degrade")),
        setup_rng_(sim::derive_seed(seed, "chaos/setup")) {}

  [[nodiscard]] const LinkChaosConfig& config() const noexcept { return cfg_; }

  /// Is an injected blackout active at t? (monotone t)
  [[nodiscard]] bool blacked_out(double t) { return blackout_.active(t); }
  /// End of the blackout containing t (call only while blacked_out(t)).
  [[nodiscard]] double blackout_end_s(double t) { return blackout_.segment_end_s(t); }

  /// Effective rate multiplier at t: degrade_rate_scale inside a
  /// degradation epoch, 1 outside. (monotone t)
  [[nodiscard]] double rate_scale(double t) {
    return degrade_.active(t) ? cfg_.degrade_rate_scale : 1.0;
  }

  /// Draw one session-setup attempt; true = the attach failed. Never
  /// draws when the axis is disabled.
  [[nodiscard]] bool draw_setup_failure() {
    return cfg_.setup_fail_p > 0.0 && setup_rng_.bernoulli(cfg_.setup_fail_p);
  }

 private:
  LinkChaosConfig cfg_;
  detail::EpochWalker blackout_;
  detail::EpochWalker degrade_;
  sim::Rng setup_rng_;
};

/// The fleet-wide storm process. Storm *windows* are sampled serially
/// from one RNG (ensure_horizon, called once per sweep step before any
/// parallel work); which cells a window hits is the pure hash
/// mix64(salt ^ cell), so `storming()` is const and safe to call from
/// every worker thread concurrently.
class StormSchedule {
 public:
  StormSchedule(const LinkStormConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(sim::derive_seed(seed, "chaos/storm")) {
    if (enabled()) next_start_ = rng_.exponential(cfg_.rate_per_hour / 3600.0);
  }

  [[nodiscard]] bool enabled() const noexcept { return cfg_.any(); }

  /// Extend the sampled window list to cover queries in [from_s, to_s]
  /// and drop windows that ended before from_s. Serial only.
  void ensure_horizon(double from_s, double to_s) {
    if (!enabled()) return;
    while (next_start_ <= to_s) {
      const double len = rng_.exponential(1.0 / cfg_.mean_s);
      windows_.push_back({next_start_, next_start_ + len, rng_.next_u64()});
      next_start_ += rng_.exponential(cfg_.rate_per_hour / 3600.0);
    }
    std::size_t keep = 0;
    for (std::size_t k = 0; k < windows_.size(); ++k)
      if (windows_[k].end > from_s) windows_[keep++] = windows_[k];
    windows_.resize(keep);
  }

  /// Is cell (cx, cy) inside a storm at t? Const and thread-safe once
  /// ensure_horizon has covered t.
  [[nodiscard]] bool storming(double t, std::int64_t cx, std::int64_t cy) const noexcept {
    for (const Window& w : windows_)
      if (t >= w.start && t < w.end && hits(w.salt, cx, cy)) return true;
    return false;
  }

  /// Latest end among storms covering (t, cx, cy); t if none.
  [[nodiscard]] double storm_end_s(double t, std::int64_t cx, std::int64_t cy) const noexcept {
    double end = t;
    for (const Window& w : windows_)
      if (t >= w.start && t < w.end && hits(w.salt, cx, cy) && w.end > end) end = w.end;
    return end;
  }

 private:
  struct Window {
    double start;
    double end;
    std::uint64_t salt;
  };

  [[nodiscard]] bool hits(std::uint64_t salt, std::int64_t cx, std::int64_t cy) const noexcept {
    const std::uint64_t h = detail::mix64(
        salt ^ detail::mix64(static_cast<std::uint64_t>(cx) * 0x9e3779b97f4a7c15ULL ^
                             static_cast<std::uint64_t>(cy)));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < cfg_.cell_hit_fraction;
  }

  LinkStormConfig cfg_;
  sim::Rng rng_;
  std::vector<Window> windows_;
  double next_start_{0.0};
};

}  // namespace skyferry::fault
