#include "fault/mission_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/planner.h"
#include "ctrl/messages.h"
#include "sim/simulator.h"

namespace skyferry::fault {

void TrialSpec::validate() const {
  auto finite = [](double v) { return std::isfinite(v); };
  if (scenario.name.empty()) throw ConfigError("TrialSpec: scenario has no name (empty scenario?)");
  if (!finite(scenario.d0_m) || scenario.d0_m <= 0.0)
    throw ConfigError("TrialSpec: scenario.d0_m must be finite and > 0");
  if (!finite(scenario.min_distance_m) || scenario.min_distance_m < 0.0)
    throw ConfigError("TrialSpec: scenario.min_distance_m must be finite and >= 0");
  if (!finite(scenario.mdata_bytes) || scenario.mdata_bytes <= 0.0)
    throw ConfigError("TrialSpec: scenario.mdata_bytes must be finite and > 0");
  if (!finite(scenario.speed_mps) || scenario.speed_mps <= 0.0)
    throw ConfigError("TrialSpec: scenario.speed_mps must be finite and > 0");
  if (!finite(scenario.rho_per_m) || scenario.rho_per_m < 0.0)
    throw ConfigError("TrialSpec: scenario.rho_per_m must be finite and >= 0");
  if (!finite(max_time_s) || max_time_s <= 0.0)
    throw ConfigError("TrialSpec: max_time_s must be finite and > 0");
  if (!finite(stall_timeout_s) || stall_timeout_s <= 0.0)
    throw ConfigError("TrialSpec: stall_timeout_s must be finite and > 0");
  if (retreat_after_stalls <= 0) throw ConfigError("TrialSpec: retreat_after_stalls must be > 0");
  if (target_packets == 0 && arq.datagram_bytes == 0)
    throw ConfigError("TrialSpec: target_packets and arq.datagram_bytes cannot both be 0");
  if (use_link_simulator && (!finite(link_sim_duration_s) || link_sim_duration_s <= 0.0))
    throw ConfigError("TrialSpec: link_sim_duration_s must be finite and > 0");
}

namespace {

ctrl::ControlChannelConfig make_control_cfg(const FaultPlan& plan) {
  ctrl::ControlChannelConfig cfg;
  cfg.loss_probability = plan.control_loss.loss_probability;
  cfg.loss_seed = sim::derive_seed(plan.seed, "fault/ctrlchan");
  return cfg;
}

net::ArqConfig size_arq(const TrialSpec& spec, double batch_bytes) {
  net::ArqConfig arq = spec.arq;
  if (arq.datagram_bytes == 0) {
    const double target = std::max<double>(spec.target_packets, 1.0);
    arq.datagram_bytes = static_cast<std::uint32_t>(
        std::clamp(std::ceil(batch_bytes / target), 256.0, 1048576.0));
  }
  return arq;
}

/// Single-scout trial state machine: Approach -> Negotiate -> Transfer,
/// with crash/outage/loss events arriving from the injector throughout.
class MissionTrial {
 public:
  MissionTrial(const TrialSpec& spec, std::uint64_t seed)
      : spec_(spec),
        model_(spec.scenario.paper_throughput()),
        plan_([&] {
          FaultPlan p = spec.faults;
          p.seed = seed;
          return p;
        }()),
        injector_(sim_, plan_),
        control_(sim_, make_control_cfg(plan_)),
        backoff_rng_(sim::derive_seed(plan_.seed, "fault/backoff")),
        transfer_(size_arq(spec, spec.scenario.mdata_bytes), spec.scenario.mdata_bytes) {}

  TrialResult run();

 private:
  void begin_approach();
  void resume_approach();   // movement segment while GPS is up
  void pause_approach(double t_s);
  void arrive();
  void negotiate();
  void begin_transfer_attempt();
  void pump();
  void on_stall_tick();
  void retreat_and_backoff();
  void crash();
  void finalize(bool delivered);

  [[nodiscard]] double throughput_bps() const {
    if (measured_throughput_bps_ >= 0.0) return measured_throughput_bps_;
    return model_.throughput_bps(result_.d_opt_m);
  }

  /// Replace the analytic s(d_opt) with a seeded PHY/MAC link-simulator
  /// measurement at the transmit position (TrialSpec::use_link_simulator).
  void measure_link_throughput(std::uint64_t seed) {
    mac::LinkConfig lc;
    lc.channel = spec_.link_channel;
    lc.fidelity = spec_.link_fidelity;
    // Monte-Carlo only needs the rate: skip throughput sampling.
    lc.meter_window_s = std::numeric_limits<double>::infinity();
    lc.shared_tables = spec_.link_tables;
    mac::ArfRate rc;
    mac::LinkSimulator link(lc, rc, sim::derive_seed(seed, "fault/link"));
    const auto r =
        link.run_saturated(spec_.link_sim_duration_s, mac::static_geometry(result_.d_opt_m));
    measured_throughput_bps_ = r.mean_goodput_mbps() * 1e6;
  }

  const TrialSpec& spec_;
  core::PaperLogThroughput model_;
  sim::Simulator sim_;
  FaultPlan plan_;
  FaultInjector injector_;
  ctrl::ControlChannel control_;
  sim::Rng backoff_rng_;
  ResumableTransfer transfer_;
  TrialResult result_;
  double measured_throughput_bps_{-1.0};  ///< < 0: use the analytic model

  // Approach bookkeeping: distance accrues only while moving (GPS up).
  double distance_flown_m_{0.0};
  double segment_start_t_{0.0};
  double remaining_approach_m_{0.0};
  bool approaching_{false};
  sim::EventId arrival_event_{0};
  sim::EventId crash_event_{0};

  // Transfer bookkeeping.
  bool transferring_{false};
  double data_busy_until_{0.0};
  std::uint32_t last_progress_{0};
  int consecutive_stalls_{0};
  int stall_generation_{0};
  bool done_{false};
};

TrialResult MissionTrial::run() {
  const auto& scen = spec_.scenario;
  const core::DelayedGratificationPlanner planner(model_, scen.failure_model());
  const core::Decision decision = planner.decide(scen.delivery_params());

  result_.d_opt_m = decision.strategy.target_distance_m;
  result_.approach_distance_m = scen.d0_m - result_.d_opt_m;
  result_.analytic_delivery_probability = decision.delivery_probability;
  result_.total_bytes = scen.mdata_bytes;
  result_.crash_distance_m = injector_.sample_crash_distance(0);
  if (spec_.use_link_simulator) measure_link_throughput(plan_.seed);

  injector_.start(spec_.max_time_s);
  injector_.on_gps_change([this](bool up, double t) {
    if (done_ || !approaching_) return;
    if (up) {
      resume_approach();
    } else {
      pause_approach(t);
    }
  });

  begin_approach();
  sim_.run_until(spec_.max_time_s);
  if (!done_) {
    result_.timed_out = true;
    finalize(false);
  }
  for (const auto& ev : injector_.log()) {
    result_.link_outages += (ev.kind == FaultKind::kLinkDown) ? 1 : 0;
    result_.gps_dropouts += (ev.kind == FaultKind::kGpsDown) ? 1 : 0;
  }
  return result_;
}

void MissionTrial::begin_approach() {
  remaining_approach_m_ = std::max(result_.approach_distance_m, 0.0);
  approaching_ = true;
  if (injector_.gps_up()) {
    resume_approach();
  }  // else: the first gps-up flip starts the movement
}

void MissionTrial::resume_approach() {
  const double v = spec_.scenario.speed_mps;
  segment_start_t_ = sim_.now();
  arrival_event_ = sim_.schedule(remaining_approach_m_ / v, [this] {
    if (done_ || !approaching_) return;
    distance_flown_m_ += remaining_approach_m_;
    remaining_approach_m_ = 0.0;
    arrive();
  });
  // Crash mid-segment: the sampled failure distance falls inside it.
  const double to_crash = result_.crash_distance_m - distance_flown_m_;
  if (to_crash < remaining_approach_m_) {
    crash_event_ = sim_.schedule(std::max(to_crash, 0.0) / v, [this] {
      if (done_) return;
      crash();
    });
  }
}

void MissionTrial::pause_approach(double t_s) {
  const double v = spec_.scenario.speed_mps;
  const double covered = std::max(0.0, (t_s - segment_start_t_)) * v;
  distance_flown_m_ += std::min(covered, remaining_approach_m_);
  remaining_approach_m_ = std::max(0.0, remaining_approach_m_ - covered);
  if (arrival_event_) sim_.cancel(arrival_event_);
  if (crash_event_) sim_.cancel(crash_event_);
  arrival_event_ = crash_event_ = 0;
}

void MissionTrial::arrive() {
  approaching_ = false;
  result_.survived_approach = true;
  if (arrival_event_) sim_.cancel(arrival_event_);
  arrival_event_ = 0;

  // Post-approach loiter burns failure distance at cruise speed until the
  // mission ends; the remaining budget converts to one absolute deadline.
  if (spec_.loiter_burns_distance && std::isfinite(result_.crash_distance_m)) {
    const double budget_m = result_.crash_distance_m - distance_flown_m_;
    crash_event_ = sim_.schedule(budget_m / spec_.scenario.speed_mps, [this] {
      if (done_) return;
      crash();
    });
  }
  negotiate();
}

void MissionTrial::negotiate() {
  ctrl::TransmitCommand cmd;
  cmd.uav_id = "scout0";
  cmd.peer_id = "collector";
  cmd.transmit_distance_m = result_.d_opt_m;
  const double d = result_.d_opt_m;
  control_.send_reliable(
      cmd, [d] { return d; },
      [this](const ctrl::ControlMessage&, double) {
        if (done_) return;
        begin_transfer_attempt();
      },
      [this](int) {
        if (done_) return;
        result_.negotiation_failed = true;
        finalize(false);
      },
      spec_.negotiation);
}

void MissionTrial::begin_transfer_attempt() {
  transfer_.begin_attempt();
  ++result_.rendezvous_attempts;
  transferring_ = true;
  consecutive_stalls_ = 0;
  last_progress_ = transfer_.receiver().received_count();
  const int gen = ++stall_generation_;
  sim::schedule_periodic(sim_, spec_.stall_timeout_s, [this, gen] {
    if (done_ || !transferring_ || gen != stall_generation_) return false;
    on_stall_tick();
    return !done_ && transferring_ && gen == stall_generation_;
  });
  pump();
}

void MissionTrial::pump() {
  if (done_ || !transferring_) return;
  if (sim_.now() < data_busy_until_) return;  // one datagram in the air at a time
  if (transfer_.complete()) {
    finalize(true);
    return;
  }
  auto p = transfer_.sender().next_packet(sim_.now());
  if (!p) return;  // window full: wait for acks or the stall timer
  const double s = throughput_bps();
  if (s <= 0.0) return;  // no usable rate at this distance; stall timer retreats
  const double airtime = static_cast<double>(p->payload_bytes) * 8.0 / s;
  data_busy_until_ = sim_.now() + airtime;
  const net::Packet sent = *p;
  sim_.schedule(airtime, [this, sent] {
    if (done_ || !transferring_) return;
    if (injector_.link_up()) {
      if (auto ack = transfer_.receiver().on_packet(sent)) {
        // The tiny selective-ack rides the same link; an outage eats it.
        if (injector_.link_up()) transfer_.sender().on_ack(*ack);
      }
    }
    pump();
  });
}

void MissionTrial::on_stall_tick() {
  const std::uint32_t got = transfer_.receiver().received_count();
  if (got != last_progress_) {
    last_progress_ = got;
    consecutive_stalls_ = 0;
    return;
  }
  ++consecutive_stalls_;
  if (consecutive_stalls_ >= spec_.retreat_after_stalls) {
    retreat_and_backoff();
    return;
  }
  // Declare the in-flight window lost and push retransmissions.
  transfer_.sender().on_timeout();
  pump();
}

void MissionTrial::retreat_and_backoff() {
  const int attempt = transfer_.attempts() - 1;
  if (spec_.retreat_backoff.exhausted(attempt)) {
    finalize(false);
    return;
  }
  result_.arq_retransmissions = transfer_.sender().retransmissions();
  transfer_.suspend();
  transferring_ = false;
  ++stall_generation_;
  data_busy_until_ = 0.0;
  sim_.schedule(spec_.retreat_backoff.delay_s(attempt, backoff_rng_), [this] {
    if (done_) return;
    negotiate();  // re-negotiate the rendezvous, then resume the transfer
  });
}

void MissionTrial::crash() {
  injector_.record_crash(0);
  result_.crashed = true;
  finalize(false);
}

void MissionTrial::finalize(bool delivered) {
  if (done_) return;
  done_ = true;
  if (transferring_) {
    result_.arq_retransmissions = transfer_.sender().retransmissions();
    transfer_.suspend();
    transferring_ = false;
  }
  result_.delivered_all = delivered;
  result_.delivered_bytes = transfer_.attempts() > 0 ? transfer_.delivered_bytes() : 0.0;
  if (delivered) result_.delivered_bytes = result_.total_bytes;
  result_.completion_time_s = sim_.now();
  result_.control_retries = control_.reliable_retries();
}

}  // namespace

TrialResult run_mission_trial(const TrialSpec& spec, std::uint64_t seed) {
  MissionTrial trial(spec, seed);
  return trial.run();
}

}  // namespace skyferry::fault
