#include "fault/mission_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "core/planner.h"
#include "ctrl/messages.h"
#include "sim/simulator.h"

namespace skyferry::fault {

void ResilienceSpec::validate() const {
  auto finite = [](double v) { return std::isfinite(v); };
  if (!enabled) return;
  if (!finite(probe_interval_s) || probe_interval_s <= 0.0)
    throw ConfigError("ResilienceSpec: probe_interval_s must be finite and > 0");
  if (!finite(probe_noise_rel) || probe_noise_rel < 0.0)
    throw ConfigError("ResilienceSpec: probe_noise_rel must be finite and >= 0");
  if (!finite(rho_noise_rel) || rho_noise_rel < 0.0)
    throw ConfigError("ResilienceSpec: rho_noise_rel must be finite and >= 0");
  if (!finite(ship_closer_fraction) || ship_closer_fraction <= 0.0 || ship_closer_fraction > 1.0)
    throw ConfigError("ResilienceSpec: ship_closer_fraction must be in (0, 1]");
  if (max_ship_closer_moves < 0)
    throw ConfigError("ResilienceSpec: max_ship_closer_moves must be >= 0");
  if (!finite(estimator.cusum_h) || estimator.cusum_h <= 0.0)
    throw ConfigError("ResilienceSpec: estimator.cusum_h must be finite and > 0");
  if (!finite(redecision.divergence_threshold) || redecision.divergence_threshold <= 0.0)
    throw ConfigError("ResilienceSpec: redecision.divergence_threshold must be finite and > 0");
  if (retry_budget.max_attempts <= 0)
    throw ConfigError("ResilienceSpec: retry_budget.max_attempts must be > 0");
}

void TrialSpec::validate() const {
  auto finite = [](double v) { return std::isfinite(v); };
  if (scenario.name.empty()) throw ConfigError("TrialSpec: scenario has no name (empty scenario?)");
  if (!finite(scenario.d0_m) || scenario.d0_m <= 0.0)
    throw ConfigError("TrialSpec: scenario.d0_m must be finite and > 0");
  if (!finite(scenario.min_distance_m) || scenario.min_distance_m < 0.0)
    throw ConfigError("TrialSpec: scenario.min_distance_m must be finite and >= 0");
  if (!finite(scenario.mdata_bytes) || scenario.mdata_bytes <= 0.0)
    throw ConfigError("TrialSpec: scenario.mdata_bytes must be finite and > 0");
  if (!finite(scenario.speed_mps) || scenario.speed_mps <= 0.0)
    throw ConfigError("TrialSpec: scenario.speed_mps must be finite and > 0");
  if (!finite(scenario.rho_per_m) || scenario.rho_per_m < 0.0)
    throw ConfigError("TrialSpec: scenario.rho_per_m must be finite and >= 0");
  if (!finite(max_time_s) || max_time_s <= 0.0)
    throw ConfigError("TrialSpec: max_time_s must be finite and > 0");
  if (!finite(stall_timeout_s) || stall_timeout_s <= 0.0)
    throw ConfigError("TrialSpec: stall_timeout_s must be finite and > 0");
  if (retreat_after_stalls <= 0) throw ConfigError("TrialSpec: retreat_after_stalls must be > 0");
  if (target_packets == 0 && arq.datagram_bytes == 0)
    throw ConfigError("TrialSpec: target_packets and arq.datagram_bytes cannot both be 0");
  if (use_link_simulator && (!finite(link_sim_duration_s) || link_sim_duration_s <= 0.0))
    throw ConfigError("TrialSpec: link_sim_duration_s must be finite and > 0");
  const MismatchFaults& mm = faults.mismatch;
  if (!finite(mm.rho_scale) || mm.rho_scale < 0.0)
    throw ConfigError("TrialSpec: faults.mismatch.rho_scale must be finite and >= 0");
  if (!finite(mm.throughput_scale) || mm.throughput_scale < 0.0)
    throw ConfigError("TrialSpec: faults.mismatch.throughput_scale must be finite and >= 0");
  if (!finite(mm.shifted_throughput_scale) || mm.shifted_throughput_scale < 0.0)
    throw ConfigError("TrialSpec: faults.mismatch.shifted_throughput_scale must be finite and >= 0");
  if (!finite(mm.shift_at_fraction) || mm.shift_at_fraction < 0.0 || mm.shift_at_fraction > 1.0)
    throw ConfigError("TrialSpec: faults.mismatch.shift_at_fraction must be in [0, 1]");
  try {
    link_chaos.validate();
  } catch (const std::invalid_argument& e) {
    throw ConfigError(std::string("TrialSpec: ") + e.what());
  }
  resilience.validate();
}

namespace {

ctrl::ControlChannelConfig make_control_cfg(const FaultPlan& plan) {
  ctrl::ControlChannelConfig cfg;
  cfg.loss_probability = plan.control_loss.loss_probability;
  cfg.loss_seed = sim::derive_seed(plan.seed, "fault/ctrlchan");
  return cfg;
}

net::ArqConfig size_arq(const TrialSpec& spec, double batch_bytes) {
  net::ArqConfig arq = spec.arq;
  if (arq.datagram_bytes == 0) {
    const double target = std::max<double>(spec.target_packets, 1.0);
    arq.datagram_bytes = static_cast<std::uint32_t>(
        std::clamp(std::ceil(batch_bytes / target), 256.0, 1048576.0));
  }
  return arq;
}

/// Single-scout trial state machine: Approach -> Negotiate -> Transfer,
/// with crash/outage/loss events arriving from the injector throughout.
class MissionTrial {
 public:
  MissionTrial(const TrialSpec& spec, std::uint64_t seed)
      : spec_(spec),
        model_(spec.scenario.paper_throughput()),
        plan_([&] {
          FaultPlan p = spec.faults;
          p.seed = seed;
          // The mismatch axis scales the *executed* crash law; the
          // planner keeps deciding with the nominal scenario rho.
          if (p.crash.enabled) p.crash.rho_per_m *= p.mismatch.rho_scale;
          return p;
        }()),
        injector_(sim_, plan_),
        control_(sim_, make_control_cfg(plan_)),
        backoff_rng_(sim::derive_seed(plan_.seed, "fault/backoff")),
        probe_rng_(sim::derive_seed(plan_.seed, "resilience/probe")),
        transfer_(size_arq(spec, spec.scenario.mdata_bytes), spec.scenario.mdata_bytes) {
    // Chaos forks from the trial seed (not the plan's own), so a seed
    // sweep varies the chaos realization together with everything else.
    // An empty plan constructs nothing and draws nothing.
    if (spec_.link_chaos.any()) {
      chaos_.emplace(spec_.link_chaos.link(0), sim::derive_seed(plan_.seed, "chaos/mission"));
    }
    if (spec_.resilience.enabled) {
      chan_est_.emplace(spec_.resilience.estimator, model_.a(), model_.b());
      hazard_est_.emplace(spec_.resilience.hazard);
      mode_ctl_.emplace(spec_.resilience.degradation);
      redecide_.emplace(spec_.resilience.redecision, model_);
      net::RetryBudgetConfig rb = spec_.resilience.retry_budget;
      if (!std::isfinite(rb.deadline_s)) rb.deadline_s = spec_.max_time_s;
      retry_budget_ = net::RetryBudget(rb);
    }
  }

  TrialResult run();

 private:
  void begin_approach();
  void resume_approach();   // movement segment while GPS is up
  void pause_approach(double t_s);
  void arrive();
  void negotiate();
  void begin_transfer_attempt();
  void pump();
  void on_stall_tick();
  void on_setup_failure();
  void retreat_and_backoff();
  void crash();
  void finalize(bool delivered);

  // Resilience hooks (all no-ops unless spec.resilience.enabled).
  void probe_tick();
  void divert_to(double new_target_d_m);
  void ship_closer();
  [[nodiscard]] bool can_ship_closer() const {
    return spec_.resilience.enabled &&
           result_.ship_closer_moves < spec_.resilience.max_ship_closer_moves &&
           result_.d_final_m > spec_.scenario.min_distance_m + 1e-6;
  }

  /// Approach distance actually covered so far, including the live
  /// movement segment (if one is in flight).
  [[nodiscard]] double total_flown_m() const {
    double flown = distance_flown_m_;
    if (approaching_ && arrival_event_ != 0) {
      const double covered =
          std::max(0.0, sim_.now() - segment_start_t_) * spec_.scenario.speed_mps;
      flown += std::min(covered, remaining_approach_m_);
    }
    return flown;
  }

  [[nodiscard]] double current_distance_m() const {
    if (!approaching_) return result_.d_final_m;
    return std::max(spec_.scenario.d0_m - total_flown_m(), spec_.scenario.min_distance_m);
  }

  /// Executed-world throughput multiplier (the mismatch chaos axis). The
  /// regime shift latches once the flown fraction of the planned
  /// approach crosses shift_at_fraction.
  [[nodiscard]] double tput_mismatch_scale() const {
    const MismatchFaults& mm = plan_.mismatch;
    if (mm.shift_at_fraction >= 1.0) return mm.throughput_scale;
    const double span = std::max(spec_.scenario.d0_m - spec_.scenario.min_distance_m, 1e-9);
    return total_flown_m() >= mm.shift_at_fraction * span ? mm.shifted_throughput_scale
                                                          : mm.throughput_scale;
  }

  /// Rate the world actually delivers at distance d (mismatch applied).
  [[nodiscard]] double actual_throughput_bps(double distance_m) const {
    const double base = measured_throughput_bps_ >= 0.0 ? measured_throughput_bps_
                                                        : model_.throughput_bps(distance_m);
    return base * tput_mismatch_scale();
  }

  [[nodiscard]] double throughput_bps() const { return actual_throughput_bps(result_.d_final_m); }

  /// Replace the analytic s(d) with a seeded PHY/MAC link-simulator
  /// measurement at the transmit position (TrialSpec::use_link_simulator).
  void measure_link_throughput(std::uint64_t seed, double distance_m) {
    mac::LinkConfig lc;
    lc.channel = spec_.link_channel;
    lc.fidelity = spec_.link_fidelity;
    // Monte-Carlo only needs the rate: skip throughput sampling.
    lc.meter_window_s = std::numeric_limits<double>::infinity();
    lc.shared_tables = spec_.link_tables;
    mac::ArfRate rc;
    mac::LinkSimulator link(lc, rc, sim::derive_seed(seed, "fault/link"));
    const auto r = link.run_saturated(spec_.link_sim_duration_s, mac::static_geometry(distance_m));
    measured_throughput_bps_ = r.mean_goodput_mbps() * 1e6;
  }

  const TrialSpec& spec_;
  core::PaperLogThroughput model_;
  sim::Simulator sim_;
  FaultPlan plan_;
  FaultInjector injector_;
  ctrl::ControlChannel control_;
  sim::Rng backoff_rng_;
  sim::Rng probe_rng_;
  ResumableTransfer transfer_;
  TrialResult result_;
  double measured_throughput_bps_{-1.0};  ///< < 0: use the analytic model
  /// Link-chaos overlay on the data link (engaged only when the spec's
  /// plan has any axis on; single-link trials read link(0)).
  std::optional<LinkChaosStream> chaos_;
  /// Was the link down (baseline outage or injected blackout) when the
  /// last stall window was declared? Distinguishes "starved by outage"
  /// from a plain time limit in the failure taxonomy.
  bool stalled_in_outage_{false};

  // Resilience stack (engaged only when spec.resilience.enabled).
  std::optional<ctrl::OnlineChannelEstimator> chan_est_;
  std::optional<ctrl::HazardRateEstimator> hazard_est_;
  std::optional<ctrl::DegradedModeController> mode_ctl_;
  std::optional<core::ReDecisionPolicy> redecide_;
  net::RetryBudget retry_budget_;

  // Approach bookkeeping: distance accrues only while moving (GPS up).
  double distance_flown_m_{0.0};
  double segment_start_t_{0.0};
  double remaining_approach_m_{0.0};
  bool approaching_{false};
  sim::EventId arrival_event_{0};
  sim::EventId crash_event_{0};

  // Transfer bookkeeping.
  bool transferring_{false};
  double data_busy_until_{0.0};
  std::uint32_t last_progress_{0};
  int consecutive_stalls_{0};
  int stall_generation_{0};
  bool done_{false};
};

TrialResult MissionTrial::run() {
  const auto& scen = spec_.scenario;
  const core::DelayedGratificationPlanner planner(model_, scen.failure_model());
  const core::Decision decision = planner.decide(scen.delivery_params());

  result_.d_opt_m = decision.strategy.target_distance_m;
  result_.d_final_m = result_.d_opt_m;  // resilience may move this
  result_.approach_distance_m = scen.d0_m - result_.d_opt_m;
  result_.analytic_delivery_probability = decision.delivery_probability;
  result_.total_bytes = scen.mdata_bytes;
  result_.crash_distance_m = injector_.sample_crash_distance(0);
  if (spec_.use_link_simulator) measure_link_throughput(plan_.seed, result_.d_opt_m);

  injector_.start(spec_.max_time_s);
  injector_.on_gps_change([this](bool up, double t) {
    if (done_ || !approaching_) return;
    if (up) {
      resume_approach();
    } else {
      pause_approach(t);
    }
  });

  begin_approach();
  sim_.run_until(spec_.max_time_s);
  if (!done_) {
    result_.timed_out = true;
    if (result_.incomplete_reason == mac::IncompleteReason::kNone) {
      result_.incomplete_reason = stalled_in_outage_ ? mac::IncompleteReason::kStarvedByOutage
                                                     : mac::IncompleteReason::kTimeLimit;
    }
    finalize(false);
  }
  for (const auto& ev : injector_.log()) {
    result_.link_outages += (ev.kind == FaultKind::kLinkDown) ? 1 : 0;
    result_.gps_dropouts += (ev.kind == FaultKind::kGpsDown) ? 1 : 0;
  }
  return result_;
}

void MissionTrial::begin_approach() {
  remaining_approach_m_ = std::max(result_.approach_distance_m, 0.0);
  approaching_ = true;
  if (spec_.resilience.enabled) {
    sim::schedule_periodic(sim_, spec_.resilience.probe_interval_s, [this] {
      if (done_ || !approaching_) return false;
      probe_tick();
      return !done_ && approaching_;
    });
  }
  if (injector_.gps_up()) {
    resume_approach();
  }  // else: the first gps-up flip starts the movement
}

void MissionTrial::probe_tick() {
  const ResilienceSpec& rs = spec_.resilience;
  const double d = current_distance_m();
  // Unbiased lognormal probe noise: E[obs] equals the executed rate.
  const double sn = rs.probe_noise_rel;
  const double obs = model_.throughput_bps(d) * tput_mismatch_scale() *
                     std::exp(probe_rng_.gaussian(-0.5 * sn * sn, sn));
  ++result_.probes;
  if (!chan_est_->add_sample(d, obs)) ++result_.probe_rejects;
  if (plan_.crash.enabled) {
    // Battery-drain telemetry observes the executed rho directly (the
    // paper's rho is the inverse battery-limited range).
    const double sr = rs.rho_noise_rel;
    hazard_est_->add_sample(plan_.crash.rho_per_m *
                            std::exp(probe_rng_.gaussian(-0.5 * sr * sr, sr)));
  }

  ctrl::HealthSignals h;
  const auto est = chan_est_->estimate();
  // A window below min_samples is tagged "no estimate": too early to
  // judge the model, so only mission-risk signals may step the ladder.
  h.divergence = est ? chan_est_->divergence() : 0.0;
  h.rho_rel_error = hazard_est_->relative_error_vs(spec_.scenario.rho_per_m);
  h.estimator_confidence = est ? est->confidence : 1.0;
  h.control_retry_fraction =
      static_cast<double>(control_.reliable_retries()) /
      std::max(1.0, static_cast<double>(result_.rendezvous_attempts + 1));
  const ctrl::ResilienceMode mode = mode_ctl_->update(h);
  result_.final_mode = static_cast<int>(mode);
  if (h.divergence >= rs.degradation.divergence_threshold ||
      h.rho_rel_error >= rs.degradation.rho_rel_threshold) {
    result_.mismatch_detected = true;
  }

  if (mode == ctrl::ResilienceMode::kConservative) {
    divert_to(d);  // model untrustworthy or mission at risk: transmit now
    return;
  }
  if (mode != ctrl::ResilienceMode::kReEstimated) return;

  core::ReDecisionInput in;
  in.current_d_m = d;
  in.target_d_m = result_.d_final_m;
  in.min_distance_m = spec_.scenario.min_distance_m;
  in.speed_mps = spec_.scenario.speed_mps;
  in.mdata_bytes = result_.total_bytes;
  in.elapsed_s = sim_.now();
  in.divergence = h.divergence;
  in.rho_rel_error = h.rho_rel_error;
  in.channel = est;
  in.rho_hat = hazard_est_->rho();
  in.nominal_rho = spec_.scenario.rho_per_m;
  const core::ReDecision rd = redecide_->consider(in);
  if (rd.redecided) {
    result_.redecisions = redecide_->redecisions();
    chan_est_->rearm();  // the old window was explained by the old model
    divert_to(rd.target_d_m);
  }
}

void MissionTrial::divert_to(double new_target_d_m) {
  if (done_ || !approaching_) return;
  if (arrival_event_) pause_approach(sim_.now());  // fold live progress in
  const double cur_d =
      std::max(spec_.scenario.d0_m - distance_flown_m_, spec_.scenario.min_distance_m);
  const double target = std::clamp(new_target_d_m, spec_.scenario.min_distance_m, cur_d);
  result_.d_final_m = target;
  remaining_approach_m_ = std::max(cur_d - target, 0.0);
  if (remaining_approach_m_ <= 1e-9) {
    remaining_approach_m_ = 0.0;
    arrive();
  } else if (injector_.gps_up()) {
    resume_approach();
  }  // else: the next gps-up flip resumes toward the new target
}

void MissionTrial::resume_approach() {
  const double v = spec_.scenario.speed_mps;
  segment_start_t_ = sim_.now();
  arrival_event_ = sim_.schedule(remaining_approach_m_ / v, [this] {
    if (done_ || !approaching_) return;
    distance_flown_m_ += remaining_approach_m_;
    remaining_approach_m_ = 0.0;
    arrive();
  });
  // Crash mid-segment: the sampled failure distance falls inside it.
  const double to_crash = result_.crash_distance_m - distance_flown_m_;
  if (to_crash < remaining_approach_m_) {
    crash_event_ = sim_.schedule(std::max(to_crash, 0.0) / v, [this] {
      if (done_) return;
      crash();
    });
  }
}

void MissionTrial::pause_approach(double t_s) {
  const double v = spec_.scenario.speed_mps;
  const double covered = std::max(0.0, (t_s - segment_start_t_)) * v;
  distance_flown_m_ += std::min(covered, remaining_approach_m_);
  remaining_approach_m_ = std::max(0.0, remaining_approach_m_ - covered);
  if (arrival_event_) sim_.cancel(arrival_event_);
  if (crash_event_) sim_.cancel(crash_event_);
  arrival_event_ = crash_event_ = 0;
}

void MissionTrial::arrive() {
  approaching_ = false;
  result_.survived_approach = true;
  if (arrival_event_) sim_.cancel(arrival_event_);
  arrival_event_ = 0;

  // Post-approach loiter burns failure distance at cruise speed until the
  // mission ends; the remaining budget converts to one absolute deadline.
  if (spec_.loiter_burns_distance && std::isfinite(result_.crash_distance_m)) {
    const double budget_m = result_.crash_distance_m - distance_flown_m_;
    crash_event_ = sim_.schedule(budget_m / spec_.scenario.speed_mps, [this] {
      if (done_) return;
      crash();
    });
  }
  // A diverted mission transmits from d_final, not d_opt: re-measure the
  // link-simulated rate at the actual transmit position.
  if (spec_.use_link_simulator && result_.d_final_m != result_.d_opt_m) {
    measure_link_throughput(sim::derive_seed(plan_.seed, "resilience/meas"), result_.d_final_m);
  }
  negotiate();
}

void MissionTrial::negotiate() {
  ctrl::TransmitCommand cmd;
  cmd.uav_id = "scout0";
  cmd.peer_id = "collector";
  cmd.transmit_distance_m = result_.d_final_m;
  const double d = result_.d_final_m;
  control_.send_reliable(
      cmd, [d] { return d; },
      [this](const ctrl::ControlMessage&, double) {
        if (done_) return;
        // The control plane agreed, but the data-plane session setup
        // (attach/bearer establishment) may still fail under chaos.
        if (chaos_ && chaos_->draw_setup_failure()) {
          on_setup_failure();
          return;
        }
        if (chaos_) result_.incomplete_reason = mac::IncompleteReason::kNone;
        begin_transfer_attempt();
      },
      [this](int) {
        if (done_) return;
        result_.negotiation_failed = true;
        finalize(false);
      },
      spec_.negotiation);
}

void MissionTrial::begin_transfer_attempt() {
  transfer_.begin_attempt();
  ++result_.rendezvous_attempts;
  transferring_ = true;
  consecutive_stalls_ = 0;
  last_progress_ = transfer_.receiver().received_count();
  const int gen = ++stall_generation_;
  sim::schedule_periodic(sim_, spec_.stall_timeout_s, [this, gen] {
    if (done_ || !transferring_ || gen != stall_generation_) return false;
    on_stall_tick();
    return !done_ && transferring_ && gen == stall_generation_;
  });
  pump();
}

void MissionTrial::pump() {
  if (done_ || !transferring_) return;
  if (sim_.now() < data_busy_until_) return;  // one datagram in the air at a time
  if (transfer_.complete()) {
    finalize(true);
    return;
  }
  auto p = transfer_.sender().next_packet(sim_.now());
  if (!p) return;  // window full: wait for acks or the stall timer
  // Degradation epochs scale the rate the world actually delivers.
  const double scale = chaos_ ? chaos_->rate_scale(sim_.now()) : 1.0;
  const double s = throughput_bps() * scale;
  if (s <= 0.0) return;  // no usable rate at this distance; stall timer retreats
  const double airtime = static_cast<double>(p->payload_bytes) * 8.0 / s;
  data_busy_until_ = sim_.now() + airtime;
  const net::Packet sent = *p;
  sim_.schedule(airtime, [this, sent] {
    if (done_ || !transferring_) return;
    if (chaos_ && chaos_->blacked_out(sim_.now())) {
      // An injected blackout eats the packet just like a baseline
      // outage, but is accounted separately (the chaos-loss counter).
      ++result_.chaos_losses;
    } else if (injector_.link_up()) {
      if (auto ack = transfer_.receiver().on_packet(sent)) {
        // The tiny selective-ack rides the same link; an outage eats it.
        if (injector_.link_up()) transfer_.sender().on_ack(*ack);
      }
    }
    pump();
  });
}

void MissionTrial::on_stall_tick() {
  const std::uint32_t got = transfer_.receiver().received_count();
  if (got != last_progress_) {
    last_progress_ = got;
    consecutive_stalls_ = 0;
    return;
  }
  ++consecutive_stalls_;
  stalled_in_outage_ = !injector_.link_up() || (chaos_ && chaos_->blacked_out(sim_.now()));
  if (consecutive_stalls_ >= spec_.retreat_after_stalls) {
    retreat_and_backoff();
    return;
  }
  // Declare the in-flight window lost and push retransmissions.
  transfer_.sender().on_timeout();
  pump();
}

void MissionTrial::on_setup_failure() {
  ++result_.chaos_setup_failures;
  result_.incomplete_reason = mac::IncompleteReason::kSessionSetupFailed;
  const int attempt = static_cast<int>(result_.chaos_setup_failures) - 1;
  if (spec_.retreat_backoff.exhausted(attempt)) {
    finalize(false);
    return;
  }
  sim_.schedule(spec_.retreat_backoff.delay_s(attempt, backoff_rng_), [this] {
    if (done_) return;
    negotiate();
  });
}

void MissionTrial::retreat_and_backoff() {
  const int attempt = transfer_.attempts() - 1;
  const bool resilient = spec_.resilience.enabled;
  if (spec_.retreat_backoff.exhausted(attempt)) {
    // Backoff ladder spent. A resilient mission aborts-and-ships-closer
    // instead of giving up: less range, more rate.
    if (can_ship_closer()) {
      ship_closer();
      return;
    }
    result_.incomplete_reason = stalled_in_outage_ ? mac::IncompleteReason::kStarvedByOutage
                                                   : mac::IncompleteReason::kTimeLimit;
    finalize(false);
    return;
  }
  const double delay = spec_.retreat_backoff.delay_s(attempt, backoff_rng_);
  if (resilient) {
    const double s = throughput_bps();
    if (s <= 0.0 && can_ship_closer()) {
      ship_closer();  // dead rate at this distance: retrying is hopeless
      return;
    }
    const double left_bytes = std::max(transfer_.total_bytes() - transfer_.delivered_bytes(), 0.0);
    const double est_s =
        s > 0.0 ? left_bytes * 8.0 / s : std::numeric_limits<double>::infinity();
    if (!retry_budget_.allow(sim_.now(), delay, est_s)) {
      if (can_ship_closer()) {
        ship_closer();
        return;
      }
      result_.incomplete_reason = stalled_in_outage_ ? mac::IncompleteReason::kStarvedByOutage
                                                     : mac::IncompleteReason::kTimeLimit;
      finalize(false);
      return;
    }
    retry_budget_.consume();
  }
  result_.arq_retransmissions = transfer_.sender().retransmissions();
  transfer_.suspend();
  transferring_ = false;
  ++stall_generation_;
  data_busy_until_ = 0.0;
  sim_.schedule(delay, [this] {
    if (done_) return;
    negotiate();  // re-negotiate the rendezvous, then resume the transfer
  });
}

void MissionTrial::ship_closer() {
  result_.arq_retransmissions = transfer_.sender().retransmissions();
  transfer_.suspend();
  transferring_ = false;
  ++stall_generation_;
  data_busy_until_ = 0.0;
  ++result_.ship_closer_moves;
  const double floor = spec_.scenario.min_distance_m;
  const double new_d = std::max(
      floor, result_.d_final_m - spec_.resilience.ship_closer_fraction * (result_.d_final_m - floor));
  // Flying closer takes real time — and, while a loiter crash deadline is
  // pending, burns the same failure distance per second as loitering, so
  // the pending crash event stays correct.
  const double move_s = std::max(result_.d_final_m - new_d, 0.0) / spec_.scenario.speed_mps;
  sim_.schedule(move_s, [this, new_d] {
    if (done_) return;
    result_.d_final_m = new_d;
    if (spec_.use_link_simulator) {
      measure_link_throughput(sim::derive_seed(plan_.seed, "resilience/meas") +
                                  static_cast<std::uint64_t>(result_.ship_closer_moves),
                              new_d);
    }
    negotiate();
  });
}

void MissionTrial::crash() {
  injector_.record_crash(0);
  result_.crashed = true;
  finalize(false);
}

void MissionTrial::finalize(bool delivered) {
  if (done_) return;
  done_ = true;
  if (transferring_) {
    result_.arq_retransmissions = transfer_.sender().retransmissions();
    transfer_.suspend();
    transferring_ = false;
  }
  result_.delivered_all = delivered;
  result_.delivered_bytes = transfer_.attempts() > 0 ? transfer_.delivered_bytes() : 0.0;
  if (delivered) result_.delivered_bytes = result_.total_bytes;
  result_.completion_time_s = sim_.now();
  result_.control_retries = control_.reliable_retries();
  if (mode_ctl_) result_.final_mode = static_cast<int>(mode_ctl_->mode());
  const double frac =
      result_.total_bytes > 0.0 ? result_.delivered_bytes / result_.total_bytes : 0.0;
  result_.delivered_utility = result_.completion_time_s > 0.0 ? frac / result_.completion_time_s : 0.0;
}

}  // namespace

TrialResult run_mission_trial(const TrialSpec& spec, std::uint64_t seed) {
  MissionTrial trial(spec, seed);
  return trial.run();
}

}  // namespace skyferry::fault
