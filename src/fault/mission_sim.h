// One fault-injected delivery mission, end to end, on the discrete-event
// simulator: a scout with a collected batch runs the now-or-later
// decision, ferries to the transmit position (GPS dropouts pause the
// approach, a sampled crash distance may end it), negotiates the
// rendezvous over the lossy control channel with retry/backoff, then
// pushes the batch through selective-repeat ARQ at s(d_opt) while link
// outages eat packets. A stalled transfer retreats, backs off, and
// *resumes* from the ARQ checkpoint — a crash yields the delivered
// prefix, not nothing. This is the executable counterpart of the
// analytic δ(d)·u(d) story.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/redecide.h"
#include "core/scenario.h"
#include "ctrl/control_channel.h"
#include "ctrl/resilience.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/link_chaos.h"
#include "fault/recovery.h"
#include "mac/link.h"
#include "net/arq.h"
#include "net/retry_budget.h"

namespace skyferry::fault {

/// Typed rejection of a malformed TrialSpec/MonteCarloConfig — thrown by
/// validate() before a bad value can become UB (NaN distances, zero
/// trials, empty scenarios) deep inside the simulator.
struct ConfigError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// In-flight resilience stack of one mission (disabled by default — a
/// trial with resilience off is bit-identical to the pre-resilience
/// simulator). When enabled, the scout probes the channel and its
/// battery-derived failure rate at `probe_interval_s` while approaching,
/// feeds a ctrl::OnlineChannelEstimator / HazardRateEstimator, steps the
/// ctrl::DegradedModeController ladder, and lets core::ReDecisionPolicy
/// re-target the transmit position when the divergence detector trips.
/// Transfers run under a deadline-aware net::RetryBudget with an
/// abort-and-ship-closer fallback when the budget is exhausted.
struct ResilienceSpec {
  bool enabled{false};
  /// Observation cadence while approaching [s]. Sized so a quadrocopter
  /// at 4.5 m/s collects the estimator's min_samples window well before
  /// the re-decision commit point.
  double probe_interval_s{1.0};
  /// Lognormal sigma of one throughput probe (relative, unbiased).
  double probe_noise_rel{0.10};
  /// Lognormal sigma of one battery-derived rho observation.
  double rho_noise_rel{0.10};
  ctrl::ChannelEstimatorConfig estimator{};
  ctrl::HazardEstimatorConfig hazard{};
  ctrl::DegradationConfig degradation{};
  core::ReDecisionConfig redecision{};
  /// Transfer retry governor. A non-finite deadline_s is replaced by the
  /// trial's max_time_s at mission start.
  net::RetryBudgetConfig retry_budget{};
  /// Abort-and-ship-closer: each fallback move closes this fraction of
  /// the remaining gap to the anti-collision floor.
  double ship_closer_fraction{0.5};
  int max_ship_closer_moves{3};

  /// Throws ConfigError on NaN/non-positive cadences or fractions
  /// outside their domain.
  void validate() const;
};

struct TrialSpec {
  core::Scenario scenario{core::Scenario::quadrocopter()};
  FaultPlan faults{};
  /// Link-chaos overlay on the data link (single-link trials read
  /// link(0)): sustained blackouts gate packet delivery, degradation
  /// epochs scale the transfer rate, and setup failures reject a
  /// negotiated rendezvous before the first packet. The plan's own seed
  /// is ignored here — the chaos stream forks from the trial seed so a
  /// seed sweep varies chaos with everything else. A default (empty)
  /// plan draws nothing and is bit-identical to the pre-chaos trial.
  LinkFaultPlan link_chaos{};
  /// Mission resilience stack (estimator → re-decision → degradation
  /// ladder); off by default.
  ResilienceSpec resilience{};
  /// ARQ transfer config. datagram_bytes == 0 auto-sizes the datagram so
  /// the batch is ~`target_packets` packets (keeps trials cheap without
  /// changing the delivered-bytes resolution materially).
  net::ArqConfig arq{64, 0, 16};
  std::uint32_t target_packets{256};
  /// Rendezvous-negotiation retry policy (control channel).
  ctrl::ReliableSendOptions negotiation{};
  /// Retreat-and-retry policy when the data link stalls mid-transfer.
  BackoffPolicy retreat_backoff{2.0, 2.0, 30.0, 6, 0.1};
  /// Ack-progress stall window; after `retreat_after_stalls` consecutive
  /// stalled windows the attempt suspends and backs off.
  double stall_timeout_s{2.0};
  int retreat_after_stalls{3};
  double max_time_s{7200.0};
  /// Fixed-wing scouts loiter at cruise speed while negotiating and
  /// transmitting, so post-approach time keeps burning failure distance.
  bool loiter_burns_distance{true};

  /// Measure the transfer rate s at the transmit position with the full
  /// PHY/MAC link simulator (one short saturated run at d_opt, seeded
  /// per trial) instead of the analytic paper fit. Monte-Carlo uses the
  /// fast table-driven kAggregate fidelity by default; flip
  /// `link_fidelity` to kPerMpdu for the exchange-by-exchange reference.
  bool use_link_simulator{false};
  mac::LinkFidelity link_fidelity{mac::LinkFidelity::kAggregate};
  /// Channel preset of the measured link (only read when
  /// use_link_simulator is set).
  phy::ChannelConfig link_channel{phy::ChannelConfig::quadrocopter()};
  /// Simulated seconds of the per-trial saturated rate measurement.
  double link_sim_duration_s{2.0};
  /// Cross-trial PER-table cache (kAggregate only). Fill it with
  /// with_shared_link_tables() before a Monte-Carlo fan-out so the
  /// trials share one lazily built, thread-safe cache instead of each
  /// rebuilding the tables; left empty, every trial builds its own.
  std::shared_ptr<phy::PerTableCache> link_tables{};

  // Fluent construction: spec.with_scenario(...).with_faults(...).
  TrialSpec& with_scenario(core::Scenario s) {
    scenario = std::move(s);
    return *this;
  }
  TrialSpec& with_faults(FaultPlan p) {
    faults = p;
    return *this;
  }
  TrialSpec& with_link_chaos(LinkFaultPlan p) {
    link_chaos = std::move(p);
    return *this;
  }
  TrialSpec& with_resilience(ResilienceSpec r) {
    resilience = r;
    return *this;
  }
  TrialSpec& with_mismatch(MismatchFaults m) {
    faults.mismatch = m;
    return *this;
  }
  TrialSpec& with_arq(net::ArqConfig c) {
    arq = c;
    return *this;
  }
  TrialSpec& with_target_packets(std::uint32_t n) {
    target_packets = n;
    return *this;
  }
  TrialSpec& with_max_time(double seconds) {
    max_time_s = seconds;
    return *this;
  }
  TrialSpec& with_link_simulator(bool on,
                                 mac::LinkFidelity fidelity = mac::LinkFidelity::kAggregate) {
    use_link_simulator = on;
    link_fidelity = fidelity;
    return *this;
  }
  TrialSpec& with_link_channel(phy::ChannelConfig ch) {
    link_channel = ch;
    return *this;
  }
  /// Call after the link channel is final (the cache is bound to it).
  TrialSpec& with_shared_link_tables() {
    mac::LinkConfig lc;
    lc.channel = link_channel;
    link_tables = mac::make_shared_per_tables(lc);
    return *this;
  }

  /// Reject values that would otherwise surface as NaN propagation or
  /// infinite loops deep in the mission simulator. Throws ConfigError.
  void validate() const;
};

struct TrialResult {
  // Decision inputs/outputs.
  double d_opt_m{0.0};
  double approach_distance_m{0.0};  ///< d0 - d_opt
  double analytic_delivery_probability{0.0};  ///< δ(d_opt)

  // Outcome.
  bool survived_approach{false};
  bool crashed{false};
  bool negotiation_failed{false};
  bool delivered_all{false};
  bool timed_out{false};
  double delivered_bytes{0.0};
  double total_bytes{0.0};
  double completion_time_s{0.0};  ///< delivery time, or end time otherwise
  double crash_distance_m{0.0};   ///< sampled distance-to-failure (inf if off)

  // Recovery-path accounting.
  int rendezvous_attempts{0};   ///< transfer attempts (resumes included)
  std::uint64_t control_retries{0};
  std::uint64_t arq_retransmissions{0};
  std::uint64_t link_outages{0};
  std::uint64_t gps_dropouts{0};

  // Link-chaos accounting (all zero when TrialSpec::link_chaos is
  // empty). `incomplete_reason` is the link-level failure taxonomy of an
  // undelivered batch — kStarvedByOutage (the transfer died stalled in
  // an outage/blackout) vs kTimeLimit vs kSessionSetupFailed — and
  // kNone for delivered, crashed, or negotiation-failed missions, whose
  // booleans already tell the story.
  std::uint64_t chaos_losses{0};          ///< packets eaten by injected blackouts
  std::uint64_t chaos_setup_failures{0};  ///< rendezvous setups rejected by chaos
  mac::IncompleteReason incomplete_reason{mac::IncompleteReason::kNone};

  // Resilience accounting. d_final_m == d_opt_m and everything else at
  // its zero default when the resilience stack is off (or never acted).
  double d_final_m{0.0};  ///< distance actually transmitted from
  int redecisions{0};
  int ship_closer_moves{0};
  int final_mode{0};  ///< ctrl::ResilienceMode at mission end, as int
  bool mismatch_detected{false};
  std::uint64_t probes{0};
  std::uint64_t probe_rejects{0};
  /// (delivered_bytes/total_bytes) / completion_time_s — the
  /// fraction-per-second payoff both arms of the mismatch ablation are
  /// scored on; 0 when nothing landed or no time elapsed.
  double delivered_utility{0.0};
};

/// Run one seeded trial. `seed` overrides spec.faults.seed, so a caller
/// can sweep seeds without rebuilding the spec.
[[nodiscard]] TrialResult run_mission_trial(const TrialSpec& spec, std::uint64_t seed);

}  // namespace skyferry::fault
