#include "fault/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "fault/trial_codec.h"

namespace skyferry::fault {

void MonteCarloConfig::validate() const {
  if (trials <= 0) throw ConfigError("MonteCarloConfig: trials must be > 0");
  spec.validate();
}

MonteCarloSummary run_monte_carlo(const MonteCarloConfig& cfg) {
  cfg.validate();

  MonteCarloSummary out;
  out.trials = cfg.trials;
  out.seed = cfg.seed;

  // Fan the trials across the pool under supervision. Each slot is
  // written exactly once at its trial index, so the reduction below is
  // order-deterministic no matter how the chunks were scheduled — and,
  // because quarantine is seed-deterministic too, identical across a
  // kill-and-resume.
  exp::RunnerConfig rc;
  rc.threads = cfg.threads;
  rc.trials = cfg.trials;
  rc.seed = cfg.seed;
  exp::SupervisorOptions so = cfg.supervision;
  if (so.name.empty() || so.name == "campaign") so.name = "run_monte_carlo";
  auto run = exp::SupervisedRunner(rc, so).run_trials(
      [&cfg](const exp::Point&, std::uint64_t trial_seed, const exp::CancelToken& token) {
        if (cfg.chaos) cfg.chaos(trial_seed, token);
        exp::poll_cancel(token);
        return run_mission_trial(cfg.spec, trial_seed);
      });
  std::vector<TrialResult>& results = run.results[0];
  out.run_stats = std::move(run.stats);
  out.report = std::move(run.report);
  out.interrupted = run.interrupted;
  out.quarantined = out.report.quarantined;

  std::vector<double> delivered_mb;
  std::vector<double> completion_s;
  delivered_mb.reserve(results.size());

  long delivered = 0, survived = 0, completed = 0;
  double frac_sum = 0.0, attempts_sum = 0.0, retries_sum = 0.0, retx_sum = 0.0;
  double utility_sum = 0.0, redecide_sum = 0.0, ship_sum = 0.0;
  long mismatch_detected = 0, conservative = 0;
  bool analytic_done = false;

  for (std::size_t i = 0; i < results.size(); ++i) {
    // A quarantined slot holds a default TrialResult, not a mission
    // outcome — excluding it keeps every statistic honest; its absence
    // is priced into delivery_ci_halfwidth below.
    if (out.report.is_quarantined(0, static_cast<int>(i))) continue;
    const TrialResult& r = results[i];
    ++completed;
    delivered += r.delivered_all ? 1 : 0;
    survived += r.survived_approach ? 1 : 0;
    out.crashes += r.crashed ? 1 : 0;
    out.negotiation_failures += r.negotiation_failed ? 1 : 0;
    out.timeouts += r.timed_out ? 1 : 0;
    frac_sum += (r.total_bytes > 0.0) ? r.delivered_bytes / r.total_bytes : 0.0;
    attempts_sum += r.rendezvous_attempts;
    retries_sum += static_cast<double>(r.control_retries);
    retx_sum += static_cast<double>(r.arq_retransmissions);
    utility_sum += r.delivered_utility;
    redecide_sum += r.redecisions;
    ship_sum += r.ship_closer_moves;
    mismatch_detected += r.mismatch_detected ? 1 : 0;
    conservative += (r.final_mode == 2) ? 1 : 0;
    delivered_mb.push_back(r.delivered_bytes / 1e6);
    if (r.delivered_all) completion_s.push_back(r.completion_time_s);

    if (!analytic_done) {
      // The decision is deterministic, so the first usable trial carries
      // the analytic side. The mismatch rho scale is part of the
      // *injected* law the empirical survival is compared against.
      analytic_done = true;
      CrashFaults injected = cfg.spec.faults.crash;
      injected.rho_per_m *= cfg.spec.faults.mismatch.rho_scale;
      out.analytic_approach_survival =
          injected.enabled ? injected.model().survival(r.approach_distance_m) : 1.0;
      out.planner_delivery_probability = r.analytic_delivery_probability;
    }
  }
  if (cfg.keep_trials) out.trial_results = std::move(results);

  out.completed_trials = static_cast<int>(completed);
  const double n = static_cast<double>(completed);
  if (completed > 0) {
    out.empirical_delivery_probability = static_cast<double>(delivered) / n;
    out.empirical_approach_survival = static_cast<double>(survived) / n;
    out.mean_delivered_fraction = frac_sum / n;
    out.mean_rendezvous_attempts = attempts_sum / n;
    out.mean_control_retries = retries_sum / n;
    out.mean_arq_retransmissions = retx_sum / n;
    out.mean_delivered_utility = utility_sum / n;
    out.mean_redecisions = redecide_sum / n;
    out.mean_ship_closer_moves = ship_sum / n;
    out.mismatch_detected_fraction = static_cast<double>(mismatch_detected) / n;
    out.conservative_mode_fraction = static_cast<double>(conservative) / n;
    // Binomial 3σ over what completed, widened by the quarantined
    // fraction: each quarantined trial could have landed either way.
    const double p = out.empirical_delivery_probability;
    out.delivery_ci_halfwidth = 3.0 * std::sqrt(p * (1.0 - p) / n) +
                                static_cast<double>(out.quarantined) /
                                    static_cast<double>(out.trials);
  }
  out.delivered_mb = stats::boxplot(delivered_mb);
  if (!completion_s.empty()) {
    std::sort(completion_s.begin(), completion_s.end());
    out.completion_p50_s = stats::quantile_sorted(completion_s, 0.50);
    out.completion_p90_s = stats::quantile_sorted(completion_s, 0.90);
    out.completion_p99_s = stats::quantile_sorted(completion_s, 0.99);
  }
  return out;
}

}  // namespace skyferry::fault
