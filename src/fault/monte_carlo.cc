#include "fault/monte_carlo.h"

#include <algorithm>
#include <string>

#include "sim/rng.h"

namespace skyferry::fault {

MonteCarloSummary run_monte_carlo(const MonteCarloConfig& cfg) {
  MonteCarloSummary out;
  out.trials = std::max(cfg.trials, 0);
  out.seed = cfg.seed;
  if (out.trials == 0) return out;

  std::vector<double> delivered_mb;
  std::vector<double> completion_s;
  delivered_mb.reserve(static_cast<std::size_t>(out.trials));

  long delivered = 0, survived = 0;
  double frac_sum = 0.0, attempts_sum = 0.0, retries_sum = 0.0, retx_sum = 0.0;

  for (int i = 0; i < out.trials; ++i) {
    const std::uint64_t trial_seed = sim::derive_seed(cfg.seed, "trial/" + std::to_string(i));
    const TrialResult r = run_mission_trial(cfg.spec, trial_seed);

    delivered += r.delivered_all ? 1 : 0;
    survived += r.survived_approach ? 1 : 0;
    out.crashes += r.crashed ? 1 : 0;
    out.negotiation_failures += r.negotiation_failed ? 1 : 0;
    out.timeouts += r.timed_out ? 1 : 0;
    frac_sum += (r.total_bytes > 0.0) ? r.delivered_bytes / r.total_bytes : 0.0;
    attempts_sum += r.rendezvous_attempts;
    retries_sum += static_cast<double>(r.control_retries);
    retx_sum += static_cast<double>(r.arq_retransmissions);
    delivered_mb.push_back(r.delivered_bytes / 1e6);
    if (r.delivered_all) completion_s.push_back(r.completion_time_s);

    if (i == 0) {
      // The decision is deterministic, so trial 0 carries the analytic side.
      out.analytic_approach_survival =
          cfg.spec.faults.crash.enabled
              ? cfg.spec.faults.crash.model().survival(r.approach_distance_m)
              : 1.0;
      out.planner_delivery_probability = r.analytic_delivery_probability;
    }
    if (cfg.keep_trials) out.trial_results.push_back(r);
  }

  const double n = static_cast<double>(out.trials);
  out.empirical_delivery_probability = static_cast<double>(delivered) / n;
  out.empirical_approach_survival = static_cast<double>(survived) / n;
  out.mean_delivered_fraction = frac_sum / n;
  out.mean_rendezvous_attempts = attempts_sum / n;
  out.mean_control_retries = retries_sum / n;
  out.mean_arq_retransmissions = retx_sum / n;
  out.delivered_mb = stats::boxplot(delivered_mb);
  if (!completion_s.empty()) {
    std::sort(completion_s.begin(), completion_s.end());
    out.completion_p50_s = stats::quantile_sorted(completion_s, 0.50);
    out.completion_p90_s = stats::quantile_sorted(completion_s, 0.90);
    out.completion_p99_s = stats::quantile_sorted(completion_s, 0.99);
  }
  return out;
}

}  // namespace skyferry::fault
