// Monte-Carlo delivery-guarantee harness: N seeded fault-injected
// mission trials, reduced to empirical delivery probability, the
// delivered-data distribution, and completion-time quantiles. The
// empirical approach survival is reported next to the analytic δ(d) the
// planner believed — for the paper's exponential law the two must agree
// (the paper's own model becomes a regression test); for the linear and
// Weibull ablation laws the gap quantifies how optimistic/pessimistic
// the exponential assumption is.
//
// Trials fan out across the experiment engine (exp::SupervisedRunner):
// per-trial seeds come from sim::fork(seed, 0, trial), results reduce in
// trial order, so the summary is bit-identical for every thread count —
// including a campaign that was killed mid-run and resumed from its
// checkpoint. A trial that crashes or hangs is retried/quarantined per
// MonteCarloConfig::supervision instead of aborting the campaign; the
// reduction then excludes quarantined slots and widens the reported
// confidence band to cover them.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exp/run_stats.h"
#include "exp/supervisor.h"
#include "fault/mission_sim.h"
#include "stats/quantile.h"

namespace skyferry::fault {

struct MonteCarloConfig {
  TrialSpec spec{};
  int trials{2000};
  std::uint64_t seed{1};
  /// Worker threads for the trial fan-out; <= 0 means one per hardware
  /// thread. The summary does not depend on this — only wall time does.
  int threads{0};
  /// Keep the per-trial results (delivered MB etc.) in the summary.
  bool keep_trials{false};
  /// Supervision policy: retries, soft deadline, checkpoint/resume,
  /// fail-fast, replay prefix. Defaults keep the summary bit-identical
  /// to an unsupervised run as long as no trial fails.
  exp::SupervisorOptions supervision{};
  /// Test/chaos hook, called with (trial_seed, cancel_token) before each
  /// mission trial — lets fault-injection tests make specific seeds throw
  /// or hang cooperatively without touching the mission simulator.
  std::function<void(std::uint64_t, const exp::CancelToken&)> chaos{};

  // Fluent construction: cfg.with_trials(2000).with_seed(1).
  MonteCarloConfig& with_spec(TrialSpec s) {
    spec = std::move(s);
    return *this;
  }
  MonteCarloConfig& with_trials(int n) {
    trials = n;
    return *this;
  }
  MonteCarloConfig& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  MonteCarloConfig& with_threads(int n) {
    threads = n;
    return *this;
  }
  MonteCarloConfig& with_keep_trials(bool keep) {
    keep_trials = keep;
    return *this;
  }
  MonteCarloConfig& with_supervision(exp::SupervisorOptions opts) {
    supervision = std::move(opts);
    return *this;
  }
  MonteCarloConfig& with_chaos(std::function<void(std::uint64_t, const exp::CancelToken&)> fn) {
    chaos = std::move(fn);
    return *this;
  }

  /// Throws ConfigError on non-positive trials or a malformed spec
  /// (NaN distances, empty scenario, ...). run_monte_carlo calls this.
  void validate() const;
};

struct MonteCarloSummary {
  int trials{0};
  std::uint64_t seed{0};

  // The headline guarantees.
  double empirical_delivery_probability{0.0};  ///< P(full batch delivered)
  double empirical_approach_survival{0.0};     ///< P(reached the transmit position)
  double analytic_approach_survival{0.0};      ///< δ(d_opt) under the *injected* law
  double planner_delivery_probability{0.0};    ///< δ(d_opt) the planner assumed
  /// Half-width of the delivery-probability band: the binomial 3σ over
  /// the *completed* trials, widened by the quarantined fraction (a
  /// quarantined trial could have gone either way).
  double delivery_ci_halfwidth{0.0};

  // Delivered-data distribution (partial deliveries are the point).
  double mean_delivered_fraction{0.0};
  stats::BoxplotSummary delivered_mb{};

  // Completion-time quantiles over fully delivered trials [s].
  double completion_p50_s{0.0};
  double completion_p90_s{0.0};
  double completion_p99_s{0.0};

  // Failure/recovery accounting.
  int crashes{0};
  int negotiation_failures{0};
  int timeouts{0};
  double mean_rendezvous_attempts{0.0};
  double mean_control_retries{0.0};
  double mean_arq_retransmissions{0.0};

  // Resilience accounting (all zero with the resilience stack off).
  /// Mean delivered utility (delivered fraction / completion time) — the
  /// metric the model-mismatch ablation compares static vs resilient on.
  double mean_delivered_utility{0.0};
  double mean_redecisions{0.0};
  double mean_ship_closer_moves{0.0};
  double mismatch_detected_fraction{0.0};
  double conservative_mode_fraction{0.0};

  // Supervision outcome. Quarantined trials are excluded from every
  // statistic above; their absence is priced into delivery_ci_halfwidth.
  int completed_trials{0};  ///< trials with a usable result
  int quarantined{0};       ///< trials with no usable result after retries
  bool interrupted{false};  ///< SIGINT/SIGTERM: partial summary, resumable
  exp::CampaignReport report;  ///< failure taxonomy + per-failure replay commands

  std::vector<TrialResult> trial_results;  ///< only when keep_trials

  /// Engine timing sidecar (wall time, trials/s, occupancy, latency
  /// quantiles) with the failure taxonomy folded in. Timing only — never
  /// feeds back into the results above.
  exp::RunStats run_stats;
};

[[nodiscard]] MonteCarloSummary run_monte_carlo(const MonteCarloConfig& cfg);

}  // namespace skyferry::fault
