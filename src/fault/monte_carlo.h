// Monte-Carlo delivery-guarantee harness: N seeded fault-injected
// mission trials, reduced to empirical delivery probability, the
// delivered-data distribution, and completion-time quantiles. The
// empirical approach survival is reported next to the analytic δ(d) the
// planner believed — for the paper's exponential law the two must agree
// (the paper's own model becomes a regression test); for the linear and
// Weibull ablation laws the gap quantifies how optimistic/pessimistic
// the exponential assumption is.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/mission_sim.h"
#include "stats/quantile.h"

namespace skyferry::fault {

struct MonteCarloConfig {
  TrialSpec spec{};
  int trials{2000};
  std::uint64_t seed{1};
  /// Keep the per-trial results (delivered MB etc.) in the summary.
  bool keep_trials{false};
};

struct MonteCarloSummary {
  int trials{0};
  std::uint64_t seed{0};

  // The headline guarantees.
  double empirical_delivery_probability{0.0};  ///< P(full batch delivered)
  double empirical_approach_survival{0.0};     ///< P(reached the transmit position)
  double analytic_approach_survival{0.0};      ///< δ(d_opt) under the *injected* law
  double planner_delivery_probability{0.0};    ///< δ(d_opt) the planner assumed

  // Delivered-data distribution (partial deliveries are the point).
  double mean_delivered_fraction{0.0};
  stats::BoxplotSummary delivered_mb{};

  // Completion-time quantiles over fully delivered trials [s].
  double completion_p50_s{0.0};
  double completion_p90_s{0.0};
  double completion_p99_s{0.0};

  // Failure/recovery accounting.
  int crashes{0};
  int negotiation_failures{0};
  int timeouts{0};
  double mean_rendezvous_attempts{0.0};
  double mean_control_retries{0.0};
  double mean_arq_retransmissions{0.0};

  std::vector<TrialResult> trial_results;  ///< only when keep_trials
};

[[nodiscard]] MonteCarloSummary run_monte_carlo(const MonteCarloConfig& cfg);

}  // namespace skyferry::fault
