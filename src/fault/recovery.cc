#include "fault/recovery.h"

#include <algorithm>
#include <cmath>

namespace skyferry::fault {

double BackoffPolicy::delay_s(int attempt, sim::Rng& rng) const noexcept {
  // Cap the exponent before exponentiation: with multiplier >= 1 the
  // deterministic delay saturates at max_s long before 2^64, and an
  // uncapped pow(multiplier, INT_MAX) overflows to inf (which a NaN
  // multiplier would propagate). 64 doublings overflow any sane
  // initial_s/max_s ratio, so the cap is behavior-preserving.
  const int a = std::clamp(attempt, 0, 64);
  const double cap = std::max(max_s, 0.0);
  double base = std::min(initial_s * std::pow(multiplier, a), cap);
  if (!std::isfinite(base) || base < 0.0) base = cap;
  const double j = std::clamp(jitter_fraction, 0.0, 1.0);
  // Clamp after jittering too: the +j side must not escape the cap.
  return std::clamp(base * rng.uniform(1.0 - j, 1.0 + j), 0.0, cap);
}

ResumableTransfer::ResumableTransfer(net::ArqConfig cfg, double total_bytes) noexcept
    : cfg_(cfg), total_bytes_(std::max(total_bytes, 0.0)) {
  const double dg = std::max<double>(cfg_.datagram_bytes, 1.0);
  total_packets_ = static_cast<std::uint32_t>(std::ceil(total_bytes_ / dg));
}

void ResumableTransfer::begin_attempt() {
  ++attempts_;
  if (has_checkpoint_) {
    sender_.emplace(net::ArqSender::resume(cfg_, sender_ckpt_));
    receiver_.emplace(net::ArqReceiver::resume(cfg_, receiver_ckpt_));
  } else {
    sender_.emplace(cfg_, total_packets_);
    receiver_.emplace(cfg_, total_packets_);
  }
}

void ResumableTransfer::suspend() {
  if (!sender_) return;
  sender_ckpt_ = sender_->checkpoint();
  receiver_ckpt_ = receiver_->checkpoint();
  has_checkpoint_ = true;
  sender_.reset();
  receiver_.reset();
}

bool ResumableTransfer::complete() const noexcept {
  if (total_packets_ == 0) return true;
  if (sender_) return receiver_->complete();
  if (!has_checkpoint_) return false;
  std::uint32_t got = 0;
  for (bool b : receiver_ckpt_.received) got += b ? 1u : 0u;
  return got == total_packets_;
}

double ResumableTransfer::delivered_bytes() const noexcept {
  const double dg = static_cast<double>(cfg_.datagram_bytes);
  double raw = 0.0;
  if (sender_) {
    raw = receiver_->delivered_bytes();
  } else if (has_checkpoint_) {
    std::uint32_t got = 0;
    for (bool b : receiver_ckpt_.received) got += b ? 1u : 0u;
    raw = static_cast<double>(got) * dg;
  }
  // The last datagram may be padding; never report more than the batch.
  return std::min(raw, total_bytes_);
}

}  // namespace skyferry::fault
