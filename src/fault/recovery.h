// Recovery primitives: resumable batch transfers (checkpoint/restore of
// the selective-repeat ARQ state across rendezvous attempts, so an
// interrupted transfer keeps its partial progress) and exponential
// backoff for retrying rendezvous negotiation.
#pragma once

#include <cstdint>
#include <optional>

#include "net/arq.h"
#include "sim/rng.h"

namespace skyferry::fault {

/// Exponential backoff with multiplicative jitter. Attempt numbering is
/// zero-based: delay_s(0) is the wait before the first retry.
struct BackoffPolicy {
  double initial_s{1.0};
  double multiplier{2.0};
  double max_s{60.0};
  int max_attempts{8};
  /// Uniform jitter in [1-j, 1+j] applied to the deterministic delay, so
  /// two UAVs backing off from the same collision do not re-collide.
  double jitter_fraction{0.1};

  /// Jittered delay before retry #attempt. The exponent is capped
  /// before exponentiation can overflow (a huge attempt number saturates
  /// at max_s instead of producing inf), negative attempts clamp to 0,
  /// and the jittered result is clamped so the upward jitter can never
  /// exceed max_s. Always finite and within [0, max_s].
  [[nodiscard]] double delay_s(int attempt, sim::Rng& rng) const noexcept;
  [[nodiscard]] bool exhausted(int attempt) const noexcept { return attempt >= max_attempts; }
};

/// A batch transfer that survives interruption. Between attempts the
/// ARQ endpoints are frozen (`suspend`); the next `begin_attempt` thaws
/// them with every unconfirmed packet re-armed for retransmission. What
/// the receiver already holds stays delivered — a crash mid-transfer
/// yields the checkpointed prefix, not nothing.
class ResumableTransfer {
 public:
  ResumableTransfer(net::ArqConfig cfg, double total_bytes) noexcept;

  /// Start attempt #attempts(): fresh endpoints on the first call,
  /// checkpoint-restored ones afterwards.
  void begin_attempt();

  /// Freeze both endpoints (link lost, retreat, or crash).
  void suspend();

  [[nodiscard]] bool active() const noexcept { return sender_.has_value(); }
  [[nodiscard]] net::ArqSender& sender() { return *sender_; }
  [[nodiscard]] net::ArqReceiver& receiver() { return *receiver_; }

  [[nodiscard]] bool complete() const noexcept;
  /// Bytes safely landed at the receiver (live or checkpointed).
  [[nodiscard]] double delivered_bytes() const noexcept;
  [[nodiscard]] double total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint32_t total_packets() const noexcept { return total_packets_; }
  [[nodiscard]] int attempts() const noexcept { return attempts_; }

 private:
  net::ArqConfig cfg_;
  double total_bytes_;
  std::uint32_t total_packets_;
  int attempts_{0};
  std::optional<net::ArqSender> sender_;
  std::optional<net::ArqReceiver> receiver_;
  net::ArqSenderState sender_ckpt_;
  net::ArqReceiverState receiver_ckpt_;
  bool has_checkpoint_{false};
};

}  // namespace skyferry::fault
