// Checkpoint codec for fault::TrialResult: every field rides the strict
// exp::Codec primitives (doubles bit-exact with NaN/Inf tags — note
// crash_distance_m is +inf whenever crash injection is off; 64-bit
// counters as decimal strings), so a campaign journaled mid-run and
// resumed merges to a bit-identical summary.
#pragma once

#include "exp/codec.h"
#include "fault/mission_sim.h"

namespace skyferry::exp {

template <>
struct Codec<fault::TrialResult> {
  static io::Json encode(const fault::TrialResult& r) {
    io::Json j = io::Json::object();
    j.set("d_opt_m", Codec<double>::encode(r.d_opt_m));
    j.set("approach_distance_m", Codec<double>::encode(r.approach_distance_m));
    j.set("analytic_delivery_probability",
          Codec<double>::encode(r.analytic_delivery_probability));
    j.set("survived_approach", Codec<bool>::encode(r.survived_approach));
    j.set("crashed", Codec<bool>::encode(r.crashed));
    j.set("negotiation_failed", Codec<bool>::encode(r.negotiation_failed));
    j.set("delivered_all", Codec<bool>::encode(r.delivered_all));
    j.set("timed_out", Codec<bool>::encode(r.timed_out));
    j.set("delivered_bytes", Codec<double>::encode(r.delivered_bytes));
    j.set("total_bytes", Codec<double>::encode(r.total_bytes));
    j.set("completion_time_s", Codec<double>::encode(r.completion_time_s));
    j.set("crash_distance_m", Codec<double>::encode(r.crash_distance_m));
    j.set("rendezvous_attempts", Codec<int>::encode(r.rendezvous_attempts));
    j.set("control_retries", Codec<std::uint64_t>::encode(r.control_retries));
    j.set("arq_retransmissions", Codec<std::uint64_t>::encode(r.arq_retransmissions));
    j.set("link_outages", Codec<std::uint64_t>::encode(r.link_outages));
    j.set("gps_dropouts", Codec<std::uint64_t>::encode(r.gps_dropouts));
    j.set("d_final_m", Codec<double>::encode(r.d_final_m));
    j.set("redecisions", Codec<int>::encode(r.redecisions));
    j.set("ship_closer_moves", Codec<int>::encode(r.ship_closer_moves));
    j.set("final_mode", Codec<int>::encode(r.final_mode));
    j.set("mismatch_detected", Codec<bool>::encode(r.mismatch_detected));
    j.set("probes", Codec<std::uint64_t>::encode(r.probes));
    j.set("probe_rejects", Codec<std::uint64_t>::encode(r.probe_rejects));
    j.set("delivered_utility", Codec<double>::encode(r.delivered_utility));
    return j;
  }

  static fault::TrialResult decode(const io::Json& j) {
    if (!j.is_object()) throw CodecError("Codec<TrialResult>: expected an object");
    fault::TrialResult r;
    r.d_opt_m = field<double>(j, "d_opt_m");
    r.approach_distance_m = field<double>(j, "approach_distance_m");
    r.analytic_delivery_probability = field<double>(j, "analytic_delivery_probability");
    r.survived_approach = field<bool>(j, "survived_approach");
    r.crashed = field<bool>(j, "crashed");
    r.negotiation_failed = field<bool>(j, "negotiation_failed");
    r.delivered_all = field<bool>(j, "delivered_all");
    r.timed_out = field<bool>(j, "timed_out");
    r.delivered_bytes = field<double>(j, "delivered_bytes");
    r.total_bytes = field<double>(j, "total_bytes");
    r.completion_time_s = field<double>(j, "completion_time_s");
    r.crash_distance_m = field<double>(j, "crash_distance_m");
    r.rendezvous_attempts = field<int>(j, "rendezvous_attempts");
    r.control_retries = field<std::uint64_t>(j, "control_retries");
    r.arq_retransmissions = field<std::uint64_t>(j, "arq_retransmissions");
    r.link_outages = field<std::uint64_t>(j, "link_outages");
    r.gps_dropouts = field<std::uint64_t>(j, "gps_dropouts");
    r.d_final_m = field<double>(j, "d_final_m");
    r.redecisions = field<int>(j, "redecisions");
    r.ship_closer_moves = field<int>(j, "ship_closer_moves");
    r.final_mode = field<int>(j, "final_mode");
    r.mismatch_detected = field<bool>(j, "mismatch_detected");
    r.probes = field<std::uint64_t>(j, "probes");
    r.probe_rejects = field<std::uint64_t>(j, "probe_rejects");
    r.delivered_utility = field<double>(j, "delivered_utility");
    return r;
  }
};

}  // namespace skyferry::exp
