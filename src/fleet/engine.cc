#include "fleet/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <future>
#include <string>

#include "exp/thread_pool.h"
#include "mac/timing.h"

namespace skyferry::fleet {

namespace {
/// Fixed work-chunk size for every parallel sweep. Chunk boundaries
/// depend only on the mission count — never on the thread count — and
/// every chunk writes disjoint UAV rows, so results are bit-identical
/// for any FleetConfig::threads.
constexpr std::size_t kChunk = 256;
}  // namespace

/// All per-UAV state as parallel contiguous columns. One row = one
/// mission's UAV. Hot sweep loops touch only the columns they need.
struct FleetEngine::Soa {
  // Kinematics.
  std::vector<double> px, py, pz;        ///< position [m]
  std::vector<double> vx, vy, vz;        ///< velocity [m/s]
  std::vector<double> tx, ty, tz;        ///< transmit-point target [m]
  std::vector<double> speed;             ///< cruise speed [m/s]
  // Mission geometry & decision.
  std::vector<double> rx, ry, rz;        ///< receiver position [m]
  std::vector<double> d0;                ///< start distance to receiver [m]
  std::vector<double> d_star;            ///< chosen transmit distance [m]
  std::vector<double> utility;
  std::vector<std::uint8_t> backend;     ///< policy::Backend of the decision
  std::vector<double> rho;               ///< failure rate [1/m]
  std::vector<double> deadline;          ///< delivery deadline [s]
  std::vector<double> spawn_t;
  std::vector<double> fixed_target;      ///< >=0: bypass the decision service
  // Multi-link decisions (legacy path leaves these at -1 / 0 / null).
  std::vector<std::int32_t> burst_link;  ///< elected burst link (LinkSet index)
  std::vector<std::uint64_t> trickle;    ///< background bytes credited at arrival
  std::vector<double> session_setup;     ///< elected link's setup latency [s]
  /// Seeded outage realization of a non-wifi elected link (null when the
  /// link is always-up or the election went to wifi). Row-local state:
  /// only run_generic_exchanges on row i touches it.
  std::vector<std::unique_ptr<link::OutageProcess>> outage;
  // Transfer progress.
  std::vector<std::uint64_t> total_bytes, delivered_bytes, by_deadline_bytes;
  std::vector<std::uint64_t> mpdus_att, mpdus_del;
  std::vector<double> tx_clock;          ///< per-UAV exchange clock [s]
  std::vector<double> arrived_t, completed_t;
  std::vector<double> battery;           ///< remaining endurance [s]
  std::vector<std::uint8_t> phase;       ///< fleet::Phase
  std::vector<std::uint8_t> active;      ///< 0 until the spawn event fires
  // Kinematics scratch (batched mode pass 1 -> pass 2 handoff).
  std::vector<std::uint8_t> arriving;
  // Per-UAV stochastic state (independent streams; order-insensitive).
  std::vector<sim::Rng> rng;
  std::vector<phy::LinkChannel> channel;
  std::vector<mac::ArfRate> arf;
  // Link-chaos state (filled only when the chaos axis is on; row-local
  // like `outage`, so the parallel sweeps stay thread-count identical).
  std::vector<std::unique_ptr<fault::LinkChaosStream>> chaos;  ///< elected link's streams
  std::vector<double> down_since;        ///< continuous blackout start (-1: link usable)
  std::vector<double> degrade_cusum;     ///< CUSUM statistic over degradation evidence
  std::vector<std::uint8_t> setup_done;  ///< chaos attach succeeded at this transmit point
  std::vector<std::uint8_t> want_reelect;
  std::vector<std::int32_t> reelections;
  std::vector<std::uint8_t> stall_reason;  ///< mac::IncompleteReason of the latest stall
  std::vector<net::RetryBudget> rebudget;  ///< deadline-aware re-election budget
};

FleetEngine::FleetEngine(FleetConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      seed_(seed),
      model_(cfg.scenario.paper_throughput()),
      service_(model_),
      soa_(std::make_unique<Soa>()),
      tables_(phy::ErrorModel(cfg.error, cfg.channel.spatial_correlation), cfg.per_table) {
  if (cfg_.threads != 1) pool_ = std::make_unique<exp::ThreadPool>(cfg_.threads);
  cfg_.link_chaos.validate();
  chaos_on_ = cfg_.link_chaos.any();
  if (cfg_.link_chaos.storm.any()) {
    storms_ = std::make_unique<fault::StormSchedule>(cfg_.link_chaos.storm,
                                                     cfg_.link_chaos.seed);
  }
  if (cfg_.links != nullptr && !cfg_.links->empty()) {
    service_.install_links(cfg_.links);
    link_is_wifi_.resize(cfg_.links->size());
    for (std::size_t j = 0; j < cfg_.links->size(); ++j) {
      link_is_wifi_[j] =
          cfg_.links->backend(j).kind() == link::BackendKind::kWifi80211n ? 1 : 0;
    }
    // Identity efficiency row for non-wifi transmitters: they do not
    // share the 802.11n channel, so they never pay DCF contention. A
    // one-station wifi cell computes the same all-ones row, so this
    // prepopulation is value-identical either way.
    std::array<double, phy::kNumMcs> ones{};
    ones.fill(1.0);
    eff_memo_.emplace_back(1, ones);
  }

  // Prefetch every PER table and freeze the airtime memos up front so
  // the sweep loops are pure loads: no mutexes, no mac:: recomputation.
  phy::PerTableCache* src = cfg_.shared_tables ? cfg_.shared_tables.get() : &tables_;
  for (int m = 0; m < phy::kNumMcs; ++m) {
    data_tables_[static_cast<std::size_t>(m)] =
        &src->table(phy::mcs(m), cfg_.mpdu.mpdu_bits(), cfg_.per_mpdu_snr_jitter_db);
  }
  ba_table_ = &src->table(phy::mcs(0), 32 * 8, 0.0);

  payload_per_mpdu_ = cfg_.mpdu.payload_bits() / 8;
  const int max_n = cfg_.ampdu.max_subframes;
  subframes_memo_.resize(static_cast<std::size_t>(phy::kNumMcs) * max_n);
  exchange_memo_.resize(static_cast<std::size_t>(phy::kNumMcs) * max_n * 2);
  frame_airtime_s_.resize(phy::kNumMcs);
  for (int m = 0; m < phy::kNumMcs; ++m) {
    const phy::McsInfo& info = phy::mcs(m);
    for (int backlog = 1; backlog <= max_n; ++backlog) {
      subframes_memo_[static_cast<std::size_t>(m) * max_n + backlog - 1] =
          static_cast<std::int16_t>(mac::subframes_for(cfg_.ampdu, cfg_.mpdu, info,
                                                       cfg_.channel.width, cfg_.channel.gi,
                                                       backlog));
    }
    for (int n = 1; n <= max_n; ++n) {
      for (int retry = 0; retry < 2; ++retry) {
        exchange_memo_[(static_cast<std::size_t>(m) * max_n + n - 1) * 2 + retry] =
            mac::exchange_duration_s(cfg_.timing, cfg_.mpdu, info, cfg_.channel.width,
                                     cfg_.channel.gi, n, retry);
      }
    }
    frame_airtime_s_[static_cast<std::size_t>(m)] = mac::ampdu_duration_s(
        cfg_.mpdu, info, cfg_.channel.width, cfg_.channel.gi, max_n);
  }
  ba_airtime_s_ = mac::block_ack_duration_s(cfg_.channel.width);
}

FleetEngine::~FleetEngine() = default;

void FleetEngine::install_policy_table(policy::PolicyTable table) {
  service_.install_table(std::move(table));
}

int FleetEngine::add_mission(const MissionSpec& spec) {
  const auto i = static_cast<std::uint32_t>(count_++);
  Soa& s = *soa_;
  const core::Scenario& sc = cfg_.scenario;
  const double speed = spec.speed_mps > 0.0 ? spec.speed_mps : sc.speed_mps;
  const double mdata = spec.mdata_bytes > 0.0 ? spec.mdata_bytes : sc.mdata_bytes;
  const double rho = spec.rho_per_m >= 0.0 ? spec.rho_per_m : sc.rho_per_m;

  s.px.push_back(spec.start_pos.x);
  s.py.push_back(spec.start_pos.y);
  s.pz.push_back(spec.start_pos.z);
  s.vx.push_back(0.0);
  s.vy.push_back(0.0);
  s.vz.push_back(0.0);
  // Target provisionally = start; the spawn-time decision moves it.
  s.tx.push_back(spec.start_pos.x);
  s.ty.push_back(spec.start_pos.y);
  s.tz.push_back(spec.start_pos.z);
  s.speed.push_back(speed);
  s.rx.push_back(spec.receiver_pos.x);
  s.ry.push_back(spec.receiver_pos.y);
  s.rz.push_back(spec.receiver_pos.z);
  s.d0.push_back(geo::distance(spec.start_pos, spec.receiver_pos));
  s.d_star.push_back(0.0);
  s.utility.push_back(0.0);
  s.backend.push_back(static_cast<std::uint8_t>(policy::Backend::kExact));
  s.rho.push_back(rho);
  s.deadline.push_back(spec.deadline_s);
  s.spawn_t.push_back(spec.spawn_t_s);
  s.fixed_target.push_back(spec.fixed_target_distance_m);
  s.burst_link.push_back(-1);
  s.trickle.push_back(0);
  s.session_setup.push_back(0.0);
  s.outage.emplace_back(nullptr);
  s.total_bytes.push_back(static_cast<std::uint64_t>(mdata));
  s.delivered_bytes.push_back(0);
  s.by_deadline_bytes.push_back(0);
  s.mpdus_att.push_back(0);
  s.mpdus_del.push_back(0);
  s.tx_clock.push_back(spec.spawn_t_s);
  s.arrived_t.push_back(0.0);
  s.completed_t.push_back(0.0);
  s.battery.push_back(cfg_.battery_autonomy_s);
  s.phase.push_back(static_cast<std::uint8_t>(Phase::kFerry));
  s.active.push_back(0);
  s.arriving.push_back(0);
  s.chaos.emplace_back(nullptr);
  s.down_since.push_back(-1.0);
  s.degrade_cusum.push_back(0.0);
  s.setup_done.push_back(0);
  s.want_reelect.push_back(0);
  s.reelections.push_back(0);
  s.stall_reason.push_back(static_cast<std::uint8_t>(mac::IncompleteReason::kNone));
  s.rebudget.emplace_back();
  s.rng.emplace_back(sim::fork(seed_, i, 0));
  s.channel.emplace_back(cfg_.channel,
                         sim::derive_seed(seed_, "fleet/ch/" + std::to_string(i)));
  s.arf.emplace_back(mac::ArfConfig{}, cfg_.channel.width, cfg_.channel.gi);

  sim_.schedule_at(spec.spawn_t_s, [this, i] { spawn(i); });
  return static_cast<int>(i);
}

void FleetEngine::spawn(std::uint32_t i) {
  soa_->active[i] = 1;
  ferrying_.fetch_add(1, std::memory_order_relaxed);
  pending_decisions_.push_back(i);
}

void FleetEngine::decide_pending() {
  if (pending_decisions_.empty()) return;
  Soa& s = *soa_;

  // Batch every decision-service mission into one decide() span; fixed-
  // target missions bypass the service entirely. With a link set
  // installed the same batch routes through decide_multilink — joint
  // (link, d) election plus the trickle/burst split per mission.
  const bool multilink = cfg_.links != nullptr && !cfg_.links->empty();
  thread_local std::vector<policy::Query> queries;
  thread_local std::vector<policy::Decision> decisions;
  thread_local std::vector<policy::MultiLinkDecision> ml_decisions;
  thread_local std::vector<std::uint32_t> queried;
  queries.clear();
  decisions.clear();
  ml_decisions.clear();
  queried.clear();
  for (const std::uint32_t i : pending_decisions_) {
    if (s.fixed_target[i] >= 0.0) continue;
    policy::Query q;
    q.d0_m = s.d0[i];
    q.speed_mps = s.speed[i];
    q.mdata_bytes = static_cast<double>(s.total_bytes[i]);
    q.min_distance_m = cfg_.scenario.min_distance_m;
    q.rho_per_m = s.rho[i];
    queries.push_back(q);
    queried.push_back(i);
  }
  if (!queries.empty()) {
    if (multilink) {
      ml_decisions.resize(queries.size());
      service_.decide_multilink(queries, ml_decisions);
    } else {
      decisions.resize(queries.size());
      service_.decide(queries, decisions);
    }
  }

  std::size_t qi = 0;
  for (const std::uint32_t i : pending_decisions_) {
    double d_star;
    if (s.fixed_target[i] >= 0.0) {
      d_star = std::min(s.fixed_target[i], s.d0[i]);
    } else if (multilink) {
      const policy::MultiLinkDecision& dec = ml_decisions[qi++];
      d_star = std::clamp(dec.decision.d_opt_m, 0.0, s.d0[i]);
      s.utility[i] = dec.decision.utility;
      s.backend[i] = static_cast<std::uint8_t>(dec.decision.backend);
      s.burst_link[i] = dec.burst_link;
      // The background trickle is credited the moment the UAV lands on
      // its transmit point (the split already assumed the ferry window).
      s.trickle[i] = std::min(
          s.total_bytes[i],
          static_cast<std::uint64_t>(std::max(dec.trickle_bytes, 0.0)));
      // A non-wifi election bursts through the backend's own ARQ loop:
      // pay its session setup at arrival and realize its outage process
      // (seeded per mission, so transfers stay thread-count identical).
      if (dec.burst_link >= 0 && !link_is_wifi_[static_cast<std::size_t>(dec.burst_link)]) {
        const link::LinkBackendConfig& lc =
            cfg_.links->backend(static_cast<std::size_t>(dec.burst_link)).config();
        s.session_setup[i] = lc.session_setup_s;
        if (!lc.outage.always_up()) {
          s.outage[i] = std::make_unique<link::OutageProcess>(
              lc.outage, sim::derive_seed(seed_, "fleet/outage/" + std::to_string(i)));
        }
      }
    } else {
      const policy::Decision& dec = decisions[qi++];
      d_star = std::clamp(dec.d_opt_m, 0.0, s.d0[i]);
      s.utility[i] = dec.utility;
      s.backend[i] = static_cast<std::uint8_t>(dec.backend);
    }
    s.d_star[i] = d_star;
    // Transmit point: on the start->receiver line, d_star short of the
    // receiver. A zero-length leg transmits from the spawn point.
    if (s.d0[i] > 0.0) {
      const double f = d_star / s.d0[i];
      s.tx[i] = s.rx[i] + (s.px[i] - s.rx[i]) * f;
      s.ty[i] = s.ry[i] + (s.py[i] - s.ry[i]) * f;
      s.tz[i] = s.rz[i] + (s.pz[i] - s.rz[i]) * f;
    }
    // The paper's failure model: distance-to-failure ~ Exp(rho), drawn
    // once at spawn. Only a crash inside the ferry leg matters; the
    // (rare) event rides the discrete simulator, not the sweep loops.
    if (s.rho[i] > 0.0 && s.speed[i] > 0.0) {
      const double ferry_m = s.d0[i] - d_star;
      const double fail_m = s.rng[i].exponential(s.rho[i]);
      if (fail_m < ferry_m) {
        sim_.schedule_at(s.spawn_t[i] + fail_m / s.speed[i], [this, i] {
          Soa& soa = *soa_;
          if (soa.active[i] && soa.phase[i] == static_cast<std::uint8_t>(Phase::kFerry)) {
            soa.phase[i] = static_cast<std::uint8_t>(Phase::kFailed);
            soa.vx[i] = soa.vy[i] = soa.vz[i] = 0.0;
            ferrying_.fetch_sub(1, std::memory_order_relaxed);
          }
        });
      }
    }
    // Realize the elected link's chaos streams (its own seed axis, so
    // chaos never perturbs the mission/frame RNG streams) and arm the
    // deadline-aware re-election budget.
    if (chaos_on_) {
      const auto jl = static_cast<std::size_t>(std::max(s.burst_link[i], std::int32_t{0}));
      s.chaos[i] = std::make_unique<fault::LinkChaosStream>(
          cfg_.link_chaos.link(jl),
          sim::derive_seed(cfg_.link_chaos.seed, "fleet/chaos/" + std::to_string(i) + "/" +
                                                    std::to_string(jl) + "/r0"));
      if (cfg_.reelection.enabled) {
        net::RetryBudgetConfig rb = cfg_.reelection.retry_budget;
        rb.deadline_s = std::min(rb.deadline_s, s.deadline[i]);
        s.rebudget[i] = net::RetryBudget(rb);
      }
    }
  }
  pending_decisions_.clear();
}

// Multi-link missions ship the background-trickle bytes during the
// ferry leg; the credit lands atomically (from the fleet's point of
// view) at arrival. Touches only row i, so both kinematics arrival
// sites may call it from inside parallel chunks. A mission whose
// trickle covers the whole batch completes on the spot — the arrival
// site already decremented ferrying_ and raised tx_set_dirty_.
void FleetEngine::credit_trickle(std::uint32_t i) {
  Soa& s = *soa_;
  const std::uint64_t credit =
      std::min(s.trickle[i], s.total_bytes[i] - s.delivered_bytes[i]);
  s.delivered_bytes[i] += credit;
  if (s.arrived_t[i] <= s.deadline[i]) s.by_deadline_bytes[i] = s.delivered_bytes[i];
  if (s.delivered_bytes[i] >= s.total_bytes[i]) {
    s.phase[i] = static_cast<std::uint8_t>(Phase::kDone);
    s.completed_t[i] = s.arrived_t[i];
  }
}

template <class Fn>
void FleetEngine::parallel_for(std::size_t n, const Fn& fn) {
  if (!pool_ || n <= kChunk) {
    fn(0, n);
    return;
  }
  thread_local std::vector<std::future<void>> futs;
  futs.clear();
  for (std::size_t b = 0; b < n; b += kChunk) {
    const std::size_t e = std::min(b + kChunk, n);
    futs.push_back(pool_->submit([&fn, b, e] { fn(b, e); }));
  }
  for (auto& f : futs) f.get();
}

void FleetEngine::step_kinematics(double t0) {
  Soa& s = *soa_;
  const double dt = cfg_.dt_s;
  const auto kFerryU8 = static_cast<std::uint8_t>(Phase::kFerry);

  // Both modes compute the identical per-UAV FP expressions; only the
  // loop structure differs (per-column passes vs one fused loop), so
  // trajectories are bit-identical between them and across threads.
  // Once every live mission has landed on its transmit point there is no
  // motion to integrate and the whole sweep is skipped.
  const bool anyone_ferrying = ferrying_.load(std::memory_order_relaxed) > 0;
  if (!anyone_ferrying) {
    // fall through to the battery pass below
  } else if (cfg_.kinematics == KinematicsMode::kBatched) {
    parallel_for(count_, [&](std::size_t b, std::size_t e) {
      // Pass 1: headings and arrival flags.
      for (std::size_t i = b; i < e; ++i) {
        if (!s.active[i] || s.phase[i] != kFerryU8) { s.arriving[i] = 2; continue; }
        const double dx = s.tx[i] - s.px[i];
        const double dy = s.ty[i] - s.py[i];
        const double dz = s.tz[i] - s.pz[i];
        const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
        if (dist <= s.speed[i] * dt) {
          s.arriving[i] = 1;
          s.arrived_t[i] = t0 + (s.speed[i] > 0.0 ? dist / s.speed[i] : 0.0);
        } else {
          s.arriving[i] = 0;
          const double k = s.speed[i] / dist;
          s.vx[i] = dx * k;
          s.vy[i] = dy * k;
          s.vz[i] = dz * k;
        }
      }
      // Pass 2: integrate movers.
      for (std::size_t i = b; i < e; ++i) {
        if (s.arriving[i] != 0) continue;
        s.px[i] += s.vx[i] * dt;
        s.py[i] += s.vy[i] * dt;
        s.pz[i] += s.vz[i] * dt;
      }
      // Pass 3: land arrivals on the transmit point.
      for (std::size_t i = b; i < e; ++i) {
        if (s.arriving[i] != 1) continue;
        s.px[i] = s.tx[i];
        s.py[i] = s.ty[i];
        s.pz[i] = s.tz[i];
        s.vx[i] = s.vy[i] = s.vz[i] = 0.0;
        s.phase[i] = static_cast<std::uint8_t>(Phase::kTransmit);
        // +0.0 on the wifi/legacy paths — bit-identical; a non-wifi
        // burst pays its session setup before the first ARQ round.
        s.tx_clock[i] = s.arrived_t[i] + s.session_setup[i];
        ferrying_.fetch_sub(1, std::memory_order_relaxed);
        tx_set_dirty_.store(true, std::memory_order_relaxed);
        if (s.trickle[i] > 0) credit_trickle(static_cast<std::uint32_t>(i));
      }
    });
  } else {
    parallel_for(count_, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (!s.active[i] || s.phase[i] != kFerryU8) continue;
        const double dx = s.tx[i] - s.px[i];
        const double dy = s.ty[i] - s.py[i];
        const double dz = s.tz[i] - s.pz[i];
        const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
        if (dist <= s.speed[i] * dt) {
          s.arrived_t[i] = t0 + (s.speed[i] > 0.0 ? dist / s.speed[i] : 0.0);
          s.px[i] = s.tx[i];
          s.py[i] = s.ty[i];
          s.pz[i] = s.tz[i];
          s.vx[i] = s.vy[i] = s.vz[i] = 0.0;
          s.phase[i] = static_cast<std::uint8_t>(Phase::kTransmit);
          s.tx_clock[i] = s.arrived_t[i] + s.session_setup[i];
          ferrying_.fetch_sub(1, std::memory_order_relaxed);
          tx_set_dirty_.store(true, std::memory_order_relaxed);
          if (s.trickle[i] > 0) credit_trickle(static_cast<std::uint32_t>(i));
        } else {
          const double k = s.speed[i] / dist;
          s.vx[i] = dx * k;
          s.vy[i] = dy * k;
          s.vz[i] = dz * k;
          s.px[i] += s.vx[i] * dt;
          s.py[i] += s.vy[i] * dt;
          s.pz[i] += s.vz[i] * dt;
        }
      }
    });
  }

  // Endurance drain (skipped entirely for the default infinite battery).
  if (std::isfinite(cfg_.battery_autonomy_s)) {
    parallel_for(count_, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (!s.active[i]) continue;
        const auto ph = static_cast<Phase>(s.phase[i]);
        if (ph != Phase::kFerry && ph != Phase::kTransmit) continue;
        s.battery[i] -= dt;
        if (s.battery[i] < 0.0) {
          s.phase[i] = static_cast<std::uint8_t>(Phase::kFailed);
          s.vx[i] = s.vy[i] = s.vz[i] = 0.0;
          if (ph == Phase::kFerry) ferrying_.fetch_sub(1, std::memory_order_relaxed);
          tx_set_dirty_.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
}

void FleetEngine::step_transfers(double t0) {
  Soa& s = *soa_;
  const auto kTransmitU8 = static_cast<std::uint8_t>(Phase::kTransmit);

  // The transmit set is stable between phase transitions (transmitters
  // hover at their d* points), so the bucketing + admission below is
  // skipped entirely until something arrives, completes or fails. The
  // maximize-buffer policy re-ranks on live backlogs, so a contended
  // cell forces a re-selection every sweep under it.
  const bool rebuild =
      tx_set_dirty_.load(std::memory_order_relaxed) ||
      (winners_contended_ && cfg_.policy == SchedulerPolicy::kMaximizeBuffer);
  if (!rebuild) {
    // Idle-skip: exchanges are contiguous-airtime, so each winner's
    // clock tells exactly when its next exchange starts. If the earliest
    // one lies beyond this sweep's window (contention-stretched
    // exchanges can span hundreds of sweeps) there is nothing to
    // simulate.
    if (!winners_.empty() && t0 + cfg_.dt_s > next_fire_s_) run_winners(t0);
    return;
  }
  tx_set_dirty_.store(false, std::memory_order_relaxed);

  // 1. Bucket live transmitters into shared-channel ground cells. A
  //    non-wifi burst election does not occupy the 802.11n channel:
  //    it skips cell contention and is admitted outright with the
  //    identity efficiency row (index 0, prepopulated in the ctor).
  cell_keys_.clear();
  winners_.clear();
  winner_eff_row_.clear();
  winners_contended_ = false;
  const double inv_cell = 1.0 / std::max(cfg_.cell_size_m, 1e-6);
  for (std::uint32_t i = 0; i < count_; ++i) {
    if (!s.active[i] || s.phase[i] != kTransmitU8) continue;
    const std::int32_t bl = s.burst_link[i];
    if (bl >= 0 && !link_is_wifi_[static_cast<std::size_t>(bl)]) {
      winners_.push_back(i);
      winner_eff_row_.push_back(0);
      continue;
    }
    const auto cx = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(std::floor(s.px[i] * inv_cell)));
    const auto cy = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(std::floor(s.py[i] * inv_cell)));
    cell_keys_.emplace_back((static_cast<std::uint64_t>(cx) << 32) | cy, i);
  }
  if (cell_keys_.empty() && winners_.empty()) return;
  if (!std::is_sorted(cell_keys_.begin(), cell_keys_.end())) {
    std::sort(cell_keys_.begin(), cell_keys_.end());
  }

  // 2. Per cell: admit up to max_tx_per_cell transmitters (the
  //    scheduler's "now or later?" under contention) and attach the
  //    cell's Bianchi efficiency row.
  std::size_t g0 = 0;
  while (g0 < cell_keys_.size()) {
    std::size_t g1 = g0 + 1;
    while (g1 < cell_keys_.size() && cell_keys_[g1].first == cell_keys_[g0].first) ++g1;
    const auto gsize = static_cast<int>(g1 - g0);
    const int n_tx = std::min(gsize, std::max(cfg_.max_tx_per_cell, 1));

    // Efficiency row for n_tx stations, memoized across sweeps.
    std::uint32_t row = 0;
    for (; row < eff_memo_.size(); ++row) {
      if (eff_memo_[row].first == n_tx) break;
    }
    if (row == eff_memo_.size()) {
      std::array<double, phy::kNumMcs> eff{};
      for (int m = 0; m < phy::kNumMcs; ++m) {
        eff[static_cast<std::size_t>(m)] =
            n_tx > 1 ? mac::analyze_contention(n_tx, cfg_.timing,
                                               frame_airtime_s_[static_cast<std::size_t>(m)],
                                               ba_airtime_s_)
                           .efficiency_vs_single
                     : 1.0;
      }
      eff_memo_.emplace_back(n_tx, eff);
    }

    if (gsize <= cfg_.max_tx_per_cell) {
      for (std::size_t g = g0; g < g1; ++g) winners_.push_back(cell_keys_[g].second);
    } else {
      winners_contended_ = true;
      cell_candidates_.clear();
      for (std::size_t g = g0; g < g1; ++g) {
        const std::uint32_t i = cell_keys_[g].second;
        cell_candidates_.push_back(TxCandidate{i, s.arrived_t[i], s.deadline[i],
                                               s.total_bytes[i] - s.delivered_bytes[i]});
      }
      select_transmitters(cfg_.policy, cell_candidates_, cfg_.max_tx_per_cell, winners_);
    }
    winner_eff_row_.resize(winners_.size(), row);
    g0 = g1;
  }
  run_winners(t0);
}

// Run every admitted transmitter's exchange micro-loop. Disjoint rows,
// per-UAV RNG/channel/ARF state: embarrassingly parallel. Each chunk
// records the earliest next exchange-start it saw into its own
// chunk_min_ slot (fixed kChunk boundaries, so the serial reduction is
// thread-count independent); the reduced watermark drives the idle-skip.
void FleetEngine::run_winners(double t0) {
  const double t1 = t0 + cfg_.dt_s;
  const std::size_t n = winners_.size();
  chunk_min_.assign(std::max<std::size_t>((n + kChunk - 1) / kChunk, 1),
                    std::numeric_limits<double>::infinity());
  parallel_for(n, [&](std::size_t b, std::size_t e) {
    double low = std::numeric_limits<double>::infinity();
    for (std::size_t w = b; w < e; ++w) {
      low = std::min(low, run_exchanges(winners_[w], winner_eff_row_[w], t1));
    }
    chunk_min_[b / kChunk] = low;
  });
  next_fire_s_ = *std::min_element(chunk_min_.begin(), chunk_min_.end());
}

double FleetEngine::run_exchanges(std::uint32_t i, std::uint32_t eff_row, double t1) {
  constexpr double kNever = std::numeric_limits<double>::infinity();
  Soa& s = *soa_;
  // A memoized winner may have left kTransmit since the set was built.
  if (s.phase[i] != static_cast<std::uint8_t>(Phase::kTransmit)) return kNever;
  // A non-wifi burst election transfers over the elected backend, not
  // the 802.11n MAC/PHY (whose PER at, say, a cellular-range d* is ~1).
  const std::int32_t bl = s.burst_link[i];
  if (bl >= 0 && !link_is_wifi_[static_cast<std::size_t>(bl)]) {
    return run_generic_exchanges(i, t1);
  }
  const auto& eff = eff_memo_[eff_row].second;
  const int max_n = cfg_.ampdu.max_subframes;
  const double d = s.d_star[i];

  // A deferred transmitter re-syncs its exchange clock to real time; a
  // mid-exchange one (clock already past the sweep start) keeps it.
  double t = std::max(s.tx_clock[i], t1 - cfg_.dt_s);

  if (chaos_on_ && !s.setup_done[i]) {
    t = chaos_setup(i, t);
    if (!s.setup_done[i]) {
      s.tx_clock[i] = std::max(t, t1);
      return s.tx_clock[i];
    }
  }

  // Same exchange grammar as airnet::AerialNetwork::exchange(), on the
  // kAggregate fast path: jitter-marginalized PER table + one binomial
  // per aggregate instead of 64 erfc/Bernoulli chains (PR 3 established
  // the distributional equivalence). Exchanges occupy contiguous
  // airtime, so the clock alone decides eligibility: run every exchange
  // that starts inside this sweep's window.
  while (t < t1) {
    if (chaos_on_) {
      const double ce = chaos_gate_end(i, t);
      if (ce > t) {
        if (s.want_reelect[i]) {
          // Detection costs the trigger window; the serial end-of-sweep
          // pass decides where (and on which link) to go from here.
          s.tx_clock[i] = t + cfg_.reelection.blackout_trigger_s;
          return s.tx_clock[i];
        }
        t = ce;
        continue;
      }
    }
    const int mcs = cfg_.fixed_mcs >= 0 ? cfg_.fixed_mcs : s.arf[i].select_mcs(t);
    const phy::PerTable& table = *data_tables_[static_cast<std::size_t>(mcs)];
    const std::uint64_t remaining = s.total_bytes[i] - s.delivered_bytes[i];
    const int backlog = static_cast<int>(std::min<std::uint64_t>(
        (remaining + static_cast<std::uint64_t>(payload_per_mpdu_) - 1) /
            static_cast<std::uint64_t>(payload_per_mpdu_),
        static_cast<std::uint64_t>(max_n)));
    const int n = subframes_memo_[static_cast<std::size_t>(mcs) * max_n +
                                  std::max(backlog, 1) - 1];

    const double snr_db = s.channel[i].snr_db(t, d, 0.0);
    const double per = table.per(snr_db);
    auto delivered = static_cast<int>(s.rng[i].binomial(static_cast<std::uint64_t>(n),
                                                        1.0 - per));
    if (s.rng[i].bernoulli(ba_table_->per(snr_db))) delivered = 0;

    s.mpdus_att[i] += static_cast<std::uint64_t>(n);
    s.mpdus_del[i] += static_cast<std::uint64_t>(delivered);
    s.delivered_bytes[i] = std::min<std::uint64_t>(
        s.total_bytes[i],
        s.delivered_bytes[i] +
            static_cast<std::uint64_t>(delivered) *
                static_cast<std::uint64_t>(payload_per_mpdu_));
    if (t <= s.deadline[i]) s.by_deadline_bytes[i] = s.delivered_bytes[i];
    s.arf[i].report(t, mac::TxFeedback{mcs, n, delivered});

    if (s.delivered_bytes[i] >= s.total_bytes[i]) {
      s.phase[i] = static_cast<std::uint8_t>(Phase::kDone);
      s.completed_t[i] = t;
      s.tx_clock[i] = t;
      tx_set_dirty_.store(true, std::memory_order_relaxed);
      return kNever;
    }

    double dur = exchange_memo_[(static_cast<std::size_t>(mcs) * max_n + n - 1) * 2 +
                                (delivered == 0 ? 1 : 0)];
    const double e = eff[static_cast<std::size_t>(mcs)];
    if (e > 1e-6) dur /= e;
    if (delivered == 0 && mcs == 0) dur = std::max(dur, cfg_.stall_retry_s);
    if (chaos_on_ && s.chaos[i] != nullptr) {
      // A degradation epoch stretches the exchange airtime by 1/scale
      // and feeds the CUSUM that arms re-election.
      const double scale = s.chaos[i]->rate_scale(t);
      if (scale < 1.0) dur /= scale;
      update_degrade_cusum(i, scale);
    }
    t += dur;
  }
  s.tx_clock[i] = t;
  return t;
}

// GenericSession's frame-burst ARQ grammar folded into the sweep loop:
// each round sends up to frames_per_burst frames at the backend's
// decision-layer rate, draws one aggregate fade, samples delivered
// frames as one Binomial from the jitter-marginalized PER table
// (kAggregate fast path), pays one RTT, and stalls through sampled
// outage segments. The UAV hovers at d*, so the rate is a constant of
// the mission. All state is row-local (per-UAV RNG + outage stream):
// thread-count bit-identity carries over unchanged.
double FleetEngine::run_generic_exchanges(std::uint32_t i, double t1) {
  constexpr double kNever = std::numeric_limits<double>::infinity();
  Soa& s = *soa_;
  const link::LinkBackend& bk = cfg_.links->backend(static_cast<std::size_t>(s.burst_link[i]));
  const link::LinkBackendConfig& lc = bk.config();
  const double d = std::max(s.d_star[i], lc.min_distance_m);
  const double rate_bps = bk.rate_bps(d);
  double t = std::max(s.tx_clock[i], t1 - cfg_.dt_s);
  if (rate_bps <= 0.0) {
    // Every election scored zero (d* beyond all ranges): the mission
    // honestly cannot deliver; back off so sweeps stay cheap.
    s.stall_reason[i] = static_cast<std::uint8_t>(mac::IncompleteReason::kOutOfRange);
    s.tx_clock[i] = std::max(t, t1) + cfg_.stall_retry_s;
    return s.tx_clock[i];
  }

  if (chaos_on_ && !s.setup_done[i]) {
    t = chaos_setup(i, t);
    if (!s.setup_done[i]) {
      s.tx_clock[i] = std::max(t, t1);
      return s.tx_clock[i];
    }
  }

  const auto frame_bits = static_cast<std::uint64_t>(lc.frame_bits);
  const std::uint64_t frame_bytes = std::max<std::uint64_t>(frame_bits / 8, 1);
  const double snr_mean_db = bk.snr_db_at(d);
  while (t < t1) {
    if (s.outage[i] != nullptr && !s.outage[i]->is_up(t)) {
      s.stall_reason[i] = static_cast<std::uint8_t>(mac::IncompleteReason::kStarvedByOutage);
      t = s.outage[i]->segment_end_s(t);
      continue;
    }
    if (chaos_on_) {
      const double ce = chaos_gate_end(i, t);
      if (ce > t) {
        if (s.want_reelect[i]) {
          s.tx_clock[i] = t + cfg_.reelection.blackout_trigger_s;
          return s.tx_clock[i];
        }
        t = ce;
        continue;
      }
    }
    const std::uint64_t remaining = s.total_bytes[i] - s.delivered_bytes[i];
    const std::uint64_t backlog = (remaining + frame_bytes - 1) / frame_bytes;
    const std::uint64_t n =
        std::min(backlog, static_cast<std::uint64_t>(lc.frames_per_burst));
    const double snr = snr_mean_db + s.rng[i].gaussian(0.0, lc.snr_fade_sigma_db);
    const std::uint64_t got = s.rng[i].binomial(n, 1.0 - bk.frame_per(snr));

    s.mpdus_att[i] += n;
    s.mpdus_del[i] += got;
    s.delivered_bytes[i] =
        std::min(s.total_bytes[i], s.delivered_bytes[i] + got * frame_bytes);
    if (t <= s.deadline[i]) s.by_deadline_bytes[i] = s.delivered_bytes[i];

    if (s.delivered_bytes[i] >= s.total_bytes[i]) {
      s.phase[i] = static_cast<std::uint8_t>(Phase::kDone);
      s.completed_t[i] = t;
      s.tx_clock[i] = t;
      tx_set_dirty_.store(true, std::memory_order_relaxed);
      return kNever;
    }
    double round_rate = rate_bps;
    if (chaos_on_ && s.chaos[i] != nullptr) {
      const double scale = s.chaos[i]->rate_scale(t);
      if (scale < 1.0) round_rate *= scale;
      update_degrade_cusum(i, scale);
    }
    t += static_cast<double>(n * frame_bits) / round_rate + lc.rtt_s;
  }
  s.tx_clock[i] = t;
  return t;
}

// ---- link-chaos sweeps and the re-election ladder ---------------------------

bool FleetEngine::reelect_armed(std::uint32_t i) const {
  const Soa& s = *soa_;
  return cfg_.reelection.enabled && !s.want_reelect[i] &&
         s.reelections[i] < cfg_.reelection.max_reelections;
}

double FleetEngine::chaos_gate_end(std::uint32_t i, double t) {
  Soa& s = *soa_;
  double end = t;
  if (s.chaos[i] != nullptr && s.chaos[i]->blacked_out(t)) {
    const double be = s.chaos[i]->blackout_end_s(t);
    if (s.down_since[i] < 0.0) s.down_since[i] = t;
    s.stall_reason[i] = static_cast<std::uint8_t>(mac::IncompleteReason::kStarvedByOutage);
    if (reelect_armed(i) && be - s.down_since[i] >= cfg_.reelection.blackout_trigger_s) {
      s.want_reelect[i] = 1;
    }
    end = be;
  } else {
    s.down_since[i] = -1.0;
  }
  if (storms_ != nullptr) {
    const double inv_cell = 1.0 / std::max(cfg_.cell_size_m, 1e-6);
    const auto cx = static_cast<std::int64_t>(std::floor(s.px[i] * inv_cell));
    const auto cy = static_cast<std::int64_t>(std::floor(s.py[i] * inv_cell));
    if (storms_->storming(t, cx, cy)) {
      s.stall_reason[i] = static_cast<std::uint8_t>(mac::IncompleteReason::kStarvedByOutage);
      end = std::max(end, storms_->storm_end_s(t, cx, cy));
    }
  }
  return end;
}

double FleetEngine::chaos_setup(std::uint32_t i, double t) {
  constexpr int kMaxSetupAttempts = 8;
  Soa& s = *soa_;
  if (s.chaos[i] == nullptr || s.chaos[i]->config().setup_fail_p <= 0.0) {
    s.setup_done[i] = 1;
    return t;
  }
  // Wifi has no bearer to re-attach; model a re-association backoff.
  const double setup_s =
      s.session_setup[i] > 0.0 ? s.session_setup[i] : cfg_.stall_retry_s;
  int fails = 0;
  while (fails < kMaxSetupAttempts && s.chaos[i]->draw_setup_failure()) {
    ++fails;
    t += setup_s;
  }
  if (fails >= kMaxSetupAttempts) {
    // A full failure run: flag for re-election (when armed) and retry
    // the attach from the next sweep window otherwise.
    s.stall_reason[i] = static_cast<std::uint8_t>(mac::IncompleteReason::kSessionSetupFailed);
    if (reelect_armed(i)) s.want_reelect[i] = 1;
  } else {
    s.setup_done[i] = 1;
  }
  return t;
}

void FleetEngine::update_degrade_cusum(std::uint32_t i, double scale) {
  Soa& s = *soa_;
  const ReElectionConfig& re = cfg_.reelection;
  s.degrade_cusum[i] =
      std::max(0.0, s.degrade_cusum[i] + (1.0 - scale) - re.degrade_cusum_k);
  if (s.degrade_cusum[i] > re.degrade_cusum_h && reelect_armed(i)) s.want_reelect[i] = 1;
}

void FleetEngine::retarget(std::uint32_t i, double t, double d_new) {
  Soa& s = *soa_;
  const double dx = s.px[i] - s.rx[i];
  const double dy = s.py[i] - s.ry[i];
  const double dz = s.pz[i] - s.rz[i];
  const double cur_d = std::sqrt(dx * dx + dy * dy + dz * dz);
  s.d_star[i] = std::min(d_new, cur_d);
  if (cur_d > 0.0 && s.d_star[i] < cur_d - 1e-9) {
    const double f = s.d_star[i] / cur_d;
    s.tx[i] = s.rx[i] + dx * f;
    s.ty[i] = s.ry[i] + dy * f;
    s.tz[i] = s.rz[i] + dz * f;
    s.phase[i] = static_cast<std::uint8_t>(Phase::kFerry);
    s.arriving[i] = 0;
    ferrying_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Already there: restart the exchange clock after the new attach.
    s.tx_clock[i] = t + s.session_setup[i];
  }
  tx_set_dirty_.store(true, std::memory_order_relaxed);
}

void FleetEngine::commit_reelection(std::uint32_t i, double t, int j,
                                    const policy::MultiLinkDecision& dec) {
  Soa& s = *soa_;
  const auto jl = static_cast<std::size_t>(j);
  const link::LinkBackendConfig& lc = cfg_.links->backend(jl).config();
  const bool wifi = link_is_wifi_[jl] != 0;
  s.burst_link[i] = j;
  s.session_setup[i] = wifi ? 0.0 : lc.session_setup_s;
  s.outage[i].reset();
  if (!wifi && !lc.outage.always_up()) {
    s.outage[i] = std::make_unique<link::OutageProcess>(
        lc.outage, sim::derive_seed(seed_, "fleet/outage/" + std::to_string(i) + "/r" +
                                               std::to_string(s.reelections[i])));
  }
  s.chaos[i] = std::make_unique<fault::LinkChaosStream>(
      cfg_.link_chaos.link(jl),
      sim::derive_seed(cfg_.link_chaos.seed,
                       "fleet/chaos/" + std::to_string(i) + "/" + std::to_string(jl) + "/r" +
                           std::to_string(s.reelections[i])));
  s.setup_done[i] = 0;
  s.down_since[i] = -1.0;
  s.degrade_cusum[i] = 0.0;
  s.utility[i] = dec.decision.utility;
  s.backend[i] = static_cast<std::uint8_t>(dec.decision.backend);
  // The new election's background trickle is credited if (and when) the
  // re-ferry leg lands; retarget zeroes nothing the ladder still needs.
  s.trickle[i] = std::min(
      s.total_bytes[i] - s.delivered_bytes[i],
      static_cast<std::uint64_t>(std::max(dec.trickle_bytes, 0.0)));
  retarget(i, t, std::max(dec.decision.d_opt_m, cfg_.scenario.min_distance_m));
}

void FleetEngine::fallback_ship_closer(std::uint32_t i, double t) {
  Soa& s = *soa_;
  const double dx = s.px[i] - s.rx[i];
  const double dy = s.py[i] - s.ry[i];
  const double dz = s.pz[i] - s.rz[i];
  const double cur_d = std::sqrt(dx * dx + dy * dy + dz * dz);
  const double floor_d = cfg_.scenario.min_distance_m;
  const double d_new =
      floor_d + (std::max(cur_d, floor_d) - floor_d) *
                    (1.0 - std::clamp(cfg_.reelection.ship_closer_fraction, 0.0, 1.0));
  // No trickle on the fallback rung: the ferry-closer leg keeps the
  // current (chaotic) link, whose credit the election already spent.
  s.trickle[i] = 0;
  s.setup_done[i] = 0;
  s.down_since[i] = -1.0;
  s.degrade_cusum[i] = 0.0;
  retarget(i, t, d_new);
}

void FleetEngine::process_reelections(double t) {
  Soa& s = *soa_;
  const auto kTransmitU8 = static_cast<std::uint8_t>(Phase::kTransmit);
  const bool multilink = cfg_.links != nullptr && !cfg_.links->empty();
  for (std::uint32_t i = 0; i < count_; ++i) {
    if (!s.want_reelect[i]) continue;
    s.want_reelect[i] = 0;
    if (s.phase[i] != kTransmitU8) continue;
    if (s.reelections[i] >= cfg_.reelection.max_reelections) continue;
    const std::uint64_t residual = s.total_bytes[i] - s.delivered_bytes[i];
    if (residual == 0) continue;
    // Every processed trigger — commit, reject or fallback — spends one
    // rung of the cap, so a link that stays hostile cannot thrash.
    ++s.reelections[i];

    const double dx = s.px[i] - s.rx[i];
    const double dy = s.py[i] - s.ry[i];
    const double dz = s.pz[i] - s.rz[i];
    const double cur_d = std::sqrt(dx * dx + dy * dy + dz * dz);

    policy::Query q;
    q.d0_m = std::max(cur_d, cfg_.scenario.min_distance_m);
    q.speed_mps = s.speed[i];
    q.mdata_bytes = static_cast<double>(residual);
    q.min_distance_m = cfg_.scenario.min_distance_m;
    q.rho_per_m = s.rho[i];

    int best_j = -1;
    policy::MultiLinkDecision stay{};
    policy::MultiLinkDecision best{};
    if (multilink) {
      const std::int32_t cur_j = std::max(s.burst_link[i], std::int32_t{0});
      q.burst_link = cur_j;
      stay = service_.decide_multilink_one(q);
      for (std::int32_t j = 0; j < static_cast<std::int32_t>(cfg_.links->size()); ++j) {
        if (j == cur_j) continue;
        q.burst_link = j;
        const policy::MultiLinkDecision cand = service_.decide_multilink_one(q);
        if (cand.decision.utility > best.decision.utility) {
          best = cand;
          best_j = j;
        }
      }
    }
    const bool budget_ok =
        s.rebudget[i].allow(t, 0.0, best_j >= 0 ? best.decision.cdelay_s : 0.0);
    if (best_j >= 0 && budget_ok && best.decision.utility > 0.0 &&
        best.decision.utility >=
            (1.0 + cfg_.reelection.commit_margin) * stay.decision.utility) {
      s.rebudget[i].consume();
      commit_reelection(i, t, best_j, best);
    } else {
      fallback_ship_closer(i, t);
    }
  }
}

void FleetEngine::step() {
  const double t0 = now_;
  sim_.run_until(t0);  // spawn / fault events due by the sweep start
  decide_pending();
  // Storm windows are sampled serially before any parallel sweep; the
  // workers only read them.
  if (storms_ != nullptr) storms_->ensure_horizon(t0, t0 + cfg_.dt_s);
  step_kinematics(t0);
  step_transfers(t0);
  if (chaos_on_ && cfg_.reelection.enabled) process_reelections(t0 + cfg_.dt_s);
  now_ = t0 + cfg_.dt_s;
}

void FleetEngine::run_until(double t_s) {
  while (now_ + cfg_.dt_s <= t_s + 1e-12) step();
  sim_.run_until(now_);
}

MissionStatus FleetEngine::mission(int idx) const {
  assert(idx >= 0 && static_cast<std::size_t>(idx) < count_);
  const Soa& s = *soa_;
  const auto i = static_cast<std::size_t>(idx);
  MissionStatus st;
  st.phase = static_cast<Phase>(s.phase[i]);
  st.d_star_m = s.d_star[i];
  st.utility = s.utility[i];
  st.backend = static_cast<policy::Backend>(s.backend[i]);
  st.bytes_total = s.total_bytes[i];
  st.bytes_delivered = s.delivered_bytes[i];
  st.bytes_by_deadline = s.by_deadline_bytes[i];
  st.mpdus_attempted = s.mpdus_att[i];
  st.mpdus_delivered = s.mpdus_del[i];
  st.spawn_t_s = s.spawn_t[i];
  st.arrived_t_s = s.arrived_t[i];
  st.completed_t_s = s.completed_t[i];
  st.burst_link = s.burst_link[i];
  st.trickle_bytes = s.trickle[i];
  st.reelections = s.reelections[i];
  st.stall_reason = static_cast<mac::IncompleteReason>(s.stall_reason[i]);
  return st;
}

geo::Vec3 FleetEngine::position(int idx) const {
  assert(idx >= 0 && static_cast<std::size_t>(idx) < count_);
  const Soa& s = *soa_;
  const auto i = static_cast<std::size_t>(idx);
  return {s.px[i], s.py[i], s.pz[i]};
}

FleetTotals FleetEngine::totals() const {
  const Soa& s = *soa_;
  FleetTotals t;
  t.missions = count_;
  double completion_sum = 0.0;
  for (std::size_t i = 0; i < count_; ++i) {
    switch (static_cast<Phase>(s.phase[i])) {
      case Phase::kFerry: ++t.ferrying; break;
      case Phase::kTransmit: ++t.transmitting; break;
      case Phase::kDone:
        ++t.completed;
        completion_sum += s.completed_t[i] - s.spawn_t[i];
        break;
      case Phase::kFailed: ++t.failed; break;
    }
    t.bytes_delivered += s.delivered_bytes[i];
    if (s.total_bytes[i] > 0) {
      t.deadline_weighted_utility += static_cast<double>(s.by_deadline_bytes[i]) /
                                     static_cast<double>(s.total_bytes[i]);
    }
    t.reelections += static_cast<std::uint64_t>(s.reelections[i]);
    switch (static_cast<mac::IncompleteReason>(s.stall_reason[i])) {
      case mac::IncompleteReason::kStarvedByOutage:
      case mac::IncompleteReason::kSessionSetupFailed:
        ++t.stalled_by_link;
        break;
      case mac::IncompleteReason::kOutOfRange:
        ++t.stalled_out_of_range;
        break;
      default:
        break;
    }
  }
  if (t.completed > 0) t.mean_completion_s = completion_sum / static_cast<double>(t.completed);
  return t;
}

}  // namespace skyferry::fleet
