// Fleet-scale batched simulation engine (DESIGN.md §12).
//
// airnet::AerialNetwork answers the system question for a handful of
// vehicles, but it pays an event-driven price per UAV: every exchange is
// a heap-scheduled std::function, every vehicle a heap-allocated
// uav::Uav ticked through the full autopilot stack, every subframe an
// erfc chain. FleetEngine is the same physics reorganized for throughput:
// all per-UAV state lives in structure-of-arrays form (positions,
// velocities, battery, buffered Mdata, transfer progress as parallel
// contiguous arrays) and the fleet advances in fixed-dt batched sweeps —
// vectorizable point-mass kinematics, per-cell DCF contention from
// mac::analyze_contention, and A-MPDU exchanges on the kAggregate fast
// path (jitter-marginalized phy::PerTable + one binomial draw per
// aggregate, distributionally equivalent to airnet's per-MPDU loop).
//
// The "now or later?" question is answered where it scales: newly
// spawned missions are batched into one policy::DecisionService::decide
// span call (O(1) table interpolation per mission when a compiled
// PolicyTable is installed). Rare discrete events — mission arrivals and
// exponential in-flight failures — stay on sim::Simulator and are
// bridged into the sweep loop, so the event queue holds O(missions)
// entries instead of O(exchanges).
//
// Determinism contract: results are bit-identical across
// FleetConfig::threads (fixed 256-UAV chunking, disjoint writes,
// per-UAV counter-based RNG streams) and across the batched/scalar
// kinematics modes (same FP expression order, different loop structure).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/scenario.h"
#include "fault/link_chaos.h"
#include "fleet/scheduler.h"
#include "link/multilink.h"
#include "geo/vec3.h"
#include "mac/ampdu.h"
#include "mac/contention.h"
#include "mac/rate_control.h"
#include "net/retry_budget.h"
#include "phy/channel.h"
#include "phy/per_table.h"
#include "policy/service.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace skyferry::exp {
class ThreadPool;
}

namespace skyferry::fleet {

/// Mission lifecycle. kFerry -> kTransmit -> kDone, with kFailed
/// reachable from kFerry (crash) or anywhere (battery exhaustion).
enum class Phase : std::uint8_t { kFerry, kTransmit, kDone, kFailed };

/// Loop structure of the kinematics sweep. Both modes evaluate the same
/// floating-point expressions per UAV and are bit-identical; kBatched
/// splits the sweep into per-array passes over the SoA columns so the
/// compiler can vectorize, kScalar fuses everything per UAV (the
/// reference for the determinism suite).
enum class KinematicsMode : std::uint8_t { kBatched, kScalar };

/// Mid-mission re-election guard ladder (DESIGN.md §14). Triggers are
/// driven exclusively by injected link-chaos evidence (sustained
/// blackouts past blackout_trigger_s, degradation past a CUSUM bound,
/// repeated session-setup failures), so a zero-chaos fleet never
/// re-elects and stays byte-identical with this enabled or not. Every
/// processed trigger walks the ladder: re-election cap -> deadline-
/// aware retry budget -> commit margin over re-running decide_multilink
/// from the current position with the residual batch -> fallback
/// ferry-closer-and-ship on the current link.
struct ReElectionConfig {
  bool enabled{false};
  /// Processed triggers (commits, rejects and fallbacks alike) a
  /// mission may spend before it rides out the chaos where it stands.
  int max_reelections{2};
  /// A blackout whose remaining span (from first contact) reaches this
  /// is "sustained" and trips the trigger.
  double blackout_trigger_s{15.0};
  /// CUSUM over per-round degradation evidence (1 - rate_scale):
  /// statistic += evidence - k, clamped at 0; trips at h. The k/h
  /// grammar is ctrl::CusumDetector's (ctrl/resilience.h).
  double degrade_cusum_k{0.15};
  double degrade_cusum_h{3.0};
  /// Switch links only when the best alternative beats re-optimizing
  /// the current link by this relative margin.
  double commit_margin{0.05};
  /// Deadline awareness: attempts and headroom gating each switch; the
  /// mission's own deadline tightens deadline_s when finite.
  net::RetryBudgetConfig retry_budget{};
  /// Fallback rung: ferry this fraction of the gap toward the distance
  /// floor and ship from there on the current link.
  double ship_closer_fraction{0.5};
};

struct FleetConfig {
  /// Sweep step; matches airnet::NetworkConfig::kinematics_dt_s so the
  /// equivalence suite compares like with like.
  double dt_s{0.05};
  mac::MacTiming timing{};
  mac::AmpduPolicy ampdu{};
  mac::MpduFormat mpdu{};
  phy::ChannelConfig channel{phy::ChannelConfig::quadrocopter()};
  phy::ErrorModelConfig error{};
  double per_mpdu_snr_jitter_db{2.0};
  /// SNR grid of the aggregate-path PER tables.
  phy::PerTableConfig per_table{};
  /// Optional cross-engine PER-table cache (same contract as
  /// mac::LinkConfig::shared_tables); nullptr = private cache.
  std::shared_ptr<phy::PerTableCache> shared_tables{};
  /// Back off this long when an exchange delivers nothing at MCS 0.
  double stall_retry_s{0.5};

  /// Shared-channel cell edge [m]: transmitters whose positions fall in
  /// the same cell_size_m x cell_size_m ground cell contend for one
  /// channel. Make it huge for a single global collision domain.
  double cell_size_m{200.0};
  /// Concurrent transmitters a cell admits per sweep; the scheduler
  /// defers the rest to a later sweep.
  int max_tx_per_cell{4};
  SchedulerPolicy policy{SchedulerPolicy::kFifo};

  /// Worker threads for the sweep loops (<=0: one per hardware thread,
  /// 1: inline). Bit-identical results for any value.
  int threads{1};
  KinematicsMode kinematics{KinematicsMode::kBatched};
  /// Pin every transmitter to this MCS (0..15); negative = per-UAV ARF.
  int fixed_mcs{-1};
  /// Flight endurance [s]; a UAV whose clock runs past it fails. The
  /// battery column drains at 1 s/s from spawn.
  double battery_autonomy_s{std::numeric_limits<double>::infinity()};

  /// Supplies the throughput model behind DecisionService and the
  /// default mission parameters (speed, Mdata, rho, d0, d_min).
  core::Scenario scenario{core::Scenario::quadrocopter()};

  /// Optional multi-backend link set. When set (and non-empty), spawn
  /// decisions route through DecisionService::decide_multilink — joint
  /// (link, d) selection with background trickle credited on arrival at
  /// the transmit point. Burst transfers honor the election: a wifi
  /// winner runs the 802.11n A-MPDU micro-loop below, any other winner
  /// runs the elected backend's frame-burst ARQ loop (its rate curve,
  /// PER table, RTT and outage process — GenericSession's grammar on
  /// row-local state), so a cellular/LEO election beyond wifi range
  /// actually delivers. nullptr keeps the legacy single-802.11n decide
  /// path bit-identical (the differential suite pins this).
  std::shared_ptr<const link::LinkSet> links{};

  /// Seeded link-chaos axis (fault/link_chaos.h): per-link blackouts,
  /// degradation epochs and setup failures indexed by LinkSet position
  /// (link 0 on the legacy path), plus regional storms over the same
  /// ground cells the contention scheduler uses. A default (empty) plan
  /// is byte-identical to today's chaos-free engine: no extra RNG
  /// draws, no extra branches taken.
  fault::LinkFaultPlan link_chaos{};
  /// Mid-mission re-election ladder; inert without chaos.
  ReElectionConfig reelection{};
};

/// One mission: a UAV holding `mdata_bytes` at `start_pos` that must
/// deliver to the receiver at `receiver_pos`. Fields <= 0 (or empty)
/// default from FleetConfig::scenario.
struct MissionSpec {
  geo::Vec3 start_pos{};
  geo::Vec3 receiver_pos{};
  double speed_mps{0.0};      ///< <=0: scenario speed
  double mdata_bytes{0.0};    ///< <=0: scenario Mdata
  double rho_per_m{-1.0};     ///< <0: scenario rho (0 disables failures)
  double deadline_s{std::numeric_limits<double>::infinity()};
  double spawn_t_s{0.0};
  /// >=0: fly to exactly this distance from the receiver and transmit
  /// there, skipping the DecisionService (equivalence/unit tests).
  double fixed_target_distance_m{-1.0};
};

struct MissionStatus {
  Phase phase{Phase::kFerry};
  double d_star_m{0.0};         ///< chosen transmit distance
  double utility{0.0};          ///< decision utility (0 for fixed targets)
  policy::Backend backend{policy::Backend::kExact};
  std::uint64_t bytes_total{0};
  std::uint64_t bytes_delivered{0};
  /// Bytes whose delivering exchange finished by deadline_s — the
  /// numerator of the deadline-weighted utility.
  std::uint64_t bytes_by_deadline{0};
  std::uint64_t mpdus_attempted{0};
  std::uint64_t mpdus_delivered{0};
  double spawn_t_s{0.0};
  double arrived_t_s{0.0};      ///< reached the transmit point (0 if not yet)
  double completed_t_s{0.0};    ///< last byte landed (0 if not yet)
  /// Multi-link decisions only: elected burst link (LinkSet index; -1
  /// on the legacy path) and the background bytes credited on arrival.
  std::int32_t burst_link{-1};
  std::uint64_t trickle_bytes{0};
  /// Chaos campaigns: processed re-election triggers and the failure
  /// taxonomy of the mission's latest stall (kNone when it never
  /// stalled) — "starved by outage" vs "out of range" vs "setup failed".
  std::int32_t reelections{0};
  mac::IncompleteReason stall_reason{mac::IncompleteReason::kNone};
};

struct FleetTotals {
  std::size_t missions{0};
  std::size_t ferrying{0};
  std::size_t transmitting{0};
  std::size_t completed{0};
  std::size_t failed{0};
  std::uint64_t bytes_delivered{0};
  /// Mean spawn-to-completion time over completed missions [s].
  double mean_completion_s{0.0};
  /// Sum over missions of bytes_by_deadline / bytes_total — the metric
  /// the urgent-first scheduler maximizes under contention.
  double deadline_weighted_utility{0.0};
  /// Chaos campaign counters: total processed re-election triggers and
  /// missions whose latest stall carries each taxonomy tag.
  std::uint64_t reelections{0};
  std::size_t stalled_by_link{0};   ///< kStarvedByOutage
  std::size_t stalled_out_of_range{0};  ///< kOutOfRange
};

class FleetEngine {
 public:
  FleetEngine(FleetConfig cfg, std::uint64_t seed);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Register a mission; it spawns (and takes its distance decision) at
  /// spec.spawn_t_s. Returns the mission index.
  int add_mission(const MissionSpec& spec);

  /// Compiled policy for the batched decide path (setup time only).
  void install_policy_table(policy::PolicyTable table);

  /// Advance the fleet to absolute time t_s in dt_s sweeps.
  void run_until(double t_s);
  /// One dt_s sweep (the benchmark hook).
  void step();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t mission_count() const noexcept { return count_; }
  [[nodiscard]] MissionStatus mission(int i) const;
  [[nodiscard]] geo::Vec3 position(int i) const;
  [[nodiscard]] FleetTotals totals() const;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const policy::DecisionService& service() const noexcept { return service_; }
  [[nodiscard]] const FleetConfig& config() const noexcept { return cfg_; }

 private:
  struct Soa;

  void spawn(std::uint32_t i);
  void decide_pending();
  /// Credit the mission's background-trickle bytes at arrival (called
  /// from both kinematics arrival sites; touches only row i).
  void credit_trickle(std::uint32_t i);
  void step_kinematics(double t0);
  void step_transfers(double t0);
  void run_winners(double t0);
  /// Returns the winner's next exchange-start time (+inf once the
  /// mission left kTransmit) — the input to the idle-skip watermark.
  double run_exchanges(std::uint32_t i, std::uint32_t eff_row, double t1);
  /// Burst transfer over a non-wifi elected backend: frame-burst ARQ
  /// rounds at the backend's rate curve / PER table / RTT, gated by its
  /// per-mission outage process. Same return contract as run_exchanges.
  double run_generic_exchanges(std::uint32_t i, double t1);
  /// Chaos gate for one transfer round: elected-link blackout or a
  /// regional storm over this UAV's cell stalls it. Returns the stall
  /// end (== t when clear). Per-link blackouts arm the re-election
  /// trigger; storms hit every link at once, so they do not. Row-local
  /// except for const reads of the serially-extended storm schedule.
  double chaos_gate_end(std::uint32_t i, double t);
  /// One-time chaos attach at the transmit point: each failed draw
  /// burns a setup interval before the retry; a full failure run flags
  /// the link for re-election. Returns the advanced clock.
  double chaos_setup(std::uint32_t i, double t);
  /// Per-round degradation CUSUM update (evidence = 1 - rate_scale).
  void update_degrade_cusum(std::uint32_t i, double scale);
  [[nodiscard]] bool reelect_armed(std::uint32_t i) const;
  /// Serial end-of-sweep pass consuming want_reelect flags: the guard
  /// ladder (cap, retry budget, commit margin over decide_multilink on
  /// the residual batch, ferry-closer fallback). Serial by design so
  /// decide ordering — and therefore every downstream draw — is
  /// thread-count independent.
  void process_reelections(double t);
  void commit_reelection(std::uint32_t i, double t, int j, const policy::MultiLinkDecision& dec);
  void fallback_ship_closer(std::uint32_t i, double t);
  /// Point the mission at distance d_new along its current line to the
  /// receiver: re-ferry when strictly closer, else restart the exchange
  /// clock in place after the (new) session setup.
  void retarget(std::uint32_t i, double t, double d_new);
  template <class Fn>
  void parallel_for(std::size_t n, const Fn& fn);

  FleetConfig cfg_;
  std::uint64_t seed_;
  core::PaperLogThroughput model_;
  policy::DecisionService service_;
  sim::Simulator sim_;
  double now_{0.0};
  std::size_t count_{0};

  std::unique_ptr<Soa> soa_;
  std::unique_ptr<exp::ThreadPool> pool_;

  /// Aggregate-path PER tables (prefetched so sweeps never touch the
  /// cache mutex) and airtime memos, all immutable after construction.
  phy::PerTableCache tables_;
  std::array<const phy::PerTable*, phy::kNumMcs> data_tables_{};
  const phy::PerTable* ba_table_{nullptr};
  std::vector<std::int16_t> subframes_memo_;   ///< (mcs, backlog-1) -> n
  std::vector<double> exchange_memo_;          ///< (mcs, n-1, retry) -> s
  std::vector<double> frame_airtime_s_;        ///< full-aggregate airtime per mcs
  double ba_airtime_s_{0.0};
  int payload_per_mpdu_{0};

  /// Per-sweep contention efficiency memo: (station count -> per-MCS
  /// efficiency row), filled serially before the parallel transfer pass.
  std::vector<std::pair<int, std::array<double, phy::kNumMcs>>> eff_memo_;

  /// Per-LinkSet-index "is the 802.11n backend" flag (empty on the
  /// legacy path); non-wifi burst elections bypass cell contention and
  /// route through run_generic_exchanges.
  std::vector<std::uint8_t> link_is_wifi_;

  std::vector<std::uint32_t> pending_decisions_;
  // step_transfers scratch (member to avoid per-sweep allocation). The
  // winner set is memoized across sweeps: transmitters hover, so cell
  // membership only changes on a phase transition, which raises
  // tx_set_dirty_ (atomic: arrivals/completions flip it from inside
  // parallel chunks; the flag's value is thread-count independent).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> cell_keys_;
  std::vector<TxCandidate> cell_candidates_;
  std::vector<std::uint32_t> winners_;
  std::vector<std::uint32_t> winner_eff_row_;
  std::atomic<bool> tx_set_dirty_{true};
  bool winners_contended_{false};
  /// Earliest next exchange-start over the memoized winners: a sweep
  /// whose window ends before it has nothing to simulate and skips the
  /// transfer pass outright (contention-stretched exchanges can span
  /// hundreds of sweeps).
  double next_fire_s_{-std::numeric_limits<double>::infinity()};
  std::vector<double> chunk_min_;  ///< per-chunk watermark scratch
  /// Live kFerry count; the kinematics sweep is skipped at zero.
  /// Atomic: arrivals decrement from inside parallel chunks. The value
  /// is a pure count, identical for every thread count.
  std::atomic<std::int64_t> ferrying_{0};

  /// True when cfg_.link_chaos has any active axis. Every chaos branch
  /// in the sweeps hides behind it, which is what keeps the zero-chaos
  /// configuration byte-identical to the pre-chaos engine.
  bool chaos_on_{false};
  /// Regional storm schedule (null without a storm axis). Windows are
  /// extended serially at the top of each step; the parallel sweeps
  /// only perform const queries against them.
  std::unique_ptr<fault::StormSchedule> storms_;
};

}  // namespace skyferry::fleet
