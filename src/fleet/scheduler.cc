#include "fleet/scheduler.h"

#include <algorithm>

namespace skyferry::fleet {

const char* to_string(SchedulerPolicy p) noexcept {
  switch (p) {
    case SchedulerPolicy::kFifo: return "fifo";
    case SchedulerPolicy::kUrgentFirst: return "urgent";
    case SchedulerPolicy::kMaximizeBuffer: return "buffer";
  }
  return "?";
}

bool parse_policy(std::string_view name, SchedulerPolicy& out) noexcept {
  if (name == "fifo") { out = SchedulerPolicy::kFifo; return true; }
  if (name == "urgent") { out = SchedulerPolicy::kUrgentFirst; return true; }
  if (name == "buffer") { out = SchedulerPolicy::kMaximizeBuffer; return true; }
  return false;
}

namespace {

/// Strict-weak order per policy, uav index as the final tie-break so the
/// winner set is unique regardless of the caller's candidate order.
bool before(SchedulerPolicy policy, const TxCandidate& a, const TxCandidate& b) noexcept {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      if (a.arrived_t_s != b.arrived_t_s) return a.arrived_t_s < b.arrived_t_s;
      break;
    case SchedulerPolicy::kUrgentFirst:
      if (a.deadline_s != b.deadline_s) return a.deadline_s < b.deadline_s;
      break;
    case SchedulerPolicy::kMaximizeBuffer:
      if (a.backlog_bytes != b.backlog_bytes) return a.backlog_bytes > b.backlog_bytes;
      break;
  }
  return a.uav < b.uav;
}

}  // namespace

void select_transmitters(SchedulerPolicy policy, std::span<const TxCandidate> candidates,
                         int max_tx, std::vector<std::uint32_t>& out) {
  if (max_tx <= 0 || candidates.empty()) return;
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(max_tx),
                                              candidates.size());
  // Sort candidate *positions*, not the span: the engine hands a view of
  // its per-cell scratch and expects it untouched.
  thread_local std::vector<std::uint32_t> order;
  order.resize(candidates.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::uint32_t x, std::uint32_t y) {
                      return before(policy, candidates[x], candidates[y]);
                    });
  for (std::size_t i = 0; i < k; ++i) out.push_back(candidates[order[i]].uav);
}

}  // namespace skyferry::fleet
