// Cell-level transmit admission for the fleet engine. When more UAVs
// want the channel in one shared-channel cell than the cell can carry
// without collapsing (FleetConfig::max_tx_per_cell), a Scheduler policy
// picks which ones transmit this sweep and which ones defer — the
// fleet-scale version of "now or later?" at the MAC layer, complementing
// the per-mission distance decision made by policy::DecisionService.
//
// Selection is pure and deterministic: same candidates, same winners, on
// every platform and thread count. Ties always break toward the lower
// UAV index so golden-pinned orderings survive refactors.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace skyferry::fleet {

enum class SchedulerPolicy : std::uint8_t {
  /// First come, first served: earliest arrival at its transmit point wins.
  kFifo,
  /// Earliest deadline first: the mission closest to missing its
  /// delivery deadline wins — maximizes deadline-weighted utility under
  /// contention.
  kUrgentFirst,
  /// Largest buffered Mdata first: drain the biggest backlog while the
  /// channel is good.
  kMaximizeBuffer,
};

[[nodiscard]] const char* to_string(SchedulerPolicy p) noexcept;
/// Parse "fifo" / "urgent" / "buffer" (exact match); returns false and
/// leaves `out` untouched on anything else.
[[nodiscard]] bool parse_policy(std::string_view name, SchedulerPolicy& out) noexcept;

/// One UAV asking for the channel in its cell this sweep.
struct TxCandidate {
  std::uint32_t uav{0};
  double arrived_t_s{0.0};    ///< when it reached its transmit point
  double deadline_s{0.0};     ///< mission delivery deadline (+inf if none)
  std::uint64_t backlog_bytes{0};
};

/// Append the winning UAV indices (at most `max_tx`, in selection order)
/// to `out`. `candidates` is not reordered. max_tx <= 0 admits nobody.
void select_transmitters(SchedulerPolicy policy, std::span<const TxCandidate> candidates,
                         int max_tx, std::vector<std::uint32_t>& out);

}  // namespace skyferry::fleet
