#include "geo/dubins.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/geodesy.h"

namespace skyferry::geo {
namespace {

constexpr double kTwoPi = 2.0 * kPi;

double mod2pi(double a) noexcept {
  double r = std::fmod(a, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  return r;
}

struct Candidate {
  bool valid{false};
  std::array<double, 3> t{};  // normalized segment lengths
};

// Standard Dubins word solutions in normalized coordinates: start at
// origin heading alpha, goal at (d, 0) heading beta, unit radius.
Candidate lsl(double alpha, double beta, double d) noexcept {
  const double ca = std::cos(alpha), sa = std::sin(alpha);
  const double cb = std::cos(beta), sb = std::sin(beta);
  const double tmp = d + sa - sb;
  const double p2 = 2.0 + d * d - 2.0 * std::cos(alpha - beta) + 2.0 * d * (sa - sb);
  if (p2 < 0.0) return {};
  const double theta = std::atan2(cb - ca, tmp);
  return {true, {mod2pi(theta - alpha), std::sqrt(p2), mod2pi(beta - theta)}};
}

Candidate rsr(double alpha, double beta, double d) noexcept {
  const double ca = std::cos(alpha), sa = std::sin(alpha);
  const double cb = std::cos(beta), sb = std::sin(beta);
  const double tmp = d - sa + sb;
  const double p2 = 2.0 + d * d - 2.0 * std::cos(alpha - beta) + 2.0 * d * (sb - sa);
  if (p2 < 0.0) return {};
  const double theta = std::atan2(ca - cb, tmp);
  return {true, {mod2pi(alpha - theta), std::sqrt(p2), mod2pi(theta - beta)}};
}

Candidate lsr(double alpha, double beta, double d) noexcept {
  const double ca = std::cos(alpha), sa = std::sin(alpha);
  const double cb = std::cos(beta), sb = std::sin(beta);
  const double p2 = -2.0 + d * d + 2.0 * std::cos(alpha - beta) + 2.0 * d * (sa + sb);
  if (p2 < 0.0) return {};
  const double p = std::sqrt(p2);
  const double theta = std::atan2(-ca - cb, d + sa + sb) - std::atan2(-2.0, p);
  return {true, {mod2pi(theta - alpha), p, mod2pi(theta - beta)}};
}

Candidate rsl(double alpha, double beta, double d) noexcept {
  const double ca = std::cos(alpha), sa = std::sin(alpha);
  const double cb = std::cos(beta), sb = std::sin(beta);
  const double p2 = -2.0 + d * d + 2.0 * std::cos(alpha - beta) - 2.0 * d * (sa + sb);
  if (p2 < 0.0) return {};
  const double p = std::sqrt(p2);
  const double theta = std::atan2(ca + cb, d - sa - sb) - std::atan2(2.0, p);
  return {true, {mod2pi(alpha - theta), p, mod2pi(beta - theta)}};
}

Candidate rlr(double alpha, double beta, double d) noexcept {
  const double sa = std::sin(alpha), sb = std::sin(beta);
  const double tmp = (6.0 - d * d + 2.0 * std::cos(alpha - beta) + 2.0 * d * (sa - sb)) / 8.0;
  if (std::abs(tmp) > 1.0) return {};
  const double p = mod2pi(kTwoPi - std::acos(tmp));
  const double theta = std::atan2(std::cos(alpha) - std::cos(beta), d - sa + sb);
  const double t0 = mod2pi(alpha - theta + p / 2.0);
  return {true, {t0, p, mod2pi(alpha - beta - t0 + p)}};
}

Candidate lrl(double alpha, double beta, double d) noexcept {
  const double sa = std::sin(alpha), sb = std::sin(beta);
  const double tmp = (6.0 - d * d + 2.0 * std::cos(alpha - beta) - 2.0 * d * (sa - sb)) / 8.0;
  if (std::abs(tmp) > 1.0) return {};
  const double p = mod2pi(kTwoPi - std::acos(tmp));
  const double theta = std::atan2(std::cos(beta) - std::cos(alpha), d + sa - sb);
  const double t0 = mod2pi(-alpha + theta + p / 2.0);
  return {true, {t0, p, mod2pi(beta - alpha - t0 + p)}};
}

}  // namespace

std::string to_string(DubinsWord w) {
  switch (w) {
    case DubinsWord::kLSL: return "LSL";
    case DubinsWord::kLSR: return "LSR";
    case DubinsWord::kRSL: return "RSL";
    case DubinsWord::kRSR: return "RSR";
    case DubinsWord::kRLR: return "RLR";
    case DubinsWord::kLRL: return "LRL";
  }
  return "?";
}

DubinsPath dubins_shortest(const Pose2& from, const Pose2& to, double radius_m) {
  const double r = std::max(radius_m, 1e-6);
  // Normalize: rotate/scale so the start is at the origin heading alpha
  // and the goal at (d, 0) heading beta.
  const double dx = to.x - from.x;
  const double dy = to.y - from.y;
  const double big_d = std::hypot(dx, dy);
  const double d = big_d / r;
  const double phi = std::atan2(dy, dx);
  const double alpha = mod2pi(from.theta - phi);
  const double beta = mod2pi(to.theta - phi);

  struct WordFn {
    DubinsWord word;
    Candidate (*fn)(double, double, double);
  };
  static constexpr WordFn kWords[] = {
      {DubinsWord::kLSL, lsl}, {DubinsWord::kRSR, rsr}, {DubinsWord::kLSR, lsr},
      {DubinsWord::kRSL, rsl}, {DubinsWord::kRLR, rlr}, {DubinsWord::kLRL, lrl},
  };

  DubinsPath best;
  double best_len = std::numeric_limits<double>::infinity();
  for (const auto& w : kWords) {
    const Candidate c = w.fn(alpha, beta, d);
    if (!c.valid) continue;
    const double len = c.t[0] + c.t[1] + c.t[2];
    if (len < best_len) {
      best_len = len;
      best.word = w.word;
      best.lengths = c.t;
      best.radius = r;
    }
  }
  return best;
}

Pose2 dubins_sample(const Pose2& from, const DubinsPath& path, double s_m) {
  // Segment turning directions per word: +1 = left, 0 = straight, -1 = right.
  int dirs[3] = {0, 0, 0};
  switch (path.word) {
    case DubinsWord::kLSL: dirs[0] = 1; dirs[1] = 0; dirs[2] = 1; break;
    case DubinsWord::kLSR: dirs[0] = 1; dirs[1] = 0; dirs[2] = -1; break;
    case DubinsWord::kRSL: dirs[0] = -1; dirs[1] = 0; dirs[2] = 1; break;
    case DubinsWord::kRSR: dirs[0] = -1; dirs[1] = 0; dirs[2] = -1; break;
    case DubinsWord::kRLR: dirs[0] = -1; dirs[1] = 1; dirs[2] = -1; break;
    case DubinsWord::kLRL: dirs[0] = 1; dirs[1] = -1; dirs[2] = 1; break;
  }

  double s = std::clamp(s_m, 0.0, path.length_m()) / path.radius;  // normalized
  Pose2 p = from;
  for (int seg = 0; seg < 3; ++seg) {
    const double take = std::min(s, path.lengths[static_cast<std::size_t>(seg)]);
    if (take <= 0.0) continue;
    if (dirs[seg] == 0) {
      p.x += path.radius * take * std::cos(p.theta);
      p.y += path.radius * take * std::sin(p.theta);
    } else {
      const double dir = static_cast<double>(dirs[seg]);
      // Turn center sits at radius r along the left/right perpendicular.
      const double cx = p.x - dir * path.radius * std::sin(p.theta);
      const double cy = p.y + dir * path.radius * std::cos(p.theta);
      // Rotate about the turn center by dir*take.
      const double ang0 = std::atan2(p.y - cy, p.x - cx);
      const double ang1 = ang0 + dir * take;
      p.x = cx + path.radius * std::cos(ang1);
      p.y = cy + path.radius * std::sin(ang1);
      p.theta += dir * take;
    }
    s -= take;
  }
  p.theta = mod2pi(p.theta);
  return p;
}

double dubins_tship_s(const Pose2& from, const Pose2& to, double radius_m, double speed_mps) {
  const DubinsPath path = dubins_shortest(from, to, radius_m);
  return path.length_m() / std::max(speed_mps, 1e-6);
}

}  // namespace skyferry::geo
