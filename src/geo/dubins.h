// Dubins paths: shortest curvature-bounded paths for fixed-wing flight.
//
// The base model charges Tship = (d0-d)/v as if the ferry could fly a
// straight line, but a fixed-wing airplane leaving its loiter circle and
// arriving on a rendezvous heading is constrained by its minimum turn
// radius (20 m for the Swinglet). Dubins paths give the exact shortest
// path between oriented poses — the honest shipping time the planner
// should charge for airplanes.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "geo/vec3.h"

namespace skyferry::geo {

/// A planar pose: position (x east, y north) and heading [rad, standard
/// math convention: 0 = +x, counterclockwise positive].
struct Pose2 {
  double x{0.0};
  double y{0.0};
  double theta{0.0};
};

enum class DubinsWord { kLSL, kLSR, kRSL, kRSR, kRLR, kLRL };

[[nodiscard]] std::string to_string(DubinsWord w);

/// One solved Dubins path: the word and the three segment lengths in
/// *radius-normalized* units (arcs in radians, straights in radii).
struct DubinsPath {
  DubinsWord word{DubinsWord::kLSL};
  std::array<double, 3> lengths{};  // normalized
  double radius{1.0};

  /// Total metric length [m].
  [[nodiscard]] double length_m() const noexcept {
    return (lengths[0] + lengths[1] + lengths[2]) * radius;
  }
};

/// Shortest Dubins path from `from` to `to` with minimum turn radius
/// `radius_m` (> 0). Always exists.
[[nodiscard]] DubinsPath dubins_shortest(const Pose2& from, const Pose2& to, double radius_m);

/// Position along a Dubins path at arc-length s (clamped to [0, length]).
[[nodiscard]] Pose2 dubins_sample(const Pose2& from, const DubinsPath& path, double s_m);

/// Fixed-wing shipping time from an oriented start to an oriented goal:
/// Dubins length / speed. Strictly >= straight-line distance / speed.
[[nodiscard]] double dubins_tship_s(const Pose2& from, const Pose2& to, double radius_m,
                                    double speed_mps);

}  // namespace skyferry::geo
