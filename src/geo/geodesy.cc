#include "geo/geodesy.h"

#include <algorithm>
#include <cmath>

namespace skyferry::geo {

double haversine_m(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);

  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  // Clamp against rounding before asin; h in [0,1] mathematically.
  const double hc = std::clamp(h, 0.0, 1.0);
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(hc));
}

double slant_distance_m(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double ground = haversine_m(a, b);
  const double dalt = b.alt_m - a.alt_m;
  return std::hypot(ground, dalt);
}

double bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) - std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double brg = rad2deg(std::atan2(y, x));
  if (brg < 0.0) brg += 360.0;
  return brg;
}

LocalFrame::LocalFrame(const GeoPoint& origin) noexcept
    : origin_(origin), cos_lat_(std::cos(deg2rad(origin.lat_deg))) {}

Vec3 LocalFrame::to_enu(const GeoPoint& p) const noexcept {
  const double east = deg2rad(p.lon_deg - origin_.lon_deg) * kEarthRadiusM * cos_lat_;
  const double north = deg2rad(p.lat_deg - origin_.lat_deg) * kEarthRadiusM;
  return {east, north, p.alt_m - origin_.alt_m};
}

GeoPoint LocalFrame::to_geo(const Vec3& enu) const noexcept {
  GeoPoint p;
  p.lon_deg = origin_.lon_deg + rad2deg(enu.x / (kEarthRadiusM * cos_lat_));
  p.lat_deg = origin_.lat_deg + rad2deg(enu.y / kEarthRadiusM);
  p.alt_m = origin_.alt_m + enu.z;
  return p;
}

}  // namespace skyferry::geo
