// Geodesic helpers: Haversine great-circle distance (the paper computes
// UAV-to-UAV distance by "applying the Haversine formula to GPS
// coordinates", Sec. 3.1) and conversions between WGS-84 lat/lon and a
// local East-North-Up (ENU) tangent frame.
#pragma once

#include "geo/vec3.h"

namespace skyferry::geo {

/// Mean Earth radius [m], the value conventionally used with Haversine.
inline constexpr double kEarthRadiusM = 6371000.0;

inline constexpr double kPi = 3.14159265358979323846;

[[nodiscard]] constexpr double deg2rad(double deg) noexcept { return deg * kPi / 180.0; }
[[nodiscard]] constexpr double rad2deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// A WGS-84 geodetic coordinate. Altitude is meters above the reference
/// surface (we do not model the geoid; all experiments are local-scale).
struct GeoPoint {
  double lat_deg{0.0};
  double lon_deg{0.0};
  double alt_m{0.0};
};

/// Great-circle ground distance [m] between two geodetic points
/// (Haversine formula; altitude is ignored).
[[nodiscard]] double haversine_m(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Slant distance [m]: Haversine ground distance combined with the
/// altitude difference. This matches how the paper derives link distance
/// from GPS fixes of two UAVs at different altitudes.
[[nodiscard]] double slant_distance_m(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Initial great-circle bearing [deg, 0..360) from `a` to `b`.
[[nodiscard]] double bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Local tangent-plane converter anchored at `origin`. Valid for the
/// hundreds-of-meters scales of the paper's field tests (equirectangular
/// approximation; error < 1e-4 relative at 1 km).
class LocalFrame {
 public:
  explicit LocalFrame(const GeoPoint& origin) noexcept;

  [[nodiscard]] const GeoPoint& origin() const noexcept { return origin_; }

  /// Geodetic -> local ENU [m].
  [[nodiscard]] Vec3 to_enu(const GeoPoint& p) const noexcept;

  /// Local ENU [m] -> geodetic.
  [[nodiscard]] GeoPoint to_geo(const Vec3& enu) const noexcept;

 private:
  GeoPoint origin_;
  double cos_lat_;  // cached cosine of the origin latitude
};

}  // namespace skyferry::geo
