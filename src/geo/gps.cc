#include "geo/gps.h"

#include <cmath>

namespace skyferry::geo {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) noexcept {
  // 53-bit mantissa uniform in (0,1]; never exactly 0 so log() is safe.
  return (static_cast<double>(splitmix64(state) >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

GpsReceiver::GpsReceiver(GpsNoiseConfig cfg, std::uint64_t seed) noexcept
    : cfg_(cfg), state_(seed ^ 0xa5a5a5a5deadbeefULL) {}

double GpsReceiver::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box-Muller transform.
  const double u1 = uniform01(state_);
  const double u2 = uniform01(state_);
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

Vec3 GpsReceiver::measure(const Vec3& true_pos, double dt_s) noexcept {
  // First-order Gauss-Markov: e' = a*e + sigma*sqrt(1-a^2)*w, with
  // a = exp(-dt/tau); the stationary distribution keeps 1-sigma = sigma.
  const double a = std::exp(-dt_s / cfg_.correlation_time_s);
  const double drive = std::sqrt(1.0 - a * a);
  err_.x = a * err_.x + cfg_.horizontal_sigma_m * drive * gaussian();
  err_.y = a * err_.y + cfg_.horizontal_sigma_m * drive * gaussian();
  err_.z = a * err_.z + cfg_.vertical_sigma_m * drive * gaussian();
  return true_pos + err_;
}

double gps_distance_estimate_m(const LocalFrame& frame, const Vec3& fix_a,
                               const Vec3& fix_b) noexcept {
  const GeoPoint ga = frame.to_geo(fix_a);
  const GeoPoint gb = frame.to_geo(fix_b);
  return slant_distance_m(ga, gb);
}

}  // namespace skyferry::geo
