// GPS receiver noise model. The paper's distance input comes from consumer
// GPS units on the autopilot boards; their fixes carry meter-scale errors
// that propagate into the distance estimates used for transmission-timing
// decisions. We model horizontal and vertical error as first-order
// Gauss-Markov processes (slowly wandering bias), which is the standard
// low-cost-receiver approximation.
#pragma once

#include <cstdint>

#include "geo/geodesy.h"
#include "geo/vec3.h"

namespace skyferry::geo {

/// Parameters of the Gauss-Markov GPS error model.
struct GpsNoiseConfig {
  double horizontal_sigma_m{2.0};   ///< steady-state 1-sigma horizontal error
  double vertical_sigma_m{4.0};     ///< steady-state 1-sigma vertical error
  double correlation_time_s{30.0};  ///< error decorrelation time constant
  double update_rate_hz{5.0};       ///< receiver fix rate (consumer units: 1-10 Hz)
};

/// Simulates a GPS receiver: feed true ENU positions, read noisy fixes.
/// Deterministic given the seed; each receiver instance owns its own
/// error state so two UAVs have independent error processes.
class GpsReceiver {
 public:
  GpsReceiver(GpsNoiseConfig cfg, std::uint64_t seed) noexcept;

  /// Advance the error process by `dt_s` and return the noisy measurement
  /// of `true_pos`.
  [[nodiscard]] Vec3 measure(const Vec3& true_pos, double dt_s) noexcept;

  /// Current error vector (for tests / diagnostics).
  [[nodiscard]] const Vec3& error() const noexcept { return err_; }

  [[nodiscard]] const GpsNoiseConfig& config() const noexcept { return cfg_; }

 private:
  /// One draw from N(0,1) using a small, self-contained xorshift-based
  /// generator (keeps geo free of a dependency on sim/rng).
  double gaussian() noexcept;

  GpsNoiseConfig cfg_;
  std::uint64_t state_;
  Vec3 err_{};
  bool has_spare_{false};
  double spare_{0.0};
};

/// Distance between two noisy GPS fixes expressed back in geodetic form
/// and measured with Haversine — exactly the estimation chain of the paper.
[[nodiscard]] double gps_distance_estimate_m(const LocalFrame& frame, const Vec3& fix_a,
                                             const Vec3& fix_b) noexcept;

}  // namespace skyferry::geo
