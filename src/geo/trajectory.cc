#include "geo/trajectory.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace skyferry::geo {

void Trajectory::push(const TrajectorySample& s) {
  assert(samples_.empty() || s.t_s >= samples_.back().t_s);
  samples_.push_back(s);
}

double Trajectory::start_time() const noexcept { return samples_.empty() ? 0.0 : samples_.front().t_s; }
double Trajectory::end_time() const noexcept { return samples_.empty() ? 0.0 : samples_.back().t_s; }
double Trajectory::duration() const noexcept { return end_time() - start_time(); }

std::size_t Trajectory::lower_index(double t_s) const noexcept {
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), t_s,
                                   [](double t, const TrajectorySample& s) { return t < s.t_s; });
  if (it == samples_.begin()) return 0;
  return static_cast<std::size_t>(it - samples_.begin()) - 1;
}

Vec3 Trajectory::position_at(double t_s) const noexcept {
  assert(!samples_.empty());
  if (t_s <= samples_.front().t_s) return samples_.front().pos;
  if (t_s >= samples_.back().t_s) return samples_.back().pos;
  const std::size_t i = lower_index(t_s);
  const TrajectorySample& a = samples_[i];
  const TrajectorySample& b = samples_[i + 1];
  const double span = b.t_s - a.t_s;
  if (span <= 0.0) return a.pos;
  const double w = (t_s - a.t_s) / span;
  return a.pos + (b.pos - a.pos) * w;
}

Vec3 Trajectory::velocity_at(double t_s) const noexcept {
  assert(!samples_.empty());
  if (t_s <= samples_.front().t_s) return samples_.front().vel;
  if (t_s >= samples_.back().t_s) return samples_.back().vel;
  const std::size_t i = lower_index(t_s);
  const TrajectorySample& a = samples_[i];
  const TrajectorySample& b = samples_[i + 1];
  const double span = b.t_s - a.t_s;
  if (span <= 0.0) return a.vel;
  const double w = (t_s - a.t_s) / span;
  return a.vel + (b.vel - a.vel) * w;
}

double Trajectory::path_length() const noexcept {
  double len = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    len += distance(samples_[i - 1].pos, samples_[i].pos);
  }
  return len;
}

std::vector<GeoPoint> Trajectory::to_geo(const LocalFrame& frame) const {
  std::vector<GeoPoint> out;
  out.reserve(samples_.size());
  for (const TrajectorySample& s : samples_) out.push_back(frame.to_geo(s.pos));
  return out;
}

std::vector<DistanceSample> pairwise_distance(const Trajectory& a, const Trajectory& b,
                                              double dt_s) {
  std::vector<DistanceSample> out;
  if (a.empty() || b.empty() || dt_s <= 0.0) return out;
  const double t0 = std::max(a.start_time(), b.start_time());
  const double t1 = std::min(a.end_time(), b.end_time());
  for (double t = t0; t <= t1 + 1e-9; t += dt_s) {
    out.push_back({t, distance(a.position_at(t), b.position_at(t))});
  }
  return out;
}

}  // namespace skyferry::geo
