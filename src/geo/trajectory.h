// Time-stamped position traces. Used to record simulated flights (the
// analogue of the GPS traces in the paper's Figure 4) and to replay them
// into the link simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/geodesy.h"
#include "geo/vec3.h"

namespace skyferry::geo {

/// One sample of a flight trace.
struct TrajectorySample {
  double t_s{0.0};
  Vec3 pos;       ///< ENU position [m]
  Vec3 vel;       ///< ENU velocity [m/s]
};

/// An append-only, time-ordered flight trace with interpolating lookup.
class Trajectory {
 public:
  /// Append a sample; `t_s` must be >= the last appended time.
  void push(const TrajectorySample& s);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const std::vector<TrajectorySample>& samples() const noexcept { return samples_; }

  [[nodiscard]] double start_time() const noexcept;
  [[nodiscard]] double end_time() const noexcept;
  [[nodiscard]] double duration() const noexcept;

  /// Linear interpolation of position at time t (clamped to the trace span).
  /// Precondition: !empty().
  [[nodiscard]] Vec3 position_at(double t_s) const noexcept;

  /// Linear interpolation of velocity at time t (clamped to the trace span).
  /// Precondition: !empty().
  [[nodiscard]] Vec3 velocity_at(double t_s) const noexcept;

  /// Total path length [m] (sum of segment lengths).
  [[nodiscard]] double path_length() const noexcept;

  /// Convert every sample to geodetic coordinates in `frame`.
  [[nodiscard]] std::vector<GeoPoint> to_geo(const LocalFrame& frame) const;

 private:
  /// Index of the last sample with time <= t (0 if t precedes the trace).
  [[nodiscard]] std::size_t lower_index(double t_s) const noexcept;

  std::vector<TrajectorySample> samples_;
};

/// Series of pairwise distances between two traces sampled every dt_s over
/// their overlapping time span. Returns {time, distance} pairs.
struct DistanceSample {
  double t_s{0.0};
  double distance_m{0.0};
};
[[nodiscard]] std::vector<DistanceSample> pairwise_distance(const Trajectory& a,
                                                            const Trajectory& b, double dt_s);

}  // namespace skyferry::geo
