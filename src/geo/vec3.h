// 3-D vector type used throughout SkyFerry for local ENU positions,
// velocities and displacements (meters, meters/second).
#pragma once

#include <cmath>

namespace skyferry::geo {

/// Plain 3-D vector in a local East-North-Up frame.
/// x = east [m], y = north [m], z = up [m] (altitude above the local origin).
struct Vec3 {
  double x{0.0};
  double y{0.0};
  double z{0.0};

  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) noexcept {
    x /= s;
    y /= s;
    z /= s;
    return *this;
  }

  [[nodiscard]] double norm() const noexcept { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] constexpr double norm_sq() const noexcept { return x * x + y * y + z * z; }

  /// Length of the horizontal (east/north) component.
  [[nodiscard]] double horizontal_norm() const noexcept { return std::hypot(x, y); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  [[nodiscard]] Vec3 normalized() const noexcept {
    const double n = norm();
    if (n == 0.0) return {};
    return {x / n, y / n, z / n};
  }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) noexcept { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) noexcept { return a -= b; }
constexpr Vec3 operator*(Vec3 a, double s) noexcept { return a *= s; }
constexpr Vec3 operator*(double s, Vec3 a) noexcept { return a *= s; }
constexpr Vec3 operator/(Vec3 a, double s) noexcept { return a /= s; }
constexpr Vec3 operator-(const Vec3& a) noexcept { return {-a.x, -a.y, -a.z}; }

constexpr bool operator==(const Vec3& a, const Vec3& b) noexcept {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

[[nodiscard]] constexpr double dot(const Vec3& a, const Vec3& b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

[[nodiscard]] constexpr Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

/// Euclidean (slant) distance between two points.
[[nodiscard]] inline double distance(const Vec3& a, const Vec3& b) noexcept {
  return (a - b).norm();
}

/// Ground (horizontal) distance between two points, ignoring altitude.
[[nodiscard]] inline double ground_distance(const Vec3& a, const Vec3& b) noexcept {
  return (a - b).horizontal_norm();
}

}  // namespace skyferry::geo
