#include "io/ascii_chart.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace skyferry::io {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'};

}  // namespace

AsciiChart& AsciiChart::add(Series s) {
  assert(s.xs.size() == s.ys.size());
  series_.push_back(std::move(s));
  return *this;
}

std::string AsciiChart::str() const {
  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';

  // Data bounds.
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  bool any = false;
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      xmin = std::min(xmin, s.xs[i]);
      xmax = std::max(xmax, s.xs[i]);
      ymin = std::min(ymin, s.ys[i]);
      ymax = std::max(ymax, s.ys[i]);
      any = true;
    }
  }
  if (!any) {
    os << "(no data)\n";
    return os.str();
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  auto to_col = [&](double x) {
    return static_cast<int>(std::lround((x - xmin) / (xmax - xmin) * (width_ - 1)));
  };
  auto to_row = [&](double y) {
    return (height_ - 1) - static_cast<int>(std::lround((y - ymin) / (ymax - ymin) * (height_ - 1)));
  };

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char g = kGlyphs[si % sizeof(kGlyphs)];
    const Series& s = series_[si];
    // Draw line segments between consecutive points, then the points
    // themselves on top so series remain distinguishable where they cross.
    for (std::size_t i = 1; i < s.xs.size(); ++i) {
      const int c0 = to_col(s.xs[i - 1]);
      const int r0 = to_row(s.ys[i - 1]);
      const int c1 = to_col(s.xs[i]);
      const int r1 = to_row(s.ys[i]);
      const int steps = std::max({std::abs(c1 - c0), std::abs(r1 - r0), 1});
      for (int k = 0; k <= steps; ++k) {
        const int c = c0 + (c1 - c0) * k / steps;
        const int r = r0 + (r1 - r0) * k / steps;
        char& cell = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
        if (cell == ' ') cell = '.';
      }
    }
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      grid[static_cast<std::size_t>(to_row(s.ys[i]))][static_cast<std::size_t>(to_col(s.xs[i]))] = g;
    }
  }

  // Y axis: label width for tick values.
  char buf[32];
  auto fmt = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return std::string(buf);
  };
  std::size_t ylab_w = 0;
  for (int r = 0; r < height_; ++r) {
    const double v = ymax - (ymax - ymin) * r / (height_ - 1);
    ylab_w = std::max(ylab_w, fmt(v).size());
  }

  if (!y_label_.empty()) os << std::string(ylab_w + 2, ' ') << y_label_ << '\n';
  for (int r = 0; r < height_; ++r) {
    const bool tick = (r % 5 == 0) || r == height_ - 1;
    const double v = ymax - (ymax - ymin) * r / (height_ - 1);
    std::string lab = tick ? fmt(v) : std::string{};
    os << std::string(ylab_w - lab.size(), ' ') << lab << (tick ? " +" : " |")
       << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(ylab_w + 1, ' ') << '+' << std::string(static_cast<std::size_t>(width_), '-')
     << '\n';
  // X ticks: min, mid, max.
  const std::string xl = fmt(xmin);
  const std::string xm = fmt((xmin + xmax) / 2);
  const std::string xr = fmt(xmax);
  std::string xline(static_cast<std::size_t>(width_) + ylab_w + 2, ' ');
  auto place = [&](const std::string& s, std::size_t col) {
    for (std::size_t i = 0; i < s.size() && col + i < xline.size(); ++i) xline[col + i] = s[i];
  };
  place(xl, ylab_w + 2);
  place(xm, ylab_w + 2 + static_cast<std::size_t>(width_) / 2 - xm.size() / 2);
  place(xr, ylab_w + 2 + static_cast<std::size_t>(width_) - xr.size());
  os << xline << '\n';
  if (!x_label_.empty())
    os << std::string(ylab_w + 2 + static_cast<std::size_t>(width_) / 2 - x_label_.size() / 2, ' ')
       << x_label_ << '\n';

  os << "legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series_[si].name;
  }
  os << '\n';
  return os.str();
}

void AsciiChart::print() const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

}  // namespace skyferry::io
