// Terminal line/scatter chart. Lets every figure bench render the actual
// *shape* of the paper figure (crossing transfer curves, U(d) humps,
// boxplot medians) directly in the console output.
#pragma once

#include <string>
#include <vector>

namespace skyferry::io {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Character-grid chart: plots series with distinct glyphs, draws axes
/// with tick labels, and prints a legend.
class AsciiChart {
 public:
  AsciiChart(std::string title, int width = 72, int height = 20)
      : title_(std::move(title)), width_(width), height_(height) {}

  AsciiChart& x_label(std::string s) {
    x_label_ = std::move(s);
    return *this;
  }
  AsciiChart& y_label(std::string s) {
    y_label_ = std::move(s);
    return *this;
  }

  /// Add a series; sizes of xs and ys must match.
  AsciiChart& add(Series s);

  [[nodiscard]] std::string str() const;
  void print() const;

 private:
  std::string title_;
  int width_;
  int height_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace skyferry::io
