#include "io/csv.h"

#include <cstdio>

namespace skyferry::io {

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::put_field(std::string_view s, bool first) {
  if (!first) out_ << ',';
  const bool needs_quotes = s.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) {
    out_ << s;
    return;
  }
  out_ << '"';
  for (char c : s) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::put_number(double v, bool first) {
  if (!first) out_ << ',';
  out_ << format_number(v);
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  bool first = true;
  for (std::string_view n : names) {
    put_field(n, first);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  bool first = true;
  for (double v : values) {
    put_number(v, first);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::span<const double> values) {
  bool first = true;
  for (double v : values) {
    put_number(v, first);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::string_view label, std::span<const double> values) {
  put_field(label, true);
  for (double v : values) put_number(v, false);
  out_ << '\n';
  ++rows_;
}

}  // namespace skyferry::io
