// Minimal CSV writer. Every figure bench dumps its raw series next to the
// printed summary so the plots can be regenerated with any external tool.
#pragma once

#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "io/format.h"

namespace skyferry::io {

/// RFC-4180-style CSV writer (quotes fields containing comma/quote/newline).
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Check ok() before writing.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

  void header(std::initializer_list<std::string_view> names);
  void row(std::initializer_list<double> values);
  void row(std::span<const double> values);
  /// Mixed row: leading string cell (e.g. a label) then numeric cells.
  void row(std::string_view label, std::span<const double> values);

  /// Number of data rows written (excluding the header).
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void put_field(std::string_view s, bool first);
  void put_number(double v, bool first);

  std::ofstream out_;
  std::size_t rows_{0};
};

}  // namespace skyferry::io
