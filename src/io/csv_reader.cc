#include "io/csv_reader.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace skyferry::io {
namespace {

std::vector<std::string> parse_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

std::optional<std::size_t> CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return std::nullopt;
}

std::vector<double> CsvDocument::numeric_column(std::size_t index) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    if (index >= row.size()) {
      out.push_back(std::numeric_limits<double>::quiet_NaN());
      continue;
    }
    char* end = nullptr;
    const double v = std::strtod(row[index].c_str(), &end);
    out.push_back((end == row[index].c_str()) ? std::numeric_limits<double>::quiet_NaN() : v);
  }
  return out;
}

CsvDocument parse_csv(const std::string& text, bool has_header) {
  CsvDocument doc;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto cells = parse_line(line);
    if (first && has_header) {
      doc.header = std::move(cells);
    } else {
      doc.rows.push_back(std::move(cells));
    }
    first = false;
  }
  return doc;
}

std::optional<CsvDocument> read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_csv(ss.str(), has_header);
}

}  // namespace skyferry::io
