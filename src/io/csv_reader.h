// Minimal CSV reader — the inverse of CsvWriter. Lets users feed their
// own measured throughput traces (distance, Mb/s) into
// core::TableThroughput instead of the paper's fits, and lets the tests
// round-trip everything the benches emit.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace skyferry::io {

/// One parsed CSV document: a header row (possibly empty) + data rows of
/// string cells. Handles RFC-4180 quoting as produced by CsvWriter.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index by header name; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> column(const std::string& name) const;

  /// Numeric view of a column (non-numeric cells become NaN).
  [[nodiscard]] std::vector<double> numeric_column(std::size_t index) const;
};

/// Parse CSV text. `has_header` controls whether row 0 is the header.
[[nodiscard]] CsvDocument parse_csv(const std::string& text, bool has_header = true);

/// Read and parse a CSV file; nullopt when the file cannot be read.
[[nodiscard]] std::optional<CsvDocument> read_csv_file(const std::string& path,
                                                       bool has_header = true);

}  // namespace skyferry::io
