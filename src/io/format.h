// Number formatting shared by the CSV writer and table printer.
#pragma once

#include <string>

namespace skyferry::io {

/// Format a double with enough precision to round-trip plot data (%.6g).
[[nodiscard]] std::string format_number(double v);

}  // namespace skyferry::io
