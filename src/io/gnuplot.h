// Gnuplot script emission. The C++ side produces CSVs and ASCII charts;
// for publication-grade figures each bench can also drop a ready-to-run
// .gp script next to its CSV so `gnuplot fig5.gp` regenerates the actual
// paper-style plot without any hand-written plotting code.
#pragma once

#include <string>
#include <vector>

namespace skyferry::io {

/// One plotted series backed by CSV columns.
struct GnuplotSeries {
  std::string csv_path;
  int x_column{1};  ///< 1-based, gnuplot convention
  int y_column{2};
  std::string title;
  std::string style{"linespoints"};
  /// Optional filter: plot only rows whose column `filter_column`
  /// equals `filter_value` (for long-format CSVs).
  int filter_column{0};  ///< 0 = no filter
  std::string filter_value;
};

class GnuplotScript {
 public:
  GnuplotScript(std::string title, std::string xlabel, std::string ylabel)
      : title_(std::move(title)), xlabel_(std::move(xlabel)), ylabel_(std::move(ylabel)) {}

  GnuplotScript& add(GnuplotSeries s) {
    series_.push_back(std::move(s));
    return *this;
  }

  GnuplotScript& logscale_x(bool on = true) {
    logx_ = on;
    return *this;
  }

  /// Output terminal: "pngcairo" (default), "svg", "dumb", ...
  GnuplotScript& terminal(std::string t, std::string outfile) {
    terminal_ = std::move(t);
    outfile_ = std::move(outfile);
    return *this;
  }

  /// Render the script text.
  [[nodiscard]] std::string str() const;

  /// Write to a file; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::string title_;
  std::string xlabel_;
  std::string ylabel_;
  std::string terminal_{"pngcairo size 800,500"};
  std::string outfile_;
  bool logx_{false};
  std::vector<GnuplotSeries> series_;
};

}  // namespace skyferry::io
