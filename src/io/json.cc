#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace skyferry::io {

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  items_.push_back(std::move(v));
}

std::size_t Json::size() const noexcept {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  return 0;
}

Json& Json::set(std::string key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[64];
  for (int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dump_into(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: out += json_number(number_); return;
    case Type::kString: escape_string(out, string_); return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        items_[i].dump_into(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_string(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_into(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_into(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// ---- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    skip_ws();
    Json v;
    if (!parse_value(v)) {
      fill_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing characters after JSON value";
      fill_error(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void fill_error(std::string* error) const {
    if (error) *error = err_ + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool peek_is(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      err_ = "invalid literal";
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Json& out) {  // NOLINT(misc-no-recursion)
    if (pos_ >= text_.size()) {
      err_ = "unexpected end of input";
      return false;
    }
    switch (text_[pos_]) {
      case 'n': return consume_literal("null") && (out = Json(), true);
      case 't': return consume_literal("true") && (out = Json(true), true);
      case 'f': return consume_literal("false") && (out = Json(false), true);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': return parse_array(out);
      case '{': return parse_object(out);
      default: return parse_number(out);
    }
  }

  bool parse_number(Json& out) {
    // Scan the exact JSON number grammar first; strtod alone also accepts
    // hex, inf/nan, and leading '+', which JSON forbids.
    const std::size_t start = pos_;
    auto digit = [&] { return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9'; };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) {
      err_ = "invalid number";
      pos_ = start;
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) {
        err_ = "digit expected after decimal point";
        return false;
      }
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digit()) {
        err_ = "digit expected in exponent";
        return false;
      }
      while (digit()) ++pos_;
    }
    const std::string span(text_.substr(start, pos_ - start));
    out = Json(std::strtod(span.c_str(), nullptr));
    return true;
  }

  bool parse_hex4(unsigned& cp) {
    if (pos_ + 4 > text_.size()) {
      err_ = "truncated \\u escape";
      return false;
    }
    cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else {
        err_ = "invalid \\u escape";
        return false;
      }
    }
    return true;
  }

  void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(cp)) return false;
            // Surrogate pair.
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo)) return false;
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(out, cp);
            break;
          }
          default:
            err_ = "invalid escape";
            return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        err_ = "unescaped control character in string";
        return false;
      }
      out += c;
      ++pos_;
    }
    err_ = "unterminated string";
    return false;
  }

  bool parse_array(Json& out) {  // NOLINT(misc-no-recursion)
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (peek_is(']')) {
      ++pos_;
      return true;
    }
    while (true) {
      Json v;
      skip_ws();
      if (!parse_value(v)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (peek_is(',')) {
        ++pos_;
        continue;
      }
      if (peek_is(']')) {
        ++pos_;
        return true;
      }
      err_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool parse_object(Json& out) {  // NOLINT(misc-no-recursion)
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (peek_is('}')) {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!peek_is('"')) {
        err_ = "expected object key";
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!peek_is(':')) {
        err_ = "expected ':' after object key";
        return false;
      }
      ++pos_;
      skip_ws();
      Json v;
      if (!parse_value(v)) return false;
      out.set(std::move(key), std::move(v));
      skip_ws();
      if (peek_is(',')) {
        ++pos_;
        continue;
      }
      if (peek_is('}')) {
        ++pos_;
        return true;
      }
      err_ = "expected ',' or '}' in object";
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::string err_{"parse error"};
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace skyferry::io
