// Minimal JSON value type with a strict parser and a stable writer —
// the substrate of the golden-file format (check::GoldenFile) and any
// other machine-readable output the benches emit. Objects preserve
// insertion order so a regenerated golden diffs cleanly against the
// committed one.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace skyferry::io {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : type_(Type::kNull) {}
  Json(bool b) noexcept : type_(Type::kBool), bool_(b) {}        // NOLINT(google-explicit-constructor)
  Json(double v) noexcept : type_(Type::kNumber), number_(v) {}  // NOLINT(google-explicit-constructor)
  Json(int v) noexcept : Json(static_cast<double>(v)) {}         // NOLINT(google-explicit-constructor)
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                         // NOLINT

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed reads with a fallback when the value has a different type.
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }

  // ---- array interface ------------------------------------------------------
  /// Appends to an array (a null value silently becomes an array first).
  void push_back(Json v);
  [[nodiscard]] const std::vector<Json>& items() const noexcept { return items_; }
  [[nodiscard]] std::size_t size() const noexcept;

  // ---- object interface -----------------------------------------------------
  /// Sets `key` (a null value silently becomes an object first); an
  /// existing key is overwritten in place, otherwise the member is
  /// appended, preserving insertion order.
  Json& set(std::string key, Json v);
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return members_;
  }

  // ---- serialization --------------------------------------------------------
  /// Serialize; `indent` > 0 pretty-prints with that many spaces per
  /// level, 0 emits the compact single-line form. Numbers round-trip
  /// (shortest representation that parses back exactly).
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parser (no trailing garbage, no comments). On failure
  /// returns nullopt and, when `error` is non-null, a message with the
  /// byte offset of the problem.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

 private:
  void dump_into(std::string& out, int indent, int depth) const;

  Type type_{Type::kNull};
  bool bool_{false};
  double number_{0.0};
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Number formatting used by Json::dump: the shortest of %.15g/%.16g/%.17g
/// that parses back bit-identically (so goldens stay stable and exact).
[[nodiscard]] std::string json_number(double v);

}  // namespace skyferry::io
