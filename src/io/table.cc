#include "io/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace skyferry::io {

Table& Table::columns(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_number(v));
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::str() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < ncols; ++c) os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& s = (c < cells.size()) ? cells[c] : std::string{};
      os << ' ' << s << std::string(width[c] - s.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
  return os.str();
}

void Table::print() const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

}  // namespace skyferry::io
