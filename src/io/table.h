// ASCII table printer used by the figure/table benches to print the same
// rows the paper reports, aligned for terminal reading.
#pragma once

#include <string>
#include <vector>

#include "io/format.h"

namespace skyferry::io {

/// Column-aligned ASCII table with a header row and optional title.
/// Cells are strings; numeric helpers format through format_number.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);

  /// Add a row of already-formatted cells; short rows are padded.
  Table& add_row(std::vector<std::string> cells);

  /// Add a row of [label, numbers...].
  Table& add_row(const std::string& label, const std::vector<double>& values);

  /// Render with box-drawing separators.
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace skyferry::io
