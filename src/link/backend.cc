#include "link/backend.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exp/codec.h"
#include "mac/rate_control.h"
#include "phy/mcs.h"
#include "sim/rng.h"

namespace skyferry::link {
namespace {

void req(bool ok, const std::string& what) {
  if (!ok) throw ConfigError("LinkBackendConfig: " + what);
}

bool finite(double v) noexcept { return std::isfinite(v); }

// ---- decision-layer rate curves -------------------------------------------

/// Cellular: peak/(1 + (d/half)^2) floored at `floor` out to the cell
/// range — the long-range trickle rate that never collapses to zero
/// inside coverage.
class CellularThroughput final : public core::ThroughputModel {
 public:
  explicit CellularThroughput(const LinkBackendConfig& c) noexcept
      : peak_(c.cell_peak_bps), floor_(c.cell_floor_bps), half_(c.cell_half_m),
        range_(c.cell_max_range_m), min_d_(c.min_distance_m), name_(c.name) {}

  [[nodiscard]] double throughput_bps(double distance_m) const noexcept override {
    const double d = std::max(distance_m, min_d_);
    if (d > range_) return 0.0;
    const double x = d / half_;
    return std::max(peak_ / (1.0 + x * x), floor_);
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double max_range_m() const noexcept override { return range_; }

 private:
  double peak_, floor_, half_, range_, min_d_;
  std::string name_;
};

/// Aerial mesh: one shared channel per hop, so the end-to-end rate is
/// the per-hop rate divided by the hop count ceil(d / hop_m); routes
/// longer than max_hops do not form.
class MeshThroughput final : public core::ThroughputModel {
 public:
  explicit MeshThroughput(const LinkBackendConfig& c) noexcept
      : hop_rate_(c.mesh_hop_rate_bps), hop_m_(c.mesh_hop_m), max_hops_(c.mesh_max_hops),
        min_d_(c.min_distance_m), name_(c.name) {}

  [[nodiscard]] double throughput_bps(double distance_m) const noexcept override {
    const double d = std::max(distance_m, min_d_);
    const double hops = std::max(std::ceil(d / hop_m_), 1.0);
    if (hops > static_cast<double>(max_hops_)) return 0.0;
    return hop_rate_ / hops;
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double max_range_m() const noexcept override {
    return static_cast<double>(max_hops_) * hop_m_;
  }

 private:
  double hop_rate_, hop_m_;
  int max_hops_;
  double min_d_;
  std::string name_;
};

/// LEO: a flat rate wherever the constellation covers — distance to the
/// ground station is irrelevant at mission geometry; availability (the
/// outage process) is what varies.
class LeoThroughput final : public core::ThroughputModel {
 public:
  explicit LeoThroughput(const LinkBackendConfig& c) noexcept
      : rate_(c.leo_rate_bps), range_(c.leo_max_range_m), name_(c.name) {}

  [[nodiscard]] double throughput_bps(double distance_m) const noexcept override {
    return distance_m > range_ ? 0.0 : rate_;
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double max_range_m() const noexcept override { return range_; }

 private:
  double rate_, range_;
  std::string name_;
};

// ---- sessions --------------------------------------------------------------

std::unique_ptr<mac::RateController> make_wifi_controller(const LinkBackendConfig& cfg,
                                                          std::uint64_t seed) {
  switch (cfg.wifi_rate_control) {
    case WifiRateControl::kFixedMcs:
      return std::make_unique<mac::FixedMcs>(cfg.mcs_index);
    case WifiRateControl::kArf:
      return std::make_unique<mac::ArfRate>(mac::ArfConfig{}, cfg.mac.channel.width,
                                            cfg.mac.channel.gi);
    case WifiRateControl::kMinstrel:
      break;
  }
  mac::MinstrelConfig mc;
  mc.timing = cfg.mac.timing;
  mc.ampdu = cfg.mac.ampdu;
  mc.mpdu = cfg.mac.mpdu;
  mc.width = cfg.mac.channel.width;
  mc.gi = cfg.mac.channel.gi;
  return std::make_unique<mac::MinstrelHt>(mc, sim::derive_seed(seed, "minstrel"));
}

/// The 802.11n session IS the legacy simulator: same config, same seed,
/// same RNG stream consumption — the differential suite pins run
/// results bit-identical to a directly constructed mac::LinkSimulator.
class WifiSession final : public LinkSession {
 public:
  WifiSession(const LinkBackendConfig& cfg, std::uint64_t seed)
      : rc_(make_wifi_controller(cfg, seed)), sim_(cfg.mac, *rc_, seed) {}

  mac::LinkRunResult run_transfer(std::uint64_t payload_bytes, double max_duration_s,
                                  const mac::GeometryFn& geometry) override {
    return sim_.run_transfer(payload_bytes, max_duration_s, geometry);
  }
  mac::LinkRunResult run_saturated(double duration_s, const mac::GeometryFn& geometry) override {
    return sim_.run_saturated(duration_s, geometry);
  }

 private:
  std::unique_ptr<mac::RateController> rc_;
  mac::LinkSimulator sim_;
};

/// Frame-burst ARQ loop for cellular/mesh/LEO: each round sends up to
/// `frames_per_burst` frames at the decision-layer rate, draws one
/// aggregate fade, samples frame fates per the configured fidelity
/// (kAggregate: one Binomial from the jitter-marginalized PER table —
/// the same fast path as the 802.11n simulator; kPerMpdu: analytic PER
/// per frame), pays one RTT of ARQ turnaround, and stalls through
/// outage segments. Lost frames stay in the backlog.
class GenericSession final : public LinkSession {
 public:
  GenericSession(const LinkBackendConfig& cfg, const core::ThroughputModel& model,
                 std::shared_ptr<phy::PerTableCache> tables, std::uint64_t seed,
                 const fault::LinkChaosConfig& chaos = {})
      : cfg_(cfg),
        model_(model),
        tables_(std::move(tables)),
        em_(cfg.error, cfg.spatial_correlation),
        outage_(cfg.outage, sim::derive_seed(seed, "outage")),
        rng_(sim::derive_seed(seed, "frames")),
        chaos_(chaos, sim::derive_seed(seed, "chaos")),
        chaos_on_(chaos.any()) {}

  mac::LinkRunResult run_transfer(std::uint64_t payload_bytes, double max_duration_s,
                                  const mac::GeometryFn& geometry) override {
    return run(payload_bytes * 8ULL, max_duration_s, geometry);
  }
  mac::LinkRunResult run_saturated(double duration_s, const mac::GeometryFn& geometry) override {
    return run(0, duration_s, geometry);
  }

 private:
  mac::LinkRunResult run(std::uint64_t bits_needed, double time_limit_s,
                         const mac::GeometryFn& geometry) {
    const phy::McsInfo& m = phy::mcs(cfg_.mcs_index);
    const std::uint64_t frame_bits = static_cast<std::uint64_t>(cfg_.frame_bits);
    const bool saturated = bits_needed == 0;
    // Callers normally bound the run with a finite time limit. Under an
    // infinite one, a geometry that never comes back in range — or a
    // link held down without a break — would otherwise idle forever;
    // cap continuous idling and bail out incomplete with the matching
    // taxonomy tag instead.
    constexpr double kMaxOutOfRangeIdleS = 3600.0;
    constexpr double kMaxLinkDownIdleS = 3600.0;
    constexpr int kMaxSetupAttempts = 8;
    double out_of_range_since = -1.0;
    double down_since = -1.0;
    bool clipped_in_stall = false;

    mac::LinkRunResult r;
    double t = cfg_.session_setup_s;
    std::uint64_t delivered_bits = 0;

    // Injected session-setup failures: each failed attach burns one
    // setup interval plus an RTT of signaling before the retry.
    if (chaos_on_ && chaos_.config().setup_fail_p > 0.0) {
      int attempts = 0;
      while (chaos_.draw_setup_failure()) {
        if (++attempts >= kMaxSetupAttempts) {
          r.completed = false;
          r.incomplete_reason = mac::IncompleteReason::kSessionSetupFailed;
          r.duration_s = std::min(t, time_limit_s);
          return r;
        }
        t += cfg_.session_setup_s + cfg_.rtt_s;
      }
    }

    while (saturated || delivered_bits < bits_needed) {
      if (t >= time_limit_s) {
        r.completed = saturated;
        if (!r.completed)
          r.incomplete_reason = clipped_in_stall ? mac::IncompleteReason::kStarvedByOutage
                                                 : mac::IncompleteReason::kTimeLimit;
        t = time_limit_s;
        break;
      }
      const bool outage_down = !outage_.is_up(t);
      if (outage_down || (chaos_on_ && chaos_.blacked_out(t))) {
        if (down_since < 0.0) down_since = t;
        const double end = outage_down ? outage_.segment_end_s(t) : chaos_.blackout_end_s(t);
        if (!std::isfinite(time_limit_s) && end - down_since > kMaxLinkDownIdleS) {
          r.completed = false;
          r.incomplete_reason = mac::IncompleteReason::kStarvedByOutage;
          t = down_since + kMaxLinkDownIdleS;
          break;
        }
        if (end >= time_limit_s) clipped_in_stall = true;
        t = std::min(end, time_limit_s);
        continue;
      }
      down_since = -1.0;
      const mac::Geometry g = geometry(t);
      const double rate = model_.throughput_bps(g.distance_m);
      if (rate <= 0.0) {
        if (out_of_range_since < 0.0) out_of_range_since = t;
        if (!std::isfinite(time_limit_s) && t - out_of_range_since > kMaxOutOfRangeIdleS) {
          r.completed = false;
          r.incomplete_reason = mac::IncompleteReason::kOutOfRange;
          break;
        }
        // Out of range; idle one ARQ turnaround and let geometry move.
        t += std::max(cfg_.rtt_s, 1e-2);
        continue;
      }
      out_of_range_since = -1.0;
      std::uint64_t n = static_cast<std::uint64_t>(cfg_.frames_per_burst);
      if (!saturated) {
        const std::uint64_t backlog = (bits_needed - delivered_bits + frame_bits - 1) / frame_bits;
        n = std::min(n, backlog);
      }
      const double snr = snr_db_at(g.distance_m) + rng_.gaussian(0.0, cfg_.snr_fade_sigma_db);
      std::uint64_t got = 0;
      if (cfg_.fidelity == mac::LinkFidelity::kAggregate) {
        const double per =
            tables_->table(m, cfg_.frame_bits, cfg_.snr_jitter_db).per(snr);
        got = rng_.binomial(n, 1.0 - per);
      } else {
        for (std::uint64_t i = 0; i < n; ++i) {
          const double fsnr = snr + rng_.gaussian(0.0, cfg_.snr_jitter_db);
          if (!rng_.bernoulli(em_.packet_error_rate(m, fsnr, cfg_.frame_bits))) ++got;
        }
      }
      r.mpdus_attempted += n;
      r.mpdus_delivered += got;
      ++r.exchanges;
      delivered_bits += got * frame_bits;
      // A degradation epoch stretches the burst airtime by 1/scale.
      const double scale = chaos_on_ ? chaos_.rate_scale(t) : 1.0;
      t += static_cast<double>(n * frame_bits) / (rate * scale) + cfg_.rtt_s;
    }

    r.duration_s = t;
    r.payload_bits_delivered = saturated ? delivered_bits : std::min(delivered_bits, bits_needed);
    return r;
  }

  [[nodiscard]] double snr_db_at(double distance_m) const noexcept {
    const double d = std::max(distance_m, cfg_.min_distance_m);
    return cfg_.snr_ref_db -
           cfg_.snr_slope_db_per_decade * std::log10(d / cfg_.snr_ref_distance_m);
  }

  LinkBackendConfig cfg_;
  const core::ThroughputModel& model_;
  std::shared_ptr<phy::PerTableCache> tables_;
  phy::ErrorModel em_;
  OutageProcess outage_;
  sim::Rng rng_;
  fault::LinkChaosStream chaos_;
  bool chaos_on_;
};

// ---- backends --------------------------------------------------------------

std::shared_ptr<phy::PerTableCache> session_tables(const LinkBackendConfig& cfg) {
  if (cfg.shared_tables) return cfg.shared_tables;
  return std::make_shared<phy::PerTableCache>(phy::ErrorModel(cfg.error, cfg.spatial_correlation),
                                              cfg.per_table);
}

class WifiBackend final : public LinkBackend {
 public:
  explicit WifiBackend(LinkBackendConfig cfg)
      : LinkBackend(std::move(cfg)),
        model_(cfg_.wifi_a, cfg_.wifi_b, cfg_.name, cfg_.wifi_scale, cfg_.min_distance_m),
        tables_(session_tables(cfg_)) {}

  [[nodiscard]] const core::ThroughputModel& throughput() const noexcept override {
    return model_;
  }
  [[nodiscard]] double frame_per(double snr_db) const override {
    return tables_->table(phy::mcs(cfg_.mcs_index), cfg_.frame_bits, cfg_.snr_jitter_db)
        .per(snr_db);
  }
  using LinkBackend::make_session;
  [[nodiscard]] std::unique_ptr<LinkSession> make_session(std::uint64_t seed) const override {
    return std::make_unique<WifiSession>(cfg_, seed);
  }

 private:
  core::PaperLogThroughput model_;
  std::shared_ptr<phy::PerTableCache> tables_;
};

class GenericBackend final : public LinkBackend {
 public:
  GenericBackend(LinkBackendConfig cfg, std::unique_ptr<core::ThroughputModel> model)
      : LinkBackend(std::move(cfg)), model_(std::move(model)), tables_(session_tables(cfg_)) {}

  [[nodiscard]] const core::ThroughputModel& throughput() const noexcept override {
    return *model_;
  }
  [[nodiscard]] double frame_per(double snr_db) const override {
    return tables_->table(phy::mcs(cfg_.mcs_index), cfg_.frame_bits, cfg_.snr_jitter_db)
        .per(snr_db);
  }
  using LinkBackend::make_session;
  [[nodiscard]] std::unique_ptr<LinkSession> make_session(std::uint64_t seed) const override {
    return std::make_unique<GenericSession>(cfg_, *model_, tables_, seed);
  }
  [[nodiscard]] std::unique_ptr<LinkSession> make_session(
      std::uint64_t seed, const fault::LinkChaosConfig& chaos) const override {
    return std::make_unique<GenericSession>(cfg_, *model_, tables_, seed, chaos);
  }

 private:
  std::unique_ptr<core::ThroughputModel> model_;
  std::shared_ptr<phy::PerTableCache> tables_;
};

}  // namespace

const char* to_string(BackendKind k) noexcept {
  switch (k) {
    case BackendKind::kWifi80211n:
      return "wifi-802.11n";
    case BackendKind::kCellular:
      return "cellular";
    case BackendKind::kMesh:
      return "mesh";
    case BackendKind::kLeo:
      return "leo";
  }
  return "?";
}

BackendKind backend_kind_from_tag(const std::string& tag) {
  for (BackendKind k : {BackendKind::kWifi80211n, BackendKind::kCellular, BackendKind::kMesh,
                        BackendKind::kLeo}) {
    if (tag == to_string(k)) return k;
  }
  throw ConfigError("LinkBackendConfig: unknown backend kind '" + tag + "'");
}

double LinkBackend::snr_db_at(double distance_m) const noexcept {
  const double d = std::max(distance_m, cfg_.min_distance_m);
  return cfg_.snr_ref_db -
         cfg_.snr_slope_db_per_decade * std::log10(d / cfg_.snr_ref_distance_m);
}

LinkBackendConfig LinkBackendConfig::wifi_80211n() {
  LinkBackendConfig c;  // defaults are the paper's airplane 802.11n link
  return c;
}

LinkBackendConfig LinkBackendConfig::cellular() {
  LinkBackendConfig c;
  c.kind = BackendKind::kCellular;
  c.name = "cellular";
  // LTE-ish A2G: multi-second bearer setup, tens of ms RTT, near-always
  // up; the rate floor is what makes the trickle-now path worth it.
  c.session_setup_s = 2.0;
  c.rtt_s = 0.05;
  c.outage = {0.99, 20.0};
  c.mcs_index = 2;
  c.snr_ref_db = 30.0;
  c.snr_slope_db_per_decade = 18.0;
  return c;
}

LinkBackendConfig LinkBackendConfig::mesh() {
  LinkBackendConfig c;
  c.kind = BackendKind::kMesh;
  c.name = "mesh";
  c.rtt_s = 0.008;  // per-hop forwarding adds up, still LAN-ish
  c.outage = {0.97, 10.0};
  c.mcs_index = 3;
  return c;
}

LinkBackendConfig LinkBackendConfig::leo() {
  LinkBackendConfig c;
  c.kind = BackendKind::kLeo;
  c.name = "leo";
  // High RTT, handover/weather outages: availability well below 1 is
  // the defining property, not the rate.
  c.session_setup_s = 5.0;
  c.rtt_s = 0.6;
  c.outage = {0.85, 45.0};
  c.mcs_index = 1;
  c.snr_ref_db = 25.0;
  c.snr_slope_db_per_decade = 0.0;  // distance to gateway ~ constant
  return c;
}

void LinkBackendConfig::validate() const {
  req(!name.empty(), "name must be non-empty");
  req(finite(wifi_a) && finite(wifi_b), "wifi fit coefficients must be finite");
  req(finite(wifi_scale) && wifi_scale > 0.0, "wifi_scale must be finite and > 0");
  req(finite(cell_peak_bps) && cell_peak_bps > 0.0, "cell_peak_bps must be finite and > 0");
  req(finite(cell_floor_bps) && cell_floor_bps >= 0.0,
      "cell_floor_bps must be finite and >= 0");
  req(cell_floor_bps <= cell_peak_bps, "cell_floor_bps must not exceed cell_peak_bps");
  req(finite(cell_half_m) && cell_half_m > 0.0, "cell_half_m must be finite and > 0");
  req(finite(cell_max_range_m) && cell_max_range_m > 0.0,
      "cell_max_range_m must be finite and > 0");
  req(finite(mesh_hop_rate_bps) && mesh_hop_rate_bps > 0.0,
      "mesh_hop_rate_bps must be finite and > 0");
  req(finite(mesh_hop_m) && mesh_hop_m > 0.0, "mesh_hop_m must be finite and > 0");
  req(mesh_max_hops >= 1, "mesh_max_hops must be >= 1");
  req(finite(leo_rate_bps) && leo_rate_bps > 0.0, "leo_rate_bps must be finite and > 0");
  req(finite(leo_max_range_m) && leo_max_range_m > 0.0,
      "leo_max_range_m must be finite and > 0");
  req(finite(min_distance_m) && min_distance_m > 0.0, "min_distance_m must be finite and > 0");
  req(finite(session_setup_s) && session_setup_s >= 0.0,
      "session_setup_s must be finite and >= 0");
  req(finite(rtt_s) && rtt_s >= 0.0, "rtt_s must be finite and >= 0");
  req(finite(outage.availability) && outage.availability > 0.0 && outage.availability <= 1.0,
      "outage.availability must be in (0, 1]");
  if (!outage.always_up()) {
    req(finite(outage.mean_outage_s) && outage.mean_outage_s > 0.0,
        "outage.mean_outage_s must be finite and > 0 when availability < 1");
  }
  req(mcs_index >= 0 && mcs_index < phy::kNumMcs, "mcs_index out of range");
  req(frame_bits > 0, "frame_bits must be > 0");
  req(frames_per_burst >= 1, "frames_per_burst must be >= 1");
  req(finite(snr_ref_db), "snr_ref_db must be finite");
  req(finite(snr_ref_distance_m) && snr_ref_distance_m > 0.0,
      "snr_ref_distance_m must be finite and > 0");
  req(finite(snr_slope_db_per_decade) && snr_slope_db_per_decade >= 0.0,
      "snr_slope_db_per_decade must be finite and >= 0");
  req(finite(snr_fade_sigma_db) && snr_fade_sigma_db >= 0.0,
      "snr_fade_sigma_db must be finite and >= 0");
  req(finite(snr_jitter_db) && snr_jitter_db >= 0.0, "snr_jitter_db must be finite and >= 0");
  req(finite(spatial_correlation) && spatial_correlation >= 0.0 && spatial_correlation <= 1.0,
      "spatial_correlation must be in [0, 1]");
  req(finite(per_table.snr_min_db) && finite(per_table.snr_max_db) &&
          per_table.snr_min_db < per_table.snr_max_db,
      "per_table SNR range must be finite with min < max");
  req(finite(per_table.step_db) && per_table.step_db > 0.0,
      "per_table.step_db must be finite and > 0");
  for (double g : {error.coding_gain_half_db, error.coding_gain_two_thirds_db,
                   error.coding_gain_three_quarters_db, error.coding_gain_five_sixths_db,
                   error.stbc_gain_db, error.sdm_power_split_db,
                   error.sdm_max_correlation_penalty_db}) {
    req(finite(g), "error-model gains must be finite");
  }
  if (shared_tables) {
    req(shared_tables->fingerprint() ==
            phy::table_fingerprint(error, spatial_correlation, per_table),
        "shared_tables was built for a different (error model, spatial correlation, SNR grid) "
        "— a mismatched cache answers with silently wrong PERs");
  }
  if (kind == BackendKind::kWifi80211n && mac.shared_tables) {
    req(mac.shared_tables->fingerprint() ==
            phy::table_fingerprint(mac.error, mac.channel.spatial_correlation, mac.per_table),
        "mac.shared_tables does not match mac (error, channel.spatial_correlation, per_table) "
        "— build it with mac::make_shared_per_tables on this config");
  }
}

namespace {

const char* fidelity_tag(mac::LinkFidelity f) noexcept {
  return f == mac::LinkFidelity::kAggregate ? "aggregate" : "per-mpdu";
}
const char* rate_control_tag(WifiRateControl rc) noexcept {
  switch (rc) {
    case WifiRateControl::kFixedMcs:
      return "fixed-mcs";
    case WifiRateControl::kArf:
      return "arf";
    case WifiRateControl::kMinstrel:
      return "minstrel";
  }
  return "?";
}

}  // namespace

io::Json LinkBackendConfig::to_json() const {
  using exp::Codec;
  io::Json j = io::Json::object();
  j.set("kind", to_string(kind));
  j.set("name", name);
  const auto d = [&j](const char* key, double v) { j.set(key, Codec<double>::encode(v)); };
  d("wifi_a", wifi_a);
  d("wifi_b", wifi_b);
  d("wifi_scale", wifi_scale);
  d("cell_peak_bps", cell_peak_bps);
  d("cell_floor_bps", cell_floor_bps);
  d("cell_half_m", cell_half_m);
  d("cell_max_range_m", cell_max_range_m);
  d("mesh_hop_rate_bps", mesh_hop_rate_bps);
  d("mesh_hop_m", mesh_hop_m);
  j.set("mesh_max_hops", Codec<int>::encode(mesh_max_hops));
  d("leo_rate_bps", leo_rate_bps);
  d("leo_max_range_m", leo_max_range_m);
  d("min_distance_m", min_distance_m);
  d("session_setup_s", session_setup_s);
  d("rtt_s", rtt_s);
  d("availability", outage.availability);
  d("mean_outage_s", outage.mean_outage_s);
  j.set("mcs_index", Codec<int>::encode(mcs_index));
  j.set("frame_bits", Codec<int>::encode(frame_bits));
  d("snr_ref_db", snr_ref_db);
  d("snr_ref_distance_m", snr_ref_distance_m);
  d("snr_slope_db_per_decade", snr_slope_db_per_decade);
  d("snr_fade_sigma_db", snr_fade_sigma_db);
  d("snr_jitter_db", snr_jitter_db);
  j.set("frames_per_burst", Codec<int>::encode(frames_per_burst));
  j.set("fidelity", fidelity_tag(fidelity));
  d("error_coding_gain_half_db", error.coding_gain_half_db);
  d("error_coding_gain_two_thirds_db", error.coding_gain_two_thirds_db);
  d("error_coding_gain_three_quarters_db", error.coding_gain_three_quarters_db);
  d("error_coding_gain_five_sixths_db", error.coding_gain_five_sixths_db);
  d("error_stbc_gain_db", error.stbc_gain_db);
  d("error_sdm_power_split_db", error.sdm_power_split_db);
  d("error_sdm_max_correlation_penalty_db", error.sdm_max_correlation_penalty_db);
  d("spatial_correlation", spatial_correlation);
  d("per_table_snr_min_db", per_table.snr_min_db);
  d("per_table_snr_max_db", per_table.snr_max_db);
  d("per_table_step_db", per_table.step_db);
  j.set("wifi_rate_control", rate_control_tag(wifi_rate_control));
  return j;
}

LinkBackendConfig LinkBackendConfig::from_json(const io::Json& j) {
  if (!j.is_object()) throw ConfigError("LinkBackendConfig: expected a JSON object");
  LinkBackendConfig c;
  try {
    const io::Json* kind = j.find("kind");
    if (kind == nullptr || !kind->is_string())
      throw ConfigError("LinkBackendConfig: missing 'kind' tag");
    c.kind = backend_kind_from_tag(kind->as_string());
    const io::Json* name = j.find("name");
    if (name == nullptr || !name->is_string())
      throw ConfigError("LinkBackendConfig: missing 'name'");
    c.name = name->as_string();
    using exp::field;
    c.wifi_a = field<double>(j, "wifi_a");
    c.wifi_b = field<double>(j, "wifi_b");
    c.wifi_scale = field<double>(j, "wifi_scale");
    c.cell_peak_bps = field<double>(j, "cell_peak_bps");
    c.cell_floor_bps = field<double>(j, "cell_floor_bps");
    c.cell_half_m = field<double>(j, "cell_half_m");
    c.cell_max_range_m = field<double>(j, "cell_max_range_m");
    c.mesh_hop_rate_bps = field<double>(j, "mesh_hop_rate_bps");
    c.mesh_hop_m = field<double>(j, "mesh_hop_m");
    c.mesh_max_hops = field<int>(j, "mesh_max_hops");
    c.leo_rate_bps = field<double>(j, "leo_rate_bps");
    c.leo_max_range_m = field<double>(j, "leo_max_range_m");
    c.min_distance_m = field<double>(j, "min_distance_m");
    c.session_setup_s = field<double>(j, "session_setup_s");
    c.rtt_s = field<double>(j, "rtt_s");
    c.outage.availability = field<double>(j, "availability");
    c.outage.mean_outage_s = field<double>(j, "mean_outage_s");
    c.mcs_index = field<int>(j, "mcs_index");
    c.frame_bits = field<int>(j, "frame_bits");
    c.snr_ref_db = field<double>(j, "snr_ref_db");
    c.snr_ref_distance_m = field<double>(j, "snr_ref_distance_m");
    c.snr_slope_db_per_decade = field<double>(j, "snr_slope_db_per_decade");
    c.snr_fade_sigma_db = field<double>(j, "snr_fade_sigma_db");
    c.snr_jitter_db = field<double>(j, "snr_jitter_db");
    c.frames_per_burst = field<int>(j, "frames_per_burst");
    c.error.coding_gain_half_db = field<double>(j, "error_coding_gain_half_db");
    c.error.coding_gain_two_thirds_db = field<double>(j, "error_coding_gain_two_thirds_db");
    c.error.coding_gain_three_quarters_db =
        field<double>(j, "error_coding_gain_three_quarters_db");
    c.error.coding_gain_five_sixths_db = field<double>(j, "error_coding_gain_five_sixths_db");
    c.error.stbc_gain_db = field<double>(j, "error_stbc_gain_db");
    c.error.sdm_power_split_db = field<double>(j, "error_sdm_power_split_db");
    c.error.sdm_max_correlation_penalty_db =
        field<double>(j, "error_sdm_max_correlation_penalty_db");
    c.spatial_correlation = field<double>(j, "spatial_correlation");
    c.per_table.snr_min_db = field<double>(j, "per_table_snr_min_db");
    c.per_table.snr_max_db = field<double>(j, "per_table_snr_max_db");
    c.per_table.step_db = field<double>(j, "per_table_step_db");
  } catch (const exp::CodecError& e) {
    throw ConfigError(std::string("LinkBackendConfig: ") + e.what());
  }
  const io::Json* fid = j.find("fidelity");
  if (fid == nullptr || !fid->is_string())
    throw ConfigError("LinkBackendConfig: missing 'fidelity' tag");
  if (fid->as_string() == "aggregate") {
    c.fidelity = mac::LinkFidelity::kAggregate;
  } else if (fid->as_string() == "per-mpdu") {
    c.fidelity = mac::LinkFidelity::kPerMpdu;
  } else {
    throw ConfigError("LinkBackendConfig: unknown fidelity '" + fid->as_string() + "'");
  }
  const io::Json* rc = j.find("wifi_rate_control");
  if (rc == nullptr || !rc->is_string())
    throw ConfigError("LinkBackendConfig: missing 'wifi_rate_control' tag");
  if (rc->as_string() == "fixed-mcs") {
    c.wifi_rate_control = WifiRateControl::kFixedMcs;
  } else if (rc->as_string() == "arf") {
    c.wifi_rate_control = WifiRateControl::kArf;
  } else if (rc->as_string() == "minstrel") {
    c.wifi_rate_control = WifiRateControl::kMinstrel;
  } else {
    throw ConfigError("LinkBackendConfig: unknown wifi_rate_control '" + rc->as_string() + "'");
  }
  c.validate();
  return c;
}

std::unique_ptr<LinkBackend> make_backend(LinkBackendConfig cfg) {
  cfg.validate();
  switch (cfg.kind) {
    case BackendKind::kWifi80211n:
      return std::make_unique<WifiBackend>(std::move(cfg));
    case BackendKind::kCellular: {
      auto model = std::make_unique<CellularThroughput>(cfg);
      return std::make_unique<GenericBackend>(std::move(cfg), std::move(model));
    }
    case BackendKind::kMesh: {
      auto model = std::make_unique<MeshThroughput>(cfg);
      return std::make_unique<GenericBackend>(std::move(cfg), std::move(model));
    }
    case BackendKind::kLeo: {
      auto model = std::make_unique<LeoThroughput>(cfg);
      return std::make_unique<GenericBackend>(std::move(cfg), std::move(model));
    }
  }
  throw ConfigError("LinkBackendConfig: unknown backend kind");
}

}  // namespace skyferry::link
