// Pluggable link backends: "now, later — or on which link?"
//
// The paper's delayed-gratification tradeoff assumes one 802.11n
// air-to-ground burst link. The multi-connectivity measurement papers
// (PAPERS.md) show real UAVs also carry cellular (rate floor at long
// range, per-session latency), aerial mesh (hop-count-dependent rate)
// and LEO (high latency, weather-driven availability) links with wildly
// different profiles. `LinkBackend` abstracts what the decision and
// simulation layers need from any of them:
//
//   - a decision-layer rate curve s(d) served as a core::ThroughputModel
//     (the 802.11n backend carries the paper's exact log2 fit, so a
//     single-backend configuration is bit-identical to the legacy path);
//   - a session latency (setup + half-RTT) and an outage process
//     (link::OutageConfig) for the availability discount;
//   - an SNR→PER curve served through the phy::PerTableCache fast path,
//     so mac::LinkFidelity::kAggregate carries over to every backend;
//   - `make_session()`: a seeded transfer simulator. The 802.11n
//     backend's session IS a mac::LinkSimulator (same config, same
//     seed, same RNG stream — the differential suite pins this
//     bit-identically); the other backends run a frame-burst ARQ loop
//     gated by their outage process.
//
// Configs are plain data with a strict JSON codec (exp::Codec idiom:
// exact doubles, unknown backend tags rejected) and a validate() that
// refuses NaN/Inf/negative rates and latencies and mismatched shared
// PER-table caches (the trap warned about at mac::LinkConfig::
// shared_tables) before any simulation starts.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/throughput_model.h"
#include "fault/link_chaos.h"
#include "io/json.h"
#include "link/outage.h"
#include "mac/link.h"
#include "phy/per.h"
#include "phy/per_table.h"

namespace skyferry::link {

/// Thrown by LinkBackendConfig::validate() / from_json() on any
/// malformed, non-finite, or inconsistent configuration.
struct ConfigError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class BackendKind : std::uint8_t {
  kWifi80211n,  ///< the paper's 802.11n A2G burst link
  kCellular,    ///< LTE-style: rate floor at long range, session setup
  kMesh,        ///< aerial mesh: per-hop rate divided by hop count
  kLeo,         ///< LEO satellite: high RTT, outage-driven availability
};

/// Stable config-file tag ("wifi-802.11n", "cellular", "mesh", "leo").
[[nodiscard]] const char* to_string(BackendKind k) noexcept;
/// Inverse of to_string(); throws ConfigError on an unknown tag.
[[nodiscard]] BackendKind backend_kind_from_tag(const std::string& tag);

/// Rate controller driving the 802.11n backend's sessions.
enum class WifiRateControl : std::uint8_t { kFixedMcs, kArf, kMinstrel };

/// One backend's full description: decision-layer rate curve, latency,
/// outage statistics, and the PHY curve its sessions sample. Flat plain
/// data — only the fields of the active `kind` shape its rate curve,
/// but every field always round-trips through JSON, so a config file
/// can be re-tagged without loss.
struct LinkBackendConfig {
  BackendKind kind{BackendKind::kWifi80211n};
  std::string name{"wifi-802.11n"};

  // -- decision-layer rate curve s(d) [bit/s] --------------------------------
  /// kWifi80211n: the paper's fit s(d) = wifi_scale·(wifi_a·log2(d) + wifi_b),
  /// clamped at ≥ 0 — served verbatim as core::PaperLogThroughput so the
  /// single-backend decision path stays bit-identical to the legacy one.
  double wifi_a{-5.56};
  double wifi_b{49.0};
  double wifi_scale{1e6};
  /// kCellular: peak/(1 + (d/half)²) floored at `floor` out to max range
  /// — the long-range trickle rate that never collapses to zero.
  double cell_peak_bps{30e6};
  double cell_floor_bps{2e6};
  double cell_half_m{1200.0};
  double cell_max_range_m{30e3};
  /// kMesh: per-hop airtime is shared, so s(d) = hop_rate / hops(d) with
  /// hops(d) = ceil(d / hop_m), dead beyond max_hops.
  double mesh_hop_rate_bps{18e6};
  double mesh_hop_m{400.0};
  int mesh_max_hops{6};
  /// kLeo: flat rate wherever the constellation covers (range ~ infinite
  /// for mission geometry); what varies is availability, not distance.
  double leo_rate_bps{4e6};
  double leo_max_range_m{2e6};

  /// Anti-collision floor: s(d) saturates below this distance.
  double min_distance_m{20.0};

  // -- latency and availability ----------------------------------------------
  double session_setup_s{0.0};  ///< per-session attach/bearer setup
  double rtt_s{0.0};            ///< round-trip time (ARQ turnaround)
  OutageConfig outage{};        ///< long-run availability statistics

  // -- session PHY curve (non-wifi backends) ---------------------------------
  // The generic frame-burst session draws frame fates from an SNR→PER
  // table built by the same phy::PerTableCache fast path the 802.11n
  // simulator uses: a log-distance SNR map feeds an MCS-indexed PER
  // curve, jitter-marginalized for LinkFidelity::kAggregate.
  int mcs_index{3};
  int frame_bits{12000};
  double snr_ref_db{38.0};              ///< SNR at the reference distance
  double snr_ref_distance_m{100.0};
  double snr_slope_db_per_decade{20.0};  ///< log-distance path loss
  double snr_fade_sigma_db{2.0};         ///< per-burst aggregate fade
  double snr_jitter_db{2.0};             ///< per-frame jitter within a burst
  int frames_per_burst{32};              ///< ARQ burst size (one RTT each)
  mac::LinkFidelity fidelity{mac::LinkFidelity::kAggregate};
  phy::ErrorModelConfig error{};
  double spatial_correlation{0.9};
  phy::PerTableConfig per_table{};
  /// Optional cross-session PER-table cache. Must match (error,
  /// spatial_correlation, per_table) — validate() checks the
  /// phy::table_fingerprint instead of trusting the caller.
  std::shared_ptr<phy::PerTableCache> shared_tables{};

  // -- 802.11n full-MAC session (kWifi80211n only) ---------------------------
  /// Passed to mac::LinkSimulator verbatim (including its own
  /// shared_tables, checked by validate() too). Not serialized: the MAC
  /// sub-config is code-level; JSON carries the decision/PHY surface.
  mac::LinkConfig mac{};
  WifiRateControl wifi_rate_control{WifiRateControl::kFixedMcs};

  // -- presets ---------------------------------------------------------------
  static LinkBackendConfig wifi_80211n();
  static LinkBackendConfig cellular();
  static LinkBackendConfig mesh();
  static LinkBackendConfig leo();

  /// Throws ConfigError on NaN/Inf/negative rates or latencies,
  /// availability outside (0,1], bad grids, out-of-range MCS, or a
  /// shared PER-table cache whose fingerprint does not match this
  /// config (mac::LinkConfig::shared_tables' silent-wrong-PER trap).
  void validate() const;

  /// Strict JSON codec (exp::Codec exact doubles). from_json throws
  /// ConfigError on unknown kind tags, missing fields, or any value
  /// validate() would reject; runtime-only members (shared_tables, mac)
  /// are not serialized.
  [[nodiscard]] io::Json to_json() const;
  [[nodiscard]] static LinkBackendConfig from_json(const io::Json& j);
};

/// One seeded transfer simulation over a backend. The 802.11n session
/// wraps mac::LinkSimulator bit-identically; generic sessions run a
/// frame-burst ARQ loop gated by the backend's outage process.
class LinkSession {
 public:
  virtual ~LinkSession() = default;

  /// Deliver exactly `payload_bytes`; stops at `max_duration_s` with
  /// completed=false. Same contract as mac::LinkSimulator::run_transfer.
  /// Prefer a finite `max_duration_s`; under an infinite one a session
  /// whose geometry stays out of range — or whose link is held down for
  /// an hour straight — bails out incomplete rather than looping
  /// forever. Incomplete runs carry a mac::IncompleteReason taxonomy
  /// tag (time limit vs out of range vs starved by outage vs setup
  /// failure) so chaos campaigns can tell the failure modes apart.
  virtual mac::LinkRunResult run_transfer(std::uint64_t payload_bytes, double max_duration_s,
                                          const mac::GeometryFn& geometry) = 0;

  /// Saturated (always-backlogged) traffic for `duration_s`.
  virtual mac::LinkRunResult run_saturated(double duration_s, const mac::GeometryFn& geometry) = 0;
};

/// A configured link backend: the decision layer reads its rate curve,
/// latency and availability; the simulation layer opens sessions.
class LinkBackend {
 public:
  virtual ~LinkBackend() = default;

  [[nodiscard]] const LinkBackendConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& name() const noexcept { return cfg_.name; }
  [[nodiscard]] BackendKind kind() const noexcept { return cfg_.kind; }

  /// Decision-layer rate curve s(d) — non-increasing in distance for
  /// every backend (property-tested).
  [[nodiscard]] virtual const core::ThroughputModel& throughput() const noexcept = 0;
  [[nodiscard]] double rate_bps(double distance_m) const noexcept {
    return throughput().throughput_bps(distance_m);
  }
  /// Largest distance with positive rate.
  [[nodiscard]] double max_range_m() const noexcept { return throughput().max_range_m(); }

  /// Fixed per-session latency: setup plus half an RTT (first-byte
  /// delay). Always finite and ≥ 0.
  [[nodiscard]] double latency_s() const noexcept {
    return cfg_.session_setup_s + 0.5 * cfg_.rtt_s;
  }
  /// Stationary availability of the outage process, in (0, 1].
  [[nodiscard]] double availability() const noexcept { return cfg_.outage.availability; }

  /// Log-distance SNR map of the session PHY curve [dB].
  [[nodiscard]] double snr_db_at(double distance_m) const noexcept;

  /// Jitter-marginalized frame error rate at raw SNR [dB], served from
  /// the phy::PerTableCache fast path — non-increasing in SNR
  /// (property-tested). Thread-safe (the cache locks on build).
  [[nodiscard]] virtual double frame_per(double snr_db) const = 0;

  /// A seeded transfer session. Sessions derived from distinct seeds
  /// draw independent streams; same seed → bit-identical run.
  [[nodiscard]] virtual std::unique_ptr<LinkSession> make_session(std::uint64_t seed) const = 0;

  /// A chaos-overlaid session: `chaos` (fault/link_chaos.h) layers
  /// seeded blackouts, degradation epochs and setup failures on top of
  /// the backend's own outage process, forked from the same `seed`. A
  /// disabled chaos config yields a session bit-identical to
  /// make_session(seed) — the chaos streams own separate forked RNGs,
  /// so the frame/fade stream is untouched either way. The 802.11n
  /// backend returns its plain full-MAC session here: its consumers
  /// (the fleet sweep, fault::MissionSim) apply chaos at the call site.
  [[nodiscard]] virtual std::unique_ptr<LinkSession> make_session(
      std::uint64_t seed, const fault::LinkChaosConfig& chaos) const {
    (void)chaos;
    return make_session(seed);
  }

 protected:
  explicit LinkBackend(LinkBackendConfig cfg) : cfg_(std::move(cfg)) {}
  LinkBackendConfig cfg_;
};

/// Build (and validate) a backend from its config. Throws ConfigError
/// on anything validate() rejects.
[[nodiscard]] std::unique_ptr<LinkBackend> make_backend(LinkBackendConfig cfg);

}  // namespace skyferry::link
