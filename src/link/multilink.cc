#include "link/multilink.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "exp/codec.h"

namespace skyferry::link {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Trapezoid segments of the path-mean rate. Deterministic and fixed so
/// decisions are reproducible; 8 segments resolve every backend's
/// piecewise curve well enough for a trickle *estimate* (the sim layer,
/// not this planner, is the ground truth for delivered bytes).
constexpr int kPathSegments = 8;

/// The single definition of core::optimize()'s search schedule. Sharing
/// the template — not keeping a copy in sync — is what guarantees a
/// single-802.11n-backend run evaluates the identical FP expression at
/// the identical points and lands on the bit-identical decision
/// (tests/link/multilink_contract).
using core::golden_grid_search;
using SearchOut = core::ScalarSearchResult;

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) noexcept {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

double trickle_bytes(const LinkBackend& bk, double d_m, const MultiLinkParams& p) {
  const double tship = d_m >= p.d0_m ? 0.0 : (p.d0_m - d_m) / p.speed_mps;
  const double window = tship - bk.config().session_setup_s;
  if (window <= 0.0) return 0.0;
  double acc = 0.0;
  for (int i = 0; i <= kPathSegments; ++i) {
    const double x = d_m + (p.d0_m - d_m) * i / kPathSegments;
    const double s = bk.rate_bps(std::max(x, p.min_distance_m));
    acc += (i == 0 || i == kPathSegments) ? 0.5 * s : s;
  }
  const double mean_rate_bps = acc / kPathSegments;
  return bk.availability() * window * mean_rate_bps / 8.0;
}

namespace {

/// The burst link's delay decomposition at (d, burst_bytes). The FP
/// expression is core::CommDelayModel/UtilityFunction verbatim, plus
/// the availability discount on the rate (·1.0 for 802.11n — exact
/// identity) and the fixed session latency (+0.0 for 802.11n).
struct BurstEval {
  double tship_s{0.0};
  double ttx_s{kInf};
  double cdelay_s{kInf};
  double discount{0.0};
  double utility{0.0};
};

BurstEval eval_burst(const LinkBackend& bk, double d_m, double burst_bytes,
                     const MultiLinkParams& p, const uav::FailureModel& failure) {
  BurstEval e;
  e.tship_s = d_m >= p.d0_m ? 0.0 : (p.d0_m - d_m) / p.speed_mps;
  const double dc = std::max(d_m, p.min_distance_m);
  const double s = bk.rate_bps(dc) * bk.availability();
  e.ttx_s = s <= 0.0 ? kInf : burst_bytes * 8.0 / s;
  e.cdelay_s = e.tship_s + e.ttx_s + bk.latency_s();
  e.discount = failure.discount(p.d0_m, d_m);
  e.utility = (e.cdelay_s > 0.0 && e.cdelay_s != kInf) ? e.discount / e.cdelay_s : 0.0;
  return e;
}

core::Boundary classify(double d, double lo, double hi) noexcept {
  const double eps = 1e-6 * std::max(hi - lo, 1.0);
  if (d >= hi - eps) return core::Boundary::kTransmitNow;
  if (d <= lo + eps) return core::Boundary::kAtFloor;
  return core::Boundary::kInterior;
}

core::OptimizeResult to_result(const BurstEval& e, double d, double lo, double hi, int evals) {
  core::OptimizeResult r;
  r.d_opt_m = d;
  r.utility = e.utility;
  r.cdelay_s = e.cdelay_s;
  r.discount = e.discount;
  r.boundary = classify(d, lo, hi);
  r.evaluations = evals;
  return r;
}

}  // namespace

MultiLinkResult optimize_multilink(const std::vector<const LinkBackend*>& links,
                                   const MultiLinkParams& p, const uav::FailureModel& failure,
                                   core::OptimizeOptions opt, int forced_burst_link) {
  MultiLinkResult r;
  const int n_links = static_cast<int>(links.size());
  if (n_links == 0) return r;
  r.single.resize(static_cast<std::size_t>(n_links));
  r.trickle_by_link.assign(static_cast<std::size_t>(n_links), 0.0);

  const double lo = p.min_distance_m;
  const double hi = p.d0_m;

  // Joint trickle at distance d when link j bursts: every other link
  // ships in the background during the ferry leg, capped at the batch.
  const auto joint_trickle = [&](int j, double d) {
    double total = 0.0;
    for (int k = 0; k < n_links; ++k) {
      if (k == j) continue;
      total += trickle_bytes(*links[static_cast<std::size_t>(k)], d, p);
    }
    return std::min(total, p.mdata_bytes);
  };
  const auto joint_utility = [&](int j, double d) {
    const double burst = p.mdata_bytes - joint_trickle(j, d);
    return eval_burst(*links[static_cast<std::size_t>(j)], d, burst, p, failure).utility;
  };

  // Pass 1: each link alone — the legacy "now or later?" problem on
  // that link's own rate/latency/availability profile.
  for (int j = 0; j < n_links; ++j) {
    const LinkBackend& bk = *links[static_cast<std::size_t>(j)];
    const SearchOut s = golden_grid_search(
        lo, hi, [&](double d) { return eval_burst(bk, d, p.mdata_bytes, p, failure).utility; },
        opt);
    r.single[static_cast<std::size_t>(j)] =
        to_result(eval_burst(bk, s.d, p.mdata_bytes, p, failure), s.d, lo, hi, s.evals);
  }

  // Pass 2: elect the burst link. With one link (or a singleton forced
  // election) the joint objective IS the single objective — reuse the
  // pass-1 result verbatim, which is what makes the single-backend
  // configuration bit-identical to core::optimize().
  int best_j = -1;
  SearchOut best{};
  for (int j = 0; j < n_links; ++j) {
    if (forced_burst_link >= 0 && j != forced_burst_link) continue;
    SearchOut cand;
    if (n_links == 1) {
      const core::OptimizeResult& s = r.single[static_cast<std::size_t>(j)];
      cand = {s.d_opt_m, s.utility, s.evaluations};
    } else {
      cand = golden_grid_search(lo, hi, [&](double d) { return joint_utility(j, d); }, opt);
      // Dominance net: the joint objective dominates the single one
      // pointwise, but the two searches can refine into different
      // brackets — evaluating the joint objective at the single-link
      // optimum guarantees result-level dominance too.
      const double d_single = r.single[static_cast<std::size_t>(j)].d_opt_m;
      const double v_single = joint_utility(j, d_single);
      ++cand.evals;
      if (v_single > cand.val) {
        cand.d = d_single;
        cand.val = v_single;
      }
    }
    if (best_j < 0 || cand.val > best.val) {
      best_j = j;
      best = cand;
    }
  }

  if (best_j < 0) return r;  // forced index out of range
  r.burst_link = best_j;
  const LinkBackend& burst_bk = *links[static_cast<std::size_t>(best_j)];
  // Per-link trickles, rescaled proportionally when the Mdata cap binds
  // so they always sum to the reported total (the raw sum replays
  // joint_trickle's accumulation order, keeping trickle_bytes exact).
  double raw_sum = 0.0;
  for (int k = 0; k < n_links; ++k) {
    if (k == best_j || n_links == 1) continue;
    const double tr = trickle_bytes(*links[static_cast<std::size_t>(k)], best.d, p);
    r.trickle_by_link[static_cast<std::size_t>(k)] = tr;
    raw_sum += tr;
  }
  r.trickle_bytes = n_links == 1 ? 0.0 : std::min(raw_sum, p.mdata_bytes);
  if (raw_sum > p.mdata_bytes && raw_sum > 0.0) {
    const double scale = p.mdata_bytes / raw_sum;
    for (double& v : r.trickle_by_link) v *= scale;
  }
  r.burst_bytes = p.mdata_bytes - r.trickle_bytes;
  r.decision =
      to_result(eval_burst(burst_bk, best.d, r.burst_bytes, p, failure), best.d, lo, hi, best.evals);
  return r;
}

// ---- LinkSet ---------------------------------------------------------------

LinkSet::LinkSet(std::vector<LinkBackendConfig> configs) : configs_(std::move(configs)) {
  backends_.reserve(configs_.size());
  for (const LinkBackendConfig& c : configs_) backends_.push_back(make_backend(c));
}

std::vector<const LinkBackend*> LinkSet::views() const {
  std::vector<const LinkBackend*> v;
  v.reserve(backends_.size());
  for (const auto& b : backends_) v.push_back(b.get());
  return v;
}

std::string LinkSet::checksum() const {
  std::uint64_t h = 1469598103934665603ULL;
  for (const LinkBackendConfig& c : configs_) {
    h = fnv1a(h, c.to_json().dump());
    h = fnv1a(h, "|");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

io::Json LinkSet::to_json() const {
  io::Json j = io::Json::object();
  j.set("skyferry_link_set", kFormatVersion);
  io::Json arr = io::Json::array();
  for (const LinkBackendConfig& c : configs_) arr.push_back(c.to_json());
  j.set("links", std::move(arr));
  j.set("checksum", checksum());
  return j;
}

LinkSet LinkSet::from_json(const io::Json& j) {
  if (!j.is_object()) throw ConfigError("link set: expected a JSON object");
  const io::Json* version = j.find("skyferry_link_set");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->as_number()) != kFormatVersion) {
    throw ConfigError("link set: unsupported format version (want " +
                      std::to_string(kFormatVersion) + ")");
  }
  const io::Json* arr = j.find("links");
  if (arr == nullptr || !arr->is_array()) throw ConfigError("link set: missing 'links' array");
  std::vector<LinkBackendConfig> configs;
  configs.reserve(arr->items().size());
  for (const io::Json& lj : arr->items()) configs.push_back(LinkBackendConfig::from_json(lj));
  LinkSet set(std::move(configs));
  const io::Json* want = j.find("checksum");
  if (want == nullptr || !want->is_string()) throw ConfigError("link set: missing checksum");
  const std::string have = set.checksum();
  if (want->as_string() != have) {
    throw ConfigError("link set: checksum mismatch (file says " + want->as_string() +
                      ", content hashes to " + have +
                      ") — the link set was tampered with or corrupted");
  }
  return set;
}

void LinkSet::save_atomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) throw ConfigError("link set: cannot open " + tmp + " for writing");
  const std::string text = to_json().dump(1);
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), fp) == text.size() && std::fflush(fp) == 0;
#ifndef _WIN32
  // fsync before rename: the rename must never land ahead of the data.
  const bool synced = wrote && ::fsync(::fileno(fp)) == 0;
#else
  const bool synced = wrote;
#endif
  std::fclose(fp);
  if (!synced) {
    std::remove(tmp.c_str());
    throw ConfigError("link set: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ConfigError("link set: cannot rename " + tmp + " -> " + path);
  }
}

LinkSet LinkSet::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("link set: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto j = io::Json::parse(buf.str(), &error);
  if (!j) throw ConfigError("link set: " + path + " is truncated or not valid JSON (" + error + ")");
  try {
    return from_json(*j);
  } catch (const ConfigError& e) {
    throw ConfigError(std::string(e.what()) + " [" + path + "]");
  }
}

}  // namespace skyferry::link
