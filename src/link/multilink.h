// Joint (link, d) selection: "ship a trickle now over cellular while
// ferrying the bulk for the 802.11n burst."
//
// One link is elected the *burst* link: the UAV ferries to distance d
// and pushes the remaining batch through it, exactly the paper's
// delayed-gratification tradeoff. Every *other* enabled link trickles
// in the background during the ferry leg: a link with availability a,
// session setup T_setup and rate curve s(x) moves
//
//   trickle_bytes = a · max(Tship − T_setup, 0) · mean s along the path / 8
//
// (deterministic trapezoid mean over the flown [d, d0] segment), which
// shrinks the burst to Mdata − Σ trickle and therefore Ttx. The joint
// objective for burst link j is the paper's U(d) with that smaller
// burst plus j's fixed session latency, discounted by j's availability:
//
//   U_j(d) = exp(−ρ(d0−d)) / (Tship + burst·8/(s_j(d)·a_j) + latency_j)
//
// Two exact contracts, both enforced by tests/link/:
//  - *Bit-identity*: with a single 802.11n backend (latency 0,
//    availability 1) the trickle sum is empty, so U_j(d) reduces to the
//    identical FP expression core::UtilityFunction evaluates, and the
//    search below replays core::optimize()'s exact schedule — the
//    decision matches the legacy single-link path bit for bit.
//  - *Dominance*: trickling never hurts. U_joint_j(d) ≥ U_single_j(d)
//    pointwise even in floating point (the trickle only shrinks the
//    Ttx numerator, and IEEE −, ·, / are monotone), and the optimizer
//    additionally evaluates each joint objective at its link's
//    single-link optimum, so the returned utility is ≥ the best
//    single-link utility on every input.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "io/json.h"
#include "link/backend.h"
#include "uav/failure.h"

namespace skyferry::link {

/// An owning, validated collection of link backends with a strict
/// checksummed on-disk format (the policy::PolicyTable idiom: versioned
/// JSON, exact-double codec, FNV-1a content tag; tampered or truncated
/// files fail load()).
class LinkSet {
 public:
  static constexpr int kFormatVersion = 1;

  LinkSet() = default;
  /// Validates and builds every backend; throws ConfigError.
  explicit LinkSet(std::vector<LinkBackendConfig> configs);

  [[nodiscard]] std::size_t size() const noexcept { return backends_.size(); }
  [[nodiscard]] bool empty() const noexcept { return backends_.empty(); }
  [[nodiscard]] const LinkBackend& backend(std::size_t i) const noexcept { return *backends_[i]; }
  [[nodiscard]] const std::vector<LinkBackendConfig>& configs() const noexcept { return configs_; }
  /// Non-owning views in index order, the shape optimize_multilink takes.
  [[nodiscard]] std::vector<const LinkBackend*> views() const;

  // ---- on-disk format -------------------------------------------------------
  [[nodiscard]] io::Json to_json() const;
  /// Strict decode: version mismatch, missing fields, unknown backend
  /// tags, or a checksum mismatch all throw ConfigError.
  [[nodiscard]] static LinkSet from_json(const io::Json& j);
  /// tmp + fsync + rename (exp::Checkpoint crash-safety contract).
  void save_atomic(const std::string& path) const;
  [[nodiscard]] static LinkSet load(const std::string& path);
  /// FNV-1a over the compact-encoded link configs.
  [[nodiscard]] std::string checksum() const;

 private:
  std::vector<LinkBackendConfig> configs_;
  std::vector<std::unique_ptr<LinkBackend>> backends_;
};

/// The decision inputs (mirrors core::DeliveryParams plus ρ's model).
struct MultiLinkParams {
  double d0_m{0.0};
  double speed_mps{1.0};
  double mdata_bytes{0.0};
  double min_distance_m{20.0};
};

/// One joint decision: which link bursts, where, and what each
/// background link trickled by then.
struct MultiLinkResult {
  /// The burst decision at the elected link: d*, joint utility,
  /// Cdelay/discount decomposition, boundary classification — the same
  /// shape core::optimize() returns.
  core::OptimizeResult decision{};
  int burst_link{-1};            ///< index into the link list; -1 if none usable
  double trickle_bytes{0.0};     ///< Σ background bytes at d*
  double burst_bytes{0.0};       ///< Mdata − trickle_bytes
  /// Per-link trickle split; 0 at the burst link. Rescaled so it sums
  /// to trickle_bytes (up to FP rounding) when the Mdata cap binds.
  std::vector<double> trickle_by_link;
  /// Per-link single-link decisions (no background trickle), for
  /// dominance checks and the fig_multilink comparison.
  std::vector<core::OptimizeResult> single;
};

/// Background trickle of `bk` while ferrying from d0 to d at speed v:
/// availability · max(Tship − setup, 0) · path-mean rate / 8. Exposed
/// for tests and the fleet engine's arrival credit.
[[nodiscard]] double trickle_bytes(const LinkBackend& bk, double d_m, const MultiLinkParams& p);

/// Joint (link, d) optimization over `links`. `forced_burst_link` pins
/// the burst election to one index (-1 = elect the best). A link whose
/// rate curve is dead on the whole [min_d, d0] interval scores utility
/// 0 and loses the election to any live link; with an empty `links`
/// list (or an out-of-range forced index) the result has
/// burst_link == -1 and zero utility.
[[nodiscard]] MultiLinkResult optimize_multilink(const std::vector<const LinkBackend*>& links,
                                                 const MultiLinkParams& p,
                                                 const uav::FailureModel& failure,
                                                 core::OptimizeOptions opt = {},
                                                 int forced_burst_link = -1);

}  // namespace skyferry::link
