#include "link/outage.h"

#include <algorithm>
#include <limits>

#include "sim/rng.h"

namespace skyferry::link {

OutageProcess::OutageProcess(const OutageConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(sim::derive_seed(seed, "link-outage")) {
  if (cfg_.always_up()) {
    seg_end_ = std::numeric_limits<double>::infinity();
    return;
  }
  // Stationary start: P(up at t=0) = availability, and the residual life
  // of the segment containing 0 is again exponential (memorylessness),
  // so every instant — not just large t — sees the configured
  // availability. The chi-square property test leans on this.
  up_ = rng_.bernoulli(cfg_.availability);
  const double mean = up_ ? cfg_.mean_up_s() : cfg_.mean_outage_s;
  seg_end_ = rng_.exponential(1.0 / mean);
}

void OutageProcess::advance_to(double t_s) {
  while (t_s >= seg_end_) {
    up_ = !up_;
    seg_start_ = seg_end_;
    const double mean = up_ ? cfg_.mean_up_s() : cfg_.mean_outage_s;
    seg_end_ += rng_.exponential(1.0 / mean);
  }
}

bool OutageProcess::is_up(double t_s) {
  if (cfg_.always_up()) return true;
  advance_to(t_s);
  return up_;
}

double OutageProcess::segment_end_s(double t_s) {
  if (cfg_.always_up()) return std::numeric_limits<double>::infinity();
  advance_to(t_s);
  return seg_end_;
}

double OutageProcess::up_seconds(double t0_s, double t1_s) {
  if (cfg_.always_up()) return std::max(0.0, t1_s - t0_s);
  if (t1_s <= t0_s) return 0.0;
  advance_to(t0_s);
  double acc = 0.0;
  double cursor = t0_s;
  while (cursor < t1_s) {
    const double upto = std::min(seg_end_, t1_s);
    if (up_) acc += upto - cursor;
    cursor = upto;
    if (cursor < t1_s) advance_to(cursor);
  }
  return acc;
}

}  // namespace skyferry::link
