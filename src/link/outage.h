// Per-backend link-outage process: a seeded two-state (up/down)
// alternating renewal process, the link-level twin of the fault layer's
// fault::LinkOutageFaults. Up segments last Exp(mean_up), outages
// Exp(mean_outage); the initial state is drawn from the stationary
// distribution, so the probability of being up at *any* instant equals
// the configured availability exactly (what the chi-square property
// test pins over 10^3 seeds).
//
// Cellular and 802.11n links are near-always-up in the measurement
// papers; LEO availability is weather/handover-driven and materially
// below 1 — which is why the decision layer discounts a backend's rate
// by its availability and the sim layer stalls transfers during the
// sampled outage windows.
#pragma once

#include <cstdint>

#include "fault/fault_plan.h"
#include "sim/rng.h"

namespace skyferry::link {

/// Long-run outage statistics of one backend.
struct OutageConfig {
  /// Stationary fraction of time the link is usable, in (0, 1].
  double availability{1.0};
  /// Mean duration of one outage [s]; ignored at availability == 1.
  double mean_outage_s{30.0};

  [[nodiscard]] bool always_up() const noexcept { return availability >= 1.0; }

  /// Mean up-segment duration implied by (availability, mean_outage_s).
  [[nodiscard]] double mean_up_s() const noexcept {
    return availability * mean_outage_s / (1.0 - availability);
  }

  /// The fault layer's equivalent injection parameters: outages arrive
  /// Poisson at 1/mean_up while the link is up and last
  /// Exp(mean_outage_s) — the exact renewal process
  /// fault::FaultInjector arms for its link-outage axis.
  [[nodiscard]] fault::LinkOutageFaults fault_model() const noexcept {
    if (always_up()) return {};
    return {1.0 / mean_up_s(), mean_outage_s};
  }
  /// Inverse bridge: the availability implied by a fault-plan outage
  /// axis (1 when the axis is disabled).
  [[nodiscard]] static OutageConfig from_fault(const fault::LinkOutageFaults& f) noexcept {
    if (!f.enabled()) return {1.0, 30.0};
    const double mean_up = 1.0 / f.rate_per_s;
    return {mean_up / (mean_up + f.mean_duration_s), f.mean_duration_s};
  }
};

/// One seeded realization of the outage process. Queries must be
/// time-monotone (the segment walk only moves forward), which every
/// simulation loop satisfies.
class OutageProcess {
 public:
  OutageProcess(const OutageConfig& cfg, std::uint64_t seed);

  /// Link state at absolute time t (monotone in successive calls).
  [[nodiscard]] bool is_up(double t_s);

  /// End of the segment containing t (+inf when always up): the sim
  /// loop's "retry at" time during an outage.
  [[nodiscard]] double segment_end_s(double t_s);

  /// Seconds of up-time inside [t0, t1] (monotone windows).
  [[nodiscard]] double up_seconds(double t0_s, double t1_s);

  [[nodiscard]] const OutageConfig& config() const noexcept { return cfg_; }

 private:
  void advance_to(double t_s);

  OutageConfig cfg_;
  sim::Rng rng_;
  double seg_start_{0.0};
  double seg_end_{0.0};
  bool up_{true};
};

}  // namespace skyferry::link
