#include "mac/ampdu.h"

#include <algorithm>
#include <cmath>

namespace skyferry::mac {

int MpduFormat::mpdu_bits() const noexcept {
  return (msdu_bytes + udp_ip_overhead + llc_snap_bytes + mac_header_bytes + fcs_bytes) * 8;
}

int MpduFormat::subframe_bits() const noexcept {
  const int bytes = delimiter_bytes + mpdu_bits() / 8;
  const int padded = (bytes + 3) / 4 * 4;
  return padded * 8;
}

int subframes_for(const AmpduPolicy& p, const MpduFormat& f, const phy::McsInfo& m,
                  phy::ChannelWidth w, phy::GuardInterval gi, int backlog_mpdus) noexcept {
  int n = std::max(1, std::min(p.max_subframes, backlog_mpdus));

  // Byte cap.
  const int sub_bytes = f.subframe_bits() / 8;
  if (sub_bytes > 0) n = std::min(n, std::max(1, p.max_ampdu_bytes / sub_bytes));

  // Airtime cap.
  while (n > 1 && ampdu_duration_s(f, m, w, gi, n) > p.max_duration_s) --n;

  // Host fill-rate cap: during one exchange (~duration of the previous
  // aggregate + ack turnaround) the host can only enqueue so many MPDUs.
  if (p.host_fill_rate_bps > 0.0) {
    const double exchange_s = ampdu_duration_s(f, m, w, gi, n) + 100e-6;
    const int fillable = std::max(
        1, static_cast<int>(p.host_fill_rate_bps * exchange_s / f.subframe_bits()));
    n = std::min(n, fillable);
  }
  return n;
}

double ampdu_duration_s(const MpduFormat& f, const phy::McsInfo& m, phy::ChannelWidth w,
                        phy::GuardInterval gi, int n) noexcept {
  return phy::frame_duration_s(m, w, gi, n * f.subframe_bits());
}

double exchange_duration_s(const MacTiming& t, const MpduFormat& f, const phy::McsInfo& m,
                           phy::ChannelWidth w, phy::GuardInterval gi, int n,
                           int retry_stage) noexcept {
  return t.difs_s() + t.mean_backoff_s(retry_stage) + ampdu_duration_s(f, m, w, gi, n) +
         t.sifs_s + block_ack_duration_s(w);
}

double ideal_goodput_bps(const MacTiming& t, const AmpduPolicy& p, const MpduFormat& f,
                         const phy::McsInfo& m, phy::ChannelWidth w,
                         phy::GuardInterval gi) noexcept {
  const int n = subframes_for(p, f, m, w, gi, p.max_subframes);
  const double dur = exchange_duration_s(t, f, m, w, gi, n, 0);
  return static_cast<double>(n) * f.payload_bits() / dur;
}

}  // namespace skyferry::mac
