// A-MPDU aggregation and Block-ACK accounting. The paper's radios use
// A-MPDU frame aggregation with Block ACK and a default of 14 subframes,
// noting that a slow embedded host may not fill the aggregate at high PHY
// rates (Sec. 3.1) — modeled here via `host_fill_rate_bps`.
#pragma once

#include <vector>

#include "mac/timing.h"
#include "phy/mcs.h"

namespace skyferry::mac {

/// Sizing of one MPDU carrying a UDP datagram.
struct MpduFormat {
  int msdu_bytes{1470};       ///< UDP payload (iperf default datagram)
  int udp_ip_overhead{28};    ///< UDP (8) + IPv4 (20) headers
  int llc_snap_bytes{8};
  int mac_header_bytes{26};   ///< QoS data header (3-address)
  int fcs_bytes{4};
  int delimiter_bytes{4};     ///< A-MPDU subframe delimiter
  // Subframes are padded to 4-byte boundaries inside an aggregate.

  /// Bits of one MPDU on air, excluding the delimiter.
  [[nodiscard]] int mpdu_bits() const noexcept;
  /// Bits of one subframe (delimiter + MPDU, padded to 4 bytes).
  [[nodiscard]] int subframe_bits() const noexcept;
  /// Application payload bits delivered per successful MPDU.
  [[nodiscard]] int payload_bits() const noexcept { return msdu_bytes * 8; }
};

/// Aggregation policy constraints.
struct AmpduPolicy {
  int max_subframes{14};        ///< driver default in the paper
  int max_ampdu_bytes{65535};   ///< HT A-MPDU length cap
  double max_duration_s{4e-3};  ///< regulatory TXOP-ish airtime cap
  /// How fast the embedded host can feed the radio; caps the useful
  /// aggregate size at high PHY rates (0 = infinitely fast host).
  double host_fill_rate_bps{0.0};
};

/// Number of subframes to aggregate for a transmission at `m`, honoring
/// subframe, byte, duration, and host-fill-rate caps (at least 1).
[[nodiscard]] int subframes_for(const AmpduPolicy& p, const MpduFormat& f, const phy::McsInfo& m,
                                phy::ChannelWidth w, phy::GuardInterval gi,
                                int backlog_mpdus) noexcept;

/// Airtime [s] of an A-MPDU with `n` subframes at MCS `m`.
[[nodiscard]] double ampdu_duration_s(const MpduFormat& f, const phy::McsInfo& m,
                                      phy::ChannelWidth w, phy::GuardInterval gi, int n) noexcept;

/// Duration [s] of one complete DCF A-MPDU exchange: DIFS + mean backoff
/// for `retry_stage` + A-MPDU + SIFS + Block ACK.
[[nodiscard]] double exchange_duration_s(const MacTiming& t, const MpduFormat& f,
                                         const phy::McsInfo& m, phy::ChannelWidth w,
                                         phy::GuardInterval gi, int n, int retry_stage) noexcept;

/// Ideal saturated goodput [bit/s] at an MCS with zero loss — the upper
/// envelope used to sanity-check simulated throughput and to seed the
/// rate-control expected-goodput table.
[[nodiscard]] double ideal_goodput_bps(const MacTiming& t, const AmpduPolicy& p,
                                       const MpduFormat& f, const phy::McsInfo& m,
                                       phy::ChannelWidth w, phy::GuardInterval gi) noexcept;

}  // namespace skyferry::mac
