#include "mac/contention.h"

#include <algorithm>
#include <cmath>

namespace skyferry::mac {
namespace {

/// Bianchi (2000): tau as a function of p for CWmin W and m backoff stages.
/// The expression is 0/0 at p = 1/2; the removable singularity is filled
/// with its L'Hopital limit tau = 4 / (2(w+1) + w*m).
double tau_of_p(double p, int w, int m) noexcept {
  if (std::abs(1.0 - 2.0 * p) < 1e-6) {
    return 4.0 / (2.0 * (w + 1.0) + static_cast<double>(w) * m);
  }
  const double num = 2.0 * (1.0 - 2.0 * p);
  const double den =
      (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - std::pow(2.0 * p, m));
  return num / den;
}

}  // namespace

ContentionResult analyze_contention(int stations, const MacTiming& timing,
                                    double frame_airtime_s, double ack_airtime_s) noexcept {
  ContentionResult r;
  r.stations = std::max(stations, 1);
  const int n = r.stations;
  const int w = timing.cw_min + 1;
  // Number of doubling stages until cw_max.
  int m = 0;
  while ((w << m) - 1 < timing.cw_max) ++m;

  if (n == 1) {
    r.tau = 2.0 / (w + 1.0);
    r.collision_probability = 0.0;
    r.efficiency_vs_single = 1.0;
    return r;
  }

  // Fixed point: p = 1 - (1 - tau)^(n-1). The damped iteration reaches
  // exact (bit-level) stationarity well before 200 rounds for every n;
  // the early exit keeps the result identical to the full loop while
  // making the fleet engine's per-cell memo misses cheap.
  double p = 0.1;
  for (int it = 0; it < 200; ++it) {
    const double tau = tau_of_p(p, w, m);
    const double p_next = 0.5 * p + 0.5 * (1.0 - std::pow(1.0 - tau, n - 1));
    if (p_next == p) break;
    p = p_next;
  }
  r.tau = tau_of_p(p, w, m);
  r.collision_probability = p;

  // Normalized throughput (slot-time accounting).
  auto throughput = [&](int n_stations, double tau) {
    const double p_tr = 1.0 - std::pow(1.0 - tau, n_stations);
    const double p_s = n_stations * tau * std::pow(1.0 - tau, n_stations - 1) /
                       std::max(p_tr, 1e-12);
    const double t_s = frame_airtime_s + timing.sifs_s + ack_airtime_s + timing.difs_s();
    const double t_c = frame_airtime_s + timing.difs_s();
    const double denom = (1.0 - p_tr) * timing.slot_s + p_tr * p_s * t_s +
                         p_tr * (1.0 - p_s) * t_c;
    return p_tr * p_s * frame_airtime_s / denom;
  };
  const double single = throughput(1, 2.0 / (w + 1.0));
  const double shared_total = throughput(n, r.tau);
  // Per-station share relative to the lone station's throughput.
  r.efficiency_vs_single = (single > 0.0) ? (shared_total / n) / single : 0.0;
  return r;
}

double shared_goodput_bps(double single_station_bps, int stations, const MacTiming& timing,
                          double frame_airtime_s, double ack_airtime_s) noexcept {
  const ContentionResult r =
      analyze_contention(stations, timing, frame_airtime_s, ack_airtime_s);
  return single_station_bps * r.efficiency_vs_single;
}

}  // namespace skyferry::mac
