// Multi-station DCF contention analysis (Bianchi's model). In a real
// SAR deployment several UAV pairs share channel 40; this module answers
// how much of the single-link throughput each of n saturated contenders
// keeps, which the mission planner needs when co-locating rendezvous.
#pragma once

#include "mac/timing.h"

namespace skyferry::mac {

struct ContentionResult {
  int stations{1};
  double tau{0.0};                 ///< per-slot transmission probability
  double collision_probability{0.0};  ///< conditional collision prob p
  /// Fraction of airtime carrying successful payload relative to a
  /// single station with no contention (1.0 at n=1).
  double efficiency_vs_single{1.0};
};

/// Solve Bianchi's fixed point for n saturated stations with the given
/// CW parameters and retry limit, then evaluate the normalized
/// throughput relative to the single-station case, using the supplied
/// frame airtime (seconds) for payload, collision and idle accounting.
[[nodiscard]] ContentionResult analyze_contention(int stations, const MacTiming& timing,
                                                  double frame_airtime_s,
                                                  double ack_airtime_s) noexcept;

/// Convenience: per-station goodput [bit/s] when `stations` saturated
/// links share the channel and a lone station would achieve
/// `single_station_bps`.
[[nodiscard]] double shared_goodput_bps(double single_station_bps, int stations,
                                        const MacTiming& timing, double frame_airtime_s,
                                        double ack_airtime_s) noexcept;

}  // namespace skyferry::mac
