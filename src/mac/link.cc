#include "mac/link.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace skyferry::mac {

namespace {

/// Block ACK frame size on air (32 bytes at the basic rate).
constexpr int kBlockAckBits = 32 * 8;

/// Backstop for the (mcs, backlog) subframe cache: policies beyond this
/// bound fall back to recomputing (no real config comes close — the HT
/// A-MPDU cap is 64 subframes).
constexpr int kMaxCachedSubframes = 256;

}  // namespace

GeometryFn static_geometry(double distance_m, double relative_speed_mps) {
  return [distance_m, relative_speed_mps](double) {
    return Geometry{distance_m, relative_speed_mps};
  };
}

std::shared_ptr<phy::PerTableCache> make_shared_per_tables(const LinkConfig& cfg) {
  return std::make_shared<phy::PerTableCache>(
      phy::ErrorModel(cfg.error, cfg.channel.spatial_correlation), cfg.per_table);
}

LinkSimulator::LinkSimulator(LinkConfig cfg, RateController& rate_control, std::uint64_t seed)
    : cfg_(cfg),
      rc_(rate_control),
      channel_(cfg.channel, sim::derive_seed(seed, "channel")),
      error_model_(cfg.error, cfg.channel.spatial_correlation),
      rng_(sim::derive_seed(seed, "mac")),
      tables_(error_model_, cfg.per_table),
      table_src_(cfg_.shared_tables ? cfg_.shared_tables.get() : &tables_) {
  if (cfg_.ampdu.max_subframes <= kMaxCachedSubframes) {
    subframes_cache_.assign(
        static_cast<std::size_t>(phy::kNumMcs) *
            static_cast<std::size_t>(cfg_.ampdu.max_subframes + 1),
        -1);
    exchange_cache_.assign(static_cast<std::size_t>(phy::kNumMcs) *
                               static_cast<std::size_t>(cfg_.ampdu.max_subframes + 1) *
                               static_cast<std::size_t>(cfg_.timing.retry_limit + 1),
                           -1.0);
  }
}

int LinkSimulator::cached_subframes(int mcs_index, int backlog) {
  const int capped = std::clamp(backlog, 1, cfg_.ampdu.max_subframes);
  if (subframes_cache_.empty()) {
    return subframes_for(cfg_.ampdu, cfg_.mpdu, phy::mcs(mcs_index), cfg_.channel.width,
                         cfg_.channel.gi, capped);
  }
  const auto idx = static_cast<std::size_t>(mcs_index) *
                       static_cast<std::size_t>(cfg_.ampdu.max_subframes + 1) +
                   static_cast<std::size_t>(capped);
  if (subframes_cache_[idx] < 0) {
    subframes_cache_[idx] = static_cast<std::int16_t>(
        subframes_for(cfg_.ampdu, cfg_.mpdu, phy::mcs(mcs_index), cfg_.channel.width,
                      cfg_.channel.gi, capped));
  }
  return subframes_cache_[idx];
}

double LinkSimulator::cached_exchange_duration(int mcs_index, int n, int retry_stage) {
  if (exchange_cache_.empty()) {
    return exchange_duration_s(cfg_.timing, cfg_.mpdu, phy::mcs(mcs_index), cfg_.channel.width,
                               cfg_.channel.gi, n, retry_stage);
  }
  const auto idx =
      (static_cast<std::size_t>(mcs_index) * static_cast<std::size_t>(cfg_.ampdu.max_subframes + 1) +
       static_cast<std::size_t>(n)) *
          static_cast<std::size_t>(cfg_.timing.retry_limit + 1) +
      static_cast<std::size_t>(retry_stage);
  if (exchange_cache_[idx] < 0.0) {
    exchange_cache_[idx] = exchange_duration_s(cfg_.timing, cfg_.mpdu, phy::mcs(mcs_index),
                                               cfg_.channel.width, cfg_.channel.gi, n, retry_stage);
  }
  return exchange_cache_[idx];
}

const phy::PerTable& LinkSimulator::data_table(const phy::McsInfo& m) {
  // Jitter-marginalized at build time: per() then answers the per-MPDU
  // jitter marginal in a single lookup.
  const phy::PerTable*& slot = data_tables_[static_cast<std::size_t>(m.index)];
  if (slot == nullptr) {
    slot = &table_src_->table(m, cfg_.mpdu.mpdu_bits(), cfg_.per_mpdu_snr_jitter_db);
  }
  return *slot;
}

const phy::PerTable& LinkSimulator::ba_table() {
  if (ba_table_ == nullptr) ba_table_ = &table_src_->table(phy::mcs(0), kBlockAckBits);
  return *ba_table_;
}

LinkRunResult LinkSimulator::run_saturated(double duration_s, const GeometryFn& geometry) {
  return run_internal(std::numeric_limits<std::uint64_t>::max(), duration_s, geometry);
}

LinkRunResult LinkSimulator::run_transfer(std::uint64_t payload_bytes, double max_duration_s,
                                          const GeometryFn& geometry) {
  return run_internal(payload_bytes, max_duration_s, geometry);
}

LinkRunResult LinkSimulator::run_internal(std::uint64_t payload_bytes_limit, double duration_s,
                                          const GeometryFn& geometry) {
  LinkRunResult res;
  const std::uint64_t payload_bits_limit =
      (payload_bytes_limit == std::numeric_limits<std::uint64_t>::max())
          ? payload_bytes_limit
          : payload_bytes_limit * 8;

  double t = 0.0;
  int retry_stage = 0;
  std::uint64_t window_bits = 0;
  double window_start = 0.0;

  const int mpdu_bits = cfg_.mpdu.mpdu_bits();
  const int payload_bits_per_mpdu = cfg_.mpdu.payload_bits();
  const bool aggregate = cfg_.fidelity == LinkFidelity::kAggregate;
  const double jitter_db = cfg_.per_mpdu_snr_jitter_db;

  // An infinite (or non-positive) meter window disables throughput
  // sampling entirely — Monte-Carlo consumers only want the totals.
  const bool metering = std::isfinite(cfg_.meter_window_s) && cfg_.meter_window_s > 0.0;
  if (metering && std::isfinite(duration_s)) {
    const auto windows = static_cast<std::size_t>(std::min(
        duration_s / cfg_.meter_window_s + 2.0, 1e6));
    res.samples.reserve(windows);
    res.transfer_curve_mb.reserve(windows);
  }

  auto flush_window = [&](double now) {
    const double span = now - window_start;
    if (span <= 0.0) return;
    res.samples.push_back({now, static_cast<double>(window_bits) / span / 1e6});
    res.transfer_curve_mb.push_back(
        {now, static_cast<double>(res.payload_bits_delivered) / 8e6});
    window_bits = 0;
    window_start = now;
  };

  while (t < duration_s && res.payload_bits_delivered < payload_bits_limit) {
    const Geometry g = geometry(t);
    const int mcs_index = rc_.select_mcs(t);
    const phy::McsInfo& m = phy::mcs(mcs_index);

    // Remaining backlog in MPDUs (saturated runs: unbounded).
    int backlog = cfg_.ampdu.max_subframes;
    if (payload_bits_limit != std::numeric_limits<std::uint64_t>::max()) {
      const std::uint64_t remaining_bits = payload_bits_limit - res.payload_bits_delivered;
      backlog = static_cast<int>(std::min<std::uint64_t>(
          (remaining_bits + payload_bits_per_mpdu - 1) / payload_bits_per_mpdu,
          static_cast<std::uint64_t>(cfg_.ampdu.max_subframes)));
    }
    const int n = cached_subframes(mcs_index, std::max(backlog, 1));

    // One SNR draw governs the aggregate (all subframes share the fade);
    // per-MPDU jitter (frequency selectivity) decorrelates subframe fates.
    const double snr_db = channel_.snr_db(t, g.distance_m, g.relative_speed_mps);

    int delivered = 0;
    if (aggregate) {
      // Subframe fates are iid given the aggregate fade, so the
      // delivered count is exactly Binomial(n, 1-PER) with PER the
      // jitter-marginalized per-subframe error probability (folded into
      // the table knots at build time).
      const double per = data_table(m).per(snr_db);
      delivered = static_cast<int>(rng_.binomial(static_cast<std::uint64_t>(n), 1.0 - per));
    } else {
      for (int i = 0; i < n; ++i) {
        const double mpdu_snr = snr_db + jitter_db * rng_.gaussian();
        const double per = error_model_.packet_error_rate(m, mpdu_snr, mpdu_bits);
        if (!rng_.bernoulli(per)) ++delivered;
      }
    }

    // Block ACK must survive too (32-byte frame at basic rate, same fade);
    // a lost BA voids the whole exchange for the sender.
    const double ba_per = aggregate
                              ? ba_table().per(snr_db)
                              : error_model_.packet_error_rate(phy::mcs(0), snr_db, kBlockAckBits);
    if (rng_.bernoulli(ba_per)) delivered = 0;

    res.mpdus_attempted += static_cast<std::uint64_t>(n);
    res.mpdus_delivered += static_cast<std::uint64_t>(delivered);
    res.payload_bits_delivered +=
        static_cast<std::uint64_t>(delivered) * static_cast<std::uint64_t>(payload_bits_per_mpdu);
    window_bits +=
        static_cast<std::uint64_t>(delivered) * static_cast<std::uint64_t>(payload_bits_per_mpdu);
    ++res.exchanges;

    rc_.report(t, TxFeedback{mcs_index, n, delivered});

    retry_stage = (delivered == 0) ? std::min(retry_stage + 1, cfg_.timing.retry_limit)
                                   : 0;

    t += cached_exchange_duration(mcs_index, n, retry_stage);

    if (metering && t - window_start >= cfg_.meter_window_s) flush_window(t);
  }

  if (metering) flush_window(t);
  res.duration_s = t;
  res.completed = res.payload_bits_delivered >= payload_bits_limit ||
                  payload_bits_limit == std::numeric_limits<std::uint64_t>::max();
  if (!res.completed) res.incomplete_reason = IncompleteReason::kTimeLimit;
  return res;
}

}  // namespace skyferry::mac
