#include "mac/link.h"

#include <algorithm>
#include <limits>

namespace skyferry::mac {

GeometryFn static_geometry(double distance_m, double relative_speed_mps) {
  return [distance_m, relative_speed_mps](double) {
    return Geometry{distance_m, relative_speed_mps};
  };
}

LinkSimulator::LinkSimulator(LinkConfig cfg, RateController& rate_control, std::uint64_t seed)
    : cfg_(cfg),
      rc_(rate_control),
      channel_(cfg.channel, sim::derive_seed(seed, "channel")),
      error_model_(cfg.error, cfg.channel.spatial_correlation),
      rng_(sim::derive_seed(seed, "mac")) {}

LinkRunResult LinkSimulator::run_saturated(double duration_s, const GeometryFn& geometry) {
  return run_internal(std::numeric_limits<std::uint64_t>::max(), duration_s, geometry);
}

LinkRunResult LinkSimulator::run_transfer(std::uint64_t payload_bytes, double max_duration_s,
                                          const GeometryFn& geometry) {
  return run_internal(payload_bytes, max_duration_s, geometry);
}

LinkRunResult LinkSimulator::run_internal(std::uint64_t payload_bytes_limit, double duration_s,
                                          const GeometryFn& geometry) {
  LinkRunResult res;
  const std::uint64_t payload_bits_limit =
      (payload_bytes_limit == std::numeric_limits<std::uint64_t>::max())
          ? payload_bytes_limit
          : payload_bytes_limit * 8;

  double t = 0.0;
  int retry_stage = 0;
  std::uint64_t window_bits = 0;
  double window_start = 0.0;

  const int mpdu_bits = cfg_.mpdu.mpdu_bits();
  const int payload_bits_per_mpdu = cfg_.mpdu.payload_bits();

  auto flush_window = [&](double now) {
    const double span = now - window_start;
    if (span <= 0.0) return;
    res.samples.push_back({now, static_cast<double>(window_bits) / span / 1e6});
    res.transfer_curve_mb.push_back(
        {now, static_cast<double>(res.payload_bits_delivered) / 8e6});
    window_bits = 0;
    window_start = now;
  };

  while (t < duration_s && res.payload_bits_delivered < payload_bits_limit) {
    const Geometry g = geometry(t);
    const int mcs_index = rc_.select_mcs(t);
    const phy::McsInfo& m = phy::mcs(mcs_index);

    // Remaining backlog in MPDUs (saturated runs: unbounded).
    int backlog = cfg_.ampdu.max_subframes;
    if (payload_bits_limit != std::numeric_limits<std::uint64_t>::max()) {
      const std::uint64_t remaining_bits = payload_bits_limit - res.payload_bits_delivered;
      backlog = static_cast<int>(std::min<std::uint64_t>(
          (remaining_bits + payload_bits_per_mpdu - 1) / payload_bits_per_mpdu,
          static_cast<std::uint64_t>(cfg_.ampdu.max_subframes)));
    }
    const int n = subframes_for(cfg_.ampdu, cfg_.mpdu, m, cfg_.channel.width, cfg_.channel.gi,
                                std::max(backlog, 1));

    // One SNR draw governs the aggregate (all subframes share the fade);
    // per-MPDU jitter (frequency selectivity) decorrelates subframe fates.
    const double snr_db = channel_.snr_db(t, g.distance_m, g.relative_speed_mps);

    int delivered = 0;
    for (int i = 0; i < n; ++i) {
      const double mpdu_snr =
          snr_db + cfg_.per_mpdu_snr_jitter_db * rng_.gaussian();
      const double per = error_model_.packet_error_rate(m, mpdu_snr, mpdu_bits);
      if (!rng_.bernoulli(per)) ++delivered;
    }

    // Block ACK must survive too (32-byte frame at basic rate, same fade);
    // a lost BA voids the whole exchange for the sender.
    const double ba_per = error_model_.packet_error_rate(phy::mcs(0), snr_db, 32 * 8);
    if (rng_.bernoulli(ba_per)) delivered = 0;

    res.mpdus_attempted += static_cast<std::uint64_t>(n);
    res.mpdus_delivered += static_cast<std::uint64_t>(delivered);
    res.payload_bits_delivered +=
        static_cast<std::uint64_t>(delivered) * static_cast<std::uint64_t>(payload_bits_per_mpdu);
    window_bits +=
        static_cast<std::uint64_t>(delivered) * static_cast<std::uint64_t>(payload_bits_per_mpdu);
    ++res.exchanges;

    rc_.report(t, TxFeedback{mcs_index, n, delivered});

    retry_stage = (delivered == 0) ? std::min(retry_stage + 1, cfg_.timing.retry_limit)
                                   : 0;

    t += exchange_duration_s(cfg_.timing, cfg_.mpdu, m, cfg_.channel.width, cfg_.channel.gi, n,
                             retry_stage);

    if (t - window_start >= cfg_.meter_window_s) flush_window(t);
  }

  flush_window(t);
  res.duration_s = t;
  res.completed = res.payload_bits_delivered >= payload_bits_limit ||
                  payload_bits_limit == std::numeric_limits<std::uint64_t>::max();
  return res;
}

}  // namespace skyferry::mac
