// Saturated-link simulator: drives DCF A-MPDU/Block-ACK exchanges over a
// time-evolving aerial channel under a rate controller, with the link
// geometry (distance, relative speed) supplied as a function of time.
// This is the engine behind the paper's iperf-style throughput
// measurements (Figs. 5-7) and the full-stack variant of Fig. 1.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mac/ampdu.h"
#include "mac/rate_control.h"
#include "phy/channel.h"
#include "phy/per.h"
#include "phy/per_table.h"

namespace skyferry::mac {

/// Link geometry at a time instant.
struct Geometry {
  double distance_m{0.0};
  double relative_speed_mps{0.0};
};
using GeometryFn = std::function<Geometry(double t_s)>;

/// Fixed geometry helper.
[[nodiscard]] GeometryFn static_geometry(double distance_m, double relative_speed_mps = 0.0);

/// One windowed throughput sample.
struct ThroughputSample {
  double t_s{0.0};        ///< window end time
  double mbps{0.0};       ///< goodput over the window
};

/// Fidelity of the subframe-fate sampling (DESIGN.md §7).
enum class LinkFidelity {
  /// Reference path: one Gaussian jitter + one Bernoulli per subframe,
  /// PER from the analytic phy::ErrorModel. Exact but ~64 erfc/pow
  /// chains per A-MPDU.
  kPerMpdu,
  /// Fast path: PER from a phy::PerTable lookup and the delivered count
  /// drawn as one Binomial(n, 1-PER). With zero jitter this is the
  /// *same distribution* as kPerMpdu (subframe fates are iid); with
  /// jitter the shared PER is marginalized over the jitter by
  /// Gauss-Hermite quadrature, which again reproduces the per-MPDU
  /// delivered distribution exactly up to table/quadrature error.
  kAggregate,
};

struct LinkConfig {
  MacTiming timing{};
  AmpduPolicy ampdu{};
  MpduFormat mpdu{};
  phy::ChannelConfig channel{};
  phy::ErrorModelConfig error{};
  double meter_window_s{0.5};  ///< throughput sampling window (infinite = no sampling)
  /// Per-MPDU SNR mismatch [dB, 1-sigma]: OFDM frequency selectivity and
  /// symbol-timing jitter decorrelate subframe fates within an aggregate
  /// and soften the PER-vs-distance cliff of fixed rates.
  double per_mpdu_snr_jitter_db{2.0};
  /// Subframe-fate sampling path; kPerMpdu keeps bit-compatibility with
  /// the original exchange-by-exchange draws, kAggregate is the
  /// table-driven fast path (~10x+ on a saturated link-second).
  LinkFidelity fidelity{LinkFidelity::kPerMpdu};
  /// SNR grid of the kAggregate lookup tables.
  phy::PerTableConfig per_table{};
  /// Optional cross-simulator PER-table cache (kAggregate only). When
  /// set, simulators use it instead of a private cache, so a parallel
  /// Monte-Carlo fan-out pays table construction once per sweep instead
  /// of once per trial. Must have been built by make_shared_per_tables
  /// on a config with identical `error`, `channel.spatial_correlation`
  /// and `per_table` — mismatched caches answer with wrong PERs.
  std::shared_ptr<phy::PerTableCache> shared_tables{};
};

/// A thread-safe PER-table cache matching `cfg`, for LinkConfig::shared_tables.
[[nodiscard]] std::shared_ptr<phy::PerTableCache> make_shared_per_tables(const LinkConfig& cfg);

/// Why an incomplete run ended — the failure taxonomy chaos campaigns
/// use to tell "starved by outage" from "out of range" from "the clock
/// simply ran out". Only meaningful when completed == false.
enum class IncompleteReason : std::uint8_t {
  kNone,               ///< completed, or incomplete with no finer diagnosis
  kTimeLimit,          ///< the transfer hit max_duration_s while the link was live
  kOutOfRange,         ///< geometry stayed beyond the rate curve's range
  kStarvedByOutage,    ///< outage / injected blackout held the link down
  kSessionSetupFailed  ///< repeated session-setup (attach) failures
};

/// Stable log tag for an IncompleteReason.
[[nodiscard]] constexpr const char* to_string(IncompleteReason r) noexcept {
  switch (r) {
    case IncompleteReason::kTimeLimit:
      return "time-limit";
    case IncompleteReason::kOutOfRange:
      return "out-of-range";
    case IncompleteReason::kStarvedByOutage:
      return "starved-by-outage";
    case IncompleteReason::kSessionSetupFailed:
      return "session-setup-failed";
    case IncompleteReason::kNone:
      break;
  }
  return "none";
}

/// Result of a timed run or a fixed-size transfer.
struct LinkRunResult {
  double duration_s{0.0};
  std::uint64_t payload_bits_delivered{0};
  std::uint64_t mpdus_attempted{0};
  std::uint64_t mpdus_delivered{0};
  std::uint64_t exchanges{0};
  std::vector<ThroughputSample> samples;
  /// Cumulative delivered-data curve (time [s], delivered [MB]) sampled
  /// per meter window — the exact series of the paper's Figure 1.
  std::vector<ThroughputSample> transfer_curve_mb;
  bool completed{true};  ///< false if a transfer hit the time limit
  /// Failure taxonomy for incomplete runs (kNone when completed).
  IncompleteReason incomplete_reason{IncompleteReason::kNone};

  [[nodiscard]] double mean_goodput_mbps() const noexcept {
    return duration_s > 0.0 ? static_cast<double>(payload_bits_delivered) / duration_s / 1e6
                            : 0.0;
  }
  [[nodiscard]] double loss_rate() const noexcept {
    return mpdus_attempted > 0
               ? 1.0 - static_cast<double>(mpdus_delivered) / static_cast<double>(mpdus_attempted)
               : 0.0;
  }
};

class LinkSimulator {
 public:
  /// The controller must outlive the simulator.
  LinkSimulator(LinkConfig cfg, RateController& rate_control, std::uint64_t seed);

  /// Run saturated (always-backlogged) traffic for `duration_s`.
  LinkRunResult run_saturated(double duration_s, const GeometryFn& geometry);

  /// Deliver exactly `payload_bytes` of application data; stops early at
  /// `max_duration_s` (completed=false). Geometry may move the endpoints.
  LinkRunResult run_transfer(std::uint64_t payload_bytes, double max_duration_s,
                             const GeometryFn& geometry);

  [[nodiscard]] const LinkConfig& config() const noexcept { return cfg_; }

 private:
  LinkRunResult run_internal(std::uint64_t payload_bytes_limit, double duration_s,
                             const GeometryFn& geometry);
  /// subframes_for(...) memoized on (mcs_index, backlog) — valid while
  /// cfg_ is constant, which it is for the simulator's lifetime.
  [[nodiscard]] int cached_subframes(int mcs_index, int backlog);
  /// exchange_duration_s(...) memoized on (mcs_index, n, retry_stage).
  [[nodiscard]] double cached_exchange_duration(int mcs_index, int n, int retry_stage);
  /// The kAggregate PER table for data MPDUs at `m` / the Block ACK.
  [[nodiscard]] const phy::PerTable& data_table(const phy::McsInfo& m);
  [[nodiscard]] const phy::PerTable& ba_table();

  LinkConfig cfg_;
  RateController& rc_;
  phy::LinkChannel channel_;
  phy::ErrorModel error_model_;
  sim::Rng rng_;
  phy::PerTableCache tables_;          ///< private fallback when no shared cache
  phy::PerTableCache* table_src_;      ///< cfg_.shared_tables.get() or &tables_
  std::array<const phy::PerTable*, phy::kNumMcs> data_tables_{};
  const phy::PerTable* ba_table_{nullptr};
  std::vector<std::int16_t> subframes_cache_;  ///< (mcs, backlog) -> n; -1 unset
  std::vector<double> exchange_cache_;         ///< (mcs, n, retry) -> s; <0 unset
};

}  // namespace skyferry::mac
