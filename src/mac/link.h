// Saturated-link simulator: drives DCF A-MPDU/Block-ACK exchanges over a
// time-evolving aerial channel under a rate controller, with the link
// geometry (distance, relative speed) supplied as a function of time.
// This is the engine behind the paper's iperf-style throughput
// measurements (Figs. 5-7) and the full-stack variant of Fig. 1.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mac/ampdu.h"
#include "mac/rate_control.h"
#include "phy/channel.h"
#include "phy/per.h"

namespace skyferry::mac {

/// Link geometry at a time instant.
struct Geometry {
  double distance_m{0.0};
  double relative_speed_mps{0.0};
};
using GeometryFn = std::function<Geometry(double t_s)>;

/// Fixed geometry helper.
[[nodiscard]] GeometryFn static_geometry(double distance_m, double relative_speed_mps = 0.0);

/// One windowed throughput sample.
struct ThroughputSample {
  double t_s{0.0};        ///< window end time
  double mbps{0.0};       ///< goodput over the window
};

struct LinkConfig {
  MacTiming timing{};
  AmpduPolicy ampdu{};
  MpduFormat mpdu{};
  phy::ChannelConfig channel{};
  phy::ErrorModelConfig error{};
  double meter_window_s{0.5};  ///< throughput sampling window
  /// Per-MPDU SNR mismatch [dB, 1-sigma]: OFDM frequency selectivity and
  /// symbol-timing jitter decorrelate subframe fates within an aggregate
  /// and soften the PER-vs-distance cliff of fixed rates.
  double per_mpdu_snr_jitter_db{2.0};
};

/// Result of a timed run or a fixed-size transfer.
struct LinkRunResult {
  double duration_s{0.0};
  std::uint64_t payload_bits_delivered{0};
  std::uint64_t mpdus_attempted{0};
  std::uint64_t mpdus_delivered{0};
  std::uint64_t exchanges{0};
  std::vector<ThroughputSample> samples;
  /// Cumulative delivered-data curve (time [s], delivered [MB]) sampled
  /// per meter window — the exact series of the paper's Figure 1.
  std::vector<ThroughputSample> transfer_curve_mb;
  bool completed{true};  ///< false if a transfer hit the time limit

  [[nodiscard]] double mean_goodput_mbps() const noexcept {
    return duration_s > 0.0 ? static_cast<double>(payload_bits_delivered) / duration_s / 1e6
                            : 0.0;
  }
  [[nodiscard]] double loss_rate() const noexcept {
    return mpdus_attempted > 0
               ? 1.0 - static_cast<double>(mpdus_delivered) / static_cast<double>(mpdus_attempted)
               : 0.0;
  }
};

class LinkSimulator {
 public:
  /// The controller must outlive the simulator.
  LinkSimulator(LinkConfig cfg, RateController& rate_control, std::uint64_t seed);

  /// Run saturated (always-backlogged) traffic for `duration_s`.
  LinkRunResult run_saturated(double duration_s, const GeometryFn& geometry);

  /// Deliver exactly `payload_bytes` of application data; stops early at
  /// `max_duration_s` (completed=false). Geometry may move the endpoints.
  LinkRunResult run_transfer(std::uint64_t payload_bytes, double max_duration_s,
                             const GeometryFn& geometry);

  [[nodiscard]] const LinkConfig& config() const noexcept { return cfg_; }

 private:
  LinkRunResult run_internal(std::uint64_t payload_bytes_limit, double duration_s,
                             const GeometryFn& geometry);

  LinkConfig cfg_;
  RateController& rc_;
  phy::LinkChannel channel_;
  phy::ErrorModel error_model_;
  sim::Rng rng_;
};

}  // namespace skyferry::mac
