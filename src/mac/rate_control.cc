#include "mac/rate_control.h"

#include <algorithm>
#include <cassert>

namespace skyferry::mac {

std::string FixedMcs::name() const { return "fixed-mcs" + std::to_string(mcs_); }

ArfRate::ArfRate(ArfConfig cfg, phy::ChannelWidth width, phy::GuardInterval gi) : cfg_(cfg) {
  // Ladder: every MCS ordered by PHY rate; single-stream first on ties so
  // step-down lands on the robust STBC rung.
  ladder_.resize(phy::kNumMcs);
  for (int i = 0; i < phy::kNumMcs; ++i) ladder_[static_cast<std::size_t>(i)] = i;
  std::stable_sort(ladder_.begin(), ladder_.end(), [&](int a, int b) {
    const double ra = phy::mcs(a).phy_rate_bps(width, gi);
    const double rb = phy::mcs(b).phy_rate_bps(width, gi);
    if (ra != rb) return ra < rb;
    return phy::mcs(a).spatial_streams < phy::mcs(b).spatial_streams;
  });
}

int ArfRate::select_mcs(double) { return ladder_[static_cast<std::size_t>(rung_)]; }

void ArfRate::report(double, const TxFeedback& fb) {
  const bool success =
      fb.attempted > 0 &&
      static_cast<double>(fb.delivered) >= cfg_.success_fraction * fb.attempted;
  ++since_up_;
  if (success) {
    ++success_streak_;
    failure_streak_ = 0;
  } else {
    ++failure_streak_;
    success_streak_ = 0;
  }

  if (failure_streak_ >= cfg_.down_after_failures) {
    if (rung_ > 0) --rung_;
    failure_streak_ = 0;
    since_up_ = 0;
    return;
  }
  // Step up on a success streak, or probe upward periodically (classic
  // ARF timer) — the probe is what keeps re-testing a broken rung.
  if ((success_streak_ >= cfg_.up_after_successes ||
       (since_up_ >= cfg_.probe_timeout_exchanges && success)) &&
      rung_ + 1 < static_cast<int>(ladder_.size())) {
    ++rung_;
    success_streak_ = 0;
    since_up_ = 0;
  }
}

MinstrelHt::MinstrelHt(MinstrelConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  for (int i = 0; i < phy::kNumMcs; ++i) {
    ideal_goodput_[static_cast<std::size_t>(i)] = ideal_goodput_bps(
        cfg_.timing, cfg_.ampdu, cfg_.mpdu, phy::mcs(i), cfg_.width, cfg_.gi);
  }
  // Start conservatively on the lowest allowed rate, as drivers do before
  // the first stats interval elapses.
  for (int i = 0; i < phy::kNumMcs; ++i) {
    if (cfg_.allowed[static_cast<std::size_t>(i)]) {
      best_ = i;
      break;
    }
  }
}

double MinstrelHt::probability(int mcs_index) const noexcept {
  return stats_[static_cast<std::size_t>(mcs_index)].ewma_prob;
}

double MinstrelHt::expected_goodput(int mcs_index, double prob) const noexcept {
  // minstrel_ht discards rates with very low success probability: the
  // retransmission cost dominates and the estimate is unreliable.
  if (prob < 0.1) return 0.0;
  return ideal_goodput_[static_cast<std::size_t>(mcs_index)] * prob;
}

int MinstrelHt::random_sample_rate() noexcept {
  // Uniform over the allowed mask.
  int allowed_count = 0;
  for (bool a : cfg_.allowed) allowed_count += a ? 1 : 0;
  assert(allowed_count > 0);
  auto pick = static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(allowed_count)));
  for (int i = 0; i < phy::kNumMcs; ++i) {
    if (!cfg_.allowed[static_cast<std::size_t>(i)]) continue;
    if (pick-- == 0) return i;
  }
  return best_;
}

void MinstrelHt::update_stats(double now_s) {
  for (auto& rs : stats_) {
    if (rs.interval_attempted > 0) {
      const double p = static_cast<double>(rs.interval_delivered) /
                       static_cast<double>(rs.interval_attempted);
      rs.ewma_prob = (rs.ewma_prob < 0.0)
                         ? p
                         : cfg_.ewma_weight * rs.ewma_prob + (1.0 - cfg_.ewma_weight) * p;
    }
    rs.interval_attempted = 0;
    rs.interval_delivered = 0;
  }
  // Re-elect the best-expected-goodput rate among measured, allowed rates.
  double best_gp = -1.0;
  for (int i = 0; i < phy::kNumMcs; ++i) {
    const auto& rs = stats_[static_cast<std::size_t>(i)];
    if (!cfg_.allowed[static_cast<std::size_t>(i)] || rs.ewma_prob < 0.0) continue;
    const double gp = expected_goodput(i, rs.ewma_prob);
    if (gp > best_gp) {
      best_gp = gp;
      best_ = i;
    }
  }
  // If everything measured has collapsed (gp==0 everywhere), fall back to
  // the lowest allowed rate — the classic minstrel loss-burst behavior.
  if (best_gp <= 0.0) {
    for (int i = 0; i < phy::kNumMcs; ++i) {
      if (cfg_.allowed[static_cast<std::size_t>(i)]) {
        best_ = i;
        break;
      }
    }
  }
  next_update_t_ = now_s + cfg_.update_interval_s;
}

int MinstrelHt::select_mcs(double now_s) {
  if (now_s >= next_update_t_) update_stats(now_s);
  ++tx_counter_;
  if (cfg_.sample_period > 0 && tx_counter_ % cfg_.sample_period == 0) {
    return random_sample_rate();
  }
  return best_;
}

void MinstrelHt::report(double now_s, const TxFeedback& fb) {
  auto& rs = stats_[static_cast<std::size_t>(fb.mcs_index)];
  rs.interval_attempted += fb.attempted;
  rs.interval_delivered += fb.delivered;
  if (now_s >= next_update_t_) update_stats(now_s);
}

}  // namespace skyferry::mac
