// PHY rate control. The paper's central MAC finding (Fig. 6) is that the
// driver's auto-rate algorithm collapses on the fast-varying aerial
// channel, while a well-chosen *fixed* MCS doubles throughput. We model
// both: FixedMcs, and MinstrelHt — a faithful-enough reimplementation of
// the Linux minstrel_ht statistics loop (EWMA success probabilities,
// periodic best-rate re-election, random sampling) whose staleness
// relative to the channel coherence time is what loses the throughput.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mac/ampdu.h"
#include "phy/mcs.h"
#include "sim/rng.h"

namespace skyferry::mac {

/// Per-A-MPDU transmit feedback delivered to the controller.
struct TxFeedback {
  int mcs_index{0};
  int attempted{0};  ///< subframes in the aggregate
  int delivered{0};  ///< subframes acked
};

/// Interface for per-link rate controllers.
class RateController {
 public:
  virtual ~RateController() = default;

  /// MCS index to use for the next A-MPDU at simulation time `now_s`.
  [[nodiscard]] virtual int select_mcs(double now_s) = 0;

  /// Feedback after an exchange completes.
  virtual void report(double now_s, const TxFeedback& fb) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Pins one MCS forever (the paper's fixed-PHY-rate experiments).
class FixedMcs final : public RateController {
 public:
  explicit FixedMcs(int mcs_index) noexcept : mcs_(mcs_index) {}

  [[nodiscard]] int select_mcs(double) override { return mcs_; }
  void report(double, const TxFeedback&) override {}
  [[nodiscard]] std::string name() const override;

 private:
  int mcs_;
};

/// Minstrel-HT-style auto rate.
struct MinstrelConfig {
  double update_interval_s{0.1};  ///< Linux default: 100 ms stats window
  double ewma_weight{0.75};       ///< weight of the *old* estimate
  int sample_period{16};          ///< one sampling tx every N transmissions
  /// Rates the controller may use (driver rate mask). Default: all 16.
  std::array<bool, phy::kNumMcs> allowed{};
  MacTiming timing{};
  AmpduPolicy ampdu{};
  MpduFormat mpdu{};
  phy::ChannelWidth width{phy::ChannelWidth::kCw40MHz};
  phy::GuardInterval gi{phy::GuardInterval::kShort400ns};

  MinstrelConfig() { allowed.fill(true); }
};

/// Vendor-firmware-style ARF (Auto Rate Fallback) — the shape of rate
/// control the paper's Ralink RT3572 actually ran. The rate ladder is
/// all 16 MCS ordered by PHY rate, which interleaves the two-stream SDM
/// rates among the single-stream ones; on the rank-poor aerial channel
/// the SDM rungs are broken, so the periodic step-up probes and the
/// fall-backs they trigger burn a large share of airtime. This is the
/// mechanism behind the paper's Fig. 6 finding that a good *fixed* MCS
/// doubles the auto-rate throughput.
struct ArfConfig {
  int up_after_successes{5};    ///< consecutive successes to step up
  int down_after_failures{3};   ///< consecutive failures to step down
  int probe_timeout_exchanges{8};  ///< periodic up-probe even while stable
  /// Exchange counts as a success when at least this fraction of the
  /// aggregate was delivered.
  double success_fraction{0.5};
};

class ArfRate final : public RateController {
 public:
  explicit ArfRate(ArfConfig cfg = {}, phy::ChannelWidth width = phy::ChannelWidth::kCw40MHz,
                   phy::GuardInterval gi = phy::GuardInterval::kShort400ns);

  [[nodiscard]] int select_mcs(double now_s) override;
  void report(double now_s, const TxFeedback& fb) override;
  [[nodiscard]] std::string name() const override { return "arf-vendor"; }

  /// Current rung on the rate ladder (for tests).
  [[nodiscard]] int rung() const noexcept { return rung_; }
  [[nodiscard]] int ladder_size() const noexcept { return static_cast<int>(ladder_.size()); }
  /// MCS index at a ladder rung.
  [[nodiscard]] int mcs_at(int rung) const noexcept { return ladder_[static_cast<std::size_t>(rung)]; }

 private:
  ArfConfig cfg_;
  std::vector<int> ladder_;  ///< MCS indices ordered by PHY rate
  int rung_{0};
  int success_streak_{0};
  int failure_streak_{0};
  int since_up_{0};
};

class MinstrelHt final : public RateController {
 public:
  MinstrelHt(MinstrelConfig cfg, std::uint64_t seed);

  [[nodiscard]] int select_mcs(double now_s) override;
  void report(double now_s, const TxFeedback& fb) override;
  [[nodiscard]] std::string name() const override { return "minstrel-ht"; }

  /// Current EWMA delivery probability estimate for an MCS (for tests).
  [[nodiscard]] double probability(int mcs_index) const noexcept;
  /// Currently elected best-throughput MCS.
  [[nodiscard]] int best_mcs() const noexcept { return best_; }

 private:
  void update_stats(double now_s);
  [[nodiscard]] double expected_goodput(int mcs_index, double prob) const noexcept;
  [[nodiscard]] int random_sample_rate() noexcept;

  MinstrelConfig cfg_;
  sim::Rng rng_;

  struct RateStats {
    double ewma_prob{-1.0};  ///< -1 = never measured
    int interval_attempted{0};
    int interval_delivered{0};
  };
  std::array<RateStats, phy::kNumMcs> stats_{};
  std::array<double, phy::kNumMcs> ideal_goodput_{};
  double next_update_t_{0.0};
  int best_{0};
  int tx_counter_{0};
};

}  // namespace skyferry::mac
