#include "mac/timing.h"

#include <algorithm>

namespace skyferry::mac {

int MacTiming::cw_for_stage(int stage) const noexcept {
  long cw = cw_min;
  for (int i = 0; i < stage; ++i) {
    cw = cw * 2 + 1;
    if (cw >= cw_max) return cw_max;
  }
  return static_cast<int>(std::min<long>(cw, cw_max));
}

double MacTiming::mean_backoff_s(int stage) const noexcept {
  return slot_s * static_cast<double>(cw_for_stage(stage)) / 2.0;
}

double block_ack_duration_s(phy::ChannelWidth w) noexcept {
  // Compressed BlockAck MPDU: 32 bytes, basic MCS0, long GI.
  return phy::frame_duration_s(phy::mcs(0), w, phy::GuardInterval::kLong800ns, 32 * 8);
}

double ack_duration_s(phy::ChannelWidth w) noexcept {
  return phy::frame_duration_s(phy::mcs(0), w, phy::GuardInterval::kLong800ns, 14 * 8);
}

}  // namespace skyferry::mac
