// IEEE 802.11n MAC timing constants (5 GHz / OFDM PHY) and DCF math.
#pragma once

#include "phy/mcs.h"

namespace skyferry::mac {

/// 802.11 OFDM (5 GHz) timing parameters.
struct MacTiming {
  double slot_s{9e-6};
  double sifs_s{16e-6};
  int cw_min{15};
  int cw_max{1023};
  int retry_limit{7};

  [[nodiscard]] double difs_s() const noexcept { return sifs_s + 2.0 * slot_s; }

  /// Expected backoff duration [s] for retry stage `stage` (0-based):
  /// mean of U[0, CW] slots with CW = min((cw_min+1)*2^stage - 1, cw_max).
  [[nodiscard]] double mean_backoff_s(int stage) const noexcept;

  /// Contention-window size for a retry stage.
  [[nodiscard]] int cw_for_stage(int stage) const noexcept;
};

/// Duration [s] of a compressed Block ACK frame (32 bytes) sent at the
/// basic rate (we use MCS0 of the operating width, long GI, as drivers do).
[[nodiscard]] double block_ack_duration_s(phy::ChannelWidth w) noexcept;

/// Duration [s] of a normal ACK (14 bytes) at basic rate.
[[nodiscard]] double ack_duration_s(phy::ChannelWidth w) noexcept;

}  // namespace skyferry::mac
