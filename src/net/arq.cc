#include "net/arq.h"

#include <algorithm>

namespace skyferry::net {

ArqSender::ArqSender(ArqConfig cfg, std::uint32_t total_packets, FlowId flow) noexcept
    : cfg_(cfg), total_(total_packets), flow_(flow), state_(total_packets, State::kUnsent) {}

std::uint32_t ArqSender::in_flight() const noexcept {
  std::uint32_t n = 0;
  for (State s : state_) n += (s == State::kInFlight) ? 1 : 0;
  return n;
}

std::optional<Packet> ArqSender::next_packet(double now_s) {
  if (complete()) return std::nullopt;
  if (in_flight() >= cfg_.window) return std::nullopt;

  auto make = [&](std::uint32_t seq, bool retx) {
    state_[seq] = State::kInFlight;
    ++transmissions_;
    if (retx) ++retransmissions_;
    Packet p;
    p.flow = flow_;
    p.seq = seq;
    p.payload_bytes = cfg_.datagram_bytes;
    p.created_t_s = now_s;
    return p;
  };

  // Gaps first (selective repeat).
  for (std::uint32_t s = 0; s < next_new_; ++s) {
    if (state_[s] == State::kNacked) return make(s, true);
  }
  if (next_new_ < total_) {
    const std::uint32_t s = next_new_++;
    return make(s, false);
  }
  return std::nullopt;
}

void ArqSender::on_ack(const SelectiveAck& ack) {
  const std::uint32_t cum = std::min(ack.cumulative, total_);
  for (std::uint32_t s = 0; s < cum; ++s) {
    if (state_[s] != State::kAcked) {
      state_[s] = State::kAcked;
      ++acked_count_;
    }
  }
  for (std::uint32_t i = 0; i < ack.window_bitmap.size(); ++i) {
    const std::uint32_t s = cum + i;
    if (s >= total_) break;
    if (ack.window_bitmap[i]) {
      if (state_[s] != State::kAcked) {
        state_[s] = State::kAcked;
        ++acked_count_;
      }
    } else if (state_[s] == State::kInFlight && s < next_new_) {
      // Reported missing: schedule a retransmission.
      state_[s] = State::kNacked;
    }
  }
}

bool ArqSender::complete() const noexcept { return acked_count_ == total_; }

void ArqSender::on_timeout() noexcept {
  for (std::uint32_t s = 0; s < next_new_; ++s) {
    if (state_[s] == State::kInFlight) state_[s] = State::kNacked;
  }
}

ArqSenderState ArqSender::checkpoint() const {
  ArqSenderState st;
  st.total = total_;
  st.acked.resize(total_, false);
  for (std::uint32_t s = 0; s < total_; ++s) st.acked[s] = (state_[s] == State::kAcked);
  st.frontier = next_new_;
  st.transmissions = transmissions_;
  st.retransmissions = retransmissions_;
  return st;
}

ArqSender ArqSender::resume(ArqConfig cfg, const ArqSenderState& st, FlowId flow) {
  ArqSender s(cfg, st.total, flow);
  const std::uint32_t n = std::min<std::uint32_t>(st.total,
                                                  static_cast<std::uint32_t>(st.acked.size()));
  for (std::uint32_t i = 0; i < n; ++i) {
    if (st.acked[i]) {
      s.state_[i] = State::kAcked;
      ++s.acked_count_;
    }
  }
  // Unacked packets below the old send frontier were sent at least once
  // but never confirmed: retransmit them. Beyond the frontier stays fresh.
  s.next_new_ = std::min(st.frontier, st.total);
  for (std::uint32_t i = 0; i < s.next_new_; ++i) {
    if (s.state_[i] == State::kUnsent) s.state_[i] = State::kNacked;
  }
  s.transmissions_ = st.transmissions;
  s.retransmissions_ = st.retransmissions;
  return s;
}

ArqReceiver::ArqReceiver(ArqConfig cfg, std::uint32_t total_packets) noexcept
    : cfg_(cfg), total_(total_packets), received_(total_packets, false) {}

SelectiveAck ArqReceiver::make_ack() const {
  SelectiveAck ack;
  ack.cumulative = cumulative_;
  const std::uint32_t span = std::min(cfg_.window, total_ - cumulative_);
  ack.window_bitmap.reserve(span);
  for (std::uint32_t i = 0; i < span; ++i) ack.window_bitmap.push_back(received_[cumulative_ + i]);
  return ack;
}

ArqReceiverState ArqReceiver::checkpoint() const {
  ArqReceiverState st;
  st.total = total_;
  st.received = received_;
  st.duplicates = duplicates_;
  return st;
}

ArqReceiver ArqReceiver::resume(ArqConfig cfg, const ArqReceiverState& st) {
  ArqReceiver r(cfg, st.total);
  const std::uint32_t n = std::min<std::uint32_t>(st.total,
                                                  static_cast<std::uint32_t>(st.received.size()));
  for (std::uint32_t i = 0; i < n; ++i) {
    if (st.received[i]) {
      r.received_[i] = true;
      ++r.received_count_;
    }
  }
  while (r.cumulative_ < r.total_ && r.received_[r.cumulative_]) ++r.cumulative_;
  r.duplicates_ = st.duplicates;
  return r;
}

std::optional<SelectiveAck> ArqReceiver::on_packet(const Packet& p) {
  if (p.seq >= total_) return std::nullopt;
  if (received_[p.seq]) {
    ++duplicates_;
  } else {
    received_[p.seq] = true;
    ++received_count_;
    while (cumulative_ < total_ && received_[cumulative_]) ++cumulative_;
  }
  if (++since_ack_ >= cfg_.ack_every || complete()) {
    since_ack_ = 0;
    return make_ack();
  }
  return std::nullopt;
}

}  // namespace skyferry::net
