// Selective-repeat ARQ for end-to-end batch delivery.
//
// The MAC's Block ACK recovers per-hop losses, but the mission needs a
// transport-level guarantee that every image datagram eventually lands
// (a half-delivered image is useless to the rescuers). This is a
// windowed selective-repeat layer over the datagram link: the sender
// streams the batch, the receiver returns selective-ack bitmaps, and
// gaps are retransmitted until the batch completes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"

namespace skyferry::net {

/// Selective acknowledgment: everything below `cumulative` received,
/// plus the bitmap for the window starting there.
struct SelectiveAck {
  std::uint32_t cumulative{0};
  std::vector<bool> window_bitmap;
};

struct ArqConfig {
  std::uint32_t window{64};          ///< max unacked packets in flight
  std::uint32_t datagram_bytes{1470};
  /// Receiver emits an ack every this many delivered packets.
  std::uint32_t ack_every{16};
};

/// Frozen sender-side transfer progress: which packets the peer has
/// confirmed. Packets in flight at checkpoint time are *not* recorded as
/// such — a restore treats them as lost (the crash/outage that forced the
/// checkpoint also killed whatever was in the air).
struct ArqSenderState {
  std::uint32_t total{0};
  std::vector<bool> acked;
  /// Highest sequence ever handed to the link plus one; packets at or
  /// beyond it were never sent and resume as fresh transmissions.
  std::uint32_t frontier{0};
  std::uint64_t transmissions{0};
  std::uint64_t retransmissions{0};
};

/// Frozen receiver-side state: the received bitmap plus counters.
struct ArqReceiverState {
  std::uint32_t total{0};
  std::vector<bool> received;
  std::uint64_t duplicates{0};
};

class ArqSender {
 public:
  /// A batch of `total_packets` datagrams, each `cfg.datagram_bytes`.
  ArqSender(ArqConfig cfg, std::uint32_t total_packets, FlowId flow = 0) noexcept;

  /// Next packet to transmit, if the window allows: retransmissions of
  /// known gaps first, then new data. Returns nullopt when the window is
  /// full or the batch is fully acked.
  std::optional<Packet> next_packet(double now_s);

  /// Process a selective ack from the receiver.
  void on_ack(const SelectiveAck& ack);

  /// Ack-progress stall: declare everything in flight lost so it is
  /// retransmitted (a selective-repeat retransmission timer).
  void on_timeout() noexcept;

  /// Snapshot the resumable part of the transfer (acked set + counters).
  [[nodiscard]] ArqSenderState checkpoint() const;

  /// Rebuild a sender mid-batch from a checkpoint: acked packets stay
  /// acked, everything else (including the in-flight set at checkpoint
  /// time) becomes eligible for (re)transmission.
  static ArqSender resume(ArqConfig cfg, const ArqSenderState& st, FlowId flow = 0);

  [[nodiscard]] bool complete() const noexcept;
  [[nodiscard]] std::uint32_t total_packets() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t transmissions() const noexcept { return transmissions_; }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  [[nodiscard]] std::uint32_t in_flight() const noexcept;

 private:
  enum class State : std::uint8_t { kUnsent, kInFlight, kAcked, kNacked };

  ArqConfig cfg_;
  std::uint32_t total_;
  FlowId flow_;
  std::vector<State> state_;
  std::uint32_t next_new_{0};
  std::uint32_t acked_count_{0};
  std::uint64_t transmissions_{0};
  std::uint64_t retransmissions_{0};
};

class ArqReceiver {
 public:
  explicit ArqReceiver(ArqConfig cfg, std::uint32_t total_packets) noexcept;

  /// Record a delivered packet; returns an ack to send back when due.
  std::optional<SelectiveAck> on_packet(const Packet& p);

  /// Force an ack (receiver timer).
  [[nodiscard]] SelectiveAck make_ack() const;

  /// Snapshot / rebuild for resumable transfers (mirrors ArqSender).
  [[nodiscard]] ArqReceiverState checkpoint() const;
  static ArqReceiver resume(ArqConfig cfg, const ArqReceiverState& st);

  [[nodiscard]] bool complete() const noexcept { return received_count_ == total_; }
  [[nodiscard]] std::uint32_t received_count() const noexcept { return received_count_; }
  /// Application bytes landed so far (partial delivery is real delivery).
  [[nodiscard]] double delivered_bytes() const noexcept {
    return static_cast<double>(received_count_) * static_cast<double>(cfg_.datagram_bytes);
  }
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return duplicates_; }

 private:
  ArqConfig cfg_;
  std::uint32_t total_;
  std::vector<bool> received_;
  std::uint32_t cumulative_{0};
  std::uint32_t received_count_{0};
  std::uint32_t since_ack_{0};
  std::uint64_t duplicates_{0};
};

}  // namespace skyferry::net
