#include "net/flow.h"

#include <algorithm>
#include <cmath>

namespace skyferry::net {

BatchSource::BatchSource(FlowId flow, DataBatch batch, std::uint32_t datagram_bytes) noexcept
    : flow_(flow), batch_(batch), datagram_bytes_(datagram_bytes) {
  packets_per_image_ = static_cast<std::uint32_t>(
      std::ceil(batch_.image_bytes / static_cast<double>(datagram_bytes_)));
  if (packets_per_image_ == 0) packets_per_image_ = 1;
  total_packets_ = packets_per_image_ * batch_.num_images;
}

std::size_t BatchSource::load_into(PacketQueue& q, double now_s) {
  std::size_t loaded = 0;
  std::uint32_t seq = 0;
  for (std::uint32_t img = 0; img < batch_.num_images; ++img) {
    for (std::uint32_t k = 0; k < packets_per_image_; ++k) {
      Packet p;
      p.flow = flow_;
      p.seq = seq++;
      p.payload_bytes = datagram_bytes_;
      p.created_t_s = now_s;
      p.image_index = img;
      if (!q.push(p)) return loaded;
      ++loaded;
    }
  }
  return loaded;
}

IperfSource::IperfSource(FlowId flow, std::uint32_t datagram_bytes, double target_bps) noexcept
    : flow_(flow), datagram_bytes_(datagram_bytes), target_bps_(target_bps) {}

void IperfSource::pump(PacketQueue& q, double now_s, std::size_t backlog) {
  auto make = [&] {
    Packet p;
    p.flow = flow_;
    p.seq = seq_++;
    p.payload_bytes = datagram_bytes_;
    p.created_t_s = now_s;
    return p;
  };

  if (target_bps_ <= 0.0) {
    while (q.size() < backlog) {
      if (!q.push(make())) break;
    }
    return;
  }

  // Paced: accumulate byte credit with elapsed time.
  credit_bytes_ += target_bps_ / 8.0 * std::max(now_s - last_t_, 0.0);
  last_t_ = now_s;
  while (credit_bytes_ >= static_cast<double>(datagram_bytes_)) {
    if (!q.push(make())) break;
    credit_bytes_ -= static_cast<double>(datagram_bytes_);
  }
}

void FlowSink::deliver(const Packet& p, double now_s) {
  if (p.seq >= seen_.size()) seen_.resize(p.seq + 1, false);
  if (seen_[p.seq]) {
    ++dup_;
    return;
  }
  seen_[p.seq] = true;
  ++unique_;
  bytes_ += p.payload_bytes;
  high_seq_ = std::max(high_seq_, p.seq + 1);
  last_t_ = now_s;
}

std::uint32_t FlowSink::complete_images(std::uint32_t packets_per_image) const noexcept {
  if (packets_per_image == 0) return 0;
  std::uint32_t complete = 0;
  std::uint32_t run = 0;
  std::uint32_t idx = 0;
  for (std::uint32_t s = 0; s < high_seq_; ++s) {
    if (seen_[s]) {
      ++run;
    }
    ++idx;
    if (idx == packets_per_image) {
      if (run == packets_per_image) ++complete;
      run = 0;
      idx = 0;
    }
  }
  return complete;
}

}  // namespace skyferry::net
