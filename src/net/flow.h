// Traffic sources and sinks.
//
// BatchSource packetizes a collected image batch (the paper's Mdata) into
// UDP-sized datagrams; IperfSource generates saturated or rate-limited
// test traffic like the iperf tool used in the paper's field measurements;
// FlowSink tracks in-order delivery, duplicates and per-image completion.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/queue.h"

namespace skyferry::net {

/// Packetizes a DataBatch into a queue. Every packet knows which image it
/// belongs to, so partial deliveries can report "70% of Mdata" like the
/// paper's Figure 2.
class BatchSource {
 public:
  BatchSource(FlowId flow, DataBatch batch, std::uint32_t datagram_bytes = 1470) noexcept;

  /// Enqueue the entire batch. Returns packets enqueued.
  std::size_t load_into(PacketQueue& q, double now_s);

  [[nodiscard]] const DataBatch& batch() const noexcept { return batch_; }
  [[nodiscard]] std::uint32_t total_packets() const noexcept { return total_packets_; }
  [[nodiscard]] std::uint32_t datagram_bytes() const noexcept { return datagram_bytes_; }

 private:
  FlowId flow_;
  DataBatch batch_;
  std::uint32_t datagram_bytes_;
  std::uint32_t total_packets_;
  std::uint32_t packets_per_image_;
};

/// iperf-style UDP generator: fills a queue either saturated (keep
/// `backlog` packets queued) or paced at a target bitrate.
class IperfSource {
 public:
  IperfSource(FlowId flow, std::uint32_t datagram_bytes = 1470,
              double target_bps = 0.0 /* 0 = saturated */) noexcept;

  /// Top up `q` given the current time; call before each MAC service.
  void pump(PacketQueue& q, double now_s, std::size_t backlog = 64);

  [[nodiscard]] std::uint64_t generated() const noexcept { return seq_; }

 private:
  FlowId flow_;
  std::uint32_t datagram_bytes_;
  double target_bps_;
  std::uint32_t seq_{0};
  double credit_bytes_{0.0};
  double last_t_{0.0};
};

/// Receiver-side accounting.
class FlowSink {
 public:
  /// Record a delivered packet. Duplicates (same seq) are counted but not
  /// double-credited.
  void deliver(const Packet& p, double now_s);

  [[nodiscard]] std::uint64_t unique_packets() const noexcept { return unique_; }
  [[nodiscard]] std::uint64_t duplicate_packets() const noexcept { return dup_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] double last_delivery_t_s() const noexcept { return last_t_; }

  /// Number of images for which every datagram arrived, given the
  /// packets-per-image of the source.
  [[nodiscard]] std::uint32_t complete_images(std::uint32_t packets_per_image) const noexcept;

  /// Highest sequence seen + 1 (0 when nothing arrived).
  [[nodiscard]] std::uint32_t highest_seq_plus_one() const noexcept { return high_seq_; }

 private:
  std::vector<bool> seen_;
  std::uint64_t unique_{0};
  std::uint64_t dup_{0};
  std::uint64_t bytes_{0};
  std::uint32_t high_seq_{0};
  double last_t_{0.0};
};

}  // namespace skyferry::net
