#include "net/meter.h"

namespace skyferry::net {

void ThroughputMeter::record(double t_s, std::uint64_t bytes) {
  if (!started_) {
    window_start_ = t_s;
    started_ = true;
  }
  last_t_ = t_s;
  total_bytes_ += bytes;
  window_bytes_ += bytes;
  while (t_s - window_start_ >= window_s_) {
    const double end = window_start_ + window_s_;
    samples_.push_back({end, static_cast<double>(window_bytes_) * 8.0 / window_s_ / 1e6});
    window_bytes_ = 0;
    window_start_ = end;
  }
}

void ThroughputMeter::flush() {
  if (!started_) return;
  const double span = last_t_ - window_start_;
  if (span > 0.0 && window_bytes_ > 0) {
    samples_.push_back({last_t_, static_cast<double>(window_bytes_) * 8.0 / span / 1e6});
  }
  window_bytes_ = 0;
  window_start_ = last_t_;
}

double ThroughputMeter::mean_mbps() const noexcept {
  if (!started_ || last_t_ <= 0.0) return 0.0;
  // Mean over the span from the first record to the last.
  const double span = last_t_;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(total_bytes_) * 8.0 / span / 1e6;
}

}  // namespace skyferry::net
