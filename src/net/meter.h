// Windowed throughput meter — the measurement instrument behind every
// throughput figure: feed delivered bytes with timestamps, read back
// per-window Mb/s samples.
#pragma once

#include <cstdint>
#include <vector>

namespace skyferry::net {

class ThroughputMeter {
 public:
  explicit ThroughputMeter(double window_s = 0.5) noexcept : window_s_(window_s) {}

  /// Record `bytes` delivered at time `t_s` (nondecreasing).
  void record(double t_s, std::uint64_t bytes);

  /// Close the current partial window (call at end of run).
  void flush();

  struct Sample {
    double t_end_s{0.0};
    double mbps{0.0};
  };
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] double window_s() const noexcept { return window_s_; }

  /// Mean goodput over everything recorded so far [Mb/s].
  [[nodiscard]] double mean_mbps() const noexcept;

 private:
  double window_s_;
  double window_start_{0.0};
  double last_t_{0.0};
  std::uint64_t window_bytes_{0};
  std::uint64_t total_bytes_{0};
  bool started_{false};
  std::vector<Sample> samples_;
};

}  // namespace skyferry::net
