#include "net/packet.h"

// Packet is a plain aggregate; this TU anchors the header in the build so
// misuse (ODR, missing includes) surfaces at library build time.
namespace skyferry::net {
static_assert(sizeof(Packet) <= 32, "Packet must stay a small value type");
}  // namespace skyferry::net
