// Application packets: the unit that traverses queue -> MAC -> receiver.
// SkyFerry ships image batches as sequences of UDP-sized datagrams, so a
// packet carries flow id, sequence number and payload size; image
// metadata rides along for mission accounting.
#pragma once

#include <cstdint>

namespace skyferry::net {

using FlowId = std::uint32_t;

struct Packet {
  FlowId flow{0};
  std::uint32_t seq{0};
  std::uint32_t payload_bytes{1470};
  double created_t_s{0.0};
  /// Index of the source image within the mission batch (for tracing
  /// which images made it before a failure), or kNoImage.
  std::uint32_t image_index{kNoImage};

  static constexpr std::uint32_t kNoImage = 0xffffffff;
};

/// Batch description: a collected set of images to be shipped as Mdata.
struct DataBatch {
  std::uint32_t num_images{0};
  double image_bytes{0.0};

  [[nodiscard]] double total_bytes() const noexcept { return num_images * image_bytes; }
  [[nodiscard]] double total_mb() const noexcept { return total_bytes() / 1e6; }
};

}  // namespace skyferry::net
