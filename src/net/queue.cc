#include "net/queue.h"

namespace skyferry::net {

bool PacketQueue::push(const Packet& p) {
  if (capacity_bytes_ != 0 && bytes_ + p.payload_bytes > capacity_bytes_) {
    ++drops_;
    return false;
  }
  q_.push_back(p);
  bytes_ += p.payload_bytes;
  return true;
}

std::optional<Packet> PacketQueue::pop() {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.front();
  q_.pop_front();
  bytes_ -= p.payload_bytes;
  return p;
}

const Packet* PacketQueue::front() const noexcept { return q_.empty() ? nullptr : &q_.front(); }

void PacketQueue::push_front(const Packet& p) {
  // Head re-insertion is exempt from the capacity check: the bytes were
  // already admitted once and dropping a retransmission would violate
  // the Block-ACK reliability contract.
  q_.push_front(p);
  bytes_ += p.payload_bytes;
}

void PacketQueue::clear() noexcept {
  q_.clear();
  bytes_ = 0;
}

}  // namespace skyferry::net
