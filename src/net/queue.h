// Bounded FIFO transmit queue with byte accounting and drop counters —
// the interface between the application flows and the MAC.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.h"

namespace skyferry::net {

class PacketQueue {
 public:
  /// `capacity_bytes` = 0 means unbounded.
  explicit PacketQueue(std::uint64_t capacity_bytes = 0) noexcept
      : capacity_bytes_(capacity_bytes) {}

  /// Enqueue; returns false (and counts a drop) when full.
  bool push(const Packet& p);

  /// Dequeue the head packet, if any.
  std::optional<Packet> pop();

  /// Peek without removing. Null when empty.
  [[nodiscard]] const Packet* front() const noexcept;

  /// Re-queue a packet at the *head* (Block-ACK retransmission keeps
  /// in-order delivery of the batch).
  void push_front(const Packet& p);

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept { return capacity_bytes_; }

  void clear() noexcept;

 private:
  std::uint64_t capacity_bytes_;
  std::uint64_t bytes_{0};
  std::uint64_t drops_{0};
  std::deque<Packet> q_;
};

}  // namespace skyferry::net
