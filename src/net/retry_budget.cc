#include "net/retry_budget.h"

#include <cmath>

namespace skyferry::net {

bool RetryBudget::allow(double now_s, double backoff_s, double attempt_estimate_s) const noexcept {
  if (attempts_exhausted()) return false;
  if (!std::isfinite(cfg_.deadline_s)) return true;
  if (!std::isfinite(now_s)) return false;
  double start = now_s;
  if (std::isfinite(backoff_s) && backoff_s > 0.0) start += backoff_s;
  double finish = start;
  if (std::isfinite(attempt_estimate_s) && attempt_estimate_s > 0.0)
    finish += attempt_estimate_s;
  return finish + cfg_.headroom_s <= cfg_.deadline_s;
}

}  // namespace skyferry::net
