// Deadline-aware retry budget for mission-critical transfers. The ARQ
// layer retransmits forever and the retreat/backoff loop retries forever
// — neither knows the mission has a clock. RetryBudget is the per-mission
// governor: a bounded number of transfer attempts and, before each one,
// a check that the backoff plus a realistic estimate of the attempt
// itself still fits before the deadline. When the budget says no, the
// caller falls back (the mission simulator's abort-and-ship-closer
// ladder) instead of burning the remaining mission time on hopeless
// retries.
#pragma once

#include <limits>

namespace skyferry::net {

struct RetryBudgetConfig {
  /// Transfer attempts (first attempt included) across the mission.
  int max_attempts{10};
  /// Absolute mission deadline [s]; +inf disables the deadline test.
  double deadline_s{std::numeric_limits<double>::infinity()};
  /// Safety margin kept free before the deadline.
  double headroom_s{0.0};
};

class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetConfig cfg = {}) noexcept : cfg_(cfg) {}

  /// Would one more attempt, started after `backoff_s` of waiting and
  /// expected to take `attempt_estimate_s`, both fit the budget and
  /// finish before the deadline? Non-finite or negative estimates are
  /// treated as "unknown" (only the attempt count gates).
  [[nodiscard]] bool allow(double now_s, double backoff_s, double attempt_estimate_s) const noexcept;

  /// Record one spent attempt.
  void consume() noexcept { ++used_; }

  [[nodiscard]] int used() const noexcept { return used_; }
  [[nodiscard]] int remaining() const noexcept {
    return used_ >= cfg_.max_attempts ? 0 : cfg_.max_attempts - used_;
  }
  [[nodiscard]] bool attempts_exhausted() const noexcept { return remaining() == 0; }
  [[nodiscard]] const RetryBudgetConfig& config() const noexcept { return cfg_; }

 private:
  RetryBudgetConfig cfg_;
  int used_{0};
};

}  // namespace skyferry::net
