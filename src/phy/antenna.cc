#include "phy/antenna.h"

#include <algorithm>
#include <cmath>

namespace skyferry::phy {
namespace {
constexpr double kGravity = 9.80665;
}

geo::Vec3 DipoleAntenna::body_z_in_world(const Attitude& a) noexcept {
  // ZYX (yaw-pitch-roll) rotation applied to the body z-axis (0,0,1).
  const double cr = std::cos(a.roll), sr = std::sin(a.roll);
  const double cp = std::cos(a.pitch), sp = std::sin(a.pitch);
  const double cy = std::cos(a.yaw), sy = std::sin(a.yaw);
  // Third column of R = Rz(yaw)*Ry(pitch)*Rx(roll) with ENU axes
  // (x=east, y=north, z=up); yaw measured from north, clockwise.
  return {sy * sp * cr + cy * sr, cy * sp * cr - sy * sr, cp * cr};
}

double DipoleAntenna::gain_dbi(const Attitude& attitude, const geo::Vec3& direction) const noexcept {
  const geo::Vec3 axis = body_z_in_world(attitude);
  const geo::Vec3 dir = direction.normalized();
  if (dir.norm() < 0.5) return peak_dbi_;  // degenerate direction: be neutral
  const double cos_theta = std::clamp(dot(axis, dir), -1.0, 1.0);
  const double sin_theta = std::sqrt(std::max(1.0 - cos_theta * cos_theta, 0.0));
  // Half-wave dipole pattern: F(theta) = cos(pi/2 * cos(theta)) / sin(theta).
  if (sin_theta < 1e-3) return peak_dbi_ - 40.0;  // deep null along the axis
  const double f = std::cos(0.5 * M_PI * cos_theta) / sin_theta;
  const double gain_db = 20.0 * std::log10(std::max(std::abs(f), 1e-3));
  return peak_dbi_ + gain_db;
}

double link_antenna_gain_db(const DipoleAntenna& ant, const geo::Vec3& pos_a,
                            const Attitude& att_a, const geo::Vec3& pos_b,
                            const Attitude& att_b) noexcept {
  const geo::Vec3 ab = pos_b - pos_a;
  return ant.gain_dbi(att_a, ab) + ant.gain_dbi(att_b, -ab);
}

double coordinated_turn_bank_rad(double speed_mps, double radius_m) noexcept {
  if (radius_m <= 0.0) return 0.0;
  return std::atan2(speed_mps * speed_mps, kGravity * radius_m);
}

}  // namespace skyferry::phy
