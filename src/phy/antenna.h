// Antenna orientation model. The paper (and its references [14][15])
// identifies antenna orientation as a major aerial-link impairment: the
// planar omnis on the airframe have a dipole-like pattern with nulls
// along the antenna axis, so banking and pitching swing the peer in and
// out of the null. This module computes the gain between two airframes
// given their attitudes — the physical origin of the "attitude events"
// that the statistical FadingConfig models.
#pragma once

#include "geo/vec3.h"

namespace skyferry::phy {

/// Airframe attitude (ZYX Euler angles, radians).
struct Attitude {
  double roll{0.0};   ///< bank, positive = right wing down
  double pitch{0.0};  ///< nose up positive
  double yaw{0.0};    ///< heading, 0 = north, clockwise positive
};

/// Vertical half-wave-dipole-like pattern mounted along the airframe's
/// z-axis: omnidirectional in the body's horizontal plane, nulls along
/// the body z-axis.
class DipoleAntenna {
 public:
  /// Peak gain [dBi] in the equatorial plane (half-wave dipole: 2.15).
  explicit DipoleAntenna(double peak_gain_dbi = 2.15) noexcept : peak_dbi_(peak_gain_dbi) {}

  /// Gain [dBi] toward a direction given in the *world* frame, for an
  /// airframe with the given attitude. `direction` need not be a unit
  /// vector but must be nonzero.
  [[nodiscard]] double gain_dbi(const Attitude& attitude, const geo::Vec3& direction) const noexcept;

  /// Antenna boresight (body z-axis) expressed in the world frame.
  [[nodiscard]] static geo::Vec3 body_z_in_world(const Attitude& attitude) noexcept;

  [[nodiscard]] double peak_gain_dbi() const noexcept { return peak_dbi_; }

 private:
  double peak_dbi_;
};

/// Combined antenna gain [dB] of a link between two airframes at the
/// given world positions and attitudes (tx gain + rx gain).
[[nodiscard]] double link_antenna_gain_db(const DipoleAntenna& ant, const geo::Vec3& pos_a,
                                          const Attitude& att_a, const geo::Vec3& pos_b,
                                          const Attitude& att_b) noexcept;

/// Bank angle [rad] of a coordinated turn at speed v and turn radius r:
/// tan(phi) = v^2 / (g r). Airplanes loitering on the paper's 20 m
/// minimum-radius circle at 10 m/s bank ~27 degrees continuously.
[[nodiscard]] double coordinated_turn_bank_rad(double speed_mps, double radius_m) noexcept;

}  // namespace skyferry::phy
