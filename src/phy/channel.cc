#include "phy/channel.h"

namespace skyferry::phy {

ChannelConfig ChannelConfig::airplane() noexcept {
  ChannelConfig c;
  c.snr_model = AerialSnrModel::airplane();
  c.fading.rician_k_hover = 5.0;  // airplanes circle; never truly static
  c.fading.rician_k_moving = 1.5;
  c.fading.shadowing_sigma_db = 3.5;
  c.fading.attitude_event_rate_hz = 0.15;  // banking every several seconds
  c.fading.attitude_loss_mean_db = 9.0;
  c.fading.attitude_duration_mean_s = 1.2;
  c.fading.mobility_loss_db_per_mps = 0.8;
  c.spatial_correlation = 0.9;
  return c;
}

ChannelConfig ChannelConfig::quadrocopter() noexcept {
  ChannelConfig c;
  c.snr_model = AerialSnrModel::quadrocopter();
  c.fading.rician_k_hover = 10.0;
  c.fading.rician_k_moving = 2.0;
  c.fading.shadowing_sigma_db = 1.5;
  c.fading.attitude_event_rate_hz = 0.05;
  c.fading.attitude_loss_mean_db = 6.0;
  c.fading.attitude_duration_mean_s = 1.0;
  c.fading.mobility_loss_db_per_mps = 0.8;
  c.spatial_correlation = 0.85;
  return c;
}

ChannelConfig ChannelConfig::indoor() noexcept {
  ChannelConfig c;
  c.snr_model = AerialSnrModel::indoor();
  c.fading.rician_k_hover = 15.0;
  c.fading.rician_k_moving = 10.0;
  c.fading.shadowing_sigma_db = 1.0;
  c.fading.attitude_event_rate_hz = 0.0;
  c.spatial_correlation = 0.3;  // rich indoor scattering: MIMO works
  return c;
}

LinkChannel::LinkChannel(ChannelConfig cfg, std::uint64_t seed) noexcept
    : cfg_(cfg), fading_(cfg.fading, sim::Rng(seed)) {}

double LinkChannel::snr_db(double t_s, double distance_m, double relative_speed_mps) noexcept {
  if (distance_m != median_memo_d_m_) {
    median_memo_d_m_ = distance_m;
    median_memo_db_ = cfg_.snr_model.median_snr_db(distance_m);
  }
  return median_memo_db_ + fading_.sample_db(t_s, relative_speed_mps);
}

double LinkChannel::median_snr_db(double distance_m) const noexcept {
  return cfg_.snr_model.median_snr_db(distance_m);
}

}  // namespace skyferry::phy
