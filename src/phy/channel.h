// Composed per-link aerial channel: median SNR vs distance + small-scale
// fading + mobility dynamics + platform-specific attitude effects.
// This is the simulator's stand-in for the paper's outdoor 802.11n links.
#pragma once

#include <cstdint>

#include "phy/fading.h"
#include "phy/mcs.h"
#include "phy/pathloss.h"
#include "phy/per.h"

namespace skyferry::phy {

/// Everything needed to instantiate one link's channel.
struct ChannelConfig {
  AerialSnrModel snr_model{AerialSnrModel::airplane()};
  FadingConfig fading{};
  /// MIMO spatial correlation in [0,1]; aerial LoS links are rank-poor.
  double spatial_correlation{0.9};
  ChannelWidth width{ChannelWidth::kCw40MHz};
  GuardInterval gi{GuardInterval::kShort400ns};

  /// Airplane-to-airplane link preset (Swinglet pair; constant banking
  /// while circling waypoints -> frequent attitude losses, wide spread).
  static ChannelConfig airplane() noexcept;
  /// Quadrocopter-to-quadrocopter link preset (stable hover, low altitude).
  static ChannelConfig quadrocopter() noexcept;
  /// Indoor lab reference channel (paper: ~176 Mb/s on the bench).
  static ChannelConfig indoor() noexcept;
};

/// One directional link's time-evolving channel. Sampling is causal:
/// call snr_db with nondecreasing time.
class LinkChannel {
 public:
  LinkChannel(ChannelConfig cfg, std::uint64_t seed) noexcept;

  /// Instantaneous SNR [dB] at time t for the given geometry.
  [[nodiscard]] double snr_db(double t_s, double distance_m, double relative_speed_mps) noexcept;

  /// Median (fading-free) SNR [dB] at a distance.
  [[nodiscard]] double median_snr_db(double distance_m) const noexcept;

  [[nodiscard]] const ChannelConfig& config() const noexcept { return cfg_; }

 private:
  ChannelConfig cfg_;
  FadingProcess fading_;
  /// Last (distance -> median SNR) evaluation; static-geometry links ask
  /// for the same distance every exchange, so skip the log2.
  double median_memo_d_m_{-1.0};
  double median_memo_db_{0.0};
};

}  // namespace skyferry::phy
