#include "phy/fading.h"

#include <algorithm>
#include <cmath>

namespace skyferry::phy {
namespace {
constexpr double kSpeedOfLight = 299792458.0;
/// Granularity at which the attitude-event process is advanced.
constexpr double kAttitudeCheckPeriodS = 0.1;
}  // namespace

double coherence_time_s(double relative_speed_mps, double freq_hz,
                        double max_coherence_s) noexcept {
  const double v = std::abs(relative_speed_mps);
  if (v < 1e-6) return max_coherence_s;
  const double doppler_hz = v * freq_hz / kSpeedOfLight;
  return std::min(0.423 / doppler_hz, max_coherence_s);
}

FadingProcess::FadingProcess(FadingConfig cfg, sim::Rng rng) noexcept
    : cfg_(cfg), rng_(rng) {}

double FadingProcess::k_factor(double relative_speed_mps) const noexcept {
  // Smooth interpolation between hover-K and moving-K: platform vibration
  // and attitude dynamics destroy the LoS dominance as speed grows.
  const double v = std::abs(relative_speed_mps);
  const double w = v / (v + cfg_.speed_k_rolloff);
  return cfg_.rician_k_hover + (cfg_.rician_k_moving - cfg_.rician_k_hover) * w;
}

void FadingProcess::redraw_fast(double speed_mps) noexcept {
  const double k = k_factor(speed_mps);
  const double env = rng_.rician_envelope(k);
  // Power gain in dB; envelope normalized to unit mean power.
  fast_db_ = 20.0 * std::log10(std::max(env, 1e-6));
}

double FadingProcess::sample_db(double t_s, double relative_speed_mps) noexcept {
  // Advance slow shadowing (Gauss-Markov) by the elapsed time. The
  // transition coefficients depend only on dt, and callers step with a
  // handful of repeating exchange durations — memoize them.
  const double dt = std::max(t_s - last_t_, 0.0);
  if (dt != shadow_dt_) {
    shadow_dt_ = dt;
    shadow_a_ = std::exp(-dt / cfg_.shadowing_tau_s);
    shadow_b_ = cfg_.shadowing_sigma_db * std::sqrt(std::max(1.0 - shadow_a_ * shadow_a_, 0.0));
  }
  shadow_db_ = shadow_a_ * shadow_db_ + shadow_b_ * rng_.gaussian();

  // Attitude-event process: Poisson arrivals checked on a coarse grid,
  // each event holding a loss for an exponential duration — a banking
  // turn misaligns the antennas for seconds, not milliseconds.
  if (cfg_.attitude_event_rate_hz > 0.0) {
    while (next_attitude_check_t_ <= t_s) {
      if (next_attitude_check_t_ > attitude_until_ &&
          rng_.bernoulli(cfg_.attitude_event_rate_hz * kAttitudeCheckPeriodS)) {
        attitude_depth_db_ = rng_.exponential(1.0 / cfg_.attitude_loss_mean_db);
        attitude_until_ = next_attitude_check_t_ +
                          rng_.exponential(1.0 / cfg_.attitude_duration_mean_s);
      }
      next_attitude_check_t_ += kAttitudeCheckPeriodS;
    }
  }
  const double attitude_db = (t_s < attitude_until_) ? -attitude_depth_db_ : 0.0;

  // Re-draw the fast component once per coherence interval.
  if (t_s >= next_redraw_t_) {
    redraw_fast(relative_speed_mps);
    const double tc = coherence_time_s(relative_speed_mps, cfg_.freq_hz);
    next_redraw_t_ = t_s + tc;
  }

  // Doppler-induced channel aging / ICI: SNR loss proportional to speed.
  const double mobility_db = -cfg_.mobility_loss_db_per_mps * std::abs(relative_speed_mps);

  last_t_ = t_s;
  return fast_db_ + shadow_db_ + attitude_db + mobility_db;
}

}  // namespace skyferry::phy
