// Small-scale fading and mobility-induced channel dynamics.
//
// Hovering UAVs see a slowly varying Rician channel (strong LoS);
// moving UAVs see fast fading whose coherence time shrinks with the
// Doppler spread — the root cause of the throughput collapse the paper
// measures at speed (Fig. 7 center/right) and of auto-rate's failure to
// track the channel (Fig. 6).
#pragma once

#include "sim/rng.h"

namespace skyferry::phy {

/// Channel coherence time [s] from relative speed and carrier frequency
/// (Clarke's model, 0.423/f_D). Clamped for v -> 0 to `max_coherence_s`.
[[nodiscard]] double coherence_time_s(double relative_speed_mps, double freq_hz,
                                      double max_coherence_s = 1.0) noexcept;

struct FadingConfig {
  double rician_k_hover{8.0};     ///< K-factor (linear) for a hovering link
  double rician_k_moving{2.0};    ///< K-factor under flight dynamics
  double speed_k_rolloff{4.0};    ///< speed [m/s] at which K is halfway between the two
  double shadowing_sigma_db{2.0}; ///< slow log-normal shadowing spread
  double shadowing_tau_s{5.0};    ///< shadowing decorrelation time
  double freq_hz{5.2e9};
  /// Airframe-attitude loss events (banking, antenna misalignment).
  /// Airplanes circling to mimic hovering bank constantly -> higher event
  /// rate & spread. Events are *persistent*: a banking maneuver holds the
  /// antenna null for seconds, which is exactly what defeats the 100 ms
  /// auto-rate statistics loop (paper Fig. 6).
  double attitude_event_rate_hz{0.0};      ///< events per second
  double attitude_loss_mean_db{8.0};       ///< mean depth of an event
  double attitude_duration_mean_s{1.5};    ///< mean duration of an event
  /// Extra SNR loss proportional to relative speed [dB per m/s]: channel
  /// aging + inter-carrier interference at high Doppler. This is what
  /// collapses throughput with speed in Fig. 7 (right).
  double mobility_loss_db_per_mps{0.0};
};

/// Time-evolving per-link fading process. Call `sample_db(t, speed)` with
/// nondecreasing t; internally the channel re-draws each coherence
/// interval and the shadowing wanders as a Gauss-Markov process.
class FadingProcess {
 public:
  FadingProcess(FadingConfig cfg, sim::Rng rng) noexcept;

  /// Total fading gain [dB] (fast fading + shadowing + attitude events)
  /// at simulation time `t_s` with current relative speed [m/s].
  [[nodiscard]] double sample_db(double t_s, double relative_speed_mps) noexcept;

  /// Effective Rician K at a relative speed (for tests).
  [[nodiscard]] double k_factor(double relative_speed_mps) const noexcept;

  [[nodiscard]] const FadingConfig& config() const noexcept { return cfg_; }

  /// True while an attitude event is currently active (for tests).
  [[nodiscard]] bool attitude_event_active() const noexcept { return attitude_until_ > last_t_; }

 private:
  void redraw_fast(double speed_mps) noexcept;

  FadingConfig cfg_;
  sim::Rng rng_;
  double next_redraw_t_{-1.0};
  double last_t_{0.0};
  /// Memoized Gauss-Markov shadowing coefficients for the last step size:
  /// link-sim exchanges repeat the same few durations, so the exp/sqrt
  /// pair is recomputed only when dt changes (bit-identical results).
  double shadow_dt_{-1.0};
  double shadow_a_{1.0};
  double shadow_b_{0.0};
  double fast_db_{0.0};
  double shadow_db_{0.0};
  double attitude_until_{-1.0};
  double attitude_depth_db_{0.0};
  double next_attitude_check_t_{0.0};
};

}  // namespace skyferry::phy
