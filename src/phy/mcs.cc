#include "phy/mcs.h"

#include <cassert>
#include <cmath>

namespace skyferry::phy {

std::string_view to_string(Modulation m) noexcept {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

const std::array<McsInfo, kNumMcs>& mcs_table() noexcept {
  // IEEE 802.11n-2009 Table 20-30..20-37 (equal-modulation cases).
  static const std::array<McsInfo, kNumMcs> table = {{
      {0, 1, Modulation::kBpsk, {1, 2}},
      {1, 1, Modulation::kQpsk, {1, 2}},
      {2, 1, Modulation::kQpsk, {3, 4}},
      {3, 1, Modulation::kQam16, {1, 2}},
      {4, 1, Modulation::kQam16, {3, 4}},
      {5, 1, Modulation::kQam64, {2, 3}},
      {6, 1, Modulation::kQam64, {3, 4}},
      {7, 1, Modulation::kQam64, {5, 6}},
      {8, 2, Modulation::kBpsk, {1, 2}},
      {9, 2, Modulation::kQpsk, {1, 2}},
      {10, 2, Modulation::kQpsk, {3, 4}},
      {11, 2, Modulation::kQam16, {1, 2}},
      {12, 2, Modulation::kQam16, {3, 4}},
      {13, 2, Modulation::kQam64, {2, 3}},
      {14, 2, Modulation::kQam64, {3, 4}},
      {15, 2, Modulation::kQam64, {5, 6}},
  }};
  return table;
}

const McsInfo& mcs(int index) noexcept {
  assert(index >= 0 && index < kNumMcs);
  return mcs_table()[static_cast<std::size_t>(index)];
}

double preamble_duration_s(int streams) noexcept {
  // HT-mixed format: L-STF (8us) + L-LTF (8us) + L-SIG (4us) +
  // HT-SIG (8us) + HT-STF (4us) + one HT-LTF per stream (4us each).
  return (8.0 + 8.0 + 4.0 + 8.0 + 4.0 + 4.0 * streams) * 1e-6;
}

double frame_duration_s(const McsInfo& m, ChannelWidth w, GuardInterval gi,
                        int psdu_bits) noexcept {
  const double ndbps =
      static_cast<double>(m.spatial_streams) * static_cast<double>(data_subcarriers(w)) *
      static_cast<double>(bits_per_symbol(m.modulation)) * m.coding.value();
  // SERVICE field (16 bits) + tail (6 bits per encoder; one BCC encoder
  // assumed) then round up to whole OFDM symbols.
  const double total_bits = static_cast<double>(psdu_bits) + 16.0 + 6.0;
  const double symbols = std::ceil(total_bits / ndbps);
  return preamble_duration_s(m.spatial_streams) + symbols * symbol_duration_s(gi);
}

}  // namespace skyferry::phy
