// IEEE 802.11n HT modulation-and-coding-scheme (MCS) tables and PHY data
// rates. The paper's radios run 802.11n at 40 MHz with a 400 ns guard
// interval and compare fixed MCS 1/2/3/8 against auto-rate (Sec. 3.1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace skyferry::phy {

enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

/// Bits carried per subcarrier per symbol for a modulation.
[[nodiscard]] constexpr int bits_per_symbol(Modulation m) noexcept {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 1;
}

[[nodiscard]] std::string_view to_string(Modulation m) noexcept;

/// Convolutional coding rate as numerator/denominator.
struct CodingRate {
  int num{1};
  int den{2};
  [[nodiscard]] constexpr double value() const noexcept {
    return static_cast<double>(num) / static_cast<double>(den);
  }
};

enum class ChannelWidth : std::uint8_t { kCw20MHz, kCw40MHz };
enum class GuardInterval : std::uint8_t { kLong800ns, kShort400ns };

/// Number of data subcarriers for an HT channel width (52 / 108).
[[nodiscard]] constexpr int data_subcarriers(ChannelWidth w) noexcept {
  return w == ChannelWidth::kCw20MHz ? 52 : 108;
}

/// OFDM symbol duration [s] including the guard interval.
[[nodiscard]] constexpr double symbol_duration_s(GuardInterval gi) noexcept {
  return gi == GuardInterval::kLong800ns ? 4.0e-6 : 3.6e-6;
}

/// Static description of one HT MCS index (0..15; one or two streams).
/// MCS 0..7 are single-stream; 8..15 are the two-stream (SDM) repeats.
/// On our hardware single-stream MCS are transmitted with STBC over the
/// two antennas (the paper observes STBC [MCS1-3] beating SDM [MCS8]).
struct McsInfo {
  int index{0};
  int spatial_streams{1};
  Modulation modulation{Modulation::kBpsk};
  CodingRate coding{};

  /// PHY data rate [bit/s].
  [[nodiscard]] constexpr double phy_rate_bps(ChannelWidth w, GuardInterval gi) const noexcept {
    const double ndbps = static_cast<double>(spatial_streams) *
                         static_cast<double>(data_subcarriers(w)) *
                         static_cast<double>(bits_per_symbol(modulation)) * coding.value();
    return ndbps / symbol_duration_s(gi);
  }

  /// True for the two-stream spatial-division-multiplexed MCS (8..15).
  [[nodiscard]] constexpr bool is_sdm() const noexcept { return spatial_streams > 1; }
};

inline constexpr int kNumMcs = 16;

/// Lookup table of MCS 0..15.
[[nodiscard]] const std::array<McsInfo, kNumMcs>& mcs_table() noexcept;

/// Lookup a single MCS. Precondition: 0 <= index < kNumMcs.
[[nodiscard]] const McsInfo& mcs(int index) noexcept;

/// Time on air [s] of a PSDU of `psdu_bits` at the given MCS, including
/// the HT-mixed-format preamble. Matches the standard's duration math to
/// symbol granularity.
[[nodiscard]] double frame_duration_s(const McsInfo& m, ChannelWidth w, GuardInterval gi,
                                      int psdu_bits) noexcept;

/// Duration [s] of the HT-mixed preamble + PLCP header for `streams`
/// spatial streams (L-STF+L-LTF+L-SIG + HT-SIG + HT-STF + HT-LTFs).
[[nodiscard]] double preamble_duration_s(int streams) noexcept;

}  // namespace skyferry::phy
