#include "phy/pathloss.h"

#include <algorithm>
#include <cmath>

namespace skyferry::phy {
namespace {
constexpr double kSpeedOfLight = 299792458.0;
}

double free_space_path_loss_db(double distance_m, double freq_hz) noexcept {
  const double d = std::max(distance_m, 0.1);
  // FSPL = 20 log10(4 pi d f / c).
  return 20.0 * std::log10(4.0 * M_PI * d * freq_hz / kSpeedOfLight);
}

LogDistancePathLoss LogDistancePathLoss::from_freespace_ref(double exponent,
                                                            double freq_hz) noexcept {
  return {exponent, 1.0, free_space_path_loss_db(1.0, freq_hz)};
}

double LogDistancePathLoss::loss_db(double distance_m) const noexcept {
  const double d = std::max(distance_m, d_ref_ * 1e-3);
  return pl_ref_ + 10.0 * n_ * std::log10(d / d_ref_);
}

double LinkBudget::noise_floor_dbm() const noexcept {
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double AerialSnrModel::median_snr_db(double distance_m) const noexcept {
  const double d = std::max(distance_m, 1.0);
  return a_ - b_ * std::log2(d);
}

}  // namespace skyferry::phy
