// Path-loss and median-SNR models for aerial line-of-sight links.
//
// The paper reduces the 802.11n aerial link to a distance-dependent median
// throughput; underneath that sits a median received SNR falling roughly
// linearly in log-distance. AerialSnrModel is calibrated so that the full
// PHY+MAC simulator reproduces the paper's fitted median throughputs
// (s_air, s_quad) — see DESIGN.md §4 and tests/phy/calibration_test.cc.
#pragma once

namespace skyferry::phy {

/// Free-space path loss [dB] at distance d [m] and carrier f [Hz].
[[nodiscard]] double free_space_path_loss_db(double distance_m, double freq_hz) noexcept;

/// Log-distance path loss [dB]: PL(d) = PL(d_ref) + 10*n*log10(d/d_ref).
class LogDistancePathLoss {
 public:
  /// `exponent` n (2 = free space), reference distance and loss at it.
  LogDistancePathLoss(double exponent, double ref_distance_m, double ref_loss_db) noexcept
      : n_(exponent), d_ref_(ref_distance_m), pl_ref_(ref_loss_db) {}

  /// Convenience: free-space-calibrated reference at 1 m for carrier f.
  static LogDistancePathLoss from_freespace_ref(double exponent, double freq_hz) noexcept;

  [[nodiscard]] double loss_db(double distance_m) const noexcept;
  [[nodiscard]] double exponent() const noexcept { return n_; }

 private:
  double n_;
  double d_ref_;
  double pl_ref_;
};

/// Link-budget constants of the paper's platform (Ralink RT3572 USB,
/// 5 GHz channel 40, 40 MHz, planar omni antennas on small airframes).
struct LinkBudget {
  double tx_power_dbm{15.0};
  double tx_antenna_gain_dbi{2.0};
  double rx_antenna_gain_dbi{2.0};
  double noise_figure_db{6.0};
  double bandwidth_hz{40e6};
  double freq_hz{5.2e9};  // channel 40

  /// Thermal noise floor + noise figure [dBm].
  [[nodiscard]] double noise_floor_dbm() const noexcept;
};

/// Median *effective* SNR [dB] versus distance for an aerial link:
/// snr(d) = a - b*log2(d). "Effective" folds in everything that degrades
/// small-UAV links beyond free space (airframe shadowing, antenna
/// orientation, ground reflections), which is how the measured medians
/// behave. Calibration constants are chosen per platform.
class AerialSnrModel {
 public:
  AerialSnrModel(double a_db, double b_db_per_octave) noexcept : a_(a_db), b_(b_db_per_octave) {}

  /// Calibrated airplane link (Swinglet pair, 80-100 m altitude).
  /// Constants chosen so the simulated auto-rate medians regress to the
  /// paper's airplane fit (bench/calibrate_channel).
  static AerialSnrModel airplane() noexcept { return {35.43, 4.31}; }
  /// Calibrated quadrocopter link (Arducopter pair, 10 m altitude).
  static AerialSnrModel quadrocopter() noexcept { return {44.20, 6.68}; }
  /// Indoor lab reference (paper: ~176 Mb/s in the lab): high flat SNR.
  static AerialSnrModel indoor() noexcept { return {45.0, 1.0}; }

  /// Median SNR [dB] at distance d [m]; d clamped to >= 1 m.
  [[nodiscard]] double median_snr_db(double distance_m) const noexcept;

 private:
  double a_;
  double b_;
};

}  // namespace skyferry::phy
