#include "phy/per.h"

#include <algorithm>
#include <cmath>

namespace skyferry::phy {

double q_function(double x) noexcept { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

namespace {

/// Canonical Gray-coded square M-QAM BER approximation over AWGN:
/// BER ≈ 4/log2(M) * (1 - 1/sqrt(M)) * Q( sqrt(3*SNR/(M-1)) ).
double mqam_ber(int m_points, double snr_linear) noexcept {
  const double log2m = std::log2(static_cast<double>(m_points));
  const double coef = 4.0 / log2m * (1.0 - 1.0 / std::sqrt(static_cast<double>(m_points)));
  return coef * q_function(std::sqrt(3.0 * snr_linear / (m_points - 1)));
}

}  // namespace

double uncoded_ber(Modulation m, double snr_linear) noexcept {
  const double s = std::max(snr_linear, 0.0);
  double ber = 0.5;
  switch (m) {
    case Modulation::kBpsk:
      ber = q_function(std::sqrt(2.0 * s));
      break;
    case Modulation::kQpsk:
      // Gray-coded QPSK: per-bit error equals BPSK at the same Eb/N0; at
      // equal symbol SNR each of the two bits sees half the symbol energy.
      ber = q_function(std::sqrt(s));
      break;
    case Modulation::kQam16:
      ber = mqam_ber(16, s);
      break;
    case Modulation::kQam64:
      ber = mqam_ber(64, s);
      break;
  }
  return std::clamp(ber, 0.0, 0.5);
}

double ErrorModel::coding_gain_db(CodingRate r) const noexcept {
  if (r.num == 1 && r.den == 2) return cfg_.coding_gain_half_db;
  if (r.num == 2 && r.den == 3) return cfg_.coding_gain_two_thirds_db;
  if (r.num == 3 && r.den == 4) return cfg_.coding_gain_three_quarters_db;
  return cfg_.coding_gain_five_sixths_db;
}

void ErrorModel::set_spatial_correlation(double c) noexcept {
  spatial_correlation_ = std::clamp(c, 0.0, 1.0);
}

double ErrorModel::effective_snr_db(const McsInfo& m, double snr_db) const noexcept {
  double eff = snr_db + coding_gain_db(m.coding);
  if (m.is_sdm()) {
    eff -= cfg_.sdm_power_split_db;
    eff -= cfg_.sdm_max_correlation_penalty_db * spatial_correlation_;
  } else {
    eff += cfg_.stbc_gain_db;
  }
  return eff;
}

double ErrorModel::bit_error_rate(const McsInfo& m, double snr_db) const noexcept {
  const double eff_db = effective_snr_db(m, snr_db);
  const double s = std::pow(10.0, eff_db / 10.0);
  return uncoded_ber(m.modulation, s);
}

namespace {

/// Effective-SNR bounds [dB] outside which the uncoded BER is saturated:
/// above `zero_ber_db` the BER is < 1e-20 (Q(9.5)·coef), below
/// `half_ber_db` it is >= 0.29. Both bounds are conservative inversions
/// of the closed-form BER curves above.
struct SaturationBounds {
  double half_ber_db;
  double zero_ber_db;
};

constexpr SaturationBounds saturation_bounds(Modulation m) noexcept {
  switch (m) {
    case Modulation::kBpsk: return {-8.2, 17.0};
    case Modulation::kQpsk: return {-5.2, 20.0};
    case Modulation::kQam16: return {-3.9, 27.0};
    case Modulation::kQam64: return {-29.8, 33.1};
  }
  return {-1e300, 1e300};
}

}  // namespace

double ErrorModel::packet_error_rate(const McsInfo& m, double snr_db, int bits) const noexcept {
  const double eff_db = effective_snr_db(m, snr_db);
  // Saturation early-outs skip the pow/erfc/log1p chain where the result
  // is already pinned in double precision: above zero_ber_db the PER is
  // below bits * 1e-20 (absolute error <= ~1e-14 for any real frame);
  // below half_ber_db the BER is >= 0.29, so for bits >= 256 the success
  // probability (1-BER)^bits < 1e-38 and the PER rounds to exactly 1.0 —
  // the same value the full chain returns.
  const SaturationBounds sat = saturation_bounds(m.modulation);
  if (eff_db >= sat.zero_ber_db) return 0.0;
  if (eff_db <= sat.half_ber_db && bits >= 256) return 1.0;

  const double s = std::pow(10.0, eff_db / 10.0);
  const double ber = uncoded_ber(m.modulation, s);
  if (ber <= 0.0) return 0.0;
  if (ber >= 0.5) return 1.0;
  // PER = 1 - (1-BER)^bits, computed in log space for stability.
  const double log_ok = static_cast<double>(bits) * std::log1p(-ber);
  return std::clamp(1.0 - std::exp(log_ok), 0.0, 1.0);
}

}  // namespace skyferry::phy
