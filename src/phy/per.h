// SNR -> BER -> packet-error-rate model per MCS.
//
// Uncoded BER uses the standard Gray-coded M-QAM/PSK approximations over
// AWGN; convolutional coding is modeled as an effective-SNR gain per
// coding rate (union-bound calibrated). STBC single-stream transmission
// earns a diversity gain; two-stream SDM pays a power-split penalty plus
// a spatial-correlation penalty — aerial LoS channels are rank-poor,
// which is exactly why the paper's MCS8+ underperform (Sec. 3.1).
#pragma once

#include "phy/mcs.h"

namespace skyferry::phy {

/// Tunables of the error model.
struct ErrorModelConfig {
  /// Effective SNR gain [dB] of the convolutional code by rate: 1/2, 2/3,
  /// 3/4, 5/6 map to decreasing gains.
  double coding_gain_half_db{5.0};
  double coding_gain_two_thirds_db{4.0};
  double coding_gain_three_quarters_db{3.5};
  double coding_gain_five_sixths_db{3.0};

  /// Diversity gain [dB] of Alamouti STBC on single-stream MCS.
  double stbc_gain_db{3.0};

  /// SDM penalties: 3 dB power split per stream plus an inter-stream
  /// interference penalty that grows with spatial correlation
  /// (1 = fully correlated LoS channel, 0 = rich scattering).
  double sdm_power_split_db{3.0};
  double sdm_max_correlation_penalty_db{12.0};
};

/// Q-function (tail of the standard normal).
[[nodiscard]] double q_function(double x) noexcept;

/// Uncoded bit error rate of `m` at per-symbol SNR [linear].
[[nodiscard]] double uncoded_ber(Modulation m, double snr_linear) noexcept;

class ErrorModel {
 public:
  explicit ErrorModel(ErrorModelConfig cfg = {}, double spatial_correlation = 0.9) noexcept
      : cfg_(cfg) {
    set_spatial_correlation(spatial_correlation);
  }

  /// Effective post-processing SNR [dB] for an MCS given raw channel SNR
  /// [dB], accounting for coding gain, STBC or SDM adjustments.
  [[nodiscard]] double effective_snr_db(const McsInfo& m, double snr_db) const noexcept;

  /// Coded BER for an MCS at raw channel SNR [dB].
  [[nodiscard]] double bit_error_rate(const McsInfo& m, double snr_db) const noexcept;

  /// Packet error rate of an MPDU of `bits` at raw channel SNR [dB].
  /// Saturated regions (BER ≈ 0 / BER ≈ 0.5) early-out without touching
  /// erfc/pow; see phy::PerTable for the table-driven hot path.
  [[nodiscard]] double packet_error_rate(const McsInfo& m, double snr_db, int bits) const noexcept;

  /// Spatial correlation of the MIMO channel in [0,1]; higher = more
  /// LoS-dominant = worse for SDM.
  [[nodiscard]] double spatial_correlation() const noexcept { return spatial_correlation_; }
  void set_spatial_correlation(double c) noexcept;

  [[nodiscard]] const ErrorModelConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] double coding_gain_db(CodingRate r) const noexcept;

  ErrorModelConfig cfg_;
  double spatial_correlation_;
};

}  // namespace skyferry::phy
