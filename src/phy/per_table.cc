#include "phy/per_table.h"

#include <cmath>

namespace skyferry::phy {
namespace {

// 31-node Gauss-Hermite rule (weight e^{-x^2}): nodes >= 0 and their
// weights; the rule is symmetric. E[f(mu + sigma*Z)] with Z ~ N(0,1) is
// sum_i w_i * f(mu + sigma*sqrt(2)*x_i) / sqrt(pi). 31 nodes resolve
// the PER waterfall (a sigmoid ~0.5 sigma wide in Z for the paper's
// jitter scales), holding the quadrature error under ~1e-4 where a
// 15-node rule drifts by ~1e-2 mid-transition.
constexpr int kGhHalfNodes = 16;
constexpr double kGhNode[kGhHalfNodes] = {
    0.0,
    0.395942736471423,
    0.792876976915309,
    1.191826998350046,
    1.593885860472140,
    2.000258548935639,
    2.412317705480420,
    2.831680453390205,
    3.260320732313541,
    3.700743403231470,
    4.156271755818145,
    4.631559506312860,
    5.133595577112381,
    5.673961444618588,
    6.275078704942860,
    6.995680123718540,
};
constexpr double kGhWeight[kGhHalfNodes] = {
    3.957785560986095e-01,
    3.387726578941079e-01,
    2.121327886687647e-01,
    9.671794816087061e-02,
    3.184723073130030e-02,
    7.482799914035202e-03,
    1.233683307306889e-03,
    1.395209039504708e-04,
    1.049860275767558e-05,
    5.043712558939770e-07,
    1.461198834491053e-08,
    2.352492003208629e-10,
    1.860373521452147e-12,
    5.899556498753863e-15,
    5.110609007927157e-18,
    4.618968394464187e-22,
};
constexpr double kSqrt2 = 1.414213562373095;
constexpr double kInvSqrtPi = 0.564189583547756;

}  // namespace

PerTable::PerTable(const ErrorModel& em, const McsInfo& m, int bits, const PerTableConfig& cfg,
                   double jitter_sigma_db)
    : snr_min_db_(cfg.snr_min_db), step_db_(cfg.step_db), inv_step_db_(1.0 / cfg.step_db) {
  const int n =
      static_cast<int>(std::ceil((cfg.snr_max_db - cfg.snr_min_db) / cfg.step_db - 1e-9)) + 1;
  per_.resize(static_cast<std::size_t>(n));
  if (jitter_sigma_db > 0.0) {
    // Marginalized build: quadrature over a plain table of the analytic
    // model, not over the analytic model itself — and, since PER is
    // non-increasing in SNR, any knot whose whole quadrature window sits
    // in a saturated region is 0/1 without touching the quadrature.
    const PerTable plain(em, m, bits, cfg);
    const double reach = kSqrt2 * jitter_sigma_db * kGhNode[kGhHalfNodes - 1];
    for (int i = 0; i < n; ++i) {
      const double snr = snr_min_db_ + i * step_db_;
      double p;
      if (plain.per(snr - reach) <= 0.0) {
        p = 0.0;  // largest PER in the window is already 0
      } else if (plain.per(snr + reach) >= 1.0) {
        p = 1.0;  // smallest PER in the window is already 1
      } else {
        p = plain.marginal_per(snr, jitter_sigma_db);
      }
      per_[static_cast<std::size_t>(i)] = p;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      per_[static_cast<std::size_t>(i)] = em.packet_error_rate(m, snr_min_db_ + i * step_db_, bits);
    }
  }
}

double PerTable::per(double snr_db) const noexcept {
  const double pos = (snr_db - snr_min_db_) * inv_step_db_;
  if (pos <= 0.0) return per_.front();
  const auto last = static_cast<double>(per_.size() - 1);
  if (pos >= last) return per_.back();
  const auto i = static_cast<std::size_t>(pos);
  const double f = pos - static_cast<double>(i);
  if (f == 0.0) return per_[i];  // knots are exact, not just close
  return per_[i] + f * (per_[i + 1] - per_[i]);
}

double PerTable::marginal_per(double snr_db, double sigma_db) const noexcept {
  if (sigma_db <= 0.0) return per(snr_db);
  double acc = kGhWeight[0] * per(snr_db);
  for (int k = 1; k < kGhHalfNodes; ++k) {
    const double d = kSqrt2 * sigma_db * kGhNode[k];
    acc += kGhWeight[k] * (per(snr_db + d) + per(snr_db - d));
  }
  return acc * kInvSqrtPi;
}

std::uint64_t table_fingerprint(const ErrorModelConfig& error, double spatial_correlation,
                                const PerTableConfig& grid) noexcept {
  // FNV-1a over the raw bit patterns: bit-equal configs (the shared-
  // cache contract) hash equal; any tweaked tunable flips the tag.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(error.coding_gain_half_db);
  mix(error.coding_gain_two_thirds_db);
  mix(error.coding_gain_three_quarters_db);
  mix(error.coding_gain_five_sixths_db);
  mix(error.stbc_gain_db);
  mix(error.sdm_power_split_db);
  mix(error.sdm_max_correlation_penalty_db);
  mix(spatial_correlation);
  mix(grid.snr_min_db);
  mix(grid.snr_max_db);
  mix(grid.step_db);
  return h;
}

const PerTable& PerTableCache::table(const McsInfo& m, int bits, double jitter_sigma_db) {
  const auto key = std::make_tuple(m.index, bits, jitter_sigma_db > 0.0 ? jitter_sigma_db : 0.0);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    it = tables_.try_emplace(key, em_, m, bits, cfg_, std::get<2>(key)).first;
  }
  return it->second;
}

}  // namespace skyferry::phy
