// SNR -> PER lookup tables: the fast path of the link simulator.
//
// `ErrorModel::packet_error_rate` walks erfc/pow/log1p on every call —
// fine for plotting, ruinous when a Monte-Carlo mission evaluates it up
// to 64 times per simulated A-MPDU. A `PerTable` freezes the analytic
// model for one (MCS, frame size) pair onto a uniform SNR grid and
// answers queries with two loads and a lerp; a `PerTableCache` builds
// tables lazily per (MCS index, bits) so the simulator touches the
// analytic chain once per table, ever.
//
// Accuracy contract (enforced by tests/phy/per_table_test.cc): the
// table agrees with the analytic model *exactly* at every grid knot and
// within 1e-4 absolute everywhere on the grid. Queries outside the grid
// clamp to the edge knots, which sit in the saturated PER≈1 / PER≈0
// regions for every 802.11n MCS.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "phy/per.h"

namespace skyferry::phy {

/// Grid of one lookup table. The defaults cover every MCS's waterfall
/// with margin: at -12 dB raw SNR all rates are saturated at PER 1, at
/// 48 dB all are at PER 0.
struct PerTableConfig {
  double snr_min_db{-12.0};
  double snr_max_db{48.0};
  /// 1/64 dB keeps the plain-lerp error under 2.5e-5 even on the
  /// steepest waterfall, buying a branch-light two-load lookup; the
  /// whole grid is ~30 KB per curve.
  double step_db{0.015625};
};

/// FNV-1a fingerprint of everything that determines a PER table's
/// values: the error-model tunables, the spatial correlation, and the
/// SNR grid. Two caches with equal fingerprints answer every (MCS, bits,
/// jitter) query identically, so a shared cache (mac::LinkConfig::
/// shared_tables, link::LinkBackendConfig) can be *checked* against a
/// consumer's config instead of trusting the caller — a mismatched
/// cache answers with silently wrong PERs.
[[nodiscard]] std::uint64_t table_fingerprint(const ErrorModelConfig& error,
                                              double spatial_correlation,
                                              const PerTableConfig& grid) noexcept;

/// One frozen SNR->PER curve for a fixed (MCS, frame bits) pair.
///
/// With `jitter_sigma_db > 0` the knots hold the *jitter-marginalized*
/// PER E[per(snr + sigma*Z)], Z ~ N(0,1) (31-node Gauss-Hermite over the
/// plain table), so `per()` answers the marginal in one lookup — the
/// link simulator's aggregate fast path folds the per-MPDU SNR jitter
/// into the table once at build time instead of quadrature per exchange.
class PerTable {
 public:
  PerTable(const ErrorModel& em, const McsInfo& m, int bits, const PerTableConfig& cfg = {},
           double jitter_sigma_db = 0.0);

  /// PER at raw channel SNR [dB]: two loads + a linear lerp — the grid
  /// is fine enough (PerTableConfig::step_db) that plain interpolation
  /// beats the 1e-4 accuracy contract with margin. Exactly equal to the
  /// analytic model at grid knots; clamped to the edge knots outside
  /// the grid.
  [[nodiscard]] double per(double snr_db) const noexcept;

  /// Jitter-marginalized PER: E[per(snr + sigma*Z)], Z ~ N(0,1), via
  /// fixed 31-node Gauss-Hermite quadrature over the table. This is the
  /// exact per-subframe success probability of the per-MPDU reference
  /// path when subframe SNRs jitter independently around the aggregate
  /// fade (mac::LinkConfig::per_mpdu_snr_jitter_db).
  [[nodiscard]] double marginal_per(double snr_db, double sigma_db) const noexcept;

  [[nodiscard]] int knots() const noexcept { return static_cast<int>(per_.size()); }
  [[nodiscard]] double knot_snr_db(int i) const noexcept { return snr_min_db_ + i * step_db_; }
  [[nodiscard]] double knot_per(int i) const noexcept { return per_[static_cast<std::size_t>(i)]; }

 private:
  double snr_min_db_{0.0};
  double step_db_{0.0};
  double inv_step_db_{0.0};
  std::vector<double> per_;  ///< exact knot values
};

/// Lazily built per-(MCS index, bits, jitter sigma) table cache over one
/// ErrorModel (held by value — the cache is self-contained). Building is
/// mutex-protected and built tables are immutable, so one cache can be
/// shared by every simulator of a parallel Monte-Carlo fan-out
/// (mac::LinkConfig::shared_tables) and pay table construction once per
/// sweep instead of once per trial.
class PerTableCache {
 public:
  explicit PerTableCache(ErrorModel em, PerTableConfig cfg = {}) noexcept
      : em_(em), cfg_(cfg) {}

  /// The table for (m, bits) — jitter-marginalized when
  /// `jitter_sigma_db > 0` — building it on first use. The returned
  /// reference stays valid for the cache's lifetime. Thread-safe.
  [[nodiscard]] const PerTable& table(const McsInfo& m, int bits, double jitter_sigma_db = 0.0);

  [[nodiscard]] std::size_t size() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return tables_.size();
  }
  [[nodiscard]] const PerTableConfig& config() const noexcept { return cfg_; }
  /// table_fingerprint() of this cache's frozen (error model, grid).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return table_fingerprint(em_.config(), em_.spatial_correlation(), cfg_);
  }

 private:
  ErrorModel em_;
  PerTableConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::tuple<int, int, double>, PerTable> tables_;
};

}  // namespace skyferry::phy
