#include "phy/tworay.h"

#include <algorithm>
#include <cmath>
#include <complex>

namespace skyferry::phy {
namespace {
constexpr double kSpeedOfLight = 299792458.0;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double TwoRayGround::path_gain_db(double distance_m, double h_tx_m, double h_rx_m) const noexcept {
  const double d = std::max(distance_m, 0.1);
  const double lambda = kSpeedOfLight / cfg_.freq_hz;

  // Direct and ground-reflected path lengths.
  const double dh = h_tx_m - h_rx_m;
  const double sh = h_tx_m + h_rx_m;
  const double r_los = std::sqrt(d * d + dh * dh);
  const double r_ref = std::sqrt(d * d + sh * sh);

  const double k = 2.0 * kPi / lambda;
  // Free-space field amplitude ~ lambda/(4 pi r); ground bounce with
  // reflection coefficient -|G| (phase reversal at grazing incidence).
  const std::complex<double> e_los =
      std::polar(lambda / (4.0 * kPi * r_los), -k * r_los);
  const std::complex<double> e_ref =
      std::polar(cfg_.reflection_coeff * lambda / (4.0 * kPi * r_ref), -k * r_ref + kPi);

  const double amp = std::abs(e_los + e_ref);
  const double gain = amp * amp;
  return 10.0 * std::log10(std::max(gain, 1e-30));
}

double TwoRayGround::breakpoint_distance_m(double h_tx_m, double h_rx_m) const noexcept {
  const double lambda = kSpeedOfLight / cfg_.freq_hz;
  return 4.0 * kPi * h_tx_m * h_rx_m / lambda;
}

}  // namespace skyferry::phy
