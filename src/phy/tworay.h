// Two-ray ground-reflection propagation. Physically grounds the
// difference between the two platforms' links: quadrocopters at 10 m
// altitude sit deep in the ground-bounce interference region where the
// path gain oscillates and then falls off as d^4, while airplanes at
// 80-100 m stay close to free space over the measured ranges. This is
// the mechanistic explanation for the much steeper quad fit the paper
// measures (s_quad dies at ~124 m vs ~450 m for airplanes).
#pragma once

namespace skyferry::phy {

struct TwoRayConfig {
  double freq_hz{5.2e9};
  /// Ground reflection coefficient (magnitude); grass/soil at grazing
  /// incidence and 5 GHz is close to -1.
  double reflection_coeff{0.95};
};

class TwoRayGround {
 public:
  explicit TwoRayGround(TwoRayConfig cfg = {}) noexcept : cfg_(cfg) {}

  /// Path *gain* [dB, <= 0] between antennas at heights h_tx/h_rx over a
  /// flat ground at horizontal separation d. Exact two-ray phasor sum
  /// (not the d^4 far-field approximation), so the interference ripple
  /// near the link is preserved.
  [[nodiscard]] double path_gain_db(double distance_m, double h_tx_m, double h_rx_m) const noexcept;

  /// Path loss [dB, >= 0]: -path_gain_db.
  [[nodiscard]] double path_loss_db(double distance_m, double h_tx_m, double h_rx_m) const noexcept {
    return -path_gain_db(distance_m, h_tx_m, h_rx_m);
  }

  /// Crossover ("breakpoint") distance 4*pi*h_tx*h_rx/lambda beyond which
  /// the d^4 decay dominates.
  [[nodiscard]] double breakpoint_distance_m(double h_tx_m, double h_rx_m) const noexcept;

  [[nodiscard]] const TwoRayConfig& config() const noexcept { return cfg_; }

 private:
  TwoRayConfig cfg_;
};

}  // namespace skyferry::phy
