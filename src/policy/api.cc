#include "policy/api.h"

#include <algorithm>

namespace skyferry::policy {

const char* to_string(Objective o) noexcept {
  switch (o) {
    case Objective::kPaperUtility:
      return "paper-utility";
    case Objective::kMissionRealized:
      return "mission-realized";
    case Objective::kJointSpeed:
      return "joint-speed";
  }
  return "?";
}

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::kExact:
      return "exact";
    case Backend::kTable:
      return "table";
  }
  return "?";
}

core::OptimizeResult to_optimize_result(const Decision& d) noexcept {
  core::OptimizeResult r;
  r.d_opt_m = d.d_opt_m;
  r.utility = d.utility;
  r.cdelay_s = d.cdelay_s;
  r.discount = d.discount;
  r.boundary = d.boundary;
  r.evaluations = d.evaluations;
  return r;
}

core::Boundary classify_boundary(double d_m, double lo_m, double hi_m) noexcept {
  const double eps = 1e-6 * std::max(hi_m - lo_m, 1.0);
  // Degenerate hi <= lo intervals classify as transmit-now, matching the
  // precedence the exact solver always applied.
  if (d_m >= hi_m - eps) return core::Boundary::kTransmitNow;
  if (d_m <= lo_m + eps) return core::Boundary::kAtFloor;
  return core::Boundary::kInterior;
}

}  // namespace skyferry::policy
