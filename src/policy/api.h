// The unified "now or later?" decision API. One Query describes one
// delivery decision — where the peer came in range, how fast the UAV
// flies, how much data it carries, how deadly the approach is, and which
// objective to maximize — and one Decision answers it: the transmit
// distance d*, the achieved utility and its decomposition, and which
// backend produced it (O(1) policy-table lookup or the exact optimizer).
//
// This replaces the four divergent entry points callers used to reach
// directly (`core::optimize`, `core::optimize_objective`,
// `core::optimize_joint`, `core::ReDecisionPolicy::redecide_now`): every
// consumer — the planner, the mid-flight re-decision, the fault-injected
// mission simulator, the fig benches and the skyferry_decide server —
// now builds a Query and calls DecisionService::decide. Both structs are
// PODs so a batch is one flat span, the service writes answers in place,
// and the hot path allocates nothing.
#pragma once

#include <cstdint>

#include "core/optimizer.h"
#include "uav/failure.h"

namespace skyferry::uav {
struct PlatformSpec;
}
namespace skyferry::core {
class ThroughputModel;
}

namespace skyferry::policy {

/// Which maximization the query asks for.
enum class Objective : std::uint8_t {
  /// The paper's Eq. (2): argmax U(d) = δ(d)/Cdelay(d) over [d_min, d0].
  kPaperUtility,
  /// Expected *realized* mission utility (delivered fraction over total
  /// elapsed time, with loiter-burn transfer exposure and partial
  /// mid-transfer credit) — the mid-flight re-decision objective.
  kMissionRealized,
  /// Joint (distance, speed) optimization over the platform's speed
  /// envelope with the battery-derived rho(v) (paper Sec. 7).
  kJointSpeed,
};

/// Which engine answered.
enum class Backend : std::uint8_t {
  kExact,  ///< ran the optimizer (grid scan + golden section)
  kTable,  ///< interpolated a compiled PolicyTable — effectively free
};

[[nodiscard]] const char* to_string(Objective o) noexcept;
[[nodiscard]] const char* to_string(Backend b) noexcept;

/// One decision request. Defaults describe the common case (paper
/// utility, exponential failure law, the service's own throughput
/// model); the optional fields widen the same struct to the other three
/// legacy entry points instead of forking the API per caller.
struct Query {
  double d0_m{0.0};             ///< distance at which the link came in range
  double speed_mps{1.0};        ///< approach speed v > 0
  double mdata_bytes{0.0};      ///< batch size Mdata
  double min_distance_m{20.0};  ///< anti-collision floor
  double rho_per_m{0.0};        ///< per-meter failure rate ρ

  Objective objective{Objective::kPaperUtility};
  uav::FailureLaw law{uav::FailureLaw::kExponential};
  double weibull_shape{2.0};  ///< used only with FailureLaw::kWeibull

  /// kMissionRealized only: mission time already flown [s] (sunk, but in
  /// the realized metric's denominator).
  double elapsed_s{0.0};

  /// Throughput-model override (the re-decision path's re-estimated
  /// s(d), or any caller-owned model). nullptr ⇒ the service's own model.
  /// Must outlive the decide() call. An override always takes the exact
  /// backend: the table was compiled for the service's nominal model.
  const core::ThroughputModel* model{nullptr};

  /// kJointSpeed only: the platform whose speed envelope and battery
  /// drain define rho(v). Must outlive the decide() call.
  const uav::PlatformSpec* platform{nullptr};
  int joint_speed_grid{64};
  double joint_min_speed_mps{0.5};

  /// Optimizer schedule for the exact backend (the re-decision hot path
  /// passes its reduced grid; everyone else the defaults).
  core::OptimizeOptions optimize{};

  /// Multi-link queries only (DecisionService::decide_multilink): pin
  /// the burst election to one link index of the installed LinkSet
  /// (-1 = elect the best link jointly with d).
  std::int32_t burst_link{-1};
};

/// One decision answer.
/// Why a multi-link decision was answered by the single-link fallback
/// instead of the joint optimizer. kNone on the normal path; a tagged
/// fallback means the batch kept flowing instead of erroring out.
enum class FallbackReason : std::uint8_t {
  kNone,
  kNoLinkSet,      ///< no (or an empty) LinkSet installed at decide time
  kInvalidBackend  ///< forced burst index out of range, or a backend failed validate()
};

/// Stable log tag for a FallbackReason.
[[nodiscard]] constexpr const char* to_string(FallbackReason r) noexcept {
  switch (r) {
    case FallbackReason::kNoLinkSet:
      return "no-link-set";
    case FallbackReason::kInvalidBackend:
      return "invalid-backend";
    case FallbackReason::kNone:
      break;
  }
  return "none";
}

struct Decision {
  double d_opt_m{0.0};
  double v_opt_mps{0.0};  ///< == query speed unless Objective::kJointSpeed
  double utility{0.0};
  double cdelay_s{0.0};
  double discount{0.0};
  /// Effective ρ the answer was computed under (rho(v_opt) for joint
  /// queries, the query's ρ otherwise).
  double rho_per_m{0.0};
  core::Boundary boundary{core::Boundary::kInterior};
  Backend backend{Backend::kExact};
  std::int32_t evaluations{0};
  /// Multi-link graceful degradation tag (kNone outside fallbacks).
  FallbackReason fallback_reason{FallbackReason::kNone};
};

/// One multi-link decision answer: the burst decision in the usual
/// Decision shape plus which link bursts and how the batch splits
/// between the background trickle and the burst.
struct MultiLinkDecision {
  Decision decision{};
  std::int32_t burst_link{-1};  ///< LinkSet index; -1 when no link set
  double trickle_bytes{0.0};    ///< Σ background-link bytes during the ferry leg
  double burst_bytes{0.0};      ///< Mdata − trickle_bytes, shipped at d*
};

/// View a Decision as the legacy OptimizeResult (for callers that keep
/// the old result struct in their own API, e.g. ReDecisionPolicy).
[[nodiscard]] core::OptimizeResult to_optimize_result(const Decision& d) noexcept;

/// The optimizer's boundary classification (optimizer.cc's finish())
/// applied to an externally produced d over [lo, hi] — the rule the
/// table backend and the accuracy validator use so their labels agree
/// with the exact solver's.
[[nodiscard]] core::Boundary classify_boundary(double d_m, double lo_m, double hi_m) noexcept;

}  // namespace skyferry::policy
