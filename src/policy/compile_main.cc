// skyferry_policy_compile — the offline step of the decision service:
// sweep the decision domain, bake the optimal-d* table, audit its
// accuracy against the exact solver, and write the versioned table file
// that skyferry_decide (and any bench's --policy-table flag) serves.
#include <cstdio>
#include <string>

#include "exp/cli.h"
#include "io/format.h"
#include "policy/compiler.h"

using namespace skyferry;

int main(int argc, char** argv) {
  std::string out = "policy_table.json";
  std::string platform = "airplane";
  policy::CompilerConfig cfg;
  int validate_samples = 200;
  // The regret gate is the primary contract (second-order in grid
  // spacing; the default grid audits at ~0.7%). The distance gate only
  // applies to samples that blew the regret plateau — the argmax is
  // ill-conditioned where utility is flat, so d* displacement alone is
  // not an error — making it a safety net against a broken table.
  double max_d_err_m = 35.0;
  double max_regret = 0.02;
  std::uint64_t seed = 1;

  exp::Cli cli("skyferry_policy_compile");
  cli.flag("--out", &out, "table file to write")
      .flag("--platform", &platform, "throughput fit: airplane | quadrocopter")
      .flag("--min-distance", &cfg.min_distance_m, "anti-collision floor [m]")
      .flag("--d0-lo", &cfg.d0.lo, "d0 axis: low edge [m]")
      .flag("--d0-hi", &cfg.d0.hi, "d0 axis: high edge [m]")
      .flag("--d0-n", &cfg.d0.n, "d0 axis: knot count")
      .flag("--v-lo", &cfg.speed.lo, "speed axis: low edge [m/s]")
      .flag("--v-hi", &cfg.speed.hi, "speed axis: high edge [m/s]")
      .flag("--v-n", &cfg.speed.n, "speed axis: knot count")
      .flag("--mdata-lo", &cfg.mdata.lo, "Mdata axis: low edge [bytes] (log-spaced)")
      .flag("--mdata-hi", &cfg.mdata.hi, "Mdata axis: high edge [bytes]")
      .flag("--mdata-n", &cfg.mdata.n, "Mdata axis: knot count")
      .flag("--rho-lo", &cfg.rho.lo, "rho axis: low edge [1/m] (log-spaced)")
      .flag("--rho-hi", &cfg.rho.hi, "rho axis: high edge [1/m]")
      .flag("--rho-n", &cfg.rho.n, "rho axis: knot count")
      .flag("--grid-points", &cfg.optimize.grid_points, "exact-solver grid points per knot")
      .flag("--threads", &cfg.threads, "compile workers (<=0: hardware threads)")
      .flag("--validate", &validate_samples, "random accuracy-audit samples (0 skips)")
      .flag("--max-d-err", &max_d_err_m,
            "fail if |d*_served - d*_exact| exceeds this [m] off the utility plateau")
      .flag("--max-regret", &max_regret,
            "fail if the served decision's relative utility regret exceeds this")
      .flag("--seed", &seed, "audit sampling seed");
  cli.parse_or_exit(argc, argv);
  cli.print_replay_header();

  if (platform == "quadrocopter") {
    cfg.model = {-10.5, 73.0, 1e6, 20.0, "paper-quadrocopter"};
  } else if (platform != "airplane") {
    std::fprintf(stderr, "unknown --platform '%s' (want airplane or quadrocopter)\n",
                 platform.c_str());
    return 2;
  }

  const policy::Compiler compiler(cfg);
  const policy::PolicyTable table = compiler.compile();
  table.save_atomic(out);
  std::printf("compiled %zu knots (%s, floor %s m) -> %s (checksum %s)\n", table.knots(),
              table.model().name.c_str(), io::format_number(table.min_distance_m()).c_str(),
              out.c_str(), table.checksum().c_str());

  if (validate_samples > 0) {
    const policy::ValidationReport rep =
        policy::Compiler::validate(table, validate_samples, seed);
    std::printf(
        "audit: %d samples  max|d*err| %s m  max U rel err %s  boundary mismatches %d "
        "(knife-edge %d)\n",
        rep.samples, io::format_number(rep.max_d_err_m).c_str(),
        io::format_number(rep.max_utility_rel_err).c_str(), rep.boundary_mismatches,
        rep.boundary_knife_edges);
    if (rep.max_d_err_m > max_d_err_m || rep.max_utility_rel_err > max_regret ||
        rep.boundary_mismatches > 0) {
      std::fprintf(stderr, "audit FAILED: refine the grid (--d0-n/--v-n/--mdata-n/--rho-n)\n");
      return 1;
    }
  }
  return 0;
}
