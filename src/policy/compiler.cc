#include "policy/compiler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/delay.h"
#include "core/throughput_model.h"
#include "core/utility.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "policy/api.h"
#include "uav/failure.h"

namespace skyferry::policy {
namespace {

std::vector<double> knot_values(const AxisSpec& spec) {
  Axis ax{"", spec.lo, spec.hi, spec.n, spec.log10_spaced};
  std::vector<double> v(static_cast<std::size_t>(std::max(spec.n, 2)));
  for (int i = 0; i < static_cast<int>(v.size()); ++i) v[static_cast<std::size_t>(i)] = ax.knot(i);
  return v;
}

struct Knot {
  double d_opt{0.0};
  double utility{0.0};
};

core::OptimizeResult solve_exact(const TableModelSpec& spec, double min_distance_m,
                                 core::OptimizeOptions opt, double d0, double speed, double mdata,
                                 double rho) {
  const core::PaperLogThroughput model(spec.a, spec.b, spec.name, spec.scale,
                                       spec.min_distance_m);
  const uav::FailureModel failure(rho);
  const core::DeliveryParams params{d0, speed, mdata, min_distance_m};
  const core::CommDelayModel delay(model, params);
  const core::UtilityFunction u(delay, failure);
  return core::optimize(u, opt);
}

}  // namespace

PolicyTable Compiler::compile() const {
  exp::Sweep sweep;
  // Axis order == PolicyTable::kAxisNames == flattened-index order:
  // cartesian() enumerates first axis slowest, exactly the table's
  // ((i0·N1 + i1)·N2 + i2)·N3 + i3 layout, so point.index IS the flat
  // knot index.
  sweep.axis(PolicyTable::kAxisNames[0], knot_values(cfg_.d0));
  sweep.axis(PolicyTable::kAxisNames[1], knot_values(cfg_.speed));
  sweep.axis(PolicyTable::kAxisNames[2], knot_values(cfg_.mdata));
  sweep.axis(PolicyTable::kAxisNames[3], knot_values(cfg_.rho));
  const std::vector<exp::Point> points = sweep.cartesian();

  exp::RunnerConfig rc;
  rc.threads = cfg_.threads;
  rc.trials = 1;
  rc.fail_fast = true;  // a knot that cannot be solved must not bake a silent 0
  exp::Runner runner(rc);
  const auto run = runner.run(points, [this](const exp::Point& pt, std::uint64_t) {
    const core::OptimizeResult r = solve_exact(
        cfg_.model, cfg_.min_distance_m, cfg_.optimize, pt.at(PolicyTable::kAxisNames[0]),
        pt.at(PolicyTable::kAxisNames[1]), pt.at(PolicyTable::kAxisNames[2]),
        pt.at(PolicyTable::kAxisNames[3]));
    return Knot{r.d_opt_m, r.utility};
  });

  std::vector<double> d_opt(points.size()), utility(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    d_opt[points[p].index] = run.results[p][0].d_opt;
    utility[points[p].index] = run.results[p][0].utility;
  }

  std::array<Axis, 4> axes = {
      Axis{PolicyTable::kAxisNames[0], cfg_.d0.lo, cfg_.d0.hi, cfg_.d0.n, cfg_.d0.log10_spaced},
      Axis{PolicyTable::kAxisNames[1], cfg_.speed.lo, cfg_.speed.hi, cfg_.speed.n,
           cfg_.speed.log10_spaced},
      Axis{PolicyTable::kAxisNames[2], cfg_.mdata.lo, cfg_.mdata.hi, cfg_.mdata.n,
           cfg_.mdata.log10_spaced},
      Axis{PolicyTable::kAxisNames[3], cfg_.rho.lo, cfg_.rho.hi, cfg_.rho.n,
           cfg_.rho.log10_spaced},
  };
  return PolicyTable(std::move(axes), cfg_.model, cfg_.min_distance_m, cfg_.optimize,
                     std::move(d_opt), std::move(utility));
}

ValidationReport Compiler::validate(const PolicyTable& table, int samples, std::uint64_t seed) {
  ValidationReport rep;
  rep.samples = std::max(samples, 0);
  sim::Rng rng(seed);
  const auto& axes = table.axes();
  const auto sample_axis = [&rng](const Axis& ax) {
    if (ax.log10_spaced)
      return std::pow(10.0, rng.uniform(std::log10(ax.lo), std::log10(ax.hi)));
    return rng.uniform(ax.lo, ax.hi);
  };
  for (int s = 0; s < rep.samples; ++s) {
    const double d0 = sample_axis(axes[0]);
    const double v = sample_axis(axes[1]);
    const double mdata = sample_axis(axes[2]);
    const double rho = sample_axis(axes[3]);

    const core::OptimizeResult exact = solve_exact(table.model(), table.min_distance_m(),
                                                   table.compiled_with(), d0, v, mdata, rho);

    // Reproduce the serving path (DecisionService::decide_table): the
    // interpolated d*, the cell's min/max corner d*, and the interval
    // ends compete on exact utility, so a blend that fell into the
    // valley between two tied modes is repaired before it is graded.
    const core::PaperLogThroughput model(table.model().a, table.model().b, table.model().name,
                                         table.model().scale, table.model().min_distance_m);
    const uav::FailureModel failure(rho);
    const core::DeliveryParams params{d0, v, mdata, table.min_distance_m()};
    const core::CommDelayModel delay(model, params);
    const core::UtilityFunction u(delay, failure);
    const PolicyTable::DOptCandidates cand = table.lookup_d_opt_candidates(d0, v, mdata, rho);
    double d_served = std::clamp(cand.blend, table.min_distance_m(), d0);
    double u_served = u(d_served);
    for (const double c : {cand.lo, cand.hi, d0, table.min_distance_m()}) {
      const double dc = std::clamp(c, table.min_distance_m(), d0);
      if (dc == d_served) continue;
      const double uc = u(dc);
      if (uc > u_served) {
        d_served = dc;
        u_served = uc;
      }
    }

    // Utility regret is the primary contract: second-order away from
    // mode ties, and at a tie both modes are near-equal by definition.
    const double regret =
        exact.utility > 0.0 ? std::abs(u_served / exact.utility - 1.0) : 0.0;
    rep.max_utility_rel_err = std::max(rep.max_utility_rel_err, regret);

    const double d_err = std::abs(d_served - exact.d_opt_m);
    const bool on_plateau = regret <= ValidationReport::kPlateauRegret;
    // The either-or guarantee: d* accuracy is only demanded where the
    // optimum is sharp. On a plateau the argmax is ill-conditioned —
    // far-apart distances earn near-equal utility — so those samples
    // are already covered by the regret bound above.
    if (!on_plateau) rep.max_d_err_m = std::max(rep.max_d_err_m, d_err);

    const core::Boundary b_served = classify_boundary(d_served, table.min_distance_m(), d0);
    if (b_served != exact.boundary) {
      // A mismatch at the knife edge — the exact optimum sits closer to
      // an interval end than the table's own d* error, or the two modes
      // are tied in utility — is a property of the threshold, not a
      // wrong decision; a mode difference with a real utility gap is.
      const double margin =
          std::min(exact.d_opt_m - table.min_distance_m(), d0 - exact.d_opt_m);
      if (on_plateau || margin <= d_err + 1e-3 * std::max(d0 - table.min_distance_m(), 1.0)) {
        ++rep.boundary_knife_edges;
      } else {
        ++rep.boundary_mismatches;
      }
    }
  }
  return rep;
}

}  // namespace skyferry::policy
