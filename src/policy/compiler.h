// The offline half of the decision service: sweep the decision space on
// the exp::Sweep/Runner engine (deterministic, thread-pooled) and bake
// every knot's exact optimize() answer into a PolicyTable. Compiling is
// the expensive step you pay once per (model, domain); serving is the
// O(1) interpolation the fleet pays per decision.
#pragma once

#include <cstdint>

#include "core/optimizer.h"
#include "policy/table.h"
#include "sim/rng.h"

namespace skyferry::policy {

/// One axis of the compile domain.
struct AxisSpec {
  double lo{0.0};
  double hi{0.0};
  int n{2};
  bool log10_spaced{false};
};

struct CompilerConfig {
  /// Throughput model the table is compiled against (paper log2 fit).
  TableModelSpec model{-5.56, 49.0, 1e6, 20.0, "paper-airplane"};
  /// Anti-collision floor baked into every knot's feasible interval.
  double min_distance_m{20.0};
  /// Exact-solver schedule for the knots (the defaults every online
  /// caller uses, so table answers approximate the same solver).
  core::OptimizeOptions optimize{};

  AxisSpec d0{40.0, 600.0, 29};
  AxisSpec speed{1.0, 30.0, 13};
  /// The d* surface is most curved along data size (it moves the
  /// interior/transmit-now tie), so this axis carries the most knots.
  AxisSpec mdata{1e6, 2e8, 25, true};
  AxisSpec rho{1e-6, 5e-3, 17, true};

  int threads{0};  ///< <= 0: one worker per hardware thread
};

/// Worst-case deviations between *served* (interpolated + candidate
/// competition, exactly the DecisionService table path) and exact
/// answers over a random sample of the compiled domain — the
/// machine-checked accuracy contract, an ε-δ guarantee: every served
/// decision is ε-optimal in utility (regret ≤ kPlateauRegret) OR
/// within δ meters of the exact d*. The utility regret is the binding
/// bound — it is second-order in grid spacing because the service
/// re-evaluates U exactly at every candidate and U is stationary at
/// the optimum. The argmax itself is ill-conditioned wherever U is
/// flat or two modes tie (far-apart distances earn near-equal
/// utility), so demanding d* accuracy *within* the regret plateau is
/// meaningless; beyond it, max_d_err_m is the δ safety net that
/// catches a structurally broken table.
struct ValidationReport {
  /// Regret at or below this is "on the plateau": the served d* is
  /// operationally indistinguishable from the exact one.
  static constexpr double kPlateauRegret = 0.02;

  int samples{0};
  /// max |d*_served − d*_exact| over samples whose regret exceeds
  /// kPlateauRegret — 0 when every sample met the regret bound.
  double max_d_err_m{0.0};
  /// max relative utility regret of the served decision over ALL
  /// samples — the primary contract (default-grid audits measure
  /// ≤ ~0.7%).
  double max_utility_rel_err{0.0};
  int boundary_mismatches{0};
  /// A boundary mismatch only counts against the table when the exact
  /// optimum is not within `d_err` of the boundary threshold itself and
  /// the regret exceeds kPlateauRegret (a genuine wrong mode, not a
  /// tie); knife edges are recorded here instead.
  int boundary_knife_edges{0};
};

class Compiler {
 public:
  explicit Compiler(CompilerConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const CompilerConfig& config() const noexcept { return cfg_; }

  /// Sweep the full cartesian grid and return the compiled table.
  /// Deterministic for a fixed config regardless of thread count.
  [[nodiscard]] PolicyTable compile() const;

  /// Monte-Carlo accuracy audit: `samples` uniform random points in the
  /// compiled domain (log axes sampled in log space), each answered by
  /// both the table and the exact solver.
  [[nodiscard]] static ValidationReport validate(const PolicyTable& table, int samples,
                                                 std::uint64_t seed = 1);

 private:
  CompilerConfig cfg_;
};

}  // namespace skyferry::policy
