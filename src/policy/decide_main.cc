// skyferry_decide — the decision service as a long-running process: load
// a compiled policy table (or run exact-only), then serve the stdin/
// stdout line protocol so campaign scripts stream batched decisions
// through one warm process. `--query "<d0> <v> <mdata> <rho>"` answers
// one decision and exits (the quick-start's middle command).
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/throughput_model.h"
#include "exp/cli.h"
#include "policy/server.h"

using namespace skyferry;

int main(int argc, char** argv) {
  std::string table_path;
  std::string platform = "airplane";
  std::string query;
  bool banner = true;
  policy::ServerOptions options;

  exp::Cli cli("skyferry_decide");
  cli.flag("--policy-table", &table_path, "compiled table (skyferry_policy_compile output); empty = exact-only")
      .flag("--platform", &platform, "exact-backend throughput fit: airplane | quadrocopter")
      .flag("--query", &query, "one-shot: decide '<d0> <v> <mdata> <rho> [min_d]' and exit")
      .flag("--min-distance", &options.defaults.min_distance_m,
            "default anti-collision floor [m] for queries that omit it")
      .flag("--banner", &banner, "echo the protocol banner before serving");
  cli.parse_or_exit(argc, argv);

  core::PaperLogThroughput model = platform == "quadrocopter"
                                       ? core::PaperLogThroughput::quadrocopter()
                                       : core::PaperLogThroughput::airplane();
  if (platform != "airplane" && platform != "quadrocopter") {
    std::fprintf(stderr, "unknown --platform '%s' (want airplane or quadrocopter)\n",
                 platform.c_str());
    return 2;
  }

  policy::DecisionService service(model);
  if (!table_path.empty()) {
    try {
      policy::PolicyTable table = policy::PolicyTable::load(table_path);
      // Serve the exact fallback against the model the table was
      // compiled for, so in-domain and out-of-domain answers describe
      // the same physics.
      model = core::PaperLogThroughput(table.model().a, table.model().b, table.model().name,
                                       table.model().scale, table.model().min_distance_m);
      service.install_table(std::move(table));
    } catch (const policy::TableError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  options.banner = banner && query.empty();
  const policy::LineServer server(service, options);
  if (!query.empty()) {
    std::istringstream one(query + "\n");
    return server.run(one, std::cout) == 1 ? 0 : 1;
  }
  server.run(std::cin, std::cout);
  return 0;
}
