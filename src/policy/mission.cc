#include "core/mission.h"

#include <algorithm>
#include <cmath>

namespace skyferry::core {

SectorMissionPlan MissionPlanner::plan_sector(const ctrl::Sector& sector, int index) const {
  SectorMissionPlan sp;
  sp.sector_index = index;
  sp.battery_time_budget_s = cfg_.platform.battery_autonomy_s;

  const auto sweep = ctrl::estimate_sweep(sector, cfg_.camera, cfg_.platform.cruise_speed_mps);
  const auto imaging = ctrl::plan_sector_imaging(cfg_.camera, sector.area_m2(),
                                                 cfg_.survey_altitude_m);

  const int rounds = std::max(cfg_.delivery_rounds_per_sector, 1);
  const double round_bytes = imaging.batch.total_bytes() / rounds;
  const double round_sweep_s = sweep.duration_s / rounds;

  const uav::FailureModel failure(cfg_.rho_per_m);
  const DelayedGratificationPlanner planner(model_, failure);

  double t = 0.0;
  double p_all = 1.0;
  for (int r = 0; r < rounds; ++r) {
    RendezvousPlan rp;
    rp.sector_index = index;
    rp.round = r;
    rp.batch_bytes = round_bytes;
    rp.sweep_time_s = round_sweep_s;

    DeliveryParams params{cfg_.rendezvous_d0_m, cfg_.platform.cruise_speed_mps, round_bytes,
                          cfg_.min_distance_m};
    rp.decision = planner.decide(params);

    // Round trip: ferry to the transmit position, transmit, fly back to
    // resume the sweep (the re-positioning cost Sec. 5 points at).
    const double ship_there =
        (cfg_.rendezvous_d0_m - rp.decision.strategy.target_distance_m) /
        cfg_.platform.cruise_speed_mps;
    rp.round_trip_time_s = rp.decision.expected_delay_s + ship_there;  // there + tx + back
    t += rp.sweep_time_s + rp.round_trip_time_s;
    p_all *= rp.decision.delivery_probability;
    sp.rounds.push_back(rp);
  }
  sp.total_time_s = t;
  sp.battery_feasible = t <= sp.battery_time_budget_s;
  sp.mission_delivery_probability = p_all;
  return sp;
}

std::vector<ctrl::Sector> MissionPlanner::make_grid() const {
  // Near-square grid with uav_count sectors.
  int nx = std::max(1, static_cast<int>(std::round(std::sqrt(cfg_.uav_count))));
  while (cfg_.uav_count % nx != 0) --nx;
  const int ny = cfg_.uav_count / nx;
  return ctrl::make_sector_grid(cfg_.area_width_m, cfg_.area_height_m, nx, ny,
                                cfg_.survey_altitude_m);
}

MissionPlan MissionPlanner::plan() const {
  MissionPlan plan;
  const auto sectors = make_grid();

  plan.feasible = true;
  for (const auto& s : sectors) {
    SectorMissionPlan sp = plan_sector(s, s.index);
    plan.makespan_s = std::max(plan.makespan_s, sp.total_time_s);
    for (const auto& r : sp.rounds) plan.total_data_mb += r.batch_bytes / 1e6;
    plan.feasible = plan.feasible && sp.battery_feasible;
    plan.sectors.push_back(std::move(sp));
  }
  return plan;
}

MissionPlan MissionPlanner::replan_after_crash(int crashed_sector_index,
                                               double completed_fraction) const {
  const auto sectors = make_grid();
  const double f = std::clamp(completed_fraction, 0.0, 1.0);

  double orphan_area = 0.0;
  std::vector<ctrl::Sector> survivors;
  for (const auto& s : sectors) {
    if (s.index == crashed_sector_index) {
      orphan_area = s.area_m2() * (1.0 - f);
    } else {
      survivors.push_back(s);
    }
  }
  MissionPlan plan;
  if (survivors.empty() || orphan_area < 0.0 ||
      crashed_sector_index >= static_cast<int>(sectors.size())) {
    plan.feasible = false;
    return plan;
  }

  // Least-loaded survivor absorbs the orphaned remainder: smallest nominal
  // completion time, ties broken by index for determinism.
  int absorber = -1;
  double best_time = std::numeric_limits<double>::infinity();
  std::vector<SectorMissionPlan> base;
  base.reserve(survivors.size());
  for (const auto& s : survivors) {
    base.push_back(plan_sector(s, s.index));
    if (base.back().total_time_s < best_time) {
      best_time = base.back().total_time_s;
      absorber = static_cast<int>(base.size()) - 1;
    }
  }

  // Grow the absorber's sector by the orphaned area (same track width, the
  // sweep just runs longer) and re-run every now-or-later decision on the
  // bigger batches.
  ctrl::Sector grown = survivors[static_cast<std::size_t>(absorber)];
  grown.height_m += orphan_area / std::max(grown.width_m, 1e-9);
  SectorMissionPlan grown_plan = plan_sector(grown, grown.index);
  grown_plan.absorbed_orphan_area_m2 = orphan_area;
  base[static_cast<std::size_t>(absorber)] = std::move(grown_plan);

  plan.feasible = true;
  for (auto& sp : base) {
    plan.makespan_s = std::max(plan.makespan_s, sp.total_time_s);
    for (const auto& r : sp.rounds) plan.total_data_mb += r.batch_bytes / 1e6;
    plan.feasible = plan.feasible && sp.battery_feasible;
    plan.sectors.push_back(std::move(sp));
  }
  return plan;
}

}  // namespace skyferry::core
