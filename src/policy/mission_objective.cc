#include "policy/mission_objective.h"

#include <algorithm>
#include <cmath>

namespace skyferry::policy {

double expected_mission_utility(const core::CommDelayModel& delay, double rho, double speed_mps,
                                double elapsed_s, double d_m) {
  using core::CommDelayModel;
  const double A = delay.tship_s(d_m);
  const double T = delay.ttx_s(d_m);
  if (!(A >= 0.0) || A == CommDelayModel::kInfiniteDelay) return 0.0;
  if (!(T >= 0.0) || T == CommDelayModel::kInfiniteDelay) return 0.0;
  const double base = elapsed_s + A;
  if (!(base + T > 0.0)) return 0.0;
  const double lam = std::max(rho, 0.0) * speed_mps;
  const double full = std::exp(-lam * T) / (base + T);
  double partial = 0.0;
  if (lam > 0.0 && T > 0.0) {
    static constexpr double kNode[2] = {0.3399810435848563, 0.8611363115940526};
    static constexpr double kWeight[2] = {0.6521451548625461, 0.3478548451374538};
    const double half = 0.5 * T;
    double sum = 0.0;
    for (int i = 0; i < 2; ++i) {
      const double tau_lo = half * (1.0 - kNode[i]);
      const double tau_hi = half * (1.0 + kNode[i]);
      sum += kWeight[i] * (std::exp(-lam * tau_lo) * (tau_lo / T) / (base + tau_lo) +
                           std::exp(-lam * tau_hi) * (tau_hi / T) / (base + tau_hi));
    }
    partial = lam * half * sum;
  }
  return std::exp(-lam * A) * (full + partial);
}

}  // namespace skyferry::policy
