// The mid-flight re-decision objective, shared by core::ReDecisionPolicy
// and the DecisionService's Objective::kMissionRealized backend. It used
// to live in redecide.cc's anonymous namespace; the unified decision API
// needs the identical function (bit-identical, not re-derived), so it is
// exported here.
#pragma once

#include "core/delay.h"

namespace skyferry::policy {

/// Expected realized mission utility of transmitting at d, under the
/// (re-)estimated models. The mission metric scores delivered fraction
/// over total elapsed time, with partial credit for bytes already across
/// when a crash ends the transfer — so the in-flight objective must be
/// its expectation, not the paper's approach-only U(d): the approach-only
/// form prices the flight *to* d but neither the failure distance the
/// loiter keeps burning while transmitting nor the partial credit a
/// mid-transfer crash still collects.
///
/// With hazard ρ per meter at speed v (λ = ρ·v per second), approach
/// A = tship(d), transfer T = ttx(d), and t0 seconds already flown
/// (sunk, but in the metric's denominator):
///
///   E[U] = e^{−λA} · [ e^{−λT}/(t0+A+T)
///            + ∫₀ᵀ λ e^{−λτ} · (τ/T)/(t0+A+τ) dτ ]
///
/// The crash-mid-transfer integral has no closed form; with λT ≪ 1 and
/// T ≪ t0+A at mission scales the integrand is almost linear in τ, so a
/// 4-point Gauss–Legendre rule is accurate to ~1e-9 relative — and this
/// sits in the optimizer's inner loop under BM_ReDecision's 10 µs ceiling.
[[nodiscard]] double expected_mission_utility(const core::CommDelayModel& delay, double rho,
                                              double speed_mps, double elapsed_s, double d_m);

}  // namespace skyferry::policy
