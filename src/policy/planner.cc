#include "core/planner.h"

#include <algorithm>

#include "policy/service.h"

namespace skyferry::core {

Decision DelayedGratificationPlanner::decide(const DeliveryParams& params) const {
  Decision dec;

  policy::Query q;
  q.d0_m = params.d0_m;
  q.speed_mps = params.speed_mps;
  q.mdata_bytes = params.mdata_bytes;
  q.min_distance_m = params.min_distance_m;
  q.rho_per_m = failure_.rho();
  q.law = failure_.law();
  q.weibull_shape = failure_.weibull_shape();
  q.optimize = opt_;

  // FailureModel's constructor clamps its inputs, so the service's
  // reconstruction from (rho, law, shape) is the identical model and the
  // exact backend reproduces optimize()'s result bit for bit.
  if (service_ != nullptr) {
    dec.opt = policy::to_optimize_result(service_->decide_one(q));
  } else {
    const policy::DecisionService local(model_);
    dec.opt = policy::to_optimize_result(local.decide_one(q));
  }

  dec.strategy.kind = dec.opt.boundary == Boundary::kTransmitNow
                          ? StrategyKind::kTransmitNow
                          : StrategyKind::kShipThenTransmit;
  dec.strategy.target_distance_m = dec.opt.d_opt_m;

  const CommDelayModel delay(model_, params);
  dec.delivery_probability = dec.opt.discount;
  dec.expected_delay_s = dec.opt.cdelay_s;
  dec.transmit_now_delay_s = delay.cdelay_s(params.d0_m);
  if (dec.transmit_now_delay_s > 0.0 &&
      dec.transmit_now_delay_s != CommDelayModel::kInfiniteDelay) {
    dec.delay_saving_fraction =
        std::max(0.0, 1.0 - dec.expected_delay_s / dec.transmit_now_delay_s);
  } else if (dec.expected_delay_s != CommDelayModel::kInfiniteDelay) {
    // Transmit-now is impossible (out of range) but the plan delivers.
    dec.delay_saving_fraction = 1.0;
  }
  return dec;
}

}  // namespace skyferry::core
