#include "core/redecide.h"

#include <algorithm>
#include <cmath>

#include "core/delay.h"
#include "core/utility.h"
#include "policy/mission_objective.h"
#include "policy/service.h"
#include "uav/failure.h"

namespace skyferry::core {

PaperLogThroughput reestimated_model(const PaperLogThroughput& nominal,
                                     const ctrl::ChannelEstimate& est, double min_confidence) {
  // Fitted shape, if it is trustworthy and physically sane: throughput
  // must decrease with distance (a < 0) and be positive somewhere
  // (b > 0); a noisy narrow-window fit can violate either.
  if (est.confidence >= min_confidence && est.a < 0.0 && est.b > 0.0) {
    return {est.a, est.b, "re-estimated-fit"};
  }
  // Fallback: the nominal shape scaled by the robust gain. For the
  // log2 form, gain·scale·(a·log2 d + b) == scale·(g·a·log2 d + g·b).
  const double g = (std::isfinite(est.gain) && est.gain > 0.0) ? est.gain : 1.0;
  return {nominal.a() * g, nominal.b() * g, "re-estimated-gain"};
}

OptimizeResult ReDecisionPolicy::redecide_now(const ReDecisionInput& in) const {
  const PaperLogThroughput model =
      in.channel ? reestimated_model(nominal_, *in.channel, cfg_.min_confidence)
                 : PaperLogThroughput{nominal_.a(), nominal_.b(), "nominal"};
  const double rho = in.rho_hat.value_or(in.nominal_rho);

  policy::Query q;
  q.d0_m = in.current_d_m;
  q.speed_mps = in.speed_mps;
  q.mdata_bytes = in.mdata_bytes;
  q.min_distance_m = in.min_distance_m;
  // Pre-clamped exactly as the direct FailureModel(max(rho, 0)) call
  // did, so the service's reconstruction and the mission objective's
  // rho_eff both see the identical value.
  q.rho_per_m = std::max(rho, 0.0);
  q.objective = cfg_.mission_objective ? policy::Objective::kMissionRealized
                                       : policy::Objective::kPaperUtility;
  q.elapsed_s = in.elapsed_s;
  q.model = &model;  // re-estimated physics: always the exact backend
  q.optimize = cfg_.optimize;

  if (service_ != nullptr) return policy::to_optimize_result(service_->decide_one(q));
  const policy::DecisionService local(model);
  return policy::to_optimize_result(local.decide_one(q));
}

ReDecision ReDecisionPolicy::consider(const ReDecisionInput& in) {
  ReDecision out;
  out.target_d_m = in.target_d_m;

  if (redecisions_ >= cfg_.max_redecisions) {
    out.reason = "max-redecisions";
    return out;
  }
  // Commit-point guard: the remaining approach is sunk, never thrash it.
  if (in.current_d_m - in.target_d_m <= cfg_.commit_margin_m) {
    out.reason = "committed";
    return out;
  }
  // Progress cooldown between re-decisions (hysteresis partner to the
  // estimator re-arm the caller performs after a taken re-decision).
  if (last_redecide_d_m_ >= 0.0 && last_redecide_d_m_ - in.current_d_m < cfg_.cooldown_m) {
    out.reason = "cooldown";
    return out;
  }
  // Trigger: either observable has diverged. Without a trigger the
  // optimizer is never re-run — the zero-mismatch bit-identity invariant.
  const bool channel_tripped = in.divergence >= cfg_.divergence_threshold;
  const bool rho_tripped = in.rho_rel_error >= cfg_.rho_rel_threshold;
  if (!channel_tripped && !rho_tripped) {
    out.reason = "no-trigger";
    return out;
  }
  // A tripped channel without a usable estimate is the degradation
  // ladder's business (conservative mode), not a re-decision.
  if (channel_tripped && (!in.channel || in.channel->confidence < cfg_.min_confidence)) {
    out.reason = "low-confidence";
    return out;
  }
  if (rho_tripped && !channel_tripped && !in.rho_hat) {
    out.reason = "no-rho-estimate";
    return out;
  }

  // A rho-only trip re-decides under the *nominal* channel model: the
  // channel detector stayed quiet, so the fit window is pure probe
  // noise — feeding it to the optimizer would let that noise fabricate
  // phantom improvement and steer the diversion.
  ReDecisionInput eff = in;
  if (!channel_tripped) eff.channel.reset();

  const OptimizeResult opt = redecide_now(eff);
  out.predicted_utility = opt.utility;

  // Minimum-improvement gate: compare against holding the current plan
  // under the *re-estimated* models (same yardstick both sides).
  const PaperLogThroughput model =
      eff.channel ? reestimated_model(nominal_, *eff.channel, cfg_.min_confidence)
                  : PaperLogThroughput{nominal_.a(), nominal_.b(), "nominal"};
  const uav::FailureModel failure(std::max(in.rho_hat.value_or(in.nominal_rho), 0.0));
  const DeliveryParams params{in.current_d_m, in.speed_mps, in.mdata_bytes, in.min_distance_m};
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const double hold_d =
      std::clamp(in.target_d_m, in.min_distance_m, in.current_d_m);
  const double hold_utility =
      cfg_.mission_objective
          // Same yardstick as the candidate side, or the gate would
          // compare apples (E[realized U]) to oranges (approach-only U).
          ? policy::expected_mission_utility(delay, failure.rho(), in.speed_mps, in.elapsed_s,
                                             hold_d)
          : u(hold_d);
  out.predicted_gain_rel =
      hold_utility > 0.0 ? opt.utility / hold_utility - 1.0
                         : (opt.utility > 0.0 ? 1.0 : 0.0);
  if (out.predicted_gain_rel < cfg_.min_improvement_rel) {
    out.reason = "below-improvement-gate";
    return out;
  }

  out.redecided = true;
  out.target_d_m = opt.d_opt_m;
  out.reason = channel_tripped ? "channel-divergence" : "rho-divergence";
  ++redecisions_;
  last_redecide_d_m_ = in.current_d_m;
  return out;
}

}  // namespace skyferry::core
