#include "policy/server.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "io/json.h"

namespace skyferry::policy {
namespace {

/// Parse "<d0> <v> <mdata> <rho> [min_d]" into a query stamped from the
/// template. Returns false with a message on any malformed field.
bool parse_query(const std::string& line, const Query& defaults, Query* out, std::string* err) {
  std::istringstream fields(line);
  Query q = defaults;
  if (!(fields >> q.d0_m >> q.speed_mps >> q.mdata_bytes >> q.rho_per_m)) {
    *err = "expected: <d0> <v> <mdata> <rho> [min_d]";
    return false;
  }
  double min_d;
  if (fields >> min_d) q.min_distance_m = min_d;
  std::string extra;
  if (fields >> extra) {
    *err = "trailing garbage '" + extra + "'";
    return false;
  }
  *out = q;
  return true;
}

}  // namespace

std::string format_decision(const Decision& d) {
  std::string out = "ok ";
  out += io::json_number(d.d_opt_m);
  out += ' ';
  out += io::json_number(d.utility);
  out += ' ';
  out += io::json_number(d.cdelay_s);
  out += ' ';
  out += io::json_number(d.discount);
  out += ' ';
  out += core::to_string(d.boundary);
  out += ' ';
  out += to_string(d.backend);
  return out;
}

std::size_t LineServer::run(std::istream& in, std::ostream& out) const {
  if (opt_.banner) {
    out << "# skyferry_decide ready (table=" << (service_.has_table() ? "yes" : "no")
        << "); line: <d0> <v> <mdata> <rho> [min_d] | begin | end | stats | quit\n";
  }
  std::size_t served = 0;
  bool batching = false;
  std::vector<Query> batch;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit") break;
    if (line == "stats") {
      const DecisionService::Counters c = service_.counters();
      out << "stats table=" << c.table << " exact=" << c.exact << '\n';
      continue;
    }
    if (line == "begin") {
      if (batching) {
        out << "err already batching\n";
        continue;
      }
      batching = true;
      batch.clear();
      continue;
    }
    if (line == "end") {
      if (!batching) {
        out << "err no open batch\n";
        continue;
      }
      std::vector<Decision> answers(batch.size());
      service_.decide(batch, answers);
      for (const Decision& d : answers) out << format_decision(d) << '\n';
      served += answers.size();
      batching = false;
      batch.clear();
      out.flush();
      continue;
    }
    Query q;
    std::string err;
    if (!parse_query(line, opt_.defaults, &q, &err)) {
      out << "err " << err << '\n';
      continue;
    }
    if (batching) {
      batch.push_back(q);
      continue;
    }
    out << format_decision(service_.decide_one(q)) << '\n';
    ++served;
    out.flush();
  }
  if (batching) out << "err eof inside open batch (" << batch.size() << " queries dropped)\n";
  return served;
}

}  // namespace skyferry::policy
