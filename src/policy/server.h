// The long-running front end of the decision service: a line protocol on
// an istream/ostream pair (stdin/stdout in the skyferry_decide binary, a
// stringstream in the tests), so a campaign script can hold one warm
// process open and stream decisions through the batched API instead of
// paying a process spawn per decision.
//
// Protocol (one request or directive per line):
//   <d0> <v> <mdata> <rho> [min_d]   decide; answered immediately unless
//                                    inside a begin/end batch
//   begin                            start accumulating a batch
//   end                              flush the batch through ONE
//                                    decide(span, span) call, answer in
//                                    arrival order
//   stats                            "stats table=<n> exact=<n>"
//   quit                             stop serving (EOF also stops)
//   # ... / blank                    ignored
// Responses:
//   ok <d_opt> <utility> <cdelay> <discount> <boundary> <backend>
//   err <message>
// Numbers are emitted with io::json_number, so every served double
// round-trips exactly (a campaign log can be replayed bit-identically).
#pragma once

#include <iosfwd>
#include <string>

#include "policy/service.h"

namespace skyferry::policy {

struct ServerOptions {
  /// Template for every parsed request: the server fills d0/v/mdata/rho
  /// (and optionally min_d) from the line and leaves the rest — so the
  /// operator can pin law, objective, or optimizer schedule per process.
  Query defaults{};
  /// Echo a "# skyferry_decide ..." banner before serving.
  bool banner{true};
};

class LineServer {
 public:
  LineServer(const DecisionService& service, ServerOptions options = {}) noexcept
      : service_(service), opt_(options) {}

  /// Serve until `quit` or EOF. Returns the number of decisions served.
  std::size_t run(std::istream& in, std::ostream& out) const;

 private:
  const DecisionService& service_;
  ServerOptions opt_;
};

/// One response line (without the trailing newline) for a decision —
/// exposed for the one-shot --query mode and the tests.
[[nodiscard]] std::string format_decision(const Decision& d);

}  // namespace skyferry::policy
