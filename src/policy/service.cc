#include "policy/service.h"

#include <algorithm>
#include <stdexcept>

#include "core/delay.h"
#include "core/joint_optimizer.h"
#include "core/utility.h"
#include "policy/mission_objective.h"
#include "uav/failure.h"

namespace skyferry::policy {

void DecisionService::install_table(PolicyTable table) {
  table_model_.emplace(table.model().a, table.model().b, table.model().name,
                       table.model().scale, table.model().min_distance_m);
  table_.emplace(std::move(table));
}

bool DecisionService::table_eligible(const Query& q) const noexcept {
  if (!table_) return false;
  if (q.objective != Objective::kPaperUtility) return false;
  if (q.law != uav::FailureLaw::kExponential) return false;
  if (q.model != nullptr) return false;
  if (q.min_distance_m != table_->min_distance_m()) return false;
  return table_->covers(q.d0_m, q.speed_mps, q.mdata_bytes, q.rho_per_m);
}

Decision DecisionService::decide_table(const Query& q) const noexcept {
  // U is stationary at the optimum, so serving the *exact* decomposition
  // at the interpolated d* keeps the utility error second-order and the
  // (d*, U, Cdelay, δ) tuple self-consistent. The argmax surface is not
  // continuous, though: where two utility modes tie (interior optimum
  // vs transmit-now at d0, interior vs the anti-collision floor) the
  // blended d* lands in the valley between them. The cell's min/max
  // corner d* carry each mode's own optimum and the interval ends carry
  // the boundary modes, so all five candidates — one exact evaluation
  // each, still O(1) — compete and the best is served.
  const PolicyTable::DOptCandidates cand =
      table_->lookup_d_opt_candidates(q.d0_m, q.speed_mps, q.mdata_bytes, q.rho_per_m);
  const core::DeliveryParams params{q.d0_m, q.speed_mps, q.mdata_bytes, q.min_distance_m};
  const core::CommDelayModel delay(*table_model_, params);
  const uav::FailureModel failure(q.rho_per_m);
  const core::UtilityFunction u(delay, failure);
  double d = std::clamp(cand.blend, q.min_distance_m, q.d0_m);
  core::UtilityPoint p = u.evaluate(d);
  int evals = 1;
  for (const double c : {cand.lo, cand.hi, q.d0_m, q.min_distance_m}) {
    const double dc = std::clamp(c, q.min_distance_m, q.d0_m);
    if (dc == d) continue;
    const core::UtilityPoint pc = u.evaluate(dc);
    ++evals;
    if (pc.utility > p.utility) {
      d = dc;
      p = pc;
    }
  }

  Decision out;
  out.d_opt_m = d;
  out.v_opt_mps = q.speed_mps;
  out.utility = p.utility;
  out.cdelay_s = p.cdelay_s;
  out.discount = p.discount;
  out.rho_per_m = q.rho_per_m;
  out.boundary = classify_boundary(d, q.min_distance_m, q.d0_m);
  out.backend = Backend::kTable;
  out.evaluations = evals;
  return out;
}

Decision DecisionService::decide_exact(const Query& q) const {
  const core::ThroughputModel& model = q.model != nullptr ? *q.model : model_;
  Decision out;
  out.backend = Backend::kExact;
  out.v_opt_mps = q.speed_mps;

  if (q.objective == Objective::kJointSpeed) {
    if (q.platform == nullptr)
      throw std::invalid_argument("policy: kJointSpeed query without a platform");
    core::JointOptimizeOptions jopt;
    jopt.speed_grid_points = q.joint_speed_grid;
    jopt.distance_opts = q.optimize;
    jopt.min_speed_mps = q.joint_min_speed_mps;
    const core::DeliveryParams params{q.d0_m, q.speed_mps, q.mdata_bytes, q.min_distance_m};
    const core::JointOptimizeResult r = core::optimize_joint(model, *q.platform, params, jopt);
    out.d_opt_m = r.d_opt_m;
    out.v_opt_mps = r.v_opt_mps;
    out.utility = r.utility;
    out.cdelay_s = r.cdelay_s;
    out.discount = r.discount;
    out.rho_per_m = r.rho_at_v;
    out.boundary = r.boundary;
    out.evaluations = r.evaluations;
    return out;
  }

  const uav::FailureModel failure(q.rho_per_m, q.law, q.weibull_shape);
  const core::DeliveryParams params{q.d0_m, q.speed_mps, q.mdata_bytes, q.min_distance_m};
  const core::CommDelayModel delay(model, params);
  const core::UtilityFunction u(delay, failure);

  core::OptimizeResult r;
  if (q.objective == Objective::kMissionRealized) {
    r = core::optimize_objective(
        u,
        [&](double d) {
          return expected_mission_utility(delay, q.rho_per_m, q.speed_mps, q.elapsed_s, d);
        },
        q.optimize);
  } else {
    r = core::optimize(u, q.optimize);
  }
  out.d_opt_m = r.d_opt_m;
  out.utility = r.utility;
  out.cdelay_s = r.cdelay_s;
  out.discount = r.discount;
  out.rho_per_m = failure.rho();
  out.boundary = r.boundary;
  out.evaluations = r.evaluations;
  return out;
}

void DecisionService::install_links(std::shared_ptr<const link::LinkSet> links) {
  links_ = std::move(links);
  links_invalid_ = false;
  if (links_ != nullptr) {
    for (const link::LinkBackendConfig& c : links_->configs()) {
      try {
        c.validate();
      } catch (const link::ConfigError&) {
        links_invalid_ = true;
        break;
      }
    }
  }
  link_views_ = links_valid() ? links_->views() : std::vector<const link::LinkBackend*>{};
}

MultiLinkDecision DecisionService::decide_multilink_fallback(const Query& q,
                                                             FallbackReason why) const {
  exact_calls_.fetch_add(1, std::memory_order_relaxed);
  MultiLinkDecision out;
  out.decision = decide_exact(q);
  out.decision.fallback_reason = why;
  out.burst_link = -1;
  out.trickle_bytes = 0.0;
  out.burst_bytes = q.mdata_bytes;
  return out;
}

MultiLinkDecision DecisionService::decide_multilink_one(const Query& q) const {
  if (!has_links() || links_invalid_)
    return decide_multilink_fallback(
        q, links_invalid_ ? FallbackReason::kInvalidBackend : FallbackReason::kNoLinkSet);
  if (q.burst_link < -1 || q.burst_link >= static_cast<std::int32_t>(link_views_.size()))
    return decide_multilink_fallback(q, FallbackReason::kInvalidBackend);
  exact_calls_.fetch_add(1, std::memory_order_relaxed);
  const uav::FailureModel failure(q.rho_per_m, q.law, q.weibull_shape);
  const link::MultiLinkParams p{q.d0_m, q.speed_mps, q.mdata_bytes, q.min_distance_m};
  const link::MultiLinkResult r =
      link::optimize_multilink(link_views_, p, failure, q.optimize, q.burst_link);

  MultiLinkDecision out;
  out.decision.d_opt_m = r.decision.d_opt_m;
  out.decision.v_opt_mps = q.speed_mps;
  out.decision.utility = r.decision.utility;
  out.decision.cdelay_s = r.decision.cdelay_s;
  out.decision.discount = r.decision.discount;
  out.decision.rho_per_m = failure.rho();
  out.decision.boundary = r.decision.boundary;
  out.decision.backend = Backend::kExact;
  out.decision.evaluations = r.decision.evaluations;
  out.burst_link = r.burst_link;
  out.trickle_bytes = r.trickle_bytes;
  out.burst_bytes = r.burst_bytes;
  return out;
}

void DecisionService::decide_multilink(std::span<const Query> queries,
                                       std::span<MultiLinkDecision> out) const {
  if (queries.size() != out.size())
    throw std::invalid_argument("policy: decide_multilink() spans must have equal size (" +
                                std::to_string(queries.size()) + " queries, " +
                                std::to_string(out.size()) + " slots)");
  for (std::size_t i = 0; i < queries.size(); ++i) out[i] = decide_multilink_one(queries[i]);
}

Decision DecisionService::decide_one(const Query& q) const {
  if (table_eligible(q)) {
    table_hits_.fetch_add(1, std::memory_order_relaxed);
    return decide_table(q);
  }
  exact_calls_.fetch_add(1, std::memory_order_relaxed);
  return decide_exact(q);
}

void DecisionService::decide(std::span<const Query> queries, std::span<Decision> out) const {
  if (queries.size() != out.size())
    throw std::invalid_argument("policy: decide() spans must have equal size (" +
                                std::to_string(queries.size()) + " queries, " +
                                std::to_string(out.size()) + " slots)");
  for (std::size_t i = 0; i < queries.size(); ++i) out[i] = decide_one(queries[i]);
}

}  // namespace skyferry::policy
