// The single front door for every "now or later?" decision. Callers
// build Query PODs and call decide() on a batch; the service routes each
// query to the compiled PolicyTable (O(1) interpolation, the fleet-scale
// hot path) when one is installed and covers it, and to the exact
// optimizer otherwise. With no table installed the service *is* the
// exact solver behind a uniform API — bit-identical to calling
// core::optimize / optimize_objective / optimize_joint directly, which
// is what lets the planner, the mid-flight re-decision, and the fig
// benches route through it without regenerating a single golden.
//
// Thread safety: decide() is const and safe to call concurrently from
// any number of threads on one shared service (the TSan tree proves it);
// install_table() is a setup-time operation and must not race decide().
// The table path performs zero steady-state allocations: every model
// object it needs lives on the stack (the model name strings are under
// the SSO threshold) and the answers land in caller-provided slots.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/throughput_model.h"
#include "link/multilink.h"
#include "policy/api.h"
#include "policy/table.h"

namespace skyferry::policy {

class DecisionService {
 public:
  /// `model` answers queries without a per-query override and must
  /// outlive the service.
  explicit DecisionService(const core::ThroughputModel& model) noexcept : model_(model) {}

  /// Install the compiled policy (setup time, not concurrent with
  /// decide()). Queries outside the table's domain, or with any exact-
  /// only feature (other objective, non-exponential law, model override,
  /// different floor), still fall back to the exact solver.
  void install_table(PolicyTable table);
  [[nodiscard]] bool has_table() const noexcept { return table_.has_value(); }
  [[nodiscard]] const PolicyTable* table() const noexcept {
    return table_ ? &*table_ : nullptr;
  }

  /// Answer queries[i] into out[i]. The spans must have equal size;
  /// throws std::invalid_argument otherwise (and for a kJointSpeed query
  /// without a platform). Safe to call concurrently.
  void decide(std::span<const Query> queries, std::span<Decision> out) const;

  /// Single-query convenience over the same path.
  [[nodiscard]] Decision decide_one(const Query& q) const;

  /// Install a multi-backend link set (setup time, not concurrent with
  /// decide_multilink()). Shared so a fleet of engines can serve one
  /// set without copies. Every backend config is revalidated here: a
  /// set with any backend whose validate() fails is kept for
  /// inspection via links() but treated as unusable, so decisions fall
  /// back instead of optimizing over a poisoned backend.
  void install_links(std::shared_ptr<const link::LinkSet> links);
  [[nodiscard]] bool has_links() const noexcept { return links_ != nullptr && !links_->empty(); }
  [[nodiscard]] bool links_valid() const noexcept { return has_links() && !links_invalid_; }
  [[nodiscard]] const link::LinkSet* links() const noexcept { return links_.get(); }

  /// Joint (link, d) decisions over the installed link set:
  /// link::optimize_multilink per query (q.burst_link pins the burst
  /// election). Degrades gracefully instead of erroring the batch: a
  /// missing/empty/invalid link set, or a pinned q.burst_link outside
  /// the installed set, answers that query with the single-link exact
  /// optimum tagged via Decision::fallback_reason (burst_link -1, the
  /// whole batch as burst bytes). Throws std::invalid_argument only on
  /// span-size mismatch. Safe to call concurrently; counts toward the
  /// exact counter.
  void decide_multilink(std::span<const Query> queries, std::span<MultiLinkDecision> out) const;
  [[nodiscard]] MultiLinkDecision decide_multilink_one(const Query& q) const;

  /// True when `q` would be answered by the table path right now.
  [[nodiscard]] bool table_eligible(const Query& q) const noexcept;

  struct Counters {
    std::uint64_t table{0};
    std::uint64_t exact{0};
  };
  [[nodiscard]] Counters counters() const noexcept {
    return {table_hits_.load(std::memory_order_relaxed),
            exact_calls_.load(std::memory_order_relaxed)};
  }

  [[nodiscard]] const core::ThroughputModel& model() const noexcept { return model_; }

 private:
  [[nodiscard]] Decision decide_table(const Query& q) const noexcept;
  [[nodiscard]] Decision decide_exact(const Query& q) const;
  /// The graceful-degradation path: single-link exact optimum, tagged.
  [[nodiscard]] MultiLinkDecision decide_multilink_fallback(const Query& q,
                                                            FallbackReason why) const;

  const core::ThroughputModel& model_;
  std::shared_ptr<const link::LinkSet> links_;
  /// Set at install when any backend config fails validate().
  bool links_invalid_{false};
  /// Non-owning backend views in index order, rebuilt at install so the
  /// hot path never allocates.
  std::vector<const link::LinkBackend*> link_views_;
  std::optional<PolicyTable> table_;
  /// The table's own throughput model, rebuilt once at install so the
  /// hot path evaluates U against exactly what the compiler solved.
  std::optional<core::PaperLogThroughput> table_model_;
  mutable std::atomic<std::uint64_t> table_hits_{0};
  mutable std::atomic<std::uint64_t> exact_calls_{0};
};

}  // namespace skyferry::policy
